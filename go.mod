module fpsping

go 1.24
