// Command benchgate is the repository's benchmark regression gate: a
// benchstat-style comparator with no dependency outside the standard
// library, so CI (and a laptop) can gate on `go test -bench` output alone.
//
// It parses standard Go benchmark output (multiple -count runs per
// benchmark are aggregated by their minimum: timing noise from the
// scheduler and GC is strictly additive, so the min of repeated runs is
// the most stable estimate of the code's true cost at small -benchtime,
// where benchstat's median still jitters by tens of percent), and records
// a baseline, checks fresh output against one, or compares two outputs:
//
//	go test -run '^$' -bench . -benchtime 3x -count 5 ./... | benchgate -update BENCH_baseline.json
//	go test -run '^$' -bench . -benchtime 3x -count 5 ./... | benchgate -check  BENCH_baseline.json
//	go test ... -bench . | benchgate -compare base-bench.txt
//
// In -check mode any benchmark whose min ns/op exceeds baseline by more
// than -threshold (default 20%) is a regression: benchgate prints a GitHub
// annotation line for each and exits 1 (or 0 with -warn, leaving only the
// annotations). Benchmarks missing on either side are reported but never
// fail the gate, so adding or retiring benchmarks doesn't break CI; neither
// do benchmarks whose baseline is under -min-ns (default 50 µs), where a
// 3-iteration sample measures scheduler and timer noise, not the code.
//
// -compare applies the same gate against another run's raw `go test -bench`
// output instead of a committed JSON baseline. This is the machine-
// independent paired mode CI uses: build and run both the merge-base and
// the head on the same runner in the same job, then compare — absolute
// ns/op never leaves the machine it was measured on, so a committed
// baseline from faster hardware cannot fail an innocent PR.
//
// By default the trailing -N GOMAXPROCS suffix is stripped, pooling every
// -cpu count into one series (committed baselines stay comparable whatever
// the host's core count). -keep-cpu keeps the suffix instead, so a paired
// run at -cpu 1,4,8 gates each parallelism level separately — the knob that
// catches a lock-contention regression visible only at -cpu 8.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Baseline is the committed JSON schema: min ns/op per benchmark.
type Baseline struct {
	// Note documents how the baseline was produced (host, command).
	Note string `json:"note,omitempty"`
	// NsPerOp maps benchmark name (with -cpu suffix stripped) to the
	// minimum ns/op over the -count runs.
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

// benchLine matches one result line of `go test -bench` output, e.g.
// "BenchmarkServiceRTT/cached-8   300  5123 ns/op  12 B/op  1 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+([0-9.e+]+) ns/op`)

// parse collects every ns/op sample per benchmark name from r. With keepCPU
// the trailing GOMAXPROCS suffix stays part of the name, so one benchmark
// run at -cpu 1,4,8 yields three separately gated series (how the paired CI
// run watches lock-scaling regressions); without it the suffix is stripped
// and all cpu counts pool into one series (how the committed machine-neutral
// baseline stays comparable across hosts).
func parse(r io.Reader, keepCPU bool) (map[string][]float64, error) {
	samples := make(map[string][]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchgate: bad ns/op in %q: %w", sc.Text(), err)
		}
		name := m[1]
		if keepCPU {
			name += m[2]
		}
		samples[name] = append(samples[name], v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("benchgate: no benchmark lines found in input")
	}
	return samples, nil
}

// center aggregates one benchmark's -count samples by their minimum:
// noise only ever adds time, so the min tracks the code's true cost and a
// genuine slowdown moves it just as surely as it moves the median.
func center(xs []float64) float64 {
	min := xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
	}
	return min
}

func centers(samples map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(samples))
	for name, xs := range samples {
		out[name] = center(xs)
	}
	return out
}

func sortedNames(m map[string]float64) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func run() error {
	fs := flag.NewFlagSet("benchgate", flag.ExitOnError)
	update := fs.String("update", "", "write a new baseline JSON to this path and exit")
	check := fs.String("check", "", "compare input against this baseline JSON")
	compare := fs.String("compare", "", "compare input against this raw `go test -bench` output (paired-run mode)")
	in := fs.String("in", "-", "benchmark output to read ('-' = stdin)")
	threshold := fs.Float64("threshold", 0.20, "relative slowdown that counts as a regression (0.20 = +20%)")
	minNs := fs.Float64("min-ns", 50_000, "baseline ns/op below which a benchmark is informational only (at -benchtime 3x an op this cheap measures scheduler noise, not code)")
	keepCPU := fs.Bool("keep-cpu", false, "keep the -N GOMAXPROCS suffix in benchmark names, gating each -cpu count separately (paired -compare runs)")
	warn := fs.Bool("warn", false, "annotate regressions but exit 0")
	note := fs.String("note", "", "provenance note stored in the baseline on -update")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}
	modes := 0
	for _, m := range []string{*update, *check, *compare} {
		if m != "" {
			modes++
		}
	}
	if modes != 1 {
		return fmt.Errorf("benchgate: exactly one of -update, -check or -compare is required")
	}

	input := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		input = f
	}
	samples, err := parse(input, *keepCPU)
	if err != nil {
		return err
	}
	current := centers(samples)

	if *update != "" {
		data, err := json.MarshalIndent(Baseline{Note: *note, NsPerOp: current}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*update, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(current), *update)
		return nil
	}

	var base Baseline
	if *compare != "" {
		f, err := os.Open(*compare)
		if err != nil {
			return err
		}
		defer f.Close()
		baseSamples, err := parse(f, *keepCPU)
		if err != nil {
			return fmt.Errorf("benchgate: baseline run %s: %w", *compare, err)
		}
		base = Baseline{NsPerOp: centers(baseSamples)}
	} else {
		data, err := os.ReadFile(*check)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &base); err != nil {
			return fmt.Errorf("benchgate: baseline %s: %w", *check, err)
		}
		if len(base.NsPerOp) == 0 {
			return fmt.Errorf("benchgate: baseline %s holds no benchmarks", *check)
		}
	}

	regressions := 0
	for _, name := range sortedNames(current) {
		now := current[name]
		was, ok := base.NsPerOp[name]
		if !ok {
			fmt.Printf("new        %-56s %12.0f ns/op (not in baseline)\n", name, now)
			continue
		}
		delta := now/was - 1
		if was < *minNs {
			fmt.Printf("%-10s %-56s %12.0f -> %10.0f ns/op (%+.1f%%)\n", "noisy", name, was, now, 100*delta)
			continue
		}
		status := "ok"
		if delta > *threshold {
			status = "REGRESSION"
			regressions++
			level := "error"
			if *warn {
				level = "warning"
			}
			// GitHub workflow annotation: visible on the run summary.
			fmt.Printf("::%s title=benchmark regression::%s is %.1f%% slower than baseline (%.0f -> %.0f ns/op)\n",
				level, name, 100*delta, was, now)
		}
		fmt.Printf("%-10s %-56s %12.0f -> %10.0f ns/op (%+.1f%%)\n", status, name, was, now, 100*delta)
	}
	for _, name := range sortedNames(base.NsPerOp) {
		if _, ok := current[name]; !ok {
			fmt.Printf("missing    %-56s (in baseline, not in run)\n", name)
		}
	}
	if regressions > 0 {
		fmt.Printf("benchgate: %d regression(s) beyond +%.0f%%\n", regressions, 100**threshold)
		if !*warn {
			os.Exit(1)
		}
	} else {
		fmt.Printf("benchgate: all %d benchmarks within +%.0f%% of baseline\n", len(current), 100**threshold)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
