// Command shaper relays UDP between game clients and a game server while
// emulating the paper's access bottleneck: per-direction serialization
// rates, a bounded queue and a fixed propagation delay. Point gameclient at
// the shaper's address to play "through DSL".
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fpsping/internal/emu"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7788", "client-facing UDP address")
	server := flag.String("server", "127.0.0.1:7777", "game server UDP address")
	up := flag.Float64("up", 128, "upstream rate [kbit/s]")
	down := flag.Float64("down", 1024, "downstream rate [kbit/s]")
	delay := flag.Float64("delay", 5, "one-way propagation delay [ms]")
	queue := flag.Int("queue", 64*1024, "per-direction queue limit [bytes]")
	flag.Parse()

	s, err := emu.NewShaper(emu.ShaperConfig{
		ListenAddr: *listen,
		ServerAddr: *server,
		UpRate:     *up * 1000,
		DownRate:   *down * 1000,
		Delay:      time.Duration(*delay * float64(time.Millisecond)),
		QueueLimit: *queue,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "shaper:", err)
		os.Exit(1)
	}
	defer s.Close()
	fmt.Printf("shaper on %s -> %s (up %.0fk / down %.0fk, %.0fms delay)\n",
		s.Addr(), *server, *up, *down, *delay)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nshaper stopped")
}
