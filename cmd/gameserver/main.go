// Command gameserver runs the UDP game server of the emu package: it ticks
// every -t milliseconds and sends each joined client one state packet per
// tick, echoing client update timestamps so clients can measure their ping.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fpsping/internal/dist"
	"fpsping/internal/emu"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7777", "UDP listen address")
	tick := flag.Float64("t", 40, "tick interval [ms]")
	size := flag.Float64("size", 125, "mean per-client state packet size [bytes]")
	cov := flag.Float64("cov", 0.28, "packet size CoV (0 = deterministic)")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	var law dist.Distribution
	if *cov > 0 {
		l, err := dist.LogNormalByMoments(*size, *cov)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gameserver:", err)
			os.Exit(1)
		}
		law = l
	} else {
		law = dist.NewDeterministic(*size)
	}
	srv, err := emu.NewServer(emu.ServerConfig{
		Addr:         *addr,
		TickInterval: time.Duration(*tick * float64(time.Millisecond)),
		PacketSize:   law,
		Seed:         *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gameserver:", err)
		os.Exit(1)
	}
	defer srv.Close()
	fmt.Printf("gameserver listening on %s, tick %.0fms, size %s\n", srv.Addr(), *tick, law)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	status := time.NewTicker(5 * time.Second)
	defer status.Stop()
	for {
		select {
		case <-sig:
			fmt.Printf("\nshutting down: %d clients, %d ticks, %d updates received\n",
				srv.Clients(), srv.Ticks(), srv.PacketsIn())
			return
		case <-status.C:
			fmt.Printf("clients=%d ticks=%d updates=%d\n", srv.Clients(), srv.Ticks(), srv.PacketsIn())
		}
	}
}
