package main

import (
	"errors"
	"flag"
	"strings"
	"testing"
	"time"
)

func TestParseFlagsDefaults(t *testing.T) {
	var errOut strings.Builder
	cfg, err := parseFlags(nil, &errOut)
	if err != nil {
		t.Fatalf("defaults rejected: %v (%s)", err, errOut.String())
	}
	if cfg.addr != "127.0.0.1:7900" || cfg.shards != 0 || cfg.drain != 10*time.Second {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.pprofAddr != "" {
		t.Errorf("pprof is on by default: %+v", cfg)
	}
	if cfg.jobs < 1 || cfg.cacheSize < 1 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestParseFlagsShards(t *testing.T) {
	cfg, err := parseFlags([]string{"-shards", "16", "-cache", "1024", "-jobs", "4"}, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.shards != 16 || cfg.cacheSize != 1024 || cfg.jobs != 4 {
		t.Errorf("parsed = %+v", cfg)
	}
}

func TestParseFlagsPprof(t *testing.T) {
	cfg, err := parseFlags([]string{"-pprof", "127.0.0.1:6060"}, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.pprofAddr != "127.0.0.1:6060" {
		t.Errorf("parsed = %+v", cfg)
	}
}

// TestParseFlagsRejectsNegatives pins the startup contract: a negative
// -cache, -jobs or -shards is a usage error, not a value to silently coerce
// into a default.
func TestParseFlagsRejectsNegatives(t *testing.T) {
	for _, args := range [][]string{
		{"-cache", "-1"},
		{"-jobs", "-4"},
		{"-shards", "-8"},
	} {
		var errOut strings.Builder
		if _, err := parseFlags(args, &errOut); err == nil {
			t.Errorf("args %v accepted", args)
		} else if !strings.Contains(err.Error(), "negative") {
			t.Errorf("args %v: error %v does not name the problem", args, err)
		}
		if !strings.Contains(errOut.String(), "Usage") && !strings.Contains(errOut.String(), "-shards") {
			t.Errorf("args %v: usage not printed:\n%s", args, errOut.String())
		}
	}
	// Zero still means "use the default" everywhere.
	if _, err := parseFlags([]string{"-cache", "0", "-jobs", "0", "-shards", "0"}, &strings.Builder{}); err != nil {
		t.Errorf("zero values rejected: %v", err)
	}
}

// TestParseFlagsHelpIsNotAnError pins that -h surfaces flag.ErrHelp (main
// exits 0 on it, not the usage-error 2).
func TestParseFlagsHelpIsNotAnError(t *testing.T) {
	var out strings.Builder
	_, err := parseFlags([]string{"-h"}, &out)
	if !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-h returned %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(out.String(), "-shards") {
		t.Errorf("usage text missing flags:\n%s", out.String())
	}
}
