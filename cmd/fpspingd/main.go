// Command fpspingd serves the ping-time model as a long-lived HTTP/JSON
// daemon: the operational counterpart of the fpsping CLI. An ISP or game
// operator can ask "what ping will gamers see at this load, and how many
// fit under 50 ms?" millions of times without re-running a computation —
// repeated scenarios are answered from a lock-striped LRU memo cache
// (internal/memo; -cache total entries, -shards stripes).
//
// Endpoints (scenario parameters are the CLI flags, as JSON keys or query
// parameters — see internal/scenario):
//
//	POST /v1/rtt        {"gamers":80,"ps":125,"t":40,"k":9}    quantile + decomposition
//	GET  /v1/rtt?load=0.5&ps=125&t=60                          same, query form
//	POST /v1/rtt:batch  {"scenarios":[{...},{...}]}            many scenarios, one call
//	POST /v1/sweep      {"scenario":{...},"from":0.05,"to":0.9,"step":0.05}
//	POST /v1/dimension  {"scenario":{...},"bound_ms":50}       max load / max gamers
//	GET  /v1/models                                            built-in game traffic models
//	GET  /healthz                                              liveness + cache stats
//	GET  /metrics                                              Prometheus text format
//
// Responses are byte-identical at any -jobs value and across cache states;
// only latency (and X-Fpsping-Cache: hit|miss) reveals the cache.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"fpsping/internal/runner"
	"fpsping/internal/service"
)

// config is the daemon's parsed command line.
type config struct {
	addr          string
	jobs          int
	cacheSize     int
	shards        int
	drain         time.Duration
	pprofAddr     string
	snapshot      string
	snapshotEvery time.Duration
}

// parseFlags parses and validates the command line. Nonsensical values are a
// usage error, not something to silently coerce: a typo like -cache -1 must
// fail loudly at startup, never boot a daemon with a surprise configuration.
// Zero keeps its documented "use the default" meaning throughout.
func parseFlags(args []string, stderr io.Writer) (config, error) {
	fs := flag.NewFlagSet("fpspingd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg config
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:7900", "listen address (host:port; port 0 picks a free port)")
	fs.IntVar(&cfg.jobs, "jobs", runner.DefaultWorkers(),
		"worker pool size for batch and sweep fan-out (responses are identical at any value)")
	fs.IntVar(&cfg.cacheSize, "cache", service.DefaultCacheSize, "memo cache capacity in entries (total across shards)")
	fs.IntVar(&cfg.shards, "shards", 0,
		"memo cache shard count, rounded up to a power of two (0 = GOMAXPROCS-rounded)")
	fs.DurationVar(&cfg.drain, "drain", 10*time.Second, "graceful shutdown drain timeout")
	fs.StringVar(&cfg.pprofAddr, "pprof", "",
		"serve net/http/pprof on this address (host:port; empty = disabled). Keep it loopback-only: the profiler is unauthenticated.")
	fs.StringVar(&cfg.snapshot, "snapshot", "",
		"cache snapshot path: loaded at boot if present (a stale or corrupt file boots cold, never fails), rewritten on graceful shutdown after the drain")
	fs.DurationVar(&cfg.snapshotEvery, "snapshot-interval", 0,
		"also rewrite -snapshot every interval while serving (0 = only on graceful shutdown), so a hard kill loses at most one interval of cache warmth")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if cfg.snapshotEvery < 0 {
		err := fmt.Errorf("fpspingd: -snapshot-interval %s is negative (0 disables periodic snapshots)", cfg.snapshotEvery)
		fmt.Fprintln(stderr, err)
		fs.Usage()
		return cfg, err
	}
	if cfg.snapshotEvery > 0 && cfg.snapshot == "" {
		err := fmt.Errorf("fpspingd: -snapshot-interval needs -snapshot to name the file to write")
		fmt.Fprintln(stderr, err)
		fs.Usage()
		return cfg, err
	}
	for _, f := range []struct {
		name  string
		value int
	}{{"jobs", cfg.jobs}, {"cache", cfg.cacheSize}, {"shards", cfg.shards}} {
		if f.value < 0 {
			err := fmt.Errorf("fpspingd: -%s %d is negative (0 means the default)", f.name, f.value)
			fmt.Fprintln(stderr, err)
			fs.Usage()
			return cfg, err
		}
	}
	return cfg, nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if errors.Is(err, flag.ErrHelp) {
		os.Exit(0)
	}
	if err != nil {
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		log.Fatal("fpspingd: ", err)
	}
}

func run(cfg config) error {
	// One process-wide budget: nested fan-outs (a batch of sweeps) share
	// -jobs instead of multiplying it.
	runner.SetMaxParallel(cfg.jobs)
	engine := service.NewEngine(cfg.jobs, cfg.cacheSize, service.WithShards(cfg.shards))
	if cfg.snapshot != "" {
		loadSnapshot(engine, cfg.snapshot)
	}
	srv := service.NewServer(cfg.addr, engine)
	if err := srv.Listen(); err != nil {
		return err
	}
	log.Printf("fpspingd: listening on http://%s (jobs=%d cache=%d shards=%d)",
		srv.Addr(), cfg.jobs, cfg.cacheSize, engine.Shards())

	// The profiler gets its own listener and mux, never the service port: it
	// is off by default, unauthenticated when on, and must not change the
	// service API surface. A bad -pprof address is a startup error, not a
	// background log line.
	if cfg.pprofAddr != "" {
		ln, err := net.Listen("tcp", cfg.pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listen: %w", err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		log.Printf("fpspingd: pprof on http://%s/debug/pprof/", ln.Addr())
		go func() { _ = http.Serve(ln, mux) }() // lives and dies with the process
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve() }()

	// Periodic snapshots bound what a hard kill (OOM, SIGKILL, power loss)
	// can cost: without them the cache only persists on graceful shutdown
	// and a killed daemon reboots cold. Dump holds each shard lock only
	// while copying entries out, so a snapshot under load does not stall
	// serving (see the dump-cost note on snapshotLoop).
	snapDone := make(chan struct{})
	if cfg.snapshot != "" && cfg.snapshotEvery > 0 {
		go func() {
			defer close(snapDone)
			snapshotLoop(ctx, engine, cfg.snapshot, cfg.snapshotEvery)
		}()
	} else {
		close(snapDone)
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	// Flip /healthz to draining first so a router stops sending new traffic
	// while Shutdown waits on in-flight requests.
	srv.BeginDrain()
	log.Printf("fpspingd: draining (up to %s)", cfg.drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	// The periodic writer stops at the signal; waiting for it here keeps the
	// post-drain snapshot below the last thing written, so the freshest,
	// fully-drained view always wins the rename race.
	<-snapDone
	if cfg.snapshot != "" {
		// After the drain: no in-flight requests are mutating the cache, so
		// the snapshot is a consistent view of everything this run computed.
		if err := writeSnapshot(engine, cfg.snapshot); err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
	}
	return <-errc
}

// snapshotLoop rewrites the snapshot every interval until ctx is canceled.
// Each write is the same atomic temp+fsync+rename as the shutdown write, so
// a kill mid-write leaves the previous snapshot intact and a restarted
// daemon warms from a file at most one interval old. A failed write is
// logged and retried at the next tick — transient disk pressure must not
// kill a serving daemon. Measured dump cost (TestSnapshotDumpCost: full
// writeSnapshot including fsync, 256 entries / ~100 KB): ~7 ms, with the
// shard locks held only for the in-memory copy-out — serving sees at most
// a brief per-shard pause per tick, never the disk.
func snapshotLoop(ctx context.Context, engine *service.Engine, path string, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := writeSnapshot(engine, path); err != nil {
				log.Printf("fpspingd: periodic snapshot: %v", err)
			}
		}
	}
}

// loadSnapshot warms the engine from a snapshot file. Any failure — no
// file yet, a schema stamp from another build, corruption — boots the
// daemon cold, logged but never fatal: a bad snapshot must not keep a
// deployment down.
func loadSnapshot(engine *service.Engine, path string) {
	f, err := os.Open(path)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			log.Printf("fpspingd: snapshot %s unreadable, booting cold: %v", path, err)
		}
		return
	}
	defer f.Close()
	st, err := engine.WarmCache(f)
	if err != nil {
		log.Printf("fpspingd: snapshot %s rejected, booting cold: %v", path, err)
		return
	}
	log.Printf("fpspingd: warmed %d cache entries from %s", st.Restored, path)
}

// writeSnapshot dumps the engine cache to path atomically: written to a
// temp file in the same directory, fsynced, then renamed over path — a
// crash mid-write leaves the previous snapshot intact.
func writeSnapshot(engine *service.Engine, path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	st, err := engine.DumpCache(tmp)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	log.Printf("fpspingd: wrote snapshot %s (%d entries, %d skipped, %d bytes)",
		path, st.Entries, st.Skipped, st.Bytes)
	return nil
}
