// Command fpspingd serves the ping-time model as a long-lived HTTP/JSON
// daemon: the operational counterpart of the fpsping CLI. An ISP or game
// operator can ask "what ping will gamers see at this load, and how many
// fit under 50 ms?" millions of times without re-running a computation —
// repeated scenarios are answered from an LRU memo cache.
//
// Endpoints (scenario parameters are the CLI flags, as JSON keys or query
// parameters — see internal/scenario):
//
//	POST /v1/rtt        {"gamers":80,"ps":125,"t":40,"k":9}    quantile + decomposition
//	GET  /v1/rtt?load=0.5&ps=125&t=60                          same, query form
//	POST /v1/rtt:batch  {"scenarios":[{...},{...}]}            many scenarios, one call
//	POST /v1/sweep      {"scenario":{...},"from":0.05,"to":0.9,"step":0.05}
//	POST /v1/dimension  {"scenario":{...},"bound_ms":50}       max load / max gamers
//	GET  /v1/models                                            built-in game traffic models
//	GET  /healthz                                              liveness + cache stats
//	GET  /metrics                                              Prometheus text format
//
// Responses are byte-identical at any -jobs value and across cache states;
// only latency (and X-Fpsping-Cache: hit|miss) reveals the cache.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fpsping/internal/runner"
	"fpsping/internal/service"
)

func main() {
	fs := flag.NewFlagSet("fpspingd", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7900", "listen address (host:port; port 0 picks a free port)")
	jobs := fs.Int("jobs", runner.DefaultWorkers(),
		"worker pool size for batch and sweep fan-out (responses are identical at any value)")
	cacheSize := fs.Int("cache", service.DefaultCacheSize, "memo cache capacity in entries")
	drain := fs.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if err := run(*addr, *jobs, *cacheSize, *drain); err != nil {
		log.Fatal("fpspingd: ", err)
	}
}

func run(addr string, jobs, cacheSize int, drain time.Duration) error {
	// One process-wide budget: nested fan-outs (a batch of sweeps) share
	// -jobs instead of multiplying it.
	runner.SetMaxParallel(jobs)
	srv := service.NewServer(addr, service.NewEngine(jobs, cacheSize))
	if err := srv.Listen(); err != nil {
		return err
	}
	log.Printf("fpspingd: listening on http://%s (jobs=%d cache=%d)", srv.Addr(), jobs, cacheSize)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve() }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	log.Printf("fpspingd: draining (up to %s)", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return <-errc
}
