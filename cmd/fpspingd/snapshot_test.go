package main

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fpsping/internal/scenario"
	"fpsping/internal/service"
)

func TestParseFlagsSnapshot(t *testing.T) {
	cfg, err := parseFlags([]string{"-snapshot", "/tmp/cache.snap"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.snapshot != "/tmp/cache.snap" {
		t.Errorf("snapshot path %q", cfg.snapshot)
	}
	if cfg.snapshotEvery != 0 {
		t.Errorf("periodic snapshots on by default: %v", cfg.snapshotEvery)
	}
}

// TestParseFlagsSnapshotInterval pins the periodic-snapshot contract at the
// flag layer: the interval parses as a duration, needs -snapshot to name a
// file, and a negative value is a usage error like every other flag here.
func TestParseFlagsSnapshotInterval(t *testing.T) {
	cfg, err := parseFlags([]string{"-snapshot", "/tmp/c.snap", "-snapshot-interval", "30s"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.snapshotEvery != 30*time.Second {
		t.Errorf("interval = %v, want 30s", cfg.snapshotEvery)
	}
	var errOut strings.Builder
	if _, err := parseFlags([]string{"-snapshot-interval", "30s"}, &errOut); err == nil {
		t.Error("-snapshot-interval without -snapshot accepted")
	} else if !strings.Contains(err.Error(), "-snapshot") {
		t.Errorf("error %v does not name the missing flag", err)
	}
	errOut.Reset()
	if _, err := parseFlags([]string{"-snapshot", "/tmp/c.snap", "-snapshot-interval", "-5s"}, &errOut); err == nil {
		t.Error("negative -snapshot-interval accepted")
	} else if !strings.Contains(err.Error(), "negative") {
		t.Errorf("error %v does not name the problem", err)
	}
}

// TestSnapshotLoopWritesPeriodically drives the timer loop in process: a
// warmed engine, a tiny interval, and a cancel. The loop must produce a
// loadable snapshot while the daemon would still be serving — the property
// that makes a SIGKILL'd daemon boot warm — and stop cleanly on cancel.
func TestSnapshotLoopWritesPeriodically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	eng := service.NewEngine(1, 0)
	sc := scenario.Default()
	want, _, err := eng.RTT(sc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		snapshotLoop(ctx, eng, path, 2*time.Millisecond)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatal("snapshot loop wrote nothing")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done // any in-flight write has finished: the file is a complete snapshot
	warmed := service.NewEngine(1, 0)
	loadSnapshot(warmed, path)
	got, cached, err := warmed.RTT(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("engine warmed from a periodic snapshot answered cold")
	}
	if got != want {
		t.Errorf("warmed answer differs: %+v vs %+v", got, want)
	}
}

// TestSnapshotDumpCost measures what one periodic snapshot costs with a
// populated cache, so the dump-cost note on snapshotLoop stays a measured
// number, not folklore. It only reports; the interval choice is the
// operator's.
func TestSnapshotDumpCost(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement only")
	}
	eng := service.NewEngine(0, 4096)
	sc := scenario.Default()
	for g := 2; g <= 129; g++ { // gamers=1 is a degenerate model the engine rejects
		sc.Gamers = float64(g)
		if _, _, err := eng.RTT(sc); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "cache.snap")
	start := time.Now()
	if err := writeSnapshot(eng, path); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	entries, _, _ := eng.CacheStats()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("dump of %d entries (%d bytes): %v", entries, fi.Size(), elapsed)
}

// TestSnapshotLifecycle drives the daemon's drain-and-reboot persistence
// path in process: write the snapshot the way shutdown does, load it the
// way boot does, and check the warmed engine answers from cache with zero
// computations.
func TestSnapshotLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	donor := service.NewEngine(1, 0)
	sc := scenario.Default()
	want, _, err := donor.RTT(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeSnapshot(donor, path); err != nil {
		t.Fatalf("writeSnapshot: %v", err)
	}

	warmed := service.NewEngine(1, 0)
	loadSnapshot(warmed, path)
	got, cached, err := warmed.RTT(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("warmed engine answered cold")
	}
	if got != want {
		t.Errorf("warmed answer differs: %+v vs %+v", got, want)
	}
	if n := warmed.Computes(); n != 0 {
		t.Errorf("warmed engine ran %d computations, want 0", n)
	}
}

// TestLoadSnapshotToleratesBadFiles: a missing, unreadable or corrupt
// snapshot boots cold — logged, never fatal, never a partial cache.
func TestLoadSnapshotToleratesBadFiles(t *testing.T) {
	dir := t.TempDir()
	eng := service.NewEngine(1, 0)
	loadSnapshot(eng, filepath.Join(dir, "absent.snap"))

	garbage := filepath.Join(dir, "garbage.snap")
	if err := os.WriteFile(garbage, []byte("not a snapshot at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	loadSnapshot(eng, garbage)
	if entries, _, _ := eng.CacheStats(); entries != 0 {
		t.Errorf("bad snapshot left %d entries", entries)
	}
	// The engine still works after both failures.
	if _, _, err := eng.RTT(scenario.Default()); err != nil {
		t.Errorf("engine broken after rejected snapshots: %v", err)
	}
}

// TestWriteSnapshotAtomic: the write goes through a temp file and rename,
// so a prior snapshot survives and no temp litter is left behind.
func TestWriteSnapshotAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.snap")
	eng := service.NewEngine(1, 0)
	if _, _, err := eng.RTT(scenario.Default()); err != nil {
		t.Fatal(err)
	}
	if err := writeSnapshot(eng, path); err != nil {
		t.Fatal(err)
	}
	if err := writeSnapshot(eng, path); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "cache.snap" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("snapshot dir not clean: %v", names)
	}
}
