package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"fpsping/internal/scenario"
	"fpsping/internal/service"
)

func TestParseFlagsSnapshot(t *testing.T) {
	cfg, err := parseFlags([]string{"-snapshot", "/tmp/cache.snap"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.snapshot != "/tmp/cache.snap" {
		t.Errorf("snapshot path %q", cfg.snapshot)
	}
}

// TestSnapshotLifecycle drives the daemon's drain-and-reboot persistence
// path in process: write the snapshot the way shutdown does, load it the
// way boot does, and check the warmed engine answers from cache with zero
// computations.
func TestSnapshotLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	donor := service.NewEngine(1, 0)
	sc := scenario.Default()
	want, _, err := donor.RTT(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeSnapshot(donor, path); err != nil {
		t.Fatalf("writeSnapshot: %v", err)
	}

	warmed := service.NewEngine(1, 0)
	loadSnapshot(warmed, path)
	got, cached, err := warmed.RTT(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("warmed engine answered cold")
	}
	if got != want {
		t.Errorf("warmed answer differs: %+v vs %+v", got, want)
	}
	if n := warmed.Computes(); n != 0 {
		t.Errorf("warmed engine ran %d computations, want 0", n)
	}
}

// TestLoadSnapshotToleratesBadFiles: a missing, unreadable or corrupt
// snapshot boots cold — logged, never fatal, never a partial cache.
func TestLoadSnapshotToleratesBadFiles(t *testing.T) {
	dir := t.TempDir()
	eng := service.NewEngine(1, 0)
	loadSnapshot(eng, filepath.Join(dir, "absent.snap"))

	garbage := filepath.Join(dir, "garbage.snap")
	if err := os.WriteFile(garbage, []byte("not a snapshot at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	loadSnapshot(eng, garbage)
	if entries, _, _ := eng.CacheStats(); entries != 0 {
		t.Errorf("bad snapshot left %d entries", entries)
	}
	// The engine still works after both failures.
	if _, _, err := eng.RTT(scenario.Default()); err != nil {
		t.Errorf("engine broken after rejected snapshots: %v", err)
	}
}

// TestWriteSnapshotAtomic: the write goes through a temp file and rename,
// so a prior snapshot survives and no temp litter is left behind.
func TestWriteSnapshotAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.snap")
	eng := service.NewEngine(1, 0)
	if _, _, err := eng.RTT(scenario.Default()); err != nil {
		t.Fatal(err)
	}
	if err := writeSnapshot(eng, path); err != nil {
		t.Fatal(err)
	}
	if err := writeSnapshot(eng, path); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "cache.snap" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("snapshot dir not clean: %v", names)
	}
}
