// Command gameclient runs one or more bot players against a game server
// (optionally through the shaper) and prints measured ping statistics, the
// way FPS players read the in-game ping (§1 of the paper).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fpsping/internal/emu"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7777", "server (or shaper) UDP address")
	n := flag.Int("n", 1, "number of bot clients")
	interval := flag.Float64("d", 40, "client update interval [ms]")
	duration := flag.Float64("duration", 10, "measurement time [s]")
	flag.Parse()

	var clients []*emu.Client
	for i := 0; i < *n; i++ {
		c, err := emu.NewClient(emu.ClientConfig{
			ServerAddr:     *addr,
			UpdateInterval: time.Duration(*interval * float64(time.Millisecond)),
			Seed:           uint64(100 + i),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "gameclient:", err)
			os.Exit(1)
		}
		defer c.Close()
		clients = append(clients, c)
	}
	fmt.Printf("%d bots joined %s, measuring for %.0fs...\n", *n, *addr, *duration)
	time.Sleep(time.Duration(*duration * float64(time.Second)))

	for i, c := range clients {
		ps := c.Pings()
		if ps.Samples == 0 {
			fmt.Printf("bot %d (id %d): no pings measured\n", i, c.ID())
			continue
		}
		line := fmt.Sprintf("bot %d (id %d): %d pings, mean %.2fms, min %.2fms, max %.2fms",
			i, c.ID(), ps.Samples, 1e3*ps.Summary.Mean(), 1e3*ps.Summary.Min(), 1e3*ps.Summary.Max())
		if q, err := c.PingQuantile(0.99); err == nil {
			line += fmt.Sprintf(", p99 %.2fms", 1e3*q)
		}
		ss := c.Stream()
		line += fmt.Sprintf(" | loss %.1f%%, jitter %.2fms", 100*ss.LossRatio, 1e3*ss.Jitter)
		fmt.Println(line)
	}
}
