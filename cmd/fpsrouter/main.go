// Command fpsrouter scales fpspingd horizontally without losing its cache:
// a reverse proxy that consistent-hashes every request's canonical scenario
// key (internal/scenario) onto a ring of fpspingd replicas, so each
// scenario's memoized computation lives on exactly one replica no matter how
// the question is spelled. Batches are split by per-item key and re-merged
// in order; replica health is polled off /healthz (distinguishing draining
// from dead); failed forwards retry the next ring owner behind a per-replica
// circuit breaker.
//
//	fpsrouter -addr 127.0.0.1:7910 \
//	    -replicas http://127.0.0.1:7911,http://127.0.0.1:7912,http://127.0.0.1:7913
//
// The same ring and policies power a deterministic cluster simulator:
//
//	fpsrouter -sim            # policy comparison (affinity vs random vs
//	fpsrouter -sim -sim-json  # round-robin), byte-reproducible at any -sim-jobs
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fpsping/internal/cluster"
)

// config is the router's parsed command line.
type config struct {
	addr            string
	replicas        []string
	vnodes          int
	policy          string
	seed            uint64
	loadFactor      float64
	healthInterval  time.Duration
	breakerFailures int
	breakerCooldown time.Duration
	timeout         time.Duration
	drain           time.Duration

	bootstrap     string
	bootstrapJSON bool

	sim         bool
	simJSON     bool
	simJobs     int
	simReplicas int
	simRequests int
	simSeed     uint64
}

// parseFlags parses and validates the command line; nonsensical values are a
// usage error at startup, never a silently coerced running router.
func parseFlags(args []string, stderr io.Writer) (config, error) {
	fs := flag.NewFlagSet("fpsrouter", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg config
	var replicas string
	var seed, simSeed uint64
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:7910", "listen address (host:port)")
	fs.StringVar(&replicas, "replicas", "", "comma-separated fpspingd base URLs (required unless -sim)")
	fs.IntVar(&cfg.vnodes, "vnodes", cluster.DefaultVNodes, "virtual nodes per replica on the hash ring")
	fs.StringVar(&cfg.policy, "policy", cluster.PolicyAffinity,
		"routing policy: affinity (consistent-hash the scenario key), random, or roundrobin")
	fs.Uint64Var(&seed, "seed", 1, "seed for the random policy's draws")
	fs.Float64Var(&cfg.loadFactor, "load-factor", 0,
		"bounded-load factor (> 1 spills past an overloaded owner to the next ring candidate; 0 = pure affinity)")
	fs.DurationVar(&cfg.healthInterval, "health-interval", time.Second, "replica /healthz polling period")
	fs.IntVar(&cfg.breakerFailures, "breaker-failures", 3, "consecutive forwarding failures that open a replica's circuit")
	fs.DurationVar(&cfg.breakerCooldown, "breaker-cooldown", 5*time.Second, "how long an open circuit rejects a replica")
	fs.DurationVar(&cfg.timeout, "timeout", 60*time.Second, "per-forwarded-request timeout")
	fs.DurationVar(&cfg.drain, "drain", 10*time.Second, "graceful shutdown drain timeout")

	fs.StringVar(&cfg.bootstrap, "bootstrap", "",
		"one-shot replica bootstrap instead of serving: pre-seed this fpspingd base URL with the cache entries it will own on the -replicas ring (which must include it), from the other replicas as donors, then exit")
	fs.BoolVar(&cfg.bootstrapJSON, "bootstrap-json", false, "emit the bootstrap report as JSON")

	fs.BoolVar(&cfg.sim, "sim", false, "run the deterministic cluster simulator instead of serving")
	fs.BoolVar(&cfg.simJSON, "sim-json", false, "emit the simulator comparison as JSON instead of text")
	fs.IntVar(&cfg.simJobs, "sim-jobs", 1, "simulator worker count (the report is byte-identical at any value)")
	fs.IntVar(&cfg.simReplicas, "sim-replicas", 0, "simulated cluster size (0 = default)")
	fs.IntVar(&cfg.simRequests, "sim-requests", 0, "simulated request count (0 = default)")
	fs.Uint64Var(&simSeed, "sim-seed", 0, "simulator seed (0 = default)")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	cfg.seed, cfg.simSeed = seed, simSeed
	if replicas != "" {
		for _, r := range strings.Split(replicas, ",") {
			if r = strings.TrimSpace(r); r != "" {
				cfg.replicas = append(cfg.replicas, r)
			}
		}
	}
	fail := func(err error) (config, error) {
		fmt.Fprintln(stderr, err)
		fs.Usage()
		return cfg, err
	}
	if !cfg.sim && len(cfg.replicas) == 0 {
		return fail(errors.New("fpsrouter: -replicas is required (or -sim)"))
	}
	if cfg.bootstrap != "" {
		found := false
		for _, r := range cfg.replicas {
			found = found || r == cfg.bootstrap
		}
		if !found {
			return fail(fmt.Errorf("fpsrouter: -bootstrap %s must be listed in -replicas (ownership is computed over the post-join ring)", cfg.bootstrap))
		}
		if len(cfg.replicas) < 2 {
			return fail(errors.New("fpsrouter: -bootstrap needs at least one donor besides the target in -replicas"))
		}
	}
	if cfg.vnodes <= 0 || cfg.vnodes > cluster.MaxVNodes {
		return fail(fmt.Errorf("fpsrouter: -vnodes %d outside 1..%d", cfg.vnodes, cluster.MaxVNodes))
	}
	if cfg.loadFactor != 0 && cfg.loadFactor <= 1 {
		return fail(fmt.Errorf("fpsrouter: -load-factor %g must be > 1 (or 0 to disable)", cfg.loadFactor))
	}
	if cfg.simReplicas < 0 || cfg.simRequests < 0 || cfg.simJobs < 0 {
		return fail(errors.New("fpsrouter: negative -sim-* value (0 means the default)"))
	}
	return cfg, nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if errors.Is(err, flag.ErrHelp) {
		os.Exit(0)
	}
	if err != nil {
		os.Exit(2)
	}
	if cfg.sim {
		if err := runSim(cfg, os.Stdout); err != nil {
			log.Fatal("fpsrouter: ", err)
		}
		return
	}
	if cfg.bootstrap != "" {
		if err := runBootstrap(cfg, os.Stdout); err != nil {
			log.Fatal("fpsrouter: ", err)
		}
		return
	}
	if err := run(cfg); err != nil {
		log.Fatal("fpsrouter: ", err)
	}
}

// runBootstrap pre-seeds one joining replica from its future peers and
// exits: the operational step between booting a fresh fpspingd and
// restarting the router with it in -replicas.
func runBootstrap(cfg config, stdout io.Writer) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	report, err := cluster.Bootstrap(ctx, cluster.BootstrapConfig{
		Replicas: cfg.replicas,
		Target:   cfg.bootstrap,
		VNodes:   cfg.vnodes,
		Timeout:  cfg.timeout,
	})
	if err != nil {
		return err
	}
	if cfg.bootstrapJSON {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		_, err = stdout.Write(append(data, '\n'))
		return err
	}
	fmt.Fprintf(stdout, "bootstrap %s: restored %d entries (cache now %d)\n",
		report.Target, report.Restored, report.CacheEntries)
	for _, d := range report.Donors {
		if d.Err != "" {
			fmt.Fprintf(stdout, "  donor %s: FAILED: %s\n", d.Donor, d.Err)
			continue
		}
		fmt.Fprintf(stdout, "  donor %s: kept %d/%d owned records, restored %d (skipped %d existing, %d full)\n",
			d.Donor, d.Kept, d.Kept+d.Dropped, d.Restored, d.SkippedExisting, d.SkippedFull)
	}
	return nil
}

// runSim answers the capacity-planning question offline: the policy
// comparison for the configured cluster shape, byte-reproducible.
func runSim(cfg config, stdout io.Writer) error {
	sim := cluster.DefaultSimConfig()
	if cfg.simReplicas > 0 {
		sim.Replicas = cfg.simReplicas
	}
	if cfg.simRequests > 0 {
		sim.Requests = cfg.simRequests
	}
	if cfg.simSeed != 0 {
		sim.Seed = cfg.simSeed
	}
	cmp, err := cluster.ComparePolicies(sim, nil, cfg.simJobs)
	if err != nil {
		return err
	}
	if cfg.simJSON {
		_, err = stdout.Write(cmp.JSON())
		return err
	}
	_, err = io.WriteString(stdout, cmp.Text())
	return err
}

func run(cfg config) error {
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Replicas:        cfg.replicas,
		VNodes:          cfg.vnodes,
		Policy:          cfg.policy,
		Seed:            cfg.seed,
		LoadFactor:      cfg.loadFactor,
		HealthInterval:  cfg.healthInterval,
		BreakerFailures: cfg.breakerFailures,
		BreakerCooldown: cfg.breakerCooldown,
		Timeout:         cfg.timeout,
	})
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rt.Start(ctx)

	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("fpsrouter: routing %d replicas on http://%s (policy=%s vnodes=%d load-factor=%g)",
		len(cfg.replicas), cfg.addr, cfg.policy, cfg.vnodes, cfg.loadFactor)
	errc := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	log.Printf("fpsrouter: draining (up to %s)", cfg.drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return <-errc
}
