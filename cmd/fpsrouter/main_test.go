package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fpsping/internal/cluster"
)

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-replicas", "http://a:1, http://b:2 ,http://c:3",
		"-policy", "random", "-vnodes", "128", "-load-factor", "1.25",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"http://a:1", "http://b:2", "http://c:3"}; strings.Join(cfg.replicas, "|") != strings.Join(want, "|") {
		t.Errorf("replicas = %v, want %v", cfg.replicas, want)
	}
	if cfg.policy != "random" || cfg.vnodes != 128 || cfg.loadFactor != 1.25 {
		t.Errorf("parsed %+v", cfg)
	}
}

func TestParseFlagsRejects(t *testing.T) {
	cases := [][]string{
		{},                   // no replicas, no -sim
		{"-replicas", " , "}, // only blanks
		{"-replicas", "http://a", "-vnodes", "0"},
		{"-replicas", "http://a", "-vnodes", "999999"},
		{"-replicas", "http://a", "-load-factor", "0.9"},
		{"-sim", "-sim-requests", "-5"},
	}
	for i, args := range cases {
		if _, err := parseFlags(args, io.Discard); err == nil {
			t.Errorf("case %d (%v): accepted", i, args)
		}
	}
	if _, err := parseFlags([]string{"-sim"}, io.Discard); err != nil {
		t.Errorf("-sim without -replicas must be valid: %v", err)
	}
}

// TestSimGolden pins the default simulator comparison byte for byte against
// the committed golden file, at two worker counts. This is the same contract
// the paper report has: any change to the simulator, the ring hash or the
// policies that shifts a number must come with a refreshed golden file.
func TestSimGolden(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", "cluster-sim.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{1, 4} {
		cfg, err := parseFlags([]string{"-sim", "-sim-jobs", map[int]string{1: "1", 4: "4"}[jobs]}, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if err := runSim(cfg, &out); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), golden) {
			t.Errorf("-sim-jobs %d output differs from testdata/golden/cluster-sim.txt:\n%s", jobs, out.String())
		}
	}
}

// TestSimJSON checks the machine-readable form parses back into a
// Comparison whose affinity result beats random — the ordering the CI
// cluster gate checks the real topology against.
func TestSimJSON(t *testing.T) {
	cfg, err := parseFlags([]string{"-sim", "-sim-json"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := runSim(cfg, &out); err != nil {
		t.Fatal(err)
	}
	var cmp cluster.Comparison
	if err := json.Unmarshal(out.Bytes(), &cmp); err != nil {
		t.Fatal(err)
	}
	aff, rnd := cmp.Result(cluster.PolicyAffinity), cmp.Result(cluster.PolicyRandom)
	if aff == nil || rnd == nil {
		t.Fatal("JSON comparison missing a policy")
	}
	if aff.HitRatio <= rnd.HitRatio {
		t.Errorf("JSON report: affinity %.4f <= random %.4f", aff.HitRatio, rnd.HitRatio)
	}
}

// TestSimOverrides checks the -sim-* overrides reach the simulator config.
func TestSimOverrides(t *testing.T) {
	cfg, err := parseFlags([]string{"-sim", "-sim-json", "-sim-replicas", "5", "-sim-requests", "2000", "-sim-seed", "9"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := runSim(cfg, &out); err != nil {
		t.Fatal(err)
	}
	var cmp cluster.Comparison
	if err := json.Unmarshal(out.Bytes(), &cmp); err != nil {
		t.Fatal(err)
	}
	if cmp.Config.Replicas != 5 || cmp.Config.Requests != 2000 || cmp.Config.Seed != 9 {
		t.Errorf("overrides not applied: %+v", cmp.Config)
	}
}
