package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"fpsping/internal/cluster"
	"fpsping/internal/service"
)

func TestParseFlagsBootstrap(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-replicas", "http://a:1,http://b:2,http://c:3",
		"-bootstrap", "http://c:3", "-bootstrap-json",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.bootstrap != "http://c:3" || !cfg.bootstrapJSON {
		t.Errorf("parsed %+v", cfg)
	}
}

func TestParseFlagsBootstrapRejects(t *testing.T) {
	cases := [][]string{
		// Target not in the replica set: ownership would be computed over a
		// ring the router never runs.
		{"-replicas", "http://a:1,http://b:2", "-bootstrap", "http://c:3"},
		// No donors.
		{"-replicas", "http://a:1", "-bootstrap", "http://a:1"},
	}
	for i, args := range cases {
		if _, err := parseFlags(args, io.Discard); err == nil {
			t.Errorf("case %d (%v): accepted", i, args)
		}
	}
}

// TestRunBootstrapLive drives the one-shot bootstrap mode end to end: a
// filled donor, a fresh target, and the JSON report confirming entries
// moved to where the post-join ring says they belong.
func TestRunBootstrapLive(t *testing.T) {
	boot := func() (*service.Engine, string) {
		eng := service.NewEngine(1, 0)
		srv := httptest.NewServer(service.NewServer("127.0.0.1:0", eng).Handler())
		t.Cleanup(srv.Close)
		return eng, srv.URL
	}
	_, donorURL := boot()
	targetEng, targetURL := boot()
	for g := 60; g < 80; g++ {
		resp, err := http.Get(fmt.Sprintf("%s/v1/rtt?gamers=%d", donorURL, g))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	cfg, err := parseFlags([]string{
		"-replicas", donorURL + "," + targetURL,
		"-bootstrap", targetURL, "-bootstrap-json",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := runBootstrap(cfg, &out); err != nil {
		t.Fatalf("runBootstrap: %v", err)
	}
	var report cluster.BootstrapReport
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, out.String())
	}
	if report.Target != targetURL || len(report.Donors) != 1 {
		t.Fatalf("implausible report: %+v", report)
	}
	if report.Restored == 0 {
		t.Fatalf("bootstrap moved nothing (donor kept %d): %+v", report.Donors[0].Kept, report)
	}
	if entries, _, _ := targetEng.CacheStats(); entries != report.CacheEntries {
		t.Errorf("target cache has %d entries, report says %d", entries, report.CacheEntries)
	}
	if n := targetEng.Computes(); n != 0 {
		t.Errorf("bootstrap caused %d computations on the target", n)
	}
}
