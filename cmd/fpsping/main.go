// Command fpsping is the front door to the ping-time model: it computes RTT
// quantiles for access-network gaming scenarios (the paper's §4), sweeps
// load curves, dimensions links, regenerates every paper table and figure,
// runs the packet-level simulator against the analytic model, and analyzes
// packet traces.
//
// Usage:
//
//	fpsping rtt        [flags]   one scenario's RTT quantile + decomposition
//	fpsping sweep      [flags]   RTT-vs-load series as CSV
//	fpsping dimension  [flags]   max load / max gamers under an RTT bound
//	fpsping experiments [-id x]  regenerate paper tables and figures
//	fpsping all        [-jobs n] the complete report, fully parallel
//	fpsping simulate   [flags]   packet-level simulation vs the model
//	fpsping analyze    -file f   Table-3 statistics of a trace CSV
//	fpsping models               list the built-in game traffic models
//
// Heavy commands (sweep, experiments, all) take -jobs to bound the worker
// pool (default: one per CPU); output is byte-identical at any -jobs value.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"fpsping/internal/core"
	"fpsping/internal/dist"
	"fpsping/internal/experiments"
	"fpsping/internal/netsim"
	"fpsping/internal/runner"
	"fpsping/internal/scenario"
	"fpsping/internal/trace"
	"fpsping/internal/traffic"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "rtt":
		err = cmdRTT(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "dimension":
		err = cmdDimension(os.Args[2:])
	case "experiments":
		err = cmdExperiments(os.Args[2:])
	case "all":
		err = cmdAll(os.Args[2:])
	case "simulate":
		err = cmdSimulate(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "models":
		err = cmdModels(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "fpsping: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpsping:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `fpsping - ping times in First Person Shooter games (CWI PNA-R0608 reproduction)

commands:
  rtt          compute one scenario's RTT quantile and its decomposition
  sweep        print an RTT-vs-load series as CSV
  dimension    maximum load and gamer count under an RTT bound
  experiments  regenerate the paper's tables and figures (-id to pick one)
  all          emit the complete report, all artifacts in parallel
  simulate     run the packet-level simulator and compare with the model
  analyze      compute Table-3 statistics from a trace CSV
  models       list built-in game traffic models

run 'fpsping <command> -h' for flags. Scenario flags (-gamers, -ps, -t, ...)
are shared verbatim with the fpspingd daemon's JSON/query parameters: the
same scenario definition works on both (see internal/scenario and README).
`)
}

// jobsFlag installs the shared -jobs worker-pool flag.
func jobsFlag(fs *flag.FlagSet) *int {
	return fs.Int("jobs", runner.DefaultWorkers(),
		"worker pool size for parallel work (output is identical at any value)")
}

// profileConfig holds the shared -cpuprofile/-memprofile flag values.
type profileConfig struct {
	cpu, mem *string
}

// profileFlags installs the shared profiling flags on a command's flag set.
func profileFlags(fs *flag.FlagSet) *profileConfig {
	return &profileConfig{
		cpu: fs.String("cpuprofile", "", "write a CPU profile of the command body to this file"),
		mem: fs.String("memprofile", "", "write a heap profile to this file when the command finishes"),
	}
}

// run executes a command body under the requested profiles. The profiles
// cover the body only (flag parsing and setup are excluded); the heap
// profile is taken after a final GC so it reflects retained memory rather
// than transient garbage. Profile write errors are reported alongside the
// body's error so a truncated profile is never silent.
func (p *profileConfig) run(body func() error) error {
	var cpu *os.File
	if *p.cpu != "" {
		f, err := os.Create(*p.cpu)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		cpu = f
	}
	errs := []error{body()}
	if cpu != nil {
		pprof.StopCPUProfile()
		errs = append(errs, cpu.Close())
	}
	if *p.mem != "" {
		f, err := os.Create(*p.mem)
		if err != nil {
			errs = append(errs, err)
		} else {
			runtime.GC()
			errs = append(errs, pprof.WriteHeapProfile(f), f.Close())
		}
	}
	return errors.Join(errs...)
}

func cmdRTT(args []string) error {
	fs := flag.NewFlagSet("rtt", flag.ExitOnError)
	sc := scenario.Flags(fs)
	prof := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	return prof.run(func() error {
		m := sc.Model()
		comp, err := m.Decompose()
		if err != nil {
			return err
		}
		mean, err := m.MeanRTT()
		if err != nil {
			return err
		}
		fmt.Printf("scenario      %s\n", m)
		fmt.Printf("downlink load %.1f%%   uplink load %.1f%%\n", 100*m.DownlinkLoad(), 100*m.UplinkLoad())
		fmt.Printf("mean RTT      %8.2f ms\n", 1000*mean)
		fmt.Printf("RTT quantile  %8.2f ms at %g\n", 1000*comp.Total, m.Quantile)
		fmt.Printf("  serialization  %8.3f ms\n", 1000*comp.Serialization)
		if comp.Fixed > 0 {
			fmt.Printf("  fixed          %8.3f ms\n", 1000*comp.Fixed)
		}
		fmt.Printf("  upstream  q    %8.3f ms (isolated quantile)\n", 1000*comp.Upstream)
		fmt.Printf("  burst-wait q   %8.3f ms (isolated quantile)\n", 1000*comp.BurstWait)
		fmt.Printf("  position  q    %8.3f ms (isolated quantile)\n", 1000*comp.Position)
		return nil
	})
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	sc := scenario.Flags(fs)
	from := fs.Float64("from", 0.05, "first downlink load")
	to := fs.Float64("to", 0.90, "last downlink load")
	step := fs.Float64("step", 0.05, "load step")
	jobs := jobsFlag(fs)
	prof := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !(*step > 0) || !(*from > 0) || *to < *from {
		return fmt.Errorf("bad sweep range [%g, %g] step %g", *from, *to, *step)
	}
	return prof.run(func() error {
		m := sc.Model()
		pts, err := m.SweepLoadsParallel(core.LoadGrid(*from, *to, *step), *jobs)
		if err != nil {
			return err
		}
		fmt.Println("load,gamers,rtt_ms")
		for _, p := range pts {
			fmt.Printf("%.4f,%.2f,%.3f\n", p.Load, p.Gamers, 1000*p.RTT)
		}
		return nil
	})
}

func cmdDimension(args []string) error {
	fs := flag.NewFlagSet("dimension", flag.ExitOnError)
	sc := scenario.Flags(fs)
	bound := fs.Float64("bound", 50, "RTT bound [ms]")
	prof := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	return prof.run(func() error {
		m := sc.Model()
		res, err := m.MaxLoad(*bound / 1000)
		if err != nil {
			return err
		}
		fmt.Printf("scenario          %s\n", m)
		fmt.Printf("RTT bound         %.1f ms\n", *bound)
		fmt.Printf("max downlink load %.1f%%\n", 100*res.MaxDownlinkLoad)
		fmt.Printf("max gamers        %d\n", res.MaxGamers)
		fmt.Printf("RTT at max load   %.2f ms\n", 1000*res.RTTAtMax)
		return nil
	})
}

func cmdExperiments(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	id := fs.String("id", "all", "experiment id (see 'fpsping experiments -id list')")
	csvDir := fs.String("csv", "", "also write figure series as CSV into this directory")
	jobs := jobsFlag(fs)
	prof := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "list" {
		for _, e := range experiments.Index() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return nil
	}
	emit := func(e experiments.Entry, res experiments.Renderer) error {
		fmt.Println(res.Render())
		if *csvDir != "" {
			if c, ok := res.(experiments.CSVer); ok {
				path := *csvDir + string(os.PathSeparator) + e.ID + ".csv"
				f, err := os.Create(path)
				if err != nil {
					return err
				}
				if err := experiments.WriteCSV(f, c); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n\n", path)
			}
		}
		return nil
	}
	return prof.run(func() error {
		if *id == "all" {
			// Run every artifact concurrently, then emit in presentation order.
			// Artifacts that succeeded are printed even when others failed, so a
			// broken experiment doesn't discard the rest of the run.
			runner.SetMaxParallel(*jobs)
			idx := experiments.Index()
			results, errs := runner.TryMap(len(idx), runner.Options{Workers: *jobs},
				func(i int) (experiments.Renderer, error) {
					return idx[i].Run(*jobs)
				})
			var failed []error
			for i, e := range idx {
				if errs[i] != nil {
					failed = append(failed, fmt.Errorf("%s: %w", e.ID, errs[i]))
					continue
				}
				if err := emit(e, results[i]); err != nil {
					return err
				}
			}
			return errors.Join(failed...)
		}
		e, err := experiments.Find(*id)
		if err != nil {
			return err
		}
		res, err := e.Run(*jobs)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		return emit(e, res)
	})
}

// cmdAll emits the complete report: every paper artifact regenerated
// concurrently (across artifacts and inside each one) and rendered in
// presentation order. The output is byte-identical at any -jobs value.
func cmdAll(args []string) error {
	fs := flag.NewFlagSet("all", flag.ExitOnError)
	jobs := jobsFlag(fs)
	prof := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	return prof.run(func() error {
		report, err := experiments.Report(*jobs)
		fmt.Print(report) // on partial failure this is the successful sections
		return err
	})
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	sc := scenario.Default()
	sc.Load = 0.5 // simulate defaults to a half-loaded downlink
	sc.Register(fs)
	duration := fs.Float64("duration", 300, "simulated seconds")
	seed := fs.Uint64("seed", 1, "random seed")
	level := fs.Float64("simq", 0.999, "quantile level to compare (sim needs samples)")
	prof := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	return prof.run(func() error {
		m := sc.Model()
		m.Quantile = *level
		pred, err := m.RTTQuantile()
		if err != nil {
			return err
		}
		cfg, err := scenarioFromModel(m)
		if err != nil {
			return err
		}
		s, err := netsim.NewScenario(cfg, *seed)
		if err != nil {
			return err
		}
		res, err := s.Run(*duration)
		if err != nil {
			return err
		}
		fmt.Printf("scenario        %s\n", m)
		fmt.Printf("simulated       %.0fs, %d RTT samples, %d events, %d drops\n",
			*duration, res.RTT.Summary.Count(), res.Events, res.Drops)
		fmt.Printf("mean RTT        sim %8.3f ms\n", 1000*res.RTT.Summary.Mean())
		if mean, err := m.MeanRTT(); err == nil {
			fmt.Printf("                model %6.3f ms\n", 1000*mean)
		}
		simQ, err := res.RTT.Quantile(*level)
		if err != nil {
			return fmt.Errorf("need a longer -duration for quantile %g: %w", *level, err)
		}
		fmt.Printf("p%v RTT      sim %8.3f ms\n", *level, 1000*simQ)
		fmt.Printf("                model %6.3f ms\n", 1000*pred)
		return nil
	})
}

// scenarioFromModel translates the analytic scenario into simulator config
// with the Erlang burst-total law.
func scenarioFromModel(m core.Model) (netsim.Config, error) {
	if err := m.Validate(); err != nil {
		return netsim.Config{}, err
	}
	gamers := int(m.Gamers + 0.5)
	if gamers < 1 {
		gamers = 1
	}
	erl, err := dist.ErlangByMean(m.ErlangOrder, float64(gamers)*m.ServerPacketBytes)
	if err != nil {
		return netsim.Config{}, err
	}
	d := m.BurstInterval
	if m.ClientInterval > 0 {
		d = m.ClientInterval
	}
	return netsim.Config{
		Gamers:       gamers,
		ClientSize:   dist.NewDeterministic(m.ClientPacketBytes),
		ClientIAT:    dist.NewDeterministic(d),
		BurstTotal:   erl,
		BurstIAT:     dist.NewDeterministic(m.BurstInterval),
		UpRate:       m.UplinkAccessRate,
		DownRate:     m.DownlinkAccessRate,
		AggRate:      m.AggregateRate,
		ShuffleBurst: true,
	}, nil
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	file := fs.String("file", "", "trace CSV (as written by the netsim capture)")
	gap := fs.Float64("gap", 10, "burst grouping gap threshold [ms]")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		return fmt.Errorf("analyze: -file required")
	}
	f, err := os.Open(*file)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.ReadCSV(f)
	if err != nil {
		return err
	}
	ts, err := trace.Analyze(tr, *gap/1000)
	if err != nil {
		return err
	}
	fmt.Printf("%d records over %.1fs\n\n", tr.Len(), tr.Duration())
	fmt.Print(ts.FormatTable())
	return nil
}

func cmdModels(args []string) error {
	fs := flag.NewFlagSet("models", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	for _, m := range traffic.AllModels() {
		fmt.Printf("%s\n  source: %s\n", m.Name, m.Source)
		fmt.Printf("  server: size %s every %s (%.1f kbit/s for 12 players)\n",
			m.Server.PacketSize, m.Server.IAT, m.OfferedDownstreamBitRate(12)/1000)
		for _, f := range m.Client {
			fmt.Printf("  client %-20s size %s every %s (%.1f kbit/s)\n",
				f.Name+":", f.Size, f.IAT, f.MeanRateBitPerSec()/1000)
		}
		fmt.Printf("  notes: %s\n\n", wrap(m.Notes, 76, "         "))
	}
	return nil
}

func wrap(s string, width int, indent string) string {
	words := strings.Fields(s)
	var b strings.Builder
	line := 0
	for i, w := range words {
		if line+len(w)+1 > width && line > 0 {
			b.WriteString("\n")
			b.WriteString(indent)
			line = 0
		} else if i > 0 {
			b.WriteString(" ")
			line++
		}
		b.WriteString(w)
		line += len(w)
	}
	return b.String()
}
