package main

import (
	"errors"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fpsping/internal/core"
)

func TestScenarioFromModelTranslation(t *testing.T) {
	m := core.DSLDefaults()
	m.Gamers = 50
	m.ServerPacketBytes = 125
	m.BurstInterval = 0.060
	m.ErlangOrder = 9
	cfg, err := scenarioFromModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Gamers != 50 {
		t.Errorf("gamers = %d", cfg.Gamers)
	}
	if cfg.ClientSize.Mean() != 80 || cfg.ClientIAT.Mean() != 0.060 {
		t.Errorf("client laws %v/%v", cfg.ClientSize.Mean(), cfg.ClientIAT.Mean())
	}
	// Burst total preserves the Erlang mean N*PS.
	if math.Abs(cfg.BurstTotal.Mean()-50*125) > 1e-9 {
		t.Errorf("burst mean %v", cfg.BurstTotal.Mean())
	}
	if cfg.UpRate != m.UplinkAccessRate || cfg.AggRate != m.AggregateRate {
		t.Error("rates not forwarded")
	}
	if !cfg.ShuffleBurst {
		t.Error("shuffle should be on (uniform position assumption)")
	}
	// Invalid model is rejected.
	bad := m
	bad.ErlangOrder = 0
	if _, err := scenarioFromModel(bad); err == nil {
		t.Error("accepted invalid model")
	}
}

func TestWrap(t *testing.T) {
	s := wrap(strings.Repeat("word ", 30), 40, "  ")
	for _, line := range strings.Split(s, "\n") {
		if len(line) > 46 {
			t.Errorf("line too long: %q", line)
		}
	}
	if wrap("", 10, "") != "" {
		t.Error("empty wrap")
	}
}

func TestProfileFlagsParse(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	prof := profileFlags(fs)
	if err := fs.Parse([]string{"-cpuprofile", "/tmp/cpu.out", "-memprofile", "/tmp/mem.out"}); err != nil {
		t.Fatal(err)
	}
	if *prof.cpu != "/tmp/cpu.out" || *prof.mem != "/tmp/mem.out" {
		t.Errorf("parsed %q / %q", *prof.cpu, *prof.mem)
	}
	// Defaults are off.
	fs2 := flag.NewFlagSet("y", flag.ContinueOnError)
	prof2 := profileFlags(fs2)
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *prof2.cpu != "" || *prof2.mem != "" {
		t.Error("profiling on by default")
	}
}

func TestProfileRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "mem.pprof")
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	prof := profileFlags(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := prof.run(func() error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("body did not run")
	}
	for _, f := range []string{cpu, mem} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", f)
		}
	}
}

func TestProfileRunErrors(t *testing.T) {
	// The body's error survives profiling.
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	prof := profileFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	want := errors.New("boom")
	if err := prof.run(func() error { return want }); !errors.Is(err, want) {
		t.Errorf("body error lost: %v", err)
	}
	// An uncreatable CPU profile path fails before the body runs.
	fs2 := flag.NewFlagSet("y", flag.ContinueOnError)
	prof2 := profileFlags(fs2)
	if err := fs2.Parse([]string{"-cpuprofile", filepath.Join(t.TempDir(), "no", "such", "dir", "x")}); err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := prof2.run(func() error { ran = true; return nil }); err == nil {
		t.Error("bad cpuprofile path accepted")
	}
	if ran {
		t.Error("body ran despite profile setup failure")
	}
}
