package main

import (
	"math"
	"strings"
	"testing"

	"fpsping/internal/core"
)

func TestScenarioFromModelTranslation(t *testing.T) {
	m := core.DSLDefaults()
	m.Gamers = 50
	m.ServerPacketBytes = 125
	m.BurstInterval = 0.060
	m.ErlangOrder = 9
	cfg, err := scenarioFromModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Gamers != 50 {
		t.Errorf("gamers = %d", cfg.Gamers)
	}
	if cfg.ClientSize.Mean() != 80 || cfg.ClientIAT.Mean() != 0.060 {
		t.Errorf("client laws %v/%v", cfg.ClientSize.Mean(), cfg.ClientIAT.Mean())
	}
	// Burst total preserves the Erlang mean N*PS.
	if math.Abs(cfg.BurstTotal.Mean()-50*125) > 1e-9 {
		t.Errorf("burst mean %v", cfg.BurstTotal.Mean())
	}
	if cfg.UpRate != m.UplinkAccessRate || cfg.AggRate != m.AggregateRate {
		t.Error("rates not forwarded")
	}
	if !cfg.ShuffleBurst {
		t.Error("shuffle should be on (uniform position assumption)")
	}
	// Invalid model is rejected.
	bad := m
	bad.ErlangOrder = 0
	if _, err := scenarioFromModel(bad); err == nil {
		t.Error("accepted invalid model")
	}
}

func TestWrap(t *testing.T) {
	s := wrap(strings.Repeat("word ", 30), 40, "  ")
	for _, line := range strings.Split(s, "\n") {
		if len(line) > 46 {
			t.Errorf("line too long: %q", line)
		}
	}
	if wrap("", 10, "") != "" {
		t.Error("empty wrap")
	}
}
