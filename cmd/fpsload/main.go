// Command fpsload is the closed-loop load generator for fpspingd: the tool
// that answers the dimensioning question for our own service. N concurrent
// workers draw operations from a seeded scenario mix and drive every daemon
// endpoint, then print achieved RPS, error counts, latency quantiles and
// the cache hit ratio of the measured phase.
//
//	fpspingd -addr 127.0.0.1:7900 &
//	fpsload -addr http://127.0.0.1:7900 -mix hot  -jobs 8 -duration 10s
//	fpsload -addr http://127.0.0.1:7900 -mix zipf -jobs 16 -count 5000
//	fpsload -addr http://127.0.0.1:7900 -mix cold -endpoints rtt=1 -duration 5s
//
// Mixes: "hot" draws uniformly from a small seeded pool (all cache hits
// after warmup), "zipf" draws rank-skewed from the pool (realistic
// popularity), "cold" draws a fresh scenario per request (no hits, raw
// compute throughput). The i-th operation is a pure function of (seed, i),
// so the issued request multiset is identical at any -jobs value; the
// report's fingerprint makes that checkable.
//
// CI gating: -max-errors and -hit-floor turn the report into an exit code,
// and -json writes the machine-readable artifact.
//
// Cluster runs: point -addr at an fpsrouter and list the individual replica
// base URLs with -replicas to get a per-replica breakdown (requests, hits,
// computes from each replica's own counters). -affinity-probes N then proves
// scenario affinity end to end: N fresh keys, each sent repeatedly through
// the router, each required to land all its traffic — and exactly one
// compute — on a single replica.
//
//	fpsload -addr http://127.0.0.1:7910 \
//	  -replicas http://127.0.0.1:7911,http://127.0.0.1:7912,http://127.0.0.1:7913 \
//	  -mix hot -duration 10s -max-errors 0 -hit-floor 0.95 -affinity-probes 4
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fpsping/internal/client"
	"fpsping/internal/load"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fpsload:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fpsload", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:7900", "daemon base URL")
	jobs := fs.Int("jobs", 8, "concurrent closed-loop workers")
	seed := fs.Uint64("seed", 1, "scenario stream seed (same seed = same request multiset at any -jobs)")
	mix := fs.String("mix", "hot", "scenario mix: hot, zipf or cold")
	pool := fs.Int("pool", 16, "distinct scenarios behind the hot and zipf mixes")
	zipfSkew := fs.Float64("zipf-s", 1.1, "zipf exponent for -mix zipf")
	batch := fs.Int("batch", 8, "scenarios per rtt:batch operation")
	endpoints := fs.String("endpoints", "", `endpoint mix weights, e.g. "rtt=16,batch=2,sweep=1,dimension=1,models=1" (default exactly that)`)
	warmup := fs.Int("warmup", 1, "deterministic warmup passes over the mix's key space before measuring (-1 = none)")
	count := fs.Int("count", 0, "run exactly this many measured operations (0 = use -duration)")
	duration := fs.Duration("duration", 10*time.Second, "measured run length when -count is 0")
	timeout := fs.Duration("timeout", client.DefaultTimeout, "per-request timeout")
	wait := fs.Duration("wait", 0, "poll the daemon's /healthz up to this long before starting (0 = fail fast)")
	jsonPath := fs.String("json", "", "also write the report as JSON to this path")
	maxErrors := fs.Int("max-errors", -1, "exit 1 when warmup+measured errors exceed this (-1 = no gate)")
	hitFloor := fs.Float64("hit-floor", -1, "exit 1 when the measured cache hit ratio is below this (-1 = no gate)")
	replicas := fs.String("replicas", "", "comma-separated replica base URLs behind a router -addr (adds a per-replica report section)")
	affinityProbes := fs.Int("affinity-probes", 0, "after the run, prove scenario affinity with this many fresh keys (requires -replicas; exit 1 on failure)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var replicaAddrs []string
	for _, addr := range strings.Split(*replicas, ",") {
		if addr = strings.TrimSpace(addr); addr != "" {
			replicaAddrs = append(replicaAddrs, addr)
		}
	}
	if *affinityProbes > 0 && len(replicaAddrs) < 2 {
		return fmt.Errorf("-affinity-probes needs -replicas with at least 2 addresses")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cli, err := client.New(*addr, client.WithTimeout(*timeout))
	if err != nil {
		return err
	}
	if *wait > 0 {
		if err := cli.WaitReady(ctx, *wait); err != nil {
			return err
		}
	}
	weights := load.DefaultWeights()
	if *endpoints != "" {
		if weights, err = load.ParseWeights(*endpoints); err != nil {
			return err
		}
	}

	rep, err := load.Run(ctx, load.Config{
		Client:         cli,
		Jobs:           *jobs,
		Seed:           *seed,
		Mix:            load.Mix(*mix),
		PoolSize:       *pool,
		ZipfSkew:       *zipfSkew,
		BatchSize:      *batch,
		Weights:        weights,
		WarmupPasses:   *warmup,
		Count:          *count,
		Duration:       *duration,
		RequestTimeout: *timeout,
		ReplicaAddrs:   replicaAddrs,
	})
	if err != nil {
		return err
	}
	fmt.Print(rep.Text())

	var affinity *load.AffinityReport
	if *affinityProbes > 0 {
		affinity, err = load.CheckAffinity(ctx, load.AffinityConfig{
			Router:         cli,
			ReplicaAddrs:   replicaAddrs,
			Probes:         *affinityProbes,
			Seed:           *seed,
			RequestTimeout: *timeout,
		})
		if err != nil {
			return err
		}
		fmt.Print(affinity.Text())
	}
	if *jsonPath != "" {
		// The affinity section embeds alongside the report's own top-level
		// fields, so existing jq gates keep working unchanged.
		artifact := struct {
			*load.Report
			Affinity *load.AffinityReport `json:"affinity,omitempty"`
		}{rep, affinity}
		data, err := json.MarshalIndent(artifact, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}

	if *maxErrors >= 0 && rep.TotalErrors() > *maxErrors {
		return fmt.Errorf("%d errors exceed the -max-errors %d gate", rep.TotalErrors(), *maxErrors)
	}
	if *hitFloor >= 0 {
		if !rep.Cache.Valid {
			return fmt.Errorf("-hit-floor %g set but no model-endpoint traffic was measured", *hitFloor)
		}
		if rep.Cache.HitRatio < *hitFloor {
			return fmt.Errorf("cache hit ratio %.3f below the -hit-floor %g gate", rep.Cache.HitRatio, *hitFloor)
		}
	}
	if affinity != nil && !affinity.OK {
		return fmt.Errorf("affinity check failed: %d/%d probes pinned to a single replica",
			affinity.Passed, len(affinity.Probes))
	}
	return nil
}
