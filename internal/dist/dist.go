// Package dist provides the probability laws the ping-time model composes:
// the deterministic, extreme-value (Gumbel), Erlang and lognormal components
// the paper fits to FPS traffic (§2), plus the exponential, uniform, normal
// and finite-mixture laws the validators and extensions need.
//
// Every law implements Distribution - analytic moments, CDF, quantile and
// reproducible sampling on a math/rand/v2 generator - so the queueing
// solvers can be cross-checked against simulation draw for draw.
package dist

import (
	"math"
	"math/rand/v2"
)

// EulerGamma is the Euler-Mascheroni constant: the Gumbel law Ext(a, b) has
// mean a + EulerGamma*b.
const EulerGamma = 0.5772156649015328606065120900824024310421593359399235988

// Distribution is a one-dimensional probability law with analytic moments.
type Distribution interface {
	// Sample draws one value using the given generator.
	Sample(r *rand.Rand) float64
	// Mean returns the expectation E[X].
	Mean() float64
	// Var returns the variance Var[X].
	Var() float64
	// CDF returns P(X <= x).
	CDF(x float64) float64
	// Quantile returns the p-quantile, the smallest x with CDF(x) >= p
	// for p in (0, 1).
	Quantile(p float64) float64
}

// splitmix64 is the seed mixer behind NewRNG and SplitSeed.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SplitSeed derives an independent child seed from a base seed and a stream
// path (shard index, replica index, ...). The same (seed, stream) always maps
// to the same child, and distinct streams give decorrelated generators, so
// parallel jobs can each seed their own RNG and produce output independent of
// worker count or execution order.
func SplitSeed(seed uint64, stream ...uint64) uint64 {
	for i, w := range stream {
		seed = splitmix64(seed ^ splitmix64(w+uint64(i)*0xd1342543de82ef95))
	}
	return seed
}

// NewRNG returns a reproducible generator: the same seed always yields the
// same stream, independent of process or platform (PCG from math/rand/v2).
// Optional stream words split the seed SplitSeed-style, giving each parallel
// job (shard, replica, curve...) its own decorrelated generator: NewRNG(seed)
// and NewRNG(seed, jobIndex) never share a stream.
func NewRNG(seed uint64, stream ...uint64) *rand.Rand {
	seed = SplitSeed(seed, stream...)
	return rand.New(rand.NewPCG(splitmix64(seed), splitmix64(seed^0xdeadbeefcafef00d)))
}

// SampleN draws n independent values from d.
func SampleN(d Distribution, r *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.Sample(r)
	}
	return xs
}

// StdDev returns the standard deviation sqrt(Var[X]).
func StdDev(d Distribution) float64 { return math.Sqrt(d.Var()) }

// CoV returns the coefficient of variation StdDev/Mean (0 for degenerate
// laws, +/-Inf when the mean is zero with positive variance).
func CoV(d Distribution) float64 {
	sd := StdDev(d)
	if sd == 0 {
		return 0
	}
	return sd / d.Mean()
}

// quantileBisect inverts a monotone CDF by bracketing then bisection. lo
// must satisfy cdf(lo) < p; hi is grown by doubling steps until
// cdf(hi) >= p (step growth, not hi *= 2, so negative brackets work too).
func quantileBisect(cdf func(float64) float64, p, lo, hi float64) float64 {
	if hi <= lo {
		hi = lo + 1
	}
	step := hi - lo
	for i := 0; i < 200 && cdf(hi) < p; i++ {
		lo = hi
		hi += step
		step *= 2
	}
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if mid <= lo || mid >= hi {
			break // interval at float resolution
		}
		if cdf(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}
