package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Deterministic is the degenerate law Det(v): all mass at Value. The paper
// uses it for periodic packet streams (Det(40 ms) client updates, server
// ticks) and fixed packet sizes.
type Deterministic struct {
	Value float64
}

// NewDeterministic returns Det(v). Every value is valid, so no error.
func NewDeterministic(v float64) Deterministic { return Deterministic{Value: v} }

// Sample returns Value.
func (d Deterministic) Sample(*rand.Rand) float64 { return d.Value }

// Mean returns Value.
func (d Deterministic) Mean() float64 { return d.Value }

// Var returns 0.
func (d Deterministic) Var() float64 { return 0 }

// CDF is the unit step at Value.
func (d Deterministic) CDF(x float64) float64 {
	if x < d.Value {
		return 0
	}
	return 1
}

// Quantile returns Value for every p.
func (d Deterministic) Quantile(float64) float64 { return d.Value }

// Exponential is Exp(Rate): mean 1/Rate. It is both the Erlang order-1
// special case and the inter-arrival law of the Poisson superposition limit
// the M/E_K/1 validator relies on.
type Exponential struct {
	Rate float64
}

// NewExponential returns Exp(rate); rate must be positive.
func NewExponential(rate float64) (Exponential, error) {
	if !(rate > 0) {
		return Exponential{}, fmt.Errorf("dist: exponential rate %g must be > 0", rate)
	}
	return Exponential{Rate: rate}, nil
}

// Sample draws from Exp(Rate).
func (e Exponential) Sample(r *rand.Rand) float64 { return r.ExpFloat64() / e.Rate }

// Mean returns 1/Rate.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// Var returns 1/Rate^2.
func (e Exponential) Var() float64 { return 1 / (e.Rate * e.Rate) }

// CDF returns 1 - e^{-Rate x} for x >= 0.
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-e.Rate * x)
}

// Quantile returns -ln(1-p)/Rate.
func (e Exponential) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	return -math.Log1p(-p) / e.Rate
}

// Uniform is U(Lo, Hi), used for the injected-jitter extension ([23]'s
// uniform downstream jitter) and as an intentionally wrong model in
// goodness-of-fit tests.
type Uniform struct {
	Lo, Hi float64
}

// NewUniform returns U(lo, hi); requires lo < hi.
func NewUniform(lo, hi float64) (Uniform, error) {
	if !(lo < hi) {
		return Uniform{}, fmt.Errorf("dist: uniform bounds [%g, %g] need lo < hi", lo, hi)
	}
	return Uniform{Lo: lo, Hi: hi}, nil
}

// Sample draws from U(Lo, Hi).
func (u Uniform) Sample(r *rand.Rand) float64 { return u.Lo + (u.Hi-u.Lo)*r.Float64() }

// Mean returns (Lo+Hi)/2.
func (u Uniform) Mean() float64 { return 0.5 * (u.Lo + u.Hi) }

// Var returns (Hi-Lo)^2/12.
func (u Uniform) Var() float64 {
	w := u.Hi - u.Lo
	return w * w / 12
}

// CDF is linear on [Lo, Hi].
func (u Uniform) CDF(x float64) float64 {
	switch {
	case x <= u.Lo:
		return 0
	case x >= u.Hi:
		return 1
	default:
		return (x - u.Lo) / (u.Hi - u.Lo)
	}
}

// Quantile returns Lo + p(Hi-Lo).
func (u Uniform) Quantile(p float64) float64 { return u.Lo + p*(u.Hi-u.Lo) }

// Normal is N(Mu, Sigma^2). Färber compared it against the extreme-value fit
// for packet sizes; the UT2003 model uses it for the burst IAT.
type Normal struct {
	Mu, Sigma float64
}

// NewNormal returns N(mu, sigma^2); sigma must be positive.
func NewNormal(mu, sigma float64) (Normal, error) {
	if !(sigma > 0) {
		return Normal{}, fmt.Errorf("dist: normal sigma %g must be > 0", sigma)
	}
	return Normal{Mu: mu, Sigma: sigma}, nil
}

// Sample draws from N(Mu, Sigma^2).
func (n Normal) Sample(r *rand.Rand) float64 { return n.Mu + n.Sigma*r.NormFloat64() }

// Mean returns Mu.
func (n Normal) Mean() float64 { return n.Mu }

// Var returns Sigma^2.
func (n Normal) Var() float64 { return n.Sigma * n.Sigma }

// CDF returns Phi((x-Mu)/Sigma).
func (n Normal) CDF(x float64) float64 {
	return 0.5 * math.Erfc(-(x-n.Mu)/(n.Sigma*math.Sqrt2))
}

// Quantile returns Mu + Sigma * sqrt(2) * erfinv(2p-1).
func (n Normal) Quantile(p float64) float64 {
	return n.Mu + n.Sigma*math.Sqrt2*math.Erfinv(2*p-1)
}

// LogNormal is LogN(Mu, Sigma): ln X ~ N(Mu, Sigma^2). Lang et al. fit it to
// Half-Life server packet sizes; the UT2003 model uses it for sizes and
// client IATs.
type LogNormal struct {
	// Mu and Sigma parameterize the law of ln X, not the moments of X;
	// use LogNormalByMoments to build from a real-space mean and CoV.
	Mu, Sigma float64
}

// NewLogNormal returns LogN(mu, sigma) with log-space parameters; sigma must
// be positive.
func NewLogNormal(mu, sigma float64) (LogNormal, error) {
	if !(sigma > 0) {
		return LogNormal{}, fmt.Errorf("dist: lognormal sigma %g must be > 0", sigma)
	}
	return LogNormal{Mu: mu, Sigma: sigma}, nil
}

// LogNormalByMoments builds the lognormal with the given real-space mean and
// coefficient of variation: sigma^2 = ln(1+cov^2), mu = ln(mean) - sigma^2/2.
// This is how the traffic models translate the paper's measured (mean, CoV)
// pairs into a law.
func LogNormalByMoments(mean, cov float64) (LogNormal, error) {
	if !(mean > 0) {
		return LogNormal{}, fmt.Errorf("dist: lognormal mean %g must be > 0", mean)
	}
	if !(cov > 0) {
		return LogNormal{}, fmt.Errorf("dist: lognormal cov %g must be > 0", cov)
	}
	s2 := math.Log1p(cov * cov)
	return LogNormal{Mu: math.Log(mean) - s2/2, Sigma: math.Sqrt(s2)}, nil
}

// Sample draws exp(N(Mu, Sigma^2)).
func (l LogNormal) Sample(r *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// Mean returns exp(Mu + Sigma^2/2).
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Var returns (e^{Sigma^2}-1) e^{2Mu+Sigma^2}.
func (l LogNormal) Var() float64 {
	s2 := l.Sigma * l.Sigma
	return math.Expm1(s2) * math.Exp(2*l.Mu+s2)
}

// CDF returns Phi((ln x - Mu)/Sigma) for x > 0.
func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 0.5 * math.Erfc(-(math.Log(x)-l.Mu)/(l.Sigma*math.Sqrt2))
}

// Quantile returns exp of the underlying normal quantile.
func (l LogNormal) Quantile(p float64) float64 {
	return math.Exp(l.Mu + l.Sigma*math.Sqrt2*math.Erfinv(2*p-1))
}

// Gumbel is the extreme-value law Ext(A, B) with CDF exp(-exp(-(x-A)/B)):
// Färber's fit for Counter-Strike packet sizes and inter-arrival times
// (Table 1), and the family the fit package estimates.
type Gumbel struct {
	A, B float64
}

// NewGumbel returns Ext(a, b); the scale b must be positive.
func NewGumbel(a, b float64) (Gumbel, error) {
	if !(b > 0) {
		return Gumbel{}, fmt.Errorf("dist: gumbel scale %g must be > 0", b)
	}
	return Gumbel{A: a, B: b}, nil
}

// Sample draws A - B ln(-ln U) by inversion.
func (g Gumbel) Sample(r *rand.Rand) float64 {
	u := r.Float64()
	for u == 0 { // Float64 is [0,1); 0 would map to -Inf
		u = r.Float64()
	}
	return g.A - g.B*math.Log(-math.Log(u))
}

// Mean returns A + EulerGamma*B.
func (g Gumbel) Mean() float64 { return g.A + EulerGamma*g.B }

// Var returns pi^2 B^2 / 6.
func (g Gumbel) Var() float64 { return math.Pi * math.Pi * g.B * g.B / 6 }

// CDF returns exp(-exp(-(x-A)/B)).
func (g Gumbel) CDF(x float64) float64 {
	return math.Exp(-math.Exp(-(x - g.A) / g.B))
}

// PDF returns the density (1/B) e^{-z} e^{-e^{-z}} with z = (x-A)/B.
func (g Gumbel) PDF(x float64) float64 {
	z := (x - g.A) / g.B
	return math.Exp(-z-math.Exp(-z)) / g.B
}

// Quantile returns A - B ln(-ln p).
func (g Gumbel) Quantile(p float64) float64 {
	return g.A - g.B*math.Log(-math.Log(p))
}

// String renders the laws in the paper's notation: Det(v), Exp(rate),
// U(lo, hi), N(mu, sigma), LogN(mu, sigma) and Färber's Ext(a, b).

func (d Deterministic) String() string { return fmt.Sprintf("Det(%g)", d.Value) }

func (e Exponential) String() string { return fmt.Sprintf("Exp(%g)", e.Rate) }

func (u Uniform) String() string { return fmt.Sprintf("U(%g, %g)", u.Lo, u.Hi) }

func (n Normal) String() string { return fmt.Sprintf("N(%g, %g)", n.Mu, n.Sigma) }

func (l LogNormal) String() string { return fmt.Sprintf("LogN(%.3g, %.3g)", l.Mu, l.Sigma) }

func (g Gumbel) String() string { return fmt.Sprintf("Ext(%g, %g)", g.A, g.B) }
