package dist

import (
	"sort"
	"sync"
)

// bracketCap bounds the solved points kept per law; a percentile sweep
// rarely visits more distinct levels, and the cap keeps long-lived laws from
// accumulating unbounded state.
const bracketCap = 64

// quantileBracket caches the (p, q) pairs a law's numeric Quantile has
// already solved, sorted by p. Because a CDF is monotone, the cached
// neighbors of a new p bracket its quantile, so repeated percentile sweeps
// over the same law skip the from-scratch search. The cache is shared by all
// copies of the law value (constructors allocate it once) and is safe for
// concurrent use by the parallel sweep layers.
type quantileBracket struct {
	mu sync.Mutex
	ps []float64
	qs []float64
}

func newQuantileBracket() *quantileBracket { return &quantileBracket{} }

// bracket narrows [lo, hi] using the cached points around p. When p itself
// was solved before, hit is true and q is the cached (bit-identical) answer.
func (c *quantileBracket) bracket(p, lo, hi float64) (nlo, nhi, q float64, hit bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	nlo, nhi = lo, hi
	i := sort.SearchFloat64s(c.ps, p)
	if i < len(c.ps) && c.ps[i] == p {
		return nlo, nhi, c.qs[i], true
	}
	if i > 0 && c.qs[i-1] > nlo {
		nlo = c.qs[i-1]
	}
	if i < len(c.ps) && c.qs[i] < nhi {
		nhi = c.qs[i]
	}
	if nhi < nlo {
		// Cached points from a stale wider bracket crossed; fall back.
		nlo, nhi = lo, hi
	}
	return nlo, nhi, 0, false
}

// store records a solved pair, keeping the arrays sorted by p.
func (c *quantileBracket) store(p, q float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	i := sort.SearchFloat64s(c.ps, p)
	if i < len(c.ps) && c.ps[i] == p {
		c.qs[i] = q
		return
	}
	if len(c.ps) >= bracketCap {
		return
	}
	c.ps = append(c.ps, 0)
	c.qs = append(c.qs, 0)
	copy(c.ps[i+1:], c.ps[i:])
	copy(c.qs[i+1:], c.qs[i:])
	c.ps[i] = p
	c.qs[i] = q
}
