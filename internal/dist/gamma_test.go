package dist

import (
	"math"
	"sort"
	"sync"
	"testing"
)

// TestErlangMarsagliaTsangMoments is the golden-moment test for the O(1)
// gamma sampler: across small and large orders the sample mean, variance and
// third central moment must match the analytic Erlang values. The old
// sum-of-exponentials sampler passed the same bounds, so a regression in the
// rejection method (wrong squeeze, wrong scaling) fails loudly.
func TestErlangMarsagliaTsangMoments(t *testing.T) {
	const n = 200_000
	for _, k := range []int{2, 3, 9, 18, 28, 100} {
		e, err := ErlangByMean(k, 1852)
		if err != nil {
			t.Fatal(err)
		}
		xs := SampleN(e, NewRNG(uint64(1000+k)), n)
		var mean float64
		for _, x := range xs {
			mean += x
		}
		mean /= n
		var m2, m3 float64
		for _, x := range xs {
			d := x - mean
			m2 += d * d
			m3 += d * d * d
		}
		m2 /= n
		m3 /= n

		wantMean, wantVar := e.Mean(), e.Var()
		// Gamma(k) skewness is 2/sqrt(k); third central moment 2k/rate^3.
		wantM3 := 2 * float64(k) / (e.Rate * e.Rate * e.Rate)

		if rel := math.Abs(mean-wantMean) / wantMean; rel > 0.01 {
			t.Errorf("K=%d: mean %v vs %v (rel %v)", k, mean, wantMean, rel)
		}
		if rel := math.Abs(m2-wantVar) / wantVar; rel > 0.03 {
			t.Errorf("K=%d: var %v vs %v (rel %v)", k, m2, wantVar, rel)
		}
		if rel := math.Abs(m3-wantM3) / wantM3; rel > 0.15 {
			t.Errorf("K=%d: m3 %v vs %v (rel %v)", k, m3, wantM3, rel)
		}
	}
}

// TestErlangSamplerMatchesCDF checks the sampler against the closed-form
// Erlang CDF at fixed probe points: the empirical CDF must agree within a
// few standard errors (binomial se = sqrt(p(1-p)/n)).
func TestErlangSamplerMatchesCDF(t *testing.T) {
	const n = 100_000
	for _, k := range []int{2, 9, 20} {
		e, err := ErlangByMean(k, 100)
		if err != nil {
			t.Fatal(err)
		}
		xs := SampleN(e, NewRNG(uint64(2000+k)), n)
		sort.Float64s(xs)
		for _, p := range []float64{0.05, 0.25, 0.5, 0.75, 0.95, 0.99} {
			x := e.Quantile(p)
			emp := float64(sort.SearchFloat64s(xs, x)) / n
			tol := 5 * math.Sqrt(p*(1-p)/n)
			if math.Abs(emp-p) > tol {
				t.Errorf("K=%d p=%v: empirical CDF %v (tol %v)", k, p, emp, tol)
			}
		}
	}
}

// TestErlangSampleStrictlyPositive: a gamma draw is positive by construction;
// the rejection loop must never leak a nonpositive or non-finite value.
func TestErlangSampleStrictlyPositive(t *testing.T) {
	e, err := ErlangByMean(9, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(7)
	for i := 0; i < 50_000; i++ {
		x := e.Sample(r)
		if !(x > 0) || math.IsInf(x, 0) || math.IsNaN(x) {
			t.Fatalf("draw %d = %v", i, x)
		}
	}
}

// TestQuantileBracketCacheConsistency sweeps a percentile grid twice over the
// same laws: the second (cache-assisted) pass must return bit-identical
// results, and cached answers must stay coherent with the CDF.
func TestQuantileBracketCacheConsistency(t *testing.T) {
	erl, err := ErlangByMean(9, 1852)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := ErlangByMean(40, 1800)
	tail, _ := ErlangByMean(6, 2600)
	mix, err := NewMixture([]Distribution{body, tail}, []float64{0.97, 0.03})
	if err != nil {
		t.Fatal(err)
	}
	grid := make([]float64, 0, 99)
	for p := 0.01; p < 0.995; p += 0.01 {
		grid = append(grid, p)
	}
	grid = append(grid, 0.999, 0.9999, 0.99999)
	for _, d := range []Distribution{erl, mix} {
		first := make([]float64, len(grid))
		for i, p := range grid {
			first[i] = d.Quantile(p)
			if got := d.CDF(first[i]); got < p-1e-9 {
				t.Errorf("%v: CDF(Quantile(%v)) = %v < p", d, p, got)
			}
		}
		// Monotone in p.
		for i := 1; i < len(first); i++ {
			if first[i] < first[i-1] {
				t.Errorf("%v: quantile not monotone at p=%v", d, grid[i])
			}
		}
		// Second sweep: exact cache hits.
		for i, p := range grid {
			if got := d.Quantile(p); got != first[i] {
				t.Errorf("%v: cached Quantile(%v) = %v, first pass %v", d, p, got, first[i])
			}
		}
	}
}

// TestQuantileBracketCacheConcurrent hammers one law's Quantile from many
// goroutines (run under -race in CI): the cache must not race and every
// answer must stay coherent with the CDF.
func TestQuantileBracketCacheConcurrent(t *testing.T) {
	erl, err := ErlangByMean(20, 500)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p := float64((i*7+w*13)%997+1) / 1000
				q := erl.Quantile(p)
				if got := erl.CDF(q); math.Abs(got-p) > 1e-6 {
					select {
					case errc <- nil:
					default:
					}
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case <-errc:
		t.Error("concurrent quantile incoherent with CDF")
	default:
	}
}

// TestLiteralErlangQuantileStillWorks: zero-value/literal construction (no
// cache pointer) must keep working - the cache is an optimization, not a
// requirement.
func TestLiteralErlangQuantileStillWorks(t *testing.T) {
	e := Erlang{K: 4, Rate: 2}
	for _, p := range []float64{0.1, 0.5, 0.9} {
		q := e.Quantile(p)
		if got := e.CDF(q); math.Abs(got-p) > 1e-9 {
			t.Errorf("p=%v: CDF(Quantile) = %v", p, got)
		}
	}
}
