package dist

import (
	"fmt"
	"math"
	"testing"
)

// moments returns the sample mean and (population) variance of xs.
func moments(xs []float64) (mean, variance float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	variance /= float64(len(xs))
	return mean, variance
}

// TestAnalyticMomentsGolden draws 10k samples from every law and checks the
// sample moments against Mean()/Var(). Tolerances are ~5 standard errors, so
// with the fixed seeds the test is deterministic and a failure means the
// sampler and the analytic moments genuinely disagree.
func TestAnalyticMomentsGolden(t *testing.T) {
	const n = 10_000
	erl, err := NewErlang(18, 18.0/1852)
	if err != nil {
		t.Fatal(err)
	}
	logn, err := LogNormalByMoments(154, 0.28)
	if err != nil {
		t.Fatal(err)
	}
	mixBody, _ := ErlangByMean(40, 1800)
	mixTail, _ := ErlangByMean(6, 2600)
	mix, err := NewMixture([]Distribution{mixBody, mixTail}, []float64{0.97, 0.03})
	if err != nil {
		t.Fatal(err)
	}
	exp1, _ := NewExponential(1.0 / 60)
	uni, _ := NewUniform(40, 160)
	nor, _ := NewNormal(100, 15)
	gum, _ := NewGumbel(120, 36)

	cases := []struct {
		name string
		d    Distribution
		seed uint64
	}{
		{"deterministic", NewDeterministic(0.040), 1},
		{"exponential", exp1, 2},
		{"uniform", uni, 3},
		{"normal", nor, 4},
		{"lognormal", logn, 5},
		{"erlang", erl, 6},
		{"gumbel", gum, 7},
		{"mixture", mix, 8},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			xs := SampleN(c.d, NewRNG(c.seed), n)
			wantMean, wantVar := c.d.Mean(), c.d.Var()
			if wantVar == 0 {
				// Degenerate law: every draw must equal the mean exactly
				// (sample moments would only measure summation error).
				for i, x := range xs {
					if x != wantMean {
						t.Fatalf("draw %d = %v, want exactly %v", i, x, wantMean)
					}
				}
			} else {
				gotMean, gotVar := moments(xs)
				// Standard error of the mean is sd/sqrt(n); 5x headroom.
				meanTol := 5 * math.Sqrt(wantVar/n)
				if math.Abs(gotMean-wantMean) > meanTol {
					t.Errorf("sample mean %v, analytic %v (tol %v)", gotMean, wantMean, meanTol)
				}
				// Variance of the sample variance is ~(kurtosis-1) var^2/n;
				// a flat 15% relative band covers every law here at n=10k.
				if math.Abs(gotVar-wantVar)/wantVar > 0.15 {
					t.Errorf("sample var %v, analytic %v", gotVar, wantVar)
				}
			}
			// CDF/Quantile coherence at the quartiles: equality for the
			// continuous laws, >= p at the step CDFs.
			for _, p := range []float64{0.25, 0.5, 0.75} {
				q := c.d.Quantile(p)
				got := c.d.CDF(q)
				if got < p-1e-6 {
					t.Errorf("CDF(Quantile(%v)) = %v < p", p, got)
				}
				if wantVar > 0 && c.name != "mixture" && math.Abs(got-p) > 1e-6 {
					t.Errorf("CDF(Quantile(%v)) = %v", p, got)
				}
			}
		})
	}
}

// TestSeededDeterminism checks NewRNG streams are a pure function of the
// seed: same seed, same draws; different seed, different draws.
func TestSeededDeterminism(t *testing.T) {
	g, err := NewGumbel(55, 6)
	if err != nil {
		t.Fatal(err)
	}
	a := SampleN(g, NewRNG(42), 1000)
	b := SampleN(g, NewRNG(42), 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs under the same seed: %v vs %v", i, a[i], b[i])
		}
	}
	c := SampleN(g, NewRNG(43), 1000)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("seeds 42 and 43 produced identical streams")
	}
}

// TestErlangOrderOneIsExponential is the property test pinning the stage
// construction: Erlang(1, beta) and the exponential with the same rate are
// the same law - equal moments, CDFs, tails and quantiles everywhere.
func TestErlangOrderOneIsExponential(t *testing.T) {
	for _, beta := range []float64{0.01, 1, 3.5, 250} {
		e1, err := NewErlang(1, beta)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := NewExponential(beta)
		if err != nil {
			t.Fatal(err)
		}
		if e1.Mean() != ex.Mean() || e1.Var() != ex.Var() {
			t.Errorf("beta=%g: moments differ: (%v,%v) vs (%v,%v)",
				beta, e1.Mean(), e1.Var(), ex.Mean(), ex.Var())
		}
		mean := ex.Mean()
		for i := 0; i <= 40; i++ {
			x := mean * float64(i) / 8
			if d := math.Abs(e1.CDF(x) - ex.CDF(x)); d > 1e-12 {
				t.Errorf("beta=%g x=%g: CDF differ by %g", beta, x, d)
			}
		}
		for _, p := range []float64{0.01, 0.5, 0.9, 0.999} {
			q1, q2 := e1.Quantile(p), ex.Quantile(p)
			if math.Abs(q1-q2) > 1e-9*(1+q2) {
				t.Errorf("beta=%g p=%g: quantiles %v vs %v", beta, p, q1, q2)
			}
		}
		// Same seed must give the identical sample path (both are one
		// ExpFloat64 stage scaled by the rate).
		xs := SampleN(e1, NewRNG(9), 100)
		ys := SampleN(ex, NewRNG(9), 100)
		for i := range xs {
			if xs[i] != ys[i] {
				t.Fatalf("beta=%g draw %d: %v vs %v", beta, i, xs[i], ys[i])
			}
		}
	}
}

// TestGumbelClosedForms pins the identities the fit and traffic layers rely
// on: mean a + EulerGamma*b, variance pi^2 b^2/6, and the explicit quantile.
func TestGumbelClosedForms(t *testing.T) {
	g, err := NewGumbel(80, 5.7)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := g.Mean(), 80+EulerGamma*5.7; math.Abs(got-want) > 1e-12 {
		t.Errorf("mean %v, want %v", got, want)
	}
	if got, want := StdDev(g), 5.7*math.Pi/math.Sqrt(6); math.Abs(got-want) > 1e-12 {
		t.Errorf("sd %v, want %v", got, want)
	}
	// Median: a - b ln(ln 2).
	if got, want := g.Quantile(0.5), 80-5.7*math.Log(math.Log(2)); math.Abs(got-want) > 1e-12 {
		t.Errorf("median %v, want %v", got, want)
	}
	// PDF integrates the CDF: finite-difference check.
	const h = 1e-6
	x := 85.0
	if got, want := g.PDF(x), (g.CDF(x+h)-g.CDF(x-h))/(2*h); math.Abs(got-want) > 1e-6 {
		t.Errorf("pdf %v, derivative %v", got, want)
	}
}

// TestLogNormalByMomentsRoundTrip checks the moment matching: the built law
// must report exactly the requested real-space mean and CoV.
func TestLogNormalByMomentsRoundTrip(t *testing.T) {
	for _, c := range []struct{ mean, cov float64 }{
		{154, 0.28}, {0.030, 0.65}, {1, 0.18},
	} {
		l, err := LogNormalByMoments(c.mean, c.cov)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(l.Mean()-c.mean)/c.mean > 1e-12 {
			t.Errorf("mean %v, want %v", l.Mean(), c.mean)
		}
		if math.Abs(CoV(l)-c.cov)/c.cov > 1e-12 {
			t.Errorf("cov %v, want %v", CoV(l), c.cov)
		}
	}
}

// TestErlangTailClosedForm pins Tail against the independent k=2 closed form
// and the deep-tail log-space branch.
func TestErlangTailClosedForm(t *testing.T) {
	e, err := NewErlang(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.1, 0.5, 1, 2.5} {
		want := math.Exp(-3*x) * (1 + 3*x)
		if got := e.Tail(x); math.Abs(got-want) > 1e-14 {
			t.Errorf("x=%v: tail %v, want %v", x, got, want)
		}
		if got := e.CDF(x) + e.Tail(x); math.Abs(got-1) > 1e-14 {
			t.Errorf("x=%v: CDF+Tail = %v", x, got)
		}
	}
	if e.Tail(0) != 1 || e.Tail(-1) != 1 {
		t.Error("tail must be 1 at and below 0")
	}
	// Log-space branch: bx >= 700 must stay finite, in [0,1], monotone.
	big, _ := NewErlang(30, 1)
	t1, t2 := big.Tail(705), big.Tail(750)
	if !(t1 >= 0 && t1 <= 1) || !(t2 >= 0 && t2 <= 1) || t2 > t1 {
		t.Errorf("deep tail broken: Tail(705)=%v Tail(750)=%v", t1, t2)
	}
}

// TestMixtureMomentsAndCDF checks the law of total variance and the weighted
// CDF on a hand-computable two-point mixture of deterministic laws.
func TestMixtureMomentsAndCDF(t *testing.T) {
	m, err := NewMixture(
		[]Distribution{NewDeterministic(10), NewDeterministic(20)},
		[]float64{3, 1}, // normalizes to 0.75/0.25
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Mean(); got != 12.5 {
		t.Errorf("mean %v, want 12.5", got)
	}
	if got, want := m.Var(), 0.75*100+0.25*400-12.5*12.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("var %v, want %v", got, want)
	}
	if m.CDF(15) != 0.75 || m.CDF(25) != 1 || m.CDF(5) != 0 {
		t.Errorf("CDF steps wrong: %v %v %v", m.CDF(5), m.CDF(15), m.CDF(25))
	}
	if q := m.Quantile(0.5); q != 10 {
		t.Errorf("median %v, want 10", q)
	}
	if q := m.Quantile(0.9); q != 20 {
		t.Errorf("p90 %v, want 20", q)
	}
}

// TestMixtureQuantileNegativeSupport regression-tests the bisection bracket
// growth on laws living on the negative axis: doubling a negative hi used to
// run away toward -Inf instead of widening the bracket.
func TestMixtureQuantileNegativeSupport(t *testing.T) {
	n1, _ := NewNormal(-50, 3)
	n2, _ := NewNormal(-49.9, 3)
	m, err := NewMixture([]Distribution{n1, n2}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.01, 0.25, 0.5, 0.75, 0.999} {
		q := m.Quantile(p)
		if math.IsInf(q, 0) || math.IsNaN(q) {
			t.Fatalf("p=%v: quantile %v", p, q)
		}
		if got := m.CDF(q); math.Abs(got-p) > 1e-6 {
			t.Errorf("p=%v: CDF(Quantile) = %v", p, got)
		}
	}
}

// TestStringers checks every law renders in the paper's notation - the CLI
// model listing formats laws with %s.
func TestStringers(t *testing.T) {
	e, _ := NewExponential(2)
	u, _ := NewUniform(0, 1)
	n, _ := NewNormal(75, 7)
	l, _ := NewLogNormal(4.2, 0.3)
	g, _ := NewGumbel(120, 36)
	erl, _ := NewErlang(9, 0.5)
	m, _ := NewMixture([]Distribution{NewDeterministic(1)}, []float64{1})
	for _, c := range []struct {
		d    Distribution
		want string
	}{
		{NewDeterministic(0.04), "Det(0.04)"},
		{e, "Exp(2)"},
		{u, "U(0, 1)"},
		{n, "N(75, 7)"},
		{l, "LogN(4.2, 0.3)"},
		{g, "Ext(120, 36)"},
		{erl, "Erlang(9, 0.5)"},
		{m, "Mix(1*Det(1))"},
	} {
		if got := fmt.Sprintf("%v", c.d); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

// TestConstructorErrorPaths checks every constructor rejects its invalid
// domain instead of building a silently broken law.
func TestConstructorErrorPaths(t *testing.T) {
	if _, err := NewExponential(0); err == nil {
		t.Error("NewExponential accepted rate 0")
	}
	if _, err := NewUniform(2, 2); err == nil {
		t.Error("NewUniform accepted empty interval")
	}
	if _, err := NewNormal(0, 0); err == nil {
		t.Error("NewNormal accepted sigma 0")
	}
	if _, err := NewLogNormal(0, -1); err == nil {
		t.Error("NewLogNormal accepted negative sigma")
	}
	if _, err := LogNormalByMoments(-1, 0.3); err == nil {
		t.Error("LogNormalByMoments accepted negative mean")
	}
	if _, err := LogNormalByMoments(1, 0); err == nil {
		t.Error("LogNormalByMoments accepted cov 0")
	}
	if _, err := NewErlang(0, 1); err == nil {
		t.Error("NewErlang accepted order 0")
	}
	if _, err := NewErlang(3, -1); err == nil {
		t.Error("NewErlang accepted negative rate")
	}
	if _, err := ErlangByMean(3, 0); err == nil {
		t.Error("ErlangByMean accepted mean 0")
	}
	if _, err := NewGumbel(0, 0); err == nil {
		t.Error("NewGumbel accepted scale 0")
	}
	if _, err := NewMixture(nil, nil); err == nil {
		t.Error("NewMixture accepted empty mixture")
	}
	if _, err := NewMixture([]Distribution{NewDeterministic(1)}, []float64{1, 2}); err == nil {
		t.Error("NewMixture accepted mismatched weights")
	}
	if _, err := NewMixture([]Distribution{NewDeterministic(1)}, []float64{-1}); err == nil {
		t.Error("NewMixture accepted negative weight")
	}
	if _, err := NewMixture([]Distribution{nil}, []float64{1}); err == nil {
		t.Error("NewMixture accepted nil component")
	}
	if _, err := NewMixture([]Distribution{NewDeterministic(1)}, []float64{0}); err == nil {
		t.Error("NewMixture accepted zero total weight")
	}
}

// TestCoVAndStdDevHelpers pins the package helpers the experiment tables use.
func TestCoVAndStdDevHelpers(t *testing.T) {
	if CoV(NewDeterministic(5)) != 0 {
		t.Error("deterministic CoV must be exactly 0")
	}
	e, _ := NewExponential(0.25)
	if math.Abs(CoV(e)-1) > 1e-12 {
		t.Errorf("exponential CoV %v, want 1", CoV(e))
	}
	erl, _ := NewErlang(16, 2)
	if math.Abs(CoV(erl)-0.25) > 1e-12 {
		t.Errorf("Erlang(16) CoV %v, want 1/4", CoV(erl))
	}
	if math.Abs(StdDev(erl)-2) > 1e-12 {
		t.Errorf("Erlang(16,2) sd %v, want 2", StdDev(erl))
	}
}

func BenchmarkErlangSampleK18(b *testing.B) {
	e, _ := ErlangByMean(18, 1852)
	r := NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Sample(r)
	}
}

func BenchmarkErlangTailK28(b *testing.B) {
	e, _ := ErlangByMean(28, 1852)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Tail(2000)
	}
}
