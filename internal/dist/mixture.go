package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
	"strings"
)

// Mixture is a finite mixture: with probability Weights[i] (normalized), a
// draw comes from Components[i]. The fitting layer uses it to build the
// body-plus-heavy-tail burst laws on which the paper's two Erlang-order
// methods disagree (§2.3.2).
type Mixture struct {
	Components []Distribution
	Weights    []float64 // normalized to sum 1 by NewMixture

	qc *quantileBracket // bisection bracket cache (nil on literal construction)
}

// NewMixture validates and normalizes the weights: one weight per component,
// all nonnegative, positive total.
func NewMixture(components []Distribution, weights []float64) (Mixture, error) {
	if len(components) == 0 {
		return Mixture{}, fmt.Errorf("dist: mixture needs >= 1 component")
	}
	if len(components) != len(weights) {
		return Mixture{}, fmt.Errorf("dist: mixture has %d components but %d weights",
			len(components), len(weights))
	}
	var total float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return Mixture{}, fmt.Errorf("dist: mixture weight[%d] = %g must be >= 0", i, w)
		}
		if components[i] == nil {
			return Mixture{}, fmt.Errorf("dist: mixture component[%d] is nil", i)
		}
		total += w
	}
	if !(total > 0) {
		return Mixture{}, fmt.Errorf("dist: mixture weights sum to %g, need > 0", total)
	}
	norm := make([]float64, len(weights))
	for i, w := range weights {
		norm[i] = w / total
	}
	comps := make([]Distribution, len(components))
	copy(comps, components)
	return Mixture{Components: comps, Weights: norm, qc: newQuantileBracket()}, nil
}

// Sample picks a component by weight and draws from it.
func (m Mixture) Sample(r *rand.Rand) float64 {
	u := r.Float64()
	var acc float64
	for i, w := range m.Weights {
		acc += w
		if u < acc {
			return m.Components[i].Sample(r)
		}
	}
	// Rounding left u just above the accumulated sum: use the last component.
	return m.Components[len(m.Components)-1].Sample(r)
}

// Mean returns the weighted component means.
func (m Mixture) Mean() float64 {
	var s float64
	for i, c := range m.Components {
		s += m.Weights[i] * c.Mean()
	}
	return s
}

// Var returns the law-of-total-variance mixture variance:
// sum w_i (Var_i + Mean_i^2) - Mean^2.
func (m Mixture) Var() float64 {
	mean := m.Mean()
	var s float64
	for i, c := range m.Components {
		cm := c.Mean()
		s += m.Weights[i] * (c.Var() + cm*cm)
	}
	return s - mean*mean
}

// CDF returns the weighted component CDFs.
func (m Mixture) CDF(x float64) float64 {
	var s float64
	for i, c := range m.Components {
		s += m.Weights[i] * c.CDF(x)
	}
	return s
}

// Quantile inverts the mixture CDF numerically, bracketed by the extreme
// component quantiles. Laws built by NewMixture cache solved (p, q) pairs so
// repeated percentile sweeps skip both the per-component bracket search and
// the from-scratch bisection.
func (m Mixture) Quantile(p float64) float64 {
	if p >= 1 {
		return math.Inf(1)
	}
	if m.qc != nil {
		if _, _, q, hit := m.qc.bracket(p, math.Inf(-1), math.Inf(1)); hit {
			return q
		}
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range m.Components {
		q := c.Quantile(p)
		if q < lo {
			lo = q
		}
		if q > hi {
			hi = q
		}
	}
	if m.qc != nil {
		// Narrow further using previously solved neighbors.
		lo, hi, _, _ = m.qc.bracket(p, lo, hi)
	}
	q := m.quantileIn(p, lo, hi)
	if m.qc != nil {
		m.qc.store(p, q)
	}
	return q
}

// quantileIn solves the inversion inside a bracket.
func (m Mixture) quantileIn(p, lo, hi float64) float64 {
	if lo == hi {
		return lo
	}
	// lo's CDF may equal p already when one component dominates; widen a hair.
	if m.CDF(lo) >= p {
		return lo
	}
	return quantileBisect(m.CDF, p, lo, hi)
}

// String renders Mix(w1*comp1 + w2*comp2 + ...).
func (m Mixture) String() string {
	var b strings.Builder
	b.WriteString("Mix(")
	for i, c := range m.Components {
		if i > 0 {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "%.3g*%v", m.Weights[i], c)
	}
	b.WriteString(")")
	return b.String()
}
