package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Erlang is Erlang(K, Rate): the sum of K independent Exp(Rate) stages, with
// mean K/Rate and CoV 1/sqrt(K). It is the paper's burst-size law (§2.3.2):
// the order K sets the burst variability, and both the D/E_K/1 and M/E_K/1
// waiting-time solutions expand in its stage structure.
type Erlang struct {
	K    int     // number of exponential stages
	Rate float64 // per-stage rate beta (the queueing layer's Beta)

	qc *quantileBracket // bisection bracket cache (nil on literal construction)
}

// NewErlang returns Erlang(k, beta) where beta is the per-stage rate; needs
// k >= 1 and beta > 0.
func NewErlang(k int, beta float64) (Erlang, error) {
	if k < 1 {
		return Erlang{}, fmt.Errorf("dist: erlang order %d must be >= 1", k)
	}
	if !(beta > 0) {
		return Erlang{}, fmt.Errorf("dist: erlang rate %g must be > 0", beta)
	}
	return Erlang{K: k, Rate: beta, qc: newQuantileBracket()}, nil
}

// ErlangByMean returns the order-k Erlang with the given mean, i.e. rate
// k/mean: the moment-matching constructor the fitting layer uses when the
// order comes from a CoV or tail fit and the mean from the sample.
func ErlangByMean(k int, mean float64) (Erlang, error) {
	if !(mean > 0) {
		return Erlang{}, fmt.Errorf("dist: erlang mean %g must be > 0", mean)
	}
	return NewErlang(k, float64(k)/mean)
}

// Sample draws Erlang(K, Rate) in O(1) regardless of K: a single
// Marsaglia-Tsang Gamma(K, 1) rejection draw scaled by the rate. K=1 keeps
// the direct exponential draw, so Erlang(1, beta) and Exp(beta) remain the
// same law sample path for sample path.
func (e Erlang) Sample(r *rand.Rand) float64 {
	if e.K == 1 {
		return r.ExpFloat64() / e.Rate
	}
	return sampleGammaMT(r, float64(e.K)) / e.Rate
}

// sampleGammaMT draws Gamma(alpha, 1) for alpha >= 1 with the Marsaglia-Tsang
// (2000) squeeze-rejection method: cube a squeezed normal and accept with a
// cheap polynomial test (the expensive log test fires on < 3% of draws). The
// acceptance rate exceeds 0.95 for all alpha >= 1, so the cost is O(1) per
// draw where the old sum-of-exponentials was O(alpha).
func sampleGammaMT(r *rand.Rand, alpha float64) float64 {
	d := alpha - 1.0/3.0
	c := 1.0 / math.Sqrt(9.0*d)
	for {
		x := r.NormFloat64()
		v := 1.0 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		x2 := x * x
		if u < 1.0-0.0331*x2*x2 {
			return d * v
		}
		if math.Log(u) < 0.5*x2+d*(1.0-v+math.Log(v)) {
			return d * v
		}
	}
}

// Mean returns K/Rate.
func (e Erlang) Mean() float64 { return float64(e.K) / e.Rate }

// Var returns K/Rate^2.
func (e Erlang) Var() float64 { return float64(e.K) / (e.Rate * e.Rate) }

// Tail returns P(X > x) = e^{-Rate x} * sum_{i<K} (Rate x)^i / i!, the
// closed form behind the paper's Figure 1 tail fits.
func (e Erlang) Tail(x float64) float64 {
	if x <= 0 {
		return 1
	}
	bx := e.Rate * x
	if bx < 700 {
		// Running product: term_i = e^{-bx} (bx)^i / i! stays <= 1-ish.
		term := math.Exp(-bx)
		sum := term
		for i := 1; i < e.K; i++ {
			term *= bx / float64(i)
			sum += term
		}
		return math.Min(sum, 1)
	}
	// Extreme argument: e^{-bx} underflows; sum in log space, shifted by
	// the largest term.
	logbx := math.Log(bx)
	l := -bx
	maxl := l
	logs := make([]float64, e.K)
	logs[0] = l
	for i := 1; i < e.K; i++ {
		l += logbx - math.Log(float64(i))
		logs[i] = l
		if l > maxl {
			maxl = l
		}
	}
	var s float64
	for _, li := range logs {
		s += math.Exp(li - maxl)
	}
	return math.Min(math.Exp(maxl)*s, 1)
}

// CDF returns 1 - Tail(x).
func (e Erlang) CDF(x float64) float64 { return 1 - e.Tail(x) }

// Quantile inverts the CDF numerically (no closed form for K > 1). Solved
// (p, q) pairs are cached on laws built by the constructors, so a repeated
// percentile sweep over the same law starts each bisection from the
// neighboring solved quantiles instead of re-searching [0, mean+12sd].
func (e Erlang) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	lo, hi := 0.0, e.Mean()+12*StdDev(e)
	if e.qc != nil {
		var q float64
		var hit bool
		if lo, hi, q, hit = e.qc.bracket(p, lo, hi); hit {
			return q
		}
	}
	q := quantileBisect(e.CDF, p, lo, hi)
	if e.qc != nil {
		e.qc.store(p, q)
	}
	return q
}

// String renders Erlang(K, rate).
func (e Erlang) String() string { return fmt.Sprintf("Erlang(%d, %.4g)", e.K, e.Rate) }
