package scenario_test

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand/v2"
	"net/url"
	"strconv"
	"strings"
	"testing"

	"fpsping/internal/scenario"
	"fpsping/internal/service"
)

// randomScenario draws a valid scenario across the parameter ranges the CLI
// and daemon realistically see.
func randomScenario(r *rand.Rand) scenario.Scenario {
	s := scenario.Scenario{
		Gamers:            1 + 199*r.Float64(),
		ClientPacketBytes: 40 + 160*r.Float64(),
		ServerPacketBytes: 60 + 240*r.Float64(),
		BurstIntervalMs:   10 + 90*r.Float64(),
		UplinkKbit:        64 + 960*r.Float64(),
		DownlinkKbit:      512 + 3584*r.Float64(),
		AggregateKbit:     2000 + 8000*r.Float64(),
		ErlangOrder:       2 + r.IntN(19),
		Quantile:          0.9 + 0.09999*r.Float64(),
	}
	if r.IntN(2) == 0 {
		s.ClientIntervalMs = 10 + 90*r.Float64()
	}
	if r.IntN(3) == 0 {
		s.FixedMs = 5 * r.Float64()
	}
	if r.IntN(2) == 0 {
		s.Load = 0.05 + 0.85*r.Float64()
	}
	return s
}

// fmtF spells a float the way a user would on a command line, without
// rounding (shortest round-trip form).
func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// spellings returns the same scenario as CLI args, query parameters and
// JSON.
func spellings(s scenario.Scenario) (args []string, query url.Values, body []byte) {
	pairs := [][2]string{
		{"gamers", fmtF(s.Gamers)},
		{"pc", fmtF(s.ClientPacketBytes)},
		{"ps", fmtF(s.ServerPacketBytes)},
		{"t", fmtF(s.BurstIntervalMs)},
		{"d", fmtF(s.ClientIntervalMs)},
		{"rup", fmtF(s.UplinkKbit)},
		{"rdown", fmtF(s.DownlinkKbit)},
		{"c", fmtF(s.AggregateKbit)},
		{"k", strconv.Itoa(s.ErlangOrder)},
		{"q", fmtF(s.Quantile)},
		{"fixed", fmtF(s.FixedMs)},
		{"load", fmtF(s.Load)},
	}
	query = url.Values{}
	for _, p := range pairs {
		args = append(args, "-"+p[0]+"="+p[1])
		query.Set(p[0], p[1])
	}
	return args, query, s.JSON()
}

// TestRoundTripPropertyFlagsQueryJSON is the shared-vocabulary property:
// however a random scenario is spelled - CLI flags, URL query, JSON - the
// parsed Scenario is identical, and so is its canonical cache key.
func TestRoundTripPropertyFlagsQueryJSON(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 2026))
	for i := 0; i < 300; i++ {
		want := randomScenario(r)
		args, query, body := spellings(want)

		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		got := scenario.Flags(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatalf("case %d: flags: %v", i, err)
		}
		if *got != want {
			t.Fatalf("case %d: flag round trip:\n got %+v\nwant %+v", i, *got, want)
		}

		fromQuery, err := scenario.FromQuery(query)
		if err != nil {
			t.Fatalf("case %d: query: %v", i, err)
		}
		if fromQuery != want {
			t.Fatalf("case %d: query round trip:\n got %+v\nwant %+v", i, fromQuery, want)
		}

		fromJSON, err := scenario.FromJSON(body)
		if err != nil {
			t.Fatalf("case %d: json: %v", i, err)
		}
		if fromJSON != want {
			t.Fatalf("case %d: json round trip:\n got %+v\nwant %+v", i, fromJSON, want)
		}

		if a, b := fromQuery.Canonical(), fromJSON.Canonical(); a != b || a != want.Canonical() {
			t.Fatalf("case %d: canonical keys diverge across spellings", i)
		}
	}
}

// TestCanonicalResolvesDefaults pins that spelling a default explicitly
// (d = t, the default quantile, load in place of gamers) lands on the same
// cache key, while a genuinely different scenario does not.
func TestCanonicalResolvesDefaults(t *testing.T) {
	base := scenario.Default()

	explicitD := base
	explicitD.ClientIntervalMs = base.BurstIntervalMs
	if base.Canonical() != explicitD.Canonical() {
		t.Error("explicit d = t should share the cache key with d = 0")
	}

	viaLoad := base
	viaLoad.Gamers = 1 // overridden by Load below
	viaLoad.Load = base.Model().DownlinkLoad()
	if base.Canonical() != viaLoad.Canonical() {
		t.Error("load spelling should share the cache key with the gamers spelling")
	}

	other := base
	other.Gamers++
	if base.Canonical() == other.Canonical() {
		t.Error("different scenarios must not share a cache key")
	}
	bumpK := base
	bumpK.ErlangOrder++
	if base.Canonical() == bumpK.Canonical() {
		t.Error("different Erlang orders must not share a cache key")
	}
}

func TestFromJSONRejectsUnknownKeys(t *testing.T) {
	if _, err := scenario.FromJSON([]byte(`{"gamer": 80}`)); err == nil {
		t.Error("typoed key accepted")
	}
	if _, err := scenario.FromJSON([]byte(`{"gamers": "eighty"}`)); err == nil {
		t.Error("non-numeric value accepted")
	}
	s, err := scenario.FromJSON([]byte(`{"ps": 250}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.ServerPacketBytes != 250 || s.Gamers != scenario.Default().Gamers {
		t.Errorf("absent keys should keep defaults: %+v", s)
	}
}

func TestFromQueryAndSetErrors(t *testing.T) {
	if _, err := scenario.FromQuery(url.Values{"k": {"nine"}}); err == nil {
		t.Error("bad int accepted")
	}
	if _, err := scenario.FromQuery(url.Values{"t": {"fast"}}); err == nil {
		t.Error("bad float accepted")
	}
	// Unknown query keys are rejected unless the endpoint allowlists them
	// (sweep stacks from/to/step on the same query).
	if _, err := scenario.FromQuery(url.Values{"gamer": {"42"}}); err == nil {
		t.Error("typoed query key accepted")
	}
	s, err := scenario.FromQuery(url.Values{"from": {"0.1"}, "gamers": {"42"}}, "from", "to", "step")
	if err != nil {
		t.Fatal(err)
	}
	if s.Gamers != 42 {
		t.Errorf("gamers = %g", s.Gamers)
	}
	var sc scenario.Scenario
	if err := sc.Set("nope", "1"); err == nil {
		t.Error("unknown parameter accepted")
	}
}

func TestValidate(t *testing.T) {
	s := scenario.Default()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	s.Load = -0.5
	if err := s.Validate(); err == nil {
		t.Error("negative load accepted")
	}
	s = scenario.Default()
	s.ErlangOrder = 1
	if err := s.Validate(); err == nil {
		t.Error("K=1 accepted")
	}
}

func TestStringMentionsResolvedModel(t *testing.T) {
	s := scenario.Default()
	s.Load = 0.5
	str := s.String()
	if !strings.Contains(str, "Model{") {
		t.Errorf("String() = %q", str)
	}
}

// TestCLIAndDaemonProduceIdenticalNumbers pins the shared-scenario promise:
// the numbers the CLI's rtt command computes (via core.Model directly, as
// cmd/fpsping does) and the numbers the daemon's /v1/rtt endpoint serves
// (via service.Engine) are bit-identical for the same scenario, cold and
// cached.
func TestCLIAndDaemonProduceIdenticalNumbers(t *testing.T) {
	e := service.NewEngine(2, 0)
	r := rand.New(rand.NewPCG(11, 2026))
	for i := 0; i < 5; i++ {
		sc := randomScenario(r)
		m := sc.Model()

		comp, err := m.Decompose()
		if err != nil {
			// Random point may be unstable; the daemon must agree that too.
			if _, _, derr := e.RTT(sc); derr == nil {
				t.Fatalf("case %d: CLI path unstable (%v) but daemon answered", i, err)
			}
			continue
		}
		mean, err := m.MeanRTT()
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}

		for pass, wantCached := range []bool{false, true} {
			res, cached, err := e.RTT(sc)
			if err != nil {
				t.Fatalf("case %d: daemon: %v", i, err)
			}
			if cached != wantCached {
				t.Fatalf("case %d pass %d: cached = %v", i, pass, cached)
			}
			if res.QuantileMs != 1000*comp.Total {
				t.Errorf("case %d: quantile daemon %v != CLI %v", i, res.QuantileMs, 1000*comp.Total)
			}
			if res.MeanMs != 1000*mean {
				t.Errorf("case %d: mean daemon %v != CLI %v", i, res.MeanMs, 1000*mean)
			}
			got := res.Components
			want := []float64{1000 * comp.Serialization, 1000 * comp.Fixed,
				1000 * comp.Upstream, 1000 * comp.BurstWait, 1000 * comp.Position}
			have := []float64{got.Serialization, got.Fixed, got.Upstream, got.BurstWait, got.Position}
			for j := range want {
				if have[j] != want[j] {
					t.Errorf("case %d: component %d daemon %v != CLI %v", i, j, have[j], want[j])
				}
			}
			// The CLI's printed lines, rendered from either source, match
			// byte for byte.
			cli := fmt.Sprintf("RTT quantile  %8.2f ms", 1000*comp.Total)
			daemon := fmt.Sprintf("RTT quantile  %8.2f ms", res.QuantileMs)
			if !bytes.Equal([]byte(cli), []byte(daemon)) {
				t.Errorf("case %d: rendered lines differ: %q vs %q", i, cli, daemon)
			}
		}
	}
}
