// Package scenario is the single vocabulary for describing an access-network
// gaming scenario across every front end: the fpsping CLI consumes it as
// flags, the fpspingd daemon as JSON bodies or URL query parameters. All
// three surfaces share one field table, so a flag named -ps, a JSON key "ps"
// and a query parameter ps=125 are the same parameter by construction, in
// the same human-friendly units (bytes, milliseconds, kbit/s).
//
// A Scenario converts to the model-layer core.Model (SI units, resolved
// defaults) with Model(), and to a canonical cache key with Canonical():
// two scenarios that resolve to the same model share the same key, which is
// what the daemon's memo cache is keyed on.
package scenario

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/url"
	"strconv"
	"strings"

	"fpsping/internal/core"
)

// Scenario mirrors the CLI's scenario flags one-to-one. Units are the flag
// units of the paper's §4: packet sizes in bytes, intervals in milliseconds,
// rates in kbit/s. The zero value is not useful; start from Default().
type Scenario struct {
	// Gamers is N, the number of active players behind the aggregation link.
	Gamers float64 `json:"gamers"`
	// ClientPacketBytes is PC, the client update size [bytes].
	ClientPacketBytes float64 `json:"pc"`
	// ServerPacketBytes is PS, the mean per-client server packet size [bytes].
	ServerPacketBytes float64 `json:"ps"`
	// BurstIntervalMs is T, the server tick interval [ms].
	BurstIntervalMs float64 `json:"t"`
	// ClientIntervalMs is D, the client update period [ms]; 0 means "= T".
	ClientIntervalMs float64 `json:"d,omitempty"`
	// UplinkKbit is Rup, the per-gamer upstream access rate [kbit/s].
	UplinkKbit float64 `json:"rup"`
	// DownlinkKbit is Rdown, the per-gamer downstream access rate [kbit/s].
	DownlinkKbit float64 `json:"rdown"`
	// AggregateKbit is C, the aggregation link rate [kbit/s].
	AggregateKbit float64 `json:"c"`
	// ErlangOrder is K, the burst-size Erlang order.
	ErlangOrder int `json:"k"`
	// Quantile is the RTT quantile level in (0,1).
	Quantile float64 `json:"q"`
	// FixedMs is extra fixed delay (propagation + processing) [ms].
	FixedMs float64 `json:"fixed,omitempty"`
	// Load, when > 0, sets the downlink load instead of Gamers (eq. 37
	// inverted), exactly like the CLI's -load flag.
	Load float64 `json:"load,omitempty"`
}

// Default returns the §4 DSL reference scenario the CLI flags default to:
// 80 gamers, 80/125-byte packets, 40 ms ticks, 128/1024 kbit/s access,
// 5 Mbit/s aggregation, Erlang(9) bursts, the 99.999% quantile.
func Default() Scenario {
	return Scenario{
		Gamers:            80,
		ClientPacketBytes: 80,
		ServerPacketBytes: 125,
		BurstIntervalMs:   40,
		UplinkKbit:        128,
		DownlinkKbit:      1024,
		AggregateKbit:     5000,
		ErlangOrder:       9,
		Quantile:          core.DefaultQuantile,
	}
}

// field is one row of the shared parameter table: a name (flag name, JSON
// key and query key all at once), a usage string, and a pointer into the
// Scenario (exactly one of flt/num is set).
type field struct {
	name  string
	usage string
	flt   *float64
	num   *int
}

// fields returns the parameter table bound to s. Order is the canonical
// presentation order (also the order Canonical() serializes resolved values
// in).
func (s *Scenario) fields() []field {
	return []field{
		{name: "gamers", usage: "number of gamers N", flt: &s.Gamers},
		{name: "pc", usage: "client packet size [bytes]", flt: &s.ClientPacketBytes},
		{name: "ps", usage: "server packet size [bytes]", flt: &s.ServerPacketBytes},
		{name: "t", usage: "burst inter-arrival time T [ms]", flt: &s.BurstIntervalMs},
		{name: "d", usage: "client inter-arrival time D [ms] (0 = T)", flt: &s.ClientIntervalMs},
		{name: "rup", usage: "uplink access rate [kbit/s]", flt: &s.UplinkKbit},
		{name: "rdown", usage: "downlink access rate [kbit/s]", flt: &s.DownlinkKbit},
		{name: "c", usage: "aggregation link rate [kbit/s]", flt: &s.AggregateKbit},
		{name: "k", usage: "Erlang order K of the burst size", num: &s.ErlangOrder},
		{name: "q", usage: "RTT quantile level", flt: &s.Quantile},
		{name: "fixed", usage: "extra fixed delay (propagation+processing) [ms]", flt: &s.FixedMs},
		{name: "load", usage: "set downlink load instead of -gamers (0 = use -gamers)", flt: &s.Load},
	}
}

// Register installs every scenario parameter as a flag on fs, with s's
// current values as the defaults (and as the target of parsing).
func (s *Scenario) Register(fs *flag.FlagSet) {
	for _, f := range s.fields() {
		if f.num != nil {
			fs.IntVar(f.num, f.name, *f.num, f.usage)
		} else {
			fs.Float64Var(f.flt, f.name, *f.flt, f.usage)
		}
	}
}

// Flags registers the scenario vocabulary on fs with Default() defaults and
// returns the Scenario the parsed flags write into.
func Flags(fs *flag.FlagSet) *Scenario {
	s := Default()
	s.Register(fs)
	return &s
}

// Set assigns the named parameter from its string form (the same parsing a
// flag or query parameter gets). Unknown names are an error.
func (s *Scenario) Set(name, value string) error {
	for _, f := range s.fields() {
		if f.name != name {
			continue
		}
		if f.num != nil {
			n, err := strconv.Atoi(value)
			if err != nil {
				return fmt.Errorf("scenario: parameter %q: %w", name, err)
			}
			*f.num = n
			return nil
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return fmt.Errorf("scenario: parameter %q: %w", name, err)
		}
		*f.flt = v
		return nil
	}
	return fmt.Errorf("scenario: unknown parameter %q", name)
}

// FromQuery builds a Scenario from URL query parameters, starting from
// Default(); repeated keys take the last value. Keys outside the scenario
// vocabulary are rejected unless listed in extra (endpoints stack their own
// keys, like from/to/step, on the same query), so a typoed parameter fails
// loudly instead of silently evaluating the default scenario.
func FromQuery(values url.Values, extra ...string) (Scenario, error) {
	s := Default()
	known := make(map[string]bool, len(extra))
	for _, k := range extra {
		known[k] = true
	}
	for _, f := range s.fields() {
		known[f.name] = true
		if vs, ok := values[f.name]; ok && len(vs) > 0 {
			if err := s.Set(f.name, vs[len(vs)-1]); err != nil {
				return s, err
			}
		}
	}
	for key := range values {
		if !known[key] {
			return s, fmt.Errorf("scenario: unknown parameter %q", key)
		}
	}
	return s, nil
}

// FromJSON decodes a Scenario from JSON, starting from Default() so absent
// keys keep their defaults. Unknown keys are rejected, so a typoed "gamer"
// fails loudly instead of silently modeling the default population.
func FromJSON(data []byte) (Scenario, error) {
	s := Default()
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("scenario: %w", err)
	}
	return s, nil
}

// Model resolves the scenario into the model layer's units: SI units
// throughout, and Load (when set) converted into the equivalent Gamers via
// eq. (37).
func (s Scenario) Model() core.Model {
	m := core.Model{
		Gamers:             s.Gamers,
		ClientPacketBytes:  s.ClientPacketBytes,
		ServerPacketBytes:  s.ServerPacketBytes,
		BurstInterval:      s.BurstIntervalMs / 1000,
		ClientInterval:     s.ClientIntervalMs / 1000,
		UplinkAccessRate:   s.UplinkKbit * 1000,
		DownlinkAccessRate: s.DownlinkKbit * 1000,
		AggregateRate:      s.AggregateKbit * 1000,
		ErlangOrder:        s.ErlangOrder,
		Quantile:           s.Quantile,
		FixedDelay:         s.FixedMs / 1000,
	}
	if s.Load > 0 {
		m = m.WithDownlinkLoad(s.Load)
	}
	return m
}

// Validate checks the scenario by resolving and validating the model it
// denotes, plus what the model's own checks cannot see: the Load shorthand's
// range and float finiteness (NaN slips through ordered comparisons, and a
// NaN parameter would later make the JSON encoder fail on the response).
func (s Scenario) Validate() error {
	for _, f := range (&s).fields() {
		if f.flt != nil && (math.IsNaN(*f.flt) || math.IsInf(*f.flt, 0)) {
			return fmt.Errorf("%w: parameter %q is not finite (%g)", core.ErrBadModel, f.name, *f.flt)
		}
	}
	if s.Load < 0 {
		return fmt.Errorf("%w: negative load %g", core.ErrBadModel, s.Load)
	}
	m := s.Model()
	if math.IsNaN(m.Gamers) || math.IsInf(m.Gamers, 0) {
		return fmt.Errorf("%w: load %g resolves to a non-finite gamer count", core.ErrBadModel, s.Load)
	}
	return m.Validate()
}

// Canonical returns a cache key identifying the resolved model: scenarios
// that differ only in spelling (explicit d equal to t, load in place of
// gamers, an explicitly spelled default) map to the same key. Float values
// are keyed bit-exactly, so the key never conflates two scenarios the model
// could tell apart.
func (s Scenario) Canonical() string {
	m := s.Model()
	// Resolve the two lazy defaults the model applies at evaluation time.
	if m.ClientInterval == 0 {
		m.ClientInterval = m.BurstInterval
	}
	if m.Quantile == 0 {
		m.Quantile = core.DefaultQuantile
	}
	vals := []float64{
		m.Gamers, m.ClientPacketBytes, m.ServerPacketBytes,
		m.BurstInterval, m.ClientInterval,
		m.UplinkAccessRate, m.DownlinkAccessRate, m.AggregateRate,
		m.Quantile, m.FixedDelay,
	}
	var b strings.Builder
	b.Grow(16*len(vals) + 8)
	for _, v := range vals {
		fmt.Fprintf(&b, "%016x|", math.Float64bits(v))
	}
	fmt.Fprintf(&b, "k%d", m.ErlangOrder)
	return b.String()
}

// JSON returns the scenario's compact JSON encoding (the daemon's wire
// form). Encoding a Scenario never fails.
func (s Scenario) JSON() []byte {
	data, err := json.Marshal(s)
	if err != nil {
		panic("scenario: marshal cannot fail: " + err.Error())
	}
	return data
}

// String summarizes the scenario via the resolved model.
func (s Scenario) String() string { return s.Model().String() }
