package scenario

import (
	"math"
	"net/url"
	"testing"
)

// checkParsed holds the invariants every successfully parsed scenario must
// satisfy, whatever bytes produced it:
//
//  1. Canonical never panics and is self-consistent (same scenario, same
//     key), so a hostile query parameter cannot corrupt the daemon's cache
//     keyspace.
//  2. A scenario that validates survives the JSON round trip exactly:
//     parse → encode → parse is the identity, and the canonical key — what
//     the daemon's memo cache is keyed on — is stable across the trip.
func checkParsed(t *testing.T, sc Scenario) {
	t.Helper()
	key := sc.Canonical()
	if key == "" {
		t.Fatal("empty canonical key")
	}
	if again := sc.Canonical(); again != key {
		t.Fatalf("canonical key unstable: %q then %q", key, again)
	}
	if err := sc.Validate(); err != nil {
		return // invalid scenarios only need a stable key, not a round trip
	}
	// Validate must have rejected every non-finite float: JSON() would
	// otherwise fail on them.
	for _, f := range (&sc).fields() {
		if f.flt != nil && (math.IsNaN(*f.flt) || math.IsInf(*f.flt, 0)) {
			t.Fatalf("Validate accepted non-finite parameter %q = %g", f.name, *f.flt)
		}
	}
	back, err := FromJSON(sc.JSON())
	if err != nil {
		t.Fatalf("re-parsing own JSON %s: %v", sc.JSON(), err)
	}
	if back != sc {
		t.Fatalf("JSON round trip changed the scenario:\n%+v\n%+v", sc, back)
	}
	if back.Canonical() != key {
		t.Fatalf("JSON round trip changed the canonical key:\n%q\n%q", key, back.Canonical())
	}
}

// FuzzFromQuery fuzzes the URL-query surface of the daemon (GET /v1/rtt?...):
// arbitrary query strings must never panic, and whatever parses must have a
// stable canonical key and JSON round trip.
func FuzzFromQuery(f *testing.F) {
	for _, seed := range []string{
		"",
		"gamers=80&ps=125&t=40",
		"load=0.5",
		"load=0.5&gamers=200",
		"d=0&q=0.99999",
		"k=9&q=0.5&fixed=2.5",
		"gamers=1e308&ps=1e-308",
		"gamers=NaN",
		"fixed=Inf",
		"load=-1",
		"t=0x1p-3",
		"gamers=80&gamers=40",
		"rup=128&rdown=1024&c=5000",
		"pc=80.5&ps=124.999999999999",
		"q=0&k=2",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		values, err := url.ParseQuery(raw)
		if err != nil {
			t.Skip()
		}
		sc, err := FromQuery(values)
		if err != nil {
			return
		}
		checkParsed(t, sc)
	})
}

// FuzzFromJSON fuzzes the JSON surface of the daemon (POST bodies and batch
// items) with the same invariants.
func FuzzFromJSON(f *testing.F) {
	for _, seed := range []string{
		`{}`,
		`{"gamers":80,"ps":125,"t":40,"k":9}`,
		`{"load":0.5}`,
		`{"load":0.5,"gamers":200}`,
		`{"d":0,"q":0.99999}`,
		`{"q":0,"k":2}`,
		`{"fixed":2.5,"pc":80.5}`,
		`{"gamers":1e308,"ps":1e-308}`,
		`{"gamers":-80}`,
		`{"k":-1}`,
		`{"load":100}`,
		`{"gamers":80`,
		`[1,2,3]`,
		`{"gamer":80}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := FromJSON(data)
		if err != nil {
			return
		}
		checkParsed(t, sc)
	})
}
