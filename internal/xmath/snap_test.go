package xmath

import (
	"math"
	"testing"
)

// TestSnapSeedGrid pins the canonical-seed grid: the result keeps at most
// snapBits significant bits (snapping is idempotent), stays within half a
// grid spacing of the input, and respects sign symmetry.
func TestSnapSeedGrid(t *testing.T) {
	inputs := []float64{1, math.Pi, 1e-300, 7.372819e17, 0.6931471805599453, 1 + 1e-9}
	for _, x := range inputs {
		s := SnapSeed(x)
		if SnapSeed(s) != s {
			t.Errorf("SnapSeed(%v) = %v not idempotent", x, s)
		}
		if rel := math.Abs(s-x) / math.Abs(x); rel > math.Ldexp(1, -snapBits) {
			t.Errorf("SnapSeed(%v) = %v moved by %g relative, beyond one grid spacing", x, s, rel)
		}
		if SnapSeed(-x) != -s {
			t.Errorf("SnapSeed(-%v) = %v, want %v", x, SnapSeed(-x), -s)
		}
	}
	// Zeros, infinities and NaN pass through.
	for _, x := range []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1)} {
		if s := SnapSeed(x); math.Float64bits(s) != math.Float64bits(x) {
			t.Errorf("SnapSeed(%v) = %v, want passthrough", x, s)
		}
	}
	if !math.IsNaN(SnapSeed(math.NaN())) {
		t.Error("SnapSeed(NaN) not NaN")
	}
}

// TestSnapSeedCanonicalizes is the property the continuation solvers rely
// on: two converged values that agree to ~1e-15 relative (different last-bit
// neighbours of the same root) snap to the same seed.
func TestSnapSeedCanonicalizes(t *testing.T) {
	for _, x := range []float64{0.3127718372, 1.0, 42.5, 1e-8, 3.7e12} {
		y := x * (1 + 4e-15)
		if SnapSeed(x) != SnapSeed(y) {
			t.Errorf("neighbours of %v snap apart: %v vs %v", x, SnapSeed(x), SnapSeed(y))
		}
	}
}

// TestSnapSeedCFlushesNoiseComponent pins the zero-flush rule: a component
// at rounding-noise scale relative to the other — the numerical shadow of an
// exactly real (or imaginary) root — snaps to exactly zero, while genuine
// small components survive.
func TestSnapSeedCFlushesNoiseComponent(t *testing.T) {
	// The failure mode the rule exists for: two eps-scale dust values that
	// differ by far more than the relative grid still share a seed.
	a := SnapSeedC(complex(-0.0889345, 1.0891387942508745e-17))
	b := SnapSeedC(complex(-0.0889345, 1.0891341357507266e-17))
	if imag(a) != 0 || imag(b) != 0 {
		t.Errorf("dust not flushed: %v, %v", a, b)
	}
	if a != b {
		t.Errorf("dust-bearing neighbours snap apart: %v vs %v", a, b)
	}
	if z := SnapSeedC(complex(1.22e-16, 0.75)); real(z) != 0 {
		t.Errorf("real dust against imaginary component not flushed: %v", z)
	}
	// Genuine components far above the flush threshold are kept.
	if z := SnapSeedC(complex(0.5, 1e-9)); imag(z) == 0 {
		t.Errorf("genuine small imaginary part flushed: %v", z)
	}
	if z := SnapSeedC(complex(0, 0)); z != 0 {
		t.Errorf("SnapSeedC(0) = %v", z)
	}
}
