package xmath

import "math"

// Seed canonicalization for continuation root solvers.
//
// A Newton iteration converges to the true root up to the last couple of
// bits, but WHICH last-bit neighbour it lands on depends on where it
// started. Two solvers that start differently — a cold factorization and a
// warm start from a neighbouring parameter's roots — therefore agree to
// ~1e-15 but not bit for bit, and any downstream arithmetic amplifies that
// into visibly different (if equally correct) outputs.
//
// SnapSeed erases the path dependence: round the converged value to a grid
// coarse enough (26 significant bits, ~1.5e-8 relative spacing) that both
// paths' results round to the same grid point, then re-run the identical
// polish from that shared seed. The final Newton iterates are a
// deterministic function of (seed, parameters), so both paths reproduce the
// same bits — the snap selects a canonical seed, the re-polish restores full
// precision. The residual of the snapped-and-repolished root is checked by
// the caller exactly as for a cold solve, so canonicalization can change
// only which last-bit neighbour of the root is reported, never its accuracy.
//
// The grid is relative (mantissa rounding), so it works at any scale. The
// one failure mode is a converged value within ~1e-15 of a grid boundary,
// where the two paths could round to different grid points; with a 2^-26
// grid and 2^-52-scale discrepancies the odds are ~2^-26 per root, and the
// consequence is a one-ulp-level difference — the documented fallback
// contract (validate, recompute cold on doubt) still bounds the error.

// snapBits is the number of significant bits SnapSeed keeps.
const snapBits = 26

// SnapSeed rounds x to snapBits significant bits (round half away from
// zero). Zeros, infinities and NaNs pass through unchanged.
func SnapSeed(x float64) float64 {
	if x == 0 || math.IsInf(x, 0) || math.IsNaN(x) {
		return x
	}
	bits := math.Float64bits(x)
	// Round at bit 52-snapBits of the mantissa: adding the half-ulp-of-grid
	// carries into the exponent when the mantissa overflows, which is still
	// the correctly rounded next binade.
	bits += 1 << (52 - snapBits - 1)
	bits &^= 1<<(52-snapBits) - 1
	out := math.Float64frombits(bits)
	if math.IsInf(out, 0) {
		return x // rounding overflowed past MaxFloat64; keep the input
	}
	return out
}

// snapZeroTol flushes a component that is pure rounding noise relative to
// the other (|small| < 2^-40 |large|) to exactly zero. A mathematically real
// root reached through complex arithmetic — e.g. the negative-axis branch of
// the D/E_K/1 root map for even K, whose phase factor e^{i*pi} carries
// sin(pi) ~ 1e-16 — keeps a seed-dependent imaginary residue of relative
// size ~eps that Newton cannot contract below its own stopping threshold.
// Relative mantissa rounding cannot canonicalize such a component (the noise
// IS its leading bits), so it is flushed instead: 2^-40 sits far above
// eps-scale noise and far below the smallest genuine component a
// conjugate-pair root carries. Flushing a genuine-but-tiny component would
// only move the seed, not the answer: the re-polish still converges from it,
// identically on every path.
const snapZeroTol = 0x1p-40

// SnapSeedC rounds both components of z to snapBits significant bits,
// flushing a component that is rounding noise relative to the other to zero
// (see snapZeroTol).
func SnapSeedC(z complex128) complex128 {
	re, im := real(z), imag(z)
	if math.Abs(im) < snapZeroTol*math.Abs(re) {
		im = 0
	} else if math.Abs(re) < snapZeroTol*math.Abs(im) {
		re = 0
	}
	return complex(SnapSeed(re), SnapSeed(im))
}
