// Package xmath supplies the numerical routines the rest of the module is
// built on: special functions (regularized incomplete gamma and beta),
// exact binomial and Poisson tails, Chernoff/large-deviation helpers, robust
// one-dimensional root finding, compensated summation and a small
// Nelder-Mead simplex optimizer.
//
// The Go standard library deliberately ships only a thin math package; this
// package fills the gap the reproduction needs (distribution fitting and
// queueing tails) without any third-party dependency.
package xmath

import (
	"errors"
	"math"
)

// Machine-level tolerances used throughout the package.
const (
	// Eps is the relative spacing of float64 values near 1.
	Eps = 2.220446049250313e-16
	// TinyFloor guards divisions in continued-fraction evaluations.
	TinyFloor = 1e-300
)

// ErrNoConvergence is returned when an iterative routine exceeds its
// iteration budget without meeting its tolerance.
var ErrNoConvergence = errors.New("xmath: iteration did not converge")

// ErrBracket is returned when a root finder is given an interval whose
// endpoints do not bracket a sign change.
var ErrBracket = errors.New("xmath: interval does not bracket a root")

// GammaP computes the regularized lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a) for a > 0, x >= 0.
//
// P(a, x) is the CDF at x of a Gamma(a, 1) random variable; Erlang and
// Poisson probabilities reduce to it.
func GammaP(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case x < a+1:
		return gammaPSeries(a, x)
	default:
		return 1 - gammaQContinuedFraction(a, x)
	}
}

// GammaQ computes the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x). It keeps precision for large x where P(a,x) -> 1.
func GammaQ(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 1
	case x < a+1:
		return 1 - gammaPSeries(a, x)
	default:
		return gammaQContinuedFraction(a, x)
	}
}

// gammaPSeries evaluates P(a,x) by its power series, accurate for x < a+1.
func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for n := 0; n < 500; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*Eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaQContinuedFraction evaluates Q(a,x) by the Lentz continued fraction,
// accurate for x >= a+1.
func gammaQContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / TinyFloor
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < TinyFloor {
			d = TinyFloor
		}
		c = b + an/c
		if math.Abs(c) < TinyFloor {
			c = TinyFloor
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < Eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// BetaInc computes the regularized incomplete beta function I_x(a, b) for
// a, b > 0 and x in [0, 1]. It is the CDF of a Beta(a, b) random variable and
// yields exact binomial tails.
func BetaInc(a, b, x float64) float64 {
	switch {
	case a <= 0 || b <= 0 || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	lgab, _ := math.Lgamma(a + b)
	front := math.Exp(lgab - lga - lgb + a*math.Log(x) + b*math.Log1p(-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - math.Exp(lgab-lga-lgb+b*math.Log1p(-x)+a*math.Log(x))*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for BetaInc by the modified Lentz
// method.
func betaCF(a, b, x float64) float64 {
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < TinyFloor {
		d = TinyFloor
	}
	d = 1 / d
	h := d
	for m := 1; m <= 500; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < TinyFloor {
			d = TinyFloor
		}
		c = 1 + aa/c
		if math.Abs(c) < TinyFloor {
			c = TinyFloor
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < TinyFloor {
			d = TinyFloor
		}
		c = 1 + aa/c
		if math.Abs(c) < TinyFloor {
			c = TinyFloor
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < Eps {
			break
		}
	}
	return h
}

// BinomialTail returns P(X >= k) for X ~ Binomial(n, p), computed exactly via
// the incomplete beta function (no summation loss).
func BinomialTail(n int, p float64, k int) float64 {
	switch {
	case n < 0 || math.IsNaN(p):
		return math.NaN()
	case k <= 0:
		return 1
	case k > n:
		return 0
	case p <= 0:
		return 0
	case p >= 1:
		return 1
	}
	return BetaInc(float64(k), float64(n-k+1), p)
}

// BinomialPMF returns P(X = k) for X ~ Binomial(n, p) using log-space
// evaluation so large n stays finite.
func BinomialPMF(n int, p float64, k int) float64 {
	if k < 0 || k > n || n < 0 {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	return math.Exp(LogChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p))
}

// LogChoose returns log(n choose k) via log-gamma.
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln - lk - lnk
}

// PoissonTail returns P(X >= k) for X ~ Poisson(mu), exactly:
// P(X >= k) = P(k, mu) (regularized lower incomplete gamma).
func PoissonTail(mu float64, k int) float64 {
	switch {
	case mu < 0 || math.IsNaN(mu):
		return math.NaN()
	case k <= 0:
		return 1
	case mu == 0:
		return 0
	}
	return GammaP(float64(k), mu)
}

// PoissonPMF returns P(X = k) for X ~ Poisson(mu) in log space.
func PoissonPMF(mu float64, k int) float64 {
	if k < 0 || mu < 0 {
		return 0
	}
	if mu == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	lk, _ := math.Lgamma(float64(k + 1))
	return math.Exp(float64(k)*math.Log(mu) - mu - lk)
}

// ErlangTail returns P(X > x) for X ~ Erlang(k, rate), k >= 1, rate > 0,
// using the regularized upper incomplete gamma function.
func ErlangTail(k int, rate, x float64) float64 {
	switch {
	case k < 1 || rate <= 0:
		return math.NaN()
	case x <= 0:
		return 1
	}
	return GammaQ(float64(k), rate*x)
}

// ErlangCDF returns P(X <= x) for X ~ Erlang(k, rate).
func ErlangCDF(k int, rate, x float64) float64 {
	switch {
	case k < 1 || rate <= 0:
		return math.NaN()
	case x <= 0:
		return 0
	}
	return GammaP(float64(k), rate*x)
}

// KahanSum accumulates a sum in compensated (Kahan-Babuska) arithmetic.
// The zero value is ready to use.
type KahanSum struct {
	sum float64
	c   float64
}

// Add accumulates v.
func (k *KahanSum) Add(v float64) {
	t := k.sum + v
	if math.Abs(k.sum) >= math.Abs(v) {
		k.c += (k.sum - t) + v
	} else {
		k.c += (v - t) + k.sum
	}
	k.sum = t
}

// Sum returns the compensated total.
func (k *KahanSum) Sum() float64 { return k.sum + k.c }

// SumSlice returns the compensated sum of xs.
func SumSlice(xs []float64) float64 {
	var k KahanSum
	for _, x := range xs {
		k.Add(x)
	}
	return k.Sum()
}

// Linspace fills a slice with n evenly spaced points from lo to hi inclusive.
// n must be at least 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	default:
		return v
	}
}
