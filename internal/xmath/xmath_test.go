package xmath

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestGammaPKnownValues(t *testing.T) {
	// Reference values from the identity P(1, x) = 1 - exp(-x) and the
	// chi-square distribution with 2k degrees of freedom.
	cases := []struct {
		a, x, want float64
	}{
		{1, 0, 0},
		{1, 1, 1 - math.Exp(-1)},
		{1, 5, 1 - math.Exp(-5)},
		{2, 2, 1 - math.Exp(-2)*(1+2)},
		{3, 1, 1 - math.Exp(-1)*(1+1+0.5)},
		{5, 5, 0.5595067149347875}, // computed from Erlang(5) partial sums
		{0.5, 0.5, math.Erf(math.Sqrt(0.5))},
		{0.5, 2, math.Erf(math.Sqrt(2))},
	}
	for _, c := range cases {
		if got := GammaP(c.a, c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("GammaP(%v,%v) = %v, want %v", c.a, c.x, got, c.want)
		}
	}
}

func TestGammaPQComplement(t *testing.T) {
	for _, a := range []float64{0.3, 1, 2.5, 7, 20, 100} {
		for _, x := range []float64{0.01, 0.5, 1, 3, 10, 50, 150} {
			p, q := GammaP(a, x), GammaQ(a, x)
			if !almostEqual(p+q, 1, 1e-12) {
				t.Errorf("P+Q != 1 at a=%v x=%v: %v", a, x, p+q)
			}
			if p < 0 || p > 1 || q < 0 || q > 1 {
				t.Errorf("out of range at a=%v x=%v: P=%v Q=%v", a, x, p, q)
			}
		}
	}
}

func TestGammaPMonotoneInX(t *testing.T) {
	for _, a := range []float64{0.5, 1, 4, 16} {
		prev := -1.0
		for x := 0.0; x < 40; x += 0.25 {
			p := GammaP(a, x)
			if p < prev-1e-14 {
				t.Fatalf("GammaP(%v, x) not monotone at x=%v: %v < %v", a, x, p, prev)
			}
			prev = p
		}
	}
}

func TestBetaIncKnownValues(t *testing.T) {
	// I_x(1, b) = 1-(1-x)^b, I_x(a, 1) = x^a, and symmetry
	// I_x(a,b) = 1 - I_{1-x}(b,a).
	cases := []struct {
		a, b, x, want float64
	}{
		{1, 1, 0.3, 0.3},
		{1, 2, 0.5, 1 - 0.25},
		{2, 1, 0.5, 0.25},
		{2, 2, 0.5, 0.5},
		{3, 1, 0.2, 0.008},
		{5, 5, 0.5, 0.5},
	}
	for _, c := range cases {
		if got := BetaInc(c.a, c.b, c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("BetaInc(%v,%v,%v) = %v, want %v", c.a, c.b, c.x, got, c.want)
		}
	}
}

func TestBetaIncSymmetry(t *testing.T) {
	f := func(ai, bi uint8, xi uint16) bool {
		a := 0.1 + float64(ai%40)/4
		b := 0.1 + float64(bi%40)/4
		x := float64(xi%1000) / 1000
		lhs := BetaInc(a, b, x)
		rhs := 1 - BetaInc(b, a, 1-x)
		return almostEqual(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinomialTailExact(t *testing.T) {
	// Compare against direct summation of the PMF for small n.
	for _, n := range []int{1, 2, 5, 10, 25} {
		for _, p := range []float64{0.05, 0.3, 0.5, 0.9} {
			for k := 0; k <= n+1; k++ {
				var want float64
				for j := k; j <= n; j++ {
					want += BinomialPMF(n, p, j)
				}
				if got := BinomialTail(n, p, k); !almostEqual(got, want, 1e-10) {
					t.Errorf("BinomialTail(%d,%v,%d)=%v want %v", n, p, k, got, want)
				}
			}
		}
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, n := range []int{3, 17, 120} {
		for _, p := range []float64{0.01, 0.4, 0.77} {
			var sum KahanSum
			for k := 0; k <= n; k++ {
				sum.Add(BinomialPMF(n, p, k))
			}
			if !almostEqual(sum.Sum(), 1, 1e-10) {
				t.Errorf("pmf sum n=%d p=%v: %v", n, p, sum.Sum())
			}
		}
	}
}

func TestPoissonTailExact(t *testing.T) {
	for _, mu := range []float64{0.1, 1, 4, 20} {
		for k := 0; k <= 40; k++ {
			var want float64
			// Sum the complement for accuracy.
			for j := 0; j < k; j++ {
				want += PoissonPMF(mu, j)
			}
			want = 1 - want
			if got := PoissonTail(mu, k); !almostEqual(got, want, 1e-9) && math.Abs(got-want) > 1e-12 {
				t.Errorf("PoissonTail(%v,%d)=%v want %v", mu, k, got, want)
			}
		}
	}
}

func TestErlangTailMatchesSeries(t *testing.T) {
	// Erlang tail has the closed form e^{-rx} sum_{i<k} (rx)^i/i!.
	for _, k := range []int{1, 2, 5, 20} {
		for _, rate := range []float64{0.5, 2} {
			for _, x := range []float64{0.1, 1, 5, 20} {
				term := math.Exp(-rate * x)
				sum := term
				for i := 1; i < k; i++ {
					term *= rate * x / float64(i)
					sum += term
				}
				if got := ErlangTail(k, rate, x); !almostEqual(got, sum, 1e-10) {
					t.Errorf("ErlangTail(%d,%v,%v)=%v want %v", k, rate, x, got, sum)
				}
			}
		}
	}
}

func TestErlangCDFTailComplement(t *testing.T) {
	f := func(ki uint8, xi uint16) bool {
		k := 1 + int(ki%30)
		x := float64(xi%500) / 10
		c, ta := ErlangCDF(k, 1.3, x), ErlangTail(k, 1.3, x)
		return almostEqual(c+ta, 1, 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBisect(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(root, math.Sqrt2, 1e-10) {
		t.Errorf("root = %v", root)
	}
	if _, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-12); err != ErrBracket {
		t.Errorf("expected ErrBracket, got %v", err)
	}
}

func TestBrent(t *testing.T) {
	cases := []struct {
		f        func(float64) float64
		lo, hi   float64
		wantRoot float64
	}{
		{func(x float64) float64 { return x*x*x - x - 2 }, 1, 2, 1.5213797068045676},
		{func(x float64) float64 { return math.Cos(x) - x }, 0, 1, 0.7390851332151607},
		{func(x float64) float64 { return math.Exp(x) - 5 }, 0, 3, math.Log(5)},
	}
	for i, c := range cases {
		root, err := Brent(c.f, c.lo, c.hi, 1e-13)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !almostEqual(root, c.wantRoot, 1e-9) {
			t.Errorf("case %d: root=%v want %v", i, root, c.wantRoot)
		}
	}
}

func TestNewton(t *testing.T) {
	root, err := Newton(
		func(x float64) float64 { return x*x - 2 },
		func(x float64) float64 { return 2 * x },
		1, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(root, math.Sqrt2, 1e-12) {
		t.Errorf("root = %v", root)
	}
}

func TestFindBracketUp(t *testing.T) {
	f := func(x float64) float64 { return x - 37.5 }
	a, b, err := FindBracketUp(f, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !(f(a) < 0 && f(b) > 0) {
		t.Errorf("bad bracket [%v,%v]", a, b)
	}
}

func TestMinimizeGolden(t *testing.T) {
	x, fx := MinimizeGolden(func(x float64) float64 { return (x - 3) * (x - 3) }, -10, 10, 1e-10)
	if !almostEqual(x, 3, 1e-6) || fx > 1e-10 {
		t.Errorf("min at %v (f=%v)", x, fx)
	}
}

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		dx, dy := x[0]-1, x[1]+2
		return dx*dx + 3*dy*dy
	}
	x, fx := NelderMead(f, []float64{10, 10}, NelderMeadOptions{})
	if !almostEqual(x[0], 1, 1e-4) || !almostEqual(x[1], -2, 1e-4) || fx > 1e-7 {
		t.Errorf("min at %v (f=%v)", x, fx)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	x, fx := NelderMead(f, []float64{-1.2, 1}, NelderMeadOptions{MaxIter: 20000, Tol: 1e-14})
	if fx > 1e-8 {
		t.Errorf("Rosenbrock min at %v (f=%v)", x, fx)
	}
}

func TestKahanSum(t *testing.T) {
	var s KahanSum
	for i := 0; i < 1_000_000; i++ {
		s.Add(0.1)
	}
	if !almostEqual(s.Sum(), 100000, 1e-9) {
		t.Errorf("kahan sum = %v", s.Sum())
	}
	// Catastrophic cancellation case a naive sum gets wrong.
	var s2 KahanSum
	s2.Add(1e16)
	for i := 0; i < 10; i++ {
		s2.Add(1)
	}
	s2.Add(-1e16)
	if s2.Sum() != 10 {
		t.Errorf("cancellation sum = %v, want 10", s2.Sum())
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if !almostEqual(xs[i], want[i], 1e-15) {
			t.Errorf("xs[%d]=%v want %v", i, xs[i], want[i])
		}
	}
	if xs[len(xs)-1] != 1 {
		t.Error("endpoint not exact")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("clamp broken")
	}
}

func BenchmarkGammaQ(b *testing.B) {
	for i := 0; i < b.N; i++ {
		GammaQ(20, 35.5)
	}
}

func BenchmarkBinomialTail(b *testing.B) {
	for i := 0; i < b.N; i++ {
		BinomialTail(1000, 0.3, 350)
	}
}

func TestPolyEvalAndDeriv(t *testing.T) {
	// p(z) = 1 + 2z + 3z^2 at z=2: 1+4+12 = 17.
	c := []complex128{1, 2, 3}
	if got := PolyEval(c, 2); got != 17 {
		t.Errorf("eval = %v", got)
	}
	d := PolyDeriv(c) // 2 + 6z
	if got := PolyEval(d, 2); got != 14 {
		t.Errorf("deriv eval = %v", got)
	}
	if got := PolyDeriv([]complex128{5}); len(got) != 1 || got[0] != 0 {
		t.Errorf("constant deriv = %v", got)
	}
}

func TestPolyRootsHighDegree(t *testing.T) {
	// Roots of z^6 - 1: sixth roots of unity.
	c := make([]complex128, 7)
	c[0], c[6] = -1, 1
	roots, err := PolyRoots(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 6 {
		t.Fatalf("%d roots", len(roots))
	}
	for _, r := range roots {
		if math.Abs(real(r)*real(r)+imag(r)*imag(r)-1) > 1e-8 {
			t.Errorf("root %v off the unit circle", r)
		}
	}
	// Leading zeros trimmed.
	roots2, err := PolyRoots([]complex128{-2, 1, 0, 0})
	if err != nil || len(roots2) != 1 || math.Abs(real(roots2[0])-2) > 1e-10 {
		t.Errorf("trimmed roots %v, %v", roots2, err)
	}
}

func TestBrentNoBracket(t *testing.T) {
	if _, err := Brent(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-12); err != ErrBracket {
		t.Errorf("want ErrBracket, got %v", err)
	}
	// Exact endpoint roots.
	r, err := Brent(func(x float64) float64 { return x }, 0, 1, 1e-12)
	if err != nil || r != 0 {
		t.Errorf("endpoint root: %v, %v", r, err)
	}
}

func TestNewtonNonconvergence(t *testing.T) {
	// Zero derivative stops immediately.
	if _, err := Newton(
		func(x float64) float64 { return 1 },
		func(x float64) float64 { return 0 },
		0, 1e-12); err != ErrNoConvergence {
		t.Errorf("want ErrNoConvergence, got %v", err)
	}
}

func TestGammaInvalidInputs(t *testing.T) {
	if !math.IsNaN(GammaP(-1, 1)) || !math.IsNaN(GammaQ(0, 1)) {
		t.Error("invalid shape should give NaN")
	}
	if GammaQ(2, 0) != 1 || GammaP(2, -1) != 0 {
		t.Error("boundary values wrong")
	}
	if !math.IsNaN(BetaInc(0, 1, 0.5)) {
		t.Error("invalid beta params should give NaN")
	}
	if BinomialTail(-1, 0.5, 0) == BinomialTail(-1, 0.5, 0) && !math.IsNaN(BinomialTail(-1, 0.5, 1)) {
		t.Error("negative n should give NaN for k>0")
	}
	if BinomialPMF(3, -0.5, 1) != 0 && BinomialPMF(3, 0, 0) != 1 {
		t.Error("binomial pmf edge cases")
	}
	if PoissonPMF(-1, 2) != 0 || PoissonPMF(0, 0) != 1 {
		t.Error("poisson pmf edge cases")
	}
	if !math.IsNaN(ErlangTail(0, 1, 1)) || !math.IsNaN(ErlangCDF(1, 0, 1)) {
		t.Error("erlang invalid params")
	}
}

func TestNelderMeadEmptyAndOneD(t *testing.T) {
	x, fx := NelderMead(func(x []float64) float64 { return 42 }, nil, NelderMeadOptions{})
	if x != nil || fx != 42 {
		t.Errorf("empty dimension: %v %v", x, fx)
	}
	x, _ = NelderMead(func(x []float64) float64 { return (x[0] + 7) * (x[0] + 7) }, []float64{3}, NelderMeadOptions{})
	if math.Abs(x[0]+7) > 1e-3 {
		t.Errorf("1-d min at %v", x)
	}
}

func TestSumSliceAndLinspaceEdge(t *testing.T) {
	if SumSlice([]float64{0.1, 0.2, 0.3}) != 0.6000000000000001 && math.Abs(SumSlice([]float64{0.1, 0.2, 0.3})-0.6) > 1e-15 {
		t.Error("sum slice")
	}
	if got := Linspace(5, 9, 1); len(got) != 1 || got[0] != 5 {
		t.Errorf("degenerate linspace %v", got)
	}
}
