package xmath

import "math"

// Bisect finds a root of f in [lo, hi] by bisection. f(lo) and f(hi) must
// have opposite signs. It stops when the interval shrinks below tol (absolute)
// or after 200 iterations, whichever comes first.
func Bisect(f func(float64) float64, lo, hi, tol float64) (float64, error) {
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if math.Signbit(flo) == math.Signbit(fhi) {
		return 0, ErrBracket
	}
	for i := 0; i < 200; i++ {
		mid := lo + (hi-lo)/2
		fm := f(mid)
		if fm == 0 || hi-lo < tol {
			return mid, nil
		}
		if math.Signbit(fm) == math.Signbit(flo) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2, nil
}

// Brent finds a root of f in [lo, hi] by Brent's method (inverse quadratic
// interpolation with bisection fallback). f(lo) and f(hi) must bracket a
// sign change.
func Brent(f func(float64) float64, lo, hi, tol float64) (float64, error) {
	return BrentBracketed(f, lo, hi, f(lo), f(hi), tol)
}

// BrentBracketed is Brent with the endpoint values supplied by the caller:
// the warm-start form for pipelines that already evaluated f at the bracket
// (a doubling search, a previous inversion) and must not pay for — or must
// reproduce bit-exactly — those evaluations. flo and fhi must equal f(lo)
// and f(hi); the iterates, and therefore the returned root, are a
// deterministic function of (lo, hi, flo, fhi) and the interior evaluations.
func BrentBracketed(f func(float64) float64, lo, hi, flo, fhi, tol float64) (float64, error) {
	a, b := lo, hi
	fa, fb := flo, fhi
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, ErrBracket
	}
	c, fc := a, fa
	mflag := true
	var d float64
	for i := 0; i < 200; i++ {
		if fb == 0 || math.Abs(b-a) < tol {
			return b, nil
		}
		var s float64
		if fa != fc && fb != fc {
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant step.
			s = b - fb*(b-a)/(fb-fa)
		}
		lo34 := (3*a + b) / 4
		cond := (s < math.Min(lo34, b) || s > math.Max(lo34, b)) ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < tol) ||
			(!mflag && math.Abs(c-d) < tol)
		if cond {
			s = (a + b) / 2
			mflag = true
		} else {
			mflag = false
		}
		fs := f(s)
		d = c
		c, fc = b, fb
		if math.Signbit(fa) != math.Signbit(fs) {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b = b, a
			fa, fb = fb, fa
		}
	}
	return b, nil
}

// Newton iterates x <- x - f(x)/df(x) from x0 until |step| < tol. It returns
// ErrNoConvergence if 100 iterations do not suffice or the derivative
// vanishes.
func Newton(f, df func(float64) float64, x0, tol float64) (float64, error) {
	x := x0
	for i := 0; i < 100; i++ {
		d := df(x)
		if d == 0 || math.IsNaN(d) {
			return x, ErrNoConvergence
		}
		step := f(x) / d
		x -= step
		if math.Abs(step) < tol {
			return x, nil
		}
	}
	return x, ErrNoConvergence
}

// FindBracketUp searches upward from lo by repeated doubling until f changes
// sign relative to f(lo), returning a bracketing interval. It gives up after
// 200 doublings.
func FindBracketUp(f func(float64) float64, lo, step float64) (a, b float64, err error) {
	fa := f(lo)
	x := lo
	for i := 0; i < 200; i++ {
		next := x + step
		fn := f(next)
		if math.Signbit(fn) != math.Signbit(fa) || fn == 0 {
			return x, next, nil
		}
		x = next
		step *= 2
	}
	return 0, 0, ErrBracket
}

// MinimizeGolden locates the minimum of unimodal f on [lo, hi] by golden
// section search with absolute tolerance tol.
func MinimizeGolden(f func(float64) float64, lo, hi, tol float64) (x, fx float64) {
	const invPhi = 0.6180339887498949
	a, b := lo, hi
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	for i := 0; i < 300 && math.Abs(b-a) > tol; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	if fc < fd {
		return c, fc
	}
	return d, fd
}
