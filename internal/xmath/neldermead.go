package xmath

import (
	"math"
	"sort"
)

// NelderMeadOptions tunes the simplex search. The zero value selects the
// standard coefficients and a budget suitable for low-dimensional fits.
type NelderMeadOptions struct {
	// MaxIter bounds the number of simplex transformations (default 2000).
	MaxIter int
	// Tol is the convergence threshold on the objective spread across the
	// simplex (default 1e-10).
	Tol float64
	// Scale sets the initial simplex edge length relative to each start
	// coordinate (default 0.05, with an absolute floor of 0.001).
	Scale float64
}

// NelderMead minimizes f starting from x0 using the Nelder-Mead downhill
// simplex method. It returns the best point found and its objective value.
// The method is derivative-free, which suits the histogram least-squares
// fits used by the fitting package (objectives there are piecewise smooth).
func NelderMead(f func([]float64) float64, x0 []float64, opt NelderMeadOptions) ([]float64, float64) {
	if opt.MaxIter <= 0 {
		opt.MaxIter = 2000
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-10
	}
	if opt.Scale <= 0 {
		opt.Scale = 0.05
	}
	n := len(x0)
	if n == 0 {
		return nil, f(nil)
	}

	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)

	type vertex struct {
		x []float64
		f float64
	}
	simplex := make([]vertex, n+1)
	simplex[0] = vertex{x: append([]float64(nil), x0...)}
	simplex[0].f = f(simplex[0].x)
	for i := 1; i <= n; i++ {
		x := append([]float64(nil), x0...)
		step := opt.Scale * math.Abs(x[i-1])
		if step < 0.001 {
			step = 0.001
		}
		x[i-1] += step
		simplex[i] = vertex{x: x, f: f(x)}
	}

	centroid := make([]float64, n)
	xr := make([]float64, n)
	xe := make([]float64, n)
	xc := make([]float64, n)

	for iter := 0; iter < opt.MaxIter; iter++ {
		sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
		if math.Abs(simplex[n].f-simplex[0].f) < opt.Tol*(math.Abs(simplex[0].f)+opt.Tol) {
			break
		}
		// Centroid of all but the worst vertex.
		for j := 0; j < n; j++ {
			centroid[j] = 0
			for i := 0; i < n; i++ {
				centroid[j] += simplex[i].x[j]
			}
			centroid[j] /= float64(n)
		}
		worst := simplex[n]
		for j := 0; j < n; j++ {
			xr[j] = centroid[j] + alpha*(centroid[j]-worst.x[j])
		}
		fr := f(xr)
		switch {
		case fr < simplex[0].f:
			// Try expanding past the reflection.
			for j := 0; j < n; j++ {
				xe[j] = centroid[j] + gamma*(xr[j]-centroid[j])
			}
			if fe := f(xe); fe < fr {
				copy(simplex[n].x, xe)
				simplex[n].f = fe
			} else {
				copy(simplex[n].x, xr)
				simplex[n].f = fr
			}
		case fr < simplex[n-1].f:
			copy(simplex[n].x, xr)
			simplex[n].f = fr
		default:
			// Contract toward the better of worst/reflected.
			ref := worst.x
			reff := worst.f
			if fr < worst.f {
				ref = xr
				reff = fr
			}
			for j := 0; j < n; j++ {
				xc[j] = centroid[j] + rho*(ref[j]-centroid[j])
			}
			if fc := f(xc); fc < reff {
				copy(simplex[n].x, xc)
				simplex[n].f = fc
			} else {
				// Shrink everything toward the best vertex.
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						simplex[i].x[j] = simplex[0].x[j] + sigma*(simplex[i].x[j]-simplex[0].x[j])
					}
					simplex[i].f = f(simplex[i].x)
				}
			}
		}
	}
	sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
	return simplex[0].x, simplex[0].f
}
