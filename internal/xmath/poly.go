package xmath

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// ErrDegenerate reports a polynomial without the requested structure.
var ErrDegenerate = errors.New("xmath: degenerate polynomial")

// PolyEval evaluates a polynomial with coefficients c (c[i] multiplies z^i)
// by Horner's rule.
func PolyEval(c []complex128, z complex128) complex128 {
	var v complex128
	for i := len(c) - 1; i >= 0; i-- {
		v = v*z + c[i]
	}
	return v
}

// PolyDeriv returns the derivative's coefficients.
func PolyDeriv(c []complex128) []complex128 {
	if len(c) <= 1 {
		return []complex128{0}
	}
	out := make([]complex128, len(c)-1)
	for i := 1; i < len(c); i++ {
		out[i-1] = complex(float64(i), 0) * c[i]
	}
	return out
}

// PolyRoots finds all complex roots of the polynomial with coefficients c
// (degree = len(c)-1) by the Durand-Kerner (Weierstrass) simultaneous
// iteration, followed by a Newton polish of each root. Leading zero
// coefficients are trimmed; the polynomial must have degree >= 1.
//
// Durand-Kerner converges for polynomials with simple roots from the
// standard staggered initial guesses; the M/E_K/1 queueing polynomials this
// package exists for have simple roots for stable loads.
func PolyRoots(c []complex128) ([]complex128, error) {
	// Trim leading zeros.
	deg := len(c) - 1
	for deg > 0 && c[deg] == 0 {
		deg--
	}
	if deg < 1 {
		return nil, fmt.Errorf("%w: degree %d", ErrDegenerate, deg)
	}
	c = c[:deg+1]
	// Normalize to monic.
	monic := make([]complex128, deg+1)
	for i := range monic {
		monic[i] = c[i] / c[deg]
	}

	// Initial guesses: points on a circle with radius from the coefficient
	// bound, at non-real angles to break symmetry.
	radius := 0.0
	for i := 0; i < deg; i++ {
		if r := cmplx.Abs(monic[i]); r > radius {
			radius = r
		}
	}
	radius = 1 + radius
	roots := make([]complex128, deg)
	for i := range roots {
		angle := 2*math.Pi*float64(i)/float64(deg) + 0.4
		roots[i] = complex(radius*math.Cos(angle), radius*math.Sin(angle)) * complex(0.4, 0)
	}

	// Weierstrass iteration.
	for iter := 0; iter < 1000; iter++ {
		maxStep := 0.0
		for i := range roots {
			num := PolyEval(monic, roots[i])
			den := complex(1, 0)
			for j := range roots {
				if j != i {
					den *= roots[i] - roots[j]
				}
			}
			if den == 0 {
				// Perturb coincident iterates.
				roots[i] += complex(1e-8*radius, 1e-8*radius)
				continue
			}
			step := num / den
			roots[i] -= step
			if s := cmplx.Abs(step); s > maxStep {
				maxStep = s
			}
		}
		if maxStep < 1e-14*radius {
			break
		}
	}

	// Newton polish for a few steps each.
	dc := PolyDeriv(monic)
	for i := range roots {
		for iter := 0; iter < 20; iter++ {
			d := PolyEval(dc, roots[i])
			if d == 0 {
				break
			}
			step := PolyEval(monic, roots[i]) / d
			roots[i] -= step
			if cmplx.Abs(step) < 1e-15*(1+cmplx.Abs(roots[i])) {
				break
			}
		}
	}

	// Verify residuals.
	for i, r := range roots {
		if res := cmplx.Abs(PolyEval(monic, r)); res > 1e-7*(1+math.Pow(cmplx.Abs(r), float64(deg))) {
			return nil, fmt.Errorf("xmath: root %d residual %g", i, res)
		}
	}
	return roots, nil
}
