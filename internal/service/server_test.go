package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestServer(t *testing.T, jobs int) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer("127.0.0.1:0", NewEngine(jobs, 0))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func do(t *testing.T, method, url, body string) (*http.Response, []byte) {
	t.Helper()
	var req *http.Request
	var err error
	if body == "" {
		req, err = http.NewRequest(method, url, nil)
	} else {
		req, err = http.NewRequest(method, url, strings.NewReader(body))
		if err == nil {
			req.Header.Set("Content-Type", "application/json")
		}
	}
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestRTTEndpointGetAndPostAgree(t *testing.T) {
	_, ts := newTestServer(t, 2)
	respGet, bodyGet := do(t, http.MethodGet, ts.URL+"/v1/rtt?load=0.5", "")
	if respGet.StatusCode != http.StatusOK {
		t.Fatalf("GET status %d: %s", respGet.StatusCode, bodyGet)
	}
	if got := respGet.Header.Get(CacheHeader); got != "miss" {
		t.Errorf("first call cache header %q", got)
	}
	respPost, bodyPost := do(t, http.MethodPost, ts.URL+"/v1/rtt", `{"load": 0.5}`)
	if respPost.StatusCode != http.StatusOK {
		t.Fatalf("POST status %d: %s", respPost.StatusCode, bodyPost)
	}
	if got := respPost.Header.Get(CacheHeader); got != "hit" {
		t.Errorf("identical repeat cache header %q", got)
	}
	if string(bodyGet) != string(bodyPost) {
		t.Errorf("GET and POST bodies differ:\n%s\n%s", bodyGet, bodyPost)
	}
	var res RTTResult
	if err := json.Unmarshal(bodyGet, &res); err != nil {
		t.Fatal(err)
	}
	if !(res.QuantileMs > 0) || res.DownlinkLoad != 0.5 {
		t.Errorf("implausible result: %+v", res)
	}
}

func TestRTTEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, 1)
	cases := []struct {
		name, method, path, body string
		wantStatus               int
	}{
		{"unknown JSON key", http.MethodPost, "/v1/rtt", `{"gamer": 80}`, http.StatusBadRequest},
		{"malformed JSON", http.MethodPost, "/v1/rtt", `{`, http.StatusBadRequest},
		{"invalid scenario", http.MethodGet, "/v1/rtt?gamers=0", "", http.StatusBadRequest},
		{"unstable scenario", http.MethodGet, "/v1/rtt?load=1.5", "", http.StatusUnprocessableEntity},
		{"bad query value", http.MethodGet, "/v1/rtt?t=fast", "", http.StatusBadRequest},
		{"typoed query key", http.MethodGet, "/v1/rtt?gamer=200", "", http.StatusBadRequest},
		{"unknown sweep body key", http.MethodPost, "/v1/sweep", `{"scenario": {}, "stepp": 0.01}`, http.StatusBadRequest},
		{"bound misspelled in body", http.MethodPost, "/v1/dimension", `{"scenario": {}, "bound": 40}`, http.StatusBadRequest},
		{"unknown batch key", http.MethodPost, "/v1/rtt:batch", `{"scenario": [{}]}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := do(t, c.method, ts.URL+c.path, c.body)
			if resp.StatusCode != c.wantStatus {
				t.Errorf("status %d, want %d: %s", resp.StatusCode, c.wantStatus, body)
			}
			var e apiError
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Errorf("error body not a JSON envelope: %s", body)
			}
		})
	}
	resp, _ := do(t, http.MethodDelete, ts.URL+"/v1/rtt", "")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE status %d", resp.StatusCode)
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, 4)
	body := `{"scenarios": [{"load": 0.5}, {"k": 0}, {"load": 0.5}]}`
	resp, data := do(t, http.MethodPost, ts.URL+"/v1/rtt:batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var res BatchResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 3 {
		t.Fatalf("%d results", len(res.Results))
	}
	if res.Results[0].Result == nil || res.Results[2].Result == nil {
		t.Error("valid items failed")
	}
	if res.Results[1].Error == "" {
		t.Error("invalid item did not error")
	}
	if res.Cached != 1 {
		t.Errorf("Cached = %d", res.Cached)
	}

	for _, bad := range []string{"", `{"scenarios": []}`, `not json`, `{"scenarios": [{"oops": 1}]}`} {
		resp, _ := do(t, http.MethodPost, ts.URL+"/v1/rtt:batch", bad)
		if resp.StatusCode == http.StatusOK {
			t.Errorf("batch body %q accepted", bad)
		}
	}
}

func TestSweepEndpoint(t *testing.T) {
	_, ts := newTestServer(t, 4)
	respQ, bodyQ := do(t, http.MethodGet, ts.URL+"/v1/sweep?ps=125&t=60&from=0.1&to=0.5&step=0.1", "")
	if respQ.StatusCode != http.StatusOK {
		t.Fatalf("GET status %d: %s", respQ.StatusCode, bodyQ)
	}
	respJ, bodyJ := do(t, http.MethodPost, ts.URL+"/v1/sweep",
		`{"scenario": {"ps": 125, "t": 60}, "from": 0.1, "to": 0.5, "step": 0.1}`)
	if respJ.StatusCode != http.StatusOK {
		t.Fatalf("POST status %d: %s", respJ.StatusCode, bodyJ)
	}
	if string(bodyQ) != string(bodyJ) {
		t.Errorf("query and JSON sweeps differ:\n%s\n%s", bodyQ, bodyJ)
	}
	if got := respJ.Header.Get(CacheHeader); got != "hit" {
		t.Errorf("repeat sweep cache header %q", got)
	}
	var res SweepResult
	if err := json.Unmarshal(bodyQ, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Errorf("%d points", len(res.Points))
	}
	// Defaults: an empty POST body sweeps the default scenario 5%..90%.
	resp, data := do(t, http.MethodPost, ts.URL+"/v1/sweep", `{}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default sweep status %d: %s", resp.StatusCode, data)
	}
	resp, _ = do(t, http.MethodGet, ts.URL+"/v1/sweep?from=0.5&to=0.1", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("inverted range status %d", resp.StatusCode)
	}
	// A grid with no stable point is an instability answer, not a server
	// fault.
	resp, _ = do(t, http.MethodGet, ts.URL+"/v1/sweep?from=1.0&to=1.2&step=0.05", "")
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("all-unstable sweep status %d, want 422", resp.StatusCode)
	}
}

func TestDimensionEndpoint(t *testing.T) {
	_, ts := newTestServer(t, 2)
	respQ, bodyQ := do(t, http.MethodGet, ts.URL+"/v1/dimension?ps=125&t=60&k=9&bound=50", "")
	if respQ.StatusCode != http.StatusOK {
		t.Fatalf("GET status %d: %s", respQ.StatusCode, bodyQ)
	}
	respJ, bodyJ := do(t, http.MethodPost, ts.URL+"/v1/dimension",
		`{"scenario": {"ps": 125, "t": 60, "k": 9}, "bound_ms": 50}`)
	if respJ.StatusCode != http.StatusOK {
		t.Fatalf("POST status %d: %s", respJ.StatusCode, bodyJ)
	}
	if string(bodyQ) != string(bodyJ) {
		t.Errorf("query and JSON dimension differ:\n%s\n%s", bodyQ, bodyJ)
	}
	var res DimensionResult
	if err := json.Unmarshal(bodyQ, &res); err != nil {
		t.Fatal(err)
	}
	if res.MaxGamers < 1 || !(res.RTTAtMaxMs <= res.BoundMs) {
		t.Errorf("implausible dimensioning: %+v", res)
	}
	// The GET spelling "bound_ms" matches the JSON body field and wins
	// over the short form; both produce the same answer as the POST body.
	_, bodyMs := do(t, http.MethodGet, ts.URL+"/v1/dimension?ps=125&t=60&k=9&bound_ms=50", "")
	if string(bodyMs) != string(bodyQ) {
		t.Errorf("bound_ms= and bound= answers differ:\n%s\n%s", bodyMs, bodyQ)
	}
	resp, _ := do(t, http.MethodGet, ts.URL+"/v1/dimension?bound=-1", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative bound status %d", resp.StatusCode)
	}
}

func TestModelsHealthzMetrics(t *testing.T) {
	_, ts := newTestServer(t, 2)
	resp, data := do(t, http.MethodGet, ts.URL+"/v1/models", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("models status %d", resp.StatusCode)
	}
	var models struct {
		Models []ModelInfo `json:"models"`
	}
	if err := json.Unmarshal(data, &models); err != nil {
		t.Fatal(err)
	}
	if len(models.Models) < 3 {
		t.Errorf("only %d traffic models", len(models.Models))
	}
	for _, m := range models.Models {
		if m.Name == "" || !(m.Server.MeanSizeBytes > 0) {
			t.Errorf("incomplete model info: %+v", m)
		}
	}

	// Generate some traffic, then check it is visible in healthz/metrics.
	do(t, http.MethodGet, ts.URL+"/v1/rtt?load=0.5", "")
	do(t, http.MethodGet, ts.URL+"/v1/rtt?load=0.5", "")

	resp, data = do(t, http.MethodGet, ts.URL+"/healthz", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var health struct {
		Status      string `json:"status"`
		CacheHits   uint64 `json:"cache_hits"`
		CacheMisses uint64 `json:"cache_misses"`
	}
	if err := json.Unmarshal(data, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.CacheHits < 1 || health.CacheMisses < 1 {
		t.Errorf("healthz = %+v", health)
	}

	resp, data = do(t, http.MethodGet, ts.URL+"/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	out := string(data)
	for _, want := range []string{
		`fpsping_requests_total{endpoint="/v1/rtt"} 2`,
		`fpsping_cache_hits_total{endpoint="/v1/rtt"} 1`,
		`fpsping_requests_total{endpoint="/v1/models"} 1`,
		// The sharded-cache gauges: the two rtt entries (full result +
		// sweep point) live somewhere across the shards.
		"fpsping_cache_shards ",
		"fpsping_cache_entries 2",
		`fpsping_cache_shard_entries{shard="0"}`,
		"fpsping_cache_lookup_hits_total 1",
		"fpsping_cache_lookup_misses_total 1",
		"fpsping_cache_evictions_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
	// healthz reports the same shard layout.
	var h Health
	_, data = do(t, http.MethodGet, ts.URL+"/healthz", "")
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatal(err)
	}
	if h.CacheShards < 1 || h.CacheEntries != 2 || h.CacheEvictions != 0 {
		t.Errorf("healthz cache fields: %+v", h)
	}
}
