package service

import "sync"

// flight coalesces concurrent computations of the same cache key
// (singleflight): however many goroutines miss on a key at once, exactly one
// runs the computation, the rest block and share its result. Failed
// computations are shared with the goroutines that joined them but never
// cached, so the next request retries.
//
// The LRU's own hit/miss counters still record one miss per goroutine (each
// of them did miss the cache); coalescing is visible in the engine's compute
// counter, which under singleflight stays at one per distinct key however
// many clients race.
type flight struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// flightCall is one in-progress computation; done closes after val/err are
// set.
type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

func newFlight() *flight {
	return &flight{calls: make(map[string]*flightCall)}
}

// memo answers key from the engine's cache, joining an identical in-flight
// computation when one exists, and otherwise runs compute exactly once,
// storing the result in the cache on success. shared reports whether the
// answer arrived without computing here: a cache hit or a joined flight.
//
// The exactly-once guarantee needs the leader to publish (cache.Put) before
// it retires its flight entry, and every would-be second leader to re-check
// the cache under the flight lock: a goroutine that missed the cache before
// the leader published either still finds the flight entry (and joins) or
// acquires the lock after the retire, by which point the Put is visible to
// its double-check.
func (e *Engine) memo(key string, compute func() (any, error)) (v any, shared bool, err error) {
	if v, ok := e.cache.Get(key); ok {
		return v, true, nil
	}
	e.flight.mu.Lock()
	if c, ok := e.flight.calls[key]; ok {
		e.flight.mu.Unlock()
		<-c.done
		return c.val, true, c.err
	}
	// Double-check without disturbing the hit/miss counters: a leader that
	// finished between our miss above and this lock already published.
	if v, ok := e.cache.peek(key); ok {
		e.flight.mu.Unlock()
		return v, true, nil
	}
	c := &flightCall{done: make(chan struct{})}
	e.flight.calls[key] = c
	e.flight.mu.Unlock()

	c.val, c.err = compute()
	if c.err == nil {
		e.cache.Put(key, c.val)
	}
	e.flight.mu.Lock()
	delete(e.flight.calls, key)
	e.flight.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}
