package service

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity, concurrency-safe, string-keyed LRU memo
// cache. Values must be treated as immutable once stored: the engine hands
// the same stored value to every hit, so readers never mutate results.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses uint64
}

type lruEntry struct {
	key string
	val any
}

// newLRU returns an empty cache holding at most capacity entries;
// capacity < 1 is treated as 1 so the cache type never needs a nil path.
func newLRU(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// peek returns the cached value without touching the hit/miss counters or
// the recency order: the singleflight double-check must not distort stats.
func (c *lruCache) peek(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		return el.Value.(*lruEntry).val, true
	}
	return nil, false
}

// Get returns the cached value and marks it most recently used.
func (c *lruCache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put stores a value, evicting the least recently used entry when full.
func (c *lruCache) Put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.items, back.Value.(*lruEntry).key)
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, val: val})
}

// Len returns the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns cumulative hit and miss counts.
func (c *lruCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
