package service

import (
	"encoding/json"
	"net/http"
	"testing"
)

// TestHealthzReadiness checks the readiness contract the cluster router
// keys failover on: a fresh server is ready at generation 1; BeginDrain
// flips it to draining (still answering 200 — alive, not dead) and bumps
// the generation exactly once, idempotently.
func TestHealthzReadiness(t *testing.T) {
	srv, ts := newTestServer(t, 1)

	resp, data := do(t, http.MethodGet, ts.URL+"/healthz", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var h Health
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || !h.Ready || h.ReadyGeneration != 1 {
		t.Errorf("fresh server health = %+v, want ok/ready/generation 1", h)
	}

	srv.BeginDrain()
	srv.BeginDrain() // idempotent: one transition, one generation bump
	resp, data = do(t, http.MethodGet, ts.URL+"/healthz", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining healthz status %d, want 200 (draining is alive)", resp.StatusCode)
	}
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" || h.Ready || h.ReadyGeneration != 2 {
		t.Errorf("draining health = %+v, want draining/not-ready/generation 2", h)
	}

	// Model endpoints keep answering during the drain: in-flight and
	// straggler requests finish normally; only new routing moves away.
	resp, body := do(t, http.MethodGet, ts.URL+"/v1/rtt?load=0.5", "")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("draining /v1/rtt status %d: %s", resp.StatusCode, body)
	}
}
