package service

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"

	"fpsping/internal/memo"
	"fpsping/internal/scenario"
)

// cacheSchemaVersion is the manual component of the snapshot schema key.
// Bump it whenever a change alters what cached values mean or how they are
// encoded (a new RTTResult field, a different pointMemo layout, a model fix
// that shifts numbers) without necessarily changing the VCS revision — e.g.
// during local iteration. VCS-stamped builds are additionally keyed by
// revision, so released binaries invalidate snapshots on any code change.
const cacheSchemaVersion = 1

// SchemaKey returns the build-stamped schema string every snapshot this
// binary writes is keyed by, and the only schema it accepts back. It folds
// in the snapshot codec version, the Go toolchain and the VCS revision
// (plus a dirty marker), so a binary with changed model code rejects stale
// snapshots instead of serving answers the current code would not compute.
// Builds without VCS stamping (go test, go run from a plain directory)
// share the "dev" stamp — fine for tests, which compare within one build.
func SchemaKey() string { return schemaKey() }

var schemaKey = sync.OnceValue(func() string {
	rev := "dev"
	if bi, ok := debug.ReadBuildInfo(); ok {
		var vcsRev, dirty string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				vcsRev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "+dirty"
				}
			}
		}
		if vcsRev != "" {
			rev = vcsRev + dirty
		} else if bi.Main.Sum != "" {
			rev = bi.Main.Sum
		}
	}
	return fmt.Sprintf("fpsping-cache|v%d|%s|%s", cacheSchemaVersion, runtime.Version(), rev)
})

// pointSnapshot is pointMemo's wire form: the compiled pipeline is dropped
// (it has no serialization and is cheap to re-derive on demand), the
// bit-exact seconds and the unstable marker are kept.
type pointSnapshot struct {
	Gamers   float64 `json:"gamers"`
	RTT      float64 `json:"rtt"`
	Unstable bool    `json:"unstable,omitempty"`
}

// engineCodec translates the engine's memo entries to snapshot records,
// dispatching on the memo key prefix. Every value is JSON: encoding/json
// round-trips float64 bit-exactly (shortest-representation printing), so a
// restored entry re-marshals to the byte-identical response a live entry
// would produce. Unknown prefixes are skipped on dump (forward compatible
// with new key spaces) and rejected on restore (a same-schema snapshot
// cannot contain them).
type engineCodec struct{}

func (engineCodec) Encode(key string, val any) ([]byte, bool, error) {
	switch {
	case strings.HasPrefix(key, "rtt|"):
		if v, ok := val.(RTTResult); ok {
			data, err := json.Marshal(v)
			return data, err == nil, err
		}
	case strings.HasPrefix(key, "pt|"):
		if v, ok := val.(pointMemo); ok {
			data, err := json.Marshal(pointSnapshot{Gamers: v.Gamers, RTT: v.RTT, Unstable: v.Unstable})
			return data, err == nil, err
		}
	case strings.HasPrefix(key, "sweep|"):
		if v, ok := val.(SweepResult); ok {
			data, err := json.Marshal(v)
			return data, err == nil, err
		}
	case strings.HasPrefix(key, "dim|"):
		if v, ok := val.(DimensionResult); ok {
			data, err := json.Marshal(v)
			return data, err == nil, err
		}
	}
	return nil, false, nil
}

func (engineCodec) Decode(key string, data []byte) (any, error) {
	strict := func(v any) error {
		dec := json.NewDecoder(strings.NewReader(string(data)))
		dec.DisallowUnknownFields()
		return dec.Decode(v)
	}
	switch {
	case strings.HasPrefix(key, "rtt|"):
		var v RTTResult
		return v, strict(&v)
	case strings.HasPrefix(key, "pt|"):
		var ps pointSnapshot
		if err := strict(&ps); err != nil {
			return nil, err
		}
		return pointMemo{Gamers: ps.Gamers, RTT: ps.RTT, Unstable: ps.Unstable}, nil
	case strings.HasPrefix(key, "sweep|"):
		var v SweepResult
		return v, strict(&v)
	case strings.HasPrefix(key, "dim|"):
		var v DimensionResult
		return v, strict(&v)
	}
	return nil, fmt.Errorf("unknown memo key space %q", key)
}

// DumpCache streams a snapshot of the engine's memo cache: every entry the
// codec can persist (RTT answers, sweep grids, dimensionings and the shared
// point memo; compiled pipelines are skipped and re-derived), versioned,
// checksummed and keyed by SchemaKey.
func (e *Engine) DumpCache(w io.Writer) (memo.DumpStats, error) {
	return e.cache.Dump(w, SchemaKey(), engineCodec{})
}

// WarmCache restores a snapshot into the engine's memo cache under
// never-clobber semantics: entries already live (newer) win, and a full
// shard skips archived entries rather than evicting live ones. A snapshot
// from a different schema (changed model code) is rejected whole with
// memo.ErrSchemaMismatch; a corrupt one with memo.ErrSnapshot. Either way
// the cache is untouched on error.
func (e *Engine) WarmCache(r io.Reader) (memo.RestoreStats, error) {
	return e.cache.Restore(r, SchemaKey(), engineCodec{})
}

// canonicalSegments is the number of '|'-separated segments in one
// canonical scenario key, derived from the scenario package itself so this
// parser can never drift from the key format.
var canonicalSegments = sync.OnceValue(func() int {
	return len(strings.Split(scenario.Default().Canonical(), "|"))
})

// ScenarioKeyOf extracts the canonical scenario key from an engine memo key
// ("rtt|<canonical>", "pt|<canonical>", "sweep|<canonical>|from|to|step",
// "dim|<canonical>|bound"). ok=false means the key belongs to no known
// scenario-keyed space. The cluster router's bootstrap uses this to decide
// which snapshot records a replica owns under the hash ring, which routes
// requests by exactly this canonical key.
func ScenarioKeyOf(memoKey string) (key string, ok bool) {
	i := strings.IndexByte(memoKey, '|')
	if i < 0 {
		return "", false
	}
	switch memoKey[:i+1] {
	case "rtt|", "pt|", "sweep|", "dim|":
	default:
		return "", false
	}
	rest := memoKey[i+1:]
	parts := strings.SplitN(rest, "|", canonicalSegments()+1)
	if len(parts) < canonicalSegments() {
		return "", false
	}
	return strings.Join(parts[:canonicalSegments()], "|"), true
}
