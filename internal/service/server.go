package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"fpsping/internal/core"
	"fpsping/internal/memo"
	"fpsping/internal/scenario"
	"fpsping/internal/traffic"
)

// maxBodyBytes bounds request bodies; the largest legitimate payload is a
// batch of a few thousand scenarios, far below this.
const maxBodyBytes = 4 << 20

// maxSnapshotBody bounds /v1/cache:warm uploads separately from the JSON
// request cap: a snapshot of a well-filled cache is legitimately far larger
// than any scenario batch.
const maxSnapshotBody = 256 << 20

// CacheHeader reports on every model endpoint whether the engine cache (or
// a joined in-flight computation) answered: "hit" or "miss". The body is
// byte-identical either way.
const CacheHeader = "X-Fpsping-Cache"

// Server is the fpspingd HTTP front end: routing, JSON codecs and metrics
// around an Engine, plus lifecycle (listen, serve, graceful shutdown).
type Server struct {
	engine *Engine
	http   *http.Server
	ln     net.Listener

	// draining flips on BeginDrain; readyGen increments on every readiness
	// transition so a poller (the cluster router) can tell a restart from a
	// long-lived process and a drain from a death: a draining daemon still
	// answers /healthz (alive, ready=false), a dead one answers nothing.
	draining atomic.Bool
	readyGen atomic.Uint64
}

// NewServer wraps the engine in an HTTP server bound to addr (host:port;
// port 0 picks a free port, see Addr).
func NewServer(addr string, e *Engine) *Server {
	s := &Server{engine: e}
	s.readyGen.Store(1) // generation 1 = first ready period of this process
	s.http = &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// BeginDrain marks the server not-ready ahead of Shutdown: /healthz keeps
// answering 200 with status "draining" and ready=false, so a router routes
// new traffic away while in-flight requests finish. Idempotent.
func (s *Server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.readyGen.Add(1)
	}
}

// Handler returns the daemon's full route table. It is exported so tests
// can drive the service through net/http/httptest without a socket.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/rtt", s.instrument("/v1/rtt", s.handleRTT))
	mux.HandleFunc("/v1/rtt:batch", s.instrument("/v1/rtt:batch", s.handleBatch))
	mux.HandleFunc("/v1/sweep", s.instrument("/v1/sweep", s.handleSweep))
	mux.HandleFunc("/v1/dimension", s.instrument("/v1/dimension", s.handleDimension))
	mux.HandleFunc("/v1/models", s.instrument("/v1/models", s.handleModels))
	mux.HandleFunc("/v1/cache:dump", s.handleCacheDump)
	mux.HandleFunc("/v1/cache:warm", s.handleCacheWarm)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// Listen binds the server's address. After Listen, Addr reports the
// concrete address (useful with port 0).
func (s *Server) Listen() error {
	ln, err := net.Listen("tcp", s.http.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	return nil
}

// Addr returns the bound address after Listen.
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.http.Addr
	}
	return s.ln.Addr().String()
}

// Serve blocks serving requests until Shutdown (returning nil) or a listener
// error. Listen must have succeeded first.
func (s *Server) Serve() error {
	if s.ln == nil {
		return errors.New("service: Serve before Listen")
	}
	if err := s.http.Serve(s.ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// Shutdown drains in-flight requests and closes the listener (graceful up
// to the context's deadline).
func (s *Server) Shutdown(ctx context.Context) error { return s.http.Shutdown(ctx) }

// apiError is the uniform error envelope.
type apiError struct {
	Error string `json:"error"`
}

// errBadRequest marks request-decoding failures (malformed JSON, unknown
// keys, unparsable parameters) so errStatus can blame the client.
var errBadRequest = errors.New("service: bad request")

// badRequest tags err as the client's fault; nil stays nil.
func badRequest(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", errBadRequest, err)
}

// writeJSON marshals v compactly; the compact single-marshal path keeps
// responses byte-identical across requests, workers and cache states.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// errStatus maps model errors to HTTP statuses: invalid scenarios and
// unusable snapshots are the client's fault (400), unstable scenarios are
// valid questions with a negative answer (422), anything else is a server
// error.
func errStatus(err error) int {
	switch {
	case errors.Is(err, core.ErrBadModel), errors.Is(err, errBadRequest),
		errors.Is(err, memo.ErrSnapshot), errors.Is(err, memo.ErrSchemaMismatch):
		return http.StatusBadRequest
	case errors.Is(err, core.ErrUnstable):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

// handlerFunc is an endpoint body: it reports whether the engine cache
// answered and what failed, letting instrument own metrics and errors.
type handlerFunc func(w http.ResponseWriter, r *http.Request) (cached bool, err error)

// instrument wraps an endpoint with method filtering, error rendering and
// metrics observation.
func (s *Server) instrument(name string, h handlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodPost {
			w.Header().Set("Allow", "GET, POST")
			writeJSON(w, http.StatusMethodNotAllowed, apiError{Error: "use GET or POST"})
			return
		}
		start := time.Now()
		cached, err := h(w, r)
		if err != nil {
			writeJSON(w, errStatus(err), apiError{Error: err.Error()})
		}
		s.engine.Metrics().Observe(name, time.Since(start), cached, err != nil)
	}
}

// readBody slurps a bounded request body ("" for GET).
func readBody(r *http.Request) ([]byte, error) {
	if r.Body == nil {
		return nil, nil
	}
	defer r.Body.Close()
	data, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		return nil, fmt.Errorf("service: reading body: %w", err)
	}
	if len(data) > maxBodyBytes {
		return nil, badRequest(fmt.Errorf("body over %d bytes", maxBodyBytes))
	}
	return data, nil
}

// strictUnmarshal decodes JSON rejecting unknown top-level keys, so a
// mis-keyed request field fails loudly instead of silently falling back to
// a default (mirroring scenario.FromJSON's DisallowUnknownFields).
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// scenarioFromRequest accepts the two query styles: a JSON Scenario body
// (POST) or scenario query parameters (GET or empty-body POST).
func scenarioFromRequest(r *http.Request, body []byte) (scenario.Scenario, error) {
	if len(body) > 0 {
		sc, err := scenario.FromJSON(body)
		return sc, badRequest(err)
	}
	sc, err := scenario.FromQuery(r.URL.Query())
	return sc, badRequest(err)
}

// queryFloat parses an optional float query parameter.
func queryFloat(values url.Values, key string, def float64) (float64, error) {
	v := values.Get(key)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, badRequest(fmt.Errorf("parameter %q: %w", key, err))
	}
	return f, nil
}

func (s *Server) handleRTT(w http.ResponseWriter, r *http.Request) (bool, error) {
	body, err := readBody(r)
	if err != nil {
		return false, err
	}
	sc, err := scenarioFromRequest(r, body)
	if err != nil {
		return false, err
	}
	res, cached, err := s.engine.RTT(sc)
	if err != nil {
		return false, err
	}
	w.Header().Set(CacheHeader, hitOrMiss(cached))
	writeJSON(w, http.StatusOK, res)
	return cached, nil
}

// BatchRequest is the /v1/rtt:batch payload. Scenarios stay raw so each
// item is decoded (and each item's error attributed) individually.
type BatchRequest struct {
	Scenarios []json.RawMessage `json:"scenarios"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) (bool, error) {
	body, err := readBody(r)
	if err != nil {
		return false, err
	}
	if len(body) == 0 {
		return false, badRequest(errors.New("batch needs a JSON body {\"scenarios\": [...]}"))
	}
	var req BatchRequest
	if err := strictUnmarshal(body, &req); err != nil {
		return false, badRequest(fmt.Errorf("batch body: %w", err))
	}
	if len(req.Scenarios) == 0 {
		return false, badRequest(errors.New("batch needs at least one scenario"))
	}
	scs := make([]scenario.Scenario, len(req.Scenarios))
	for i, raw := range req.Scenarios {
		sc, err := scenario.FromJSON(raw)
		if err != nil {
			return false, badRequest(fmt.Errorf("scenario %d: %w", i, err))
		}
		scs[i] = sc
	}
	res := s.engine.Batch(scs)
	cached := res.Cached == len(res.Results)
	w.Header().Set(CacheHeader, hitOrMiss(cached))
	writeJSON(w, http.StatusOK, res)
	return cached, nil
}

// SweepRequest is the /v1/sweep POST payload; an absent Scenario sweeps the
// default one.
type SweepRequest struct {
	Scenario json.RawMessage `json:"scenario"`
	From     float64         `json:"from"`
	To       float64         `json:"to"`
	Step     float64         `json:"step"`
}

// DimensionRequest is the /v1/dimension POST payload; an absent Scenario
// dimensions the default one.
type DimensionRequest struct {
	Scenario json.RawMessage `json:"scenario"`
	BoundMs  float64         `json:"bound_ms"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) (bool, error) {
	body, err := readBody(r)
	if err != nil {
		return false, err
	}
	req := SweepRequest{From: 0.05, To: 0.90, Step: 0.05}
	var sc scenario.Scenario
	if len(body) > 0 {
		if err := strictUnmarshal(body, &req); err != nil {
			return false, badRequest(fmt.Errorf("sweep body: %w", err))
		}
		if len(req.Scenario) > 0 {
			if sc, err = scenario.FromJSON(req.Scenario); err != nil {
				return false, badRequest(err)
			}
		} else {
			sc = scenario.Default()
		}
	} else {
		q := r.URL.Query()
		if sc, err = scenario.FromQuery(q, "from", "to", "step"); err != nil {
			return false, badRequest(err)
		}
		if req.From, err = queryFloat(q, "from", req.From); err != nil {
			return false, err
		}
		if req.To, err = queryFloat(q, "to", req.To); err != nil {
			return false, err
		}
		if req.Step, err = queryFloat(q, "step", req.Step); err != nil {
			return false, err
		}
	}
	res, cached, err := s.engine.Sweep(sc, req.From, req.To, req.Step)
	if err != nil {
		return false, err
	}
	w.Header().Set(CacheHeader, hitOrMiss(cached))
	writeJSON(w, http.StatusOK, res)
	return cached, nil
}

func (s *Server) handleDimension(w http.ResponseWriter, r *http.Request) (bool, error) {
	body, err := readBody(r)
	if err != nil {
		return false, err
	}
	req := DimensionRequest{BoundMs: 50}
	var sc scenario.Scenario
	if len(body) > 0 {
		if err := strictUnmarshal(body, &req); err != nil {
			return false, badRequest(fmt.Errorf("dimension body: %w", err))
		}
		if len(req.Scenario) > 0 {
			if sc, err = scenario.FromJSON(req.Scenario); err != nil {
				return false, badRequest(err)
			}
		} else {
			sc = scenario.Default()
		}
	} else {
		q := r.URL.Query()
		if sc, err = scenario.FromQuery(q, "bound", "bound_ms"); err != nil {
			return false, badRequest(err)
		}
		// "bound" is the short query spelling; "bound_ms" matches the JSON
		// body field. Either works, bound_ms winning when both are given.
		if req.BoundMs, err = queryFloat(q, "bound", req.BoundMs); err != nil {
			return false, err
		}
		if req.BoundMs, err = queryFloat(q, "bound_ms", req.BoundMs); err != nil {
			return false, err
		}
	}
	if !(req.BoundMs > 0) {
		return false, fmt.Errorf("%w: rtt bound %g ms", core.ErrBadModel, req.BoundMs)
	}
	res, cached, err := s.engine.Dimension(sc, req.BoundMs)
	if err != nil {
		return false, err
	}
	w.Header().Set(CacheHeader, hitOrMiss(cached))
	writeJSON(w, http.StatusOK, res)
	return cached, nil
}

// ModelInfo is the wire form of one built-in traffic model.
type ModelInfo struct {
	Name   string   `json:"name"`
	Source string   `json:"source"`
	Notes  string   `json:"notes"`
	Server FlowInfo `json:"server"`
	// OfferedDownKbit12 is the downstream bit rate offered by a 12-player
	// server, the README's comparison figure.
	OfferedDownKbit12 float64    `json:"offered_down_kbit_12"`
	Clients           []FlowInfo `json:"clients"`
}

// FlowInfo summarizes one flow law by its moments (the laws themselves are
// distributions, not JSON values).
type FlowInfo struct {
	Name          string  `json:"name,omitempty"`
	MeanSizeBytes float64 `json:"mean_size_bytes"`
	MeanIATMs     float64 `json:"mean_iat_ms"`
}

// ModelsResult answers /v1/models.
type ModelsResult struct {
	Models []ModelInfo `json:"models"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) (bool, error) {
	models := traffic.AllModels()
	out := make([]ModelInfo, len(models))
	for i, m := range models {
		info := ModelInfo{
			Name:   m.Name,
			Source: m.Source,
			Notes:  m.Notes,
			Server: FlowInfo{
				MeanSizeBytes: m.Server.PacketSize.Mean(),
				MeanIATMs:     1000 * m.Server.IAT.Mean(),
			},
			OfferedDownKbit12: m.OfferedDownstreamBitRate(12) / 1000,
		}
		for _, f := range m.Client {
			info.Clients = append(info.Clients, FlowInfo{
				Name:          f.Name,
				MeanSizeBytes: f.Size.Mean(),
				MeanIATMs:     1000 * f.IAT.Mean(),
			})
		}
		out[i] = info
	}
	writeJSON(w, http.StatusOK, ModelsResult{Models: out})
	return false, nil
}

// handleCacheDump streams a snapshot of the memo cache (see memo.Dump for
// the wire format). The snapshot is buffered before the first byte hits the
// wire so an encoding failure can still surface as a 500 instead of a
// truncated 200.
func (s *Server) handleCacheDump(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		writeJSON(w, http.StatusMethodNotAllowed, apiError{Error: "use GET"})
		return
	}
	var buf bytes.Buffer
	st, err := s.engine.DumpCache(&buf)
	if err != nil {
		writeJSON(w, errStatus(err), apiError{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.Header().Set("X-Fpsping-Snapshot-Entries", strconv.Itoa(st.Entries))
	w.Write(buf.Bytes())
}

// WarmResult answers /v1/cache:warm: what the restore did, plus the cache
// occupancy after it.
type WarmResult struct {
	Restored        int `json:"restored"`
	SkippedExisting int `json:"skipped_existing"`
	SkippedFull     int `json:"skipped_full"`
	CacheEntries    int `json:"cache_entries"`
}

// handleCacheWarm restores an uploaded snapshot under never-clobber
// semantics: live entries win, full shards skip rather than evict, and a
// corrupt or schema-mismatched snapshot is rejected whole (400) with the
// cache untouched.
func (s *Server) handleCacheWarm(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeJSON(w, http.StatusMethodNotAllowed, apiError{Error: "use POST"})
		return
	}
	defer r.Body.Close()
	st, err := s.engine.WarmCache(io.LimitReader(r.Body, maxSnapshotBody))
	if err != nil {
		writeJSON(w, errStatus(err), apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, WarmResult{
		Restored:        st.Restored,
		SkippedExisting: st.SkippedExisting,
		SkippedFull:     st.SkippedFull,
		CacheEntries:    s.engine.CacheDetail().Entries,
	})
}

// Health answers /healthz: liveness plus the cache and compute counters
// that tell an operator (or load generator) how hard the engine is working.
type Health struct {
	Status string `json:"status"`
	// Ready is true while the server accepts new work; false once BeginDrain
	// has been called. A draining server still answers 200 so pollers can
	// tell it apart from a dead one.
	Ready bool `json:"ready"`
	// ReadyGeneration increments on every readiness transition and starts at
	// 1, so it is monotonic within a process lifetime: a poller that sees the
	// generation move knows the flip is fresh, not a stale cached answer.
	ReadyGeneration uint64 `json:"ready_generation"`
	Jobs            int    `json:"jobs"`
	CacheShards     int    `json:"cache_shards"`
	CacheEntries    int    `json:"cache_entries"`
	CacheHits       uint64 `json:"cache_hits"`
	CacheMisses     uint64 `json:"cache_misses"`
	// CacheEvictions counts entries dropped to capacity pressure, summed
	// over shards.
	CacheEvictions uint64 `json:"cache_evictions"`
	// Computations counts core model evaluations actually run: one per cold
	// RTT, one per cold sweep or dimensioning bisection point. Singleflight
	// keeps it independent of how many clients race for the same cold
	// question — K identical concurrent requests add what one would.
	Computations uint64 `json:"computations"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.engine.CacheDetail()
	status, ready := "ok", true
	if s.draining.Load() {
		status, ready = "draining", false
	}
	writeJSON(w, http.StatusOK, Health{
		Status:          status,
		Ready:           ready,
		ReadyGeneration: s.readyGen.Load(),
		Jobs:            s.engine.Jobs(),
		CacheShards:     len(st.Shards),
		CacheEntries:    st.Entries,
		CacheHits:       st.Hits,
		CacheMisses:     st.Misses,
		CacheEvictions:  st.Evictions,
		Computations:    s.engine.Computes(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.engine.Metrics().WriteTo(w)
	s.writeCacheMetrics(w)
}

// writeCacheMetrics renders the engine cache gauges: shard count, total and
// per-shard occupancy, and the aggregated lookup/eviction counters. Lookup
// hits and misses count cache probes (joiners of an in-flight computation
// count as misses), unlike fpsping_cache_hits_total, which counts requests
// answered without computing.
func (s *Server) writeCacheMetrics(w io.Writer) {
	st := s.engine.CacheDetail()
	fmt.Fprintf(w, "# TYPE fpsping_cache_shards gauge\nfpsping_cache_shards %d\n", len(st.Shards))
	fmt.Fprintf(w, "# TYPE fpsping_cache_entries gauge\nfpsping_cache_entries %d\n", st.Entries)
	fmt.Fprintf(w, "# TYPE fpsping_cache_lookup_hits_total counter\nfpsping_cache_lookup_hits_total %d\n", st.Hits)
	fmt.Fprintf(w, "# TYPE fpsping_cache_lookup_misses_total counter\nfpsping_cache_lookup_misses_total %d\n", st.Misses)
	fmt.Fprintf(w, "# TYPE fpsping_cache_evictions_total counter\nfpsping_cache_evictions_total %d\n", st.Evictions)
	fmt.Fprintf(w, "# TYPE fpsping_cache_shard_entries gauge\n")
	for i, sh := range st.Shards {
		fmt.Fprintf(w, "fpsping_cache_shard_entries{shard=\"%d\"} %d\n", i, sh.Entries)
	}
}

func hitOrMiss(cached bool) string {
	if cached {
		return "hit"
	}
	return "miss"
}
