package service

import (
	"fmt"
	"testing"

	"fpsping/internal/scenario"
)

// BenchmarkServiceRTT is the daemon's hot path: one /v1/rtt evaluation,
// cold (full MGF inversion plus quantile bisections) versus cached (memo
// lookup). The cached/cold ratio is the whole case for the cache; CI's
// benchmark gate watches both.
func BenchmarkServiceRTT(b *testing.B) {
	sc := scenario.Default()
	sc.Load = 0.5
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := NewEngine(1, 0)
			if _, _, err := e.RTT(sc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		e := NewEngine(1, 0)
		if _, _, err := e.RTT(sc); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, cached, err := e.RTT(sc); err != nil || !cached {
				b.Fatalf("cached=%v err=%v", cached, err)
			}
		}
	})
}

// BenchmarkServiceBatch evaluates a 16-scenario batch (a load grid, all
// distinct) cold at several worker counts: the fan-out speedup of
// /v1/rtt:batch. The warm case measures the all-hits path.
func BenchmarkServiceBatch(b *testing.B) {
	scs := make([]scenario.Scenario, 16)
	for i := range scs {
		sc := scenario.Default()
		sc.Load = 0.05 + 0.05*float64(i)
		scs[i] = sc
	}
	for _, jobs := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("cold/jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := NewEngine(jobs, 0)
				res := e.Batch(scs)
				for _, item := range res.Results {
					if item.Error != "" {
						b.Fatal(item.Error)
					}
				}
			}
		})
	}
	b.Run("warm", func(b *testing.B) {
		e := NewEngine(4, 0)
		e.Batch(scs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res := e.Batch(scs); res.Cached != len(scs) {
				b.Fatalf("only %d/%d cached", res.Cached, len(scs))
			}
		}
	})
}

// BenchmarkEngineRTTParallelHit is the contention case the sharded memo
// cache exists for: every goroutine hammers the warm cache with hits spread
// over a pool of scenarios, so the only cost is the lookup itself — and, on
// a single-stripe cache, the queue in front of its mutex. Run with
// -cpu 1,4,8 the sharded default should hold its per-op cost as cores rise
// where one global lock degrades; CI's paired benchgate run watches exactly
// that.
func BenchmarkEngineRTTParallelHit(b *testing.B) {
	scs := make([]scenario.Scenario, 16)
	for i := range scs {
		sc := scenario.Default()
		sc.Load = 0.05 + 0.05*float64(i)
		scs[i] = sc
	}
	bench := func(b *testing.B, opts ...Option) {
		e := NewEngine(4, 0, opts...)
		for _, sc := range scs {
			if _, _, err := e.RTT(sc); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				i++
				if _, cached, err := e.RTT(scs[i%len(scs)]); err != nil || !cached {
					b.Fatalf("cached=%v err=%v", cached, err)
				}
			}
		})
	}
	b.Run("sharded", func(b *testing.B) { bench(b) })
	b.Run("shards=1", func(b *testing.B) { bench(b, WithShards(1)) })
}

// BenchmarkServiceSweep measures a cached-vs-cold /v1/sweep over the
// paper's 18-point load grid.
func BenchmarkServiceSweep(b *testing.B) {
	sc := scenario.Default()
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := NewEngine(4, 0)
			if _, _, err := e.Sweep(sc, 0.05, 0.90, 0.05); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		e := NewEngine(4, 0)
		if _, _, err := e.Sweep(sc, 0.05, 0.90, 0.05); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, cached, err := e.Sweep(sc, 0.05, 0.90, 0.05); err != nil || !cached {
				b.Fatalf("cached=%v err=%v", cached, err)
			}
		}
	})
}
