package service

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"fpsping/internal/scenario"
)

func testScenario(load float64) scenario.Scenario {
	sc := scenario.Default()
	sc.Load = load
	return sc
}

func TestRTTCacheHitIsByteIdentical(t *testing.T) {
	e := NewEngine(2, 0)
	sc := testScenario(0.5)

	cold, cached, err := e.RTT(sc)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first evaluation reported as cached")
	}
	warm, cached, err := e.RTT(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("second evaluation missed the cache")
	}
	a, _ := json.Marshal(cold)
	b, _ := json.Marshal(warm)
	if string(a) != string(b) {
		t.Errorf("cached response differs from cold:\n%s\n%s", a, b)
	}
	// A cold RTT stores two entries: the full result and its sweep-point
	// slice (shared with /v1/sweep grids).
	if entries, hits, misses := e.CacheStats(); entries != 2 || hits != 1 || misses != 1 {
		t.Errorf("cache stats = %d entries, %d hits, %d misses", entries, hits, misses)
	}
}

func TestEquivalentSpellingsShareCacheSlot(t *testing.T) {
	e := NewEngine(2, 0)
	viaLoad := testScenario(0.5)
	if _, cached, err := e.RTT(viaLoad); err != nil || cached {
		t.Fatalf("cold call: cached=%v err=%v", cached, err)
	}
	viaGamers := scenario.Default()
	viaGamers.Gamers = viaLoad.Model().Gamers
	res, cached, err := e.RTT(viaGamers)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("equivalent gamers spelling should hit the load spelling's slot")
	}
	// The hit echoes this request's spelling, not the slot creator's.
	if res.Scenario != viaGamers {
		t.Errorf("echoed scenario %+v, want %+v", res.Scenario, viaGamers)
	}
}

func TestRTTErrors(t *testing.T) {
	e := NewEngine(2, 0)
	bad := scenario.Default()
	bad.Gamers = 0
	if _, _, err := e.RTT(bad); err == nil {
		t.Error("invalid scenario accepted")
	}
	unstable := testScenario(1.5)
	if _, _, err := e.RTT(unstable); err == nil {
		t.Error("unstable scenario accepted")
	}
	if entries, _, _ := e.CacheStats(); entries != 0 {
		t.Errorf("errors must not be cached, got %d entries", entries)
	}
}

func TestSweepAndDimensionCache(t *testing.T) {
	e := NewEngine(4, 0)
	sc := scenario.Default()

	s1, cached, err := e.Sweep(sc, 0.1, 0.5, 0.1)
	if err != nil || cached {
		t.Fatalf("cold sweep: cached=%v err=%v", cached, err)
	}
	s2, cached, err := e.Sweep(sc, 0.1, 0.5, 0.1)
	if err != nil || !cached {
		t.Fatalf("warm sweep: cached=%v err=%v", cached, err)
	}
	a, _ := json.Marshal(s1)
	b, _ := json.Marshal(s2)
	if string(a) != string(b) {
		t.Error("cached sweep differs from cold")
	}
	if len(s1.Points) != 5 {
		t.Errorf("sweep returned %d points, want 5", len(s1.Points))
	}
	if _, _, err := e.Sweep(sc, 0.5, 0.1, 0.1); err == nil {
		t.Error("inverted sweep range accepted")
	}
	if _, _, err := e.Sweep(sc, 0.1, 0.5, 0); err == nil {
		t.Error("zero step accepted")
	}

	d1, cached, err := e.Dimension(sc, 50)
	if err != nil || cached {
		t.Fatalf("cold dimension: cached=%v err=%v", cached, err)
	}
	d2, cached, err := e.Dimension(sc, 50)
	if err != nil || !cached {
		t.Fatalf("warm dimension: cached=%v err=%v", cached, err)
	}
	if d1 != d2 {
		t.Error("cached dimension differs from cold")
	}
	if d1.MaxGamers < 1 {
		t.Errorf("MaxGamers = %d", d1.MaxGamers)
	}
	// A different bound is a different question.
	if _, cached, err := e.Dimension(sc, 30); err != nil || cached {
		t.Fatalf("different bound: cached=%v err=%v", cached, err)
	}
}

func TestBatchOrderDuplicatesAndErrors(t *testing.T) {
	e := NewEngine(4, 0)
	bad := scenario.Default()
	bad.ErlangOrder = 0
	scs := []scenario.Scenario{
		testScenario(0.5),
		bad,
		testScenario(0.3),
		testScenario(0.5), // duplicate of item 0
	}
	res := e.Batch(scs)
	if len(res.Results) != 4 {
		t.Fatalf("got %d results", len(res.Results))
	}
	if res.Results[0].Result == nil || res.Results[2].Result == nil || res.Results[3].Result == nil {
		t.Fatal("valid scenarios failed")
	}
	if res.Results[1].Error == "" || res.Results[1].Result != nil {
		t.Error("invalid scenario did not produce an error item")
	}
	if *res.Results[0].Result != *res.Results[3].Result {
		t.Error("duplicate scenarios answered differently")
	}
	if res.Cached != 1 {
		t.Errorf("Cached = %d, want 1 (the intra-batch duplicate)", res.Cached)
	}
	// The whole batch again: every valid item is now a hit.
	res = e.Batch(scs)
	if res.Cached != 3 {
		t.Errorf("second run Cached = %d, want 3", res.Cached)
	}
	if e.Batch(nil).Results == nil || len(e.Batch(nil).Results) != 0 {
		t.Error("empty batch should return an empty, non-nil result list")
	}
}

// TestEngineDeterministicAcrossJobs pins the service determinism contract:
// every engine answer is byte-identical whatever the worker count.
func TestEngineDeterministicAcrossJobs(t *testing.T) {
	type answers struct {
		rtt   RTTResult
		sweep SweepResult
		dim   DimensionResult
		batch BatchResult
	}
	collect := func(jobs int) answers {
		e := NewEngine(jobs, 0)
		var a answers
		var err error
		if a.rtt, _, err = e.RTT(testScenario(0.5)); err != nil {
			t.Fatal(err)
		}
		if a.sweep, _, err = e.Sweep(scenario.Default(), 0.1, 0.8, 0.1); err != nil {
			t.Fatal(err)
		}
		if a.dim, _, err = e.Dimension(scenario.Default(), 50); err != nil {
			t.Fatal(err)
		}
		a.batch = e.Batch([]scenario.Scenario{
			testScenario(0.2), testScenario(0.4), testScenario(0.6), testScenario(0.2),
		})
		return a
	}
	ref, _ := json.Marshal(collect(1))
	for _, jobs := range []int{2, 8} {
		got, _ := json.Marshal(collect(jobs))
		if string(ref) != string(got) {
			t.Errorf("jobs=%d answers differ from jobs=1:\n%s\n%s", jobs, ref, got)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	// Each RTT stores two entries (full result + sweep-point slice), so a
	// capacity of 4 holds exactly two scenarios. One shard pins the exact
	// global LRU order; striped layouts spread the same budget per shard.
	e := NewEngine(1, 4, WithShards(1))
	a, b, c := testScenario(0.2), testScenario(0.3), testScenario(0.4)
	for _, sc := range []scenario.Scenario{a, b, c} {
		if _, _, err := e.RTT(sc); err != nil {
			t.Fatal(err)
		}
	}
	if entries, _, _ := e.CacheStats(); entries != 4 {
		t.Fatalf("cache holds %d entries, want 4", entries)
	}
	// a was least recently used: evicted, so it recomputes.
	if _, cached, _ := e.RTT(a); cached {
		t.Error("evicted entry still answered from cache")
	}
	// c is fresh.
	if _, cached, _ := e.RTT(c); !cached {
		t.Error("recent entry missed")
	}
}

// TestShardedCacheKeepsEngineSemantics pins that striping is invisible to
// the engine contract: at any shard count the same requests produce the same
// answers and the same compute count, and the per-shard occupancies reported
// by CacheDetail sum to the total entry count. (The LRU order itself is
// exercised exhaustively in internal/memo's property tests.)
func TestShardedCacheKeepsEngineSemantics(t *testing.T) {
	var ref []byte
	var refComputes uint64
	for _, shards := range []int{1, 4, 0} {
		e := NewEngine(2, 0, WithShards(shards))
		var got []byte
		for _, load := range []float64{0.2, 0.4, 0.2, 0.6} {
			res, _, err := e.RTT(testScenario(load))
			if err != nil {
				t.Fatal(err)
			}
			data, _ := json.Marshal(res)
			got = append(got, data...)
		}
		if ref == nil {
			ref, refComputes = got, e.Computes()
		} else {
			if string(got) != string(ref) {
				t.Errorf("shards=%d answers differ from shards=1", shards)
			}
			if e.Computes() != refComputes {
				t.Errorf("shards=%d ran %d computes, shards=1 ran %d", shards, e.Computes(), refComputes)
			}
		}
		st := e.CacheDetail()
		if e.Shards() != len(st.Shards) {
			t.Errorf("Shards() = %d but CacheDetail holds %d", e.Shards(), len(st.Shards))
		}
		sum := 0
		for _, s := range st.Shards {
			sum += s.Entries
		}
		if sum != st.Entries {
			t.Errorf("shards=%d: per-shard entries sum %d != total %d", shards, sum, st.Entries)
		}
	}
}

func TestMetricsRender(t *testing.T) {
	m := NewMetrics()
	m.Observe("/v1/rtt", 10*time.Millisecond, false, false)
	m.Observe("/v1/rtt", time.Millisecond, true, false)
	m.Observe("/v1/rtt", time.Millisecond, false, true)
	var sb strings.Builder
	if _, err := m.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`fpsping_requests_total{endpoint="/v1/rtt"} 3`,
		`fpsping_request_errors_total{endpoint="/v1/rtt"} 1`,
		`fpsping_cache_hits_total{endpoint="/v1/rtt"} 1`,
		`fpsping_request_latency_seconds_count{endpoint="/v1/rtt"} 3`,
		// The global aggregate renders the same families unlabeled.
		"fpsping_requests_total 3\n",
		"fpsping_cache_hits_total 1\n",
		"fpsping_request_latency_seconds_count 3\n",
		`fpsping_request_latency_seconds{quantile="0.5"}`,
		`fpsping_uptime_seconds`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
	if req, errs, hits := m.Snapshot("/v1/rtt"); req != 3 || errs != 1 || hits != 1 {
		t.Errorf("snapshot = %d/%d/%d", req, errs, hits)
	}
	if req, _, _ := m.Snapshot("/nope"); req != 0 {
		t.Error("unknown endpoint should snapshot zeros")
	}
}

// TestBatchLarge exercises the fan-out path with more scenarios than
// workers, all distinct, at several worker counts.
func TestBatchLarge(t *testing.T) {
	var ref []byte
	for _, jobs := range []int{1, 4} {
		e := NewEngine(jobs, 0)
		scs := make([]scenario.Scenario, 24)
		for i := range scs {
			scs[i] = testScenario(0.05 + 0.03*float64(i))
		}
		res := e.Batch(scs)
		for i, item := range res.Results {
			if item.Error != "" {
				t.Fatalf("item %d: %s", i, item.Error)
			}
		}
		data, _ := json.Marshal(res)
		if ref == nil {
			ref = data
		} else if string(ref) != string(data) {
			t.Errorf("jobs=%d batch differs from jobs=1", jobs)
		}
	}
}

func ExampleEngine_RTT() {
	e := NewEngine(1, 0)
	sc := scenario.Default()
	sc.Load = 0.5
	res, _, err := e.RTT(sc)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("p%g ping at 50%% load: %.2f ms\n", res.Quantile, res.QuantileMs)
	// Output: p0.99999 ping at 50% load: 59.24 ms
}
