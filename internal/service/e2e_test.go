package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// bootDaemon starts a real daemon on a loopback port (what cmd/fpspingd
// does, minus flags and signals) and returns its base URL plus a shutdown
// function.
func bootDaemon(t *testing.T, jobs int) (string, func() error) {
	t.Helper()
	srv := NewServer("127.0.0.1:0", NewEngine(jobs, 0))
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve() }()
	shutdown := func() error {
		// net/http treats a dialed-but-never-used keep-alive connection as
		// potentially active for its first 5 seconds; the drain deadline
		// must exceed that grace or a speculative client dial flakes the
		// graceful shutdown.
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		return <-served
	}
	return "http://" + srv.Addr(), shutdown
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestE2EDaemon boots the daemon on a loopback port and checks the two
// headline service properties end to end:
//
//  1. an identical repeated query is answered from the cache — visibly
//     faster and byte-identical;
//  2. responses are byte-identical across -jobs values, for every model
//     endpoint.
func TestE2EDaemon(t *testing.T) {
	base1, stop1 := bootDaemon(t, 1)
	base8, stop8 := bootDaemon(t, 8)

	// --- cached vs cold -------------------------------------------------
	const rttPath = "/v1/rtt?load=0.55&ps=140&t=50&k=9"
	start := time.Now()
	respCold, bodyCold := get(t, base8+rttPath)
	cold := time.Since(start)
	if respCold.StatusCode != http.StatusOK {
		t.Fatalf("cold status %d: %s", respCold.StatusCode, bodyCold)
	}
	if h := respCold.Header.Get(CacheHeader); h != "miss" {
		t.Fatalf("cold cache header %q", h)
	}
	warm := cold
	for i := 0; i < 5; i++ {
		start = time.Now()
		respWarm, bodyWarm := get(t, base8+rttPath)
		if d := time.Since(start); d < warm {
			warm = d
		}
		if h := respWarm.Header.Get(CacheHeader); h != "hit" {
			t.Fatalf("repeat %d cache header %q", i, h)
		}
		if string(bodyWarm) != string(bodyCold) {
			t.Fatalf("cached body differs from cold:\n%s\n%s", bodyWarm, bodyCold)
		}
	}
	// Cold evaluation runs several quantile bisections (~tens of ms); a hit
	// is a map lookup plus loopback HTTP (~hundreds of µs). A 2x margin
	// keeps this robust on slow CI machines while still proving the cache.
	if warm*2 >= cold {
		t.Errorf("cache hit not faster: cold %v vs best cached %v", cold, warm)
	}

	// --- byte-identical across -jobs ------------------------------------
	batchBody := `{"scenarios": [{"load": 0.2}, {"load": 0.4}, {"ps": 250, "t": 60}, {"load": 0.4}]}`
	sweepBody := `{"scenario": {"ps": 125, "t": 60}, "from": 0.05, "to": 0.9, "step": 0.05}`
	dimBody := `{"scenario": {"ps": 125, "t": 60}, "bound_ms": 50}`
	checks := []struct {
		name string
		ask  func(base string) []byte
	}{
		{"rtt", func(base string) []byte { _, b := get(t, base+rttPath); return b }},
		{"batch", func(base string) []byte { _, b := post(t, base+"/v1/rtt:batch", batchBody); return b }},
		{"sweep", func(base string) []byte { _, b := post(t, base+"/v1/sweep", sweepBody); return b }},
		{"dimension", func(base string) []byte { _, b := post(t, base+"/v1/dimension", dimBody); return b }},
		{"models", func(base string) []byte { _, b := get(t, base+"/v1/models"); return b }},
	}
	for _, c := range checks {
		b1 := c.ask(base1)
		b8 := c.ask(base8)
		if string(b1) != string(b8) {
			t.Errorf("%s: -jobs 1 and -jobs 8 responses differ:\n%s\n%s", c.name, b1, b8)
		}
	}

	// --- graceful shutdown ----------------------------------------------
	for name, stop := range map[string]func() error{"jobs1": stop1, "jobs8": stop8} {
		if err := stop(); err != nil {
			t.Errorf("%s shutdown: %v", name, err)
		}
	}
	if _, err := http.Get(base8 + "/healthz"); err == nil {
		t.Error("daemon still answering after shutdown")
	}
}

// TestE2EConcurrentClients hammers one daemon from many goroutines mixing
// all endpoints; run under -race this is the service's concurrency-safety
// proof. Every response for the same query must be byte-identical.
func TestE2EConcurrentClients(t *testing.T) {
	base, stop := bootDaemon(t, 4)
	defer func() {
		if err := stop(); err != nil {
			t.Error(err)
		}
	}()

	_, ref := get(t, base+"/v1/rtt?load=0.5")
	// fetch is used from client goroutines, so it reports errors instead of
	// failing the test from the wrong goroutine.
	fetch := func(url string) (int, []byte, error) {
		resp, err := http.Get(url)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return resp.StatusCode, body, err
	}
	const clients = 8
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			for i := 0; i < 5; i++ {
				switch (c + i) % 3 {
				case 0:
					status, body, err := fetch(base + "/v1/rtt?load=0.5")
					if err != nil || status != http.StatusOK || string(body) != string(ref) {
						errc <- fmt.Errorf("client %d: divergent rtt response (err=%v): %s", c, err, body)
						return
					}
				case 1:
					status, _, err := fetch(base + fmt.Sprintf("/v1/rtt?load=0.%d5", 1+(c+i)%8))
					if err != nil || status != http.StatusOK {
						errc <- fmt.Errorf("client %d: rtt status %d err %v", c, status, err)
						return
					}
				case 2:
					status, _, err := fetch(base + "/metrics")
					if err != nil || status != http.StatusOK {
						errc <- fmt.Errorf("client %d: metrics status %d err %v", c, status, err)
						return
					}
				}
			}
			errc <- nil
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-errc; err != nil {
			t.Error(err)
		}
	}
}
