package service

import (
	"encoding/json"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"fpsping/internal/core"
	"fpsping/internal/scenario"
)

// TestSingleflightComputesOnce is the singleflight contract: K goroutines
// requesting the same cold scenario concurrently run exactly one core
// computation (the compute counter moves by one), and every goroutine gets a
// byte-identical response. The invariant holds under any interleaving: a
// goroutine either joins the in-flight computation or, arriving later, hits
// the cache the leader filled — there is no window in which a second leader
// can start (see Engine.memo).
func TestSingleflightComputesOnce(t *testing.T) {
	const k = 16
	e := NewEngine(4, 0)
	sc := testScenario(0.5)

	var wg sync.WaitGroup
	start := make(chan struct{})
	bodies := make([][]byte, k)
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			res, _, err := e.RTT(sc)
			if err != nil {
				errs[i] = err
				return
			}
			bodies[i], errs[i] = json.Marshal(res)
		}(i)
	}
	close(start)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	for i := 1; i < k; i++ {
		if string(bodies[i]) != string(bodies[0]) {
			t.Errorf("goroutine %d response differs:\n%s\n%s", i, bodies[i], bodies[0])
		}
	}
	if got := e.Computes(); got != 1 {
		t.Errorf("%d concurrent identical misses ran %d computations, want 1", k, got)
	}
}

// TestSingleflightErrorsNotCached pins the failure path: an errored
// computation is handed to its joiners but never cached, so a later request
// recomputes (and fails again) instead of serving a stale error.
func TestSingleflightErrorsNotCached(t *testing.T) {
	e := NewEngine(2, 0)
	unstable := testScenario(1.5)
	if _, _, err := e.RTT(unstable); err == nil {
		t.Fatal("unstable scenario accepted")
	}
	if _, _, err := e.RTT(unstable); err == nil {
		t.Fatal("unstable scenario accepted on retry")
	}
	if got := e.Computes(); got != 2 {
		t.Errorf("sequential failing requests ran %d computations, want 2 (errors must not be cached)", got)
	}
	if entries, _, _ := e.CacheStats(); entries != 0 {
		t.Errorf("failed computations left %d cache entries", entries)
	}
}

// TestSweepSharesRTTPointMemo pins the shared "pt|" key space: a /v1/rtt
// evaluation warms the sweep grid point for the same resolved scenario, and
// overlapping sweep grids reuse each other's points, so neither recomputes.
func TestSweepSharesRTTPointMemo(t *testing.T) {
	e := NewEngine(2, 0)
	sc := scenario.Default()

	// One RTT evaluation at load 0.3 = one computation...
	at := sc
	at.Load = 0.3
	rtt, _, err := e.RTT(at)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Computes(); got != 1 {
		t.Fatalf("cold RTT ran %d computations", got)
	}
	// ...and the single-point sweep crossing it runs none at all.
	sw, _, err := e.Sweep(sc, 0.3, 0.3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Computes(); got != 1 {
		t.Errorf("sweep over an RTT-warmed point ran %d computations, want 1", got)
	}
	if len(sw.Points) != 1 || sw.Points[0].RTTMs != rtt.QuantileMs {
		t.Errorf("sweep point %+v does not match RTT answer %g ms", sw.Points, rtt.QuantileMs)
	}

	// A wider grid pays only for loads it has not seen bit-exactly. The
	// 0.1..0.5 grid holds five points, and its third is the accumulated
	// 0.1+0.1+0.1 = 0.30000000000000004, one ulp away from the literal 0.3
	// above — a different scenario as far as the bit-exact canonical key is
	// concerned, so all five points are new.
	wide, _, err := e.Sweep(sc, 0.1, 0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(wide.Points) != 5 {
		t.Fatalf("wide sweep returned %d points", len(wide.Points))
	}
	if got := e.Computes(); got != 6 {
		t.Errorf("wide sweep brought computations to %d, want 6 (5 new points)", got)
	}
	// And a sub-grid of it computes nothing, while returning the same
	// points bit for bit.
	sub, _, err := e.Sweep(sc, 0.2, 0.4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Computes(); got != 6 {
		t.Errorf("sub-grid sweep ran %d computations, want 6 (everything memoized)", got)
	}
	for i, p := range sub.Points {
		if p != wide.Points[i+1] {
			t.Errorf("sub-grid point %d = %+v, want %+v", i, p, wide.Points[i+1])
		}
	}
}

// TestDimensionReusesPointMemo pins cache-aware dimensioning: every
// quantile inversion inside the MaxLoad bisection resolves through the
// shared "pt|" point memo instead of bypassing it. Three consequences are
// asserted via the computes counter: the final quantile evaluation at the
// accepted load is a hit (it was probed during the bisection), a sweep that
// crossed a probe load pre-pays that probe, and a second dimensioning at a
// different bound shares the opening probes and the common midpoint prefix.
func TestDimensionReusesPointMemo(t *testing.T) {
	sc := scenario.Default()

	// Cold reference: every bisection point is one compute; the closing
	// evaluation at the accepted load re-asks a probed point, so it adds
	// nothing.
	cold := NewEngine(2, 0)
	ref, cached, err := cold.Dimension(sc, 50)
	if err != nil || cached {
		t.Fatalf("cold dimension: cached=%v err=%v", cached, err)
	}
	coldComputes := cold.Computes()
	if coldComputes < 3 {
		t.Fatalf("cold dimension ran %d computes; the bisection should probe many points", coldComputes)
	}

	// A sweep that crossed the bisection's opening probe (the vanishing
	// load 1e-6) pre-pays it: dimension after that sweep computes exactly
	// one point fewer, and lands on the identical answer.
	warmed := NewEngine(2, 0)
	if _, _, err := warmed.Sweep(sc, 1e-6, 1e-6, 1); err != nil {
		t.Fatal(err)
	}
	if got := warmed.Computes(); got != 1 {
		t.Fatalf("single-point sweep ran %d computes", got)
	}
	res, _, err := warmed.Dimension(sc, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res != ref {
		t.Errorf("memo-warmed dimension differs: %+v vs %+v", res, ref)
	}
	if got := warmed.Computes(); got != coldComputes {
		t.Errorf("dimension after sweep brought computes to %d, want %d (the swept point must hit)",
			got, coldComputes)
	}

	// A second bound on the cold engine shares the opening probes and the
	// midpoint prefix up to the first diverging comparison.
	if _, cached, err := cold.Dimension(sc, 60); err != nil || cached {
		t.Fatalf("second bound: cached=%v err=%v", cached, err)
	}
	added := cold.Computes() - coldComputes
	if added >= coldComputes {
		t.Errorf("dimensioning a second bound added %d computes, want fewer than the %d of a cold run",
			added, coldComputes)
	}

	// The identical question is one lookup.
	before := cold.Computes()
	if _, cached, err := cold.Dimension(sc, 50); err != nil || !cached {
		t.Fatalf("warm dimension: cached=%v err=%v", cached, err)
	}
	if got := cold.Computes(); got != before {
		t.Errorf("warm dimension ran %d new computes", got-before)
	}
}

// TestEngineContentionStress hammers one engine from 4x GOMAXPROCS
// goroutines with a mixed hot/cold scenario workload. Whatever the
// interleaving, the compute counter must land exactly on the number of
// distinct scenarios (memoization plus singleflight: no duplicate work, no
// lost work) and the sharded cache's per-stripe accounting must add up. Run
// under -race this doubles as the engine's contention-safety proof.
func TestEngineContentionStress(t *testing.T) {
	e := NewEngine(4, 0)
	workers := 4 * runtime.GOMAXPROCS(0)
	const hot = 4 // shared by every worker: mostly hits after first touch
	distinctCold := workers / 2
	scAt := func(i int) scenario.Scenario {
		return testScenario(0.05 + 0.01*float64(i))
	}
	var wg sync.WaitGroup
	var calls atomic.Uint64
	gate := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-gate
			for i := 0; i < 12; i++ {
				var sc scenario.Scenario
				if i%3 == 0 {
					// Cold-ish keys, each contended by a pair of workers.
					sc = scAt(hot + w%distinctCold)
				} else {
					sc = scAt(i % hot)
				}
				calls.Add(1)
				if _, _, err := e.RTT(sc); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	close(gate)
	wg.Wait()

	distinct := uint64(hot + distinctCold)
	if got := e.Computes(); got != distinct {
		t.Errorf("Computes() = %d, want %d (one per distinct scenario)", got, distinct)
	}
	st := e.CacheDetail()
	// Each RTT compute inserts two entries (rtt| and pt|); nothing may be
	// lost or double-counted across shards.
	if uint64(st.Entries)+st.Evictions != 2*distinct {
		t.Errorf("entries %d + evictions %d != %d inserts", st.Entries, st.Evictions, 2*distinct)
	}
	if st.Hits+st.Misses != calls.Load() {
		t.Errorf("hits %d + misses %d != %d lookups", st.Hits, st.Misses, calls.Load())
	}
}

// TestSweepUnstablePointMemoized pins that the asymptote is cacheable: a
// grid ending at an unstable load records that instability, and a second
// grid crossing the same load stops there without recomputing.
func TestSweepUnstablePointMemoized(t *testing.T) {
	e := NewEngine(2, 0)
	sc := scenario.Default()
	first, _, err := e.Sweep(sc, 0.8, 1.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Points) != 2 {
		t.Fatalf("sweep to 1.1 returned %d points, want 2 (0.8, 0.9; 1.0 is the asymptote)", len(first.Points))
	}
	after := e.Computes()
	second, _, err := e.Sweep(sc, 0.8, 1.2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Points) != 2 {
		t.Fatalf("sweep to 1.2 returned %d points, want 2", len(second.Points))
	}
	// LoadGrid accumulates from the same start with the same step, so the
	// overlapping grid's values are bit-identical: it reuses both stable
	// points and the memoized unstable ones. Only 1.2, beyond the first
	// grid's end (still evaluated by the parallel scan), can be new.
	if got := e.Computes(); got > after+1 {
		t.Errorf("overlapping unstable sweep ran %d new computations, want <= 1", got-after)
	}
	// An all-unstable grid still answers 422-style.
	if _, _, err := e.Sweep(sc, 1.05, 1.2, 0.05); err == nil {
		t.Error("all-unstable sweep did not error")
	} else if !errors.Is(err, core.ErrUnstable) {
		t.Errorf("all-unstable sweep error %v does not wrap core.ErrUnstable", err)
	}
}
