package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"fpsping/internal/stats"
)

// metricLevels are the latency quantiles /metrics reports per endpoint (and
// globally).
var metricLevels = []float64{0.5, 0.9, 0.99}

// endpointStats accumulates one endpoint's counters and latency sketch. The
// latency distribution is tracked with the stats package's streaming
// estimators (Welford summary + P² quantile markers), so /metrics costs O(1)
// memory however many requests the daemon has served.
type endpointStats struct {
	requests  uint64
	errors    uint64
	cacheHits uint64
	latency   stats.Summary
	quantiles []*stats.PQuantile
}

// newEndpointStats returns a tracker with one P² estimator per level.
func newEndpointStats() *endpointStats {
	es := &endpointStats{}
	for _, p := range metricLevels {
		pq, err := stats.NewPQuantile(p)
		if err != nil {
			panic("service: metric level out of range: " + err.Error())
		}
		es.quantiles = append(es.quantiles, pq)
	}
	return es
}

// observe folds one request into the tracker.
func (es *endpointStats) observe(elapsed time.Duration, cached, failed bool) {
	es.requests++
	if failed {
		es.errors++
	}
	if cached {
		es.cacheHits++
	}
	sec := elapsed.Seconds()
	es.latency.Add(sec)
	for _, pq := range es.quantiles {
		pq.Add(sec)
	}
}

// Metrics is the daemon's concurrency-safe instrumentation: per-endpoint
// request/error/cache-hit counters and streaming latency histograms — each
// model endpoint gets its own Welford/P² tracker alongside a global one over
// all instrumented traffic — rendered in Prometheus text exposition format.
type Metrics struct {
	mu        sync.Mutex
	start     time.Time
	global    *endpointStats
	endpoints map[string]*endpointStats
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{
		start:     time.Now(),
		global:    newEndpointStats(),
		endpoints: make(map[string]*endpointStats),
	}
}

// Observe records one request against the endpoint (and the global
// aggregate): its latency, whether it was answered from the engine cache,
// and whether it failed.
func (m *Metrics) Observe(endpoint string, elapsed time.Duration, cached bool, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	es, ok := m.endpoints[endpoint]
	if !ok {
		es = newEndpointStats()
		m.endpoints[endpoint] = es
	}
	es.observe(elapsed, cached, failed)
	m.global.observe(elapsed, cached, failed)
}

// writeLatency renders one tracker's summary pair and quantile samples.
// labels is the rendered label set including braces ("" for the global
// aggregate, `{endpoint="/v1/rtt"}` per endpoint).
func writeLatency(printf func(string, ...any) error, labels string, es *endpointStats) error {
	if es.latency.Count() == 0 {
		return nil
	}
	if err := printf("fpsping_request_latency_seconds_sum%s %g\n",
		labels, es.latency.Mean()*float64(es.latency.Count())); err != nil {
		return err
	}
	if err := printf("fpsping_request_latency_seconds_count%s %d\n",
		labels, es.latency.Count()); err != nil {
		return err
	}
	for i, p := range metricLevels {
		q := fmt.Sprintf(`quantile="%g"`, p)
		sep := "{" + q + "}"
		if labels != "" {
			sep = labels[:len(labels)-1] + "," + q + "}"
		}
		if err := printf("fpsping_request_latency_seconds%s %g\n", sep, es.quantiles[i].Value()); err != nil {
			return err
		}
	}
	return nil
}

// WriteTo renders the metrics in Prometheus text exposition format: the
// global request/latency aggregate first (unlabeled), then every endpoint
// sorted by name so scrapes are stable.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	printf := func(format string, args ...any) error {
		k, err := fmt.Fprintf(w, format, args...)
		n += int64(k)
		return err
	}
	if err := printf("# TYPE fpsping_uptime_seconds gauge\nfpsping_uptime_seconds %.3f\n",
		time.Since(m.start).Seconds()); err != nil {
		return n, err
	}
	if m.global.requests > 0 {
		if err := printf("fpsping_requests_total %d\n", m.global.requests); err != nil {
			return n, err
		}
		if err := printf("fpsping_request_errors_total %d\n", m.global.errors); err != nil {
			return n, err
		}
		if err := printf("fpsping_cache_hits_total %d\n", m.global.cacheHits); err != nil {
			return n, err
		}
		if err := writeLatency(printf, "", m.global); err != nil {
			return n, err
		}
	}
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		es := m.endpoints[name]
		if err := printf("fpsping_requests_total{endpoint=%q} %d\n", name, es.requests); err != nil {
			return n, err
		}
		if err := printf("fpsping_request_errors_total{endpoint=%q} %d\n", name, es.errors); err != nil {
			return n, err
		}
		if err := printf("fpsping_cache_hits_total{endpoint=%q} %d\n", name, es.cacheHits); err != nil {
			return n, err
		}
		if err := writeLatency(printf, fmt.Sprintf("{endpoint=%q}", name), es); err != nil {
			return n, err
		}
	}
	return n, nil
}

// Snapshot returns (requests, errors, cacheHits) for one endpoint; zeros if
// the endpoint has not been hit. Tests use it to assert cache behavior.
func (m *Metrics) Snapshot(endpoint string) (requests, errors, cacheHits uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	es, ok := m.endpoints[endpoint]
	if !ok {
		return 0, 0, 0
	}
	return es.requests, es.errors, es.cacheHits
}
