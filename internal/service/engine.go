// Package service puts the paper's ping model behind a long-lived daemon:
// a concurrency-safe Engine layered over internal/core with a sharded LRU
// memo cache (internal/memo) keyed by canonical scenario (the Erlang/Mixture
// quantile bisections and sweep grids are the hot path, so repeated queries
// must not recompute them — nor serialize on one lock while not recomputing
// them), batch fan-out over internal/runner, and an HTTP/JSON front end
// (cmd/fpspingd) with counters and latency histograms via internal/stats.
//
// Determinism contract: like every layer below, responses are byte-identical
// at any worker count and identical between cold and cached evaluation, so
// a cache hit is observable only as latency (and in /metrics), never as a
// different answer.
package service

import (
	"errors"
	"fmt"
	"sync/atomic"

	"fpsping/internal/core"
	"fpsping/internal/memo"
	"fpsping/internal/runner"
	"fpsping/internal/scenario"
)

// DefaultCacheSize is the engine's memo-cache capacity when the caller does
// not choose one. At ~300 bytes per RTT entry this stays well under a
// megabyte while covering far more distinct scenarios than a dimensioning
// session touches.
const DefaultCacheSize = 4096

// Engine evaluates scenarios concurrently with memoization and singleflight
// miss coalescing: concurrent identical cache misses compute once and share
// the result. The memo cache is lock-striped (internal/memo), so concurrent
// hits on independent keys never contend on a shared mutex. All methods are
// safe for concurrent use; results handed out on cache hits are shared, so
// callers must treat them as immutable.
type Engine struct {
	jobs    int
	cache   *memo.Cache[any]
	metrics *Metrics
	// computes counts core model evaluations actually run (one per cold RTT,
	// one per cold sweep point, one per cold dimensioning bisection point):
	// the observable proof that the cache and singleflight are doing their
	// jobs.
	computes atomic.Uint64
}

// Option configures an Engine at construction.
type Option func(*engineConfig)

type engineConfig struct {
	shards int
}

// WithShards sets the memo cache's shard count (rounded up to a power of
// two, clamped so every shard holds at least one entry). The default,
// 0, resolves to memo.DefaultShards(): GOMAXPROCS rounded up to a power of
// two. One shard reproduces the single-mutex cache of earlier versions.
func WithShards(n int) Option { return func(c *engineConfig) { c.shards = n } }

// NewEngine returns an engine fanning batch work over at most jobs workers
// (<= 0 means one per CPU) and memoizing up to cacheSize results (<= 0
// means DefaultCacheSize) in a cache striped per WithShards.
func NewEngine(jobs, cacheSize int, opts ...Option) *Engine {
	if jobs <= 0 {
		jobs = runner.DefaultWorkers()
	}
	if cacheSize <= 0 {
		cacheSize = DefaultCacheSize
	}
	var cfg engineConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	return &Engine{jobs: jobs, cache: memo.New[any](cacheSize, cfg.shards), metrics: NewMetrics()}
}

// Jobs returns the engine's worker budget.
func (e *Engine) Jobs() int { return e.jobs }

// Metrics returns the engine's metrics registry (shared with the HTTP
// layer).
func (e *Engine) Metrics() *Metrics { return e.metrics }

// CacheStats returns the memo cache's entry count and cumulative hit/miss
// counters (aggregated over shards; see CacheDetail for the breakdown).
func (e *Engine) CacheStats() (entries int, hits, misses uint64) {
	st := e.cache.Stats()
	return st.Entries, st.Hits, st.Misses
}

// CacheDetail returns the full per-shard cache snapshot: occupancy,
// capacity, hit/miss/eviction counters per stripe plus totals.
func (e *Engine) CacheDetail() memo.Stats { return e.cache.Stats() }

// Shards returns the memo cache's shard count.
func (e *Engine) Shards() int { return e.cache.Shards() }

// Computes returns the cumulative number of core model evaluations the
// engine has actually run: one per cold RTT, one per cold sweep or
// dimensioning bisection point (a cold /v1/dimension therefore moves it by
// its probe count, not by one). Under singleflight, K concurrent identical
// cold requests move it exactly as far as one would.
func (e *Engine) Computes() uint64 { return e.computes.Load() }

// memo answers key from the sharded cache with singleflight coalescing (see
// memo.Cache.Do). shared reports a hit or a joined in-flight computation.
func (e *Engine) memo(key string, compute func() (any, error)) (any, bool, error) {
	return e.cache.Do(key, compute)
}

// ComponentsMs is the RTT decomposition in milliseconds, each stochastic
// part reported at the scenario's quantile level in isolation (the quantile
// of the sum is not the sum of quantiles; Total in RTTResult is the true
// combined quantile).
type ComponentsMs struct {
	Serialization float64 `json:"serialization"`
	Fixed         float64 `json:"fixed"`
	Upstream      float64 `json:"upstream"`
	BurstWait     float64 `json:"burst_wait"`
	Position      float64 `json:"position"`
}

// RTTResult answers one /v1/rtt query: loads, mean, the headline quantile
// and its decomposition, all in milliseconds.
type RTTResult struct {
	// Scenario echoes the query with defaults resolved.
	Scenario scenario.Scenario `json:"scenario"`
	// Gamers is the effective N (after a load shorthand is applied).
	Gamers       float64 `json:"gamers"`
	DownlinkLoad float64 `json:"downlink_load"`
	UplinkLoad   float64 `json:"uplink_load"`
	MeanMs       float64 `json:"mean_ms"`
	// Quantile is the level QuantileMs is evaluated at.
	Quantile   float64      `json:"quantile"`
	QuantileMs float64      `json:"quantile_ms"`
	Components ComponentsMs `json:"components_ms"`
}

// RTT evaluates one scenario's RTT quantile, decomposition and mean,
// memoized on the canonical scenario key with singleflight coalescing: K
// concurrent identical cold requests run one computation and share it. The
// bool reports whether the answer arrived without computing (a cache hit or
// a joined in-flight computation).
func (e *Engine) RTT(sc scenario.Scenario) (RTTResult, bool, error) {
	if err := sc.Validate(); err != nil {
		return RTTResult{}, false, err
	}
	key := sc.Canonical()
	v, shared, err := e.memo("rtt|"+key, func() (any, error) { return e.computeRTT(sc, key) })
	if err != nil {
		return RTTResult{}, false, err
	}
	out := v.(RTTResult)
	// Echo this request's spelling: equivalent scenarios (load vs gamers,
	// explicit defaults) share a cache slot but keep their own echo, so a
	// hit is byte-identical to what a cold evaluation of the same request
	// would return.
	out.Scenario = sc
	return out, shared, nil
}

// computeRTT is the cold path behind RTT. Besides the full result it stores
// the scenario's sweep-point slice (quantile + gamers, bit-exact in seconds)
// under the shared "pt|" key space, so a later /v1/sweep whose grid crosses
// this scenario reuses the evaluation instead of recomputing it. The
// scenario's analytic pipeline is staged once (core.Model.Compile) — or
// reused outright when a sweep point already compiled it — and the
// decomposition, quantile and mean all evaluate over that one compiled
// model.
func (e *Engine) computeRTT(sc scenario.Scenario, key string) (RTTResult, error) {
	e.computes.Add(1)
	m := sc.Model()
	cm, err := e.compiledFor(m, key)
	if err != nil {
		return RTTResult{}, err
	}
	comp, err := cm.Decompose()
	if err != nil {
		return RTTResult{}, err
	}
	mean, err := cm.MeanRTT()
	if err != nil {
		return RTTResult{}, err
	}
	level := sc.Quantile
	if level == 0 {
		level = core.DefaultQuantile
	}
	out := RTTResult{
		Scenario:     sc,
		Gamers:       m.Gamers,
		DownlinkLoad: m.DownlinkLoad(),
		UplinkLoad:   m.UplinkLoad(),
		MeanMs:       1000 * mean,
		Quantile:     level,
		QuantileMs:   1000 * comp.Total,
		Components: ComponentsMs{
			Serialization: 1000 * comp.Serialization,
			Fixed:         1000 * comp.Fixed,
			Upstream:      1000 * comp.Upstream,
			BurstWait:     1000 * comp.BurstWait,
			Position:      1000 * comp.Position,
		},
	}
	e.cache.Put("pt|"+key, pointMemo{Gamers: m.Gamers, RTT: comp.Total, Compiled: cm})
	return out, nil
}

// compiledFor stages the scenario's evaluation pipeline, reusing the
// compiled model a previous point evaluation attached to the shared "pt|"
// entry (compilation is paid once per scenario, not once per endpoint that
// touches it). The Peek keeps the reuse invisible in cache statistics: only
// client-level lookups count as hits or misses.
func (e *Engine) compiledFor(m core.Model, key string) (*core.CompiledModel, error) {
	if v, ok := e.cache.Peek("pt|" + key); ok {
		if pm, ok := v.(pointMemo); ok && pm.Compiled != nil {
			return pm.Compiled, nil
		}
	}
	return m.Compile()
}

// SweepPoint is one point of an RTT-versus-load curve.
type SweepPoint struct {
	Load   float64 `json:"load"`
	Gamers float64 `json:"gamers"`
	RTTMs  float64 `json:"rtt_ms"`
}

// SweepResult answers one /v1/sweep query.
type SweepResult struct {
	Scenario scenario.Scenario `json:"scenario"`
	From     float64           `json:"from"`
	To       float64           `json:"to"`
	Step     float64           `json:"step"`
	Points   []SweepPoint      `json:"points"`
}

// Sweep evaluates the RTT-vs-load curve over [from, to] in step increments,
// parallelized over the engine's worker budget and memoized at two levels:
// the grid as a whole (a repeated identical sweep is one lookup) and each
// grid point in the per-scenario RTT memo shared with /v1/rtt, so
// overlapping grids — and sweeps crossing scenarios /v1/rtt already
// answered — reuse point evaluations instead of recomputing them. The curve
// stops at the first unstable load (the asymptote), exactly like
// core.SweepLoads.
func (e *Engine) Sweep(sc scenario.Scenario, from, to, step float64) (SweepResult, bool, error) {
	if !(step > 0) || !(from > 0) || to < from {
		return SweepResult{}, false, fmt.Errorf("%w: bad sweep range [%g, %g] step %g",
			core.ErrBadModel, from, to, step)
	}
	if err := sc.Validate(); err != nil {
		return SweepResult{}, false, err
	}
	key := fmt.Sprintf("sweep|%s|%g|%g|%g", sc.Canonical(), from, to, step)
	v, shared, err := e.memo(key, func() (any, error) { return e.computeSweep(sc, from, to, step) })
	if err != nil {
		return SweepResult{}, false, err
	}
	out := v.(SweepResult)
	out.Scenario = sc
	return out, shared, nil
}

// pointMemo is one sweep point's share of an RTT answer, keyed "pt|" +
// canonical scenario: written by both computeRTT and point, read by sweep
// grids. RTT is kept in seconds (not the wire milliseconds) so a memoized
// point is bit-identical to a recomputed one. An unstable scenario is a
// cacheable answer too: every grid crossing it stops there. Compiled, when
// set, carries the scenario's staged evaluation pipeline so a later
// /v1/rtt on the same scenario (which additionally needs the decomposition
// and the mean) evaluates over it instead of recompiling; CompiledModel is
// concurrency-safe, as required of a value shared through the cache.
type pointMemo struct {
	Gamers   float64
	RTT      float64
	Unstable bool
	Compiled *core.CompiledModel
}

// point answers one sweep point through the shared per-scenario memo,
// computing (and storing) it only when neither a previous sweep nor a
// /v1/rtt evaluation has seen the scenario. A cold computation runs through
// the caller's LoadPath, continuing the walk's root solves and quantile
// warm starts; a cache hit reseeds the path from the memoized compiled
// model instead, so a walk over partially cached loads keeps warm-starting.
// Either way the answer is bit-identical to an independent cold evaluation
// (the LoadPath contract), so the cache stays invisible in values.
func (e *Engine) point(path *core.LoadPath, psc scenario.Scenario, rho float64) (pointMemo, error) {
	v, _, err := e.memo("pt|"+psc.Canonical(), func() (any, error) {
		e.computes.Add(1)
		cm, err := path.Compile(rho)
		if err == nil {
			var rtt float64
			if rtt, err = path.Quantile(cm); err == nil {
				return pointMemo{Gamers: cm.Model.Gamers, RTT: rtt, Compiled: cm}, nil
			}
		}
		if errors.Is(err, core.ErrUnstable) {
			return pointMemo{Unstable: true}, nil
		}
		return nil, err
	})
	if err != nil {
		return pointMemo{}, err
	}
	pm := v.(pointMemo)
	// Adopt a hit's (or a joined in-flight computation's) solution as the
	// continuation seed; a no-op when this call computed it itself.
	path.Reseed(pm.Compiled)
	return pm, nil
}

// pointAt resolves the scenario at downlink load rho through the shared
// per-scenario point memo, mapping a memoized unstable marker back to
// core.ErrUnstable. It is the one evaluator behind both sweep grids and
// dimensioning bisections, which is what makes their point reuse bit-exact;
// each walk passes its own LoadPath so cold points continue from their
// neighbours. Scenario load shorthand and core.WithDownlinkLoad resolve N
// identically, so the memo key and the path's model always agree.
func (e *Engine) pointAt(path *core.LoadPath, sc scenario.Scenario, rho float64) (pointMemo, error) {
	psc := sc
	psc.Load = rho
	pm, err := e.point(path, psc, rho)
	if err != nil {
		return pointMemo{}, err
	}
	if pm.Unstable {
		return pointMemo{}, core.ErrUnstable
	}
	return pm, nil
}

// computeSweep assembles a cold sweep from per-point memo entries through
// core.SweepGridWith, which owns the serial semantics (error on an invalid
// load before the asymptote, stop at the first unstable point) for the CLI
// and the daemon alike.
func (e *Engine) computeSweep(sc scenario.Scenario, from, to, step float64) (SweepResult, error) {
	pts, err := sc.Model().SweepGridWith(core.LoadGrid(from, to, step), e.jobs,
		func() func(rho float64) (core.SweepPoint, error) {
			path := sc.Model().NewLoadPath()
			return func(rho float64) (core.SweepPoint, error) {
				pm, err := e.pointAt(path, sc, rho)
				if err != nil {
					return core.SweepPoint{}, err
				}
				return core.SweepPoint{Load: rho, Gamers: pm.Gamers, RTT: pm.RTT}, nil
			}
		})
	if err != nil {
		return SweepResult{}, err
	}
	out := SweepResult{Scenario: sc, From: from, To: to, Step: step,
		Points: make([]SweepPoint, len(pts))}
	for i, p := range pts {
		out.Points[i] = SweepPoint{Load: p.Load, Gamers: p.Gamers, RTTMs: 1000 * p.RTT}
	}
	return out, nil
}

// DimensionResult answers one /v1/dimension query: the §4 dimensioning rule
// for the scenario under an RTT bound.
type DimensionResult struct {
	Scenario        scenario.Scenario `json:"scenario"`
	BoundMs         float64           `json:"bound_ms"`
	MaxDownlinkLoad float64           `json:"max_downlink_load"`
	MaxGamers       int               `json:"max_gamers"`
	RTTAtMaxMs      float64           `json:"rtt_at_max_ms"`
}

// Dimension finds the maximum load and whole-gamer count whose RTT quantile
// stays within boundMs, memoized on (scenario, bound). The bisection behind
// it evaluates dozens of quantile inversions, making this the endpoint that
// profits most from the cache — so every inversion resolves through the
// shared "pt|" point memo (core.Model.MaxLoadWith) instead of bypassing it:
// a dimension call reuses points a sweep or an earlier dimensioning of the
// same scenario already computed (the bisections at different bounds share
// their opening probes and the midpoint prefix up to the first diverging
// comparison), and conversely warms the memo for them.
func (e *Engine) Dimension(sc scenario.Scenario, boundMs float64) (DimensionResult, bool, error) {
	if err := sc.Validate(); err != nil {
		return DimensionResult{}, false, err
	}
	key := fmt.Sprintf("dim|%s|%g", sc.Canonical(), boundMs)
	v, shared, err := e.memo(key, func() (any, error) {
		path := sc.Model().NewLoadPath()
		res, err := sc.Model().MaxLoadWith(boundMs/1000, func(rho float64) (float64, error) {
			pm, err := e.pointAt(path, sc, rho)
			if err != nil {
				return 0, err
			}
			return pm.RTT, nil
		})
		if err != nil {
			return nil, err
		}
		return DimensionResult{
			Scenario:        sc,
			BoundMs:         boundMs,
			MaxDownlinkLoad: res.MaxDownlinkLoad,
			MaxGamers:       res.MaxGamers,
			RTTAtMaxMs:      1000 * res.RTTAtMax,
		}, nil
	})
	if err != nil {
		return DimensionResult{}, false, err
	}
	out := v.(DimensionResult)
	out.Scenario = sc
	return out, shared, nil
}

// BatchItem is one outcome of a batch evaluation: exactly one of Result or
// Error is set. A per-item error never fails the batch.
type BatchItem struct {
	Result *RTTResult `json:"result,omitempty"`
	Error  string     `json:"error,omitempty"`
}

// BatchResult answers one /v1/rtt:batch query, results in request order.
type BatchResult struct {
	Results []BatchItem `json:"results"`
	// Cached counts how many items were answered from the cache.
	Cached int `json:"cached"`
}

// Batch evaluates many scenarios with the per-scenario memoization of RTT,
// fanned out over internal/runner under the shared SetMaxParallel budget.
// Duplicate scenarios within one batch are evaluated once: the duplicates
// are answered from the cache entry the first evaluation stored.
func (e *Engine) Batch(scs []scenario.Scenario) BatchResult {
	out := BatchResult{Results: make([]BatchItem, len(scs))}
	if len(scs) == 0 {
		return out
	}
	// Evaluate distinct scenarios first so intra-batch duplicates become
	// cache hits instead of racing to recompute the same key. Canonical
	// keys are computed once per item; order is in item order by
	// construction.
	keys := make([]string, len(scs))
	first := make(map[string]int, len(scs))
	var order []int
	for i, sc := range scs {
		keys[i] = sc.Canonical()
		if _, ok := first[keys[i]]; !ok {
			first[keys[i]] = i
			order = append(order, i)
		}
	}
	type eval struct {
		res    RTTResult
		cached bool
		err    error
	}
	evals, _ := runner.TryMap(len(order), runner.Options{Workers: e.jobs},
		func(j int) (eval, error) {
			res, cached, err := e.RTT(scs[order[j]])
			return eval{res: res, cached: cached, err: err}, nil
		})
	byKey := make(map[string]eval, len(order))
	for j, idx := range order {
		byKey[keys[idx]] = evals[j]
	}
	for i, sc := range scs {
		ev := byKey[keys[i]]
		if ev.err != nil {
			out.Results[i] = BatchItem{Error: ev.err.Error()}
			continue
		}
		res := ev.res
		res.Scenario = sc // echo each item's own spelling
		out.Results[i] = BatchItem{Result: &res}
		if ev.cached || first[keys[i]] != i {
			out.Cached++
		}
	}
	return out
}
