package service

import (
	"bytes"
	"net/http"
	"strings"
	"testing"

	"fpsping/internal/scenario"
)

// warmPaths is the request set the warm-restart tests replay: one per
// cached key space (RTT point, batch shares rtt keys, sweep, dimension).
var warmPaths = []string{
	"/v1/rtt?load=0.3",
	"/v1/rtt?load=0.55&gamers=12",
	"/v1/sweep?from=0.1&to=0.3&step=0.1",
	"/v1/dimension?bound=60",
}

// fill replays warmPaths against ts and returns the response bodies.
func fill(t *testing.T, url string) map[string][]byte {
	t.Helper()
	bodies := make(map[string][]byte)
	for _, p := range warmPaths {
		resp, body := do(t, http.MethodGet, url+p, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", p, resp.StatusCode, body)
		}
		bodies[p] = body
	}
	return bodies
}

// dumpCache fetches /v1/cache:dump and returns the snapshot bytes.
func dumpCache(t *testing.T, url string) []byte {
	t.Helper()
	resp, snap := do(t, http.MethodGet, url+"/v1/cache:dump", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache:dump status %d: %s", resp.StatusCode, snap)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("cache:dump content type %q", ct)
	}
	if resp.Header.Get("X-Fpsping-Snapshot-Entries") == "" {
		t.Errorf("cache:dump missing entry-count header")
	}
	return snap
}

func warmCache(t *testing.T, url string, snap []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/cache:warm", bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestWarmRestartByteIdentical is the correctness gate of the snapshot
// feature: a fresh engine warmed from another's dump answers the donor's
// key set byte-identically, every answer a cache hit, with zero model
// computations.
func TestWarmRestartByteIdentical(t *testing.T) {
	_, cold := newTestServer(t, 2)
	want := fill(t, cold.URL)
	snap := dumpCache(t, cold.URL)

	warmSrv, warm := newTestServer(t, 2)
	resp, body := warmCache(t, warm.URL, snap)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache:warm status %d: %s", resp.StatusCode, body)
	}
	var res WarmResult
	if err := strictUnmarshal(body, &res); err != nil {
		t.Fatalf("warm result: %v", err)
	}
	if res.Restored == 0 || res.CacheEntries != res.Restored {
		t.Fatalf("implausible warm result: %+v", res)
	}

	for _, p := range warmPaths {
		resp, got := do(t, http.MethodGet, warm.URL+p, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm GET %s: status %d: %s", p, resp.StatusCode, got)
		}
		if h := resp.Header.Get(CacheHeader); h != "hit" {
			t.Errorf("warm GET %s: cache header %q, want hit", p, h)
		}
		if !bytes.Equal(got, want[p]) {
			t.Errorf("warm GET %s differs from cold:\ncold: %s\nwarm: %s", p, want[p], got)
		}
	}
	if n := warmSrv.engine.Computes(); n != 0 {
		t.Errorf("warm engine ran %d computations, want 0", n)
	}
}

// TestCacheWarmNeverClobbers: entries already live in the target cache win
// over archived ones, and warming is additive — it never perturbs answers
// the target has already computed.
func TestCacheWarmNeverClobbers(t *testing.T) {
	_, donor := newTestServer(t, 1)
	fill(t, donor.URL)
	snap := dumpCache(t, donor.URL)

	tgtSrv, tgt := newTestServer(t, 1)
	resp, live := do(t, http.MethodGet, tgt.URL+warmPaths[0], "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-warm GET: %d", resp.StatusCode)
	}
	before := tgtSrv.engine.Computes()

	wresp, wbody := warmCache(t, tgt.URL, snap)
	if wresp.StatusCode != http.StatusOK {
		t.Fatalf("cache:warm status %d: %s", wresp.StatusCode, wbody)
	}
	var res WarmResult
	if err := strictUnmarshal(wbody, &res); err != nil {
		t.Fatal(err)
	}
	if res.SkippedExisting == 0 {
		t.Errorf("expected live entries to be skipped, got %+v", res)
	}

	resp, after := do(t, http.MethodGet, tgt.URL+warmPaths[0], "")
	if h := resp.Header.Get(CacheHeader); h != "hit" {
		t.Errorf("post-warm cache header %q", h)
	}
	if !bytes.Equal(live, after) {
		t.Errorf("warming changed a live answer:\nbefore: %s\nafter:  %s", live, after)
	}
	if n := tgtSrv.engine.Computes(); n != before {
		t.Errorf("warming caused %d extra computations", n-before)
	}
}

// TestCacheWarmRejectsBadSnapshots: schema-mismatched, corrupt and
// truncated uploads are 400s and leave the cache untouched — the daemon
// keeps serving cold.
func TestCacheWarmRejectsBadSnapshots(t *testing.T) {
	donorSrv, donor := newTestServer(t, 1)
	fill(t, donor.URL)
	good := dumpCache(t, donor.URL)

	var mismatched bytes.Buffer
	if _, err := donorSrv.engine.cache.Dump(&mismatched, "fpsping-cache|v0|other-build", engineCodec{}); err != nil {
		t.Fatal(err)
	}
	corrupt := bytes.Clone(good)
	corrupt[len(corrupt)/2] ^= 0x40

	cases := []struct {
		name string
		snap []byte
	}{
		{"schema mismatch", mismatched.Bytes()},
		{"corrupt", corrupt},
		{"truncated", good[:len(good)-7]},
		{"empty", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, ts := newTestServer(t, 1)
			resp, body := warmCache(t, ts.URL, tc.snap)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
			}
			if n := srv.engine.CacheDetail().Entries; n != 0 {
				t.Errorf("rejected snapshot left %d cache entries", n)
			}
			// Still serves, cold.
			resp, _ = do(t, http.MethodGet, ts.URL+warmPaths[0], "")
			if resp.StatusCode != http.StatusOK {
				t.Errorf("daemon broken after rejected warm: %d", resp.StatusCode)
			}
			if h := resp.Header.Get(CacheHeader); h != "miss" {
				t.Errorf("cache header %q after rejected warm, want miss", h)
			}
		})
	}
}

func TestCacheEndpointMethods(t *testing.T) {
	_, ts := newTestServer(t, 1)
	if resp, _ := do(t, http.MethodPost, ts.URL+"/v1/cache:dump", ""); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST cache:dump status %d", resp.StatusCode)
	}
	if resp, _ := do(t, http.MethodGet, ts.URL+"/v1/cache:warm", ""); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET cache:warm status %d", resp.StatusCode)
	}
}

func TestScenarioKeyOf(t *testing.T) {
	c := scenario.Default().Canonical()
	cases := []struct {
		key    string
		want   string
		wantOK bool
	}{
		{"rtt|" + c, c, true},
		{"pt|" + c, c, true},
		{"sweep|" + c + "|0.05|0.9|0.05", c, true},
		{"dim|" + c + "|50", c, true},
		{"bogus|" + c, "", false},
		{"noseparator", "", false},
		{"rtt|too|short", "", false},
	}
	for _, tc := range cases {
		got, ok := ScenarioKeyOf(tc.key)
		if got != tc.want || ok != tc.wantOK {
			t.Errorf("ScenarioKeyOf(%q) = %q, %v; want %q, %v", tc.key, got, ok, tc.want, tc.wantOK)
		}
	}
}

// TestCacheMetricsFormat pins the Prometheus text-format fix: every cache
// family carries a # TYPE declaration of the right kind, with its samples
// directly (and contiguously) after it, so strict parsers keep them.
func TestCacheMetricsFormat(t *testing.T) {
	_, ts := newTestServer(t, 1)
	fill(t, ts.URL)
	resp, body := do(t, http.MethodGet, ts.URL+"/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	assertCacheMetricTypes(t, string(body), "fpsping")
}

// assertCacheMetricTypes validates the cache family block of a daemon-
// dialect metrics page with the given prefix ("fpsping" on the daemon; the
// router re-exports the same dialect).
func assertCacheMetricTypes(t *testing.T, text, prefix string) {
	t.Helper()
	families := map[string]string{
		prefix + "_cache_shards":              "gauge",
		prefix + "_cache_entries":             "gauge",
		prefix + "_cache_lookup_hits_total":   "counter",
		prefix + "_cache_lookup_misses_total": "counter",
		prefix + "_cache_evictions_total":     "counter",
		prefix + "_cache_shard_entries":       "gauge",
	}
	lines := strings.Split(text, "\n")
	seen := make(map[string]bool)
	for i, line := range lines {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			t.Errorf("malformed TYPE line %q", line)
			continue
		}
		name, kind := fields[2], fields[3]
		wantKind, ours := families[name]
		if !ours {
			continue
		}
		seen[name] = true
		if kind != wantKind {
			t.Errorf("family %s declared %s, want %s", name, kind, wantKind)
		}
		// Samples must follow the TYPE line contiguously.
		n := 0
		for j := i + 1; j < len(lines); j++ {
			rest := strings.TrimPrefix(lines[j], name)
			if rest == lines[j] || (rest != "" && rest[0] != ' ' && rest[0] != '{') {
				break
			}
			n++
		}
		if n == 0 {
			t.Errorf("family %s has no samples after its TYPE line", name)
		}
		// And never reappear later in the page (Prometheus requires one
		// contiguous block per family).
		for j := i + 1 + n; j < len(lines); j++ {
			rest := strings.TrimPrefix(lines[j], name)
			if rest != lines[j] && rest != "" && (rest[0] == ' ' || rest[0] == '{') {
				t.Errorf("family %s has samples outside its block (line %d)", name, j+1)
			}
		}
	}
	for name := range families {
		if !seen[name] {
			t.Errorf("family %s has no TYPE declaration", name)
		}
	}
}
