package cluster

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"fpsping/internal/dist"
)

// Policy names accepted by NewPolicy, the fpsrouter -policy flag and the
// simulator's comparison report.
const (
	PolicyAffinity   = "affinity"
	PolicyRandom     = "random"
	PolicyRoundRobin = "roundrobin"
)

// AllPolicies lists every routing policy in the canonical comparison order.
var AllPolicies = []string{PolicyAffinity, PolicyRandom, PolicyRoundRobin}

// Policy decides where a keyed request goes. Candidates returns replica
// indices in preference order: the first is the primary target, the rest the
// failover sequence a router walks when the primary is unhealthy or over its
// load bound. Implementations are safe for concurrent use.
type Policy interface {
	Name() string
	Candidates(key string) []int
}

// NewPolicy builds the named policy over the ring. The seed only matters
// for PolicyRandom, whose draws it makes reproducible.
func NewPolicy(name string, ring *Ring, seed uint64) (Policy, error) {
	switch name {
	case PolicyAffinity:
		return &affinityPolicy{ring: ring}, nil
	case PolicyRandom:
		return &randomPolicy{r: dist.NewRNG(seed), n: ring.Size()}, nil
	case PolicyRoundRobin:
		return &roundRobinPolicy{n: ring.Size()}, nil
	}
	return nil, fmt.Errorf("cluster: unknown policy %q (want %s, %s or %s)",
		name, PolicyAffinity, PolicyRandom, PolicyRoundRobin)
}

// affinityPolicy is scenario-affinity routing: the ring's owner first, then
// clockwise successors. Every spelling of the same scenario hashes to the
// same canonical key, so all its traffic (and its cached computation) lands
// on one replica.
type affinityPolicy struct{ ring *Ring }

func (p *affinityPolicy) Name() string { return PolicyAffinity }

func (p *affinityPolicy) Candidates(key string) []int { return p.ring.Owners(key, 0) }

// randomPolicy ignores the key and picks a uniformly random primary (the
// control arm affinity is measured against): failover order is a random
// permutation.
type randomPolicy struct {
	mu sync.Mutex
	r  *rand.Rand
	n  int
}

func (p *randomPolicy) Name() string { return PolicyRandom }

func (p *randomPolicy) Candidates(string) []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.r.Perm(p.n)
}

// roundRobinPolicy cycles primaries in arrival order, key-blind: perfect
// load spread, zero cache locality.
type roundRobinPolicy struct {
	next atomic.Uint64
	n    int
}

func (p *roundRobinPolicy) Name() string { return PolicyRoundRobin }

func (p *roundRobinPolicy) Candidates(string) []int {
	start := int((p.next.Add(1) - 1) % uint64(p.n))
	out := make([]int, p.n)
	for i := range out {
		out[i] = (start + i) % p.n
	}
	return out
}
