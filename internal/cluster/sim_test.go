package cluster

import (
	"bytes"
	"testing"
)

// TestSimDeterministicAcrossJobs is the simulator's core promise: the same
// config renders byte-identical text and JSON reports at any worker count,
// because the workload is generated once and runner collection is ordered.
func TestSimDeterministicAcrossJobs(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.Requests = 6000
	var texts [][]byte
	var jsons [][]byte
	for _, jobs := range []int{1, 2, 4, 8} {
		cmp, err := ComparePolicies(cfg, nil, jobs)
		if err != nil {
			t.Fatal(err)
		}
		texts = append(texts, []byte(cmp.Text()))
		jsons = append(jsons, cmp.JSON())
	}
	for i := 1; i < len(texts); i++ {
		if !bytes.Equal(texts[0], texts[i]) {
			t.Errorf("text report differs between jobs=1 and jobs=%d:\n%s\nvs\n%s", []int{1, 2, 4, 8}[i], texts[0], texts[i])
		}
		if !bytes.Equal(jsons[0], jsons[i]) {
			t.Errorf("JSON report differs between jobs=1 and jobs=%d", []int{1, 2, 4, 8}[i])
		}
	}
}

// TestSimSameSeedSameReport re-runs the full default comparison twice; the
// reports must match byte for byte (no hidden global state).
func TestSimSameSeedSameReport(t *testing.T) {
	a, err := ComparePolicies(DefaultSimConfig(), nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ComparePolicies(DefaultSimConfig(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Text() != b.Text() {
		t.Errorf("same seed produced different reports:\n%s\nvs\n%s", a.Text(), b.Text())
	}
}

// TestSimAffinityBeatsRandom is the prediction the real cluster CI gate must
// reproduce: with per-replica capacity below the working set, affinity
// routing's aggregate hit ratio beats random routing by a wide margin (the
// cluster's combined capacity covers the pool only if the keyspace is
// partitioned), and it does so with fewer cold computes.
func TestSimAffinityBeatsRandom(t *testing.T) {
	cmp, err := ComparePolicies(DefaultSimConfig(), nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	aff, rnd := cmp.Result(PolicyAffinity), cmp.Result(PolicyRandom)
	if aff == nil || rnd == nil {
		t.Fatal("comparison missing a policy result")
	}
	// The margin the CI cluster gate checks the real topology against.
	const margin = 0.05
	if aff.HitRatio < rnd.HitRatio+margin {
		t.Errorf("affinity hit ratio %.4f does not beat random %.4f by %.2f", aff.HitRatio, rnd.HitRatio, margin)
	}
	if aff.Computes >= rnd.Computes {
		t.Errorf("affinity computed %d times, random %d — partitioning should compute less", aff.Computes, rnd.Computes)
	}
	if aff.HitRatio < 0.95 {
		t.Errorf("affinity hit ratio %.4f below the 0.95 floor the CI gate enforces", aff.HitRatio)
	}
}

// TestSimWorkloadIsPure checks the workload generator is a pure function of
// the config: policies compared against it all face identical arrivals.
func TestSimWorkloadIsPure(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.Requests = 2000
	a, b := cfg.workload(), cfg.workload()
	if len(a) != len(b) {
		t.Fatalf("workload lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("workload diverges at request %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestSimRejectsBadConfig covers validation.
func TestSimRejectsBadConfig(t *testing.T) {
	bad := []func(*SimConfig){
		func(c *SimConfig) { c.Replicas = 0 },
		func(c *SimConfig) { c.Requests = 0 },
		func(c *SimConfig) { c.ArrivalRate = 0 },
		func(c *SimConfig) { c.PoolSize = 0 },
		func(c *SimConfig) { c.ColdFraction = 1.5 },
		func(c *SimConfig) { c.HotService = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultSimConfig()
		mutate(&cfg)
		if _, err := ComparePolicies(cfg, nil, 1); err == nil {
			t.Errorf("case %d: ComparePolicies accepted an invalid config", i)
		}
	}
	if _, err := ComparePolicies(DefaultSimConfig(), []string{"nonsense"}, 1); err == nil {
		t.Error("ComparePolicies accepted an unknown policy")
	}
}
