// Package cluster scales fpspingd from one daemon to a fleet without
// giving up cache locality: a consistent-hash ring assigns every canonical
// scenario key (internal/scenario) to one owning replica, a routing policy
// turns that assignment into a request path, and a reverse-proxy Router
// (cmd/fpsrouter) drives real traffic through it with health-based failover
// and per-replica circuit breaking. The same ring and policies also power a
// deterministic event-driven ClusterSimulator, so "what hit-ratio and p99
// does policy X give at M replicas" is answerable byte-reproducibly before
// a single socket is opened — and CI then checks the real cluster against
// the simulator's ordering.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the virtual-node count per replica when the caller does
// not choose one: enough points that the largest arc stays within a few
// percent of fair share at single-digit replica counts.
const DefaultVNodes = 64

// MaxVNodes bounds the ring size against configuration typos.
const MaxVNodes = 4096

// point is one virtual node on the ring.
type point struct {
	hash    uint64
	replica int
}

// Ring is an immutable consistent-hash ring over named replicas, each
// contributing vnodes virtual points. Key assignment depends only on the
// replica names, the vnode count and the key bytes — never on process
// state, insertion order, GOMAXPROCS or randomness — so two routers (or a
// router restarted) built from the same configuration agree on every owner.
type Ring struct {
	replicas []string
	vnodes   int
	points   []point
}

// hash64 is the ring's stable hash: FNV-1a followed by a 64-bit avalanche
// finalizer (murmur3's fmix64). Both are fixed published functions, so
// assignments survive process restarts and Go version changes. The finalizer
// matters: raw FNV-1a of strings sharing a long prefix ("replica-00#0",
// "replica-00#1", ...) stays clustered in a narrow band of the hash space,
// which collapses a replica's virtual nodes into one arc and can hand an
// entire key family to one replica.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// NewRing builds a ring over the given replica names (base URLs in the real
// router, synthetic names in the simulator). vnodes <= 0 means
// DefaultVNodes.
func NewRing(replicas []string, vnodes int) (*Ring, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one replica")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	if vnodes > MaxVNodes {
		return nil, fmt.Errorf("cluster: %d vnodes over the %d cap", vnodes, MaxVNodes)
	}
	seen := make(map[string]bool, len(replicas))
	for _, name := range replicas {
		if name == "" {
			return nil, fmt.Errorf("cluster: empty replica name")
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate replica %q", name)
		}
		seen[name] = true
	}
	r := &Ring{
		replicas: append([]string(nil), replicas...),
		vnodes:   vnodes,
		points:   make([]point, 0, len(replicas)*vnodes),
	}
	for i, name := range r.replicas {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", name, v)), replica: i})
		}
	}
	// Hash-colliding points (astronomically unlikely, but the ring must be a
	// total order) break ties by replica index so the sort is deterministic.
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].replica < r.points[b].replica
	})
	return r, nil
}

// Replicas returns the ring's replica names in construction order.
func (r *Ring) Replicas() []string { return append([]string(nil), r.replicas...) }

// Size returns the number of replicas.
func (r *Ring) Size() int { return len(r.replicas) }

// VNodes returns the virtual-node count per replica.
func (r *Ring) VNodes() int { return r.vnodes }

// successor returns the index into points of the first point at or after
// the key's hash, wrapping at the top of the ring.
func (r *Ring) successor(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Owner returns the replica index owning key: the replica of the first
// virtual point clockwise from the key's hash.
func (r *Ring) Owner(key string) int {
	return r.points[r.successor(key)].replica
}

// Owners returns up to n distinct replica indices in clockwise ring order
// starting at the key's owner: the owner first, then the natural failover
// sequence (the replicas whose arcs the key would fall into if the ones
// before them disappeared). n <= 0 or n > Size returns all replicas.
func (r *Ring) Owners(key string, n int) []int {
	if n <= 0 || n > len(r.replicas) {
		n = len(r.replicas)
	}
	out := make([]int, 0, n)
	seen := make([]bool, len(r.replicas))
	for i, start := 0, r.successor(key); i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, p.replica)
		}
	}
	return out
}
