package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"fpsping/internal/service"
)

// realCluster boots n genuine fpspingd engines (service.Server handlers over
// httptest) plus a router, returning the engines for compute accounting.
func realCluster(t *testing.T, n int, policy string) ([]*service.Engine, *Router, *httptest.Server) {
	t.Helper()
	engines := make([]*service.Engine, n)
	names := make([]string, n)
	for i := range engines {
		engines[i] = service.NewEngine(2, 256)
		srv := httptest.NewServer(service.NewServer("127.0.0.1:0", engines[i]).Handler())
		t.Cleanup(srv.Close)
		names[i] = srv.URL
	}
	rt, err := NewRouter(RouterConfig{Replicas: names, Policy: policy, Seed: 7, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	return engines, rt, front
}

// TestClusterEndToEndAffinity is the in-process version of the CI cluster
// gate: real engines behind the router, a hot scenario mix, and the three
// assertions — zero errors, a high aggregate hit ratio, and every canonical
// key computed on exactly one replica.
func TestClusterEndToEndAffinity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-engine end-to-end test")
	}
	engines, _, front := realCluster(t, 3, PolicyAffinity)
	const keys = 8
	const rounds = 5
	errors := 0
	hits := 0
	bodies := make(map[int]string)
	for round := 0; round < rounds; round++ {
		for k := 0; k < keys; k++ {
			url := fmt.Sprintf("%s/v1/rtt?gamers=%d", front.URL, 60+k)
			resp, err := http.Get(url)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errors++
				continue
			}
			if resp.Header.Get(service.CacheHeader) == "hit" {
				hits++
			}
			// Byte-identical answers regardless of which round (cache state)
			// answered — the single-daemon invariant must survive the tier.
			if prev, ok := bodies[k]; ok && prev != string(body) {
				t.Errorf("key %d: response changed across rounds:\n%s\nvs\n%s", k, prev, body)
			}
			bodies[k] = string(body)
		}
	}
	if errors != 0 {
		t.Errorf("%d request errors through the router", errors)
	}
	// First round computes each key once; all later rounds must hit.
	wantHits := keys * (rounds - 1)
	if hits < wantHits {
		t.Errorf("hits = %d, want >= %d (affinity should make repeats hit)", hits, wantHits)
	}
	// Affinity assertion: total computes across replicas equals the distinct
	// key count — no key computed on two replicas.
	var computes uint64
	for _, e := range engines {
		computes += e.Computes()
	}
	if computes != keys {
		t.Errorf("cluster computed %d times for %d distinct keys; affinity must compute each key on exactly one replica", computes, keys)
	}
}

// TestClusterAffinityBeatsRandomLive reproduces the simulator's ordering on
// real engines: a working set that fits the cluster's combined cache only
// when partitioned. Each replica's cache holds 8 entries; the key set is
// built from the affinity ring so each replica owns exactly 8 keys. Under
// affinity every repeat hits; under random routing the same 24 keys spray
// over all three 8-entry LRUs and churn.
func TestClusterAffinityBeatsRandomLive(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-engine end-to-end test")
	}
	const perReplica = 8
	build := func(policy string) (*Router, *httptest.Server) {
		names := make([]string, 3)
		for i := range names {
			// One RTT compute stores two cache entries (the result plus its
			// continuation point), so "holds perReplica scenarios" means
			// capacity 2*perReplica.
			eng := service.NewEngine(2, 2*perReplica, service.WithShards(1))
			srv := httptest.NewServer(service.NewServer("127.0.0.1:0", eng).Handler())
			t.Cleanup(srv.Close)
			names[i] = srv.URL
		}
		rt, err := NewRouter(RouterConfig{Replicas: names, Policy: policy, Seed: 7, Timeout: 30 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		front := httptest.NewServer(rt.Handler())
		t.Cleanup(front.Close)
		return rt, front
	}
	affRouter, affFront := build(PolicyAffinity)
	// Pick gamer counts until every replica owns exactly perReplica keys on
	// the affinity ring (the random cluster ignores keys, so only this ring
	// matters for fit).
	var gamers []int
	counts := make([]int, 3)
	for g := 100; len(gamers) < 3*perReplica && g < 10000; g++ {
		owner := affRouter.Ring().Owner(keyFor(t, g))
		if counts[owner] < perReplica {
			counts[owner]++
			gamers = append(gamers, g)
		}
	}
	if len(gamers) != 3*perReplica {
		t.Fatalf("could not assemble a balanced key set: %v", counts)
	}
	drive := func(front *httptest.Server) (hits, total int) {
		const rounds = 4
		for round := 0; round < rounds; round++ {
			for _, g := range gamers {
				resp, err := http.Get(fmt.Sprintf("%s/v1/rtt?gamers=%d", front.URL, g))
				if err != nil {
					t.Fatal(err)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("status %d", resp.StatusCode)
				}
				total++
				if resp.Header.Get(service.CacheHeader) == "hit" {
					hits++
				}
			}
		}
		return hits, total
	}
	affHits, affTotal := drive(affFront)
	_, rndFront := build(PolicyRandom)
	rndHits, rndTotal := drive(rndFront)
	affRatio := float64(affHits) / float64(affTotal)
	rndRatio := float64(rndHits) / float64(rndTotal)
	t.Logf("live hit ratios: affinity %.4f, random %.4f", affRatio, rndRatio)
	// Affinity fits every shard: all rounds after the first hit (0.75 here).
	if want := 0.70; affRatio < want {
		t.Errorf("live affinity hit ratio %.4f below %.2f", affRatio, want)
	}
	if affRatio <= rndRatio {
		t.Errorf("live affinity hit ratio %.4f does not beat random %.4f — simulator ordering not reproduced", affRatio, rndRatio)
	}
}

// TestClusterBatchThroughRealEngines checks split/merge against genuine
// engine semantics: results in order, byte-identical to a direct single
// engine, and duplicate items counted cached.
func TestClusterBatchThroughRealEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-engine end-to-end test")
	}
	_, _, front := realCluster(t, 3, PolicyAffinity)
	var req service.BatchRequest
	gamers := []int{60, 61, 62, 60, 63, 61}
	for _, g := range gamers {
		req.Scenarios = append(req.Scenarios, json.RawMessage(fmt.Sprintf(`{"gamers":%d}`, g)))
	}
	payload, _ := json.Marshal(req)
	do := func(base string) service.BatchResult {
		resp, err := http.Post(base+"/v1/rtt:batch", "application/json", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch status %d: %s", resp.StatusCode, body)
		}
		var res service.BatchResult
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := do(front.URL)
	if len(res.Results) != len(gamers) {
		t.Fatalf("%d results, want %d", len(res.Results), len(gamers))
	}
	// Reference: one standalone engine answering the same batch.
	ref := httptest.NewServer(service.NewServer("127.0.0.1:0", service.NewEngine(2, 256)).Handler())
	defer ref.Close()
	want := do(ref.URL)
	for i := range want.Results {
		got, _ := json.Marshal(res.Results[i])
		exp, _ := json.Marshal(want.Results[i])
		if string(got) != string(exp) {
			t.Errorf("item %d differs through the cluster:\n%s\nvs standalone\n%s", i, got, exp)
		}
	}
	// The two duplicates are answered from cache wherever they land.
	if res.Cached < 2 {
		t.Errorf("cluster batch Cached = %d, want >= 2 (duplicates must dedup)", res.Cached)
	}
}
