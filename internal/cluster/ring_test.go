package cluster

import (
	"fmt"
	"net/url"
	"runtime"
	"testing"

	"fpsping/internal/scenario"
)

// testReplicas is the canonical 3-replica naming used across the tests.
var testReplicas = []string{"http://127.0.0.1:7911", "http://127.0.0.1:7912", "http://127.0.0.1:7913"}

// TestRingPinnedOwners pins key→replica assignments to literal values: the
// ring hash is a fixed published function, so these must hold on every
// platform, Go version and process run. A failure here means persisted
// assignments (warm caches on replicas) would be scrambled by a deploy.
func TestRingPinnedOwners(t *testing.T) {
	ring, err := NewRing(testReplicas, 64)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		"alpha":   0,
		"bravo":   2,
		"charlie": 1,
		"delta":   2,
		"echo":    2,
	}
	for key, owner := range want {
		if got := ring.Owner(key); got != owner {
			t.Errorf("Owner(%q) = %d, pinned %d", key, got, owner)
		}
	}
}

// TestRingStableAcrossRebuilds rebuilds the ring from the same configuration
// (as a restarted router would) under different GOMAXPROCS and checks every
// assignment agrees: ownership is a pure function of configuration.
func TestRingStableAcrossRebuilds(t *testing.T) {
	build := func(procs int) *Ring {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		ring, err := NewRing(testReplicas, DefaultVNodes)
		if err != nil {
			t.Fatal(err)
		}
		return ring
	}
	a := build(1)
	b := build(4)
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q: owner %d under GOMAXPROCS=1 rebuild, %d under GOMAXPROCS=4", key, a.Owner(key), b.Owner(key))
		}
	}
}

// TestRingEquivalentSpellingsRouteIdentically is the canonical-key invariant
// end to end: every spelling of the same scenario (JSON vs query, explicit
// defaults vs omitted, load shorthand vs gamer count, d=0 vs d=t) must
// produce the same routing key, hence the same owning replica.
func TestRingEquivalentSpellingsRouteIdentically(t *testing.T) {
	ring, err := NewRing(testReplicas, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	spellings := []struct {
		name  string
		query string
		body  string
	}{
		{name: "json default-q", body: `{"gamers":64,"pc":80,"ps":125,"t":40,"rup":128,"rdown":1024,"c":5000,"k":9}`},
		{name: "json explicit-q", body: `{"gamers":64,"pc":80,"ps":125,"t":40,"rup":128,"rdown":1024,"c":5000,"k":9,"q":0.99999}`},
		{name: "json d-equals-t", body: `{"gamers":64,"pc":80,"ps":125,"t":40,"d":40,"rup":128,"rdown":1024,"c":5000,"k":9}`},
		{name: "query", query: "gamers=64"},
		{name: "query trailing-zeros", query: "gamers=64.000&t=40.0"},
	}
	var key string
	var owner int
	for i, sp := range spellings {
		values, err := url.ParseQuery(sp.query)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := routeKey("/v1/rtt", values, []byte(sp.body))
		if !ok {
			t.Fatalf("%s: routeKey rejected a valid spelling", sp.name)
		}
		if i == 0 {
			key, owner = got, ring.Owner(got)
			continue
		}
		if got != key {
			t.Errorf("%s: canonical key %q != %q", sp.name, got, key)
		}
		if ring.Owner(got) != owner {
			t.Errorf("%s: owner %d != %d", sp.name, ring.Owner(got), owner)
		}
	}
}

// TestRingRouteKeyEndpoints checks key extraction on the sweep and dimension
// endpoints (with their extra query/body parameters) and rejection of
// unparsable requests.
func TestRingRouteKeyEndpoints(t *testing.T) {
	base, err := scenario.FromQuery(url.Values{"gamers": {"64"}})
	if err != nil {
		t.Fatal(err)
	}
	want := base.Canonical()
	cases := []struct {
		path  string
		query string
		body  string
	}{
		{path: "/v1/sweep", query: "gamers=64&from=0.1&to=0.8&step=0.1"},
		{path: "/v1/sweep", body: `{"scenario":{"gamers":64},"from":0.1,"to":0.8,"step":0.1}`},
		{path: "/v1/dimension", query: "gamers=64&bound=45"},
		{path: "/v1/dimension", body: `{"scenario":{"gamers":64},"bound_ms":45}`},
	}
	for _, c := range cases {
		values, err := url.ParseQuery(c.query)
		if err != nil {
			t.Fatal(err)
		}
		key, ok := routeKey(c.path, values, []byte(c.body))
		if !ok {
			t.Errorf("%s %q %q: routeKey rejected", c.path, c.query, c.body)
			continue
		}
		if key != want {
			t.Errorf("%s %q %q: key %q, want %q", c.path, c.query, c.body, key, want)
		}
	}
	if _, ok := routeKey("/v1/rtt", url.Values{"gamers": {"not-a-number"}}, nil); ok {
		t.Error("routeKey accepted an unparsable scenario")
	}
	if _, ok := routeKey("/v1/rtt", nil, []byte(`{"unknown_field":1}`)); ok {
		t.Error("routeKey accepted a scenario with unknown fields")
	}
}

// TestRingMinimalDisruption is the consistent-hashing contract: growing the
// cluster by one replica remaps roughly keys/(N+1) keys — each key either
// keeps its owner or moves to the new replica, never between old replicas.
func TestRingMinimalDisruption(t *testing.T) {
	const keys = 20000
	old, err := NewRing(testReplicas, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := NewRing(append(append([]string(nil), testReplicas...), "http://127.0.0.1:7914"), DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	moved, movedElsewhere := 0, 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("scenario-%d", i)
		a, b := old.Owner(key), grown.Owner(key)
		if old.Replicas()[a] == grown.Replicas()[b] {
			continue
		}
		moved++
		if b != 3 {
			movedElsewhere++
		}
	}
	// Fair share for the new replica is keys/4; allow 50% slack for vnode
	// arc-length variance at 64 vnodes.
	limit := keys/4 + keys/8
	if moved > limit {
		t.Errorf("adding one replica moved %d/%d keys, over the %d bound", moved, keys, limit)
	}
	if movedElsewhere != 0 {
		t.Errorf("%d keys moved between surviving replicas; consistent hashing must only move keys to the new replica", movedElsewhere)
	}
}

// TestRingBalance guards the hash's avalanche quality: structured key
// families (shared prefixes, trailing counters — exactly what canonical
// scenario keys and vnode labels look like) must spread over all replicas.
// Raw FNV-1a fails this badly; the fmix64 finalizer is what passes it.
func TestRingBalance(t *testing.T) {
	ring, err := NewRing(testReplicas, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	families := map[string]func(i int) string{
		"prefixed-counter": func(i int) string { return fmt.Sprintf("hot-%04d", i) },
		"hex-canonical":    func(i int) string { return fmt.Sprintf("%016x|%016x|k9", 0x4050<<48|uint64(i), uint64(i)*7) },
	}
	for name, gen := range families {
		const n = 3000
		counts := make([]int, ring.Size())
		for i := 0; i < n; i++ {
			counts[ring.Owner(gen(i))]++
		}
		fair := n / ring.Size()
		for r, c := range counts {
			if c < fair/2 || c > fair*2 {
				t.Errorf("%s: replica %d owns %d of %d keys (fair %d); hash is not spreading", name, r, c, n, fair)
			}
		}
	}
}

// TestRingOwners checks the failover order: distinct replicas, primary
// first, every replica eventually listed.
func TestRingOwners(t *testing.T) {
	ring, err := NewRing(testReplicas, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		owners := ring.Owners(key, 0)
		if len(owners) != ring.Size() {
			t.Fatalf("Owners(%q, 0) returned %d replicas, want %d", key, len(owners), ring.Size())
		}
		if owners[0] != ring.Owner(key) {
			t.Fatalf("Owners(%q)[0] = %d != Owner = %d", key, owners[0], ring.Owner(key))
		}
		seen := make(map[int]bool)
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("Owners(%q) repeats replica %d", key, o)
			}
			seen[o] = true
		}
		if got := ring.Owners(key, 2); len(got) != 2 || got[0] != owners[0] || got[1] != owners[1] {
			t.Fatalf("Owners(%q, 2) = %v, want prefix of %v", key, got, owners)
		}
	}
}

// TestNewRingRejects covers configuration validation.
func TestNewRingRejects(t *testing.T) {
	cases := []struct {
		name     string
		replicas []string
		vnodes   int
	}{
		{name: "empty", replicas: nil, vnodes: 64},
		{name: "blank name", replicas: []string{""}, vnodes: 64},
		{name: "duplicate", replicas: []string{"a", "a"}, vnodes: 64},
		{name: "vnode cap", replicas: []string{"a"}, vnodes: MaxVNodes + 1},
	}
	for _, c := range cases {
		if _, err := NewRing(c.replicas, c.vnodes); err == nil {
			t.Errorf("%s: NewRing accepted an invalid config", c.name)
		}
	}
}
