package cluster

import (
	"container/list"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"fpsping/internal/dist"
	"fpsping/internal/netsim"
	"fpsping/internal/runner"
	"fpsping/internal/stats"
)

// SimConfig parameterizes one deterministic cluster simulation: M replicas
// behind a routing policy, each a FIFO single-server station whose service
// time is the measured hot/cold latency split of a real fpspingd (a cache
// hit answers in microseconds, a cold compute in milliseconds), fed by a
// seeded Poisson arrival stream over a zipf-popular key pool plus a cold
// fraction of never-repeating keys. Identical configs produce byte-identical
// reports at any worker count.
type SimConfig struct {
	// Replicas is the cluster size M.
	Replicas int `json:"replicas"`
	// VNodes is the ring's virtual-node count per replica.
	VNodes int `json:"vnodes"`
	// Seed drives arrivals, key draws and the random policy.
	Seed uint64 `json:"seed"`
	// Requests is the total number of simulated requests.
	Requests int `json:"requests"`
	// ArrivalRate is the offered cluster-wide rate in requests/second.
	ArrivalRate float64 `json:"arrival_rate"`
	// PoolSize is the number of distinct hot keys (the working set).
	PoolSize int `json:"pool_size"`
	// ZipfSkew is the popularity exponent over the pool (0 = uniform).
	ZipfSkew float64 `json:"zipf_skew"`
	// ColdFraction is the probability a request draws a unique fresh key.
	ColdFraction float64 `json:"cold_fraction"`
	// CacheCapacity is each replica's LRU entry budget (0 = unlimited).
	// The interesting regime is capacity < pool size: only a policy that
	// partitions the keyspace lets the cluster's aggregate capacity cover
	// the working set.
	CacheCapacity int `json:"cache_capacity"`
	// HotService and ColdService are the per-request service times in
	// seconds for a cache hit and a cold compute.
	HotService  float64 `json:"hot_service"`
	ColdService float64 `json:"cold_service"`
}

// DefaultSimConfig is the reference simulation the golden report pins: 3
// replicas whose per-replica cache holds half the hot working set, service
// times from the measured fpspingd hot (~2 µs) / cold (~7 ms) split, offered
// load light enough that even the worst policy stays stable.
func DefaultSimConfig() SimConfig {
	return SimConfig{
		Replicas:      3,
		VNodes:        DefaultVNodes,
		Seed:          1,
		Requests:      30000,
		ArrivalRate:   400,
		PoolSize:      96,
		ZipfSkew:      1.1,
		ColdFraction:  0.02,
		CacheCapacity: 48,
		HotService:    2e-6,
		ColdService:   7e-3,
	}
}

// validate rejects configurations the event loop cannot run.
func (c SimConfig) validate() error {
	switch {
	case c.Replicas <= 0:
		return fmt.Errorf("cluster: sim needs replicas > 0, got %d", c.Replicas)
	case c.Requests <= 0:
		return fmt.Errorf("cluster: sim needs requests > 0, got %d", c.Requests)
	case !(c.ArrivalRate > 0):
		return fmt.Errorf("cluster: sim needs arrival rate > 0, got %g", c.ArrivalRate)
	case c.PoolSize <= 0:
		return fmt.Errorf("cluster: sim needs pool size > 0, got %d", c.PoolSize)
	case c.ColdFraction < 0 || c.ColdFraction > 1:
		return fmt.Errorf("cluster: cold fraction %g outside [0,1]", c.ColdFraction)
	case !(c.HotService >= 0) || !(c.ColdService >= 0):
		return fmt.Errorf("cluster: negative service time")
	}
	return nil
}

// replicaNames synthesizes the ring's replica names for an M-replica sim.
func replicaNames(m int) []string {
	names := make([]string, m)
	for i := range names {
		names[i] = fmt.Sprintf("replica-%02d", i)
	}
	return names
}

// Stream tags decorrelate the simulator's RNG uses.
const (
	streamSimArrivals = 0xc1a1
	streamSimKeys     = 0xc1a2
	streamSimPolicy   = 0xc1a3
)

// simRequest is one pre-generated arrival: the workload is materialized
// once per comparison so every policy faces the identical request sequence.
type simRequest struct {
	at  float64
	key string
}

// workload generates the seeded arrival stream: Poisson arrivals at
// ArrivalRate, keys zipf-drawn from the hot pool with a ColdFraction of
// unique strays. Pure function of the config.
func (c SimConfig) workload() []simRequest {
	ar := dist.NewRNG(c.Seed, streamSimArrivals)
	kr := dist.NewRNG(c.Seed, streamSimKeys)
	// Cumulative zipf mass over pool ranks (uniform when ZipfSkew == 0).
	cum := make([]float64, c.PoolSize)
	sum := 0.0
	for i := range cum {
		sum += math.Pow(float64(i+1), -c.ZipfSkew)
		cum[i] = sum
	}
	for i := range cum {
		cum[i] /= sum
	}
	wl := make([]simRequest, c.Requests)
	t := 0.0
	for i := range wl {
		t += ar.ExpFloat64() / c.ArrivalRate
		var key string
		if c.ColdFraction > 0 && kr.Float64() < c.ColdFraction {
			key = fmt.Sprintf("cold-%08d", i)
		} else {
			rank := sort.SearchFloat64s(cum, kr.Float64())
			if rank >= c.PoolSize {
				rank = c.PoolSize - 1
			}
			key = fmt.Sprintf("hot-%04d", rank)
		}
		wl[i] = simRequest{at: t, key: key}
	}
	return wl
}

// simLRU is a minimal deterministic LRU set (capacity 0 = unlimited).
type simLRU struct {
	capacity int
	order    *list.List
	index    map[string]*list.Element
}

func newSimLRU(capacity int) *simLRU {
	return &simLRU{capacity: capacity, order: list.New(), index: make(map[string]*list.Element)}
}

// touch reports whether key is cached, marking it most-recently-used.
func (l *simLRU) touch(key string) bool {
	el, ok := l.index[key]
	if ok {
		l.order.MoveToFront(el)
	}
	return ok
}

// put inserts key, evicting the least-recently-used entry over capacity.
func (l *simLRU) put(key string) {
	if el, ok := l.index[key]; ok {
		l.order.MoveToFront(el)
		return
	}
	l.index[key] = l.order.PushFront(key)
	if l.capacity > 0 && l.order.Len() > l.capacity {
		oldest := l.order.Back()
		l.order.Remove(oldest)
		delete(l.index, oldest.Value.(string))
	}
}

// ReplicaSim is one replica's slice of a simulation.
type ReplicaSim struct {
	Requests int `json:"requests"`
	Hits     int `json:"hits"`
	Computes int `json:"computes"`
	// MaxQueue is the deepest FIFO backlog observed (waiting requests, not
	// counting the one in service).
	MaxQueue int `json:"max_queue"`
}

// SimResult is one policy's simulated outcome.
type SimResult struct {
	Policy   string `json:"policy"`
	Requests int    `json:"requests"`
	Hits     int    `json:"hits"`
	Computes int    `json:"computes"`
	// HitRatio is the aggregate cluster cache hit ratio.
	HitRatio float64 `json:"hit_ratio"`
	// Sojourn percentiles (queueing + service) in milliseconds, exact over
	// the full sample, not streamed — determinism over elegance.
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
	// Spread is max/mean of per-replica request counts: 1.00 is a perfectly
	// balanced cluster.
	Spread   float64      `json:"spread"`
	Replicas []ReplicaSim `json:"per_replica"`
}

// simReplica is one FIFO single-server station.
type simReplica struct {
	busy  bool
	queue []simQueued
	cache *simLRU
	stats ReplicaSim
}

type simQueued struct {
	key     string
	arrival float64
}

// SimulatePolicy runs the workload through M replicas under one policy on a
// deterministic event loop (netsim.Engine: equal-time events fire in
// scheduling order). A replica looks its key up when service *starts*, so a
// duplicate queued behind the compute that will cache it scores a hit —
// mirroring the daemon's singleflight. Cold computes enter the LRU at
// service start.
func SimulatePolicy(cfg SimConfig, pol Policy, wl []simRequest) SimResult {
	eng := netsim.NewEngine()
	reps := make([]*simReplica, cfg.Replicas)
	for i := range reps {
		reps[i] = &simReplica{cache: newSimLRU(cfg.CacheCapacity)}
	}
	res := SimResult{Policy: pol.Name(), Requests: len(wl)}
	sojourns := make([]float64, 0, len(wl))

	var start func(rep *simReplica, q simQueued)
	start = func(rep *simReplica, q simQueued) {
		rep.busy = true
		svc := cfg.ColdService
		if rep.cache.touch(q.key) {
			rep.stats.Hits++
			res.Hits++
			svc = cfg.HotService
		} else {
			rep.stats.Computes++
			res.Computes++
			rep.cache.put(q.key)
		}
		eng.Schedule(svc, func() {
			sojourns = append(sojourns, eng.Now()-q.arrival)
			if len(rep.queue) == 0 {
				rep.busy = false
				return
			}
			next := rep.queue[0]
			rep.queue = rep.queue[1:]
			start(rep, next)
		})
	}
	for _, rq := range wl {
		rq := rq
		eng.ScheduleAt(rq.at, func() {
			rep := reps[pol.Candidates(rq.key)[0]]
			rep.stats.Requests++
			if rep.busy {
				rep.queue = append(rep.queue, simQueued{key: rq.key, arrival: eng.Now()})
				if len(rep.queue) > rep.stats.MaxQueue {
					rep.stats.MaxQueue = len(rep.queue)
				}
				return
			}
			start(rep, simQueued{key: rq.key, arrival: eng.Now()})
		})
	}
	eng.Run(math.Inf(1))

	res.HitRatio = float64(res.Hits) / float64(res.Requests)
	sort.Float64s(sojourns)
	sum := 0.0
	for _, s := range sojourns {
		sum += s
	}
	res.MeanMs = 1000 * sum / float64(len(sojourns))
	res.P50Ms = 1000 * stats.SortedQuantile(sojourns, 0.50)
	res.P99Ms = 1000 * stats.SortedQuantile(sojourns, 0.99)
	res.MaxMs = 1000 * sojourns[len(sojourns)-1]
	maxReq := 0
	for _, rep := range reps {
		res.Replicas = append(res.Replicas, rep.stats)
		if rep.stats.Requests > maxReq {
			maxReq = rep.stats.Requests
		}
	}
	res.Spread = float64(maxReq) * float64(cfg.Replicas) / float64(res.Requests)
	return res
}

// Comparison is one multi-policy simulation run: the shared config and one
// result per policy, in the requested order.
type Comparison struct {
	Config  SimConfig   `json:"config"`
	Results []SimResult `json:"results"`
}

// ComparePolicies simulates every named policy against the identical
// workload, fanning policies out over at most jobs workers (<= 0 means
// serial). The workload is generated once and shared; each policy gets its
// own decorrelated RNG stream, so the report is byte-identical at any jobs
// value (runner collection is ordered).
func ComparePolicies(cfg SimConfig, policies []string, jobs int) (*Comparison, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(policies) == 0 {
		policies = AllPolicies
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = DefaultVNodes
	}
	wl := cfg.workload()
	results, err := runner.Map(len(policies), runner.Options{Workers: jobs},
		func(i int) (SimResult, error) {
			ring, err := NewRing(replicaNames(cfg.Replicas), cfg.VNodes)
			if err != nil {
				return SimResult{}, err
			}
			pol, err := NewPolicy(policies[i], ring, dist.SplitSeed(cfg.Seed, streamSimPolicy, uint64(i)))
			if err != nil {
				return SimResult{}, err
			}
			return SimulatePolicy(cfg, pol, wl), nil
		})
	if err != nil {
		return nil, err
	}
	return &Comparison{Config: cfg, Results: results}, nil
}

// Result returns the named policy's result, or nil.
func (c *Comparison) Result(policy string) *SimResult {
	for i := range c.Results {
		if c.Results[i].Policy == policy {
			return &c.Results[i]
		}
	}
	return nil
}

// Text renders the byte-stable comparison report the golden file pins.
func (c *Comparison) Text() string {
	var b strings.Builder
	cfg := c.Config
	fmt.Fprintf(&b, "cluster-sim: replicas=%d vnodes=%d seed=%d requests=%d rate=%g/s\n",
		cfg.Replicas, cfg.VNodes, cfg.Seed, cfg.Requests, cfg.ArrivalRate)
	fmt.Fprintf(&b, "workload:    pool=%d zipf=%.2f cold=%.2f cache=%d/replica hot=%gs cold-svc=%gs\n",
		cfg.PoolSize, cfg.ZipfSkew, cfg.ColdFraction, cfg.CacheCapacity, cfg.HotService, cfg.ColdService)
	fmt.Fprintf(&b, "%-11s %9s %9s %9s %9s %9s %7s %7s\n",
		"policy", "hit-ratio", "computes", "mean-ms", "p50-ms", "p99-ms", "max-q", "spread")
	for _, r := range c.Results {
		fmt.Fprintf(&b, "%-11s %9.4f %9d %9.4f %9.4f %9.4f %7d %7.2f\n",
			r.Policy, r.HitRatio, r.Computes, r.MeanMs, r.P50Ms, r.P99Ms, maxQueue(r), r.Spread)
	}
	for _, r := range c.Results {
		fmt.Fprintf(&b, "%-11s per-replica", r.Policy)
		for i, rep := range r.Replicas {
			fmt.Fprintf(&b, "  [%d] req=%d hit=%d compute=%d", i, rep.Requests, rep.Hits, rep.Computes)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// maxQueue is the deepest backlog over all replicas.
func maxQueue(r SimResult) int {
	m := 0
	for _, rep := range r.Replicas {
		if rep.MaxQueue > m {
			m = rep.MaxQueue
		}
	}
	return m
}

// JSON renders the comparison as an indented machine-readable artifact.
func (c *Comparison) JSON() []byte {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		panic("cluster: comparison marshal cannot fail: " + err.Error())
	}
	return append(data, '\n')
}
