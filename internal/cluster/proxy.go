package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fpsping/internal/scenario"
	"fpsping/internal/service"
)

// ReplicaHeader names the response header the router adds carrying the
// replica that answered — the observable trace of every routing decision.
const ReplicaHeader = "X-Fpsping-Replica"

// maxProxyBody bounds buffered request bodies (the router must buffer to
// extract the scenario key and to replay the body on failover).
const maxProxyBody = 4 << 20

// maxReplicaBody bounds buffered replica responses. A variable so the
// truncation regression test can lower it instead of serving 64 MB.
var maxReplicaBody int64 = 64 << 20

// RouterConfig parameterizes a Router.
type RouterConfig struct {
	// Replicas are the fpspingd base URLs ("http://host:port").
	Replicas []string
	// VNodes is the ring's virtual-node count per replica (0 = default).
	VNodes int
	// Policy selects the routing policy (empty = PolicyAffinity).
	Policy string
	// Seed drives the random policy's draws.
	Seed uint64
	// LoadFactor enables the bounded-load variant when > 1: a keyed request
	// spills past its owner to the next ring candidate while the owner's
	// in-flight count exceeds ceil(LoadFactor * (total in-flight + 1) /
	// healthy replicas). 0 disables spilling (pure affinity).
	LoadFactor float64
	// HealthInterval is the /healthz polling period (0 = 1s).
	HealthInterval time.Duration
	// BreakerFailures opens a replica's circuit after this many consecutive
	// forwarding failures (0 = 3).
	BreakerFailures int
	// BreakerCooldown is how long an open circuit rejects a replica before
	// a probe request may close it again (0 = 5s).
	BreakerCooldown time.Duration
	// Timeout bounds one forwarded request (0 = 60s).
	Timeout time.Duration
}

// normalize fills defaults in place and validates.
func (c *RouterConfig) normalize() error {
	if len(c.Replicas) == 0 {
		return errors.New("cluster: router needs at least one replica")
	}
	for _, r := range c.Replicas {
		u, err := url.Parse(r)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("cluster: replica %q must be http(s)://host[:port]", r)
		}
	}
	if c.Policy == "" {
		c.Policy = PolicyAffinity
	}
	if c.LoadFactor != 0 && c.LoadFactor <= 1 {
		return fmt.Errorf("cluster: load factor %g must be > 1 (or 0 to disable)", c.LoadFactor)
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	return nil
}

// breaker is a per-replica circuit breaker: BreakerFailures consecutive
// forwarding failures open it for BreakerCooldown; the first request after
// the cooldown is the probe that either closes it or re-opens it.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	failures  int
	openUntil time.Time
}

// Allow reports whether a request may be sent (closed, or open past its
// cooldown — the half-open probe).
func (b *breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.failures < b.threshold || !now.Before(b.openUntil)
}

// Success closes the circuit.
func (b *breaker) Success() {
	b.mu.Lock()
	b.failures = 0
	b.mu.Unlock()
}

// Failure records one failure, (re-)arming the cooldown at the threshold.
func (b *breaker) Failure(now time.Time) {
	b.mu.Lock()
	b.failures++
	if b.failures >= b.threshold {
		b.openUntil = now.Add(b.cooldown)
	}
	b.mu.Unlock()
}

// State reports "closed", "open" or "half-open" for health reporting.
func (b *breaker) State(now time.Time) string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.failures < b.threshold:
		return "closed"
	case now.Before(b.openUntil):
		return "open"
	default:
		return "half-open"
	}
}

// replicaState is the router's live view of one replica.
type replicaState struct {
	name     string
	alive    atomic.Bool
	ready    atomic.Bool
	readyGen atomic.Uint64
	inflight atomic.Int64
	requests atomic.Uint64
	errors   atomic.Uint64
	lastErr  atomic.Value // string
	breaker  breaker
}

// endpointCounters mirror the daemon's per-endpoint request metrics so a
// load generator pointed at the router measures the cluster exactly like it
// measures one daemon (same metric names, same hit-ratio arithmetic).
type endpointCounters struct {
	requests atomic.Uint64
	errors   atomic.Uint64
	hits     atomic.Uint64
}

// Router is the scenario-affinity reverse proxy: it extracts the canonical
// scenario key from /v1/rtt, /v1/sweep and /v1/dimension requests, routes by
// policy over the ring with health-based retry-next-owner failover and
// per-replica circuit breaking, and splits /v1/rtt:batch by per-item key so
// intra-batch dedup still lands on the owning replica. Responses are the
// replicas' own bytes (plus ReplicaHeader), so a cluster answers
// byte-identically to a single daemon.
type Router struct {
	cfg       RouterConfig
	ring      *Ring
	policy    Policy
	hc        *http.Client
	replicas  []*replicaState
	endpoints map[string]*endpointCounters
	rr        atomic.Uint64 // round-robin cursor for key-less forwarding

	started time.Time
	retries atomic.Uint64
	spills  atomic.Uint64
	splits  atomic.Uint64
	noHome  atomic.Uint64
}

// NewRouter validates the config and builds the router. Replicas start
// presumed alive and ready; Start (or CheckReplicas) refines that view.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	ring, err := NewRing(cfg.Replicas, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	pol, err := NewPolicy(cfg.Policy, ring, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		cfg:    cfg,
		ring:   ring,
		policy: pol,
		hc: &http.Client{
			Timeout: cfg.Timeout,
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 256,
				IdleConnTimeout:     90 * time.Second,
			},
		},
		endpoints: make(map[string]*endpointCounters),
		started:   time.Now(),
	}
	for _, name := range cfg.Replicas {
		st := &replicaState{name: name}
		st.alive.Store(true)
		st.ready.Store(true)
		st.lastErr.Store("")
		st.breaker.threshold = cfg.BreakerFailures
		st.breaker.cooldown = cfg.BreakerCooldown
		rt.replicas = append(rt.replicas, st)
	}
	for _, ep := range []string{"/v1/rtt", "/v1/rtt:batch", "/v1/sweep", "/v1/dimension", "/v1/models"} {
		rt.endpoints[ep] = &endpointCounters{}
	}
	return rt, nil
}

// Ring returns the router's hash ring (read-only).
func (rt *Router) Ring() *Ring { return rt.ring }

// Start launches the health-polling loop; it stops when ctx is canceled.
func (rt *Router) Start(ctx context.Context) {
	go func() {
		rt.CheckReplicas(ctx)
		tick := time.NewTicker(rt.cfg.HealthInterval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				rt.CheckReplicas(ctx)
			}
		}
	}()
}

// CheckReplicas polls every replica's /healthz once, concurrently, updating
// alive/ready/generation. A reachable replica reporting ready=false is
// draining — routed away from, but not a breaker failure; an unreachable
// one is dead.
func (rt *Router) CheckReplicas(ctx context.Context) {
	probeTimeout := rt.cfg.HealthInterval
	if probeTimeout > 2*time.Second {
		probeTimeout = 2 * time.Second
	}
	var wg sync.WaitGroup
	for _, st := range rt.replicas {
		wg.Add(1)
		go func(st *replicaState) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, probeTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, st.name+"/healthz", nil)
			if err != nil {
				st.alive.Store(false)
				st.lastErr.Store(err.Error())
				return
			}
			resp, err := rt.hc.Do(req)
			if err != nil {
				st.alive.Store(false)
				st.lastErr.Store(err.Error())
				return
			}
			defer resp.Body.Close()
			var h service.Health
			data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			if err == nil {
				err = json.Unmarshal(data, &h)
			}
			if err != nil || resp.StatusCode != http.StatusOK {
				st.alive.Store(false)
				st.lastErr.Store(fmt.Sprintf("healthz status %d", resp.StatusCode))
				return
			}
			st.alive.Store(true)
			st.ready.Store(h.Ready)
			st.readyGen.Store(h.ReadyGeneration)
			st.lastErr.Store("")
		}(st)
	}
	wg.Wait()
}

// Handler returns the router's full route table.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/rtt", func(w http.ResponseWriter, r *http.Request) { rt.handleKeyed(w, r, "/v1/rtt") })
	mux.HandleFunc("/v1/rtt:batch", rt.handleBatch)
	mux.HandleFunc("/v1/sweep", func(w http.ResponseWriter, r *http.Request) { rt.handleKeyed(w, r, "/v1/sweep") })
	mux.HandleFunc("/v1/dimension", func(w http.ResponseWriter, r *http.Request) { rt.handleKeyed(w, r, "/v1/dimension") })
	mux.HandleFunc("/v1/models", rt.handleModels)
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/metrics", rt.handleMetrics)
	return mux
}

// apiError mirrors the daemon's uniform error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// readBody slurps a bounded request body ("" for GET), like the daemon's.
func readBody(r *http.Request) ([]byte, error) {
	if r.Body == nil {
		return nil, nil
	}
	defer r.Body.Close()
	data, err := io.ReadAll(io.LimitReader(r.Body, maxProxyBody+1))
	if err != nil {
		return nil, fmt.Errorf("cluster: reading body: %w", err)
	}
	if len(data) > maxProxyBody {
		return nil, fmt.Errorf("cluster: body over %d bytes", maxProxyBody)
	}
	return data, nil
}

// routeKey extracts the canonical scenario key from one keyed request, in
// exactly the forms the daemon accepts (JSON body, envelope body with a
// "scenario" field, or query parameters). ok=false means the request does
// not parse as a scenario question — the replica it falls through to will
// render the authoritative error, so the router never invents its own
// validation.
func routeKey(path string, query url.Values, body []byte) (key string, ok bool) {
	var sc scenario.Scenario
	var err error
	switch path {
	case "/v1/rtt":
		if len(body) > 0 {
			sc, err = scenario.FromJSON(body)
		} else {
			sc, err = scenario.FromQuery(query)
		}
	case "/v1/sweep":
		if len(body) > 0 {
			var req service.SweepRequest
			if err = json.Unmarshal(body, &req); err == nil {
				if len(req.Scenario) > 0 {
					sc, err = scenario.FromJSON(req.Scenario)
				} else {
					sc = scenario.Default()
				}
			}
		} else {
			sc, err = scenario.FromQuery(query, "from", "to", "step")
		}
	case "/v1/dimension":
		if len(body) > 0 {
			var req service.DimensionRequest
			if err = json.Unmarshal(body, &req); err == nil {
				if len(req.Scenario) > 0 {
					sc, err = scenario.FromJSON(req.Scenario)
				} else {
					sc = scenario.Default()
				}
			}
		} else {
			sc, err = scenario.FromQuery(query, "bound", "bound_ms")
		}
	default:
		return "", false
	}
	if err != nil {
		return "", false
	}
	return sc.Canonical(), true
}

// rrOrder returns all replica indices starting from a rotating cursor: the
// fallback order for requests without a scenario key.
func (rt *Router) rrOrder() []int {
	n := len(rt.replicas)
	start := int(rt.rr.Add(1)-1) % n
	out := make([]int, n)
	for i := range out {
		out[i] = (start + i) % n
	}
	return out
}

// eligible reports whether a replica should receive new traffic: alive,
// not draining, and its circuit allows a request.
func (rt *Router) eligible(idx int, now time.Time) bool {
	st := rt.replicas[idx]
	return st.alive.Load() && st.ready.Load() && st.breaker.Allow(now)
}

// loadBound is the bounded-load ceiling on one replica's in-flight count.
func (rt *Router) loadBound(now time.Time) int64 {
	if rt.cfg.LoadFactor == 0 {
		return math.MaxInt64
	}
	var total int64
	healthy := 0
	for i, st := range rt.replicas {
		total += st.inflight.Load()
		if rt.eligible(i, now) {
			healthy++
		}
	}
	if healthy == 0 {
		healthy = len(rt.replicas)
	}
	return int64(math.Ceil(rt.cfg.LoadFactor * float64(total+1) / float64(healthy)))
}

// order filters candidates to eligible replicas (all of them when none are
// eligible — a desperate attempt beats an unconditional 502), then applies
// the bounded-load spill: while the front candidate is over the in-flight
// ceiling and a cooler candidate exists, rotate it back.
func (rt *Router) order(candidates []int, now time.Time) []int {
	chosen := make([]int, 0, len(candidates))
	for _, idx := range candidates {
		if rt.eligible(idx, now) {
			chosen = append(chosen, idx)
		}
	}
	if len(chosen) == 0 {
		return candidates
	}
	if rt.cfg.LoadFactor > 0 && len(chosen) > 1 {
		bound := rt.loadBound(now)
		for i, idx := range chosen {
			if rt.replicas[idx].inflight.Load()+1 <= bound {
				if i > 0 {
					rt.spills.Add(uint64(i))
					chosen = append(chosen[i:i:i], append(chosen[i:], chosen[:i]...)...)
				}
				break
			}
		}
	}
	return chosen
}

// forwardResult is one replica's answer to a forwarded request.
type forwardResult struct {
	status  int
	header  http.Header
	body    []byte
	replica int
}

// tryOrder forwards the request to the first candidate that answers,
// walking the failover order on transport errors and gateway-grade (>= 500)
// statuses. Sub-500 statuses are authoritative daemon answers (400 invalid,
// 422 unstable) and are returned as-is.
func (rt *Router) tryOrder(ctx context.Context, candidates []int, method, path, rawQuery string, body []byte) (forwardResult, error) {
	now := time.Now()
	order := rt.order(candidates, now)
	var lastErr error
	for i, idx := range order {
		if i > 0 {
			rt.retries.Add(1)
		}
		st := rt.replicas[idx]
		res, err := rt.forwardOne(ctx, st, method, path, rawQuery, body)
		if err == nil && res.status < http.StatusInternalServerError {
			st.breaker.Success()
			res.replica = idx
			return res, nil
		}
		if err == nil {
			err = fmt.Errorf("replica %s answered %d", st.name, res.status)
		}
		st.errors.Add(1)
		st.lastErr.Store(err.Error())
		st.breaker.Failure(time.Now())
		lastErr = err
	}
	rt.noHome.Add(1)
	return forwardResult{}, fmt.Errorf("cluster: no replica answered %s: %w", path, lastErr)
}

// forwardOne sends the buffered request to one replica.
func (rt *Router) forwardOne(ctx context.Context, st *replicaState, method, path, rawQuery string, body []byte) (forwardResult, error) {
	target := st.name + path
	if rawQuery != "" {
		target += "?" + rawQuery
	}
	var rd io.Reader
	if len(body) > 0 {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, target, rd)
	if err != nil {
		return forwardResult{}, err
	}
	req.Header.Set("Accept", "application/json")
	if len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	st.inflight.Add(1)
	st.requests.Add(1)
	resp, err := rt.hc.Do(req)
	if err != nil {
		st.inflight.Add(-1)
		return forwardResult{}, err
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxReplicaBody+1))
	resp.Body.Close()
	st.inflight.Add(-1)
	if err != nil {
		return forwardResult{}, err
	}
	if int64(len(data)) > maxReplicaBody {
		// Forwarding the first maxReplicaBody bytes as a complete body would
		// hand the client a silently truncated answer; treat the oversized
		// response as a transport failure so tryOrder fails over.
		return forwardResult{}, fmt.Errorf("replica %s response over %d bytes", st.name, maxReplicaBody)
	}
	return forwardResult{status: resp.StatusCode, header: resp.Header, body: data}, nil
}

// copyResponse relays a replica's answer, preserving its bytes and cache
// disposition and stamping which replica answered.
func (rt *Router) copyResponse(w http.ResponseWriter, res forwardResult) {
	if ct := res.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if cache := res.header.Get(service.CacheHeader); cache != "" {
		w.Header().Set(service.CacheHeader, cache)
	}
	w.Header().Set(ReplicaHeader, rt.replicas[res.replica].name)
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// observe folds one routed request into the router's daemon-compatible
// per-endpoint counters.
func (rt *Router) observe(endpoint string, status int, cacheHit bool) {
	c := rt.endpoints[endpoint]
	if c == nil {
		return
	}
	c.requests.Add(1)
	if status >= 400 {
		c.errors.Add(1)
	}
	if cacheHit {
		c.hits.Add(1)
	}
}

// checkMethod mirrors the daemon's method filter so a bad method never
// consumes a forwarding attempt.
func checkMethod(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		w.Header().Set("Allow", "GET, POST")
		writeJSON(w, http.StatusMethodNotAllowed, apiError{Error: "use GET or POST"})
		return false
	}
	return true
}

// handleKeyed routes one single-scenario endpoint by canonical key.
func (rt *Router) handleKeyed(w http.ResponseWriter, r *http.Request, endpoint string) {
	if !checkMethod(w, r) {
		return
	}
	body, err := readBody(r)
	if err != nil {
		rt.observe(endpoint, http.StatusBadRequest, false)
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	var candidates []int
	if key, ok := routeKey(endpoint, r.URL.Query(), body); ok {
		candidates = rt.policy.Candidates(key)
	} else {
		candidates = rt.rrOrder()
	}
	res, err := rt.tryOrder(r.Context(), candidates, r.Method, endpoint, r.URL.RawQuery, body)
	if err != nil {
		rt.observe(endpoint, http.StatusBadGateway, false)
		writeJSON(w, http.StatusBadGateway, apiError{Error: err.Error()})
		return
	}
	rt.observe(endpoint, res.status, res.header.Get(service.CacheHeader) == "hit")
	rt.copyResponse(w, res)
}

// handleModels forwards the key-less static endpoint round-robin.
func (rt *Router) handleModels(w http.ResponseWriter, r *http.Request) {
	if !checkMethod(w, r) {
		return
	}
	res, err := rt.tryOrder(r.Context(), rt.rrOrder(), r.Method, "/v1/models", r.URL.RawQuery, nil)
	if err != nil {
		rt.observe("/v1/models", http.StatusBadGateway, false)
		writeJSON(w, http.StatusBadGateway, apiError{Error: err.Error()})
		return
	}
	rt.observe("/v1/models", res.status, false)
	rt.copyResponse(w, res)
}

// handleBatch splits a batch by per-item canonical key so every item lands
// on its owning replica (intra-batch duplicates share a key, hence a
// sub-batch, hence the replica's dedup still collapses them), forwards the
// sub-batches concurrently, and merges results back into request order.
// Cached counts add up exactly because duplicates can never straddle
// sub-batches. A batch that fails to parse is forwarded whole, round-robin,
// for the replica's authoritative 400.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !checkMethod(w, r) {
		return
	}
	const endpoint = "/v1/rtt:batch"
	body, err := readBody(r)
	if err != nil {
		rt.observe(endpoint, http.StatusBadRequest, false)
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	var req service.BatchRequest
	keys := []string(nil)
	if json.Unmarshal(body, &req) == nil && len(req.Scenarios) > 0 {
		keys = make([]string, len(req.Scenarios))
		for i, raw := range req.Scenarios {
			sc, err := scenario.FromJSON(raw)
			if err != nil {
				keys = nil // invalid item: let a replica render the exact 400
				break
			}
			keys[i] = sc.Canonical()
		}
	}
	if keys == nil {
		res, err := rt.tryOrder(r.Context(), rt.rrOrder(), r.Method, endpoint, r.URL.RawQuery, body)
		if err != nil {
			rt.observe(endpoint, http.StatusBadGateway, false)
			writeJSON(w, http.StatusBadGateway, apiError{Error: err.Error()})
			return
		}
		rt.observe(endpoint, res.status, res.header.Get(service.CacheHeader) == "hit")
		rt.copyResponse(w, res)
		return
	}

	// Group item indices by primary owner; each group keeps the candidate
	// order of its first item for failover.
	type group struct {
		order []int
		items []int
	}
	groups := make(map[int]*group)
	var owners []int
	for i, key := range keys {
		cand := rt.policy.Candidates(key)
		g := groups[cand[0]]
		if g == nil {
			g = &group{order: cand}
			groups[cand[0]] = g
			owners = append(owners, cand[0])
		}
		g.items = append(g.items, i)
	}
	sort.Ints(owners)
	if len(owners) > 1 {
		rt.splits.Add(1)
	}

	type subResult struct {
		res service.BatchResult
		fwd forwardResult
		err error
	}
	subs := make([]subResult, len(owners))
	var wg sync.WaitGroup
	for gi, owner := range owners {
		wg.Add(1)
		go func(gi int, g *group) {
			defer wg.Done()
			sub := service.BatchRequest{Scenarios: make([]json.RawMessage, len(g.items))}
			for j, idx := range g.items {
				sub.Scenarios[j] = req.Scenarios[idx]
			}
			payload, err := json.Marshal(sub)
			if err != nil {
				subs[gi].err = err
				return
			}
			fwd, err := rt.tryOrder(r.Context(), g.order, http.MethodPost, endpoint, "", payload)
			if err != nil {
				subs[gi].err = err
				return
			}
			subs[gi].fwd = fwd
			if fwd.status == http.StatusOK {
				subs[gi].err = json.Unmarshal(fwd.body, &subs[gi].res)
			}
		}(gi, groups[owner])
	}
	wg.Wait()

	out := service.BatchResult{Results: make([]service.BatchItem, len(keys))}
	for gi, owner := range owners {
		sub := subs[gi]
		if sub.err != nil {
			rt.observe(endpoint, http.StatusBadGateway, false)
			writeJSON(w, http.StatusBadGateway, apiError{Error: fmt.Sprintf("cluster: batch shard: %v", sub.err)})
			return
		}
		if sub.fwd.status != http.StatusOK {
			// An authoritative non-200 from a replica answers the whole batch.
			rt.observe(endpoint, sub.fwd.status, false)
			rt.copyResponse(w, sub.fwd)
			return
		}
		g := groups[owner]
		if len(sub.res.Results) != len(g.items) {
			rt.observe(endpoint, http.StatusBadGateway, false)
			writeJSON(w, http.StatusBadGateway, apiError{Error: "cluster: batch shard answered with wrong item count"})
			return
		}
		for j, idx := range g.items {
			out.Results[idx] = sub.res.Results[j]
		}
		out.Cached += sub.res.Cached
	}
	hit := out.Cached == len(out.Results)
	rt.observe(endpoint, http.StatusOK, hit)
	w.Header().Set(service.CacheHeader, hitOrMiss(hit))
	writeJSON(w, http.StatusOK, out)
}

func hitOrMiss(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// ReplicaHealth is one replica's state in the router's /healthz answer.
type ReplicaHealth struct {
	Name  string `json:"name"`
	Alive bool   `json:"alive"`
	Ready bool   `json:"ready"`
	// ReadyGeneration echoes the replica's monotonic readiness generation,
	// distinguishing a drain (alive, not ready, generation bumped) from a
	// death (not alive).
	ReadyGeneration uint64 `json:"ready_generation"`
	Breaker         string `json:"breaker"`
	Inflight        int64  `json:"inflight"`
	LastError       string `json:"last_error,omitempty"`
}

// RouterHealth answers the router's /healthz.
type RouterHealth struct {
	// Status is "ok" while at least one replica is routable, else
	// "unavailable"; Ready mirrors it so client.WaitReady works against a
	// router exactly as against a daemon.
	Status   string          `json:"status"`
	Ready    bool            `json:"ready"`
	Policy   string          `json:"policy"`
	VNodes   int             `json:"vnodes"`
	Routable int             `json:"routable"`
	Replicas []ReplicaHealth `json:"replicas"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	h := RouterHealth{Policy: rt.cfg.Policy, VNodes: rt.ring.VNodes()}
	for i, st := range rt.replicas {
		h.Replicas = append(h.Replicas, ReplicaHealth{
			Name:            st.name,
			Alive:           st.alive.Load(),
			Ready:           st.ready.Load(),
			ReadyGeneration: st.readyGen.Load(),
			Breaker:         st.breaker.State(now),
			Inflight:        st.inflight.Load(),
			LastError:       st.lastErr.Load().(string),
		})
		if rt.eligible(i, now) {
			h.Routable++
		}
	}
	h.Status = "ok"
	h.Ready = true
	status := http.StatusOK
	if h.Routable == 0 {
		h.Status = "unavailable"
		h.Ready = false
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	fmt.Fprintf(&b, "# TYPE fpsping_uptime_seconds gauge\nfpsping_uptime_seconds %.3f\n", time.Since(rt.started).Seconds())
	// Daemon-compatible per-endpoint counters: a load generator pointed at
	// the router computes the cluster's aggregate hit ratio with the same
	// scrape it uses against one daemon.
	eps := make([]string, 0, len(rt.endpoints))
	for ep := range rt.endpoints {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	b.WriteString("# TYPE fpsping_requests_total counter\n")
	for _, ep := range eps {
		fmt.Fprintf(&b, "fpsping_requests_total{endpoint=%q} %d\n", ep, rt.endpoints[ep].requests.Load())
	}
	b.WriteString("# TYPE fpsping_request_errors_total counter\n")
	for _, ep := range eps {
		fmt.Fprintf(&b, "fpsping_request_errors_total{endpoint=%q} %d\n", ep, rt.endpoints[ep].errors.Load())
	}
	b.WriteString("# TYPE fpsping_cache_hits_total counter\n")
	for _, ep := range eps {
		fmt.Fprintf(&b, "fpsping_cache_hits_total{endpoint=%q} %d\n", ep, rt.endpoints[ep].hits.Load())
	}
	// Router-native gauges and counters. Per-replica families render in
	// per-family loops (not one loop over replicas) so each family is a
	// single contiguous block under its TYPE line, as strict Prometheus
	// parsers require.
	fmt.Fprintf(&b, "# TYPE fpsrouter_replicas gauge\nfpsrouter_replicas %d\n", len(rt.replicas))
	fmt.Fprintf(&b, "# TYPE fpsrouter_retries_total counter\nfpsrouter_retries_total %d\n", rt.retries.Load())
	fmt.Fprintf(&b, "# TYPE fpsrouter_spills_total counter\nfpsrouter_spills_total %d\n", rt.spills.Load())
	fmt.Fprintf(&b, "# TYPE fpsrouter_batch_splits_total counter\nfpsrouter_batch_splits_total %d\n", rt.splits.Load())
	fmt.Fprintf(&b, "# TYPE fpsrouter_no_replica_total counter\nfpsrouter_no_replica_total %d\n", rt.noHome.Load())
	b.WriteString("# TYPE fpsrouter_replica_up gauge\n")
	for _, st := range rt.replicas {
		fmt.Fprintf(&b, "fpsrouter_replica_up{replica=%q} %d\n", st.name, boolGauge(st.alive.Load()))
	}
	b.WriteString("# TYPE fpsrouter_replica_ready gauge\n")
	for _, st := range rt.replicas {
		fmt.Fprintf(&b, "fpsrouter_replica_ready{replica=%q} %d\n", st.name, boolGauge(st.ready.Load()))
	}
	b.WriteString("# TYPE fpsrouter_replica_requests_total counter\n")
	for _, st := range rt.replicas {
		fmt.Fprintf(&b, "fpsrouter_replica_requests_total{replica=%q} %d\n", st.name, st.requests.Load())
	}
	b.WriteString("# TYPE fpsrouter_replica_errors_total counter\n")
	for _, st := range rt.replicas {
		fmt.Fprintf(&b, "fpsrouter_replica_errors_total{replica=%q} %d\n", st.name, st.errors.Load())
	}
	b.WriteString("# TYPE fpsrouter_replica_inflight gauge\n")
	for _, st := range rt.replicas {
		fmt.Fprintf(&b, "fpsrouter_replica_inflight{replica=%q} %d\n", st.name, st.inflight.Load())
	}
	b.WriteString("# TYPE fpsrouter_breaker_open gauge\n")
	for _, st := range rt.replicas {
		fmt.Fprintf(&b, "fpsrouter_breaker_open{replica=%q} %d\n", st.name, boolGauge(st.breaker.State(now) != "closed"))
	}
	io.WriteString(w, b.String())
}

func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}
