package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fpsping/internal/scenario"
	"fpsping/internal/service"
)

// fakeReplica is a scripted stand-in for fpspingd: answers /v1/rtt with a
// body identifying itself, /v1/rtt:batch with per-item markers, /healthz
// with a configurable readiness, and counts what it receives.
type fakeReplica struct {
	srv      *httptest.Server
	id       int
	rtts     atomic.Int64
	batches  atomic.Int64
	ready    atomic.Bool
	readyGen atomic.Uint64
	fail     atomic.Bool  // answer 500 on model endpoints
	cache    atomic.Value // string: CacheHeader value to claim
}

func newFakeReplica(t *testing.T, id int) *fakeReplica {
	t.Helper()
	f := &fakeReplica{id: id}
	f.ready.Store(true)
	f.readyGen.Store(1)
	f.cache.Store("miss")
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/rtt", func(w http.ResponseWriter, r *http.Request) {
		f.rtts.Add(1)
		if f.fail.Load() {
			http.Error(w, `{"error":"scripted failure"}`, http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(service.CacheHeader, f.cache.Load().(string))
		fmt.Fprintf(w, `{"replica":%d}`, f.id)
	})
	mux.HandleFunc("/v1/rtt:batch", func(w http.ResponseWriter, r *http.Request) {
		f.batches.Add(1)
		var req service.BatchRequest
		body, _ := io.ReadAll(r.Body)
		if err := json.Unmarshal(body, &req); err != nil {
			http.Error(w, `{"error":"bad batch"}`, http.StatusBadRequest)
			return
		}
		res := service.BatchResult{Results: make([]service.BatchItem, len(req.Scenarios))}
		for i, raw := range req.Scenarios {
			sc, err := scenario.FromJSON(raw)
			if err != nil {
				http.Error(w, `{"error":"bad scenario"}`, http.StatusBadRequest)
				return
			}
			res.Results[i] = service.BatchItem{Error: fmt.Sprintf("marker replica=%d gamers=%g", f.id, sc.Gamers)}
		}
		res.Cached = len(req.Scenarios) - 1 // distinct first item computes, rest "cached"
		w.Header().Set("Content-Type", "application/json")
		data, _ := json.Marshal(res)
		w.Write(data)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		status := "ok"
		if !f.ready.Load() {
			status = "draining"
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(service.Health{Status: status, Ready: f.ready.Load(), ReadyGeneration: f.readyGen.Load()})
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

// newTestCluster boots n fake replicas and a router over them.
func newTestCluster(t *testing.T, n int, mutate func(*RouterConfig)) ([]*fakeReplica, *Router, *httptest.Server) {
	t.Helper()
	fakes := make([]*fakeReplica, n)
	names := make([]string, n)
	for i := range fakes {
		fakes[i] = newFakeReplica(t, i)
		names[i] = fakes[i].srv.URL
	}
	cfg := RouterConfig{Replicas: names, Timeout: 5 * time.Second}
	if mutate != nil {
		mutate(&cfg)
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	return fakes, rt, front
}

// keyFor computes the canonical routing key of a gamers=N scenario.
func keyFor(t *testing.T, gamers int) string {
	t.Helper()
	sc, err := scenario.FromQuery(url.Values{"gamers": {fmt.Sprint(gamers)}})
	if err != nil {
		t.Fatal(err)
	}
	return sc.Canonical()
}

func get(t *testing.T, rawURL string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(rawURL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// TestRouterAffinityRouting checks that every spelling of one scenario lands
// on the replica the ring declares its owner, with the replica identified in
// the response header.
func TestRouterAffinityRouting(t *testing.T) {
	fakes, rt, front := newTestCluster(t, 3, nil)
	for gamers := 60; gamers < 70; gamers++ {
		owner := rt.Ring().Owner(keyFor(t, gamers))
		before := fakes[owner].rtts.Load()
		spellings := []string{
			fmt.Sprintf("%s/v1/rtt?gamers=%d", front.URL, gamers),
			fmt.Sprintf("%s/v1/rtt?gamers=%d.000", front.URL, gamers),
		}
		for _, u := range spellings {
			resp, body := get(t, u)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s: status %d, body %s", u, resp.StatusCode, body)
			}
			if want := fmt.Sprintf(`{"replica":%d}`, owner); body != want {
				t.Errorf("GET %s answered by %s, want owner %d", u, body, owner)
			}
			if got := resp.Header.Get(ReplicaHeader); got != fakes[owner].srv.URL {
				t.Errorf("GET %s: %s = %q, want %q", u, ReplicaHeader, got, fakes[owner].srv.URL)
			}
		}
		if got := fakes[owner].rtts.Load() - before; got != 2 {
			t.Errorf("gamers=%d: owner received %d requests, want 2", gamers, got)
		}
	}
}

// TestRouterBatchSplitMerge drives a batch with items owned by different
// replicas (and an intra-batch duplicate) through the router: results must
// come back in request order, each item answered by its owning replica, with
// Cached summed over sub-batches.
func TestRouterBatchSplitMerge(t *testing.T) {
	fakes, rt, front := newTestCluster(t, 3, nil)
	// Pick gamer counts spanning at least two distinct owners.
	gamers := []int{60, 61, 62, 63, 64, 60} // last item duplicates the first
	owners := make(map[int]bool)
	var req service.BatchRequest
	for _, g := range gamers {
		owners[rt.Ring().Owner(keyFor(t, g))] = true
		req.Scenarios = append(req.Scenarios, json.RawMessage(fmt.Sprintf(`{"gamers":%d}`, g)))
	}
	if len(owners) < 2 {
		t.Fatal("test scenarios all map to one owner; pick different gamer counts")
	}
	payload, _ := json.Marshal(req)
	resp, err := http.Post(front.URL+"/v1/rtt:batch", "application/json", strings.NewReader(string(payload)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var res service.BatchResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != len(gamers) {
		t.Fatalf("batch returned %d results, want %d", len(res.Results), len(gamers))
	}
	for i, g := range gamers {
		owner := rt.Ring().Owner(keyFor(t, g))
		want := fmt.Sprintf("marker replica=%d gamers=%d", owner, g)
		if res.Results[i].Error != want {
			t.Errorf("item %d: %q, want %q (owner routing or order broken)", i, res.Results[i].Error, want)
		}
	}
	// Each contacted replica reported len(sub)-1 cached; the merged count is
	// the sum. Total batches forwarded equals the number of distinct owners.
	var batches int64
	for _, f := range fakes {
		batches += f.batches.Load()
	}
	if batches != int64(len(owners)) {
		t.Errorf("%d sub-batches forwarded, want %d (one per owning replica)", batches, len(owners))
	}
	if want := len(gamers) - len(owners); res.Cached != want {
		t.Errorf("merged Cached = %d, want %d", res.Cached, want)
	}
	// The duplicate must share its first occurrence's sub-batch: same owner.
	if res.Results[0].Error != res.Results[len(gamers)-1].Error {
		t.Errorf("duplicate scenario split across replicas: %q vs %q", res.Results[0].Error, res.Results[len(gamers)-1].Error)
	}
}

// TestRouterFailover kills a key's owning replica and checks the request is
// answered by the next candidate in ring order.
func TestRouterFailover(t *testing.T) {
	fakes, rt, front := newTestCluster(t, 3, nil)
	key := keyFor(t, 64)
	owners := rt.Ring().Owners(key, 0)
	fakes[owners[0]].srv.Close() // dead, not draining: connections refused
	resp, body := get(t, front.URL+"/v1/rtt?gamers=64")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover GET status %d: %s", resp.StatusCode, body)
	}
	if want := fmt.Sprintf(`{"replica":%d}`, owners[1]); body != want {
		t.Errorf("failover answered by %s, want next owner %d", body, owners[1])
	}
}

// TestRouterBreaker checks the circuit opens after the configured number of
// consecutive failures and stops consuming attempts on the broken replica.
func TestRouterBreaker(t *testing.T) {
	fakes, rt, front := newTestCluster(t, 3, func(cfg *RouterConfig) {
		cfg.BreakerFailures = 2
		cfg.BreakerCooldown = time.Hour
	})
	key := keyFor(t, 64)
	owners := rt.Ring().Owners(key, 0)
	fakes[owners[0]].fail.Store(true)
	for i := 0; i < 5; i++ {
		resp, body := get(t, front.URL+"/v1/rtt?gamers=64")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d body %s (failover should mask the 500s)", i, resp.StatusCode, body)
		}
		if want := fmt.Sprintf(`{"replica":%d}`, owners[1]); body != want {
			t.Errorf("request %d answered by %s, want %d", i, body, owners[1])
		}
	}
	// The primary absorbed exactly BreakerFailures attempts before the
	// circuit opened; the remaining requests went straight to the secondary.
	if got := fakes[owners[0]].rtts.Load(); got != 2 {
		t.Errorf("broken primary received %d requests, want 2 (breaker did not open)", got)
	}
}

// TestRouterDrainRouting marks one replica draining via its /healthz and
// checks the router routes around it while reporting it alive.
func TestRouterDrainRouting(t *testing.T) {
	fakes, rt, front := newTestCluster(t, 3, nil)
	key := keyFor(t, 64)
	owners := rt.Ring().Owners(key, 0)
	fakes[owners[0]].ready.Store(false)
	fakes[owners[0]].readyGen.Add(1)
	rt.CheckReplicas(context.Background())

	resp, body := get(t, front.URL+"/v1/rtt?gamers=64")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain GET status %d: %s", resp.StatusCode, body)
	}
	if want := fmt.Sprintf(`{"replica":%d}`, owners[1]); body != want {
		t.Errorf("draining owner still serving: got %s, want %d", body, owners[1])
	}

	// The router's own health must tell draining (alive, not ready, bumped
	// generation) apart from dead.
	hresp, hbody := get(t, front.URL+"/healthz")
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("router healthz status %d", hresp.StatusCode)
	}
	var rh RouterHealth
	if err := json.Unmarshal([]byte(hbody), &rh); err != nil {
		t.Fatal(err)
	}
	if rh.Routable != 2 {
		t.Errorf("routable = %d, want 2", rh.Routable)
	}
	for _, rep := range rh.Replicas {
		if rep.Name != fakes[owners[0]].srv.URL {
			continue
		}
		if !rep.Alive || rep.Ready {
			t.Errorf("draining replica reported alive=%v ready=%v, want alive and not ready", rep.Alive, rep.Ready)
		}
		if rep.ReadyGeneration != 2 {
			t.Errorf("draining replica generation %d, want 2", rep.ReadyGeneration)
		}
	}
}

// TestRouterDeadVsDraining checks CheckReplicas distinguishes a closed
// listener (dead) from a draining daemon (alive, not ready).
func TestRouterDeadVsDraining(t *testing.T) {
	fakes, rt, _ := newTestCluster(t, 3, nil)
	fakes[0].srv.Close()
	fakes[1].ready.Store(false)
	rt.CheckReplicas(context.Background())
	if rt.replicas[0].alive.Load() {
		t.Error("closed replica still reported alive")
	}
	if !rt.replicas[1].alive.Load() || rt.replicas[1].ready.Load() {
		t.Errorf("draining replica: alive=%v ready=%v, want alive and not ready",
			rt.replicas[1].alive.Load(), rt.replicas[1].ready.Load())
	}
	if !rt.replicas[2].alive.Load() || !rt.replicas[2].ready.Load() {
		t.Error("healthy replica misreported")
	}
}

// TestRouterBoundedLoadSpill exercises the bounded-load rotation directly:
// an owner over the in-flight ceiling yields to the next candidate.
func TestRouterBoundedLoadSpill(t *testing.T) {
	_, rt, _ := newTestCluster(t, 3, func(cfg *RouterConfig) { cfg.LoadFactor = 2 })
	rt.replicas[0].inflight.Store(10)
	order := rt.order([]int{0, 1, 2}, time.Now())
	// total in-flight 10, 3 healthy replicas: bound = ceil(2*11/3) = 8; the
	// owner at 10 is over it, so the next candidate takes the request.
	if order[0] != 1 {
		t.Errorf("order = %v, want spill to replica 1", order)
	}
	if rt.spills.Load() == 0 {
		t.Error("spill not counted")
	}
	// Under the bound, the owner keeps its traffic.
	rt.replicas[0].inflight.Store(1)
	if order := rt.order([]int{0, 1, 2}, time.Now()); order[0] != 0 {
		t.Errorf("order = %v, owner under the bound should stay first", order)
	}
}

// TestRouterNoLoadFactorNoSpill checks the default (LoadFactor 0) never
// reroutes: CI's affinity assertion depends on it.
func TestRouterNoLoadFactorNoSpill(t *testing.T) {
	_, rt, _ := newTestCluster(t, 3, nil)
	rt.replicas[0].inflight.Store(1 << 30)
	if order := rt.order([]int{0, 1, 2}, time.Now()); order[0] != 0 {
		t.Errorf("order = %v, LoadFactor 0 must not spill", order)
	}
}

// TestRouterMetricsDaemonCompatible checks the router's /metrics speak the
// daemon's dialect: per-endpoint request and cache-hit counters a load
// generator can gate on.
func TestRouterMetricsDaemonCompatible(t *testing.T) {
	fakes, _, front := newTestCluster(t, 3, nil)
	for _, f := range fakes {
		f.cache.Store("hit")
	}
	const n = 6
	hits := 0
	for i := 0; i < n; i++ {
		if i == 0 {
			fakes[0].cache.Store("miss")
			fakes[1].cache.Store("miss")
			fakes[2].cache.Store("miss")
		} else {
			fakes[0].cache.Store("hit")
			fakes[1].cache.Store("hit")
			fakes[2].cache.Store("hit")
			hits++
		}
		get(t, fmt.Sprintf("%s/v1/rtt?gamers=64", front.URL))
	}
	_, metrics := get(t, front.URL+"/metrics")
	wantReq := `fpsping_requests_total{endpoint="/v1/rtt"} 6`
	wantHits := fmt.Sprintf(`fpsping_cache_hits_total{endpoint="/v1/rtt"} %d`, hits)
	for _, want := range []string{wantReq, wantHits, "fpsrouter_replicas 3"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestRouterAllDead checks the router answers 502 with the error chain when
// no replica is reachable, and its /healthz flips to 503.
func TestRouterAllDead(t *testing.T) {
	fakes, rt, front := newTestCluster(t, 2, nil)
	for _, f := range fakes {
		f.srv.Close()
	}
	rt.CheckReplicas(context.Background())
	resp, _ := get(t, front.URL+"/v1/rtt?gamers=64")
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("all-dead GET status %d, want 502", resp.StatusCode)
	}
	hresp, _ := get(t, front.URL+"/healthz")
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("all-dead healthz status %d, want 503", hresp.StatusCode)
	}
}

// TestNewRouterRejects covers configuration validation.
func TestNewRouterRejects(t *testing.T) {
	cases := []RouterConfig{
		{},
		{Replicas: []string{"not-a-url"}},
		{Replicas: []string{"ftp://x"}},
		{Replicas: []string{"http://a", "http://a"}},
		{Replicas: []string{"http://a"}, LoadFactor: 0.5},
		{Replicas: []string{"http://a"}, Policy: "nonsense"},
	}
	for i, cfg := range cases {
		if _, err := NewRouter(cfg); err == nil {
			t.Errorf("case %d: NewRouter accepted %+v", i, cfg)
		}
	}
}
