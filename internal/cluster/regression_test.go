package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// oversizedReplica answers /v1/rtt with a body larger than the router's
// replica-response cap.
func oversizedReplica(t *testing.T, size int) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(strings.Repeat("x", size)))
	}))
	t.Cleanup(srv.Close)
	return srv
}

// capReplicaBody lowers the replica-response cap for the duration of the
// test so an "oversized" body is kilobytes, not 64 MB.
func capReplicaBody(t *testing.T, n int64) {
	t.Helper()
	old := maxReplicaBody
	maxReplicaBody = n
	t.Cleanup(func() { maxReplicaBody = old })
}

// TestRouterRejectsTruncatedReplicaBody pins the over-limit check in
// forwardOne: a replica response at the cap used to be silently truncated
// and forwarded as a complete body; it must instead be a transport error —
// a 502 when no other replica can answer.
func TestRouterRejectsTruncatedReplicaBody(t *testing.T) {
	capReplicaBody(t, 4096)
	big := oversizedReplica(t, int(maxReplicaBody)+100)
	rt, err := NewRouter(RouterConfig{Replicas: []string{big.URL}, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	resp, body := get(t, front.URL+"/v1/rtt?gamers=60")
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("oversized replica body: status %d (len %d), want 502", resp.StatusCode, len(body))
	}
	if !strings.Contains(body, "over") {
		t.Errorf("502 body does not name the over-limit cause: %s", body)
	}
}

// TestRouterFailsOverOnTruncatedReplicaBody: the oversized answer must
// trigger failover like any transport error, so a healthy peer's complete
// body wins.
func TestRouterFailsOverOnTruncatedReplicaBody(t *testing.T) {
	capReplicaBody(t, 4096)
	big := oversizedReplica(t, int(maxReplicaBody)+100)
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"replica":"good"}`))
	}))
	defer good.Close()

	rt, err := NewRouter(RouterConfig{Replicas: []string{big.URL, good.URL}, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// Find a scenario the oversized replica owns, so the failover path (not
	// first-choice routing) is what produces the good answer.
	gamers := -1
	for g := 60; g < 600; g++ {
		if rt.Ring().Owner(keyFor(t, g)) == 0 {
			gamers = g
			break
		}
	}
	if gamers < 0 {
		t.Fatal("no key owned by the oversized replica")
	}
	resp, body := get(t, fmt.Sprintf("%s/v1/rtt?gamers=%d", front.URL, gamers))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 via failover: %s", resp.StatusCode, body)
	}
	if body != `{"replica":"good"}` {
		t.Errorf("unexpected failover body: %s", body)
	}
	if resp.Header.Get(ReplicaHeader) != good.URL {
		t.Errorf("replica header %q, want the healthy peer", resp.Header.Get(ReplicaHeader))
	}
	if rt.retries.Load() == 0 {
		t.Error("failover did not count a retry")
	}
}

// TestRouterMetricsStrictFormat pins the TYPE-declaration fix on the
// router's /metrics: every exposed family must carry a # TYPE line, and
// every family's samples must form one contiguous block — the two
// properties strict Prometheus parsers enforce by dropping violators.
func TestRouterMetricsStrictFormat(t *testing.T) {
	_, _, front := newTestCluster(t, 3, nil)
	resp, body := get(t, front.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	typed := make(map[string]bool)
	lastFamily := ""
	closed := make(map[string]bool) // families whose block has ended
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Errorf("line %d: malformed TYPE line %q", ln+1, line)
				continue
			}
			if typed[fields[2]] {
				t.Errorf("line %d: duplicate TYPE for %s", ln+1, fields[2])
			}
			typed[fields[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if !typed[name] {
			t.Errorf("line %d: sample %q has no TYPE declaration", ln+1, name)
		}
		if name != lastFamily {
			if closed[name] {
				t.Errorf("line %d: family %s reappears outside its block", ln+1, name)
			}
			if lastFamily != "" {
				closed[lastFamily] = true
			}
			lastFamily = name
		}
	}
}
