package cluster

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"fpsping/internal/client"
	"fpsping/internal/memo"
	"fpsping/internal/service"
)

// BootstrapConfig parameterizes one replica bootstrap: warming a fresh
// replica with exactly the cache entries it will own once it joins the ring.
type BootstrapConfig struct {
	// Replicas is the post-join replica set — the fpspingd base URLs the
	// router will be (re)configured with, including Target. Ownership is
	// computed over this ring, so it must match the router's replica list
	// and vnode count exactly.
	Replicas []string
	// Target is the fresh replica to warm; must be one of Replicas.
	Target string
	// VNodes is the ring's virtual-node count per replica (0 = default),
	// matching the router's.
	VNodes int
	// Timeout bounds each donor dump and the target warm (0 = 120s; dumps
	// of well-filled caches are bulky).
	Timeout time.Duration
}

// DonorReport is one donor's contribution to a bootstrap.
type DonorReport struct {
	Donor string `json:"donor"`
	// Kept/Dropped count the donor's snapshot records against the post-join
	// ring: kept records are owned by the target, dropped ones stay home.
	Kept    int `json:"kept"`
	Dropped int `json:"dropped"`
	// Restored/SkippedExisting/SkippedFull echo the target's warm answer
	// for this donor's filtered snapshot.
	Restored        int `json:"restored"`
	SkippedExisting int `json:"skipped_existing"`
	SkippedFull     int `json:"skipped_full"`
	// Err records a donor-level failure. Bootstrap is best-effort per
	// donor: a dead donor costs warmth, not the join.
	Err string `json:"error,omitempty"`
}

// BootstrapReport sums a bootstrap run.
type BootstrapReport struct {
	Target string        `json:"target"`
	Donors []DonorReport `json:"donors"`
	// Restored is the total entry count the target accepted.
	Restored int `json:"restored"`
	// CacheEntries is the target's cache occupancy after the last warm.
	CacheEntries int `json:"cache_entries"`
}

// Bootstrap pre-seeds a fresh replica from its future peers: it builds the
// post-join ring, asks every donor for a cache dump, carves out of each
// snapshot exactly the records whose canonical scenario key the ring
// assigns to the target (memo.FilterSnapshot — the carving is byte-level,
// so the donor's schema stamp and checksum discipline survive intact), and
// uploads the carved snapshots to the target's /v1/cache:warm. The target
// must run the same build as the donors, or its schema check will (rightly)
// reject the snapshots.
//
// Donor failures are reported, not fatal: a replica that cannot donate
// costs cache warmth, never the join itself. An error is returned only
// when the configuration is unusable or the target refuses every warm.
//
// One approximation is inherent: a sweep's interior grid points ("pt|"
// entries) are keyed by per-point scenarios whose owners may differ from
// the base sweep's, so a freshly bootstrapped replica can still miss on a
// handful of interior points and re-derive them — correctness is
// unaffected.
func Bootstrap(ctx context.Context, cfg BootstrapConfig) (BootstrapReport, error) {
	rep := BootstrapReport{Target: cfg.Target}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 120 * time.Second
	}
	ring, err := NewRing(cfg.Replicas, cfg.VNodes)
	if err != nil {
		return rep, err
	}
	targetIdx := -1
	for i, r := range cfg.Replicas {
		if r == cfg.Target {
			targetIdx = i
			break
		}
	}
	if targetIdx < 0 {
		return rep, fmt.Errorf("cluster: bootstrap target %q not in replica set", cfg.Target)
	}
	if len(cfg.Replicas) < 2 {
		return rep, fmt.Errorf("cluster: bootstrap needs at least one donor besides the target")
	}

	tc, err := client.New(cfg.Target, client.WithTimeout(cfg.Timeout))
	if err != nil {
		return rep, err
	}
	owned := func(memoKey string) bool {
		key, ok := service.ScenarioKeyOf(memoKey)
		if !ok {
			return false
		}
		return ring.Owner(key) == targetIdx
	}

	warmed := false
	var lastErr error
	for i, donor := range cfg.Replicas {
		if i == targetIdx {
			continue
		}
		dr := DonorReport{Donor: donor}
		rep.Donors = append(rep.Donors, dr)
		out := &rep.Donors[len(rep.Donors)-1]

		dc, err := client.New(donor, client.WithTimeout(cfg.Timeout))
		if err != nil {
			out.Err, lastErr = err.Error(), err
			continue
		}
		snap, err := dc.CacheDump(ctx)
		if err != nil {
			out.Err, lastErr = err.Error(), err
			continue
		}
		var carved bytes.Buffer
		fst, err := memo.FilterSnapshot(bytes.NewReader(snap), &carved, owned)
		if err != nil {
			out.Err, lastErr = err.Error(), err
			continue
		}
		out.Kept, out.Dropped = fst.Kept, fst.Dropped
		if fst.Kept == 0 {
			warmed = true // nothing owed by this donor is still a successful donation
			continue
		}
		wr, err := tc.CacheWarm(ctx, carved.Bytes())
		if err != nil {
			out.Err, lastErr = err.Error(), err
			continue
		}
		out.Restored, out.SkippedExisting, out.SkippedFull = wr.Restored, wr.SkippedExisting, wr.SkippedFull
		rep.Restored += wr.Restored
		rep.CacheEntries = wr.CacheEntries
		warmed = true
	}
	if !warmed {
		return rep, fmt.Errorf("cluster: bootstrap of %s failed against every donor: %w", cfg.Target, lastErr)
	}
	return rep, nil
}
