package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"fpsping/internal/service"
)

// bootReplica boots one genuine fpspingd engine behind httptest.
func bootReplica(t *testing.T) (*service.Engine, string) {
	t.Helper()
	eng := service.NewEngine(2, 256)
	srv := httptest.NewServer(service.NewServer("127.0.0.1:0", eng).Handler())
	t.Cleanup(srv.Close)
	return eng, srv.URL
}

// TestBootstrapWarmJoinBeatsColdJoin is the in-process version of the CI
// bootstrap gate: a fourth replica joins a filled three-replica cluster,
// pre-seeded via Bootstrap with exactly the keys the post-join ring hands
// it. Its first pass over the working set must be all hits with zero
// computations, while an identical cold-joining control replica computes.
func TestBootstrapWarmJoinBeatsColdJoin(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-engine end-to-end test")
	}
	ctx := context.Background()

	// Three donors behind a router, filled with a working set chosen so the
	// future fourth replica will own at least a few of its keys.
	donorEngines := make([]*service.Engine, 3)
	donors := make([]string, 3)
	for i := range donors {
		donorEngines[i], donors[i] = bootReplica(t)
	}
	warmEng, warmURL := bootReplica(t)
	joined := append(append([]string(nil), donors...), warmURL)
	joinedRing, err := NewRing(joined, 0)
	if err != nil {
		t.Fatal(err)
	}
	var gamers []int
	ownedByTarget := 0
	for g := 60; len(gamers) < 16 && g < 2000; g++ {
		if joinedRing.Owner(keyFor(t, g)) == 3 {
			ownedByTarget++
		} else if len(gamers)-ownedByTarget >= 12 {
			continue // enough donor-owned keys; keep hunting target-owned ones
		}
		gamers = append(gamers, g)
	}
	if ownedByTarget == 0 {
		t.Fatal("working set has no keys the fourth replica will own")
	}
	t.Logf("working set: %d keys, %d owned by the joining replica", len(gamers), ownedByTarget)

	preRouter, err := NewRouter(RouterConfig{Replicas: donors, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	preFront := httptest.NewServer(preRouter.Handler())
	defer preFront.Close()
	bodies := make(map[int]string)
	for _, g := range gamers {
		resp, body := get(t, fmt.Sprintf("%s/v1/rtt?gamers=%d", preFront.URL, g))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fill gamers=%d: status %d", g, resp.StatusCode)
		}
		bodies[g] = body
	}

	// Warm join: bootstrap the fourth replica from the donors.
	report, err := Bootstrap(ctx, BootstrapConfig{Replicas: joined, Target: warmURL})
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if report.Restored == 0 {
		t.Fatalf("bootstrap restored nothing: %+v", report)
	}
	for _, d := range report.Donors {
		if d.Err != "" {
			t.Errorf("donor %s failed: %s", d.Donor, d.Err)
		}
	}

	drive := func(front string) (hits int) {
		for _, g := range gamers {
			resp, body := get(t, fmt.Sprintf("%s/v1/rtt?gamers=%d", front, g))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("drive gamers=%d: status %d", g, resp.StatusCode)
			}
			if body != bodies[g] {
				t.Errorf("gamers=%d: answer changed after the join:\nbefore: %s\nafter:  %s", g, bodies[g], body)
			}
			if resp.Header.Get(service.CacheHeader) == "hit" {
				hits++
			}
		}
		return hits
	}

	warmRouter, err := NewRouter(RouterConfig{Replicas: joined, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	warmFront := httptest.NewServer(warmRouter.Handler())
	defer warmFront.Close()
	if hits := drive(warmFront.URL); hits != len(gamers) {
		t.Errorf("warm join: %d/%d first-pass hits, want all", hits, len(gamers))
	}
	if n := warmEng.Computes(); n != 0 {
		t.Errorf("pre-seeded replica ran %d computations on its first pass, want 0", n)
	}

	// Cold-join control: same topology, no bootstrap — the joining replica
	// must compute every re-homed key, which is exactly what warm join avoids.
	coldDonors := make([]string, 3)
	for i := range coldDonors {
		_, coldDonors[i] = bootReplica(t)
	}
	coldEng, coldURL := bootReplica(t)
	coldJoined := append(append([]string(nil), coldDonors...), coldURL)
	coldRouter, err := NewRouter(RouterConfig{Replicas: coldJoined, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	coldFront := httptest.NewServer(coldRouter.Handler())
	defer coldFront.Close()
	for _, g := range gamers {
		resp, _ := get(t, fmt.Sprintf("%s/v1/rtt?gamers=%d", coldFront.URL, g))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cold drive gamers=%d: status %d", g, resp.StatusCode)
		}
	}
	if coldEng.Computes() == 0 {
		t.Skipf("cold control owned no keys (ring differs from test fixture)")
	}
	if warmEng.Computes() >= coldEng.Computes() {
		t.Errorf("warm join computed %d, cold control %d — bootstrap gave no head start",
			warmEng.Computes(), coldEng.Computes())
	}
}

// TestBootstrapRejectsBadConfig covers the unusable-configuration paths.
func TestBootstrapRejectsBadConfig(t *testing.T) {
	ctx := context.Background()
	if _, err := Bootstrap(ctx, BootstrapConfig{Replicas: []string{"http://a:1", "http://b:2"}, Target: "http://c:3"}); err == nil {
		t.Error("target outside the replica set accepted")
	}
	if _, err := Bootstrap(ctx, BootstrapConfig{Replicas: []string{"http://a:1"}, Target: "http://a:1"}); err == nil {
		t.Error("bootstrap with no donors accepted")
	}
	if _, err := Bootstrap(ctx, BootstrapConfig{Replicas: nil, Target: ""}); err == nil {
		t.Error("empty config accepted")
	}
}

// TestBootstrapSurvivesDeadDonor: a donor that cannot answer costs its
// contribution, not the join.
func TestBootstrapSurvivesDeadDonor(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-engine end-to-end test")
	}
	ctx := context.Background()
	_, donorURL := bootReplica(t)
	// Fill the live donor directly.
	for g := 60; g < 70; g++ {
		resp, err := http.Get(fmt.Sprintf("%s/v1/rtt?gamers=%d", donorURL, g))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // refuse connections
	_, targetURL := bootReplica(t)

	report, err := Bootstrap(ctx, BootstrapConfig{
		Replicas: []string{donorURL, dead.URL, targetURL},
		Target:   targetURL,
		Timeout:  5 * time.Second,
	})
	if err != nil {
		t.Fatalf("Bootstrap with one dead donor failed outright: %v", err)
	}
	var deadErr, liveOK bool
	for _, d := range report.Donors {
		if d.Donor == dead.URL && d.Err != "" {
			deadErr = true
		}
		if d.Donor == donorURL && d.Err == "" {
			liveOK = true
		}
	}
	if !deadErr || !liveOK {
		t.Errorf("donor reports don't reflect the dead/live split: %+v", report.Donors)
	}
}
