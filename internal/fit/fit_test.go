package fit

import (
	"math"
	"testing"

	"fpsping/internal/dist"
	"fpsping/internal/stats"
)

func TestGumbelByMoments(t *testing.T) {
	g, err := GumbelByMoments(127, 0.74*127)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Mean()-127) > 1e-9 {
		t.Errorf("mean = %v", g.Mean())
	}
	if math.Abs(dist.StdDev(g)-0.74*127) > 1e-9 {
		t.Errorf("sd = %v", dist.StdDev(g))
	}
	if _, err := GumbelByMoments(1, 0); err == nil {
		t.Error("accepted zero stddev")
	}
}

func TestGumbelMLERecoversTruth(t *testing.T) {
	// Färber's client packet-size fit: Ext(80, 5.7).
	truth, _ := dist.NewGumbel(80, 5.7)
	r := dist.NewRNG(42)
	xs := dist.SampleN(truth, r, 50_000)
	got, err := GumbelMLE(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.A-80) > 0.2 {
		t.Errorf("a = %v, want ~80", got.A)
	}
	if math.Abs(got.B-5.7) > 0.2 {
		t.Errorf("b = %v, want ~5.7", got.B)
	}
}

func TestGumbelLeastSquaresRecoversTruth(t *testing.T) {
	// The Table-1 server packet-size fit: Ext(120, 36) by least squares on
	// the histogram density, exactly Färber's method.
	truth, _ := dist.NewGumbel(120, 36)
	r := dist.NewRNG(43)
	xs := dist.SampleN(truth, r, 100_000)
	h, err := stats.HistogramFromData(xs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := GumbelLeastSquares(h)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.A-120) > 3 {
		t.Errorf("a = %v, want ~120", got.A)
	}
	if math.Abs(got.B-36) > 3 {
		t.Errorf("b = %v, want ~36", got.B)
	}
}

func TestLogNormalMLE(t *testing.T) {
	truth, _ := dist.NewLogNormal(4.2, 0.3)
	r := dist.NewRNG(44)
	xs := dist.SampleN(truth, r, 50_000)
	got, err := LogNormalMLE(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Mu-4.2) > 0.01 || math.Abs(got.Sigma-0.3) > 0.01 {
		t.Errorf("got LogN(%v,%v)", got.Mu, got.Sigma)
	}
	if _, err := LogNormalMLE([]float64{1, -2, 3}); err == nil {
		t.Error("accepted negative data")
	}
}

func TestNormalAndExponentialMLE(t *testing.T) {
	r := dist.NewRNG(45)
	nTruth, _ := dist.NewNormal(30, 0.65*30)
	xs := dist.SampleN(nTruth, r, 50_000)
	n, err := NormalMLE(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(n.Mu-30) > 0.3 || math.Abs(n.Sigma-19.5) > 0.3 {
		t.Errorf("normal fit N(%v,%v)", n.Mu, n.Sigma)
	}

	eTruth, _ := dist.NewExponential(1.0 / 42)
	ys := dist.SampleN(eTruth, r, 50_000)
	e, err := ExponentialMLE(ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(1/e.Rate-42) > 1 {
		t.Errorf("exponential mean fit = %v", 1/e.Rate)
	}
}

func TestErlangOrderByCoVPaperValue(t *testing.T) {
	// §2.3.2: CoV 0.19 -> K = 28.
	k, err := ErlangOrderByCoV(0.19)
	if err != nil {
		t.Fatal(err)
	}
	if k != 28 {
		t.Errorf("K = %d, paper derives 28", k)
	}
	// And the three figure-1 candidates map back to plausible CoVs.
	for _, c := range []struct {
		k   int
		cov float64
	}{{15, 0.258}, {20, 0.224}, {25, 0.2}} {
		got, _ := ErlangOrderByCoV(c.cov)
		if got != c.k {
			t.Errorf("cov %v -> K=%d, want %d", c.cov, got, c.k)
		}
	}
	if _, err := ErlangOrderByCoV(0); err == nil {
		t.Error("accepted cov=0")
	}
}

func TestErlangTailFitRecoversOrder(t *testing.T) {
	// Data genuinely Erlang(18, ...): the tail fit should land close to 18
	// while the CoV method should as well (consistency case).
	truth, _ := dist.ErlangByMean(18, 1852)
	r := dist.NewRNG(46)
	xs := dist.SampleN(truth, r, 40_000)
	best, err := ErlangOrderByTail(xs, 40, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if best.K < 14 || best.K > 22 {
		t.Errorf("tail-fit K = %d, want ~18", best.K)
	}
	em, err := ErlangByMoments(xs)
	if err != nil {
		t.Fatal(err)
	}
	if em.K < 14 || em.K > 22 {
		t.Errorf("moment-fit K = %d, want ~18", em.K)
	}
}

func TestErlangTailVsCoVDisagreeOnMixedData(t *testing.T) {
	// The paper's central fitting observation: when the body is narrow but
	// the tail is heavier than Erlang-of-that-CoV, the CoV method overshoots
	// K while the tail method picks a smaller K. Build such data: mostly a
	// tight Erlang(40) body with a 3% heavier Erlang(6) tail component.
	body, _ := dist.ErlangByMean(40, 1800)
	tail, _ := dist.ErlangByMean(6, 2600)
	mix, err := dist.NewMixture([]dist.Distribution{body, tail}, []float64{0.97, 0.03})
	if err != nil {
		t.Fatal(err)
	}
	r := dist.NewRNG(47)
	xs := dist.SampleN(mix, r, 60_000)

	s := stats.Describe(xs)
	kCov, err := ErlangOrderByCoV(s.CoV())
	if err != nil {
		t.Fatal(err)
	}
	best, err := ErlangOrderByTail(xs, 50, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if best.K >= kCov {
		t.Errorf("expected tail fit K (%d) < CoV fit K (%d) on heavy-tailed data", best.K, kCov)
	}
}

func TestErlangTailFitScoresOrdered(t *testing.T) {
	truth, _ := dist.ErlangByMean(20, 1852)
	r := dist.NewRNG(48)
	xs := dist.SampleN(truth, r, 30_000)
	scores, best, err := ErlangTailFit(xs, []int{2, 20, 60}, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 3 {
		t.Fatalf("scores len %d", len(scores))
	}
	if best.K != 20 {
		t.Errorf("best K = %d, want 20 (scores %+v)", best.K, scores)
	}
	if !(scores[1].Score < scores[0].Score && scores[1].Score < scores[2].Score) {
		t.Errorf("true order should score best: %+v", scores)
	}
}

func TestRankByKSPrefersTrueFamily(t *testing.T) {
	truth, _ := dist.NewGumbel(55, 6)
	r := dist.NewRNG(49)
	xs := dist.SampleN(truth, r, 8000)

	gum, err := GumbelMLE(xs)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := NormalMLE(xs)
	if err != nil {
		t.Fatal(err)
	}
	logn, err := LogNormalMLE(xs)
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := RankByKS(xs, map[string]dist.Distribution{
		"extreme":   gum,
		"normal":    norm,
		"lognormal": logn,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Name != "extreme" {
		t.Errorf("best family = %s (D=%v), want extreme", ranked[0].Name, ranked[0].KS.D)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].KS.D < ranked[i-1].KS.D {
			t.Error("ranking not sorted by D")
		}
	}
}

func TestFitErrorPaths(t *testing.T) {
	if _, err := GumbelMLE(nil); err == nil {
		t.Error("GumbelMLE accepted empty")
	}
	if _, err := NormalMLE([]float64{1}); err == nil {
		t.Error("NormalMLE accepted single sample")
	}
	if _, err := ExponentialMLE([]float64{-1, -2}); err == nil {
		t.Error("ExponentialMLE accepted negative mean")
	}
	if _, _, err := ErlangTailFit(nil, []int{1}, 0); err == nil {
		t.Error("ErlangTailFit accepted empty data")
	}
	if _, err := ErlangOrderByTail([]float64{1, 2}, 0, 0); err == nil {
		t.Error("ErlangOrderByTail accepted maxK=0")
	}
	if _, err := ErlangByMoments([]float64{5}); err == nil {
		t.Error("ErlangByMoments accepted single sample")
	}
	if _, err := RankByKS(nil, nil); err == nil {
		t.Error("RankByKS accepted empty")
	}
}

func BenchmarkGumbelMLE(b *testing.B) {
	truth, _ := dist.NewGumbel(120, 36)
	xs := dist.SampleN(truth, dist.NewRNG(1), 10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GumbelMLE(xs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkErlangOrderByTail(b *testing.B) {
	truth, _ := dist.ErlangByMean(20, 1852)
	xs := dist.SampleN(truth, dist.NewRNG(2), 10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ErlangOrderByTail(xs, 30, 1e-3); err != nil {
			b.Fatal(err)
		}
	}
}
