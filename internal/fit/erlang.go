package fit

import (
	"fmt"
	"math"

	"fpsping/internal/dist"
	"fpsping/internal/stats"
)

// ErlangOrderByCoV returns the Erlang order implied by a coefficient of
// variation: K = round(1/CoV^2). For the paper's measured burst-size CoV of
// 0.19 this gives K = 28 (§2.3.2, first method).
func ErlangOrderByCoV(cov float64) (int, error) {
	if !(cov > 0) {
		return 0, fmt.Errorf("%w: cov %g", ErrBadInput, cov)
	}
	k := int(math.Round(1 / (cov * cov)))
	if k < 1 {
		k = 1
	}
	return k, nil
}

// ErlangTailScore measures how well Erlang(k, k/mean) matches the empirical
// tail of the data: the mean is fixed to the sample mean (as in Figure 1) and
// the score is the mean squared distance between log10 tails, evaluated at
// the sample points with empirical tail in [floor, 1). Lower is better.
//
// Fitting in log space weighs the tail heavily - exactly what the paper's
// "visual fit" of Figure 1 does on its logarithmic axis.
type ErlangTailScore struct {
	K     int
	Rate  float64
	Score float64
}

// ErlangTailFit evaluates candidate orders ks against the empirical tail of
// xs and returns the per-order scores (in the given order) plus the best one.
// floor discards the deepest, noisiest empirical tail points (Figure 1's
// measured TDF bottoms out near 1/n); 1e-4 is a sensible default for ~1e4
// samples.
func ErlangTailFit(xs []float64, ks []int, floor float64) ([]ErlangTailScore, ErlangTailScore, error) {
	if len(xs) == 0 || len(ks) == 0 {
		return nil, ErlangTailScore{}, fmt.Errorf("%w: empty input", ErrBadInput)
	}
	if floor <= 0 {
		floor = 1e-4
	}
	s := stats.Describe(xs)
	mean := s.Mean()
	if !(mean > 0) {
		return nil, ErlangTailScore{}, fmt.Errorf("%w: nonpositive mean", ErrBadInput)
	}
	ecdf, err := stats.NewECDF(xs)
	if err != nil {
		return nil, ErlangTailScore{}, err
	}
	// Probe the tail on a grid from the median to the largest observation.
	lo := ecdf.Quantile(0.5)
	hi := ecdf.Quantile(1)
	grid, tdf := ecdf.TDFSeries(lo, hi, 200)

	scores := make([]ErlangTailScore, 0, len(ks))
	best := ErlangTailScore{Score: math.Inf(1)}
	for _, k := range ks {
		e, err := dist.ErlangByMean(k, mean)
		if err != nil {
			return nil, ErlangTailScore{}, err
		}
		var sse float64
		var n int
		for i, x := range grid {
			et := tdf[i]
			if et < floor || et >= 1 {
				continue
			}
			mt := e.Tail(x)
			if mt <= 0 {
				mt = 1e-300
			}
			d := math.Log10(et) - math.Log10(mt)
			sse += d * d
			n++
		}
		if n == 0 {
			return nil, ErlangTailScore{}, fmt.Errorf("%w: no tail points above floor %g", ErrBadInput, floor)
		}
		sc := ErlangTailScore{K: k, Rate: e.Rate, Score: sse / float64(n)}
		scores = append(scores, sc)
		if sc.Score < best.Score {
			best = sc
		}
	}
	return scores, best, nil
}

// ErlangOrderByTail scans K = 1..maxK and returns the tail-fit order: the
// paper's second method, which for the measured burst sizes lands in the
// 15-20 range rather than the CoV-implied 28.
func ErlangOrderByTail(xs []float64, maxK int, floor float64) (ErlangTailScore, error) {
	if maxK < 1 {
		return ErlangTailScore{}, fmt.Errorf("%w: maxK %d", ErrBadInput, maxK)
	}
	ks := make([]int, maxK)
	for i := range ks {
		ks[i] = i + 1
	}
	_, best, err := ErlangTailFit(xs, ks, floor)
	return best, err
}

// ErlangByMoments fits Erlang(K, rate) by matching mean and CoV exactly in K
// (rounded) and then re-matching the mean: the paper's first method end to
// end.
func ErlangByMoments(xs []float64) (dist.Erlang, error) {
	if len(xs) < 2 {
		return dist.Erlang{}, fmt.Errorf("%w: need >= 2 samples", ErrBadInput)
	}
	s := stats.Describe(xs)
	if !(s.Mean() > 0) {
		return dist.Erlang{}, fmt.Errorf("%w: nonpositive mean", ErrBadInput)
	}
	k, err := ErlangOrderByCoV(s.CoV())
	if err != nil {
		return dist.Erlang{}, err
	}
	return dist.ErlangByMean(k, s.Mean())
}
