// Package fit estimates traffic-model parameters from data, reproducing the
// fitting procedures the paper and its sources used:
//
//   - Färber's least-squares fit of the extreme (Gumbel) density to a packet
//     size / inter-arrival histogram (§2.1, Table 1);
//   - moment and maximum-likelihood estimators for the Gumbel, lognormal,
//     normal and exponential laws he compared;
//   - the paper's own two ways of choosing the Erlang order K of the burst
//     size law (§2.3.2): matching the coefficient of variation (K = 28 for
//     CoV 0.19) versus fitting the tail distribution function (K ~ 15-20,
//     Figure 1).
//
// The repro note for this paper flags "weak statistics libraries for
// distribution fitting" as the Go gap; this package closes it with stdlib
// code only (the optimizer is xmath.NelderMead).
package fit

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"fpsping/internal/dist"
	"fpsping/internal/stats"
	"fpsping/internal/xmath"
)

// ErrBadInput reports unusable data (empty, degenerate, or out of domain).
var ErrBadInput = errors.New("fit: bad input")

// GumbelByMoments matches the Gumbel mean and standard deviation:
// b = sigma*sqrt(6)/pi, a = mean - EulerGamma*b.
func GumbelByMoments(mean, stddev float64) (dist.Gumbel, error) {
	if !(stddev > 0) {
		return dist.Gumbel{}, fmt.Errorf("%w: stddev %g", ErrBadInput, stddev)
	}
	b := stddev * math.Sqrt(6) / math.Pi
	return dist.NewGumbel(mean-dist.EulerGamma*b, b)
}

// GumbelLeastSquares fits Ext(a,b) to a histogram by minimizing the summed
// squared difference between the model density and the histogram density:
// Färber's procedure for Table 1. The moment fit seeds the search.
func GumbelLeastSquares(h *stats.Histogram) (dist.Gumbel, error) {
	if h.Total() == 0 {
		return dist.Gumbel{}, fmt.Errorf("%w: empty histogram", ErrBadInput)
	}
	centers := h.Centers()
	dens := h.Densities()
	mean, sd := histogramMoments(h)
	seed, err := GumbelByMoments(mean, sd)
	if err != nil {
		return dist.Gumbel{}, err
	}
	obj := func(p []float64) float64 {
		a, b := p[0], p[1]
		if b <= 0 {
			return math.Inf(1)
		}
		g := dist.Gumbel{A: a, B: b}
		var sse float64
		for i := range centers {
			d := g.PDF(centers[i]) - dens[i]
			sse += d * d
		}
		return sse
	}
	best, _ := xmath.NelderMead(obj, []float64{seed.A, seed.B}, xmath.NelderMeadOptions{MaxIter: 5000})
	return dist.NewGumbel(best[0], best[1])
}

// histogramMoments returns the count-weighted mean and standard deviation of
// a histogram's bin centers.
func histogramMoments(h *stats.Histogram) (mean, sd float64) {
	var n float64
	for i := 0; i < h.Bins(); i++ {
		c := float64(h.Count(i))
		n += c
		mean += c * h.Center(i)
	}
	if n == 0 {
		return math.NaN(), math.NaN()
	}
	mean /= n
	var ss float64
	for i := 0; i < h.Bins(); i++ {
		d := h.Center(i) - mean
		ss += float64(h.Count(i)) * d * d
	}
	return mean, math.Sqrt(ss / n)
}

// GumbelMLE computes the maximum-likelihood Ext(a,b) fit by solving the
// profile likelihood equation for b with Brent's method.
func GumbelMLE(xs []float64) (dist.Gumbel, error) {
	if len(xs) < 2 {
		return dist.Gumbel{}, fmt.Errorf("%w: need >= 2 samples", ErrBadInput)
	}
	s := stats.Describe(xs)
	mean := s.Mean()
	sd := s.StdDev()
	if !(sd > 0) {
		return dist.Gumbel{}, fmt.Errorf("%w: degenerate sample", ErrBadInput)
	}
	// Profile equation: g(b) = b - mean + sum(x e^{-x/b})/sum(e^{-x/b}) = 0.
	g := func(b float64) float64 {
		// Stabilize the exponentials around the max of -x/b.
		maxe := math.Inf(-1)
		for _, x := range xs {
			if v := -x / b; v > maxe {
				maxe = v
			}
		}
		var num, den float64
		for _, x := range xs {
			w := math.Exp(-x/b - maxe)
			num += x * w
			den += w
		}
		return b - mean + num/den
	}
	seed := sd * math.Sqrt(6) / math.Pi
	lo, hi := seed/10, seed*10
	for g(lo) > 0 && lo > 1e-12 {
		lo /= 10
	}
	for g(hi) < 0 && hi < 1e12 {
		hi *= 10
	}
	b, err := xmath.Brent(g, lo, hi, 1e-12*seed)
	if err != nil {
		return dist.Gumbel{}, fmt.Errorf("fit: gumbel MLE scale: %w", err)
	}
	// a = -b log( mean(e^{-x/b}) ), stabilized the same way.
	maxe := math.Inf(-1)
	for _, x := range xs {
		if v := -x / b; v > maxe {
			maxe = v
		}
	}
	var den float64
	for _, x := range xs {
		den += math.Exp(-x/b - maxe)
	}
	a := -b * (math.Log(den/float64(len(xs))) + maxe)
	return dist.NewGumbel(a, b)
}

// LogNormalMLE computes the closed-form lognormal fit (moments of log x).
func LogNormalMLE(xs []float64) (dist.LogNormal, error) {
	if len(xs) < 2 {
		return dist.LogNormal{}, fmt.Errorf("%w: need >= 2 samples", ErrBadInput)
	}
	var s stats.Summary
	for _, x := range xs {
		if x <= 0 {
			return dist.LogNormal{}, fmt.Errorf("%w: lognormal needs positive data", ErrBadInput)
		}
		s.Add(math.Log(x))
	}
	return dist.NewLogNormal(s.Mean(), s.StdDev())
}

// NormalMLE computes the closed-form Gaussian fit.
func NormalMLE(xs []float64) (dist.Normal, error) {
	if len(xs) < 2 {
		return dist.Normal{}, fmt.Errorf("%w: need >= 2 samples", ErrBadInput)
	}
	s := stats.Describe(xs)
	return dist.NewNormal(s.Mean(), s.StdDev())
}

// ExponentialMLE computes the closed-form exponential fit (rate = 1/mean).
func ExponentialMLE(xs []float64) (dist.Exponential, error) {
	if len(xs) == 0 {
		return dist.Exponential{}, fmt.Errorf("%w: empty sample", ErrBadInput)
	}
	s := stats.Describe(xs)
	if !(s.Mean() > 0) {
		return dist.Exponential{}, fmt.Errorf("%w: nonpositive mean", ErrBadInput)
	}
	return dist.NewExponential(1 / s.Mean())
}

// Candidate pairs a fitted model with its goodness of fit, for ranking the
// alternatives Färber compared (extreme vs. shifted lognormal vs. Weibull).
type Candidate struct {
	Name  string
	Model dist.Distribution
	KS    stats.KSResult
}

// RankByKS fits nothing itself; it scores the given models against the data
// with the one-sample KS test and returns them best (smallest D) first.
func RankByKS(xs []float64, models map[string]dist.Distribution) ([]Candidate, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("%w: empty sample", ErrBadInput)
	}
	out := make([]Candidate, 0, len(models))
	for name, m := range models {
		ks, err := stats.KolmogorovSmirnov(xs, m.CDF)
		if err != nil {
			return nil, err
		}
		out = append(out, Candidate{Name: name, Model: m, KS: ks})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].KS.D != out[j].KS.D {
			return out[i].KS.D < out[j].KS.D
		}
		return out[i].Name < out[j].Name
	})
	return out, nil
}
