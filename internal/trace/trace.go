// Package trace holds captured packet records and the measurement pipeline
// the paper applies to them in §2.2: per-direction packet statistics, burst
// detection and burst-size extraction (Table 3, Figure 1).
//
// The design borrows gopacket's vocabulary: packets carry a Flow made of two
// comparable Endpoints, so records group naturally in maps; a Trace can be
// consumed as a channel (the PacketSource idiom) or filtered in place.
package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"slices"
	"sort"
	"strconv"
)

// EndpointKind tags what role an endpoint plays in the gaming scenario.
type EndpointKind uint8

// Endpoint kinds.
const (
	KindUnknown EndpointKind = iota
	KindClient
	KindServer
	KindAggregator
	KindBackground
)

// String returns a short kind mnemonic.
func (k EndpointKind) String() string {
	switch k {
	case KindClient:
		return "client"
	case KindServer:
		return "server"
	case KindAggregator:
		return "agg"
	case KindBackground:
		return "bg"
	default:
		return "unknown"
	}
}

// Endpoint identifies one traffic endpoint; it is a comparable value usable
// as a map key (gopacket's Endpoint contract).
type Endpoint struct {
	Kind EndpointKind
	ID   uint16
}

// String renders kind:id.
func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.Kind, e.ID) }

// Client returns the client endpoint with the given id.
func Client(id int) Endpoint { return Endpoint{Kind: KindClient, ID: uint16(id)} }

// Server returns the (single) server endpoint.
func Server() Endpoint { return Endpoint{Kind: KindServer} }

// Flow is a directed src->dst pair; comparable, usable as a map key.
type Flow struct {
	Src, Dst Endpoint
}

// Reverse returns the opposite direction flow.
func (f Flow) Reverse() Flow { return Flow{Src: f.Dst, Dst: f.Src} }

// String renders src->dst.
func (f Flow) String() string { return f.Src.String() + "->" + f.Dst.String() }

// Direction classifies a flow relative to the server.
type Direction int

// Directions.
const (
	DirUnknown Direction = iota
	DirUpstream
	DirDownstream
)

// String names the direction.
func (d Direction) String() string {
	switch d {
	case DirUpstream:
		return "upstream"
	case DirDownstream:
		return "downstream"
	default:
		return "unknown"
	}
}

// Direction derives the flow direction from endpoint kinds.
func (f Flow) Direction() Direction {
	switch {
	case f.Dst.Kind == KindServer:
		return DirUpstream
	case f.Src.Kind == KindServer:
		return DirDownstream
	default:
		return DirUnknown
	}
}

// Record is one captured packet.
type Record struct {
	// Time is the capture timestamp in seconds.
	Time float64
	// Size is the packet size in bytes.
	Size int
	// Flow carries source and destination.
	Flow Flow
	// Burst is the server-tick sequence number for downstream packets, or
	// -1 when unknown (bursts must then be inferred; see GroupBursts).
	Burst int
}

// Trace is an append-only packet capture.
type Trace struct {
	records []Record
}

// ErrEmptyTrace reports an operation needing at least one record.
var ErrEmptyTrace = errors.New("trace: empty trace")

// New returns an empty trace.
func New() *Trace { return &Trace{} }

// Append adds one record.
func (t *Trace) Append(r Record) { t.records = append(t.records, r) }

// Len returns the number of records.
func (t *Trace) Len() int { return len(t.records) }

// Records exposes the raw records (treat as read-only).
func (t *Trace) Records() []Record { return t.records }

// SortByTime orders records chronologically (stable, so ties keep capture
// order — within-burst packet order survives, the §2.2 concern about packet
// order inside bursts).
func (t *Trace) SortByTime() {
	sort.SliceStable(t.records, func(i, j int) bool {
		return t.records[i].Time < t.records[j].Time
	})
}

// Filter returns a new trace with the records satisfying pred, in order.
func (t *Trace) Filter(pred func(Record) bool) *Trace {
	out := New()
	for _, r := range t.records {
		if pred(r) {
			out.Append(r)
		}
	}
	return out
}

// FilterDirection keeps one direction.
func (t *Trace) FilterDirection(d Direction) *Trace {
	return t.Filter(func(r Record) bool { return r.Flow.Direction() == d })
}

// FilterFlow keeps one exact flow.
func (t *Trace) FilterFlow(f Flow) *Trace {
	return t.Filter(func(r Record) bool { return r.Flow == f })
}

// Between keeps records with t0 <= Time < t1.
func (t *Trace) Between(t0, t1 float64) *Trace {
	return t.Filter(func(r Record) bool { return r.Time >= t0 && r.Time < t1 })
}

// Packets streams the records over a channel (gopacket's PacketSource
// idiom); the channel closes after the last record.
func (t *Trace) Packets() <-chan Record {
	ch := make(chan Record, 256)
	go func() {
		defer close(ch)
		for _, r := range t.records {
			ch <- r
		}
	}()
	return ch
}

// ByFlow groups record indices per flow; flows are map keys (gopacket's
// map-keyed Endpoint/Flow pattern).
func (t *Trace) ByFlow() map[Flow][]Record {
	out := map[Flow][]Record{}
	for _, r := range t.records {
		out[r.Flow] = append(out[r.Flow], r)
	}
	return out
}

// Duration returns last - first timestamp.
func (t *Trace) Duration() float64 {
	if len(t.records) == 0 {
		return 0
	}
	minT, maxT := t.records[0].Time, t.records[0].Time
	for _, r := range t.records {
		if r.Time < minT {
			minT = r.Time
		}
		if r.Time > maxT {
			maxT = r.Time
		}
	}
	return maxT - minT
}

// Clone deep-copies the trace.
func (t *Trace) Clone() *Trace {
	return &Trace{records: slices.Clone(t.records)}
}

// csvHeader is the column layout of the CSV codec.
var csvHeader = []string{"time", "size", "src_kind", "src_id", "dst_kind", "dst_id", "burst"}

// WriteCSV serializes the trace.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	row := make([]string, len(csvHeader))
	for _, r := range t.records {
		row[0] = strconv.FormatFloat(r.Time, 'g', 17, 64)
		row[1] = strconv.Itoa(r.Size)
		row[2] = strconv.Itoa(int(r.Flow.Src.Kind))
		row[3] = strconv.Itoa(int(r.Flow.Src.ID))
		row[4] = strconv.Itoa(int(r.Flow.Dst.Kind))
		row[5] = strconv.Itoa(int(r.Flow.Dst.ID))
		row[6] = strconv.Itoa(r.Burst)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	head, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if len(head) != len(csvHeader) {
		return nil, fmt.Errorf("trace: header has %d columns, want %d", len(head), len(csvHeader))
	}
	out := New()
	for line := 2; ; line++ {
		row, err := cr.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		rec, err := parseRow(row)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out.Append(rec)
	}
}

func parseRow(row []string) (Record, error) {
	var rec Record
	var err error
	if rec.Time, err = strconv.ParseFloat(row[0], 64); err != nil {
		return rec, err
	}
	if rec.Size, err = strconv.Atoi(row[1]); err != nil {
		return rec, err
	}
	ints := make([]int, 4)
	for i := 0; i < 4; i++ {
		if ints[i], err = strconv.Atoi(row[2+i]); err != nil {
			return rec, err
		}
	}
	rec.Flow = Flow{
		Src: Endpoint{Kind: EndpointKind(ints[0]), ID: uint16(ints[1])},
		Dst: Endpoint{Kind: EndpointKind(ints[2]), ID: uint16(ints[3])},
	}
	if rec.Burst, err = strconv.Atoi(row[6]); err != nil {
		return rec, err
	}
	return rec, nil
}
