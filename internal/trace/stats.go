package trace

import (
	"fmt"
	"math"
	"sort"

	"fpsping/internal/stats"
)

// BurstGroup is one reconstructed server burst: the packets of one tick.
type BurstGroup struct {
	// Time is the first packet's timestamp.
	Time float64
	// Records are the burst's packets in capture order.
	Records []Record
	// TotalBytes sums the packet sizes: the Figure 1 random variable.
	TotalBytes int
}

// GroupBurstsByID groups downstream records by their Burst tag. Records with
// Burst < 0 are ignored. Groups come out in time order.
func GroupBurstsByID(t *Trace) []BurstGroup {
	byID := map[int][]Record{}
	for _, r := range t.Records() {
		if r.Flow.Direction() == DirDownstream && r.Burst >= 0 {
			byID[r.Burst] = append(byID[r.Burst], r)
		}
	}
	out := make([]BurstGroup, 0, len(byID))
	for _, recs := range byID {
		g := BurstGroup{Time: recs[0].Time, Records: recs}
		for _, r := range recs {
			g.TotalBytes += r.Size
			if r.Time < g.Time {
				g.Time = r.Time
			}
		}
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// GroupBurstsByGap reconstructs bursts from timing alone, as one must with a
// raw capture: consecutive downstream packets separated by less than
// gapThreshold seconds belong to the same burst. The paper's own trace
// analysis works this way (§2.2: bursts "arrive at regular intervals").
func GroupBurstsByGap(t *Trace, gapThreshold float64) []BurstGroup {
	down := t.FilterDirection(DirDownstream)
	down.SortByTime()
	recs := down.Records()
	var out []BurstGroup
	for i := 0; i < len(recs); {
		g := BurstGroup{Time: recs[i].Time}
		j := i
		for ; j < len(recs); j++ {
			if j > i && recs[j].Time-recs[j-1].Time >= gapThreshold {
				break
			}
			g.Records = append(g.Records, recs[j])
			g.TotalBytes += recs[j].Size
		}
		out = append(out, g)
		i = j
	}
	return out
}

// DirectionStats is one row pair of Table 3 for a direction.
type DirectionStats struct {
	// PacketSize summarizes packet sizes in bytes.
	PacketSize stats.Summary
	// IAT summarizes inter-arrival times in seconds (per client flow
	// upstream; per burst downstream).
	IAT stats.Summary
	// BurstSize summarizes burst totals in bytes (downstream only).
	BurstSize stats.Summary
	// WithinBurstCoV is the mean per-burst packet-size CoV (§2.2 reports
	// 0.05-0.11, much below the overall CoV).
	WithinBurstCoV float64
}

// TableStats is the full Table 3 readout of a trace.
type TableStats struct {
	Upstream   DirectionStats
	Downstream DirectionStats
	// Bursts is the number of reconstructed bursts.
	Bursts int
	// PacketsPerBurst summarizes the burst packet counts (the paper checks
	// "all bursts contain 1 packet for each of the players").
	PacketsPerBurst stats.Summary
}

// Analyze computes the Table 3 statistics. Bursts are grouped by ID when
// tags are present, otherwise by gap with the given threshold.
func Analyze(t *Trace, gapThreshold float64) (TableStats, error) {
	if t.Len() == 0 {
		return TableStats{}, ErrEmptyTrace
	}
	var out TableStats

	// Upstream: packet sizes pooled; IATs per client flow, pooled.
	up := t.FilterDirection(DirUpstream)
	up.SortByTime()
	for _, r := range up.Records() {
		out.Upstream.PacketSize.Add(float64(r.Size))
	}
	for _, recs := range up.ByFlow() {
		for i := 1; i < len(recs); i++ {
			out.Upstream.IAT.Add(recs[i].Time - recs[i-1].Time)
		}
	}

	// Downstream: per-packet sizes, burst grouping, burst IATs and totals.
	down := t.FilterDirection(DirDownstream)
	for _, r := range down.Records() {
		out.Downstream.PacketSize.Add(float64(r.Size))
	}
	groups := GroupBurstsByID(t)
	if len(groups) == 0 {
		groups = GroupBurstsByGap(t, gapThreshold)
	}
	out.Bursts = len(groups)
	var withinSum float64
	var withinN int
	for i, g := range groups {
		out.Downstream.BurstSize.Add(float64(g.TotalBytes))
		out.PacketsPerBurst.Add(float64(len(g.Records)))
		if i > 0 {
			out.Downstream.IAT.Add(g.Time - groups[i-1].Time)
		}
		if len(g.Records) > 1 {
			var s stats.Summary
			for _, r := range g.Records {
				s.Add(float64(r.Size))
			}
			if c := s.CoV(); !math.IsNaN(c) && !math.IsInf(c, 0) {
				withinSum += c
				withinN++
			}
		}
	}
	if withinN > 0 {
		out.Downstream.WithinBurstCoV = withinSum / float64(withinN)
	}
	return out, nil
}

// BurstTotals extracts burst sizes (bytes) for Figure 1 style tail analysis.
func BurstTotals(groups []BurstGroup) []float64 {
	out := make([]float64, len(groups))
	for i, g := range groups {
		out[i] = float64(g.TotalBytes)
	}
	return out
}

// FormatTable renders the stats in the paper's Table 3 layout (sizes in
// bytes, times in ms).
func (ts TableStats) FormatTable() string {
	ms := func(s stats.Summary) string {
		return fmt.Sprintf("%.1f ms (CoV %.2f)", 1e3*s.Mean(), s.CoV())
	}
	by := func(s stats.Summary) string {
		return fmt.Sprintf("%.0f B (CoV %.2f)", s.Mean(), s.CoV())
	}
	return fmt.Sprintf(
		"                       Server to client        Client to server\n"+
			"Packet size            %-24s%s\n"+
			"Burst inter-arrival    %-24s%s\n"+
			"Burst size             %-24s-\n"+
			"Within-burst size CoV  %.3f\n"+
			"Bursts                 %d (packets/burst mean %.2f)\n",
		by(ts.Downstream.PacketSize), by(ts.Upstream.PacketSize),
		ms(ts.Downstream.IAT), ms(ts.Upstream.IAT),
		by(ts.Downstream.BurstSize),
		ts.Downstream.WithinBurstCoV,
		ts.Bursts, ts.PacketsPerBurst.Mean(),
	)
}

// OrderStability measures how often consecutive bursts deliver their packets
// in the same client order: the §2.2 question of whether "the order of the
// packets (at the moment the server sends the burst) is the same for each
// burst" - Färber's per-client inter-arrival model tacitly assumes it is,
// and the paper warns it may not be. 1 means perfectly stable order; values
// near zero mean the order is reshuffled every tick.
func OrderStability(groups []BurstGroup) float64 {
	if len(groups) < 2 {
		return math.NaN()
	}
	same := 0
	comparable := 0
	prev := clientOrder(groups[0])
	for _, g := range groups[1:] {
		cur := clientOrder(g)
		if len(cur) == len(prev) {
			comparable++
			if equalOrder(prev, cur) {
				same++
			}
		}
		prev = cur
	}
	if comparable == 0 {
		return math.NaN()
	}
	return float64(same) / float64(comparable)
}

func clientOrder(g BurstGroup) []uint16 {
	out := make([]uint16, len(g.Records))
	for i, r := range g.Records {
		out[i] = r.Flow.Dst.ID
	}
	return out
}

func equalOrder(a, b []uint16) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
