package trace

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"fpsping/internal/dist"
)

func TestEndpointsAndFlows(t *testing.T) {
	c := Client(3)
	s := Server()
	up := Flow{Src: c, Dst: s}
	if up.Direction() != DirUpstream {
		t.Error("client->server should be upstream")
	}
	if up.Reverse().Direction() != DirDownstream {
		t.Error("server->client should be downstream")
	}
	if (Flow{Src: c, Dst: Client(4)}).Direction() != DirUnknown {
		t.Error("client->client should be unknown")
	}
	// Comparable map keys.
	m := map[Flow]int{up: 1, up.Reverse(): 2}
	if m[up] != 1 || m[Flow{Src: s, Dst: c}] != 2 {
		t.Error("flow map keys broken")
	}
	if up.String() != "client:3->server:0" {
		t.Errorf("flow string %q", up.String())
	}
	if DirUpstream.String() != "upstream" || DirDownstream.String() != "downstream" || DirUnknown.String() != "unknown" {
		t.Error("direction strings")
	}
}

func buildTestTrace() *Trace {
	tr := New()
	// Three bursts of 2 clients each, 47ms apart, plus client traffic.
	for b := 0; b < 3; b++ {
		t0 := 0.001 + 0.047*float64(b)
		for c := 0; c < 2; c++ {
			tr.Append(Record{
				Time:  t0 + 0.0001*float64(c),
				Size:  150 + 10*c,
				Flow:  Flow{Src: Server(), Dst: Client(c)},
				Burst: b,
			})
		}
	}
	for c := 0; c < 2; c++ {
		for i := 0; i < 4; i++ {
			tr.Append(Record{
				Time:  0.005*float64(c) + 0.030*float64(i),
				Size:  73,
				Flow:  Flow{Src: Client(c), Dst: Server()},
				Burst: -1,
			})
		}
	}
	tr.SortByTime()
	return tr
}

func TestTraceFilters(t *testing.T) {
	tr := buildTestTrace()
	if tr.Len() != 14 {
		t.Fatalf("len = %d", tr.Len())
	}
	if got := tr.FilterDirection(DirDownstream).Len(); got != 6 {
		t.Errorf("downstream = %d", got)
	}
	if got := tr.FilterDirection(DirUpstream).Len(); got != 8 {
		t.Errorf("upstream = %d", got)
	}
	f := Flow{Src: Client(0), Dst: Server()}
	if got := tr.FilterFlow(f).Len(); got != 4 {
		t.Errorf("flow filter = %d", got)
	}
	if got := tr.Between(0, 0.03).Len(); got == 0 || got == tr.Len() {
		t.Errorf("between = %d", got)
	}
	if d := tr.Duration(); d <= 0 {
		t.Errorf("duration = %v", d)
	}
}

func TestPacketsChannel(t *testing.T) {
	tr := buildTestTrace()
	n := 0
	var last float64 = -1
	for r := range tr.Packets() {
		if r.Time < last {
			t.Fatal("channel not in time order")
		}
		last = r.Time
		n++
	}
	if n != tr.Len() {
		t.Errorf("streamed %d of %d", n, tr.Len())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := buildTestTrace()
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("round trip %d != %d", back.Len(), tr.Len())
	}
	for i, r := range back.Records() {
		if r != tr.Records()[i] {
			t.Fatalf("record %d: %+v != %+v", i, r, tr.Records()[i])
		}
	}
}

func TestCSVRoundTripProperty(t *testing.T) {
	f := func(times []uint32, sizes []uint16) bool {
		tr := New()
		n := min(len(times), len(sizes))
		for i := 0; i < n; i++ {
			tr.Append(Record{
				Time:  float64(times[i]) / 1000,
				Size:  int(sizes[i]%1400) + 1,
				Flow:  Flow{Src: Server(), Dst: Client(i % 12)},
				Burst: i / 12,
			})
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		if err != nil || back.Len() != tr.Len() {
			return false
		}
		for i := range back.Records() {
			if back.Records()[i] != tr.Records()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("")); err == nil {
		t.Error("accepted empty input")
	}
	if _, err := ReadCSV(bytes.NewBufferString("a,b\n")); err == nil {
		t.Error("accepted short header")
	}
	bad := "time,size,src_kind,src_id,dst_kind,dst_id,burst\nx,1,1,1,2,0,-1\n"
	if _, err := ReadCSV(bytes.NewBufferString(bad)); err == nil {
		t.Error("accepted unparsable time")
	}
}

func TestGroupBurstsByID(t *testing.T) {
	tr := buildTestTrace()
	groups := GroupBurstsByID(tr)
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	for i, g := range groups {
		if len(g.Records) != 2 {
			t.Errorf("burst %d has %d packets", i, len(g.Records))
		}
		if g.TotalBytes != 150+160 {
			t.Errorf("burst %d total %d", i, g.TotalBytes)
		}
		if i > 0 && g.Time <= groups[i-1].Time {
			t.Error("groups not time ordered")
		}
	}
}

func TestGroupBurstsByGapMatchesID(t *testing.T) {
	tr := buildTestTrace()
	byGap := GroupBurstsByGap(tr, 0.010)
	byID := GroupBurstsByID(tr)
	if len(byGap) != len(byID) {
		t.Fatalf("gap %d vs id %d groups", len(byGap), len(byID))
	}
	for i := range byGap {
		if byGap[i].TotalBytes != byID[i].TotalBytes {
			t.Errorf("burst %d totals differ", i)
		}
	}
	// A tiny threshold splits everything apart.
	tiny := GroupBurstsByGap(tr, 1e-6)
	if len(tiny) != 6 {
		t.Errorf("tiny threshold groups = %d, want 6", len(tiny))
	}
}

func TestAnalyzeTable3Pipeline(t *testing.T) {
	// Generate a synthetic 12-player session shaped like the paper's LAN
	// trace directly at the trace level.
	r := dist.NewRNG(7)
	tr := New()
	sizeLaw, _ := dist.LogNormalByMoments(154, 0.28)
	tick := 0.0
	for b := 0; b < 2000; b++ {
		for c := 0; c < 12; c++ {
			tr.Append(Record{
				Time:  tick + 1e-4*float64(c),
				Size:  int(sizeLaw.Sample(r) + 0.5),
				Flow:  Flow{Src: Server(), Dst: Client(c)},
				Burst: b,
			})
		}
		tick += 0.047
	}
	for c := 0; c < 12; c++ {
		for i := 0; i < 3000; i++ {
			tr.Append(Record{
				Time:  0.001*float64(c) + 0.030*float64(i),
				Size:  73,
				Flow:  Flow{Src: Client(c), Dst: Server()},
				Burst: -1,
			})
		}
	}
	tr.SortByTime()
	ts, err := Analyze(tr, 0.010)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Bursts != 2000 {
		t.Errorf("bursts = %d", ts.Bursts)
	}
	if math.Abs(ts.Downstream.PacketSize.Mean()-154) > 2 {
		t.Errorf("server packet mean %v", ts.Downstream.PacketSize.Mean())
	}
	if math.Abs(ts.Downstream.IAT.Mean()-0.047) > 1e-6 {
		t.Errorf("burst IAT mean %v", ts.Downstream.IAT.Mean())
	}
	if math.Abs(ts.Downstream.BurstSize.Mean()-12*154) > 25 {
		t.Errorf("burst size mean %v", ts.Downstream.BurstSize.Mean())
	}
	if math.Abs(ts.Upstream.PacketSize.Mean()-73) > 1e-9 {
		t.Errorf("client packet mean %v", ts.Upstream.PacketSize.Mean())
	}
	if math.Abs(ts.Upstream.IAT.Mean()-0.030) > 1e-9 {
		t.Errorf("client IAT mean %v", ts.Upstream.IAT.Mean())
	}
	if ts.PacketsPerBurst.Mean() != 12 {
		t.Errorf("packets per burst %v", ts.PacketsPerBurst.Mean())
	}
	if ts.Downstream.WithinBurstCoV <= 0 || ts.Downstream.WithinBurstCoV >= ts.Downstream.PacketSize.CoV() {
		t.Errorf("within-burst CoV %v should be positive and below overall %v",
			ts.Downstream.WithinBurstCoV, ts.Downstream.PacketSize.CoV())
	}
	if s := ts.FormatTable(); len(s) < 100 {
		t.Errorf("format too short: %q", s)
	}
	// Burst totals feed Figure 1.
	groups := GroupBurstsByID(tr)
	totals := BurstTotals(groups)
	if len(totals) != 2000 {
		t.Errorf("totals = %d", len(totals))
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	if _, err := Analyze(New(), 0.01); err != ErrEmptyTrace {
		t.Errorf("want ErrEmptyTrace, got %v", err)
	}
}

func TestClone(t *testing.T) {
	tr := buildTestTrace()
	cp := tr.Clone()
	cp.Append(Record{Time: 99})
	if cp.Len() != tr.Len()+1 {
		t.Error("clone not independent")
	}
}

func BenchmarkAnalyze(b *testing.B) {
	r := dist.NewRNG(1)
	tr := New()
	sizeLaw, _ := dist.LogNormalByMoments(154, 0.28)
	for bi := 0; bi < 5000; bi++ {
		for c := 0; c < 12; c++ {
			tr.Append(Record{
				Time: 0.047*float64(bi) + 1e-4*float64(c),
				Size: int(sizeLaw.Sample(r)), Flow: Flow{Src: Server(), Dst: Client(c)}, Burst: bi,
			})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(tr, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}

func TestOrderStability(t *testing.T) {
	// Stable order: every burst delivers clients 0,1,2 in sequence.
	stable := New()
	for b := 0; b < 50; b++ {
		for c := 0; c < 3; c++ {
			stable.Append(Record{
				Time: 0.05*float64(b) + 0.001*float64(c), Size: 100,
				Flow: Flow{Src: Server(), Dst: Client(c)}, Burst: b,
			})
		}
	}
	g := GroupBurstsByID(stable)
	if s := OrderStability(g); s != 1 {
		t.Errorf("stable order score %v", s)
	}
	// Shuffled order: rotate the client order per burst.
	shuffled := New()
	for b := 0; b < 50; b++ {
		for i := 0; i < 3; i++ {
			c := (i + b) % 3
			shuffled.Append(Record{
				Time: 0.05*float64(b) + 0.001*float64(i), Size: 100,
				Flow: Flow{Src: Server(), Dst: Client(c)}, Burst: b,
			})
		}
	}
	g2 := GroupBurstsByID(shuffled)
	if s := OrderStability(g2); s != 0 {
		t.Errorf("rotated order score %v", s)
	}
	if !math.IsNaN(OrderStability(nil)) {
		t.Error("empty groups should give NaN")
	}
}
