package experiments

import (
	"fmt"
	"math"
	"strings"

	"fpsping/internal/core"
	"fpsping/internal/dist"
	"fpsping/internal/fit"
	"fpsping/internal/runner"
	"fpsping/internal/stats"
)

// Series is one labeled curve of a figure.
type Series struct {
	// Label names the curve as in the paper's legend.
	Label string
	// X and Y are the coordinates.
	X, Y []float64
}

// Figure1Result reproduces Figure 1: the measured burst-size TDF against
// mean-fitted Erlang tails of order 15, 20 and 25, plus the two order
// selection methods of §2.3.2.
type Figure1Result struct {
	// Empirical is the measured tail distribution function.
	Empirical Series
	// Erlangs are the candidate tails with their paper legends.
	Erlangs []Series
	// MeanBurst is the measured mean burst size (paper: 1852 B).
	MeanBurst float64
	// KByCoV is the Erlang order from the CoV method (paper derives 28).
	KByCoV int
	// KByTail is the order from the tail fit (paper reads 15-20 off the
	// figure).
	KByTail int
	// PaperRates are the legend rates for K=15/20/25: 0.008/0.011/0.013.
	PaperRates []float64
	// FittedRates are ours for the same orders.
	FittedRates []float64
}

// Render summarizes the figure (series lengths plus the calibration story).
func (f Figure1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mean burst size: %.0f B (paper 1852 B)\n", f.MeanBurst)
	for i, s := range f.Erlangs {
		fmt.Fprintf(&b, "curve %-12s rate %.4f /B (paper legend %.3f)\n",
			s.Label, f.FittedRates[i], f.PaperRates[i])
	}
	fmt.Fprintf(&b, "Erlang order by CoV method:  K = %d (paper: 28)\n", f.KByCoV)
	fmt.Fprintf(&b, "Erlang order by tail fit:    K = %d (paper: 15-20)\n", f.KByTail)
	fmt.Fprintf(&b, "TDF series: %d points on [%g, %g] B\n",
		len(f.Empirical.X), f.Empirical.X[0], f.Empirical.X[len(f.Empirical.X)-1])
	return section("Figure 1 - burst-size TDF vs Erlang tails", b.String())
}

// Figure1 derives the figure from the Table 3 simulation's burst totals (the
// simulation replicas and the order fits run on up to jobs workers).
func Figure1(seed uint64, duration float64, jobs int) (Figure1Result, error) {
	var out Figure1Result
	t3, err := Table3(seed, duration, jobs)
	if err != nil {
		return out, err
	}
	totals := t3.BurstTotals
	sum := stats.Describe(totals)
	out.MeanBurst = sum.Mean()

	ecdf, err := stats.NewECDF(totals)
	if err != nil {
		return out, err
	}
	xs, tdf := ecdf.TDFSeries(0, 4000, 81) // the paper's 0..4000 B axis
	out.Empirical = Series{Label: "Experimental", X: xs, Y: tdf}

	out.PaperRates = []float64{0.008, 0.011, 0.013}
	for _, k := range []int{15, 20, 25} {
		e, err := dist.ErlangByMean(k, sum.Mean())
		if err != nil {
			return out, err
		}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = e.Tail(x)
		}
		out.Erlangs = append(out.Erlangs, Series{
			Label: fmt.Sprintf("E(%d,%.3f)", k, e.Rate),
			X:     xs, Y: ys,
		})
		out.FittedRates = append(out.FittedRates, e.Rate)
	}

	kCov, err := fit.ErlangOrderByCoV(sum.CoV())
	if err != nil {
		return out, err
	}
	out.KByCoV = kCov
	best, err := fit.ErlangOrderByTail(totals, 60, 5e-4)
	if err != nil {
		return out, err
	}
	out.KByTail = best.K
	return out, nil
}

// FigureRTTResult is a Figure 3 or Figure 4 style RTT-vs-load chart.
type FigureRTTResult struct {
	// Title echoes the paper caption.
	Title string
	// Curves are the RTT-vs-load series (RTT in ms as in the paper axes).
	Curves []Series
	// Notes carries shape observations (ratios, orderings).
	Notes []string
}

// Render formats the curves as aligned columns.
func (f FigureRTTResult) Render() string {
	var b strings.Builder
	b.WriteString("load%  ")
	for _, c := range f.Curves {
		fmt.Fprintf(&b, "%14s", c.Label)
	}
	b.WriteString("\n")
	for i := range f.Curves[0].X {
		fmt.Fprintf(&b, "%5.0f  ", 100*f.Curves[0].X[i])
		for _, c := range f.Curves {
			if i < len(c.Y) {
				fmt.Fprintf(&b, "%12.1fms", c.Y[i])
			} else {
				fmt.Fprintf(&b, "%14s", "-")
			}
		}
		b.WriteString("\n")
	}
	for _, n := range f.Notes {
		b.WriteString(n)
		b.WriteString("\n")
	}
	return section(f.Title, b.String())
}

// Figure3 computes the 99.999% RTT quantile against downlink load for
// K = 2, 9, 20 with PS = 125 B and T = 60 ms (DSL defaults of §4). The three
// K-curves run concurrently and each curve's load grid is itself swept in
// parallel.
func Figure3(jobs int) (FigureRTTResult, error) {
	out := FigureRTTResult{Title: "Figure 3 - impact of Erlang order K (PS=125B, IAT=60ms)"}
	loads := core.PaperLoadGrid()
	curves, err := runner.Items([]int{2, 9, 20}, runner.Options{Workers: jobs},
		func(_, k int) (Series, error) {
			m := core.DSLDefaults()
			m.ServerPacketBytes = 125
			m.BurstInterval = 0.060
			m.ErlangOrder = k
			pts, err := m.SweepLoadsParallel(loads, jobs)
			if err != nil {
				return Series{}, err
			}
			s := Series{Label: fmt.Sprintf("K = %d", k)}
			for _, p := range pts {
				s.X = append(s.X, p.Load)
				s.Y = append(s.Y, 1000*p.RTT)
			}
			return s, nil
		})
	if err != nil {
		return out, err
	}
	out.Curves = curves
	out.Notes = append(out.Notes,
		"paper reading: low K is unacceptable even at moderate load; curves rise to the rho->1 asymptote")
	return out, nil
}

// Figure4 computes the quantile for T = 40 vs 60 ms with PS = 125 B, K = 9,
// and reports the queueing-part ratio the paper calls "about 3/2". The two
// T-curves run concurrently over parallel load sweeps.
func Figure4(jobs int) (FigureRTTResult, error) {
	out := FigureRTTResult{Title: "Figure 4 - impact of the inter-arrival time (PS=125B, K=9)"}
	loads := core.PaperLoadGrid()
	tValues := []float64{40, 60}
	type curve struct {
		s Series
		m core.Model
	}
	curves, err := runner.Items(tValues, runner.Options{Workers: jobs},
		func(_ int, tms float64) (curve, error) {
			m := core.DSLDefaults()
			m.ServerPacketBytes = 125
			m.BurstInterval = tms / 1000
			m.ErlangOrder = 9
			pts, err := m.SweepLoadsParallel(loads, jobs)
			if err != nil {
				return curve{}, err
			}
			s := Series{Label: fmt.Sprintf("IAT = %.0fms", tms)}
			for _, p := range pts {
				s.X = append(s.X, p.Load)
				s.Y = append(s.Y, 1000*p.RTT)
			}
			return curve{s: s, m: m}, nil
		})
	if err != nil {
		return out, err
	}
	for _, c := range curves {
		out.Curves = append(out.Curves, c.s)
	}
	// Ratio of queueing parts at a mid load.
	m40 := curves[0].m.WithDownlinkLoad(0.4)
	m60 := curves[1].m.WithDownlinkLoad(0.4)
	q40, err := m40.RTTQuantile()
	if err != nil {
		return out, err
	}
	q60, err := m60.RTTQuantile()
	if err != nil {
		return out, err
	}
	ratio := (q60 - m60.FixedPart()) / (q40 - m40.FixedPart())
	out.Notes = append(out.Notes, fmt.Sprintf(
		"queueing-part ratio T=60/T=40 at 40%% load: %.3f (paper: about 3/2)", ratio))
	if math.Abs(ratio-1.5) > 0.15 {
		out.Notes = append(out.Notes, "WARNING: ratio off the paper's 3/2 claim")
	}
	return out, nil
}
