package experiments

import (
	"fmt"
	"strings"

	"fpsping/internal/core"
	"fpsping/internal/runner"
)

// DimRow is one K's dimensioning outcome against the paper's numbers.
type DimRow struct {
	K             int
	MaxLoad       float64
	MaxGamers     int
	PaperLoad     float64
	PaperGamers   int
	RTTAtMaxMilli float64
}

// DimensioningResult reproduces §4's closing rule: PS = 125 B, T = 40 ms,
// C = 5 Mbit/s, RTT bound 50 ms ("excellent game play" per Färber) gives
// rho_max ~ 20/40/60% and Nmax = 40/80/120 for K = 2/9/20.
type DimensioningResult struct {
	Bound float64
	Rows  []DimRow
}

// Render formats the rule.
func (d DimensioningResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "RTT bound %.0f ms, PS=125B, T=40ms, C=5Mbit/s\n", 1000*d.Bound)
	fmt.Fprintf(&b, "%-5s %14s %14s %12s %12s %12s\n",
		"K", "rho_max", "paper rho_max", "Nmax", "paper Nmax", "RTT@max")
	for _, r := range d.Rows {
		fmt.Fprintf(&b, "%-5d %13.1f%% %13.0f%% %12d %12d %10.1fms\n",
			r.K, 100*r.MaxLoad, 100*r.PaperLoad, r.MaxGamers, r.PaperGamers, r.RTTAtMaxMilli)
	}
	b.WriteString("paper conclusion: the tolerable load is surprisingly low in most circumstances\n")
	return section("§4 dimensioning rule", b.String())
}

// Dimensioning runs the rule for the three K values, one concurrent job per
// K (each MaxLoad search is independent).
func Dimensioning(jobs int) (DimensioningResult, error) {
	out := DimensioningResult{Bound: 0.050}
	paper := map[int]struct {
		load   float64
		gamers int
	}{
		2:  {0.20, 40},
		9:  {0.40, 80},
		20: {0.60, 120},
	}
	rows, err := runner.Items([]int{2, 9, 20}, runner.Options{Workers: jobs},
		func(_, k int) (DimRow, error) {
			m := core.DSLDefaults()
			m.ServerPacketBytes = 125
			m.BurstInterval = 0.040
			m.ErlangOrder = k
			res, err := m.MaxLoad(out.Bound)
			if err != nil {
				return DimRow{}, fmt.Errorf("dimensioning K=%d: %w", k, err)
			}
			return DimRow{
				K:             k,
				MaxLoad:       res.MaxDownlinkLoad,
				MaxGamers:     res.MaxGamers,
				PaperLoad:     paper[k].load,
				PaperGamers:   paper[k].gamers,
				RTTAtMaxMilli: 1000 * res.RTTAtMax,
			}, nil
		})
	if err != nil {
		return out, err
	}
	out.Rows = rows
	return out, nil
}

// RobustnessResult verifies the three §4 robustness statements:
// PS-invariance of the queueing quantile at a given load, capacity
// invariance given load, and the uplink crossover when PS < PC.
type RobustnessResult struct {
	// QueueingByPS maps server packet size -> queueing-part quantile (ms)
	// at 50% downlink load, K=9, T=60ms.
	QueueingByPS map[float64]float64
	// CapacityShiftMilli is the RTT change from quadrupling C at fixed
	// load; SerializationShiftMilli is the serialization part of it.
	CapacityShiftMilli, SerializationShiftMilli float64
	// UplinkCrossoverLoad is the downlink load at which the uplink
	// saturates for PS=75 < PC=80 (paper: 75/80).
	UplinkCrossoverLoad float64
	// MaxStableLoadPS75 is the dimensioning ceiling observed for PS=75.
	MaxStableLoadPS75 float64
}

// Render formats the checks.
func (r RobustnessResult) Render() string {
	var b strings.Builder
	b.WriteString("queueing-part 99.999% quantile at 50% load (K=9, T=60ms):\n")
	for _, ps := range []float64{125, 100, 75} {
		fmt.Fprintf(&b, "  PS = %3.0f B: %.1f ms\n", ps, r.QueueingByPS[ps])
	}
	fmt.Fprintf(&b, "capacity x4 at fixed load: RTT shift %.3f ms vs serialization shift %.3f ms\n",
		r.CapacityShiftMilli, r.SerializationShiftMilli)
	fmt.Fprintf(&b, "uplink crossover for PS=75 < PC=80: downlink load %.4f (paper: 75/80 = 0.9375)\n",
		r.UplinkCrossoverLoad)
	fmt.Fprintf(&b, "observed stability ceiling for PS=75: %.4f\n", r.MaxStableLoadPS75)
	return section("§4 robustness checks", b.String())
}

// Robustness runs the three checks; the PS sweep fans out one job per packet
// size.
func Robustness(jobs int) (RobustnessResult, error) {
	out := RobustnessResult{QueueingByPS: map[float64]float64{}}
	psValues := []float64{125, 100, 75}
	queueing, err := runner.Items(psValues, runner.Options{Workers: jobs},
		func(_ int, ps float64) (float64, error) {
			m := core.DSLDefaults()
			m.ServerPacketBytes = ps
			m.BurstInterval = 0.060
			m.ErlangOrder = 9
			m = m.WithDownlinkLoad(0.5)
			q, err := m.RTTQuantile()
			if err != nil {
				return 0, err
			}
			return 1000 * (q - m.FixedPart()), nil
		})
	if err != nil {
		return out, err
	}
	for i, ps := range psValues {
		out.QueueingByPS[ps] = queueing[i]
	}

	base := core.DSLDefaults()
	base.ServerPacketBytes = 125
	base.BurstInterval = 0.060
	base.ErlangOrder = 9
	base = base.WithDownlinkLoad(0.4)
	qBase, err := base.RTTQuantile()
	if err != nil {
		return out, err
	}
	fast := base
	fast.AggregateRate *= 4
	fast = fast.WithDownlinkLoad(0.4)
	qFast, err := fast.RTTQuantile()
	if err != nil {
		return out, err
	}
	out.CapacityShiftMilli = 1000 * (qBase - qFast)
	out.SerializationShiftMilli = 1000 * (base.FixedPart() - fast.FixedPart())

	// Uplink crossover: rho_up = rho_down * (PC/PS); saturation at
	// rho_down = PS/PC.
	out.UplinkCrossoverLoad = 75.0 / 80.0
	m75 := core.DSLDefaults()
	m75.ServerPacketBytes = 75
	m75.BurstInterval = 0.060
	m75.ErlangOrder = 9
	res, err := m75.MaxLoad(10) // huge bound: find the stability ceiling
	if err != nil {
		return out, err
	}
	out.MaxStableLoadPS75 = res.MaxDownlinkLoad
	return out, nil
}

// AblationRow compares the inversion variants at one load.
type AblationRow struct {
	Load                                               float64
	FullMilli, DominantMilli, ChernoffMilli, SumQMilli float64
}

// AblationResult compares the §3.3 approximation chain: full Erlang-mix
// inversion (our default), dominant-pole-only, the Chernoff bound of
// eq. (36) and the sum-of-quantiles shortcut.
type AblationResult struct {
	Rows []AblationRow
}

// Render formats the comparison.
func (a AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s %12s %12s %12s %12s\n", "load", "full", "dominant", "chernoff", "sum-of-q")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%5.0f%% %10.1fms %10.1fms %10.1fms %10.1fms\n",
			100*r.Load, r.FullMilli, r.DominantMilli, r.ChernoffMilli, r.SumQMilli)
	}
	b.WriteString("expected: chernoff and sum-of-quantiles upper-bound full; dominant tracks full at high load\n")
	return section("§3.3 ablation - 99.999% RTT quantile by method (PS=125B, T=60ms, K=9)", b.String())
}

// Ablation evaluates the four methods across loads, one concurrent job per
// load point.
func Ablation(jobs int) (AblationResult, error) {
	var out AblationResult
	rows, err := runner.Items([]float64{0.2, 0.4, 0.6, 0.8}, runner.Options{Workers: jobs},
		func(_ int, rho float64) (AblationRow, error) {
			m := core.DSLDefaults()
			m.ServerPacketBytes = 125
			m.BurstInterval = 0.060
			m.ErlangOrder = 9
			m = m.WithDownlinkLoad(rho)
			full, err := m.RTTQuantile()
			if err != nil {
				return AblationRow{}, err
			}
			dom, err := m.RTTQuantileDominantPole()
			if err != nil {
				return AblationRow{}, err
			}
			cher, err := m.RTTQuantileChernoff()
			if err != nil {
				return AblationRow{}, err
			}
			sq, err := m.RTTQuantileSumOfQuantiles()
			if err != nil {
				return AblationRow{}, err
			}
			return AblationRow{
				Load:          rho,
				FullMilli:     1000 * full,
				DominantMilli: 1000 * dom,
				ChernoffMilli: 1000 * cher,
				SumQMilli:     1000 * sq,
			}, nil
		})
	if err != nil {
		return out, err
	}
	out.Rows = rows
	return out, nil
}
