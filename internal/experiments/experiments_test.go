package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestIndexAndFind(t *testing.T) {
	idx := Index()
	if len(idx) != 11 {
		t.Fatalf("index has %d entries", len(idx))
	}
	seen := map[string]bool{}
	for _, e := range idx {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete entry %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, err := Find("figure3"); err != nil {
		t.Error(err)
	}
	if _, err := Find("nope"); err == nil {
		t.Error("found nonexistent experiment")
	}
}

func TestTable1ReproducesFaerber(t *testing.T) {
	res, err := Table1(DefaultSeed, 120_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Server size row: generated from Ext(120,36): mean ~140.8, and the LS
	// re-fit must recover (120, 36) within a few units.
	srv := res.Rows[0]
	if math.Abs(srv.Mean-140.8) > 2 {
		t.Errorf("server size mean %v", srv.Mean)
	}
	if !strings.HasPrefix(srv.FittedModel, "Ext(1") {
		t.Errorf("server fit %s", srv.FittedModel)
	}
	// Client size re-fit recovers Ext(80, 5.7) within tolerance.
	cli := res.Rows[2]
	if !strings.Contains(cli.FittedModel, "Ext(80") && !strings.Contains(cli.FittedModel, "Ext(79") {
		t.Errorf("client fit %s", cli.FittedModel)
	}
	if out := res.Render(); !strings.Contains(out, "Counter-Strike") {
		t.Error("render missing title")
	}
}

func TestTable2RanksLognormalFirst(t *testing.T) {
	res, err := Table2(DefaultSeed, 80_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FamilyRanking) != 3 {
		t.Fatalf("ranking %v", res.FamilyRanking)
	}
	if !strings.HasPrefix(res.FamilyRanking[0], "lognormal") {
		t.Errorf("best family %s, want lognormal", res.FamilyRanking[0])
	}
	// Deterministic rows exact.
	if res.Rows[1].Mean != 60 || res.Rows[2].Mean != 41 {
		t.Errorf("deterministic rows: %+v", res.Rows[1:])
	}
	if out := res.Render(); !strings.Contains(out, "Half-Life") {
		t.Error("render missing title")
	}
}

func TestTable3MatchesPaperMoments(t *testing.T) {
	res, err := Table3(DefaultSeed, 360, 2)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, got, want, relTol float64) {
		t.Helper()
		if math.Abs(got-want)/want > relTol {
			t.Errorf("%s: %v, paper %v", name, got, want)
		}
	}
	rows := map[string]TableRow{}
	for _, r := range res.Rows {
		rows[r.Metric] = r
	}
	check("server size mean", rows["server packet size [B]"].Mean, 154, 0.03)
	check("server size CoV", rows["server packet size [B]"].CoV, 0.28, 0.12)
	check("burst IAT mean", rows["burst inter-arrival [ms]"].Mean, 47, 0.03)
	check("burst IAT CoV", rows["burst inter-arrival [ms]"].CoV, 0.07, 0.25)
	check("burst size mean", rows["burst size [B]"].Mean, 1852, 0.03)
	check("burst size CoV", rows["burst size [B]"].CoV, 0.19, 0.20)
	check("client size mean", rows["client packet size [B]"].Mean, 73, 0.03)
	check("client IAT mean", rows["client inter-arrival [ms]"].Mean, 30, 0.05)
	check("client IAT CoV", rows["client inter-arrival [ms]"].CoV, 0.65, 0.15)
	if res.Stats.PacketsPerBurst.Mean() != 12 {
		t.Errorf("packets per burst %v", res.Stats.PacketsPerBurst.Mean())
	}
	if len(res.BurstTotals) < 7000 {
		t.Errorf("burst totals %d", len(res.BurstTotals))
	}
}

func TestFigure1ShapeAndOrders(t *testing.T) {
	res, err := Figure1(DefaultSeed, 360, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanBurst-1852)/1852 > 0.03 {
		t.Errorf("mean burst %v", res.MeanBurst)
	}
	// Legend rates of the mean-fitted Erlangs match the paper's 2-digit
	// values.
	for i, want := range res.PaperRates {
		if math.Abs(res.FittedRates[i]-want) > 0.0012 {
			t.Errorf("rate[%d] = %v, paper %v", i, res.FittedRates[i], want)
		}
	}
	// TDF starts at 1 and is nonincreasing.
	tdf := res.Empirical.Y
	if tdf[0] != 1 {
		t.Errorf("TDF(0) = %v", tdf[0])
	}
	for i := 1; i < len(tdf); i++ {
		if tdf[i] > tdf[i-1]+1e-12 {
			t.Fatalf("TDF increases at %d", i)
		}
	}
	// Order selection: CoV method lands near 1/0.19^2, the tail fit near
	// the CoV value too for this synthetic trace (our generator has no
	// extra tail weight), both within the paper's discussion range.
	if res.KByCoV < 20 || res.KByCoV > 40 {
		t.Errorf("K by CoV = %d", res.KByCoV)
	}
	if res.KByTail < 10 || res.KByTail > 45 {
		t.Errorf("K by tail = %d", res.KByTail)
	}
	if out := res.Render(); !strings.Contains(out, "Figure 1") {
		t.Error("render missing title")
	}
}

func TestFigure3CurvesOrdered(t *testing.T) {
	res, err := Figure3(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 3 {
		t.Fatalf("curves = %d", len(res.Curves))
	}
	k2, k9, k20 := res.Curves[0], res.Curves[1], res.Curves[2]
	for i := range k20.Y {
		if i < len(k2.Y) && i < len(k9.Y) {
			if !(k2.Y[i] > k9.Y[i] && k9.Y[i] > k20.Y[i]) {
				t.Errorf("ordering broken at load %v", k20.X[i])
			}
		}
	}
	if out := res.Render(); !strings.Contains(out, "K = 20") {
		t.Error("render missing curve labels")
	}
}

func TestFigure4RatioNote(t *testing.T) {
	res, err := Figure4(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 2 {
		t.Fatalf("curves = %d", len(res.Curves))
	}
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "ratio") && !strings.Contains(n, "WARNING") {
			found = true
		}
		if strings.Contains(n, "WARNING") {
			t.Errorf("ratio warning raised: %s", n)
		}
	}
	if !found {
		t.Error("missing ratio note")
	}
	// T=60 curve above T=40 everywhere.
	c40, c60 := res.Curves[0], res.Curves[1]
	for i := range c60.Y {
		if i < len(c40.Y) && c60.Y[i] <= c40.Y[i] {
			t.Errorf("T=60 not above T=40 at load %v", c60.X[i])
		}
	}
}

func TestDimensioningAgainstPaper(t *testing.T) {
	res, err := Dimensioning(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		// Within 10 percentage points of the paper's load and 30% of its
		// gamer counts (its values are read off a plot).
		if math.Abs(r.MaxLoad-r.PaperLoad) > 0.10 {
			t.Errorf("K=%d: rho_max %.3f vs paper %.2f", r.K, r.MaxLoad, r.PaperLoad)
		}
		if math.Abs(float64(r.MaxGamers-r.PaperGamers)) > 0.3*float64(r.PaperGamers) {
			t.Errorf("K=%d: Nmax %d vs paper %d", r.K, r.MaxGamers, r.PaperGamers)
		}
		if r.RTTAtMaxMilli > 50.5 {
			t.Errorf("K=%d: RTT at max %v exceeds bound", r.K, r.RTTAtMaxMilli)
		}
	}
	if out := res.Render(); !strings.Contains(out, "surprisingly low") {
		t.Error("render missing conclusion")
	}
}

func TestRobustnessChecks(t *testing.T) {
	res, err := Robustness(2)
	if err != nil {
		t.Fatal(err)
	}
	// PS-invariance: queueing parts within 12% of each other.
	ref := res.QueueingByPS[125]
	for ps, q := range res.QueueingByPS {
		if math.Abs(q-ref)/ref > 0.12 {
			t.Errorf("PS=%v: queueing %v vs ref %v", ps, q, ref)
		}
	}
	// Capacity shift explained by serialization within 2ms.
	if math.Abs(res.CapacityShiftMilli-res.SerializationShiftMilli) > 2 {
		t.Errorf("capacity shift %v vs serialization %v",
			res.CapacityShiftMilli, res.SerializationShiftMilli)
	}
	// Uplink ceiling near 75/80.
	if math.Abs(res.MaxStableLoadPS75-0.9375) > 0.02 {
		t.Errorf("PS=75 ceiling %v, want ~0.9375", res.MaxStableLoadPS75)
	}
}

func TestAblationOrdering(t *testing.T) {
	res, err := Ablation(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.SumQMilli < r.FullMilli-1e-6 {
			t.Errorf("load %v: sum-of-quantiles %v below full %v", r.Load, r.SumQMilli, r.FullMilli)
		}
		if r.ChernoffMilli < r.FullMilli-1e-6 {
			t.Errorf("load %v: chernoff %v below full %v (it is an upper bound)",
				r.Load, r.ChernoffMilli, r.FullMilli)
		}
		// Dominant pole: accurate at the loads the paper operates at, but a
		// (conservative) overestimate at low load where alpha_1 crowds beta
		// and the single-pole asymptote kicks in only very deep in the tail
		// - exactly the "residue" caveat under eq. (35).
		if r.Load >= 0.4 {
			if math.Abs(r.DominantMilli-r.FullMilli)/r.FullMilli > 0.30 {
				t.Errorf("load %v: dominant %v vs full %v", r.Load, r.DominantMilli, r.FullMilli)
			}
		} else if r.DominantMilli < r.FullMilli-1e-6 {
			t.Errorf("load %v: dominant %v should stay conservative vs full %v",
				r.Load, r.DominantMilli, r.FullMilli)
		}
	}
}

func TestAllExperimentsRunAndRender(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	for _, e := range Index() {
		res, err := e.Run(2)
		if err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if out := res.Render(); len(out) < 80 {
			t.Errorf("%s: render too short (%d bytes)", e.ID, len(out))
		}
	}
}

func TestMultiServerStudyShape(t *testing.T) {
	res, err := MultiServerStudy(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0].Servers != 1 {
		t.Fatal("first row must be the single-server baseline")
	}
	for _, r := range res.Rows {
		if r.QuantileMilli <= 0 || r.MeanMilli <= 0 || r.QuantileMilli < r.MeanMilli {
			t.Errorf("S=%d: quantile %v mean %v", r.Servers, r.QuantileMilli, r.MeanMilli)
		}
	}
	if out := res.Render(); !strings.Contains(out, "M/E_K/1") {
		t.Error("render missing method note")
	}
}

func TestJitterStudyLinearity(t *testing.T) {
	res, err := JitterStudy(DefaultSeed, 60, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	base := res.Rows[0].MeanRTTMilli
	for _, r := range res.Rows[1:] {
		shift := r.MeanRTTMilli - base
		if math.Abs(shift-r.JitterMeanMilli) > 0.35*r.JitterMeanMilli+0.3 {
			t.Errorf("jitter %vms: mean shift %vms", r.JitterMeanMilli, shift)
		}
	}
	// p99 must be monotone in jitter.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].P99Milli <= res.Rows[i-1].P99Milli {
			t.Errorf("p99 not increasing at jitter %v", res.Rows[i].JitterMeanMilli)
		}
	}
}

// TestReportDeterministicAcrossWorkerCounts is the PR's central guarantee:
// the full report - every table, figure, sweep and replication - must be
// byte-identical for -jobs=1 and -jobs=8 under the same seed. Any job that
// derived randomness from execution order instead of its own index, or any
// result collected in completion order, fails this test.
func TestReportDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the full report twice")
	}
	serial, err := Report(1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Report(8)
	if err != nil {
		t.Fatal(err)
	}
	if serial != parallel {
		// Locate the first divergence for the failure message.
		i := 0
		for i < len(serial) && i < len(parallel) && serial[i] == parallel[i] {
			i++
		}
		lo := max(0, i-80)
		t.Fatalf("report differs between -jobs=1 and -jobs=8 at byte %d:\nserial:   ...%q\nparallel: ...%q",
			i, serial[lo:min(len(serial), i+80)], parallel[lo:min(len(parallel), i+80)])
	}
	if len(serial) < 2000 {
		t.Fatalf("report suspiciously short: %d bytes", len(serial))
	}
	// Every artifact's section must be present, in presentation order.
	pos := -1
	for _, e := range Index() {
		ti := strings.Index(serial, sectionTitlePrefix(e.ID))
		if ti < 0 {
			t.Errorf("report missing section for %s", e.ID)
			continue
		}
		if ti < pos {
			t.Errorf("section %s out of presentation order", e.ID)
		}
		pos = ti
	}
}

// sectionTitlePrefix maps an entry id to a distinctive substring of its
// rendered section title.
func sectionTitlePrefix(id string) string {
	switch id {
	case "table1":
		return "Table 1"
	case "table2":
		return "Table 2"
	case "table3":
		return "Table 3"
	case "figure1":
		return "Figure 1"
	case "figure3":
		return "Figure 3"
	case "figure4":
		return "Figure 4"
	case "dimensioning":
		return "dimensioning rule"
	case "robustness":
		return "robustness checks"
	case "ablation":
		return "ablation"
	case "multiserver":
		return "several game servers"
	case "jitter":
		return "injected downstream jitter"
	}
	return id
}

func TestCSVExport(t *testing.T) {
	res, err := Figure4(2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 10 {
		t.Fatalf("csv too short: %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "load") || !strings.Contains(lines[0], "IAT = 40ms") {
		t.Errorf("header %q", lines[0])
	}
	// Each data row has header-many fields.
	want := len(strings.Split(lines[0], ","))
	for i, l := range lines[1:] {
		if got := len(strings.Split(l, ",")); got != want {
			t.Fatalf("row %d has %d fields, want %d", i+1, got, want)
		}
	}
}
