// Package experiments regenerates every table and figure of the paper's
// evaluation, one typed function per artifact, shared by the CLI, the test
// suite and the benchmark harness. Each result embeds the paper's published
// values next to the reproduced ones so EXPERIMENTS.md can be written
// straight from the output.
//
// Index of artifacts (see DESIGN.md §4):
//
//	table1        Counter-Strike traffic characteristics (Färber)
//	table2        Half-Life traffic characteristics (Lang et al.)
//	table3        Unreal Tournament 2003 LAN trace statistics
//	figure1       TDF of burst sizes vs Erlang tails
//	figure3       RTT quantile vs load for K in {2, 9, 20}
//	figure4       RTT quantile vs load for T in {40, 60} ms
//	dimensioning  §4 max load / max gamers rule
//	robustness    §4 PS-robustness, capacity invariance, uplink crossover
//	ablation      eq. 35 full inversion vs dominant pole vs Chernoff vs
//	              sum-of-quantiles
package experiments

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"fpsping/internal/runner"
)

// Renderer is implemented by every experiment result.
type Renderer interface {
	// Render formats the result as a human-readable report section.
	Render() string
}

// Entry describes one runnable experiment.
type Entry struct {
	// ID is the CLI name (e.g. "figure3").
	ID string
	// Title describes the paper artifact.
	Title string
	// Run executes the experiment with its default parameters on up to jobs
	// concurrent workers (<= 1 means serial). The result is byte-identical
	// at any jobs value: all parallel inner loops shard work and derive
	// per-shard RNG streams independently of the worker count.
	Run func(jobs int) (Renderer, error)
}

// Index lists all experiments in presentation order.
func Index() []Entry {
	return []Entry{
		{"table1", "Table 1: Counter-Strike traffic characteristics (Färber)", func(jobs int) (Renderer, error) { return Table1(DefaultSeed, 200_000, jobs) }},
		{"table2", "Table 2: Half-Life traffic characteristics (Lang et al.)", func(jobs int) (Renderer, error) { return Table2(DefaultSeed, 200_000, jobs) }},
		{"table3", "Table 3: Unreal Tournament 2003 LAN trace", func(jobs int) (Renderer, error) { return Table3(DefaultSeed, 360, jobs) }},
		{"figure1", "Figure 1: burst-size TDF vs Erlang tails", func(jobs int) (Renderer, error) { return Figure1(DefaultSeed, 360, jobs) }},
		{"figure3", "Figure 3: RTT quantile vs load, K in {2,9,20}", func(jobs int) (Renderer, error) { return Figure3(jobs) }},
		{"figure4", "Figure 4: RTT quantile vs load, T in {40,60} ms", func(jobs int) (Renderer, error) { return Figure4(jobs) }},
		{"dimensioning", "§4 dimensioning: max load and gamers under 50 ms", func(jobs int) (Renderer, error) { return Dimensioning(jobs) }},
		{"robustness", "§4 robustness: PS sweep, C invariance, uplink crossover", func(jobs int) (Renderer, error) { return Robustness(jobs) }},
		{"ablation", "§3.3 ablation: inversion method comparison", func(jobs int) (Renderer, error) { return Ablation(jobs) }},
		{"multiserver", "§3.2 extension: several servers on one pipe (M/E_K/1)", func(jobs int) (Renderer, error) { return MultiServerStudy(jobs) }},
		{"jitter", "[23] replication: injected jitter vs ping", func(jobs int) (Renderer, error) { return JitterStudy(DefaultSeed, 120, jobs) }},
	}
}

// Report regenerates every artifact of Index concurrently (both across
// artifacts and inside each one) and returns the full rendered report in
// presentation order. The text is byte-identical at any jobs value; jobs <= 0
// uses one worker per CPU. Report bounds the whole process's concurrency via
// runner.SetMaxParallel(jobs), so nested fan-outs cannot multiply past it.
//
// If some artifacts fail, Report still returns the successful sections (in
// presentation order) alongside the aggregated error, so one broken
// experiment doesn't discard the rest of an expensive run.
func Report(jobs int) (string, error) {
	if jobs <= 0 {
		jobs = runner.DefaultWorkers()
	}
	runner.SetMaxParallel(jobs)
	idx := Index()
	sections, errs := runner.TryMap(len(idx), runner.Options{Workers: jobs},
		func(i int) (string, error) {
			res, err := idx[i].Run(jobs)
			if err != nil {
				return "", fmt.Errorf("%s: %w", idx[i].ID, err)
			}
			return res.Render(), nil
		})
	var ok []string
	var failed []error
	for i := range sections {
		if errs[i] != nil {
			failed = append(failed, errs[i])
			continue
		}
		ok = append(ok, sections[i])
	}
	report := strings.Join(ok, "\n")
	if len(failed) > 0 {
		return report, errors.Join(failed...)
	}
	return report, nil
}

// Find returns the entry with the given id.
func Find(id string) (Entry, error) {
	for _, e := range Index() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0)
	for _, e := range Index() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Entry{}, fmt.Errorf("experiments: unknown id %q (have: %s)", id, strings.Join(ids, ", "))
}

// DefaultSeed keeps every experiment deterministic.
const DefaultSeed uint64 = 20060601 // the report's month

// section renders a titled block.
func section(title string, body string) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", len(title)))
	b.WriteString("\n")
	b.WriteString(body)
	if !strings.HasSuffix(body, "\n") {
		b.WriteString("\n")
	}
	return b.String()
}
