package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
)

// CSVer is implemented by experiment results that can export their series
// for external plotting (gnuplot and friends); the CLI's -csv flag uses it.
type CSVer interface {
	// CSV returns a header and data rows.
	CSV() (header []string, rows [][]float64)
}

// WriteCSV renders any CSVer to w.
func WriteCSV(w io.Writer, c CSVer) error {
	header, rows := c.CSV()
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for _, row := range rows {
		if len(row) != len(header) {
			return fmt.Errorf("experiments: row width %d != header %d", len(row), len(header))
		}
		for i, v := range row {
			rec[i] = strconv.FormatFloat(v, 'g', 10, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSV exports the RTT-vs-load curves: load column plus one RTT column per
// curve (ms). Shorter curves (earlier instability) pad with NaN.
func (f FigureRTTResult) CSV() (header []string, rows [][]float64) {
	header = append(header, "load")
	for _, c := range f.Curves {
		header = append(header, c.Label+" [ms]")
	}
	maxLen := 0
	for _, c := range f.Curves {
		if len(c.X) > maxLen {
			maxLen = len(c.X)
		}
	}
	for i := 0; i < maxLen; i++ {
		row := make([]float64, 0, len(header))
		var load float64
		for _, c := range f.Curves {
			if i < len(c.X) {
				load = c.X[i]
			}
		}
		row = append(row, load)
		for _, c := range f.Curves {
			if i < len(c.Y) {
				row = append(row, c.Y[i])
			} else {
				row = append(row, math.NaN())
			}
		}
		rows = append(rows, row)
	}
	return header, rows
}

// CSV exports the Figure 1 series: burst size, empirical TDF and the three
// Erlang tails.
func (f Figure1Result) CSV() (header []string, rows [][]float64) {
	header = []string{"burst_bytes", "experimental_tdf"}
	for _, e := range f.Erlangs {
		header = append(header, e.Label)
	}
	for i, x := range f.Empirical.X {
		row := []float64{x, f.Empirical.Y[i]}
		for _, e := range f.Erlangs {
			row = append(row, e.Y[i])
		}
		rows = append(rows, row)
	}
	return header, rows
}
