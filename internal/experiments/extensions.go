package experiments

import (
	"fmt"
	"strings"

	"fpsping/internal/core"
	"fpsping/internal/dist"
	"fpsping/internal/netsim"
	"fpsping/internal/runner"
)

// MultiServerRow is one server-count's prediction.
type MultiServerRow struct {
	Servers       int
	PerServer     float64
	QuantileMilli float64
	MeanMilli     float64
}

// MultiServerResult explores §3.2's multi-server remark: the same total
// gamer population and aggregate load split across S game servers, with the
// downstream queue moving from D/E_K/1 (S=1) to the M/E_K/1 superposition
// limit (S>1).
type MultiServerResult struct {
	TotalGamers   float64
	AggregateLoad float64
	Rows          []MultiServerRow
}

// Render formats the table.
func (m MultiServerResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "total gamers %.0f, aggregate downstream load %.1f%% (PS=125B, T=60ms, K=9)\n",
		m.TotalGamers, 100*m.AggregateLoad)
	fmt.Fprintf(&b, "%-9s %12s %14s %14s\n", "servers", "gamers/srv", "99.999% RTT", "mean RTT")
	for _, r := range m.Rows {
		fmt.Fprintf(&b, "%-9d %12.0f %12.1fms %12.2fms\n",
			r.Servers, r.PerServer, r.QuantileMilli, r.MeanMilli)
	}
	b.WriteString("S=1 uses the paper's D/E_K/1; S>1 uses the M/E_K/1 Poisson superposition limit,\n")
	b.WriteString("which is conservative for small S (the paper: valid 'if the number of servers is high enough').\n")
	return section("§3.2 extension - several game servers on one pipe", b.String())
}

// MultiServerStudy evaluates S in {1, 2, 4, 8, 16} at a fixed aggregate, one
// concurrent job per server count.
func MultiServerStudy(jobs int) (MultiServerResult, error) {
	const total = 160.0
	out := MultiServerResult{TotalGamers: total}
	type cell struct {
		row  MultiServerRow
		load float64 // aggregate load, reported by the S=1 baseline
	}
	cells, err := runner.Items([]int{1, 2, 4, 8, 16}, runner.Options{Workers: jobs},
		func(_, servers int) (cell, error) {
			per := core.DSLDefaults()
			per.ServerPacketBytes = 125
			per.BurstInterval = 0.060
			per.ErlangOrder = 9
			per.Gamers = total / float64(servers)

			// Each row compiles its delay law once; quantile and mean are
			// evaluations over the compiled pipeline, not separate rebuilds.
			var c cell
			var q, mean float64
			if servers == 1 {
				cm, err := per.Compile()
				if err != nil {
					return c, err
				}
				if q, err = cm.RTTQuantile(); err != nil {
					return c, err
				}
				if mean, err = cm.MeanRTT(); err != nil {
					return c, err
				}
				c.load = per.DownlinkLoad()
			} else {
				ms := core.MultiServer{PerServer: per, Servers: servers}
				cl, err := ms.Compile()
				if err != nil {
					return c, err
				}
				if q, err = cl.Quantile(per.QuantileLevel()); err != nil {
					return c, err
				}
				q += per.FixedPart()
				mean = cl.Mean() + per.FixedPart()
			}
			c.row = MultiServerRow{
				Servers:       servers,
				PerServer:     per.Gamers,
				QuantileMilli: 1000 * q,
				MeanMilli:     1000 * mean,
			}
			return c, nil
		})
	if err != nil {
		return out, err
	}
	for _, c := range cells {
		out.Rows = append(out.Rows, c.row)
		if c.load > 0 {
			out.AggregateLoad = c.load
		}
	}
	return out, nil
}

// JitterRow is one injected-jitter level's measured effect.
type JitterRow struct {
	// JitterMeanMilli is the mean of the injected uniform jitter.
	JitterMeanMilli float64
	// MeanRTTMilli and P99Milli are the simulated ping statistics.
	MeanRTTMilli, P99Milli float64
}

// JitterResult replays the flavor of the paper's source experiment [23]
// (Quax et al.): artificial jitter injected on the downstream path of an
// otherwise healthy scenario, and its effect on the ping distribution. The
// per-level mean shift should track the injected mean.
type JitterResult struct {
	Rows []JitterRow
}

// Render formats the study.
func (j JitterResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %14s %14s\n", "jitter mean", "mean RTT", "p99 RTT")
	for _, r := range j.Rows {
		fmt.Fprintf(&b, "%13.1fms %12.2fms %12.2fms\n",
			r.JitterMeanMilli, r.MeanRTTMilli, r.P99Milli)
	}
	b.WriteString("mean RTT rises one-for-one with the injected jitter mean ([23]'s setup;\n")
	b.WriteString("the paper only uses the low-jitter runs of that trace for Table 3).\n")
	return section("[23] replication - injected downstream jitter vs ping", b.String())
}

// jitterReplicas is the fixed per-level replication grid: each jitter level's
// statistics pool this many independent sub-simulations, so the study is
// byte-identical at any worker count.
const jitterReplicas = 3

// JitterStudy simulates jitter levels 0/2/5/10 ms (uniform, mean values).
// Every (level, replica) pair is an independent job; replica r uses the same
// derived seed at every level (common random numbers, preserving the
// monotone level comparison) and each level merges its replicas' delay
// populations.
func JitterStudy(seed uint64, duration float64, jobs int) (JitterResult, error) {
	var out JitterResult
	levels := []float64{0, 2, 5, 10}
	sub := duration / jitterReplicas
	runs, err := runner.Map(len(levels)*jitterReplicas, runner.Options{Workers: jobs},
		func(job int) (*netsim.Results, error) {
			meanMs := levels[job/jitterReplicas]
			rep := job % jitterReplicas
			erl, err := dist.ErlangByMean(9, 30*125)
			if err != nil {
				return nil, err
			}
			cfg := netsim.Config{
				Gamers:       30,
				ClientSize:   dist.NewDeterministic(80),
				ClientIAT:    dist.NewDeterministic(0.060),
				BurstTotal:   erl,
				BurstIAT:     dist.NewDeterministic(0.060),
				UpRate:       128_000,
				DownRate:     1_024_000,
				AggRate:      5_000_000,
				ShuffleBurst: true,
			}
			if meanMs > 0 {
				u, err := dist.NewUniform(0, 2*meanMs/1000)
				if err != nil {
					return nil, err
				}
				cfg.DownJitter = u
			}
			s, err := netsim.NewScenario(cfg, dist.SplitSeed(seed, expJitter, uint64(rep)))
			if err != nil {
				return nil, err
			}
			return s.Run(sub)
		})
	if err != nil {
		return out, err
	}
	for li, meanMs := range levels {
		pooled := runs[li*jitterReplicas].RTT
		for rep := 1; rep < jitterReplicas; rep++ {
			pooled.Merge(runs[li*jitterReplicas+rep].RTT)
		}
		p99, err := pooled.Quantile(0.99)
		if err != nil {
			return out, err
		}
		out.Rows = append(out.Rows, JitterRow{
			JitterMeanMilli: meanMs,
			MeanRTTMilli:    1000 * pooled.Summary.Mean(),
			P99Milli:        1000 * p99,
		})
	}
	return out, nil
}
