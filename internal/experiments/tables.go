package experiments

import (
	"fmt"
	"strings"

	"fpsping/internal/dist"
	"fpsping/internal/fit"
	"fpsping/internal/netsim"
	"fpsping/internal/runner"
	"fpsping/internal/stats"
	"fpsping/internal/trace"
	"fpsping/internal/traffic"
)

// Experiment stream identifiers: the first word of every derived RNG stream
// path, so two experiments sharing DefaultSeed never consume the same
// underlying generator (Table 1's shard 0 and Table 2's shard 0 must be
// independent draws, not the same uniforms pushed through two transforms).
const (
	expTable1 uint64 = 1
	expTable2 uint64 = 2
	expTable3 uint64 = 3
	expJitter uint64 = 11
)

// sampleShardCount is the fixed shard grid of sampleShards. It is a constant
// - never the worker count - so the drawn sample is byte-identical whatever
// parallelism executes it.
const sampleShardCount = 16

// sampleShards draws n samples from d, split into sampleShardCount
// independently seeded shards executed on up to jobs workers. Shard s fills
// out[s*n/C:(s+1)*n/C] from its own dist.NewRNG(seed, exp, stream, s)
// generator, so the result depends only on (seed, exp, stream, n).
func sampleShards(d dist.Distribution, seed, exp, stream uint64, n, jobs int) []float64 {
	out := make([]float64, n)
	_, _ = runner.Map(sampleShardCount, runner.Options{Workers: jobs},
		func(s int) (struct{}, error) {
			lo := s * n / sampleShardCount
			hi := (s + 1) * n / sampleShardCount
			r := dist.NewRNG(seed, exp, stream, uint64(s))
			for i := lo; i < hi; i++ {
				out[i] = d.Sample(r)
			}
			return struct{}{}, nil
		})
	return out
}

// TableRow compares one measured characteristic against the paper.
type TableRow struct {
	// Metric names the quantity (e.g. "server packet size [B]").
	Metric string
	// PaperMean/PaperCoV are the published measurement.
	PaperMean, PaperCoV float64
	// Mean/CoV are our reproduction.
	Mean, CoV float64
	// PaperModel is the published approximation (e.g. "Ext(120, 36)").
	PaperModel string
	// FittedModel is the law our fitting pipeline recovers.
	FittedModel string
}

func (r TableRow) render() string {
	return fmt.Sprintf("%-28s paper %8.4g (CoV %5.3g) -> ours %8.4g (CoV %5.3g)  paper fit %-14s ours %s",
		r.Metric, r.PaperMean, r.PaperCoV, r.Mean, r.CoV, r.PaperModel, r.FittedModel)
}

// Table1Result reproduces Table 1: generate Counter-Strike traffic from
// Färber's fitted laws, re-measure the characteristics and re-fit the
// extreme distribution with his least-squares histogram procedure.
type Table1Result struct {
	Rows []TableRow
}

// Render formats the table.
func (t Table1Result) Render() string {
	lines := make([]string, len(t.Rows))
	for i, r := range t.Rows {
		lines[i] = r.render()
	}
	return section("Table 1 - Counter-Strike (Färber) traffic characteristics",
		strings.Join(lines, "\n"))
}

// Table1 generates n samples per characteristic and runs the fits. The three
// sampled characteristics run as concurrent pipelines (sampling itself is
// sharded; see sampleShards), each on its own derived RNG stream.
func Table1(seed uint64, n, jobs int) (Table1Result, error) {
	m := traffic.CounterStrike()
	var out Table1Result

	fitGumbelLS := func(xs []float64) (dist.Gumbel, error) {
		h, err := stats.HistogramFromData(xs)
		if err != nil {
			return dist.Gumbel{}, err
		}
		return fit.GumbelLeastSquares(h)
	}

	pipelines := []func(stream uint64) (TableRow, error){
		// Server packet size: paper measured 127B CoV 0.74, fitted
		// Ext(120,36). (Our sample comes from the fitted law, so the
		// measured moments are the law's, not 127/0.74 - the table records
		// both on purpose.)
		func(stream uint64) (TableRow, error) {
			ss := sampleShards(m.Server.PacketSize, seed, expTable1, stream, n, jobs)
			sSum := stats.Describe(ss)
			g, err := fitGumbelLS(ss)
			if err != nil {
				return TableRow{}, fmt.Errorf("table1 server size fit: %w", err)
			}
			return TableRow{
				Metric:    "server packet size [B]",
				PaperMean: 127, PaperCoV: 0.74,
				Mean: sSum.Mean(), CoV: sSum.CoV(),
				PaperModel:  "Ext(120, 36)",
				FittedModel: fmt.Sprintf("Ext(%.0f, %.1f)", g.A, g.B),
			}, nil
		},
		// Burst inter-arrival time: measured 62ms CoV 0.5, fitted Ext(55, 6).
		func(stream uint64) (TableRow, error) {
			ia := sampleShards(m.Server.IAT, seed, expTable1, stream, n, jobs)
			for i := range ia {
				ia[i] *= 1000 // to ms for the table
			}
			iaSum := stats.Describe(ia)
			gi, err := fitGumbelLS(ia)
			if err != nil {
				return TableRow{}, fmt.Errorf("table1 burst IAT fit: %w", err)
			}
			return TableRow{
				Metric:    "burst inter-arrival [ms]",
				PaperMean: 62, PaperCoV: 0.5,
				Mean: iaSum.Mean(), CoV: iaSum.CoV(),
				PaperModel:  "Ext(55, 6)",
				FittedModel: fmt.Sprintf("Ext(%.1f, %.2f)", gi.A, gi.B),
			}, nil
		},
		// Client packet size: measured 82B CoV 0.12, fitted Ext(80, 5.7).
		func(stream uint64) (TableRow, error) {
			cs := sampleShards(m.Client[0].Size, seed, expTable1, stream, n, jobs)
			cSum := stats.Describe(cs)
			gc, err := fit.GumbelMLE(cs)
			if err != nil {
				return TableRow{}, fmt.Errorf("table1 client size fit: %w", err)
			}
			return TableRow{
				Metric:    "client packet size [B]",
				PaperMean: 82, PaperCoV: 0.12,
				Mean: cSum.Mean(), CoV: cSum.CoV(),
				PaperModel:  "Ext(80, 5.7)",
				FittedModel: fmt.Sprintf("Ext(%.1f, %.2f)", gc.A, gc.B),
			}, nil
		},
	}
	rows, err := runner.Items(pipelines, runner.Options{Workers: jobs},
		func(i int, p func(uint64) (TableRow, error)) (TableRow, error) {
			return p(uint64(i))
		})
	if err != nil {
		return out, err
	}
	out.Rows = rows

	// Client IAT: measured 42ms CoV 0.24, modeled Det(40).
	out.Rows = append(out.Rows, TableRow{
		Metric:    "client inter-arrival [ms]",
		PaperMean: 42, PaperCoV: 0.24,
		Mean: 1000 * m.Client[0].IAT.Mean(), CoV: dist.CoV(m.Client[0].IAT),
		PaperModel:  "Det(40)",
		FittedModel: "Det(40)",
	})
	return out, nil
}

// Table2Result reproduces Table 2 (Half-Life): deterministic timing plus a
// lognormal server size law whose family is recovered by model ranking.
type Table2Result struct {
	Rows []TableRow
	// FamilyRanking lists candidate families best-first by KS distance for
	// the server packet sizes.
	FamilyRanking []string
}

// Render formats the table.
func (t Table2Result) Render() string {
	lines := make([]string, len(t.Rows))
	for i, r := range t.Rows {
		lines[i] = r.render()
	}
	lines = append(lines, "server-size family ranking (KS): "+strings.Join(t.FamilyRanking, " > "))
	return section("Table 2 - Half-Life (Lang et al.) traffic characteristics",
		strings.Join(lines, "\n"))
}

// Table2 generates n samples (sharded; see sampleShards) and ranks candidate
// size families, fitting the three candidates concurrently.
func Table2(seed uint64, n, jobs int) (Table2Result, error) {
	m := traffic.HalfLife("crossfire")
	var out Table2Result

	ss := sampleShards(m.Server.PacketSize, seed, expTable2, 0, n, jobs)
	sSum := stats.Describe(ss)
	// Fit the three candidate families concurrently; each is independent.
	fits, err := runner.Map(3, runner.Options{Workers: jobs},
		func(i int) (dist.Distribution, error) {
			switch i {
			case 0:
				l, err := fit.LogNormalMLE(ss)
				return l, err
			case 1:
				nrm, err := fit.NormalMLE(ss)
				return nrm, err
			default:
				g, err := fit.GumbelMLE(ss)
				return g, err
			}
		})
	if err != nil {
		return out, err
	}
	ln := fits[0].(dist.LogNormal)
	out.Rows = append(out.Rows, TableRow{
		Metric:    "server packet size [B]",
		PaperMean: sSum.Mean(), PaperCoV: sSum.CoV(), // map-dependent; no absolute paper number
		Mean: sSum.Mean(), CoV: sSum.CoV(),
		PaperModel:  "lognormal (map dep.)",
		FittedModel: fmt.Sprintf("LogN(%.2f, %.2f)", ln.Mu, ln.Sigma),
	})
	out.Rows = append(out.Rows, TableRow{
		Metric:    "burst inter-arrival [ms]",
		PaperMean: 60, PaperCoV: 0,
		Mean: 1000 * m.Server.IAT.Mean(), CoV: dist.CoV(m.Server.IAT),
		PaperModel:  "Det(60)",
		FittedModel: "Det(60)",
	})
	out.Rows = append(out.Rows, TableRow{
		Metric:    "client inter-arrival [ms]",
		PaperMean: 41, PaperCoV: 0,
		Mean: 1000 * m.Client[0].IAT.Mean(), CoV: dist.CoV(m.Client[0].IAT),
		PaperModel:  "Det(41)",
		FittedModel: "Det(41)",
	})

	// Family ranking: lognormal should beat normal and extreme for the
	// (lognormal) server sizes; Lang found normal and lognormal both fit
	// the client sizes.
	ranked, err := fit.RankByKS(ss, map[string]dist.Distribution{
		"lognormal": ln, "normal": fits[1], "extreme": fits[2],
	})
	if err != nil {
		return out, err
	}
	for _, c := range ranked {
		out.FamilyRanking = append(out.FamilyRanking,
			fmt.Sprintf("%s(D=%.4f)", c.Name, c.KS.D))
	}
	return out, nil
}

// Table3Result reproduces the paper's own LAN-party measurement via the
// packet-level simulator plus the trace-analysis pipeline.
type Table3Result struct {
	Rows []TableRow
	// Stats is the full analysis readout.
	Stats trace.TableStats
	// BurstTotals are the per-tick byte totals (input to Figure 1).
	BurstTotals []float64
	// OrderStability is the fraction of consecutive bursts sharing the same
	// packet order (§2.2: the paper observed the order varies, undermining
	// Färber's tacit same-order assumption).
	OrderStability float64
}

// Render formats the table.
func (t Table3Result) Render() string {
	lines := make([]string, len(t.Rows))
	for i, r := range t.Rows {
		lines[i] = r.render()
	}
	lines = append(lines, fmt.Sprintf("within-burst size CoV: %.3f (paper: 0.05-0.11; see EXPERIMENTS.md note)",
		t.Stats.Downstream.WithinBurstCoV))
	lines = append(lines, fmt.Sprintf("bursts: %d, packets/burst mean %.2f (paper: one per player)",
		t.Stats.Bursts, t.Stats.PacketsPerBurst.Mean()))
	lines = append(lines, fmt.Sprintf("within-burst packet-order stability: %.3f (paper: order varies burst to burst)",
		t.OrderStability))
	return section("Table 3 - Unreal Tournament 2003 LAN trace (12 players, simulated)",
		strings.Join(lines, "\n"))
}

// lanPartyConfig builds the 12-player LAN scenario calibrated to Table 3:
// 100 Mbit/s LAN links (negligible queueing), UT2003 traffic laws, and a
// per-burst level multiplier carrying the across-burst size correlation
// needed to hit both the packet CoV (0.28) and the burst CoV (0.19).
func lanPartyConfig() netsim.Config {
	ut := traffic.UnrealTournament()
	// Calibration (see EXPERIMENTS.md): packet CoV^2 = cm^2 + cx^2,
	// burst CoV^2 ~ cm^2 + cx^2/12 with cm the level CoV and cx the
	// within-burst CoV. Solving for 0.28 / 0.19: cx = 0.215, cm = 0.18.
	level, err := dist.LogNormalByMoments(1, 0.18)
	if err != nil {
		panic(err)
	}
	within, err := dist.LogNormalByMoments(154, 0.215)
	if err != nil {
		panic(err)
	}
	return netsim.Config{
		Gamers:       12,
		ClientSize:   ut.Client[0].Size,
		ClientIAT:    ut.Client[0].IAT,
		ServerSize:   within,
		BurstLevel:   level,
		BurstIAT:     ut.Server.IAT,
		UpRate:       100_000_000,
		DownRate:     100_000_000,
		AggRate:      100_000_000,
		ShuffleBurst: true,
		Capture:      true,
	}
}

// table3Replicas is the fixed replication grid of the LAN-party simulation:
// the trace is produced by this many independent sub-simulations regardless
// of the worker count, so the merged capture is byte-identical at any -jobs.
const table3Replicas = 4

// table3BurstStride separates the replicas' burst-id ranges in the merged
// trace (each replica numbers its bursts from 0).
const table3BurstStride = 1 << 20

// Table3 simulates the LAN party for the given duration (seconds; the paper
// traced six minutes = 360). The trace is gathered as table3Replicas
// independent replications - each with its own derived seed - run
// concurrently and stitched into one contiguous capture: replica r's records
// are shifted by r*duration/R in time and into a disjoint burst-id range.
func Table3(seed uint64, duration float64, jobs int) (Table3Result, error) {
	var out Table3Result
	sub := duration / table3Replicas
	runs, err := runner.Map(table3Replicas, runner.Options{Workers: jobs},
		func(rep int) (*netsim.Results, error) {
			s, err := netsim.NewScenario(lanPartyConfig(), dist.SplitSeed(seed, expTable3, uint64(rep)))
			if err != nil {
				return nil, err
			}
			return s.Run(sub)
		})
	if err != nil {
		return out, err
	}
	merged := trace.New()
	for rep, res := range runs {
		off := float64(rep) * sub
		for _, r := range res.Trace.Records() {
			r.Time += off
			if r.Burst >= 0 {
				r.Burst += rep * table3BurstStride
			}
			merged.Append(r)
		}
	}
	merged.SortByTime()
	ts, err := trace.Analyze(merged, 0.010)
	if err != nil {
		return out, err
	}
	out.Stats = ts
	groups := trace.GroupBurstsByID(merged)
	out.BurstTotals = trace.BurstTotals(groups)
	out.OrderStability = trace.OrderStability(groups)

	out.Rows = []TableRow{
		{
			Metric:    "server packet size [B]",
			PaperMean: 154, PaperCoV: 0.28,
			Mean: ts.Downstream.PacketSize.Mean(), CoV: ts.Downstream.PacketSize.CoV(),
			PaperModel: "-", FittedModel: "-",
		},
		{
			Metric:    "burst inter-arrival [ms]",
			PaperMean: 47, PaperCoV: 0.07,
			Mean: 1000 * ts.Downstream.IAT.Mean(), CoV: ts.Downstream.IAT.CoV(),
			PaperModel: "-", FittedModel: "-",
		},
		{
			Metric:    "burst size [B]",
			PaperMean: 1852, PaperCoV: 0.19,
			Mean: ts.Downstream.BurstSize.Mean(), CoV: ts.Downstream.BurstSize.CoV(),
			PaperModel: "-", FittedModel: "-",
		},
		{
			Metric:    "client packet size [B]",
			PaperMean: 73, PaperCoV: 0.06,
			Mean: ts.Upstream.PacketSize.Mean(), CoV: ts.Upstream.PacketSize.CoV(),
			PaperModel: "-", FittedModel: "-",
		},
		{
			Metric:    "client inter-arrival [ms]",
			PaperMean: 30, PaperCoV: 0.65,
			Mean: 1000 * ts.Upstream.IAT.Mean(), CoV: ts.Upstream.IAT.CoV(),
			PaperModel: "-", FittedModel: "-",
		},
	}
	return out, nil
}
