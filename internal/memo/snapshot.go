// Snapshot/restore: the cache's answer to "a deploy must not empty a memo
// full of expensive computations". Dump serializes every entry a codec knows
// how to encode into a versioned, CRC-checksummed stream keyed by a caller
// schema string; Restore replays such a stream into a (typically freshly
// booted) cache under never-clobber semantics. FilterSnapshot rewrites a
// snapshot keeping only selected keys without needing the codec at all —
// the primitive a cluster router uses to carve "the keys this replica owns"
// out of a donor's full dump.
//
// Wire format (all integers little-endian):
//
//	magic   8 bytes  "FPSMEMO1" (the trailing byte is the format version)
//	schema  u32 length + bytes   caller schema string, compared on Restore
//	record  u8 tag 1, u32 key length + bytes, u32 value length + bytes
//	...     (records repeat, most-recently-used first within each shard,
//	        shards in index order)
//	end     u8 tag 0
//	crc     u32 IEEE CRC-32 of every preceding byte
//
// A snapshot is rejected whole — wrong magic, wrong version, schema
// mismatch, truncation, trailing garbage or a CRC mismatch all fail before
// the cache is touched — so a restore either replays a verified stream or
// changes nothing.
package memo

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
)

// snapshotMagic identifies a memo snapshot stream; the trailing '1' is the
// format version, so a future incompatible format bumps the magic itself.
var snapshotMagic = [8]byte{'F', 'P', 'S', 'M', 'E', 'M', 'O', '1'}

const (
	// maxSnapshotKey and maxSnapshotValue bound one record's declared sizes,
	// so a corrupt length field fails cleanly instead of attempting a
	// multi-gigabyte allocation.
	maxSnapshotKey   = 1 << 20
	maxSnapshotValue = 64 << 20

	tagEntry = 1
	tagEnd   = 0
)

// ErrSnapshot marks a structurally invalid snapshot: bad magic or version,
// truncation, trailing data, oversized fields or a CRC mismatch. Callers
// treat it as "boot cold", never as a crash.
var ErrSnapshot = errors.New("memo: invalid snapshot")

// ErrSchemaMismatch marks a well-formed snapshot written under a different
// schema string — typically a binary whose model code changed. The cache is
// left untouched; the entries must be re-derived.
var ErrSchemaMismatch = errors.New("memo: snapshot schema mismatch")

// Codec translates cached values to and from snapshot bytes. Encode may
// report ok=false to skip an entry whose value cannot (or should not) be
// persisted — a compiled pipeline, an open handle — in which case the entry
// is simply re-derived after restore. Decode is only handed records Encode
// produced under the same schema string, keyed identically.
type Codec[V any] interface {
	Encode(key string, val V) (data []byte, ok bool, err error)
	Decode(key string, data []byte) (V, error)
}

// DumpStats reports what a Dump wrote.
type DumpStats struct {
	// Entries is the number of records written; Skipped counts entries the
	// codec declined to encode.
	Entries int
	Skipped int
	// Bytes is the total stream length including header and checksum.
	Bytes int64
}

// RestoreStats reports what a Restore applied.
type RestoreStats struct {
	// Restored counts entries inserted. SkippedExisting counts keys already
	// live in the cache (the live entry is newer and wins); SkippedFull
	// counts entries dropped because their shard was at capacity (a restore
	// never evicts a live entry to make room for an archived one).
	Restored        int
	SkippedExisting int
	SkippedFull     int
}

// FilterStats reports what a FilterSnapshot kept.
type FilterStats struct {
	Kept    int
	Dropped int
}

// crcWriter tracks a running CRC-32 and byte count over everything written.
type crcWriter struct {
	w   io.Writer
	crc hash.Hash32
	n   int64
}

func newCRCWriter(w io.Writer) *crcWriter {
	return &crcWriter{w: w, crc: crc32.NewIEEE()}
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc.Write(p[:n])
	cw.n += int64(n)
	return n, err
}

func writeUint32(w io.Writer, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func writeString(w io.Writer, s string) error {
	if err := writeUint32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

// Dump serializes the cache through codec: header, then each shard's
// entries in recency order (most recently used first), then the end marker
// and checksum. Entries the codec declines (ok=false) are skipped and
// counted. The shard locks are held only while copying out keys and values,
// never across encoding or writing, so a dump does not stall lookups; the
// snapshot is per-shard consistent, which is all a warm restart needs.
// Dump does not disturb recency order or the hit/miss/eviction counters.
func (c *Cache[V]) Dump(w io.Writer, schema string, codec Codec[V]) (DumpStats, error) {
	var st DumpStats
	cw := newCRCWriter(w)
	if _, err := cw.Write(snapshotMagic[:]); err != nil {
		return st, err
	}
	if err := writeString(cw, schema); err != nil {
		return st, err
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		ents := make([]entry[V], 0, s.order.Len())
		for el := s.order.Front(); el != nil; el = el.Next() {
			ents = append(ents, *el.Value.(*entry[V]))
		}
		s.mu.Unlock()
		for _, e := range ents {
			data, ok, err := codec.Encode(e.key, e.val)
			if err != nil {
				return st, fmt.Errorf("memo: encoding %q: %w", e.key, err)
			}
			if !ok {
				st.Skipped++
				continue
			}
			if _, err := cw.Write([]byte{tagEntry}); err != nil {
				return st, err
			}
			if err := writeString(cw, e.key); err != nil {
				return st, err
			}
			if err := writeUint32(cw, uint32(len(data))); err != nil {
				return st, err
			}
			if _, err := cw.Write(data); err != nil {
				return st, err
			}
			st.Entries++
		}
	}
	if _, err := cw.Write([]byte{tagEnd}); err != nil {
		return st, err
	}
	if err := writeUint32(w, cw.crc.Sum32()); err != nil {
		return st, err
	}
	st.Bytes = cw.n + 4
	return st, nil
}

// rawRecord is one snapshot entry before (or without) decoding.
type rawRecord struct {
	key string
	val []byte
}

// restoreRead slurps and fully validates a snapshot stream — magic, length
// bounds, end marker, CRC, no trailing data — returning the schema and the
// raw records in stream order. Nothing is decoded yet. Slurping before
// parsing keeps the checksum argument trivial (CRC over everything but the
// trailing four bytes) and is fine at snapshot scale: a full default cache
// dumps to well under a megabyte, and transport layers bound the stream.
func restoreRead(r io.Reader) (schema string, records []rawRecord, err error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return "", nil, fmt.Errorf("%w: reading stream: %v", ErrSnapshot, err)
	}
	if len(data) < len(snapshotMagic)+4 {
		return "", nil, fmt.Errorf("%w: %d bytes is shorter than the header", ErrSnapshot, len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(tail), crc32.ChecksumIEEE(body); got != want {
		return "", nil, fmt.Errorf("%w: checksum %08x, want %08x", ErrSnapshot, got, want)
	}
	if !bytes.Equal(body[:8], snapshotMagic[:]) {
		return "", nil, fmt.Errorf("%w: bad magic %q", ErrSnapshot, body[:8])
	}
	pos := 8
	readBytes := func(what string, limit int) ([]byte, error) {
		if pos+4 > len(body) {
			return nil, fmt.Errorf("%w: truncated %s length", ErrSnapshot, what)
		}
		n := int(binary.LittleEndian.Uint32(body[pos : pos+4]))
		pos += 4
		if n > limit {
			return nil, fmt.Errorf("%w: %s length %d over the %d cap", ErrSnapshot, what, n, limit)
		}
		if pos+n > len(body) {
			return nil, fmt.Errorf("%w: truncated %s", ErrSnapshot, what)
		}
		out := body[pos : pos+n]
		pos += n
		return out, nil
	}
	schemaBytes, err := readBytes("schema", maxSnapshotKey)
	if err != nil {
		return "", nil, err
	}
	for {
		if pos >= len(body) {
			return "", nil, fmt.Errorf("%w: missing end marker", ErrSnapshot)
		}
		tag := body[pos]
		pos++
		if tag == tagEnd {
			break
		}
		if tag != tagEntry {
			return "", nil, fmt.Errorf("%w: unknown record tag %d", ErrSnapshot, tag)
		}
		key, err := readBytes("key", maxSnapshotKey)
		if err != nil {
			return "", nil, err
		}
		val, err := readBytes("value", maxSnapshotValue)
		if err != nil {
			return "", nil, err
		}
		records = append(records, rawRecord{key: string(key), val: append([]byte(nil), val...)})
	}
	if pos != len(body) {
		return "", nil, fmt.Errorf("%w: %d trailing bytes after end marker", ErrSnapshot, len(body)-pos)
	}
	return string(schemaBytes), records, nil
}

// Restore replays a snapshot into the cache. The stream is fully parsed and
// verified (structure, schema, checksum) before any entry is applied, so a
// bad snapshot never half-restores. Entries are applied in stream order
// under the shard locks with never-clobber semantics: a key already present
// keeps its live value, and a shard at capacity stops accepting archived
// entries rather than evicting live ones. Because records are ordered most
// recently used first and restored entries are appended at the cold end,
// restoring into an empty cache reproduces the dumped recency order, and
// restoring into a busy cache ranks every archived entry behind every live
// one. Counters (hits/misses/evictions) are unaffected.
func (c *Cache[V]) Restore(r io.Reader, schema string, codec Codec[V]) (RestoreStats, error) {
	var st RestoreStats
	gotSchema, records, err := restoreRead(r)
	if err != nil {
		return st, err
	}
	if gotSchema != schema {
		return st, fmt.Errorf("%w: snapshot %q, this binary %q", ErrSchemaMismatch, gotSchema, schema)
	}
	type decoded struct {
		key string
		val V
	}
	decs := make([]decoded, 0, len(records))
	for _, rec := range records {
		v, err := codec.Decode(rec.key, rec.val)
		if err != nil {
			return st, fmt.Errorf("%w: decoding %q: %v", ErrSnapshot, rec.key, err)
		}
		decs = append(decs, decoded{key: rec.key, val: v})
	}
	for _, d := range decs {
		s := c.shardFor(d.key)
		s.mu.Lock()
		switch {
		case s.items[d.key] != nil:
			st.SkippedExisting++
		case s.order.Len() >= s.cap:
			st.SkippedFull++
		default:
			s.items[d.key] = s.order.PushBack(&entry[V]{key: d.key, val: d.val})
			st.Restored++
		}
		s.mu.Unlock()
	}
	return st, nil
}

// FilterSnapshot copies the snapshot on r to w keeping only records whose
// key satisfies keep, re-checksumming the output. The schema passes through
// unchanged and no codec is needed: record values are copied as opaque
// bytes. This is how a router carves a replica-specific warming payload out
// of a donor's full dump without understanding the cached values.
func FilterSnapshot(r io.Reader, w io.Writer, keep func(key string) bool) (FilterStats, error) {
	var st FilterStats
	schema, records, err := restoreRead(r)
	if err != nil {
		return st, err
	}
	cw := newCRCWriter(w)
	if _, err := cw.Write(snapshotMagic[:]); err != nil {
		return st, err
	}
	if err := writeString(cw, schema); err != nil {
		return st, err
	}
	for _, rec := range records {
		if !keep(rec.key) {
			st.Dropped++
			continue
		}
		if _, err := cw.Write([]byte{tagEntry}); err != nil {
			return st, err
		}
		if err := writeString(cw, rec.key); err != nil {
			return st, err
		}
		if err := writeUint32(cw, uint32(len(rec.val))); err != nil {
			return st, err
		}
		if _, err := cw.Write(rec.val); err != nil {
			return st, err
		}
		st.Kept++
	}
	if _, err := cw.Write([]byte{tagEnd}); err != nil {
		return st, err
	}
	if err := writeUint32(w, cw.crc.Sum32()); err != nil {
		return st, err
	}
	return st, nil
}
