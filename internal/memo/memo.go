// Package memo is the daemon's memoization core: a generic, fixed-capacity,
// lock-striped LRU cache with per-shard singleflight coalescing. It is the
// shared machinery behind internal/service's Engine (where repeated
// Erlang/Mixture quantile bisections are the hot path) and usable by any
// other layer that wants "compute once, share forever" semantics without a
// global lock.
//
// Keys are strings, hashed with FNV-1a onto a power-of-two shard count, so
// independent keys contend only on their shard's mutex: N cores hammering a
// warm cache scale with the shard count instead of serializing on one lock.
// Each shard owns an LRU list, a hash map, hit/miss/eviction counters and a
// singleflight table, all guarded by the shard mutex; computations themselves
// run outside every lock, so a slow compute on one key never blocks lookups
// on any other — not even in the same shard.
//
// Values must be treated as immutable once stored: every hit hands out the
// same stored value.
package memo

import (
	"container/list"
	"fmt"
	"math"
	"runtime"
	"sync"
)

// DefaultShards returns the default shard count: runtime.GOMAXPROCS rounded
// up to a power of two, so at full parallelism each core maps to roughly one
// shard and same-shard collisions are the exception.
func DefaultShards() int {
	return ceilPow2(runtime.GOMAXPROCS(0))
}

// ceilPow2 rounds n up to the next power of two (minimum 1), saturating at
// the largest power of two an int holds rather than overflowing — New's
// capacity clamp brings an absurd request back down from there.
func ceilPow2(n int) int {
	p := 1
	for p < n && p <= math.MaxInt/2 {
		p <<= 1
	}
	return p
}

// Cache is a sharded LRU memo cache with singleflight miss coalescing. All
// methods are safe for concurrent use.
type Cache[V any] struct {
	shards []shard[V]
	mask   uint32
}

// shard is one stripe: an independent LRU with its own lock, counters and
// in-flight computation table.
type shard[V any] struct {
	mu     sync.Mutex
	cap    int
	order  *list.List // front = most recently used
	items  map[string]*list.Element
	flight map[string]*call[V]

	hits, misses, evictions uint64
}

// entry is one cached key/value pair, owned by its shard's LRU list.
type entry[V any] struct {
	key string
	val V
}

// call is one in-progress computation; done closes after val/err are set.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// New returns a cache holding at most capacity entries in total, striped
// over the given shard count. capacity < 1 is treated as 1. shards <= 0
// means DefaultShards(); any other value is rounded up to a power of two and
// clamped so every shard holds at least one entry (a tiny cache cannot be
// spread thinner than its capacity). The capacity is split across shards
// with the remainder going to the first shards, so the total stays exactly
// what the caller asked for.
func New[V any](capacity, shards int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	if shards <= 0 {
		shards = DefaultShards()
	}
	shards = ceilPow2(shards)
	for shards > capacity {
		shards >>= 1
	}
	c := &Cache[V]{shards: make([]shard[V], shards), mask: uint32(shards - 1)}
	base, extra := capacity/shards, capacity%shards
	for i := range c.shards {
		s := &c.shards[i]
		s.cap = base
		if i < extra {
			s.cap++
		}
		s.order = list.New()
		s.items = make(map[string]*list.Element, s.cap)
		s.flight = make(map[string]*call[V])
	}
	return c
}

// shardFor picks the stripe for a key by FNV-1a (inlined: the standard
// hash/fnv forces an allocation per Sum through its interface).
func (c *Cache[V]) shardFor(key string) *shard[V] {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return &c.shards[h&c.mask]
}

// Shards returns the shard count the cache resolved to.
func (c *Cache[V]) Shards() int { return len(c.shards) }

// Get returns the cached value and marks it most recently used, counting a
// hit or a miss on the key's shard.
func (c *Cache[V]) Get(key string) (V, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		s.misses++
		var zero V
		return zero, false
	}
	s.hits++
	s.order.MoveToFront(el)
	return el.Value.(*entry[V]).val, true
}

// Peek returns the cached value without side effects: no hit/miss counting
// and no recency update. It is for opportunistic reuse of auxiliary state a
// value may carry (a compiled pipeline, a derived table) where a plain Get
// would distort the client-visible cache statistics.
func (c *Cache[V]) Peek(key string) (V, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	return el.Value.(*entry[V]).val, true
}

// Put stores a value, evicting the shard's least recently used entries when
// its slice of the capacity is full.
func (c *Cache[V]) Put(key string, val V) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.putLocked(key, val)
}

func (s *shard[V]) putLocked(key string, val V) {
	if el, ok := s.items[key]; ok {
		el.Value.(*entry[V]).val = val
		s.order.MoveToFront(el)
		return
	}
	for s.order.Len() >= s.cap {
		back := s.order.Back()
		s.order.Remove(back)
		delete(s.items, back.Value.(*entry[V]).key)
		s.evictions++
	}
	s.items[key] = s.order.PushFront(&entry[V]{key: key, val: val})
}

// Len returns the total number of cached entries across all shards.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Do answers key from the cache, joining an identical in-flight computation
// when one exists, and otherwise runs compute exactly once, storing the
// result on success. shared reports whether the answer arrived without
// computing here: a cache hit or a joined flight. Failed computations are
// handed to their joiners but never cached, so the next request retries.
//
// The shard mutex guards the LRU and the flight table together, which makes
// the exactly-once guarantee a one-lock argument: a goroutine that misses
// either finds the leader's flight entry (and joins it) or runs after the
// leader published-and-retired under that same lock, in which case its
// lookup is a hit. There is no window for a second leader. The computation
// itself runs outside the lock, so one slow key never blocks its shard.
//
// Hit/miss counters record one miss per goroutine that missed the cache,
// joiners included; coalescing is visible to callers that count their own
// compute invocations (service.Engine.Computes), not in the miss counter.
func (c *Cache[V]) Do(key string, compute func() (V, error)) (v V, shared bool, err error) {
	s := c.shardFor(key)
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		s.hits++
		s.order.MoveToFront(el)
		v = el.Value.(*entry[V]).val
		s.mu.Unlock()
		return v, true, nil
	}
	s.misses++
	if cl, ok := s.flight[key]; ok {
		s.mu.Unlock()
		<-cl.done
		return cl.val, true, cl.err
	}
	cl := &call[V]{done: make(chan struct{})}
	s.flight[key] = cl
	s.mu.Unlock()

	// Publish and retire in a defer so a panicking compute cannot wedge the
	// key: the flight entry is removed and done is closed whatever happens
	// (joiners of a panicked computation get an error, not a zero success),
	// and the panic keeps unwinding to the caller afterwards.
	completed := false
	defer func() {
		if !completed {
			cl.err = fmt.Errorf("memo: computing %q panicked", key)
		}
		s.mu.Lock()
		if completed && cl.err == nil {
			s.putLocked(key, cl.val)
		}
		delete(s.flight, key)
		s.mu.Unlock()
		close(cl.done)
	}()
	cl.val, cl.err = compute()
	completed = true
	return cl.val, false, cl.err
}

// ShardStats is one shard's slice of the cache state.
type ShardStats struct {
	// Entries and Capacity are the shard's current occupancy and its slice
	// of the total capacity.
	Entries  int
	Capacity int
	// Hits, Misses and Evictions are cumulative.
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Stats is an aggregated snapshot: per-shard detail plus totals. The shards
// are snapshotted one at a time, so totals are consistent per shard but not
// across a concurrent writer — fine for monitoring, which is their job.
type Stats struct {
	Shards []ShardStats
	// Entries, Hits, Misses and Evictions sum the per-shard values.
	Entries   int
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Stats snapshots every shard's occupancy and counters.
func (c *Cache[V]) Stats() Stats {
	st := Stats{Shards: make([]ShardStats, len(c.shards))}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		ss := ShardStats{
			Entries:   s.order.Len(),
			Capacity:  s.cap,
			Hits:      s.hits,
			Misses:    s.misses,
			Evictions: s.evictions,
		}
		s.mu.Unlock()
		st.Shards[i] = ss
		st.Entries += ss.Entries
		st.Hits += ss.Hits
		st.Misses += ss.Misses
		st.Evictions += ss.Evictions
	}
	return st
}
