package memo

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkMemoGetPut is the striping case in miniature: every goroutine
// works a 90% hot-hit / 10% churn-put mix. Run with -cpu 1,4,8 the sharded
// default should scale with cores where a single stripe serializes — the
// shards=1 sub-benchmark is that old single-mutex behavior, kept as the
// in-repo control.
func BenchmarkMemoGetPut(b *testing.B) {
	const keys = 256
	bench := func(b *testing.B, shards int) {
		c := New[int](4096, shards)
		hot := make([]string, keys)
		for i := range hot {
			hot[i] = fmt.Sprintf("key-%d", i)
			c.Put(hot[i], i)
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(1))
			i := 0
			for pb.Next() {
				i++
				if i%10 == 0 {
					c.Put(fmt.Sprintf("churn-%d", rng.Intn(keys)), i)
				} else {
					c.Get(hot[rng.Intn(keys)])
				}
			}
		})
	}
	b.Run("shards=1", func(b *testing.B) { bench(b, 1) })
	b.Run("sharded", func(b *testing.B) { bench(b, 0) })
}
