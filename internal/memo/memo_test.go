package memo

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"
)

func TestShardCountResolution(t *testing.T) {
	cases := []struct {
		capacity, shards, want int
	}{
		{1024, 1, 1},
		{1024, 2, 2},
		{1024, 3, 4}, // rounded up to a power of two
		{1024, 5, 8},
		{4, 8, 4}, // clamped: every shard must hold >= 1 entry
		{3, 8, 2}, // clamp keeps the power of two
		{1, 64, 1},
		{0, 16, 1}, // capacity floor of 1 clamps shards to 1 too
	}
	for _, c := range cases {
		got := New[int](c.capacity, c.shards).Shards()
		if got != c.want {
			t.Errorf("New(cap=%d, shards=%d).Shards() = %d, want %d",
				c.capacity, c.shards, got, c.want)
		}
	}
	if def := New[int](1<<20, 0).Shards(); def != DefaultShards() {
		t.Errorf("shards<=0 resolved to %d, want DefaultShards()=%d", def, DefaultShards())
	}
	// An absurd shard request must neither loop nor overflow: ceilPow2
	// saturates and the capacity clamp brings it back down.
	if got := New[int](64, math.MaxInt).Shards(); got != 64 {
		t.Errorf("New(64, MaxInt).Shards() = %d, want 64", got)
	}
	if d := DefaultShards(); d&(d-1) != 0 || d < 1 {
		t.Errorf("DefaultShards() = %d is not a power of two", d)
	}
}

func TestCapacitySplitPreservesTotal(t *testing.T) {
	for _, capacity := range []int{1, 2, 7, 64, 100, 4096} {
		for _, shards := range []int{1, 2, 8, 16} {
			c := New[int](capacity, shards)
			total := 0
			for _, s := range c.Stats().Shards {
				if s.Capacity < 1 {
					t.Fatalf("cap=%d shards=%d: shard capacity %d < 1", capacity, shards, s.Capacity)
				}
				total += s.Capacity
			}
			if total != capacity {
				t.Errorf("cap=%d shards=%d: shard capacities sum to %d", capacity, shards, total)
			}
		}
	}
}

func TestSingleShardLRUSemantics(t *testing.T) {
	// With one shard the cache is a plain LRU: the old engine cache's
	// eviction-order contract must hold exactly.
	c := New[int](2, 1)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // update, not insert: moves a to front
	c.Put("c", 3)  // evicts b, the LRU entry
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if v, ok := c.Get("a"); !ok || v != 10 {
		t.Errorf("a = %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Errorf("stats = %+v, want 2 entries, 1 eviction", st)
	}
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", st.Hits, st.Misses)
	}
}

func TestGetTouchesRecency(t *testing.T) {
	c := New[int](2, 1)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a")    // a becomes most recently used
	c.Put("c", 3) // evicts b
	if _, ok := c.Get("a"); !ok {
		t.Error("touched entry evicted")
	}
	if _, ok := c.Get("b"); ok {
		t.Error("untouched entry survived")
	}
}

func TestStatsAggregateAcrossShards(t *testing.T) {
	c := New[string](64, 8)
	if c.Shards() != 8 {
		t.Fatalf("Shards() = %d", c.Shards())
	}
	for i := 0; i < 32; i++ {
		c.Put(fmt.Sprintf("key-%d", i), "v")
	}
	st := c.Stats()
	if st.Entries != 32 || c.Len() != 32 {
		t.Errorf("entries = %d, Len = %d, want 32", st.Entries, c.Len())
	}
	sum := 0
	for _, s := range st.Shards {
		sum += s.Entries
	}
	if sum != st.Entries {
		t.Errorf("per-shard entries sum %d != total %d", sum, st.Entries)
	}
	for i := 0; i < 32; i++ {
		c.Get(fmt.Sprintf("key-%d", i))
	}
	c.Get("absent")
	st = c.Stats()
	if st.Hits != 32 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 32/1", st.Hits, st.Misses)
	}
}

func TestDoComputesOncePerKey(t *testing.T) {
	c := New[int](128, 4)
	const k = 16
	var computes int
	var mu sync.Mutex
	gate := make(chan struct{})
	var wg sync.WaitGroup
	vals := make([]int, k)
	shareds := make([]bool, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			v, shared, err := c.Do("key", func() (int, error) {
				mu.Lock()
				computes++
				mu.Unlock()
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i], shareds[i] = v, shared
		}(i)
	}
	close(gate)
	wg.Wait()
	if computes != 1 {
		t.Errorf("%d concurrent Do calls ran %d computes, want 1", k, computes)
	}
	leaders := 0
	for i := 0; i < k; i++ {
		if vals[i] != 42 {
			t.Errorf("goroutine %d got %d", i, vals[i])
		}
		if !shareds[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("%d goroutines reported shared=false, want exactly the leader", leaders)
	}
	// A later call is a plain hit.
	if _, shared, _ := c.Do("key", func() (int, error) { t.Error("recomputed"); return 0, nil }); !shared {
		t.Error("warm Do missed the cache")
	}
}

func TestDoErrorsNotCached(t *testing.T) {
	c := New[int](8, 2)
	boom := errors.New("boom")
	calls := 0
	fail := func() (int, error) { calls++; return 0, boom }
	if _, shared, err := c.Do("k", fail); err != boom || shared {
		t.Fatalf("first Do: shared=%v err=%v", shared, err)
	}
	if _, _, err := c.Do("k", fail); err != boom {
		t.Fatalf("second Do err=%v", err)
	}
	if calls != 2 {
		t.Errorf("failing compute ran %d times, want 2 (errors are never cached)", calls)
	}
	if c.Len() != 0 {
		t.Errorf("failed computes left %d entries", c.Len())
	}
}

// TestDoPanicDoesNotWedgeKey pins panic safety: a compute that panics still
// retires its flight entry (the panic propagates to its caller), joiners of
// the doomed flight get an error rather than a zero-value success, and the
// key stays answerable afterwards.
func TestDoPanicDoesNotWedgeKey(t *testing.T) {
	c := New[int](8, 2)
	joined := make(chan struct{})
	joinerDone := make(chan error, 1)
	go func() {
		// Joins the panicking leader's flight once it is registered.
		<-joined
		_, _, err := c.Do("k", func() (int, error) { return 7, nil })
		joinerDone <- err
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the leader's caller")
			}
		}()
		c.Do("k", func() (int, error) {
			close(joined)
			// Give the joiner a beat to register on the flight; even if it
			// misses the window and recomputes instead, it must not hang.
			for i := 0; i < 1000; i++ {
				runtime.Gosched()
			}
			panic("boom")
		})
	}()
	if err := <-joinerDone; err != nil {
		// A joiner of the panicked flight sees an error — acceptable; a
		// late arrival recomputes and succeeds — also acceptable. Either
		// way the next call must work:
		t.Logf("joiner observed: %v", err)
	}
	v, _, err := c.Do("k", func() (int, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Fatalf("key wedged after panic: v=%d err=%v", v, err)
	}
}

func TestDoDistinctKeysDoNotCoalesce(t *testing.T) {
	c := New[int](128, 4)
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("k%d", i)
		v, shared, err := c.Do(key, func() (int, error) { return i, nil })
		if err != nil || shared || v != i {
			t.Fatalf("key %s: v=%d shared=%v err=%v", key, v, shared, err)
		}
	}
	if c.Len() != 20 {
		t.Errorf("Len = %d, want 20", c.Len())
	}
}

func TestZeroValueHit(t *testing.T) {
	// A stored zero value is still a hit (the ok bool disambiguates).
	c := New[int](8, 1)
	c.Put("zero", 0)
	if v, ok := c.Get("zero"); !ok || v != 0 {
		t.Errorf("zero value: v=%d ok=%v", v, ok)
	}
}
