package memo

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"strings"
	"testing"
)

// stringCodec snapshots string values verbatim; keys starting with "skip|"
// are declined, modeling values (compiled pipelines) with no serialization.
type stringCodec struct{}

func (stringCodec) Encode(key, val string) ([]byte, bool, error) {
	if strings.HasPrefix(key, "skip|") {
		return nil, false, nil
	}
	return []byte(val), true, nil
}

func (stringCodec) Decode(key string, data []byte) (string, error) {
	return string(data), nil
}

// recencyOrder lists one shard's keys front (most recently used) to back.
func recencyOrder(c *Cache[string], shard int) []string {
	s := &c.shards[shard]
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for el := s.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry[string]).key)
	}
	return out
}

// dump is the test shorthand for a buffer-backed Dump.
func dump(t *testing.T, c *Cache[string], schema string) []byte {
	t.Helper()
	var buf bytes.Buffer
	st, err := c.Dump(&buf, schema, stringCodec{})
	if err != nil {
		t.Fatalf("Dump: %v", err)
	}
	if st.Bytes != int64(buf.Len()) {
		t.Fatalf("DumpStats.Bytes %d, wrote %d", st.Bytes, buf.Len())
	}
	return buf.Bytes()
}

// TestSnapshotRoundTrip is the headline property: Dump then Restore into an
// identically configured empty cache reproduces every entry, every shard's
// recency order, and leaves the lookup counters of both caches untouched.
// Runs over several shapes including single-shard and eviction-churned.
func TestSnapshotRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name             string
		capacity, shards int
		keys             int
	}{
		{"single-shard", 64, 1, 40},
		{"sharded", 256, 8, 200},
		{"evicting", 32, 4, 200}, // more keys than capacity: churn + evictions
		{"tiny", 1, 1, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			src := New[string](tc.capacity, tc.shards)
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < tc.keys; i++ {
				src.Put(fmt.Sprintf("key-%03d", i), fmt.Sprintf("val-%03d", i))
			}
			// Shuffle recency with a burst of Gets so order differs from
			// insertion order.
			for i := 0; i < tc.keys; i++ {
				src.Get(fmt.Sprintf("key-%03d", rng.Intn(tc.keys)))
			}
			statsBefore := src.Stats()

			snap := dump(t, src, "schema-v1")
			assertStatsEqual(t, "dump must not disturb counters", statsBefore, src.Stats())

			dst := New[string](tc.capacity, tc.shards)
			st, err := dst.Restore(bytes.NewReader(snap), "schema-v1", stringCodec{})
			if err != nil {
				t.Fatalf("Restore: %v", err)
			}
			if st.Restored != src.Len() || st.SkippedExisting != 0 || st.SkippedFull != 0 {
				t.Fatalf("RestoreStats %+v, want %d restored and nothing skipped", st, src.Len())
			}
			if dst.Len() != src.Len() {
				t.Fatalf("restored %d entries, want %d", dst.Len(), src.Len())
			}
			for sh := 0; sh < len(src.shards); sh++ {
				srcOrder := recencyOrder(src, sh)
				dstOrder := recencyOrder(dst, sh)
				if fmt.Sprint(srcOrder) != fmt.Sprint(dstOrder) {
					t.Fatalf("shard %d recency differs:\n src %v\n dst %v", sh, srcOrder, dstOrder)
				}
			}
			for sh := range src.shards {
				for _, key := range recencyOrder(src, sh) {
					want, _ := src.Peek(key)
					got, ok := dst.Peek(key)
					if !ok || got != want {
						t.Fatalf("key %q: restored %q (present %v), want %q", key, got, ok, want)
					}
				}
			}
			// Restore must not have counted hits, misses or evictions.
			rs := dst.Stats()
			if rs.Hits != 0 || rs.Misses != 0 || rs.Evictions != 0 {
				t.Fatalf("restore distorted counters: %+v", rs)
			}
		})
	}
}

func assertStatsEqual(t *testing.T, msg string, a, b Stats) {
	t.Helper()
	if a.Entries != b.Entries || a.Hits != b.Hits || a.Misses != b.Misses || a.Evictions != b.Evictions {
		t.Fatalf("%s: %+v vs %+v", msg, a, b)
	}
}

// TestSnapshotSkipsUncodableEntries pins the codec skip contract: entries
// the codec declines are absent from the stream and counted, everything
// else round-trips.
func TestSnapshotSkipsUncodableEntries(t *testing.T) {
	c := New[string](16, 2)
	c.Put("skip|compiled", "not serializable")
	c.Put("rtt|a", "1")
	c.Put("rtt|b", "2")
	var buf bytes.Buffer
	st, err := c.Dump(&buf, "s", stringCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 2 || st.Skipped != 1 {
		t.Fatalf("DumpStats %+v, want 2 entries 1 skipped", st)
	}
	dst := New[string](16, 2)
	if _, err := dst.Restore(bytes.NewReader(buf.Bytes()), "s", stringCodec{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := dst.Peek("skip|compiled"); ok {
		t.Fatal("skipped entry resurfaced after restore")
	}
	if dst.Len() != 2 {
		t.Fatalf("restored %d entries, want 2", dst.Len())
	}
}

// TestRestoreNeverClobbers pins the warm-endpoint semantics: a key already
// live keeps its (newer) value, restored entries rank behind every live
// entry in recency, and a full shard skips archived entries instead of
// evicting live ones.
func TestRestoreNeverClobbers(t *testing.T) {
	src := New[string](8, 1)
	src.Put("a", "old-a")
	src.Put("b", "old-b")
	src.Put("c", "old-c")
	snap := dump(t, src, "s")

	dst := New[string](8, 1)
	dst.Put("a", "new-a") // live entry predating the restore
	st, err := dst.Restore(bytes.NewReader(snap), "s", stringCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Restored != 2 || st.SkippedExisting != 1 {
		t.Fatalf("RestoreStats %+v, want 2 restored 1 existing", st)
	}
	if v, _ := dst.Peek("a"); v != "new-a" {
		t.Fatalf("restore clobbered live entry: %q", v)
	}
	// Live "a" must outrank both archived entries; archived order (c newest,
	// b older) must be preserved behind it.
	if got := fmt.Sprint(recencyOrder(dst, 0)); got != "[a c b]" {
		t.Fatalf("recency after mixed restore: %v", got)
	}

	full := New[string](2, 1)
	full.Put("x", "live-x")
	full.Put("y", "live-y")
	st, err = full.Restore(bytes.NewReader(snap), "s", stringCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Restored != 0 || st.SkippedFull != 3 {
		t.Fatalf("RestoreStats %+v, want everything skipped-full", st)
	}
	if full.Stats().Evictions != 0 {
		t.Fatal("restore evicted a live entry")
	}
}

// TestRestoreRejectsBadSnapshots drives every rejection path: corruption,
// truncation, bad magic/version, schema mismatch, trailing garbage and
// oversized length fields. Each must fail with the right sentinel and leave
// the cache untouched — the "boot cold, never crash" contract.
func TestRestoreRejectsBadSnapshots(t *testing.T) {
	src := New[string](16, 2)
	for i := 0; i < 10; i++ {
		src.Put(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	good := dump(t, src, "schema-v1")

	// fixCRC rewrites the trailing checksum so a mutation is tested on its
	// own merits, not masked by the CRC gate.
	fixCRC := func(b []byte) []byte {
		body := b[:len(b)-4]
		binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.ChecksumIEEE(body))
		return b
	}
	corrupt := func(mut func([]byte) []byte) []byte {
		return mut(append([]byte(nil), good...))
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrSnapshot},
		{"short", good[:4], ErrSnapshot},
		{"bad-magic", corrupt(func(b []byte) []byte { b[0] = 'X'; return fixCRC(b) }), ErrSnapshot},
		{"bad-version", corrupt(func(b []byte) []byte { b[7] = '9'; return fixCRC(b) }), ErrSnapshot},
		{"flipped-byte", corrupt(func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b }), ErrSnapshot},
		{"truncated", good[:len(good)-9], ErrSnapshot},
		{"trailing-garbage", corrupt(func(b []byte) []byte { return fixCRC(append(b, 0xde, 0xad, 0, 0)) }), ErrSnapshot},
		{"schema-mismatch", good, ErrSchemaMismatch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dst := New[string](16, 2)
			schema := "schema-v1"
			if tc.name == "schema-mismatch" {
				schema = "schema-v2"
			}
			_, err := dst.Restore(bytes.NewReader(tc.data), schema, stringCodec{})
			if !errors.Is(err, tc.want) {
				t.Fatalf("err %v, want %v", err, tc.want)
			}
			if dst.Len() != 0 {
				t.Fatalf("rejected restore still applied %d entries", dst.Len())
			}
		})
	}
}

// TestRestoreRejectsCorruptionBeforeApplying flips every single byte of a
// small snapshot in turn; no mutation may ever half-restore (a prefix of
// entries applied then an error) — the cache is all-or-nothing.
func TestRestoreRejectsCorruptionBeforeApplying(t *testing.T) {
	src := New[string](8, 1)
	src.Put("alpha", "1")
	src.Put("beta", "2")
	good := dump(t, src, "s")
	for i := range good {
		for _, flip := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), good...)
			mut[i] ^= flip
			dst := New[string](8, 1)
			_, err := dst.Restore(bytes.NewReader(mut), "s", stringCodec{})
			if err == nil {
				// A flip confined to value bytes plus a colliding CRC is the
				// only way this could legitimately succeed; CRC32 makes a
				// single-bit collision impossible.
				t.Fatalf("byte %d flip %#x: corrupt snapshot accepted", i, flip)
			}
			if dst.Len() != 0 {
				t.Fatalf("byte %d flip %#x: half-restored %d entries", i, flip, dst.Len())
			}
		}
	}
}

// TestSnapshotAcrossShardCounts: a snapshot restores into a cache with a
// different shard count — keys rehash to their new shards, all entries land.
func TestSnapshotAcrossShardCounts(t *testing.T) {
	src := New[string](128, 8)
	for i := 0; i < 100; i++ {
		src.Put(fmt.Sprintf("key-%d", i), fmt.Sprintf("v%d", i))
	}
	snap := dump(t, src, "s")
	// Destination capacity is doubled: a different shard count redistributes
	// keys, and a shard whose slice of the capacity overflows would (by
	// design) skip the excess rather than evict.
	for _, shards := range []int{1, 2, 16} {
		dst := New[string](256, shards)
		st, err := dst.Restore(bytes.NewReader(snap), "s", stringCodec{})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if st.Restored != 100 || dst.Len() != 100 {
			t.Fatalf("shards=%d: restored %d/%d", shards, st.Restored, dst.Len())
		}
	}
}

// TestFilterSnapshot pins the router-bootstrap primitive: filtering keeps
// exactly the selected records (order preserved, schema passed through,
// fresh checksum) without a codec, and the output is itself a valid
// snapshot.
func TestFilterSnapshot(t *testing.T) {
	src := New[string](64, 4)
	for i := 0; i < 20; i++ {
		src.Put(fmt.Sprintf("key-%02d", i), fmt.Sprintf("v%d", i))
	}
	snap := dump(t, src, "schema-xyz")

	var out bytes.Buffer
	st, err := FilterSnapshot(bytes.NewReader(snap), &out, func(key string) bool {
		return strings.HasSuffix(key, "0") // key-00, key-10
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Kept != 2 || st.Dropped != 18 {
		t.Fatalf("FilterStats %+v, want 2 kept 18 dropped", st)
	}
	dst := New[string](64, 4)
	rst, err := dst.Restore(bytes.NewReader(out.Bytes()), "schema-xyz", stringCodec{})
	if err != nil {
		t.Fatalf("restoring filtered snapshot: %v", err)
	}
	if rst.Restored != 2 || dst.Len() != 2 {
		t.Fatalf("filtered restore %+v len %d, want 2", rst, dst.Len())
	}
	for _, key := range []string{"key-00", "key-10"} {
		if _, ok := dst.Peek(key); !ok {
			t.Fatalf("filtered snapshot lost %q", key)
		}
	}
	// Filtering a corrupt stream fails without writing records.
	bad := append([]byte(nil), snap...)
	bad[len(bad)-1] ^= 0xff
	var discard bytes.Buffer
	if _, err := FilterSnapshot(bytes.NewReader(bad), &discard, func(string) bool { return true }); !errors.Is(err, ErrSnapshot) {
		t.Fatalf("filter of corrupt snapshot: %v, want ErrSnapshot", err)
	}
}

// TestSnapshotEmptyCache: dumping an empty cache yields a valid snapshot
// that restores to nothing.
func TestSnapshotEmptyCache(t *testing.T) {
	snap := dump(t, New[string](16, 2), "s")
	dst := New[string](16, 2)
	st, err := dst.Restore(bytes.NewReader(snap), "s", stringCodec{})
	if err != nil || st.Restored != 0 || dst.Len() != 0 {
		t.Fatalf("empty round trip: stats %+v len %d err %v", st, dst.Len(), err)
	}
}
