package memo

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestStressAccountingConservation hammers a deliberately undersized cache
// from 4x GOMAXPROCS goroutines with a mixed hot/cold key workload and
// checks the books afterwards: every successful compute inserts exactly one
// absent key, so inserts must equal entries plus evictions, summed across
// shards — an eviction lost (or double-counted) by any stripe breaks the
// identity. Run under -race this is also the package's concurrency proof.
func TestStressAccountingConservation(t *testing.T) {
	const (
		capacity = 64
		hotKeys  = 16  // fit comfortably: mostly hits
		coldKeys = 512 // 8x capacity: constant eviction churn
		opsEach  = 400
	)
	c := New[int](capacity, 8)
	var computes atomic.Uint64
	var lookups atomic.Uint64
	workers := 4 * runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			<-gate
			for i := 0; i < opsEach; i++ {
				var key string
				if rng.Intn(4) > 0 { // 75% hot
					key = fmt.Sprintf("hot-%d", rng.Intn(hotKeys))
				} else {
					key = fmt.Sprintf("cold-%d", rng.Intn(coldKeys))
				}
				lookups.Add(1)
				v, _, err := c.Do(key, func() (int, error) {
					computes.Add(1)
					return len(key), nil
				})
				if err != nil || v != len(key) {
					t.Errorf("Do(%s) = %d, %v", key, v, err)
					return
				}
			}
		}(w)
	}
	close(gate)
	wg.Wait()

	st := c.Stats()
	if got := uint64(st.Entries) + st.Evictions; got != computes.Load() {
		t.Errorf("accounting broken: %d entries + %d evictions != %d computes",
			st.Entries, st.Evictions, computes.Load())
	}
	if st.Hits+st.Misses != lookups.Load() {
		t.Errorf("hit/miss accounting broken: %d + %d != %d lookups",
			st.Hits, st.Misses, lookups.Load())
	}
	if st.Entries > capacity {
		t.Errorf("%d entries exceed total capacity %d", st.Entries, capacity)
	}
	for i, s := range st.Shards {
		if s.Entries > s.Capacity {
			t.Errorf("shard %d holds %d entries over its capacity %d", i, s.Entries, s.Capacity)
		}
	}
	if st.Evictions == 0 {
		t.Error("stress never evicted: the cold key space should overflow the cache")
	}
}
