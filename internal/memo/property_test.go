package memo

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// refLRU is the obviously-correct reference model: a map plus an explicit
// recency slice, no locks, no shards. The property tests compare the cache
// against it op for op.
type refLRU struct {
	cap    int
	order  []string // front = most recently used
	items  map[string]int
	hits   uint64
	misses uint64
	evicts uint64
}

func newRefLRU(capacity int) *refLRU {
	if capacity < 1 {
		capacity = 1
	}
	return &refLRU{cap: capacity, items: make(map[string]int)}
}

func (r *refLRU) touch(key string) {
	for i, k := range r.order {
		if k == key {
			r.order = append([]string{key}, append(r.order[:i], r.order[i+1:]...)...)
			return
		}
	}
}

func (r *refLRU) get(key string) (int, bool) {
	v, ok := r.items[key]
	if !ok {
		r.misses++
		return 0, false
	}
	r.hits++
	r.touch(key)
	return v, true
}

func (r *refLRU) put(key string, val int) {
	if _, ok := r.items[key]; ok {
		r.items[key] = val
		r.touch(key)
		return
	}
	for len(r.order) >= r.cap {
		last := r.order[len(r.order)-1]
		r.order = r.order[:len(r.order)-1]
		delete(r.items, last)
		r.evicts++
	}
	r.order = append([]string{key}, r.order...)
	r.items[key] = val
}

// TestPropertySingleShardMatchesReference drives a single-shard cache and
// the reference model through the same random op sequence: every get result,
// every counter and the final occupancy must match exactly. With one shard
// the cache must BE an LRU, not merely resemble one — this is the contract
// the engine's eviction tests stand on.
func TestPropertySingleShardMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		capacity := 1 + rng.Intn(12)
		c := New[int](capacity, 1)
		ref := newRefLRU(capacity)
		keys := make([]string, 3+rng.Intn(20))
		for i := range keys {
			keys[i] = fmt.Sprintf("k%d", i)
		}
		for op := 0; op < 500; op++ {
			key := keys[rng.Intn(len(keys))]
			if rng.Intn(2) == 0 {
				val := rng.Intn(1000)
				c.Put(key, val)
				ref.put(key, val)
			} else {
				got, gotOK := c.Get(key)
				want, wantOK := ref.get(key)
				if gotOK != wantOK || got != want {
					t.Fatalf("seed %d op %d: Get(%s) = (%d, %v), reference (%d, %v)",
						seed, op, key, got, gotOK, want, wantOK)
				}
			}
		}
		st := c.Stats()
		if st.Entries != len(ref.items) {
			t.Errorf("seed %d: entries %d, reference %d", seed, st.Entries, len(ref.items))
		}
		if st.Hits != ref.hits || st.Misses != ref.misses || st.Evictions != ref.evicts {
			t.Errorf("seed %d: counters %d/%d/%d, reference %d/%d/%d", seed,
				st.Hits, st.Misses, st.Evictions, ref.hits, ref.misses, ref.evicts)
		}
	}
}

// TestPropertyShardedMatchesSingleShardAnswers pins the striping contract:
// for any interleaving of Do calls, a sharded cache and a single-shard cache
// return identical answers. The values are a pure function of the key, so
// answers must be correct whatever shard the key lands on and however the
// goroutines race; with capacity covering the key space, the two layouts
// also agree on total misses (one per distinct key, plus joiners) and total
// computes (exactly one per distinct key).
func TestPropertyShardedMatchesSingleShardAnswers(t *testing.T) {
	value := func(key string) int {
		h := 17
		for i := 0; i < len(key); i++ {
			h = 31*h + int(key[i])
		}
		return h
	}
	for seed := int64(0); seed < 5; seed++ {
		keys := make([]string, 32)
		for i := range keys {
			keys[i] = fmt.Sprintf("scenario-%d-%d", seed, i)
		}
		for _, shards := range []int{1, 8} {
			c := New[int](1024, shards)
			var computes sync.Map
			var wg sync.WaitGroup
			workers := 8
			perWorker := 200
			results := make([][]int, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed*1000 + int64(w)))
					results[w] = make([]int, perWorker)
					for i := 0; i < perWorker; i++ {
						key := keys[rng.Intn(len(keys))]
						v, _, err := c.Do(key, func() (int, error) {
							n, _ := computes.LoadOrStore(key, new(int))
							// Concurrent increments on the same key would be a
							// singleflight violation; detected below via count.
							*(n.(*int))++
							return value(key), nil
						})
						if err != nil {
							t.Error(err)
							return
						}
						results[w][i] = v
					}
				}(w)
			}
			wg.Wait()
			// Every answer equals the pure function of its key, whatever the
			// interleaving — identical between sharded and single-shard runs
			// by transitivity.
			for w := 0; w < workers; w++ {
				rng := rand.New(rand.NewSource(seed*1000 + int64(w)))
				for i := 0; i < perWorker; i++ {
					key := keys[rng.Intn(len(keys))]
					if results[w][i] != value(key) {
						t.Fatalf("shards=%d seed=%d: worker %d op %d on %s got %d, want %d",
							shards, seed, w, i, key, results[w][i], value(key))
					}
				}
			}
			distinct := 0
			computes.Range(func(_, n any) bool {
				distinct++
				if got := *(n.(*int)); got != 1 {
					t.Errorf("shards=%d seed=%d: a key computed %d times, want 1", shards, seed, got)
				}
				return true
			})
			st := c.Stats()
			if st.Entries != distinct {
				t.Errorf("shards=%d seed=%d: %d entries for %d distinct keys", shards, seed, st.Entries, distinct)
			}
			if st.Evictions != 0 {
				t.Errorf("shards=%d seed=%d: %d evictions with capacity >> keys", shards, seed, st.Evictions)
			}
		}
	}
}
