package client

import (
	"context"
	"errors"
	"net/http"
	"testing"

	"fpsping/internal/scenario"
)

// TestCacheDumpWarmRoundTrip moves a cache between two daemons through the
// typed client: dump the donor, warm a fresh target, and get the donor's
// answer back as a hit with zero computations on the target.
func TestCacheDumpWarmRoundTrip(t *testing.T) {
	ctx := context.Background()
	donor, donorEng := newPair(t)

	sc := scenario.Default()
	sc.Load = 0.42
	want, cached, err := donor.RTT(ctx, sc)
	if err != nil || cached {
		t.Fatalf("cold donor RTT: cached=%v err=%v", cached, err)
	}

	snap, err := donor.CacheDump(ctx)
	if err != nil {
		t.Fatalf("CacheDump: %v", err)
	}
	if len(snap) == 0 {
		t.Fatal("empty snapshot from a filled cache")
	}

	target, targetEng := newPair(t)
	res, err := target.CacheWarm(ctx, snap)
	if err != nil {
		t.Fatalf("CacheWarm: %v", err)
	}
	if res.Restored == 0 || res.CacheEntries == 0 {
		t.Fatalf("implausible warm result: %+v", res)
	}

	got, cached, err := target.RTT(ctx, sc)
	if err != nil {
		t.Fatalf("warm target RTT: %v", err)
	}
	if !cached {
		t.Error("warm target answered a restored key as a miss")
	}
	if got != want {
		t.Errorf("warm answer differs:\ndonor:  %+v\ntarget: %+v", want, got)
	}
	if n := targetEng.Computes(); n != 0 {
		t.Errorf("warm target ran %d computations, want 0", n)
	}
	_ = donorEng
}

// TestCacheWarmBadSnapshotIsAPIError: a garbage snapshot surfaces as the
// daemon's 400, typed, with the cache left cold.
func TestCacheWarmBadSnapshotIsAPIError(t *testing.T) {
	ctx := context.Background()
	c, eng := newPair(t)
	_, err := c.CacheWarm(ctx, []byte("not a snapshot"))
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("want APIError 400, got %v", err)
	}
	if entries, _, _ := eng.CacheStats(); entries != 0 {
		t.Errorf("rejected snapshot left %d entries", entries)
	}
}
