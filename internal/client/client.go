// Package client is the typed Go client for fpspingd: one method per
// endpoint (RTT, Batch, Sweep, Dimension, Models, Health, Metrics) plus the
// generic Do primitive they are built on. Requests and responses are the
// daemon's own wire types — scenario.Scenario going out, the service
// package's result structs coming back — so client and server cannot drift
// apart, and a value that round-trips through the daemon is the value the
// engine computed.
//
// A Client is safe for concurrent use and reuses connections: the default
// transport keeps enough idle keep-alive connections per host for a load
// generator's worth of goroutines to hammer one daemon without handshake
// churn. Every method takes a context and honors its cancellation.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"time"

	"fpsping/internal/scenario"
	"fpsping/internal/service"
)

// DefaultTimeout bounds one request (dial + send + full response) unless
// WithTimeout or WithHTTPClient overrides it. Cold dimensioning bisections
// run hundreds of quantile inversions, so the default is generous.
const DefaultTimeout = 60 * time.Second

// maxResponseBytes bounds response bodies read into memory; the largest
// legitimate response (a few thousand batch items) stays far below it.
const maxResponseBytes = 64 << 20

// Client talks to one fpspingd base URL.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures a Client at construction.
type Option func(*Client)

// WithHTTPClient replaces the whole underlying *http.Client (transport,
// timeout, cookie jar). Later options still apply on top of it.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithTransport replaces only the transport, keeping the client's timeout.
func WithTransport(rt http.RoundTripper) Option { return func(c *Client) { c.hc.Transport = rt } }

// WithTimeout sets the per-request timeout (0 means no timeout beyond the
// context's).
func WithTimeout(d time.Duration) Option { return func(c *Client) { c.hc.Timeout = d } }

// newTransport returns the connection-reusing default transport: generous
// idle pools per host so N concurrent workers multiplex over warm
// keep-alive connections instead of redialing.
func newTransport() *http.Transport {
	return &http.Transport{
		DialContext: (&net.Dialer{
			Timeout:   10 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 256,
		IdleConnTimeout:     90 * time.Second,
	}
}

// New returns a client for the daemon at base (e.g. "http://127.0.0.1:7900").
func New(base string, opts ...Option) (*Client, error) {
	u, err := url.Parse(base)
	if err != nil {
		return nil, fmt.Errorf("client: base URL %q: %w", base, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q must be http(s)://host[:port]", base)
	}
	c := &Client{
		base: strings.TrimRight(u.String(), "/"),
		hc:   &http.Client{Transport: newTransport(), Timeout: DefaultTimeout},
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// Base returns the normalized base URL the client talks to.
func (c *Client) Base() string { return c.base }

// APIError is a non-2xx daemon answer, carrying the HTTP status and the
// daemon's error envelope message. 400s are malformed requests, 422s are
// valid questions with a negative answer (an unstable scenario).
type APIError struct {
	StatusCode int
	Message    string
}

// Error formats "fpspingd: message (HTTP 400)".
func (e *APIError) Error() string {
	return fmt.Sprintf("fpspingd: %s (HTTP %d)", e.Message, e.StatusCode)
}

// raw performs one request and returns the response body and header.
// Non-2xx statuses decode the daemon's error envelope into an *APIError.
func (c *Client) raw(ctx context.Context, method, path string, body any) ([]byte, http.Header, error) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return nil, nil, fmt.Errorf("client: encoding request: %w", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, nil, fmt.Errorf("client: %w", err)
	}
	req.Header.Set("Accept", "application/json")
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, nil, fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return nil, resp.Header, fmt.Errorf("client: reading %s response: %w", path, err)
	}
	if resp.StatusCode/100 != 2 {
		var envelope struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(data))
		if json.Unmarshal(data, &envelope) == nil && envelope.Error != "" {
			msg = envelope.Error
		}
		return data, resp.Header, &APIError{StatusCode: resp.StatusCode, Message: msg}
	}
	return data, resp.Header, nil
}

// Do performs one JSON request against path ("/v1/rtt", query strings
// allowed): body is JSON-encoded when non-nil, a 2xx response is decoded
// into out when non-nil, and a non-2xx response becomes an *APIError. The
// response header is returned either way so callers can read CacheHeader.
// The typed endpoint methods below are Do with the wire types filled in.
func (c *Client) Do(ctx context.Context, method, path string, body, out any) (http.Header, error) {
	data, header, err := c.raw(ctx, method, path, body)
	if err != nil {
		return header, err
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return header, fmt.Errorf("client: decoding %s response: %w", path, err)
		}
	}
	return header, nil
}

// cachedHeader reads the daemon's cache disposition from a response header.
func cachedHeader(h http.Header) bool {
	return h != nil && h.Get(service.CacheHeader) == "hit"
}

// RTT evaluates one scenario (POST /v1/rtt). The bool mirrors the daemon's
// cache header: whether the answer came from the engine cache (or a joined
// in-flight computation) rather than a fresh computation.
func (c *Client) RTT(ctx context.Context, sc scenario.Scenario) (service.RTTResult, bool, error) {
	var res service.RTTResult
	h, err := c.Do(ctx, http.MethodPost, "/v1/rtt", sc, &res)
	return res, cachedHeader(h), err
}

// Batch evaluates many scenarios in one call (POST /v1/rtt:batch). Per-item
// failures come back inside the result, not as an error.
func (c *Client) Batch(ctx context.Context, scs []scenario.Scenario) (service.BatchResult, error) {
	req := service.BatchRequest{Scenarios: make([]json.RawMessage, len(scs))}
	for i, sc := range scs {
		req.Scenarios[i] = sc.JSON()
	}
	var res service.BatchResult
	_, err := c.Do(ctx, http.MethodPost, "/v1/rtt:batch", req, &res)
	return res, err
}

// Sweep evaluates the RTT-vs-load curve over [from, to] in step increments
// (POST /v1/sweep).
func (c *Client) Sweep(ctx context.Context, sc scenario.Scenario, from, to, step float64) (service.SweepResult, bool, error) {
	req := service.SweepRequest{Scenario: sc.JSON(), From: from, To: to, Step: step}
	var res service.SweepResult
	h, err := c.Do(ctx, http.MethodPost, "/v1/sweep", req, &res)
	return res, cachedHeader(h), err
}

// Dimension finds the maximum load and gamer count under an RTT bound in
// milliseconds (POST /v1/dimension).
func (c *Client) Dimension(ctx context.Context, sc scenario.Scenario, boundMs float64) (service.DimensionResult, bool, error) {
	req := service.DimensionRequest{Scenario: sc.JSON(), BoundMs: boundMs}
	var res service.DimensionResult
	h, err := c.Do(ctx, http.MethodPost, "/v1/dimension", req, &res)
	return res, cachedHeader(h), err
}

// Models lists the built-in game traffic models (GET /v1/models).
func (c *Client) Models(ctx context.Context) (service.ModelsResult, error) {
	var res service.ModelsResult
	_, err := c.Do(ctx, http.MethodGet, "/v1/models", nil, &res)
	return res, err
}

// Health reads the daemon's liveness and cache counters (GET /healthz).
func (c *Client) Health(ctx context.Context) (service.Health, error) {
	var res service.Health
	_, err := c.Do(ctx, http.MethodGet, "/healthz", nil, &res)
	return res, err
}

// Metrics scrapes and parses /metrics into a snapshot. Scrapes are not
// instrumented by the daemon, so snapshotting around a run does not distort
// the counters it reads.
func (c *Client) Metrics(ctx context.Context) (MetricsSnapshot, error) {
	data, _, err := c.raw(ctx, http.MethodGet, "/metrics", nil)
	if err != nil {
		return MetricsSnapshot{}, err
	}
	return ParseMetrics(data)
}

// WaitReady polls /healthz until the daemon answers and reports Ready, the
// context is canceled, or timeout elapses — the standard way to sequence
// "boot daemon, then load it" in scripts and CI. A reachable-but-draining
// daemon (alive, ready=false) keeps WaitReady waiting, so a freshly
// restarted replica is never declared ready off a stale predecessor.
func (c *Client) WaitReady(ctx context.Context, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	var lastErr error
	for {
		var h service.Health
		if h, lastErr = c.Health(ctx); lastErr == nil && h.Ready {
			return nil
		}
		if lastErr == nil {
			lastErr = fmt.Errorf("daemon alive but not ready (status %q, generation %d)", h.Status, h.ReadyGeneration)
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("client: daemon at %s not ready: %w (last: %v)", c.base, ctx.Err(), lastErr)
		case <-time.After(50 * time.Millisecond):
		}
	}
}
