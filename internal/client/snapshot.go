package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"fpsping/internal/service"
)

// rawBytes performs one request with a non-JSON body (or none) and returns
// the raw response body — the binary sibling of raw for the snapshot
// endpoints, sharing its error-envelope handling.
func (c *Client) rawBytes(ctx context.Context, method, path, contentType string, body io.Reader) ([]byte, http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, nil, fmt.Errorf("client: %w", err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, nil, fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes+1))
	if err != nil {
		return nil, resp.Header, fmt.Errorf("client: reading %s response: %w", path, err)
	}
	if len(data) > maxResponseBytes {
		return nil, resp.Header, fmt.Errorf("client: %s response over %d bytes", path, maxResponseBytes)
	}
	if resp.StatusCode/100 != 2 {
		var envelope struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(data))
		if json.Unmarshal(data, &envelope) == nil && envelope.Error != "" {
			msg = envelope.Error
		}
		return data, resp.Header, &APIError{StatusCode: resp.StatusCode, Message: msg}
	}
	return data, resp.Header, nil
}

// CacheDump fetches a snapshot of the daemon's memo cache (GET
// /v1/cache:dump): the binary format memo.Dump writes — versioned,
// CRC-checksummed and keyed by the daemon binary's schema string. Feed it
// back with CacheWarm (same build) or persist it across a restart.
func (c *Client) CacheDump(ctx context.Context) ([]byte, error) {
	data, _, err := c.rawBytes(ctx, http.MethodGet, "/v1/cache:dump", "", nil)
	return data, err
}

// CacheWarm uploads a snapshot into the daemon's memo cache (POST
// /v1/cache:warm). Restoration never clobbers newer state: entries the
// daemon already computed win, full shards skip archived entries rather
// than evict live ones. A corrupt or schema-mismatched snapshot is an
// *APIError with HTTP 400 and leaves the cache untouched.
func (c *Client) CacheWarm(ctx context.Context, snapshot []byte) (service.WarmResult, error) {
	data, _, err := c.rawBytes(ctx, http.MethodPost, "/v1/cache:warm", "application/octet-stream", bytes.NewReader(snapshot))
	if err != nil {
		return service.WarmResult{}, err
	}
	var res service.WarmResult
	if err := json.Unmarshal(data, &res); err != nil {
		return res, fmt.Errorf("client: decoding /v1/cache:warm response: %w", err)
	}
	return res, nil
}
