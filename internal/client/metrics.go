package client

import (
	"bufio"
	"bytes"
	"fmt"
	"regexp"
	"strconv"
)

// ModelEndpoints are the daemon endpoints whose answers the engine cache
// can serve — the denominator of every cache-hit-ratio computation.
// (/v1/models is static and /healthz and /metrics are uninstrumented, so
// none of them belong here.)
var ModelEndpoints = []string{"/v1/rtt", "/v1/rtt:batch", "/v1/sweep", "/v1/dimension"}

// EndpointMetrics is one endpoint's slice of a /metrics scrape.
type EndpointMetrics struct {
	Requests  uint64
	Errors    uint64
	CacheHits uint64
	// LatencySumSeconds and LatencyCount reproduce the Prometheus
	// summary pair; Quantiles maps the exported level ("0.5", "0.9",
	// "0.99") to its latency estimate in seconds.
	LatencySumSeconds float64
	LatencyCount      uint64
	Quantiles         map[string]float64
}

// CacheMetrics is the engine cache's slice of a /metrics scrape: the shard
// layout and occupancy gauges plus the aggregated lookup and eviction
// counters. LookupHits/LookupMisses count cache probes (singleflight joiners
// probe too), unlike the per-endpoint CacheHits, which count requests
// answered without computing.
type CacheMetrics struct {
	Shards       int
	Entries      uint64
	LookupHits   uint64
	LookupMisses uint64
	Evictions    uint64
	// ShardEntries maps shard index to its occupancy.
	ShardEntries map[int]uint64
}

// MetricsSnapshot is one parsed /metrics scrape. Two snapshots bracket a
// run: their difference is what the run did (see CacheHitRatioDelta).
type MetricsSnapshot struct {
	UptimeSeconds float64
	// Global aggregates every instrumented request, whatever the endpoint
	// (the daemon's unlabeled tracker).
	Global    EndpointMetrics
	Endpoints map[string]EndpointMetrics
	Cache     CacheMetrics
}

// metricLine matches one sample line: name, optional {labels}, value.
var metricLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{([^}]*)\})?\s+(\S+)$`)

// labelPair matches one key="value" inside a label set.
var labelPair = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"`)

// ParseMetrics parses the daemon's Prometheus text exposition. Unknown
// metric families are ignored, so the parser survives the daemon growing
// new gauges.
func ParseMetrics(data []byte) (MetricsSnapshot, error) {
	snap := MetricsSnapshot{Endpoints: make(map[string]EndpointMetrics)}
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		m := metricLine.FindSubmatch(line)
		if m == nil {
			return snap, fmt.Errorf("client: unparsable metrics line %q", line)
		}
		name, rawLabels, rawValue := string(m[1]), m[2], string(m[3])
		value, err := strconv.ParseFloat(rawValue, 64)
		if err != nil {
			return snap, fmt.Errorf("client: metric %s value %q: %w", name, rawValue, err)
		}
		labels := make(map[string]string)
		for _, kv := range labelPair.FindAllSubmatch(rawLabels, -1) {
			labels[string(kv[1])] = string(kv[2])
		}
		switch name {
		case "fpsping_uptime_seconds":
			snap.UptimeSeconds = value
			continue
		case "fpsping_cache_shards":
			snap.Cache.Shards = int(value)
			continue
		case "fpsping_cache_entries":
			snap.Cache.Entries = uint64(value)
			continue
		case "fpsping_cache_lookup_hits_total":
			snap.Cache.LookupHits = uint64(value)
			continue
		case "fpsping_cache_lookup_misses_total":
			snap.Cache.LookupMisses = uint64(value)
			continue
		case "fpsping_cache_evictions_total":
			snap.Cache.Evictions = uint64(value)
			continue
		case "fpsping_cache_shard_entries":
			shard, err := strconv.Atoi(labels["shard"])
			if err != nil {
				return snap, fmt.Errorf("client: shard label %q: %w", labels["shard"], err)
			}
			if snap.Cache.ShardEntries == nil {
				snap.Cache.ShardEntries = make(map[int]uint64)
			}
			snap.Cache.ShardEntries[shard] = uint64(value)
			continue
		}
		endpoint, labeled := labels["endpoint"]
		// Request metrics without an endpoint label are the daemon's global
		// aggregate over all instrumented endpoints.
		es := snap.Endpoints[endpoint]
		if !labeled {
			es = snap.Global
		}
		switch name {
		case "fpsping_requests_total":
			es.Requests = uint64(value)
		case "fpsping_request_errors_total":
			es.Errors = uint64(value)
		case "fpsping_cache_hits_total":
			es.CacheHits = uint64(value)
		case "fpsping_request_latency_seconds_sum":
			es.LatencySumSeconds = value
		case "fpsping_request_latency_seconds_count":
			es.LatencyCount = uint64(value)
		case "fpsping_request_latency_seconds":
			if es.Quantiles == nil {
				es.Quantiles = make(map[string]float64)
			}
			es.Quantiles[labels["quantile"]] = value
		}
		if labeled {
			snap.Endpoints[endpoint] = es
		} else {
			snap.Global = es
		}
	}
	if err := sc.Err(); err != nil {
		return snap, err
	}
	return snap, nil
}

// Totals sums requests, errors and cache hits over the named endpoints
// (ModelEndpoints when none are given).
func (s MetricsSnapshot) Totals(endpoints ...string) (requests, errors, hits uint64) {
	if len(endpoints) == 0 {
		endpoints = ModelEndpoints
	}
	for _, ep := range endpoints {
		es := s.Endpoints[ep]
		requests += es.Requests
		errors += es.Errors
		hits += es.CacheHits
	}
	return requests, errors, hits
}

// CacheHitRatio returns cumulative hits/requests over the named endpoints
// (ModelEndpoints when none are given); ok is false when nothing was
// requested yet.
func (s MetricsSnapshot) CacheHitRatio(endpoints ...string) (ratio float64, ok bool) {
	requests, _, hits := s.Totals(endpoints...)
	if requests == 0 {
		return 0, false
	}
	return float64(hits) / float64(requests), true
}

// CacheHitRatioDelta returns the cache hit ratio of only the requests made
// between two snapshots — the marginal ratio a load phase achieved,
// regardless of what warmed the cache before it. ok is false when no
// requests landed in between.
func CacheHitRatioDelta(before, after MetricsSnapshot, endpoints ...string) (ratio float64, ok bool) {
	reqB, _, hitB := before.Totals(endpoints...)
	reqA, _, hitA := after.Totals(endpoints...)
	if reqA <= reqB {
		return 0, false
	}
	return float64(hitA-hitB) / float64(reqA-reqB), true
}
