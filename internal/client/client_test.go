package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fpsping/internal/scenario"
	"fpsping/internal/service"
)

// newPair boots a service handler behind httptest and a client pointed at
// it: the full wire path (encode, route, decode) without a real socket
// lifecycle.
func newPair(t *testing.T) (*Client, *service.Engine) {
	t.Helper()
	engine := service.NewEngine(2, 0)
	ts := httptest.NewServer(service.NewServer("127.0.0.1:0", engine).Handler())
	t.Cleanup(ts.Close)
	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return c, engine
}

func TestNewRejectsBadBaseURLs(t *testing.T) {
	for _, bad := range []string{"", "127.0.0.1:7900", "ftp://host", "http://", "::", "http//x"} {
		if _, err := New(bad); err == nil {
			t.Errorf("base URL %q accepted", bad)
		}
	}
	c, err := New("http://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	if c.Base() != "http://example.com" {
		t.Errorf("base not normalized: %q", c.Base())
	}
}

func TestRTTRoundTripAndCacheBool(t *testing.T) {
	c, _ := newPair(t)
	ctx := context.Background()
	sc := scenario.Default()
	sc.Load = 0.5

	cold, cached, err := c.RTT(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("first request reported cached")
	}
	if !(cold.QuantileMs > 0) || cold.DownlinkLoad != 0.5 || cold.Scenario != sc {
		t.Errorf("implausible result: %+v", cold)
	}
	warm, cached, err := c.RTT(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("identical repeat not reported cached")
	}
	if warm != cold {
		t.Errorf("cached result differs:\n%+v\n%+v", warm, cold)
	}
}

func TestBatchSweepDimensionModelsHealth(t *testing.T) {
	c, _ := newPair(t)
	ctx := context.Background()
	sc := scenario.Default()

	a, b := sc, sc
	a.Load, b.Load = 0.3, 0.5
	batch, err := c.Batch(ctx, []scenario.Scenario{a, b, a})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 3 || batch.Cached != 1 {
		t.Errorf("batch = %d results, %d cached", len(batch.Results), batch.Cached)
	}
	for i, item := range batch.Results {
		if item.Error != "" || item.Result == nil {
			t.Errorf("batch item %d: %+v", i, item)
		}
	}

	sweep, cached, err := c.Sweep(ctx, sc, 0.1, 0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if cached || len(sweep.Points) != 5 {
		t.Errorf("sweep: cached=%v points=%d", cached, len(sweep.Points))
	}

	dim, _, err := c.Dimension(ctx, sc, 50)
	if err != nil {
		t.Fatal(err)
	}
	if dim.MaxGamers < 1 || dim.BoundMs != 50 {
		t.Errorf("dimension: %+v", dim)
	}

	models, err := c.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(models.Models) < 3 {
		t.Errorf("only %d traffic models", len(models.Models))
	}

	health, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Computations == 0 {
		t.Errorf("health: %+v", health)
	}
}

func TestAPIErrorStatuses(t *testing.T) {
	c, _ := newPair(t)
	ctx := context.Background()

	bad := scenario.Default()
	bad.Gamers = 0
	_, _, err := c.RTT(ctx, bad)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid scenario: %v", err)
	}
	if apiErr.Message == "" {
		t.Error("error envelope message lost")
	}

	unstable := scenario.Default()
	unstable.Load = 1.5
	_, _, err = c.RTT(ctx, unstable)
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("unstable scenario: %v", err)
	}
}

func TestMetricsSnapshotAndHitRatioDelta(t *testing.T) {
	c, _ := newPair(t)
	ctx := context.Background()
	sc := scenario.Default()
	sc.Load = 0.4

	if _, _, err := c.RTT(ctx, sc); err != nil {
		t.Fatal(err)
	}
	before, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := c.RTT(ctx, sc); err != nil {
			t.Fatal(err)
		}
	}
	after, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}

	es := after.Endpoints["/v1/rtt"]
	if es.Requests != 4 || es.CacheHits != 3 || es.LatencyCount != 4 {
		t.Errorf("rtt endpoint metrics: %+v", es)
	}
	if len(es.Quantiles) != 3 {
		t.Errorf("expected 3 latency quantiles, got %v", es.Quantiles)
	}
	if after.UptimeSeconds < 0 {
		t.Errorf("uptime %g", after.UptimeSeconds)
	}
	// The unlabeled global aggregate covers the same four requests (no other
	// endpoint was touched) with its own latency tracker.
	if after.Global.Requests != 4 || after.Global.CacheHits != 3 || after.Global.LatencyCount != 4 {
		t.Errorf("global metrics: %+v", after.Global)
	}
	if len(after.Global.Quantiles) != 3 {
		t.Errorf("expected 3 global latency quantiles, got %v", after.Global.Quantiles)
	}
	// Sharded cache gauges: one rtt| and one pt| entry, occupancies summing
	// across shards, and lookup counters covering all four probes.
	if after.Cache.Shards < 1 || after.Cache.Entries != 2 {
		t.Errorf("cache gauges: %+v", after.Cache)
	}
	var sum uint64
	for _, n := range after.Cache.ShardEntries {
		sum += n
	}
	if sum != after.Cache.Entries {
		t.Errorf("shard occupancies sum to %d, total gauge says %d", sum, after.Cache.Entries)
	}
	if after.Cache.LookupHits+after.Cache.LookupMisses != 4 {
		t.Errorf("lookup counters %d+%d, want 4 probes", after.Cache.LookupHits, after.Cache.LookupMisses)
	}
	// Every request between the snapshots was a hit.
	ratio, ok := CacheHitRatioDelta(before, after)
	if !ok || ratio != 1 {
		t.Errorf("hit ratio delta = %g, %v", ratio, ok)
	}
	if ratio, ok := after.CacheHitRatio(); !ok || ratio != 0.75 {
		t.Errorf("cumulative hit ratio = %g, %v", ratio, ok)
	}
	if _, ok := CacheHitRatioDelta(after, after); ok {
		t.Error("no-traffic delta should report not-ok")
	}
}

func TestParseMetricsRejectsGarbage(t *testing.T) {
	if _, err := ParseMetrics([]byte("what even is this")); err == nil {
		t.Error("garbage accepted")
	}
	snap, err := ParseMetrics([]byte("# just a comment\n\nsome_other_metric 42\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Endpoints) != 0 {
		t.Errorf("unexpected endpoints: %+v", snap.Endpoints)
	}
}

func TestContextCancellation(t *testing.T) {
	c, _ := newPair(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.RTT(ctx, scenario.Default()); err == nil {
		t.Error("canceled context did not fail")
	}
}

func TestWaitReady(t *testing.T) {
	c, _ := newPair(t)
	if err := c.WaitReady(context.Background(), 2*time.Second); err != nil {
		t.Error(err)
	}
	down, err := New("http://127.0.0.1:1")
	if err != nil {
		t.Fatal(err)
	}
	if err := down.WaitReady(context.Background(), 200*time.Millisecond); err == nil {
		t.Error("unreachable daemon reported ready")
	}
}

// TestWaitReadyRequiresReady checks a reachable-but-draining daemon keeps
// WaitReady waiting: alive is not the same as ready.
func TestWaitReadyRequiresReady(t *testing.T) {
	engine := service.NewEngine(1, 0)
	srv := service.NewServer("127.0.0.1:0", engine)
	srv.BeginDrain()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	err = c.WaitReady(context.Background(), 200*time.Millisecond)
	if err == nil {
		t.Fatal("draining daemon reported ready")
	}
	if !strings.Contains(err.Error(), "draining") {
		t.Errorf("error should name the draining status: %v", err)
	}
}

func TestDoGenericQueryPath(t *testing.T) {
	c, _ := newPair(t)
	var res service.RTTResult
	h, err := c.Do(context.Background(), http.MethodGet, "/v1/rtt?load=0.5", nil, &res)
	if err != nil {
		t.Fatal(err)
	}
	if h.Get(service.CacheHeader) == "" {
		t.Error("cache header missing")
	}
	if res.DownlinkLoad != 0.5 {
		t.Errorf("decoded %+v", res)
	}
}
