package load

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fpsping/internal/client"
	"fpsping/internal/stats"
)

// Config parameterizes one load run. Zero values mean defaults throughout,
// so Config{Addr: ..., Mix: MixHot, Count: 1000} is a complete run.
type Config struct {
	// Addr is the daemon base URL ("http://127.0.0.1:7900"). Ignored when
	// Client is set. Against a cluster, point Addr at the fpsrouter — its
	// /metrics speak the same dialect, so every gate works unchanged.
	Addr string
	// Client overrides the client (tests point it at an httptest server).
	Client *client.Client
	// ReplicaAddrs, when set, are the individual fpspingd replicas behind a
	// routed target: each is scraped before and after the measured phase and
	// reported per replica, showing where the cluster's work landed.
	ReplicaAddrs []string
	// Jobs is the number of concurrent closed-loop workers (<= 0 means 4).
	Jobs int
	// Seed drives every scenario draw; same seed, same request multiset.
	Seed uint64
	// Mix selects the scenario-drawing strategy (defaults to MixHot).
	Mix Mix
	// PoolSize, ZipfSkew, BatchSize and Weights parameterize the generator
	// (see GeneratorConfig).
	PoolSize  int
	ZipfSkew  float64
	BatchSize int
	Weights   Weights
	// WarmupPasses runs the generator's deterministic warmup pass this many
	// times before measuring (< 0 means none; 0 means 1). Warmup requests
	// are excluded from every measured statistic, including the cache-hit
	// ratio, which therefore reports the steady state.
	WarmupPasses int
	// Count runs exactly this many measured operations. When 0, the run is
	// time-bounded by Duration instead.
	Count int
	// Duration bounds a time-based run (Count == 0; <= 0 means 10s).
	Duration time.Duration
	// RequestTimeout bounds one request (<= 0 means client.DefaultTimeout).
	RequestTimeout time.Duration
	// OnOp, when set, observes every measured operation before it executes
	// (concurrently — the callback must be safe). Tests use it to pin the
	// issued multiset.
	OnOp func(index int, op Op)
}

// normalize fills defaults in place.
func (c *Config) normalize() {
	if c.Jobs <= 0 {
		c.Jobs = 4
	}
	if c.Mix == "" {
		c.Mix = MixHot
	}
	if c.WarmupPasses == 0 {
		c.WarmupPasses = 1
	}
	if c.Count <= 0 && c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = client.DefaultTimeout
	}
}

// recorder aggregates measured observations under one lock. A closed-loop
// HTTP round trip costs orders of magnitude more than this critical
// section, so a single mutex does not serialize the run.
type recorder struct {
	mu          sync.Mutex
	latency     stats.Summary // seconds
	quantiles   map[string]*stats.PQuantile
	perEndpoint map[OpKind]*endpointAgg
	status      map[int]int
	errs        int
	fingerprint uint64
}

type endpointAgg struct {
	count     int
	errs      int
	latency   stats.Summary
	quantiles map[string]*stats.PQuantile
}

// reportLevels are the latency quantiles a load report prints.
var reportLevels = []string{"0.5", "0.9", "0.95", "0.99"}

// endpointLevels are the per-endpoint quantiles (the report's breakdown
// keeps to the three headline levels).
var endpointLevels = []string{"0.5", "0.9", "0.99"}

// newQuantiles builds one P² estimator per level.
func newQuantiles(levels []string) map[string]*stats.PQuantile {
	qs := make(map[string]*stats.PQuantile, len(levels))
	for _, level := range levels {
		var p float64
		fmt.Sscanf(level, "%g", &p)
		pq, err := stats.NewPQuantile(p)
		if err != nil {
			panic("load: bad report level " + level)
		}
		qs[level] = pq
	}
	return qs
}

func newRecorder() *recorder {
	return &recorder{
		quantiles:   newQuantiles(reportLevels),
		perEndpoint: make(map[OpKind]*endpointAgg),
		status:      make(map[int]int),
	}
}

// observe folds one measured operation into the aggregates.
func (r *recorder) observe(op Op, elapsed time.Duration, status int, err error) {
	sec := elapsed.Seconds()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fingerprint += op.hash() // wrapping sum: order-independent
	r.latency.Add(sec)
	for _, pq := range r.quantiles {
		pq.Add(sec)
	}
	agg := r.perEndpoint[op.Kind]
	if agg == nil {
		agg = &endpointAgg{quantiles: newQuantiles(endpointLevels)}
		r.perEndpoint[op.Kind] = agg
	}
	agg.count++
	agg.latency.Add(sec)
	for _, pq := range agg.quantiles {
		pq.Add(sec)
	}
	r.status[status]++
	if err != nil {
		r.errs++
		agg.errs++
	}
}

// execute drives one operation through the client, reporting the HTTP
// status (0 for transport errors, 200 for success) and any failure. A batch
// whose items contain errors fails the operation: the generator only emits
// valid scenarios, so any item error is a real defect.
func execute(ctx context.Context, cli *client.Client, op Op) (status int, err error) {
	switch op.Kind {
	case OpRTT:
		_, _, err = cli.RTT(ctx, op.Scenarios[0])
	case OpBatch:
		batch, berr := cli.Batch(ctx, op.Scenarios)
		err = berr
		if err == nil {
			for i, item := range batch.Results {
				if item.Error != "" {
					err = fmt.Errorf("load: batch item %d: %s", i, item.Error)
					break
				}
			}
		}
	case OpSweep:
		_, _, err = cli.Sweep(ctx, op.Scenarios[0], op.From, op.To, op.Step)
	case OpDimension:
		_, _, err = cli.Dimension(ctx, op.Scenarios[0], op.BoundMs)
	case OpModels:
		_, err = cli.Models(ctx)
	default:
		err = fmt.Errorf("load: unknown op kind %d", op.Kind)
	}
	if err == nil {
		return 200, nil
	}
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		return apiErr.StatusCode, err
	}
	return 0, err
}

// runPhase executes ops [start, start+count) (or until deadline/ctx when
// count < 0) over jobs closed-loop workers pulling indices from a shared
// counter, and returns how many operations ran. op(i) must be safe for
// concurrent use.
func runPhase(ctx context.Context, jobs int, start, count int, deadline time.Time,
	op func(i int) error) int {
	var next atomic.Int64
	next.Store(int64(start))
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				if !deadline.IsZero() && !time.Now().Before(deadline) {
					return
				}
				i := int(next.Add(1)) - 1
				if count >= 0 && i >= start+count {
					return
				}
				_ = op(i)
			}
		}()
	}
	wg.Wait()
	done := int(next.Load()) - start
	if count >= 0 && done > count {
		done = count
	}
	return done
}

// Run executes one load run and returns its report. The daemon must be
// reachable (use client.WaitReady first when racing a boot).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg.normalize()
	gen, err := NewGenerator(GeneratorConfig{
		Seed: cfg.Seed, Mix: cfg.Mix, PoolSize: cfg.PoolSize,
		ZipfSkew: cfg.ZipfSkew, BatchSize: cfg.BatchSize, Weights: cfg.Weights,
	})
	if err != nil {
		return nil, err
	}
	cli := cfg.Client
	if cli == nil {
		if cli, err = client.New(cfg.Addr, client.WithTimeout(cfg.RequestTimeout)); err != nil {
			return nil, err
		}
	}
	if _, err := cli.Health(ctx); err != nil {
		return nil, fmt.Errorf("load: daemon not reachable: %w", err)
	}

	rep := &Report{
		Mix: string(cfg.Mix), Seed: cfg.Seed, Jobs: cfg.Jobs,
		Pool: len(gen.Pool()), Endpoints: make(map[string]EndpointReport),
		StatusCounts: make(map[string]int),
	}

	// Warmup: the deterministic full pass over the mix's key space, errors
	// counted but not measured.
	warmup := gen.WarmupOps()
	var warmupErrs atomic.Int64
	for pass := 0; pass < cfg.WarmupPasses; pass++ {
		runPhase(ctx, cfg.Jobs, 0, len(warmup), time.Time{}, func(i int) error {
			if _, err := execute(ctx, cli, warmup[i]); err != nil {
				warmupErrs.Add(1)
			}
			return nil
		})
		rep.WarmupOps += len(warmup)
	}
	rep.WarmupErrors = int(warmupErrs.Load())
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	before, err := cli.Metrics(ctx)
	if err != nil {
		return nil, fmt.Errorf("load: pre-run metrics scrape: %w", err)
	}
	replicas, err := newReplicaProbes(cfg.ReplicaAddrs, cfg)
	if err != nil {
		return nil, err
	}
	for _, p := range replicas {
		if err := p.scrape(ctx); err != nil {
			return nil, err
		}
	}

	rec := newRecorder()
	count := cfg.Count
	var deadline time.Time
	if count <= 0 {
		count = -1
		deadline = time.Now().Add(cfg.Duration)
	}
	start := time.Now()
	executed := runPhase(ctx, cfg.Jobs, 0, count, deadline, func(i int) error {
		op := gen.Op(i)
		if cfg.OnOp != nil {
			cfg.OnOp(i, op)
		}
		t0 := time.Now()
		status, err := execute(ctx, cli, op)
		rec.observe(op, time.Since(t0), status, err)
		return err
	})
	elapsed := time.Since(start)
	if err := ctx.Err(); err != nil && executed == 0 {
		return nil, err
	}

	// A mid-run interrupt must still yield a report for the work already
	// measured, so the final scrape gets its own brief context when the
	// run's was canceled.
	scrapeCtx := ctx
	if ctx.Err() != nil {
		var cancel context.CancelFunc
		scrapeCtx, cancel = context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
	}
	after, err := cli.Metrics(scrapeCtx)
	if err != nil {
		return nil, fmt.Errorf("load: post-run metrics scrape: %w", err)
	}
	for _, p := range replicas {
		rr, err := p.delta(scrapeCtx)
		if err != nil {
			return nil, err
		}
		rep.Replicas = append(rep.Replicas, rr)
	}

	rec.mu.Lock()
	defer rec.mu.Unlock()
	rep.Requests = executed
	rep.Errors = rec.errs
	rep.ElapsedSeconds = elapsed.Seconds()
	if rep.ElapsedSeconds > 0 {
		rep.AchievedRPS = float64(executed) / rep.ElapsedSeconds
	}
	rep.Latency = LatencyReport{
		MeanMs: 1000 * rec.latency.Mean(),
		MaxMs:  1000 * rec.latency.Max(),
		P50Ms:  1000 * rec.quantiles["0.5"].Value(),
		P90Ms:  1000 * rec.quantiles["0.9"].Value(),
		P95Ms:  1000 * rec.quantiles["0.95"].Value(),
		P99Ms:  1000 * rec.quantiles["0.99"].Value(),
	}
	for kind, agg := range rec.perEndpoint {
		rep.Endpoints[kind.String()] = EndpointReport{
			Requests: agg.count,
			Errors:   agg.errs,
			MeanMs:   1000 * agg.latency.Mean(),
			P50Ms:    1000 * agg.quantiles["0.5"].Value(),
			P90Ms:    1000 * agg.quantiles["0.9"].Value(),
			P99Ms:    1000 * agg.quantiles["0.99"].Value(),
		}
	}
	for status, n := range rec.status {
		key := "transport"
		if status > 0 {
			key = fmt.Sprintf("%d", status)
		}
		rep.StatusCounts[key] = n
	}
	rep.Fingerprint = fmt.Sprintf("%016x", rec.fingerprint)

	reqB, _, hitB := before.Totals()
	reqA, _, hitA := after.Totals()
	rep.Cache = CacheReport{
		RequestsBefore: reqB, HitsBefore: hitB,
		RequestsAfter: reqA, HitsAfter: hitA,
		Shards:         after.Cache.Shards,
		EntriesAfter:   after.Cache.Entries,
		EvictionsAfter: after.Cache.Evictions,
	}
	if ratio, ok := client.CacheHitRatioDelta(before, after); ok {
		rep.Cache.HitRatio = ratio
		rep.Cache.Valid = true
	}
	return rep, nil
}
