package load

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fpsping/internal/client"
	"fpsping/internal/cluster"
	"fpsping/internal/service"
)

// bootCluster serves n real engines behind httptest plus an fpsrouter in
// front, returning a client for the router and the replica base URLs.
func bootCluster(t *testing.T, n int, policy string) (*client.Client, []string) {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		engine := service.NewEngine(2, 256)
		ts := httptest.NewServer(service.NewServer("127.0.0.1:0", engine).Handler())
		t.Cleanup(ts.Close)
		addrs[i] = ts.URL
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Replicas: addrs, Policy: policy, Seed: 7, Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	cli, err := client.New(front.URL)
	if err != nil {
		t.Fatal(err)
	}
	return cli, addrs
}

// TestRunClusterReplicaReport drives a load run through a real router and
// checks the per-replica section: every replica is scraped, the replica
// request deltas cover the model-endpoint traffic, and all report ready.
func TestRunClusterReplicaReport(t *testing.T) {
	cli, addrs := bootCluster(t, 3, cluster.PolicyAffinity)
	rep, err := Run(context.Background(), Config{
		Client:         cli,
		Jobs:           2,
		Seed:           11,
		Mix:            MixHot,
		PoolSize:       12,
		BatchSize:      4,
		WarmupPasses:   1,
		Count:          120,
		RequestTimeout: 30 * time.Second,
		ReplicaAddrs:   addrs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalErrors() != 0 {
		t.Fatalf("cluster run had %d errors", rep.TotalErrors())
	}
	if len(rep.Replicas) != 3 {
		t.Fatalf("got %d replica reports, want 3", len(rep.Replicas))
	}
	var reqSum, hitSum uint64
	for i, rr := range rep.Replicas {
		if rr.Addr != addrs[i] {
			t.Errorf("replica %d addr %q, want %q (order must match ReplicaAddrs)", i, rr.Addr, addrs[i])
		}
		if !rr.Ready || rr.ReadyGeneration != 1 {
			t.Errorf("replica %d: ready=%v generation=%d, want ready at generation 1", i, rr.Ready, rr.ReadyGeneration)
		}
		reqSum += rr.Requests
		hitSum += rr.Hits
	}
	if reqSum == 0 || hitSum == 0 {
		t.Errorf("replica deltas empty: %d requests, %d hits", reqSum, hitSum)
	}
	// Replica counters should account for at least the measured model-endpoint
	// traffic the aggregate snapshot saw (warmup is included in the replica
	// deltas, so >=).
	if aggregate := rep.Cache.RequestsAfter - rep.Cache.RequestsBefore; reqSum < aggregate {
		t.Errorf("replica request deltas %d < aggregate measured %d", reqSum, aggregate)
	}
	if !strings.Contains(rep.Text(), "replica      "+addrs[0]) {
		t.Error("text report missing per-replica lines")
	}
}

// TestCheckAffinityPinsFreshKeys is the end-to-end affinity proof in
// miniature: fresh keys through an affinity router must land every request
// — and exactly one compute — on a single replica.
func TestCheckAffinityPinsFreshKeys(t *testing.T) {
	cli, addrs := bootCluster(t, 3, cluster.PolicyAffinity)
	rep, err := CheckAffinity(context.Background(), AffinityConfig{
		Router:       cli,
		ReplicaAddrs: addrs,
		Probes:       3,
		Requests:     4,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK || rep.Passed != 3 {
		t.Fatalf("affinity check failed: %+v\n%s", rep, rep.Text())
	}
	for _, p := range rep.Probes {
		if p.Owner == "" {
			t.Errorf("probe fixed=%g has no owner", p.FixedMs)
		}
		if p.Requests != 4 || p.Hits != 3 || p.Computations != 1 {
			t.Errorf("probe fixed=%g: %d requests, %d hits, %d computes; want 4/3/1",
				p.FixedMs, p.Requests, p.Hits, p.Computations)
		}
	}
	if !strings.Contains(rep.Text(), "[ok]") {
		t.Errorf("text report:\n%s", rep.Text())
	}
}

// TestCheckAffinityDetectsScatter points the same check at a round-robin
// router: traffic for one key spreads across replicas, and the check must
// say so rather than pass vacuously.
func TestCheckAffinityDetectsScatter(t *testing.T) {
	cli, addrs := bootCluster(t, 3, cluster.PolicyRoundRobin)
	rep, err := CheckAffinity(context.Background(), AffinityConfig{
		Router:       cli,
		ReplicaAddrs: addrs,
		Probes:       2,
		Requests:     6,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK || rep.Passed != 0 {
		t.Fatalf("round-robin cluster passed the affinity check: %+v", rep)
	}
	for _, p := range rep.Probes {
		if p.OK || p.Detail == "" {
			t.Errorf("scattered probe not explained: %+v", p)
		}
	}
}

func TestCheckAffinityRejectsBadConfig(t *testing.T) {
	cli, addrs := bootCluster(t, 2, cluster.PolicyAffinity)
	if _, err := CheckAffinity(context.Background(), AffinityConfig{ReplicaAddrs: addrs}); err == nil {
		t.Error("missing router accepted")
	}
	if _, err := CheckAffinity(context.Background(), AffinityConfig{Router: cli, ReplicaAddrs: addrs[:1]}); err == nil {
		t.Error("single replica accepted")
	}
}
