package load

import (
	"context"
	"fmt"

	"fpsping/internal/client"
)

// ReplicaReport is one replica's slice of a cluster load run: the delta of
// its own /metrics and /healthz counters over the measured phase. Against a
// router target, the router's aggregate counters say what the cluster did;
// these say where the work landed.
type ReplicaReport struct {
	Addr string `json:"addr"`
	// Requests and Hits are the replica's model-endpoint deltas over the
	// measured phase.
	Requests uint64 `json:"requests"`
	Hits     uint64 `json:"hits"`
	// Computations is the delta of core model evaluations the replica
	// actually ran — the affinity currency: each canonical key's computes
	// should land on exactly one replica.
	Computations uint64 `json:"computations"`
	// CacheEntries and Ready describe the replica at the closing scrape.
	CacheEntries    int    `json:"cache_entries"`
	Ready           bool   `json:"ready"`
	ReadyGeneration uint64 `json:"ready_generation"`
}

// replicaProbe is one replica's paired scrape (metrics + health).
type replicaProbe struct {
	cli     *client.Client
	addr    string
	metrics client.MetricsSnapshot
	health  replicaHealth
}

// replicaHealth is the slice of the daemon /healthz the cluster reports use.
type replicaHealth struct {
	Computations    uint64
	CacheEntries    int
	Ready           bool
	ReadyGeneration uint64
}

// newReplicaProbes builds one client per replica address.
func newReplicaProbes(addrs []string, timeoutCfg Config) ([]*replicaProbe, error) {
	probes := make([]*replicaProbe, 0, len(addrs))
	for _, addr := range addrs {
		cli, err := client.New(addr, client.WithTimeout(timeoutCfg.RequestTimeout))
		if err != nil {
			return nil, fmt.Errorf("load: replica %s: %w", addr, err)
		}
		probes = append(probes, &replicaProbe{cli: cli, addr: addr})
	}
	return probes, nil
}

// scrape captures the replica's current metrics and health counters.
func (p *replicaProbe) scrape(ctx context.Context) error {
	snap, err := p.cli.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("load: replica %s metrics: %w", p.addr, err)
	}
	h, err := p.cli.Health(ctx)
	if err != nil {
		return fmt.Errorf("load: replica %s healthz: %w", p.addr, err)
	}
	p.metrics = snap
	p.health = replicaHealth{
		Computations:    h.Computations,
		CacheEntries:    h.CacheEntries,
		Ready:           h.Ready,
		ReadyGeneration: h.ReadyGeneration,
	}
	return nil
}

// delta re-scrapes the replica and reports what it did since the previous
// scrape.
func (p *replicaProbe) delta(ctx context.Context) (ReplicaReport, error) {
	pre := *p
	if err := p.scrape(ctx); err != nil {
		return ReplicaReport{}, err
	}
	reqB, _, hitB := pre.metrics.Totals()
	reqA, _, hitA := p.metrics.Totals()
	return ReplicaReport{
		Addr:            p.addr,
		Requests:        reqA - reqB,
		Hits:            hitA - hitB,
		Computations:    p.health.Computations - pre.health.Computations,
		CacheEntries:    p.health.CacheEntries,
		Ready:           p.health.Ready,
		ReadyGeneration: p.health.ReadyGeneration,
	}, nil
}
