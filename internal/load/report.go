package load

import (
	"fmt"
	"sort"
	"strings"
)

// LatencyReport summarizes measured request latencies in milliseconds:
// Welford moments for mean/max, P² streaming estimators for the quantiles.
type LatencyReport struct {
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// EndpointReport is one endpoint's slice of the measured phase, with its
// own latency quantiles (P² estimators, like the global ones): a sweep's
// hundreds of milliseconds must not hide inside an average dominated by
// sub-millisecond rtt hits.
type EndpointReport struct {
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	MeanMs   float64 `json:"mean_ms"`
	P50Ms    float64 `json:"p50_ms"`
	P90Ms    float64 `json:"p90_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// CacheReport brackets the measured phase with /metrics cache counters
// (over client.ModelEndpoints). HitRatio is the ratio achieved by the
// measured requests alone — warmup and earlier traffic cancel out.
type CacheReport struct {
	RequestsBefore uint64  `json:"requests_before"`
	HitsBefore     uint64  `json:"hits_before"`
	RequestsAfter  uint64  `json:"requests_after"`
	HitsAfter      uint64  `json:"hits_after"`
	HitRatio       float64 `json:"hit_ratio"`
	// Valid is false when no model-endpoint requests landed between the
	// snapshots (e.g. a models-only mix).
	Valid bool `json:"valid"`
	// Shards, EntriesAfter and EvictionsAfter mirror the daemon's sharded
	// memo-cache gauges at the closing scrape (zero against a daemon that
	// predates them).
	Shards         int    `json:"shards,omitempty"`
	EntriesAfter   uint64 `json:"entries_after,omitempty"`
	EvictionsAfter uint64 `json:"evictions_after,omitempty"`
}

// Report is one load run's outcome; it marshals to JSON as the machine
// artifact and formats with Text for humans.
type Report struct {
	Mix  string `json:"mix"`
	Seed uint64 `json:"seed"`
	Jobs int    `json:"jobs"`
	Pool int    `json:"pool"`

	WarmupOps    int `json:"warmup_ops"`
	WarmupErrors int `json:"warmup_errors"`

	Requests       int     `json:"requests"`
	Errors         int     `json:"errors"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	AchievedRPS    float64 `json:"achieved_rps"`

	Latency      LatencyReport             `json:"latency"`
	Endpoints    map[string]EndpointReport `json:"endpoints"`
	StatusCounts map[string]int            `json:"status_counts"`
	Cache        CacheReport               `json:"cache"`
	// Replicas is the per-replica breakdown of a cluster run (one entry per
	// Config.ReplicaAddrs, in order); empty for single-daemon runs.
	Replicas []ReplicaReport `json:"replicas,omitempty"`

	// Fingerprint is the order-independent hash of the executed operations:
	// equal fingerprints mean equal request multisets, whatever the worker
	// count or interleaving.
	Fingerprint string `json:"fingerprint"`
}

// TotalErrors counts warmup and measured failures together (what an
// error-budget gate should look at).
func (r *Report) TotalErrors() int { return r.WarmupErrors + r.Errors }

// Text renders the human-readable report fpsload prints.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fpsload: mix=%s seed=%d jobs=%d pool=%d\n", r.Mix, r.Seed, r.Jobs, r.Pool)
	fmt.Fprintf(&b, "warmup       %d ops (%d errors)\n", r.WarmupOps, r.WarmupErrors)
	fmt.Fprintf(&b, "requests     %d in %.2fs  ->  %.1f req/s, %d errors\n",
		r.Requests, r.ElapsedSeconds, r.AchievedRPS, r.Errors)
	fmt.Fprintf(&b, "latency ms   mean %.3g  p50 %.3g  p90 %.3g  p95 %.3g  p99 %.3g  max %.3g\n",
		r.Latency.MeanMs, r.Latency.P50Ms, r.Latency.P90Ms,
		r.Latency.P95Ms, r.Latency.P99Ms, r.Latency.MaxMs)
	if r.Cache.Valid {
		fmt.Fprintf(&b, "cache        hit ratio %.3f over measured phase (%d->%d hits / %d->%d requests)\n",
			r.Cache.HitRatio, r.Cache.HitsBefore, r.Cache.HitsAfter,
			r.Cache.RequestsBefore, r.Cache.RequestsAfter)
	} else {
		b.WriteString("cache        no model-endpoint traffic measured\n")
	}
	if r.Cache.Shards > 0 {
		fmt.Fprintf(&b, "cache        %d shards, %d entries, %d evictions\n",
			r.Cache.Shards, r.Cache.EntriesAfter, r.Cache.EvictionsAfter)
	}
	for _, rep := range r.Replicas {
		state := "ready"
		if !rep.Ready {
			state = "not-ready"
		}
		fmt.Fprintf(&b, "replica      %s  %d requests  %d hits  %d computes  %d entries  %s gen %d\n",
			rep.Addr, rep.Requests, rep.Hits, rep.Computations, rep.CacheEntries, state, rep.ReadyGeneration)
	}
	names := make([]string, 0, len(r.Endpoints))
	for name := range r.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ep := r.Endpoints[name]
		fmt.Fprintf(&b, "  %-10s %6d ops  %d errors  mean %.3g  p50 %.3g  p90 %.3g  p99 %.3g ms\n",
			name, ep.Requests, ep.Errors, ep.MeanMs, ep.P50Ms, ep.P90Ms, ep.P99Ms)
	}
	if len(r.StatusCounts) > 1 || r.StatusCounts["200"] != r.Requests {
		statuses := make([]string, 0, len(r.StatusCounts))
		for s := range r.StatusCounts {
			statuses = append(statuses, s)
		}
		sort.Strings(statuses)
		b.WriteString("status     ")
		for _, s := range statuses {
			fmt.Fprintf(&b, "  %s:%d", s, r.StatusCounts[s])
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "fingerprint  %s\n", r.Fingerprint)
	return b.String()
}
