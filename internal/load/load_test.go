package load

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fpsping/internal/client"
	"fpsping/internal/service"
)

// bootDaemon serves a real engine behind httptest and returns a client for
// it plus the engine (for white-box cache assertions).
func bootDaemon(t *testing.T, jobs int) (*client.Client, *service.Engine) {
	t.Helper()
	engine := service.NewEngine(jobs, 0)
	ts := httptest.NewServer(service.NewServer("127.0.0.1:0", engine).Handler())
	t.Cleanup(ts.Close)
	cli, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return cli, engine
}

func TestGeneratorDeterministicAndValid(t *testing.T) {
	for _, mix := range []Mix{MixHot, MixZipf, MixCold} {
		g1, err := NewGenerator(GeneratorConfig{Seed: 7, Mix: mix})
		if err != nil {
			t.Fatal(err)
		}
		g2, err := NewGenerator(GeneratorConfig{Seed: 7, Mix: mix})
		if err != nil {
			t.Fatal(err)
		}
		kinds := make(map[OpKind]int)
		for i := 0; i < 400; i++ {
			op1, op2 := g1.Op(i), g2.Op(i)
			if op1.hash() != op2.hash() {
				t.Fatalf("mix %s op %d differs between identical generators", mix, i)
			}
			kinds[op1.Kind]++
			for _, sc := range op1.Scenarios {
				if err := sc.Validate(); err != nil {
					t.Fatalf("mix %s op %d generated invalid scenario: %v", mix, i, err)
				}
			}
			switch op1.Kind {
			case OpRTT, OpSweep, OpDimension:
				if len(op1.Scenarios) != 1 {
					t.Fatalf("op %d kind %s has %d scenarios", i, op1.Kind, len(op1.Scenarios))
				}
			case OpBatch:
				if len(op1.Scenarios) != 8 {
					t.Fatalf("batch op %d has %d scenarios, want default 8", i, len(op1.Scenarios))
				}
			}
		}
		// Every weighted endpoint appears in a 400-op stream.
		for k := OpKind(0); k < numOpKinds; k++ {
			if kinds[k] == 0 {
				t.Errorf("mix %s: endpoint %s never generated in 400 ops", mix, k)
			}
		}
		// A different seed is a different stream (same config otherwise).
		g3, err := NewGenerator(GeneratorConfig{Seed: 8, Mix: mix})
		if err != nil {
			t.Fatal(err)
		}
		same := 0
		for i := 0; i < 100; i++ {
			if g1.Op(i).hash() == g3.Op(i).hash() {
				same++
			}
		}
		// Hot draws from a 16-scenario pool, so coincidences happen; a
		// different seed also reshuffles the pool, making full agreement
		// essentially impossible.
		if same == 100 {
			t.Errorf("mix %s: seeds 7 and 8 generated identical streams", mix)
		}
	}
}

func TestParseWeights(t *testing.T) {
	w, err := ParseWeights("rtt=8, sweep=1,models=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if w.RTT != 8 || w.Sweep != 1 || w.Models != 0.5 || w.Batch != 0 || w.Dimension != 0 {
		t.Errorf("parsed %+v", w)
	}
	for _, bad := range []string{"rtt", "nope=1", "rtt=x", "rtt=-1", "rtt=0", "rtt=1O", "rtt=1e2x"} {
		if _, err := ParseWeights(bad); err == nil {
			t.Errorf("weights %q accepted", bad)
		}
	}
}

// TestRunDeterministicAcrossJobs is the load generator's determinism
// contract end to end: the same seed at -jobs 1 and -jobs 8 issues the
// identical multiset of requests against a real loopback daemon (pinned
// both by the order-independent fingerprint and by the observed multiset of
// op indices), with zero errors either way.
func TestRunDeterministicAcrossJobs(t *testing.T) {
	run := func(jobs int) (*Report, map[uint64]int) {
		cli, _ := bootDaemon(t, 4)
		var mu sync.Mutex
		seen := make(map[uint64]int)
		rep, err := Run(context.Background(), Config{
			Client: cli, Jobs: jobs, Seed: 42, Mix: MixHot,
			Count: 60, RequestTimeout: 30 * time.Second,
			// rtt+batch keeps the warmup pass cheap; the multiset contract
			// does not depend on which endpoints are in the mix.
			Weights: Weights{RTT: 8, Batch: 1},
			OnOp: func(i int, op Op) {
				mu.Lock()
				seen[op.hash()]++
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep, seen
	}
	rep1, seen1 := run(1)
	rep8, seen8 := run(8)

	if rep1.TotalErrors() != 0 || rep8.TotalErrors() != 0 {
		t.Fatalf("errors: jobs1=%d jobs8=%d", rep1.TotalErrors(), rep8.TotalErrors())
	}
	if rep1.Requests != 60 || rep8.Requests != 60 {
		t.Fatalf("requests: jobs1=%d jobs8=%d, want 60", rep1.Requests, rep8.Requests)
	}
	if rep1.Fingerprint != rep8.Fingerprint {
		t.Errorf("fingerprints differ: %s vs %s", rep1.Fingerprint, rep8.Fingerprint)
	}
	if len(seen1) != len(seen8) {
		t.Fatalf("distinct ops: jobs1=%d jobs8=%d", len(seen1), len(seen8))
	}
	for h, n := range seen1 {
		if seen8[h] != n {
			t.Errorf("op %016x issued %d times at jobs=1 but %d at jobs=8", h, n, seen8[h])
		}
	}
}

// TestSoakMixedEndpoints is the e2e soak: a >= 2s duration run mixing every
// endpoint against a loopback daemon must complete with zero errors (warmup
// included), and on the hot mix the daemon's cumulative cache hit ratio
// must be monotonically nondecreasing across consecutive bursts — after the
// deterministic warmup pass, every measured hot request is a hit, so each
// burst can only pull the cumulative ratio upward.
func TestSoakMixedEndpoints(t *testing.T) {
	cli, _ := bootDaemon(t, 4)
	ctx := context.Background()

	rep, err := Run(ctx, Config{
		Client: cli, Jobs: 8, Seed: 1, Mix: MixHot,
		Duration: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalErrors() != 0 {
		t.Fatalf("soak saw %d errors (%d warmup): %+v", rep.TotalErrors(), rep.WarmupErrors, rep.StatusCounts)
	}
	if rep.Requests == 0 || rep.AchievedRPS <= 0 {
		t.Fatalf("soak did no work: %+v", rep)
	}
	// Mixed endpoints: the default weights include all five.
	for _, ep := range []string{"rtt", "batch", "sweep", "dimension", "models"} {
		if rep.Endpoints[ep].Requests == 0 {
			t.Errorf("soak never hit endpoint %s", ep)
		}
	}
	if !rep.Cache.Valid || rep.Cache.HitRatio != 1 {
		t.Errorf("hot-mix steady-state hit ratio = %v (valid=%v), want 1",
			rep.Cache.HitRatio, rep.Cache.Valid)
	}

	// Monotone cumulative hit ratio across further hot bursts on the same
	// daemon (same seed, so the key space stays the warmed one).
	ratio := func() float64 {
		snap, err := cli.Metrics(ctx)
		if err != nil {
			t.Fatal(err)
		}
		r, ok := snap.CacheHitRatio()
		if !ok {
			t.Fatal("no traffic in metrics")
		}
		return r
	}
	last := ratio()
	for burst := 0; burst < 3; burst++ {
		if _, err := Run(ctx, Config{
			Client: cli, Jobs: 4, Seed: 1, Mix: MixHot,
			Count: 40, WarmupPasses: -1, // cache is already warm
		}); err != nil {
			t.Fatal(err)
		}
		now := ratio()
		if now < last {
			t.Errorf("burst %d: cumulative hit ratio decreased %.4f -> %.4f", burst, last, now)
		}
		last = now
	}
}

// TestColdMixMisses pins the other end of the cache spectrum: unique-cold
// scenarios essentially never hit.
func TestColdMixMisses(t *testing.T) {
	cli, _ := bootDaemon(t, 4)
	rep, err := Run(context.Background(), Config{
		Client: cli, Jobs: 4, Seed: 3, Mix: MixCold,
		Count: 30, Weights: Weights{RTT: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalErrors() != 0 {
		t.Fatalf("cold run errored: %+v", rep.StatusCounts)
	}
	if !rep.Cache.Valid || rep.Cache.HitRatio > 0.1 {
		t.Errorf("cold mix hit ratio %.3f, want ~0", rep.Cache.HitRatio)
	}
}

// TestZipfSkew pins that the zipf mix actually skews: the most popular pool
// scenario must be drawn far more often than the least popular.
func TestZipfSkew(t *testing.T) {
	g, err := NewGenerator(GeneratorConfig{Seed: 5, Mix: MixZipf, PoolSize: 16,
		Weights: Weights{RTT: 1}})
	if err != nil {
		t.Fatal(err)
	}
	pool := g.Pool()
	counts := make(map[string]int)
	for i := 0; i < 4000; i++ {
		counts[g.Op(i).Scenarios[0].Canonical()]++
	}
	head := counts[pool[0].Canonical()]
	tail := counts[pool[len(pool)-1].Canonical()]
	if head <= 3*tail {
		t.Errorf("zipf head drawn %d times vs tail %d: not skewed", head, tail)
	}
	// Still a long tail: most pool entries appear.
	if len(counts) < len(pool)/2 {
		t.Errorf("only %d of %d pool scenarios drawn", len(counts), len(pool))
	}
}

// TestReportText smoke-tests the human rendering.
func TestReportText(t *testing.T) {
	cli, _ := bootDaemon(t, 2)
	rep, err := Run(context.Background(), Config{
		Client: cli, Jobs: 2, Seed: 9, Mix: MixHot, Count: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	text := rep.Text()
	for _, want := range []string{"fpsload:", "req/s", "latency ms", "hit ratio", "fingerprint"} {
		if !strings.Contains(text, want) {
			t.Errorf("report text missing %q:\n%s", want, text)
		}
	}
}
