package load

import (
	"context"
	"fmt"
	"strings"
	"time"

	"fpsping/internal/client"
	"fpsping/internal/dist"
	"fpsping/internal/scenario"
)

// streamAffinity decorrelates affinity-probe scenarios from the load mixes:
// a probe key must be fresh (never computed by any earlier phase), so it
// draws from its own RNG stream.
const streamAffinity = 0xaff1

// AffinityConfig drives CheckAffinity: a direct measurement that the router
// in front of ReplicaAddrs pins each scenario key to exactly one replica.
type AffinityConfig struct {
	// Router is the client pointed at the fpsrouter base URL.
	Router *client.Client
	// ReplicaAddrs are the individual replica base URLs to scrape.
	ReplicaAddrs []string
	// Probes is the number of fresh scenario keys to test (default 4).
	Probes int
	// Requests is how many identical sequential requests each probe sends
	// through the router (default 5). Affinity means all of them land on one
	// replica: that replica computes once and serves Requests-1 cache hits.
	Requests int
	// Seed picks the probe scenarios (fresh FixedMs values).
	Seed uint64
	// RequestTimeout bounds each probe request and scrape (default
	// client.DefaultTimeout via client.New).
	RequestTimeout time.Duration
}

func (c *AffinityConfig) normalize() error {
	if c.Router == nil {
		return fmt.Errorf("load: affinity check needs a router client")
	}
	if len(c.ReplicaAddrs) < 2 {
		return fmt.Errorf("load: affinity check needs at least 2 replica addresses, got %d", len(c.ReplicaAddrs))
	}
	if c.Probes <= 0 {
		c.Probes = 4
	}
	if c.Requests < 2 {
		c.Requests = 5
	}
	return nil
}

// AffinityProbe is one fresh key's outcome: which replica owned it and what
// the per-replica request deltas looked like.
type AffinityProbe struct {
	// FixedMs identifies the probe scenario (all other fields are defaults).
	FixedMs float64 `json:"fixed_ms"`
	// Owner is the replica address that served the probe's requests, or ""
	// when the probe failed.
	Owner string `json:"owner,omitempty"`
	// Requests/Hits/Computations are the owning replica's /v1/rtt deltas.
	Requests     uint64 `json:"requests"`
	Hits         uint64 `json:"hits"`
	Computations uint64 `json:"computations"`
	// OK reports whether exactly one replica saw all the traffic and computed
	// the key exactly once.
	OK bool `json:"ok"`
	// Detail explains a failed probe.
	Detail string `json:"detail,omitempty"`
}

// AffinityReport is the outcome of CheckAffinity.
type AffinityReport struct {
	Replicas []string        `json:"replicas"`
	Probes   []AffinityProbe `json:"probes"`
	Passed   int             `json:"passed"`
	OK       bool            `json:"ok"`
}

// Text renders the human-readable affinity report.
func (r *AffinityReport) Text() string {
	var b strings.Builder
	verdict := "FAIL"
	if r.OK {
		verdict = "ok"
	}
	fmt.Fprintf(&b, "affinity     %d/%d probes pinned to a single replica  [%s]\n",
		r.Passed, len(r.Probes), verdict)
	for _, p := range r.Probes {
		if p.OK {
			fmt.Fprintf(&b, "  fixed=%.6gms -> %s  (%d requests, %d hits, %d compute)\n",
				p.FixedMs, p.Owner, p.Requests, p.Hits, p.Computations)
		} else {
			fmt.Fprintf(&b, "  fixed=%.6gms -> FAIL: %s\n", p.FixedMs, p.Detail)
		}
	}
	return b.String()
}

// CheckAffinity proves scenario affinity end to end against a live cluster:
// for each of cfg.Probes fresh scenario keys it sends cfg.Requests identical
// /v1/rtt requests through the router and then asserts, from the replicas'
// own /metrics and /healthz counters, that exactly one replica received all
// of them and computed the key exactly once (the rest were cache hits).
//
// The check assumes it is the only traffic touching the replicas while it
// runs — run it after, not during, a load phase.
func CheckAffinity(ctx context.Context, cfg AffinityConfig) (*AffinityReport, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	probes, err := newReplicaProbes(cfg.ReplicaAddrs, Config{RequestTimeout: cfg.RequestTimeout})
	if err != nil {
		return nil, err
	}

	// Fresh keys: vary FixedMs by seeded draw. FixedMs shifts the curve
	// without touching queueing stability, so any positive value is a valid
	// scenario — unlike Gamers or Load, which can push the model unstable.
	rng := dist.NewRNG(cfg.Seed, streamAffinity)
	rep := &AffinityReport{Replicas: append([]string(nil), cfg.ReplicaAddrs...), OK: true}
	for i := 0; i < cfg.Probes; i++ {
		sc := scenario.Default()
		// 3 decimal digits in [10, 110): distinct keys across probes, stable
		// canonical spelling.
		sc.FixedMs = 10 + float64(rng.IntN(100_000))/1000
		p := AffinityProbe{FixedMs: sc.FixedMs}

		if err := probe(ctx, cfg, probes, sc, &p); err != nil {
			return nil, err
		}
		if p.OK {
			rep.Passed++
		} else {
			rep.OK = false
		}
		rep.Probes = append(rep.Probes, p)
	}
	return rep, nil
}

// probe runs one fresh key through the router and fills in the outcome.
func probe(ctx context.Context, cfg AffinityConfig, probes []*replicaProbe, sc scenario.Scenario, out *AffinityProbe) error {
	for _, pr := range probes {
		if err := pr.scrape(ctx); err != nil {
			return err
		}
	}
	for j := 0; j < cfg.Requests; j++ {
		if _, _, err := cfg.Router.RTT(ctx, sc); err != nil {
			out.Detail = fmt.Sprintf("request %d/%d: %v", j+1, cfg.Requests, err)
			return nil
		}
	}
	var owners []string
	for _, pr := range probes {
		d, err := pr.delta(ctx)
		if err != nil {
			return err
		}
		if d.Requests == 0 {
			continue
		}
		owners = append(owners, pr.addr)
		out.Owner = pr.addr
		out.Requests = d.Requests
		out.Hits = d.Hits
		out.Computations = d.Computations
	}
	want := uint64(cfg.Requests)
	switch {
	case len(owners) != 1:
		out.Owner = ""
		out.Detail = fmt.Sprintf("key served by %d replicas %v, want exactly 1", len(owners), owners)
	case out.Requests != want:
		out.Detail = fmt.Sprintf("owner %s saw %d requests, want %d", out.Owner, out.Requests, want)
	case out.Computations != 1:
		out.Detail = fmt.Sprintf("owner %s ran %d computations for one fresh key, want 1", out.Owner, out.Computations)
	case out.Hits != want-1:
		out.Detail = fmt.Sprintf("owner %s served %d cache hits, want %d", out.Owner, out.Hits, want-1)
	default:
		out.OK = true
	}
	return nil
}
