// Package load is fpsping's closed-loop load generator: the tool that turns
// "production-scale daemon" into numbers. N concurrent workers draw
// operations from a seeded generator — a repeated-hot pool, a zipf-skewed
// pool, or unique-cold scenarios — and drive every fpspingd endpoint through
// internal/client, measuring achieved throughput, error counts, latency
// quantiles (Welford + P² from internal/stats) and the daemon's cache hit
// ratio over the run (from /metrics snapshots).
//
// Determinism contract: the i-th operation is a pure function of (config,
// i) — each index derives its own RNG stream — so the multiset of issued
// requests is identical at any worker count; only the interleaving (and the
// measured latencies) differ. Report.Fingerprint is an order-independent
// hash of the executed operations that makes this checkable end to end.
package load

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"

	"fpsping/internal/dist"
	"fpsping/internal/scenario"
)

// Mix names a scenario-drawing strategy.
type Mix string

const (
	// MixHot draws uniformly from a small pool: after one warmup pass every
	// request is answerable from the daemon's cache. This is the cache's
	// best case and the mix CI regresses the hit-ratio floor against.
	MixHot Mix = "hot"
	// MixZipf draws rank-skewed from a pool (popularity follows a zipf law,
	// the standard model for game-server and CDN request popularity): hot
	// head, long tail, a realistic cache workload.
	MixZipf Mix = "zipf"
	// MixCold draws a fresh scenario for every request: the cache's worst
	// case, measuring raw compute throughput.
	MixCold Mix = "cold"
)

// OpKind is one daemon endpoint a generated operation targets.
type OpKind int

const (
	OpRTT OpKind = iota
	OpBatch
	OpSweep
	OpDimension
	OpModels
	numOpKinds
)

var opKindNames = [numOpKinds]string{"rtt", "batch", "sweep", "dimension", "models"}

// String returns the short endpoint name ("rtt", "batch", ...).
func (k OpKind) String() string {
	if k < 0 || k >= numOpKinds {
		return fmt.Sprintf("opkind(%d)", int(k))
	}
	return opKindNames[k]
}

// Weights sets the relative frequency of each endpoint in the generated
// stream; a zero weight removes the endpoint. Only ratios matter.
type Weights struct {
	RTT       float64 `json:"rtt"`
	Batch     float64 `json:"batch"`
	Sweep     float64 `json:"sweep"`
	Dimension float64 `json:"dimension"`
	Models    float64 `json:"models"`
}

// DefaultWeights is an rtt-heavy mix with every endpoint represented, the
// shape of a dimensioning dashboard's traffic.
func DefaultWeights() Weights {
	return Weights{RTT: 16, Batch: 2, Sweep: 1, Dimension: 1, Models: 1}
}

// kind returns weight by OpKind.
func (w Weights) kind(k OpKind) float64 {
	switch k {
	case OpRTT:
		return w.RTT
	case OpBatch:
		return w.Batch
	case OpSweep:
		return w.Sweep
	case OpDimension:
		return w.Dimension
	case OpModels:
		return w.Models
	}
	return 0
}

// total sums all weights.
func (w Weights) total() float64 {
	return w.RTT + w.Batch + w.Sweep + w.Dimension + w.Models
}

// validate rejects negative or non-finite weights and an all-zero mix.
func (w Weights) validate() error {
	for k := OpKind(0); k < numOpKinds; k++ {
		v := w.kind(k)
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("load: weight %s=%g out of range", k, v)
		}
	}
	if w.total() <= 0 {
		return fmt.Errorf("load: all endpoint weights are zero")
	}
	return nil
}

// ParseWeights parses "rtt=16,batch=2,sweep=1" (unnamed endpoints get
// weight 0).
func ParseWeights(s string) (Weights, error) {
	var w Weights
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, value, ok := strings.Cut(part, "=")
		if !ok {
			return w, fmt.Errorf("load: weight %q is not name=value", part)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(value), 64)
		if err != nil {
			return w, fmt.Errorf("load: weight %q: %w", part, err)
		}
		switch strings.TrimSpace(name) {
		case "rtt":
			w.RTT = v
		case "batch":
			w.Batch = v
		case "sweep":
			w.Sweep = v
		case "dimension":
			w.Dimension = v
		case "models":
			w.Models = v
		default:
			return w, fmt.Errorf("load: unknown endpoint %q in weights", name)
		}
	}
	return w, w.validate()
}

// Sweep and dimension operations use fixed parameters so one operation
// costs the same whatever scenario it draws: a short stable load range and
// the paper's 50 ms dimensioning bound.
const (
	sweepFrom        = 0.2
	sweepTo          = 0.6
	sweepStep        = 0.1
	dimensionBoundMs = 50
)

// Op is one generated operation. Exactly the fields its Kind needs are set:
// one scenario for rtt/sweep/dimension, BatchSize scenarios for batch, none
// for models.
type Op struct {
	Kind      OpKind
	Scenarios []scenario.Scenario
	From      float64
	To        float64
	Step      float64
	BoundMs   float64
}

// hash is the op's order-independent fingerprint contribution: kind,
// canonical scenario keys (resolving equivalent spellings exactly like the
// daemon's cache) and parameters.
func (o Op) hash() uint64 {
	h := fnv.New64a()
	io.WriteString(h, o.Kind.String())
	for _, sc := range o.Scenarios {
		io.WriteString(h, "|")
		io.WriteString(h, sc.Canonical())
	}
	fmt.Fprintf(h, "|%x|%x|%x|%x",
		math.Float64bits(o.From), math.Float64bits(o.To),
		math.Float64bits(o.Step), math.Float64bits(o.BoundMs))
	return h.Sum64()
}

// GeneratorConfig parameterizes a Generator.
type GeneratorConfig struct {
	Seed uint64
	Mix  Mix
	// PoolSize is the number of distinct scenarios behind the hot and zipf
	// mixes (<= 0 means 16).
	PoolSize int
	// ZipfSkew is the zipf exponent s in weight ∝ 1/rank^s (<= 0 means 1.1).
	ZipfSkew float64
	// BatchSize is the number of scenarios per batch op (<= 0 means 8).
	BatchSize int
	// Weights is the endpoint mix (zero value means DefaultWeights).
	Weights Weights
}

// Generator derives operations deterministically: Op(i) is a pure function
// of the config and i, safe for concurrent use.
type Generator struct {
	cfg     GeneratorConfig
	pool    []scenario.Scenario
	zipfCum []float64 // cumulative zipf mass over pool ranks, normalized
}

// Stream tags decorrelate the generator's RNG uses: pool construction and
// per-op draws never share a stream.
const (
	streamPool = 0x9001
	streamOp   = 0x0b5
)

// NewGenerator validates the config and builds the (seed-deterministic)
// scenario pool.
func NewGenerator(cfg GeneratorConfig) (*Generator, error) {
	switch cfg.Mix {
	case MixHot, MixZipf, MixCold:
	default:
		return nil, fmt.Errorf("load: unknown mix %q (want hot, zipf or cold)", cfg.Mix)
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 16
	}
	if cfg.ZipfSkew <= 0 {
		cfg.ZipfSkew = 1.1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 8
	}
	if cfg.Weights == (Weights{}) {
		cfg.Weights = DefaultWeights()
	}
	if err := cfg.Weights.validate(); err != nil {
		return nil, err
	}
	g := &Generator{cfg: cfg}
	r := dist.NewRNG(cfg.Seed, streamPool)
	ticks := []float64{30, 40, 50, 60}
	g.pool = make([]scenario.Scenario, cfg.PoolSize)
	for i := range g.pool {
		sc := scenario.Default()
		// Stable by construction: loads stay well below the asymptote and
		// under the sweep range's ceiling.
		sc.Load = 0.10 + 0.75*r.Float64()
		sc.ServerPacketBytes = float64(100 + r.IntN(150))
		sc.BurstIntervalMs = ticks[r.IntN(len(ticks))]
		sc.ErlangOrder = 2 + r.IntN(10)
		g.pool[i] = sc
	}
	if cfg.Mix == MixZipf {
		g.zipfCum = make([]float64, len(g.pool))
		sum := 0.0
		for i := range g.zipfCum {
			sum += math.Pow(float64(i+1), -cfg.ZipfSkew)
			g.zipfCum[i] = sum
		}
		for i := range g.zipfCum {
			g.zipfCum[i] /= sum
		}
	}
	return g, nil
}

// Pool returns the generator's scenario pool (nil-safe copy for tests and
// reports).
func (g *Generator) Pool() []scenario.Scenario {
	out := make([]scenario.Scenario, len(g.pool))
	copy(out, g.pool)
	return out
}

// pickKind maps one uniform draw to an endpoint by cumulative weight.
func (g *Generator) pickKind(u float64) OpKind {
	x := u * g.cfg.Weights.total()
	acc := 0.0
	for k := OpKind(0); k < numOpKinds; k++ {
		acc += g.cfg.Weights.kind(k)
		if x < acc {
			return k
		}
	}
	return OpRTT // u == 1 boundary; unreachable for u in [0,1)
}

// draw returns the next scenario for one op's RNG stream.
func (g *Generator) draw(r *rand.Rand) scenario.Scenario {
	switch g.cfg.Mix {
	case MixHot:
		return g.pool[r.IntN(len(g.pool))]
	case MixZipf:
		u := r.Float64()
		i := sort.SearchFloat64s(g.zipfCum, u)
		if i >= len(g.pool) {
			i = len(g.pool) - 1
		}
		return g.pool[i]
	default: // MixCold: a fresh scenario per draw, unique w.h.p.
		sc := scenario.Default()
		sc.Load = 0.10 + 0.80*r.Float64()
		return sc
	}
}

// Op returns the i-th operation of the stream. Each index gets its own
// decorrelated RNG (dist.SplitSeed-style), so the mapping is independent of
// which worker executes it and in what order.
func (g *Generator) Op(i int) Op {
	r := dist.NewRNG(g.cfg.Seed, streamOp, uint64(i))
	switch g.pickKind(r.Float64()) {
	case OpModels:
		return Op{Kind: OpModels}
	case OpBatch:
		scs := make([]scenario.Scenario, g.cfg.BatchSize)
		for j := range scs {
			scs[j] = g.draw(r)
		}
		return Op{Kind: OpBatch, Scenarios: scs}
	case OpSweep:
		return Op{Kind: OpSweep, Scenarios: []scenario.Scenario{g.draw(r)},
			From: sweepFrom, To: sweepTo, Step: sweepStep}
	case OpDimension:
		return Op{Kind: OpDimension, Scenarios: []scenario.Scenario{g.draw(r)},
			BoundMs: dimensionBoundMs}
	default:
		return Op{Kind: OpRTT, Scenarios: []scenario.Scenario{g.draw(r)}}
	}
}

// WarmupOps returns one deterministic pass over every distinct request the
// mix can produce, so a warmed cache answers every subsequent pool-backed
// op (hot, zipf) without recomputation: an RTT per pool scenario (which
// also answers batch items), plus the fixed sweep and dimension questions
// for endpoints present in the mix. The cold mix has nothing to warm.
func (g *Generator) WarmupOps() []Op {
	var ops []Op
	if g.cfg.Mix != MixCold {
		for _, sc := range g.pool {
			if g.cfg.Weights.RTT > 0 || g.cfg.Weights.Batch > 0 {
				ops = append(ops, Op{Kind: OpRTT, Scenarios: []scenario.Scenario{sc}})
			}
			if g.cfg.Weights.Sweep > 0 {
				ops = append(ops, Op{Kind: OpSweep, Scenarios: []scenario.Scenario{sc},
					From: sweepFrom, To: sweepTo, Step: sweepStep})
			}
			if g.cfg.Weights.Dimension > 0 {
				ops = append(ops, Op{Kind: OpDimension, Scenarios: []scenario.Scenario{sc},
					BoundMs: dimensionBoundMs})
			}
		}
	}
	if g.cfg.Weights.Models > 0 {
		ops = append(ops, Op{Kind: OpModels})
	}
	return ops
}
