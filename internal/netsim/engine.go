// Package netsim is a discrete-event packet-level network simulator built
// for the paper's access-network scenario (Figure 2): per-gamer access
// links, an aggregation node, a bottleneck link to the game server, FIFO and
// WFQ/priority schedulers, and packet-delay measurement. It stands in for
// the LAN party and DSL testbed the authors measured (see DESIGN.md's
// substitution table) and cross-validates the analytic models of §3.
package netsim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// ErrBadConfig reports an invalid simulator configuration.
var ErrBadConfig = errors.New("netsim: invalid configuration")

// event is one scheduled callback.
type event struct {
	time float64
	seq  uint64 // tie-breaker: schedule order
	fn   func()
}

// eventHeap is a min-heap on (time, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event loop. Events at equal times
// fire in scheduling order, making runs fully deterministic for a fixed
// seed.
type Engine struct {
	now     float64
	seq     uint64
	events  eventHeap
	stopped bool
	// Processed counts executed events (for reporting and runaway guards).
	Processed uint64
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Schedule runs fn after delay seconds (>= 0).
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("netsim: negative delay %v", delay))
	}
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute time t (>= Now).
func (e *Engine) ScheduleAt(t float64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("netsim: scheduling into the past: %v < %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{time: t, seq: e.seq, fn: fn})
}

// Run processes events until the horizon (inclusive) or until no events
// remain. It returns the number of events processed in this call.
func (e *Engine) Run(until float64) uint64 {
	var n uint64
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if next.time > until {
			break
		}
		heap.Pop(&e.events)
		e.now = next.time
		next.fn()
		n++
		e.Processed++
	}
	if e.now < until {
		e.now = until
	}
	return n
}

// Stop halts Run after the current event.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }
