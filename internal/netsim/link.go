package netsim

import (
	"fmt"
	"math"

	"fpsping/internal/trace"
)

// Class partitions traffic for the schedulers of §1: gaming (interactive)
// versus elastic background.
type Class int

// Traffic classes.
const (
	ClassGaming Class = iota
	ClassElastic
	numClasses
)

// Packet is one simulated datagram.
type Packet struct {
	// Size in bytes (includes all headers; the paper's sizes are on-wire).
	Size int
	// Flow identifies source and destination endpoints.
	Flow trace.Flow
	// Class selects the scheduler queue.
	Class Class
	// Burst is the server tick number for downstream packets, else -1.
	Burst int
	// Sent is the emission timestamp at the origin node.
	Sent float64
	// Seq numbers packets within their flow.
	Seq int64
}

// Handler consumes packets delivered by a link.
type Handler interface {
	HandlePacket(p *Packet)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(p *Packet)

// HandlePacket calls f.
func (f HandlerFunc) HandlePacket(p *Packet) { f(p) }

// Scheduler picks the next queued packet on a link.
type Scheduler interface {
	// Enqueue stores p; returns false if it was dropped (queue overflow).
	Enqueue(p *Packet) bool
	// Dequeue removes and returns the next packet, or nil if empty.
	Dequeue() *Packet
	// QueuedBytes returns the total backlog in bytes.
	QueuedBytes() int
}

// FIFO is a single shared queue with an optional byte limit (0 = unbounded):
// the baseline scheduler of §1 where elastic traffic can hurt gaming delay.
type FIFO struct {
	Limit int
	q     []*Packet
	bytes int
	Drops int
}

// Enqueue appends unless the byte limit would be exceeded.
func (f *FIFO) Enqueue(p *Packet) bool {
	if f.Limit > 0 && f.bytes+p.Size > f.Limit {
		f.Drops++
		return false
	}
	f.q = append(f.q, p)
	f.bytes += p.Size
	return true
}

// Dequeue pops the head.
func (f *FIFO) Dequeue() *Packet {
	if len(f.q) == 0 {
		return nil
	}
	p := f.q[0]
	f.q[0] = nil
	f.q = f.q[1:]
	f.bytes -= p.Size
	return p
}

// QueuedBytes returns the backlog.
func (f *FIFO) QueuedBytes() int { return f.bytes }

// HoLPriority serves ClassGaming strictly before ClassElastic
// (non-preemptive head-of-line priority, §1).
type HoLPriority struct {
	Limit int
	q     [numClasses][]*Packet
	bytes int
	Drops int
}

// Enqueue stores p in its class queue.
func (h *HoLPriority) Enqueue(p *Packet) bool {
	if h.Limit > 0 && h.bytes+p.Size > h.Limit {
		h.Drops++
		return false
	}
	h.q[p.Class] = append(h.q[p.Class], p)
	h.bytes += p.Size
	return true
}

// Dequeue pops from the highest-priority non-empty class.
func (h *HoLPriority) Dequeue() *Packet {
	for c := 0; c < int(numClasses); c++ {
		if len(h.q[c]) > 0 {
			p := h.q[c][0]
			h.q[c][0] = nil
			h.q[c] = h.q[c][1:]
			h.bytes -= p.Size
			return p
		}
	}
	return nil
}

// QueuedBytes returns the backlog.
func (h *HoLPriority) QueuedBytes() int { return h.bytes }

// WFQ is a two-class self-clocked fair queueing scheduler (SCFQ), the
// practical realization of the WFQ discussed in §1: each class is guaranteed
// its weight share of the link, so gaming traffic gets its provisioned
// capacity without starving the elastic class.
type WFQ struct {
	// Weights are the per-class shares; they need not sum to 1.
	Weights [numClasses]float64
	Limit   int
	q       [numClasses][]*Packet
	tags    [numClasses][]float64
	last    [numClasses]float64
	current float64 // finish tag of the packet in service (SCFQ virtual time)
	bytes   int
	Drops   int
}

// NewWFQ builds a scheduler with the given positive weights.
func NewWFQ(gamingWeight, elasticWeight float64, limit int) (*WFQ, error) {
	if !(gamingWeight > 0) || !(elasticWeight > 0) {
		return nil, fmt.Errorf("%w: WFQ weights %g/%g", ErrBadConfig, gamingWeight, elasticWeight)
	}
	return &WFQ{Weights: [numClasses]float64{gamingWeight, elasticWeight}, Limit: limit}, nil
}

// Enqueue stamps the packet with its SCFQ finish tag.
func (w *WFQ) Enqueue(p *Packet) bool {
	if w.Limit > 0 && w.bytes+p.Size > w.Limit {
		w.Drops++
		return false
	}
	start := math.Max(w.last[p.Class], w.current)
	finish := start + float64(p.Size)/w.Weights[p.Class]
	w.last[p.Class] = finish
	w.q[p.Class] = append(w.q[p.Class], p)
	w.tags[p.Class] = append(w.tags[p.Class], finish)
	w.bytes += p.Size
	return true
}

// Dequeue serves the smallest finish tag across classes.
func (w *WFQ) Dequeue() *Packet {
	best := -1
	bestTag := math.Inf(1)
	for c := 0; c < int(numClasses); c++ {
		if len(w.q[c]) > 0 && w.tags[c][0] < bestTag {
			best = c
			bestTag = w.tags[c][0]
		}
	}
	if best < 0 {
		return nil
	}
	p := w.q[best][0]
	w.q[best][0] = nil
	w.q[best] = w.q[best][1:]
	w.tags[best] = w.tags[best][1:]
	w.current = bestTag
	w.bytes -= p.Size
	return p
}

// QueuedBytes returns the backlog.
func (w *WFQ) QueuedBytes() int { return w.bytes }

// Link is a store-and-forward transmission line: packets serialize one at a
// time at Rate bits per second, then ride a fixed propagation delay to the
// destination handler. Serialization of the next packet overlaps the
// propagation of the previous one, as on real links.
type Link struct {
	// Name labels the link in stats and errors.
	Name string
	// Rate is the line rate in bit/s.
	Rate float64
	// Prop is the one-way propagation delay in seconds.
	Prop float64
	// Dst receives delivered packets.
	Dst Handler
	// Sched queues waiting packets; nil means unbounded FIFO.
	Sched Scheduler

	engine *Engine
	busy   bool
	// Sent and SentBytes count transmissions.
	Sent      int64
	SentBytes int64
}

// NewLink wires a link into an engine.
func NewLink(e *Engine, name string, rate, prop float64, sched Scheduler, dst Handler) (*Link, error) {
	if !(rate > 0) || prop < 0 || dst == nil || e == nil {
		return nil, fmt.Errorf("%w: link %q rate=%g prop=%g", ErrBadConfig, name, rate, prop)
	}
	if sched == nil {
		sched = &FIFO{}
	}
	return &Link{Name: name, Rate: rate, Prop: prop, Dst: dst, Sched: sched, engine: e}, nil
}

// Send queues p for transmission (dropping it if the scheduler refuses).
func (l *Link) Send(p *Packet) {
	if !l.Sched.Enqueue(p) {
		return
	}
	if !l.busy {
		l.transmitNext()
	}
}

// transmitNext pops one packet and models its serialization + propagation.
func (l *Link) transmitNext() {
	p := l.Sched.Dequeue()
	if p == nil {
		l.busy = false
		return
	}
	l.busy = true
	ser := 8 * float64(p.Size) / l.Rate
	l.engine.Schedule(ser, func() {
		l.Sent++
		l.SentBytes += int64(p.Size)
		// Delivery after propagation; the line is free immediately.
		l.engine.Schedule(l.Prop, func() { l.Dst.HandlePacket(p) })
		l.transmitNext()
	})
}

// QueuedBytes exposes the current backlog.
func (l *Link) QueuedBytes() int { return l.Sched.QueuedBytes() }
