package netsim

import (
	"math"
	"testing"

	"fpsping/internal/core"
	"fpsping/internal/dist"
	"fpsping/internal/queueing"
	"fpsping/internal/trace"
)

func TestEngineOrderingAndDeterminism(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(0.2, func() { order = append(order, 2) })
	e.Schedule(0.1, func() { order = append(order, 1) })
	e.Schedule(0.2, func() { order = append(order, 3) }) // same time: schedule order
	e.Schedule(0.3, func() { order = append(order, 4) })
	n := e.Run(0.25)
	if n != 3 {
		t.Fatalf("processed %d", n)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 0.25 {
		t.Errorf("now = %v", e.Now())
	}
	e.Run(1)
	if len(order) != 4 {
		t.Errorf("remaining event not run")
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(0.1, func() { ran++; e.Stop() })
	e.Schedule(0.2, func() { ran++ })
	e.Run(1)
	if ran != 1 {
		t.Errorf("ran = %d, want stop after first", ran)
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d", e.Pending())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic scheduling into the past")
		}
	}()
	e := NewEngine()
	e.Schedule(0.1, func() { e.ScheduleAt(0.05, func() {}) })
	e.Run(1)
}

func TestLinkTimingExact(t *testing.T) {
	e := NewEngine()
	var arrivals []float64
	sink := HandlerFunc(func(p *Packet) { arrivals = append(arrivals, e.Now()) })
	l, err := NewLink(e, "l", 1_000_000, 0.002, nil, sink) // 1 Mbit/s, 2ms prop
	if err != nil {
		t.Fatal(err)
	}
	// Two 1250-byte packets sent back to back at t=0: serialization 10ms
	// each; arrivals at 12ms and 22ms (store and forward, overlap with
	// propagation).
	e.Schedule(0, func() {
		l.Send(&Packet{Size: 1250, Sent: 0})
		l.Send(&Packet{Size: 1250, Sent: 0})
	})
	e.Run(1)
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if math.Abs(arrivals[0]-0.012) > 1e-12 || math.Abs(arrivals[1]-0.022) > 1e-12 {
		t.Errorf("arrivals = %v, want [0.012, 0.022]", arrivals)
	}
	if l.Sent != 2 || l.SentBytes != 2500 {
		t.Errorf("counters %d/%d", l.Sent, l.SentBytes)
	}
}

func TestFIFOLimitDrops(t *testing.T) {
	f := &FIFO{Limit: 3000}
	ok1 := f.Enqueue(&Packet{Size: 1500})
	ok2 := f.Enqueue(&Packet{Size: 1500})
	ok3 := f.Enqueue(&Packet{Size: 1500})
	if !ok1 || !ok2 || ok3 {
		t.Errorf("enqueue results %v %v %v", ok1, ok2, ok3)
	}
	if f.Drops != 1 || f.QueuedBytes() != 3000 {
		t.Errorf("drops=%d bytes=%d", f.Drops, f.QueuedBytes())
	}
	if p := f.Dequeue(); p == nil || f.QueuedBytes() != 1500 {
		t.Error("dequeue accounting broken")
	}
}

func TestHoLPriorityOrder(t *testing.T) {
	h := &HoLPriority{}
	h.Enqueue(&Packet{Size: 1, Class: ClassElastic, Seq: 1})
	h.Enqueue(&Packet{Size: 1, Class: ClassGaming, Seq: 2})
	h.Enqueue(&Packet{Size: 1, Class: ClassElastic, Seq: 3})
	h.Enqueue(&Packet{Size: 1, Class: ClassGaming, Seq: 4})
	want := []int64{2, 4, 1, 3}
	for i, w := range want {
		p := h.Dequeue()
		if p == nil || p.Seq != w {
			t.Fatalf("dequeue %d: got %+v want seq %d", i, p, w)
		}
	}
	if h.Dequeue() != nil {
		t.Error("expected empty")
	}
}

func TestWFQFairShare(t *testing.T) {
	// Saturate a link with both classes; byte shares must approach the
	// configured 3:1 weights.
	e := NewEngine()
	var gamingBytes, elasticBytes int64
	sink := HandlerFunc(func(p *Packet) {
		if p.Class == ClassGaming {
			gamingBytes += int64(p.Size)
		} else {
			elasticBytes += int64(p.Size)
		}
	})
	w, err := NewWFQ(3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLink(e, "l", 1_000_000, 0, w, sink)
	if err != nil {
		t.Fatal(err)
	}
	e.Schedule(0, func() {
		for i := 0; i < 2000; i++ {
			l.Send(&Packet{Size: 500, Class: ClassGaming})
			l.Send(&Packet{Size: 1500, Class: ClassElastic})
		}
	})
	e.Run(2.0) // ~250kB transmittable; both queues stay backlogged
	total := gamingBytes + elasticBytes
	if total < 200_000 {
		t.Fatalf("too little transmitted: %d", total)
	}
	share := float64(gamingBytes) / float64(total)
	if math.Abs(share-0.75) > 0.02 {
		t.Errorf("gaming share %v, want ~0.75", share)
	}
	if _, err := NewWFQ(0, 1, 0); err == nil {
		t.Error("accepted zero weight")
	}
}

func TestLinkMD1AgainstAnalytic(t *testing.T) {
	// Poisson arrivals of fixed-size packets into a link = M/D/1. The
	// simulated waiting time distribution must match the exact formula.
	const (
		rate   = 1_000_000.0 // bit/s
		size   = 100         // bytes -> service 0.8ms
		lambda = 875.0       // arrivals/s -> rho = 0.7
		n      = 400_000
	)
	q, err := queueing.NewMD1(lambda, 8*float64(size)/rate)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine()
	ser := 8 * float64(size) / rate
	waits := newDelayStats()
	probes := []float64{0.001, 0.002, 0.004, 0.008}
	counts := make([]int, len(probes))
	sink := HandlerFunc(func(p *Packet) {
		w := e.Now() - p.Sent - ser // subtract own serialization
		waits.Add(w)
		for i, x := range probes {
			if w > x {
				counts[i]++
			}
		}
	})
	l, err := NewLink(e, "l", rate, 0, nil, sink)
	if err != nil {
		t.Fatal(err)
	}
	r := dist.NewRNG(5)
	sent := 0
	var emit func()
	emit = func() {
		if sent >= n {
			return
		}
		sent++
		l.Send(&Packet{Size: size, Sent: e.Now()})
		e.Schedule(r.ExpFloat64()/lambda, emit)
	}
	e.Schedule(0, emit)
	e.Run(1e9)
	autocorr := 1 + 2/(1-q.Load())
	for i, x := range probes {
		got := float64(counts[i]) / float64(n)
		want := q.WaitTailExact(x)
		tol := autocorr * (6*math.Sqrt(want*(1-want)/n) + 1e-9)
		if math.Abs(got-want) > tol {
			t.Errorf("P(W>%v): sim %v vs exact %v (tol %v)", x, got, want, tol)
		}
	}
	if math.Abs(waits.Summary.Mean()-q.MeanWait()) > 0.05*q.MeanWait() {
		t.Errorf("mean wait %v vs PK %v", waits.Summary.Mean(), q.MeanWait())
	}
}

// dslConfig builds a §4-style scenario with the Erlang burst-total law.
func dslConfig(gamers, k int, tSec float64, psBytes float64) Config {
	meanBurstBytes := float64(gamers) * psBytes
	erl, err := dist.ErlangByMean(k, meanBurstBytes)
	if err != nil {
		panic(err)
	}
	return Config{
		Gamers:       gamers,
		ClientSize:   dist.NewDeterministic(80),
		ClientIAT:    dist.NewDeterministic(tSec),
		BurstTotal:   erl,
		BurstIAT:     dist.NewDeterministic(tSec),
		UpRate:       128_000,
		DownRate:     1_024_000,
		AggRate:      5_000_000,
		ShuffleBurst: true,
	}
}

func TestScenarioStructure(t *testing.T) {
	cfg := dslConfig(10, 9, 0.060, 125)
	cfg.Capture = true
	s, err := NewScenario(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(30)
	if err != nil {
		t.Fatal(err)
	}
	// ~500 ticks of 10 packets plus ~500 updates per client.
	if res.Down.Summary.Count() < 4500 {
		t.Errorf("down packets = %d", res.Down.Summary.Count())
	}
	if res.Up.Summary.Count() < 4500 {
		t.Errorf("up packets = %d", res.Up.Summary.Count())
	}
	if res.RTT.Summary.Count() < 4500 {
		t.Errorf("rtt samples = %d", res.RTT.Summary.Count())
	}
	if res.Drops != 0 {
		t.Errorf("unexpected drops: %d", res.Drops)
	}
	// Delays are at least serialization: up >= 8*80/128k + 8*80/5M.
	minUp := 8*80/128000.0 + 8*80/5e6
	if res.Up.Summary.Min() < minUp-1e-12 {
		t.Errorf("up min %v below serialization %v", res.Up.Summary.Min(), minUp)
	}
	// Captured trace analyzes cleanly.
	ts, err := trace.Analyze(res.Trace, 0.010)
	if err != nil {
		t.Fatal(err)
	}
	if ts.PacketsPerBurst.Mean() != 10 {
		t.Errorf("packets per burst %v", ts.PacketsPerBurst.Mean())
	}
	if math.Abs(ts.Downstream.IAT.Mean()-0.060) > 0.001 {
		t.Errorf("burst IAT %v", ts.Downstream.IAT.Mean())
	}
	if math.Abs(ts.Upstream.IAT.Mean()-0.060) > 0.001 {
		t.Errorf("client IAT %v", ts.Upstream.IAT.Mean())
	}
}

func TestScenarioValidation(t *testing.T) {
	if _, err := NewScenario(Config{}, 1); err == nil {
		t.Error("accepted empty config")
	}
	cfg := dslConfig(5, 9, 0.060, 125)
	cfg.ClientSize = nil
	if _, err := NewScenario(cfg, 1); err == nil {
		t.Error("accepted missing client size")
	}
	cfg = dslConfig(5, 9, 0.060, 125)
	s, err := NewScenario(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0); err == nil {
		t.Error("accepted zero duration")
	}
}

func TestScenarioMatchesCoreModel(t *testing.T) {
	if testing.Short() {
		t.Skip("long validation run")
	}
	// Full §4 scenario at 50% downlink load, K=9, T=60ms, 150 gamers.
	// Compare the simulated 99.9% RTT quantile against the analytic chain.
	// (The paper's 99.999% needs 100x more samples than is reasonable in a
	// unit test; the distribution shape is already pinned at 99.9%.)
	//
	// The access downlink is set fast (1 Gbit/s) so the comparison isolates
	// the aggregation-link physics: with the Erlang burst-total split
	// equally over clients, a slow per-client downlink would couple its
	// serialization time to the burst size, which the model's fixed
	// serialization term deliberately ignores.
	cfg := dslConfig(150, 9, 0.060, 125)
	cfg.DownRate = 1e9
	s, err := NewScenario(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(600) // 10k ticks -> 1.5M RTT samples
	if err != nil {
		t.Fatal(err)
	}
	simQ, err := res.RTT.Quantile(0.999)
	if err != nil {
		t.Fatal(err)
	}

	m := core.DSLDefaults()
	m.Gamers = 150
	m.ServerPacketBytes = 125
	m.BurstInterval = 0.060
	m.ErlangOrder = 9
	m.DownlinkAccessRate = 1e9
	m.Quantile = 0.999
	if rho := m.DownlinkLoad(); math.Abs(rho-0.5) > 1e-12 {
		t.Fatalf("load = %v, want 0.5", rho)
	}
	want, err := m.RTTQuantile()
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(simQ-want) / want; rel > 0.08 {
		t.Errorf("RTT p99.9: sim %.2fms vs model %.2fms (rel %.3f)",
			1e3*simQ, 1e3*want, rel)
	}
	meanWant, err := m.MeanRTT()
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.RTT.Summary.Mean()-meanWant) / meanWant; rel > 0.05 {
		t.Errorf("mean RTT: sim %.3fms vs model %.3fms", 1e3*res.RTT.Summary.Mean(), 1e3*meanWant)
	}
}

func TestWFQProtectsGamingFromElasticFlood(t *testing.T) {
	// §1's claim: under WFQ the gaming class keeps its provisioned share
	// even with an elastic flood, while FIFO lets the flood wreck gaming
	// delay, and HoL would starve the elastic class.
	base := dslConfig(30, 9, 0.060, 125)
	flood := &BackgroundConfig{Rate: 6_000_000, PacketSize: 1500} // > link rate

	run := func(sched func() Scheduler, bg *BackgroundConfig, seed uint64) *Results {
		cfg := base
		cfg.Background = bg
		cfg.NewAggScheduler = sched
		s, err := NewScenario(cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(120)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	clean := run(nil, nil, 1)
	// WFQ with gaming guaranteed ~37.5% of 5Mbit/s (its §4 share): weight
	// ratio 3:5 gives 1.875M guaranteed, ~2x the gaming load.
	wfq := run(func() Scheduler {
		w, err := NewWFQ(3, 5, 0)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}, flood, 2)
	fifo := run(func() Scheduler { return &FIFO{Limit: 250_000} }, flood, 3)
	hol := run(func() Scheduler { return &HoLPriority{Limit: 250_000} }, flood, 4)

	q := func(r *Results) float64 {
		v, err := r.RTT.Quantile(0.99)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	cleanQ, wfqQ, fifoQ, holQ := q(clean), q(wfq), q(fifo), q(hol)
	// WFQ: bounded degradation (well under 2x the clean RTT quantile plus
	// one elastic packet's residual service).
	residual := 8 * 1500 / 5e6
	if wfqQ > 2*cleanQ+residual {
		t.Errorf("WFQ did not protect gaming: clean %.2fms vs wfq %.2fms",
			1e3*cleanQ, 1e3*wfqQ)
	}
	// FIFO under flood: catastrophically worse.
	if fifoQ < 4*cleanQ {
		t.Errorf("FIFO should collapse under flood: clean %.2fms vs fifo %.2fms",
			1e3*cleanQ, 1e3*fifoQ)
	}
	// HoL: gaming at least as good as WFQ.
	if holQ > wfqQ*1.5+residual {
		t.Errorf("HoL gaming delay %.2fms worse than WFQ %.2fms", 1e3*holQ, 1e3*wfqQ)
	}
	// The flood exceeds link capacity, so the bounded schedulers must shed
	// elastic load massively (with finite queues, starvation shows up as
	// drops and lost throughput rather than delay).
	if fifo.Drops < 1000 || hol.Drops < 1000 {
		t.Errorf("flood should cause mass drops: fifo=%d hol=%d", fifo.Drops, hol.Drops)
	}
	// And the clean run sheds nothing.
	if clean.Drops != 0 {
		t.Errorf("clean run dropped %d packets", clean.Drops)
	}
}

func TestJitterInjectionShiftsDownDelay(t *testing.T) {
	cfg := dslConfig(10, 9, 0.060, 125)
	noJitter, err := NewScenario(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	r0, err := noJitter.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := dslConfig(10, 9, 0.060, 125)
	u, _ := dist.NewUniform(0, 0.004) // mean 2ms jitter as in [23]'s low setting
	cfg2.DownJitter = u
	withJitter, err := NewScenario(cfg2, 9)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := withJitter.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	shift := r1.Down.Summary.Mean() - r0.Down.Summary.Mean()
	if math.Abs(shift-0.002) > 0.0005 {
		t.Errorf("jitter shifted mean by %v, want ~2ms", shift)
	}
}

func BenchmarkScenarioSecond(b *testing.B) {
	cfg := dslConfig(50, 9, 0.060, 125)
	s, err := NewScenario(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(s.engine.Now() + 1); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMultiServerScenarioMatchesModel(t *testing.T) {
	if testing.Short() {
		t.Skip("long validation run")
	}
	// The multi-server law models burst arrivals as Poisson - the paper's
	// S->infinity superposition limit ("very well approximated by M/G/1, if
	// the number of servers is high enough"). For finite S the staggered
	// periodic clocks are less bursty than Poisson, so the model must
	// over-predict, and the over-prediction must shrink as S grows.
	run := func(servers, perServer int) (simQ, modelQ float64) {
		tSec := 0.060
		erl, err := dist.ErlangByMean(9, float64(perServer)*125)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Gamers:       servers * perServer,
			Servers:      servers,
			ClientSize:   dist.NewDeterministic(80),
			ClientIAT:    dist.NewDeterministic(tSec),
			BurstTotal:   erl,
			BurstIAT:     dist.NewDeterministic(tSec),
			UpRate:       128_000,
			DownRate:     1e9,
			AggRate:      5_000_000,
			ShuffleBurst: true,
		}
		// Replicate over independent phase configurations: one run pins the
		// server phases for its whole horizon, and the tail depends on how
		// the clocks happen to stagger.
		merged := newDelayStats()
		for rep := 0; rep < 6; rep++ {
			s, err := NewScenario(cfg, uint64(11+rep))
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run(120)
			if err != nil {
				t.Fatal(err)
			}
			merged.Merge(res.RTT)
		}
		simQ, err = merged.Quantile(0.999)
		if err != nil {
			t.Fatal(err)
		}
		per := core.DSLDefaults()
		per.Gamers = float64(perServer)
		per.ServerPacketBytes = 125
		per.BurstInterval = tSec
		per.ErlangOrder = 9
		per.DownlinkAccessRate = 1e9
		per.Quantile = 0.999
		ms := core.MultiServer{PerServer: per, Servers: servers}
		modelQ, err = ms.RTTQuantile()
		if err != nil {
			t.Fatal(err)
		}
		return simQ, modelQ
	}

	sim4, model4 := run(4, 40)    // aggregate load 53.3%
	sim16, model16 := run(16, 10) // same aggregate load, 16 clocks
	rel4 := (model4 - sim4) / model4
	rel16 := (model16 - sim16) / model16
	if rel4 < -0.05 {
		t.Errorf("S=4: model %.2fms under-predicts sim %.2fms", 1e3*model4, 1e3*sim4)
	}
	if rel16 < -0.05 || rel16 > 0.45 {
		t.Errorf("S=16: model %.2fms vs sim %.2fms (rel %.3f)", 1e3*model16, 1e3*sim16, rel16)
	}
	if rel16 > rel4 {
		t.Errorf("Poisson limit not improving with S: rel4=%.3f rel16=%.3f", rel4, rel16)
	}
}

func TestMultiServerConfigValidation(t *testing.T) {
	cfg := dslConfig(10, 9, 0.060, 125)
	cfg.Servers = 11
	if _, err := NewScenario(cfg, 1); err == nil {
		t.Error("accepted more servers than gamers")
	}
	cfg.Servers = -1
	if _, err := NewScenario(cfg, 1); err == nil {
		t.Error("accepted negative servers")
	}
	// Every client still gets downstream traffic with 3 servers over 10
	// gamers (uneven split).
	cfg.Servers = 3
	s, err := NewScenario(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(20)
	if err != nil {
		t.Fatal(err)
	}
	if res.RTT.Summary.Count() < 2000 {
		t.Errorf("rtt samples %d", res.RTT.Summary.Count())
	}
}
