package netsim

import (
	"fmt"
	"math/rand/v2"

	"fpsping/internal/dist"
	"fpsping/internal/stats"
	"fpsping/internal/trace"
)

// Config describes the Figure 2 scenario: N gamers behind dedicated access
// lines, an aggregation node, and a shared aggregation link to the server in
// each direction. All laws are in seconds and bytes.
type Config struct {
	// Gamers is the number of clients.
	Gamers int
	// Servers is the number of game servers sharing the aggregation link
	// (default 1). Gamers are assigned round-robin; each server runs its
	// own tick loop with an independent random phase, realizing the §3.2
	// multi-server superposition. BurstTotal/ServerSize laws apply per
	// server burst.
	Servers int
	// ClientSize is the client update size law (e.g. Det(80)).
	ClientSize dist.Distribution
	// ClientIAT is the client update period law (e.g. Det(0.040)).
	ClientIAT dist.Distribution
	// ServerSize is the per-client server packet size law. Ignored when
	// BurstTotal is set.
	ServerSize dist.Distribution
	// BurstLevel, when non-nil, draws one multiplier per tick applied to
	// every ServerSize draw of that burst. It injects the within-burst
	// size correlation the paper's LAN trace shows (§2.2: per-burst size
	// CoV far below the overall CoV). Mean should be 1.
	BurstLevel dist.Distribution
	// BurstTotal, when non-nil, draws the TOTAL burst size per tick (the
	// paper's Erlang(K) model) and splits it equally across clients. This
	// realizes the D/E_K/1 downstream model exactly.
	BurstTotal dist.Distribution
	// BurstIAT is the tick period law (e.g. Det(0.060)).
	BurstIAT dist.Distribution
	// UpRate/DownRate are the per-gamer access link rates (bit/s).
	UpRate, DownRate float64
	// AggRate is the aggregation link rate in each direction (bit/s).
	AggRate float64
	// AccessProp/AggProp are one-way propagation delays (s).
	AccessProp, AggProp float64
	// ShuffleBurst randomizes the packet order inside each burst (§2.2
	// observes the order varies; the uniform position law of §3.2.2 assumes
	// exactly this). Default in NewScenario: true.
	ShuffleBurst bool
	// DownJitter, when non-nil, adds a random extra delay to each
	// downstream packet before its access link - the artificial jitter of
	// the paper's source experiment [23].
	DownJitter dist.Distribution
	// Background, when non-nil, offers elastic cross-traffic to the
	// downstream aggregation link.
	Background *BackgroundConfig
	// NewAggScheduler constructs the scheduler for each direction of the
	// aggregation link; nil means unbounded FIFO.
	NewAggScheduler func() Scheduler
	// Capture records every packet arrival into a trace for Table-3 style
	// analysis.
	Capture bool
}

// BackgroundConfig is Poisson elastic cross-traffic.
type BackgroundConfig struct {
	// Rate is the offered bit rate.
	Rate float64
	// PacketSize is the elastic packet size in bytes (e.g. 1500).
	PacketSize int
}

// DelayStats accumulates one delay population with exact deep-tail order
// statistics.
type DelayStats struct {
	Summary stats.Summary
	top     *stats.TopK
}

func newDelayStats() *DelayStats {
	tk, _ := stats.NewTopK(50_000)
	return &DelayStats{top: tk}
}

// Add folds one delay sample.
func (d *DelayStats) Add(x float64) {
	d.Summary.Add(x)
	d.top.Add(x)
}

// Merge folds another population into d (replicated runs).
func (d *DelayStats) Merge(o *DelayStats) {
	d.Summary.Merge(o.Summary)
	d.top.Merge(o.top)
}

// Quantile returns the exact empirical quantile if enough tail is retained.
func (d *DelayStats) Quantile(p float64) (float64, error) { return d.top.Quantile(p) }

// Results collects a scenario run's measurements.
type Results struct {
	// Up and Down are one-way network delays (queueing + serialization +
	// propagation) for gaming packets.
	Up, Down *DelayStats
	// RTT pairs per-client upstream and downstream delays in sequence
	// order: the ping time (§1's definition: up delay + down delay).
	RTT *DelayStats
	// Elastic is the delay population of background packets (WFQ studies).
	Elastic *DelayStats
	// Trace is the capture (nil unless Config.Capture).
	Trace *trace.Trace
	// Drops counts scheduler drops on the aggregation links.
	Drops int
	// Events is the number of simulator events processed.
	Events uint64
}

// Scenario is a wired-up simulation ready to run.
type Scenario struct {
	cfg    Config
	engine *Engine
	rng    *rand.Rand

	upAccess   []*Link
	downAccess []*Link
	aggUp      *Link
	aggDown    *Link

	res     *Results
	upByCli [][]float64
	dnByCli [][]float64
	burstNo int
}

// NewScenario validates the config and builds the topology.
func NewScenario(cfg Config, seed uint64) (*Scenario, error) {
	if cfg.Gamers < 1 {
		return nil, fmt.Errorf("%w: gamers=%d", ErrBadConfig, cfg.Gamers)
	}
	if cfg.Servers == 0 {
		cfg.Servers = 1
	}
	if cfg.Servers < 1 || cfg.Servers > cfg.Gamers {
		return nil, fmt.Errorf("%w: servers=%d for %d gamers", ErrBadConfig, cfg.Servers, cfg.Gamers)
	}
	if cfg.ClientSize == nil || cfg.ClientIAT == nil || cfg.BurstIAT == nil {
		return nil, fmt.Errorf("%w: missing traffic laws", ErrBadConfig)
	}
	if cfg.ServerSize == nil && cfg.BurstTotal == nil {
		return nil, fmt.Errorf("%w: need ServerSize or BurstTotal", ErrBadConfig)
	}
	if !(cfg.UpRate > 0) || !(cfg.DownRate > 0) || !(cfg.AggRate > 0) {
		return nil, fmt.Errorf("%w: rates %g/%g/%g", ErrBadConfig, cfg.UpRate, cfg.DownRate, cfg.AggRate)
	}
	s := &Scenario{
		cfg:    cfg,
		engine: NewEngine(),
		rng:    dist.NewRNG(seed),
		res: &Results{
			Up:      newDelayStats(),
			Down:    newDelayStats(),
			RTT:     newDelayStats(),
			Elastic: newDelayStats(),
		},
		upByCli: make([][]float64, cfg.Gamers),
		dnByCli: make([][]float64, cfg.Gamers),
	}
	if cfg.Capture {
		s.res.Trace = trace.New()
	}

	newSched := cfg.NewAggScheduler
	if newSched == nil {
		newSched = func() Scheduler { return &FIFO{} }
	}

	// Server side: upstream aggregation link delivers to the server.
	serverArrive := HandlerFunc(func(p *Packet) {
		if p.Class != ClassGaming {
			return
		}
		d := s.engine.Now() - p.Sent
		s.res.Up.Add(d)
		cli := int(p.Flow.Src.ID)
		s.upByCli[cli] = append(s.upByCli[cli], d)
		s.capture(p)
	})
	var err error
	s.aggUp, err = NewLink(s.engine, "agg-up", cfg.AggRate, cfg.AggProp, newSched(), serverArrive)
	if err != nil {
		return nil, err
	}

	// Client side: per-gamer downstream access links deliver to clients.
	s.downAccess = make([]*Link, cfg.Gamers)
	for c := 0; c < cfg.Gamers; c++ {
		cli := c
		arrive := HandlerFunc(func(p *Packet) {
			d := s.engine.Now() - p.Sent
			s.res.Down.Add(d)
			s.dnByCli[cli] = append(s.dnByCli[cli], d)
			s.capture(p)
		})
		s.downAccess[c], err = NewLink(s.engine, fmt.Sprintf("down-%d", c), cfg.DownRate, cfg.AccessProp, &FIFO{}, arrive)
		if err != nil {
			return nil, err
		}
	}

	// Downstream aggregation link demuxes to access links, with optional
	// jitter injection (the [23] experiment) and elastic sink.
	demux := HandlerFunc(func(p *Packet) {
		if p.Class == ClassElastic {
			s.res.Elastic.Add(s.engine.Now() - p.Sent)
			return
		}
		cli := int(p.Flow.Dst.ID)
		if cfg.DownJitter != nil {
			j := cfg.DownJitter.Sample(s.rng)
			if j < 0 {
				j = 0
			}
			s.engine.Schedule(j, func() { s.downAccess[cli].Send(p) })
			return
		}
		s.downAccess[cli].Send(p)
	})
	s.aggDown, err = NewLink(s.engine, "agg-down", cfg.AggRate, cfg.AggProp, newSched(), demux)
	if err != nil {
		return nil, err
	}

	// Upstream access links feed the aggregation link.
	s.upAccess = make([]*Link, cfg.Gamers)
	forward := HandlerFunc(func(p *Packet) { s.aggUp.Send(p) })
	for c := 0; c < cfg.Gamers; c++ {
		s.upAccess[c], err = NewLink(s.engine, fmt.Sprintf("up-%d", c), cfg.UpRate, cfg.AccessProp, &FIFO{}, forward)
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// capture appends an arrival record when capturing is on.
func (s *Scenario) capture(p *Packet) {
	if s.res.Trace == nil {
		return
	}
	s.res.Trace.Append(trace.Record{
		Time:  s.engine.Now(),
		Size:  p.Size,
		Flow:  p.Flow,
		Burst: p.Burst,
	})
}

// Run simulates for the given duration and returns the measurements.
func (s *Scenario) Run(duration float64) (*Results, error) {
	if !(duration > 0) {
		return nil, fmt.Errorf("%w: duration %g", ErrBadConfig, duration)
	}
	cfg := s.cfg

	// Client update loops with random initial phases (§2.3.1).
	for c := 0; c < cfg.Gamers; c++ {
		cli := c
		var emit func()
		emit = func() {
			size := int(cfg.ClientSize.Sample(s.rng) + 0.5)
			if size < 1 {
				size = 1
			}
			s.upAccess[cli].Send(&Packet{
				Size:  size,
				Flow:  trace.Flow{Src: trace.Client(cli), Dst: trace.Server()},
				Class: ClassGaming,
				Burst: -1,
				Sent:  s.engine.Now(),
			})
			iat := cfg.ClientIAT.Sample(s.rng)
			if iat <= 0 {
				iat = 1e-6
			}
			s.engine.Schedule(iat, emit)
		}
		s.engine.Schedule(s.rng.Float64()*cfg.ClientIAT.Mean(), emit)
	}

	// Server burst loops: one per game server over its own client set, each
	// with an independent random phase (the §3.2 multi-server
	// superposition; with Servers=1 the phase is 0 so the single-server
	// scenario keeps a deterministic tick origin).
	for srv := 0; srv < cfg.Servers; srv++ {
		var clients []int
		for c := srv; c < cfg.Gamers; c += cfg.Servers {
			clients = append(clients, c)
		}
		serverEP := trace.Endpoint{Kind: trace.KindServer, ID: uint16(srv)}
		order := append([]int(nil), clients...)
		var tick func()
		tick = func() {
			sizes := s.burstSizes(len(order))
			if cfg.ShuffleBurst {
				s.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			}
			for i, c := range order {
				s.aggDown.Send(&Packet{
					Size:  sizes[i],
					Flow:  trace.Flow{Src: serverEP, Dst: trace.Client(c)},
					Class: ClassGaming,
					Burst: s.burstNo,
					Sent:  s.engine.Now(),
				})
			}
			s.burstNo++
			iat := cfg.BurstIAT.Sample(s.rng)
			if iat <= 0 {
				iat = 1e-6
			}
			s.engine.Schedule(iat, tick)
		}
		phase := 0.0
		if cfg.Servers > 1 {
			phase = s.rng.Float64() * cfg.BurstIAT.Mean()
		}
		s.engine.Schedule(phase, tick)
	}

	// Background elastic Poisson source into the downstream direction.
	if bg := cfg.Background; bg != nil {
		if !(bg.Rate > 0) || bg.PacketSize < 1 {
			return nil, fmt.Errorf("%w: background %+v", ErrBadConfig, *bg)
		}
		mean := 8 * float64(bg.PacketSize) / bg.Rate
		var emit func()
		emit = func() {
			s.aggDown.Send(&Packet{
				Size:  bg.PacketSize,
				Flow:  trace.Flow{Src: trace.Endpoint{Kind: trace.KindBackground}, Dst: trace.Endpoint{Kind: trace.KindBackground, ID: 1}},
				Class: ClassElastic,
				Burst: -1,
				Sent:  s.engine.Now(),
			})
			s.engine.Schedule(s.rng.ExpFloat64()*mean, emit)
		}
		s.engine.Schedule(s.rng.ExpFloat64()*mean, emit)
	}

	s.engine.Run(duration)

	// Pair upstream and downstream delays per client, in sequence order, to
	// form ping samples (§1's RTT definition: the two one-way delays).
	for c := 0; c < cfg.Gamers; c++ {
		n := min(len(s.upByCli[c]), len(s.dnByCli[c]))
		for i := 0; i < n; i++ {
			s.res.RTT.Add(s.upByCli[c][i] + s.dnByCli[c][i])
		}
	}
	s.res.Events = s.engine.Processed
	s.res.Drops = s.dropCount()
	if s.res.Trace != nil {
		s.res.Trace.SortByTime()
	}
	return s.res, nil
}

// burstSizes draws the packet sizes of one tick serving n clients.
func (s *Scenario) burstSizes(n int) []int {
	cfg := s.cfg
	sizes := make([]int, n)
	if cfg.BurstTotal != nil {
		total := cfg.BurstTotal.Sample(s.rng)
		per := int(total/float64(n) + 0.5)
		if per < 1 {
			per = 1
		}
		for i := range sizes {
			sizes[i] = per
		}
		return sizes
	}
	level := 1.0
	if cfg.BurstLevel != nil {
		level = cfg.BurstLevel.Sample(s.rng)
		if level <= 0 {
			level = 0.01
		}
	}
	for i := range sizes {
		sz := int(level*cfg.ServerSize.Sample(s.rng) + 0.5)
		if sz < 1 {
			sz = 1
		}
		sizes[i] = sz
	}
	return sizes
}

// dropCount sums scheduler drops across the aggregation links.
func (s *Scenario) dropCount() int {
	count := func(sc Scheduler) int {
		switch v := sc.(type) {
		case *FIFO:
			return v.Drops
		case *HoLPriority:
			return v.Drops
		case *WFQ:
			return v.Drops
		default:
			return 0
		}
	}
	return count(s.aggUp.Sched) + count(s.aggDown.Sched)
}
