package queueing

import (
	"math/rand/v2"

	"fpsping/internal/dist"
)

// erlangSampler bundles the random draws the Lindley validators need.
type erlangSampler struct {
	rng *rand.Rand
	erl dist.Erlang
}

func newErlangSampler(k int, beta float64, seed uint64) *erlangSampler {
	e, err := dist.NewErlang(k, beta)
	if err != nil {
		panic(err) // callers validate k/beta before reaching here
	}
	return &erlangSampler{rng: dist.NewRNG(seed), erl: e}
}

// service draws one Erlang(K, beta) service time.
func (s *erlangSampler) service() float64 { return s.erl.Sample(s.rng) }

// interarrival draws one exponential inter-arrival at the given rate.
func (s *erlangSampler) interarrival(lambda float64) float64 {
	return s.rng.ExpFloat64() / lambda
}
