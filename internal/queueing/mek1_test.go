package queueing

import (
	"errors"
	"math"
	"math/cmplx"
	"testing"

	"fpsping/internal/xmath"
)

func TestMEK1Validation(t *testing.T) {
	if _, err := NewMEK1(0, 2, 1); err == nil {
		t.Error("accepted lambda=0")
	}
	if _, err := NewMEK1(1, 0, 1); err == nil {
		t.Error("accepted K=0")
	}
	if _, err := NewMEK1(1, 2, 1); !errors.Is(err, ErrUnstable) {
		t.Error("accepted rho=2")
	}
	q, err := NewMEK1(10, 9, 150) // rho = 0.6
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q.Load()-0.6) > 1e-12 {
		t.Errorf("load = %v", q.Load())
	}
}

func TestMEK1ReducesToMM1(t *testing.T) {
	// K=1 is M/M/1: P(W > x) = rho e^{-(mu-lambda)x}.
	lambda, mu := 3.0, 5.0
	q, err := NewMEK1(lambda, 1, mu)
	if err != nil {
		t.Fatal(err)
	}
	m, err := q.WaitMix()
	if err != nil {
		t.Fatal(err)
	}
	rho := lambda / mu
	for _, x := range []float64{0, 0.3, 1, 3} {
		want := rho * math.Exp(-(mu-lambda)*x)
		if got := m.Tail(x); math.Abs(got-want) > 1e-9 {
			t.Errorf("x=%v: %v want %v", x, got, want)
		}
	}
	// Mean wait matches PK.
	if math.Abs(m.Mean()-q.MeanWait()) > 1e-9 {
		t.Errorf("mean %v vs PK %v", m.Mean(), q.MeanWait())
	}
}

func TestMEK1PolesSolveDenominator(t *testing.T) {
	for _, k := range []int{2, 5, 9, 20} {
		for _, rho := range []float64{0.3, 0.6, 0.9} {
			beta := 150.0
			lambda := rho * beta / float64(k)
			q, err := NewMEK1(lambda, k, beta)
			if err != nil {
				t.Fatal(err)
			}
			poles, err := q.Poles()
			if err != nil {
				t.Fatalf("K=%d rho=%v: %v", k, rho, err)
			}
			if len(poles) != k {
				t.Fatalf("K=%d: %d poles", k, len(poles))
			}
			for _, p := range poles {
				// Verify the defining identity in scaled coordinates,
				// where all quantities are O(1): with z = p/beta and
				// a = lambda/beta, (z+a)(1-z)^K = a.
				z := p / complex(beta, 0)
				a := complex(lambda/beta, 0)
				lhs := (z + a) * cmplx.Pow(1-z, complex(float64(k), 0))
				if cmplx.Abs(lhs-a) > 1e-9 {
					t.Errorf("K=%d rho=%v: pole %v residual %v", k, rho, p, cmplx.Abs(lhs-a))
				}
			}
		}
	}
}

func TestMEK1WaitMixAgainstLindley(t *testing.T) {
	cases := []struct {
		k   int
		rho float64
	}{{2, 0.5}, {9, 0.6}, {9, 0.85}, {20, 0.7}}
	for _, c := range cases {
		beta := 300.0
		lambda := c.rho * beta / float64(c.k)
		q, err := NewMEK1(lambda, c.k, beta)
		if err != nil {
			t.Fatal(err)
		}
		m, err := q.WaitMix()
		if err != nil {
			t.Fatalf("K=%d rho=%v: %v", c.k, c.rho, err)
		}
		mean := q.MeanWait()
		probes := []float64{mean / 2, mean, 2 * mean, 4 * mean}
		const n = 1_000_000
		sim, err := SimulateMEK1(q, n, uint64(13*c.k), probes)
		if err != nil {
			t.Fatal(err)
		}
		autocorr := 1 + 2/(1-c.rho)
		for i, x := range probes {
			want := m.Tail(x)
			got := sim.TailAt(i)
			tol := autocorr * mcTol(want, n, 6)
			if math.Abs(got-want) > tol {
				t.Errorf("K=%d rho=%v P(W>%v): analytic %v vs sim %v (tol %v)",
					c.k, c.rho, x, want, got, tol)
			}
		}
		if simMean := sim.Summary.Mean(); math.Abs(simMean-mean) > 0.05*mean {
			t.Errorf("K=%d rho=%v mean: %v vs PK %v", c.k, c.rho, simMean, mean)
		}
	}
}

func TestMEK1VersusDEK1TailOrdering(t *testing.T) {
	// Same service law and load: Poisson arrivals (M/E_K/1) are burstier
	// than the deterministic clock (D/E_K/1), so the M-side waiting tail
	// must dominate.
	k, rho, T := 9, 0.6, 0.060
	dq, err := NewDEK1(k, rho*T, T)
	if err != nil {
		t.Fatal(err)
	}
	mq, err := NewMEK1(1/T, k, float64(k)/(rho*T))
	if err != nil {
		t.Fatal(err)
	}
	dm, err := dq.WaitMix()
	if err != nil {
		t.Fatal(err)
	}
	mm, err := mq.WaitMix()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dq.Load()-mq.Load()) > 1e-12 {
		t.Fatalf("loads differ: %v vs %v", dq.Load(), mq.Load())
	}
	for _, x := range []float64{0.01, 0.03, 0.06, 0.12} {
		if mm.Tail(x) < dm.Tail(x) {
			t.Errorf("x=%v: M/E_K/1 tail %v below D/E_K/1 %v", x, mm.Tail(x), dm.Tail(x))
		}
	}
}

func TestPolyRootsKnownPolynomials(t *testing.T) {
	// (z-1)(z-2)(z-3) = z^3 - 6z^2 + 11z - 6.
	roots, err := xmath.PolyRoots([]complex128{-6, 11, -6, 1})
	if err != nil {
		t.Fatal(err)
	}
	found := map[int]bool{}
	for _, r := range roots {
		for _, want := range []float64{1, 2, 3} {
			if cmplx.Abs(r-complex(want, 0)) < 1e-8 {
				found[int(want)] = true
			}
		}
	}
	if len(found) != 3 {
		t.Errorf("roots %v", roots)
	}
	// z^2 + 1 = 0: conjugate pair.
	roots, err = xmath.PolyRoots([]complex128{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(roots[0]*roots[1]-complex(1, 0)) > 1e-9 {
		t.Errorf("product of roots %v", roots[0]*roots[1])
	}
	if _, err := xmath.PolyRoots([]complex128{5}); err == nil {
		t.Error("accepted degree 0")
	}
}

func BenchmarkMEK1WaitMix(b *testing.B) {
	q, err := NewMEK1(10, 9, 150)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := q.WaitMix(); err != nil {
			b.Fatal(err)
		}
	}
}
