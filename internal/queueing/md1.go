// Package queueing implements the queueing models of the paper's §3: the
// upstream M/D/1 and M/G/1 queue (with the N*D/D/1 large-deviations
// estimates it is justified from, eqs. 2-12), and the downstream D/E_K/1
// queue solved exactly through its moment generating function (§3.2,
// appendices B-D), plus Lindley-recursion simulators used to validate every
// analytic result.
//
// Conventions: times are in seconds, rates in events (or bits) per second;
// load rho must be < 1 for every stationary quantity.
package queueing

import (
	"errors"
	"fmt"
	"math"

	"fpsping/internal/mgf"
	"fpsping/internal/xmath"
)

// ErrUnstable reports a queue with offered load >= 1.
var ErrUnstable = errors.New("queueing: load >= 1, queue unstable")

// ErrBadParam reports an invalid queue parameter.
var ErrBadParam = errors.New("queueing: invalid parameter")

// MD1 is the M/D/1 queue: Poisson arrivals at rate Lambda (1/s), each
// requiring a deterministic service time S (s). The paper's §3.1 shows the
// upstream aggregate of many periodic gaming sources converges to this model.
type MD1 struct {
	Lambda float64 // arrival rate, 1/s
	S      float64 // deterministic service time, s
}

// NewMD1 validates the parameters and stability.
func NewMD1(lambda, s float64) (MD1, error) {
	if !(lambda > 0) || !(s > 0) {
		return MD1{}, fmt.Errorf("%w: lambda=%g s=%g", ErrBadParam, lambda, s)
	}
	q := MD1{Lambda: lambda, S: s}
	if q.Load() >= 1 {
		return MD1{}, fmt.Errorf("%w: rho=%g", ErrUnstable, q.Load())
	}
	return q, nil
}

// Load returns rho = lambda*S.
func (q MD1) Load() float64 { return q.Lambda * q.S }

// MeanWait returns the Pollaczek-Khinchine mean waiting time
// lambda*E[S^2]/(2(1-rho)) = rho*S/(2(1-rho)).
func (q MD1) MeanWait() float64 {
	rho := q.Load()
	return rho * q.S / (2 * (1 - rho))
}

// DominantPole returns the decay rate gamma of the waiting-time tail: the
// unique positive root of gamma = lambda*(e^{gamma*S} - 1). It is the
// "dominant pole of the exact moment generating function" of eq. (14).
func (q MD1) DominantPole() (float64, error) {
	rho := q.Load()
	f := func(g float64) float64 { return q.Lambda*(math.Exp(g*q.S)-1) - g }
	// f(0)=0 with f'(0)=rho-1<0 and f -> +inf: bracket the positive root.
	// A useful analytic starting bracket: gamma <= 2(1-rho)/(rho*S) from the
	// quadratic lower bound on exp, expand upward if needed.
	hi := 2 * (1 - rho) / (rho * q.S)
	for i := 0; i < 200 && f(hi) < 0; i++ {
		hi *= 2
	}
	lo := hi
	for i := 0; i < 200 && f(lo) > 0; i++ {
		lo /= 2
	}
	if f(lo) > 0 || f(hi) < 0 {
		return 0, fmt.Errorf("queueing: dominant pole bracket failed (rho=%g)", rho)
	}
	g, err := xmath.Brent(f, lo, hi, 1e-14*hi)
	if err != nil {
		return 0, err
	}
	return g, nil
}

// WaitMixPaper returns the paper's eq. (14) approximation of the waiting
// time MGF: Du(s) = (1-rho) + rho*gamma/(gamma-s).
func (q MD1) WaitMixPaper() (mgf.Mix, error) {
	g, err := q.DominantPole()
	if err != nil {
		return mgf.Mix{}, err
	}
	rho := q.Load()
	m := mgf.NewExponential(rho, g)
	m.Atom = 1 - rho
	return m, nil
}

// WaitMixAsymptotic returns the dominant-pole form with the exact asymptotic
// residue R = (1-rho)/(lambda*S*e^{gamma*S} - 1), so the deep tail
// P(W > x) ~ R e^{-gamma x} is exact. It is the ablation counterpart of
// WaitMixPaper (which uses the cruder residue rho).
func (q MD1) WaitMixAsymptotic() (mgf.Mix, error) {
	g, err := q.DominantPole()
	if err != nil {
		return mgf.Mix{}, err
	}
	rho := q.Load()
	r := (1 - rho) / (q.Lambda*q.S*math.Exp(g*q.S) - 1)
	m := mgf.NewExponential(r, g)
	m.Atom = 1 - r
	return m, nil
}

// WaitCDFExact evaluates the classical closed-form M/D/1 virtual waiting time
// distribution (Erlang's alternating series):
//
//	P(W <= t) = (1-rho) * sum_{j=0..floor(t/S)} e^{-lambda(jS-t)} (lambda(jS-t))^j / j!
//
// with lambda(jS-t) <= 0 in every term. The terms grow to ~e^{lambda*t}
// before cancelling, so the series loses about lambda*t*log10(e) digits; it
// is evaluated only while lambda*t <= 30 (then the result keeps >= 2 digits
// beyond any tail level down to 1e-12). Past that point the dominant-pole
// asymptote is used, which is accurate to well under a percent there.
func (q MD1) WaitCDFExact(t float64) float64 {
	if t < 0 {
		return 0
	}
	rho := q.Load()
	if q.Lambda*t > 30 {
		m, err := q.WaitMixAsymptotic()
		if err != nil {
			return math.NaN()
		}
		return 1 - m.Tail(t)
	}
	k := int(math.Floor(t / q.S))
	var sum xmath.KahanSum
	for j := 0; j <= k; j++ {
		u := q.Lambda * (t - float64(j)*q.S) // >= 0; term = e^u (-u)^j / j!
		var mag float64
		if j == 0 {
			mag = math.Exp(u)
		} else if u == 0 {
			mag = 0
		} else {
			lg, _ := math.Lgamma(float64(j + 1))
			mag = math.Exp(u + float64(j)*math.Log(u) - lg)
			if j%2 == 1 {
				mag = -mag
			}
		}
		sum.Add(mag)
	}
	v := (1 - rho) * sum.Sum()
	return xmath.Clamp(v, 0, 1)
}

// WaitTailExact is 1 - WaitCDFExact.
func (q MD1) WaitTailExact(t float64) float64 { return 1 - q.WaitCDFExact(t) }

// ServiceSpec describes one service-time class for the M/G/1 queue: a
// deterministic transmission time (packet size over link rate) and the
// fraction of arrivals in the class. Eq. (13) introduces exactly this
// two-class case for mixed gamer populations.
type ServiceSpec struct {
	S      float64 // deterministic service time of the class, s
	Weight float64 // fraction of arrivals, must sum to 1 across classes
}

// MG1 is an M/G/1 queue whose service law is a finite mixture of
// deterministic times (the "flip a coin per arrival" model under eq. 13).
type MG1 struct {
	Lambda  float64
	Classes []ServiceSpec
}

// NewMG1 validates rates, weights and stability.
func NewMG1(lambda float64, classes []ServiceSpec) (MG1, error) {
	if !(lambda > 0) || len(classes) == 0 {
		return MG1{}, fmt.Errorf("%w: lambda=%g classes=%d", ErrBadParam, lambda, len(classes))
	}
	var wsum float64
	for _, c := range classes {
		if !(c.S > 0) || !(c.Weight > 0) {
			return MG1{}, fmt.Errorf("%w: class %+v", ErrBadParam, c)
		}
		wsum += c.Weight
	}
	if math.Abs(wsum-1) > 1e-9 {
		return MG1{}, fmt.Errorf("%w: class weights sum to %g", ErrBadParam, wsum)
	}
	q := MG1{Lambda: lambda, Classes: classes}
	if q.Load() >= 1 {
		return MG1{}, fmt.Errorf("%w: rho=%g", ErrUnstable, q.Load())
	}
	return q, nil
}

// MeanService returns E[S].
func (q MG1) MeanService() float64 {
	var m float64
	for _, c := range q.Classes {
		m += c.Weight * c.S
	}
	return m
}

// SecondMomentService returns E[S^2].
func (q MG1) SecondMomentService() float64 {
	var m float64
	for _, c := range q.Classes {
		m += c.Weight * c.S * c.S
	}
	return m
}

// Load returns rho = lambda*E[S].
func (q MG1) Load() float64 { return q.Lambda * q.MeanService() }

// MeanWait returns the Pollaczek-Khinchine mean lambda*E[S^2]/(2(1-rho)).
func (q MG1) MeanWait() float64 {
	return q.Lambda * q.SecondMomentService() / (2 * (1 - q.Load()))
}

// serviceMGF evaluates E[e^{sS}] for real s.
func (q MG1) serviceMGF(s float64) float64 {
	var v float64
	for _, c := range q.Classes {
		v += c.Weight * math.Exp(s*c.S)
	}
	return v
}

// DominantPole returns the positive root gamma of
// gamma = lambda*(B(gamma) - 1), where B is the service MGF.
func (q MG1) DominantPole() (float64, error) {
	f := func(g float64) float64 { return q.Lambda*(q.serviceMGF(g)-1) - g }
	rho := q.Load()
	hi := 2 * (1 - rho) / (rho * q.MeanService())
	for i := 0; i < 200 && f(hi) < 0; i++ {
		hi *= 2
	}
	lo := hi
	for i := 0; i < 200 && f(lo) > 0; i++ {
		lo /= 2
	}
	if f(lo) > 0 || f(hi) < 0 {
		return 0, fmt.Errorf("queueing: MG1 dominant pole bracket failed (rho=%g)", rho)
	}
	return xmath.Brent(f, lo, hi, 1e-14*hi)
}

// WaitMixPaper returns eq. (14) for the M/G/1 queue:
// (1-rho) + rho*gamma/(gamma-s).
func (q MG1) WaitMixPaper() (mgf.Mix, error) {
	g, err := q.DominantPole()
	if err != nil {
		return mgf.Mix{}, err
	}
	rho := q.Load()
	m := mgf.NewExponential(rho, g)
	m.Atom = 1 - rho
	return m, nil
}
