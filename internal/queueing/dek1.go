package queueing

import (
	"fmt"
	"math"
	"math/cmplx"

	"fpsping/internal/mgf"
)

// DEK1 is the D/E_K/1 queue of §3.2: bursts arrive every T seconds and bring
// an Erlang(K, Beta)-distributed amount of work (in seconds); the paper
// derives the waiting-time MGF exactly (appendices B-D). In the FPS setting a
// burst is the server's per-tick bundle of one packet per gamer, and the
// work is its transmission time on the aggregation link.
type DEK1 struct {
	K         int     // Erlang order of the burst work
	MeanBurst float64 // mean burst work b = K/Beta, s
	T         float64 // burst inter-arrival time, s
}

// NewDEK1 validates parameters and stability (MeanBurst < T).
func NewDEK1(k int, meanBurst, t float64) (DEK1, error) {
	if k < 1 || !(meanBurst > 0) || !(t > 0) {
		return DEK1{}, fmt.Errorf("%w: K=%d meanBurst=%g T=%g", ErrBadParam, k, meanBurst, t)
	}
	q := DEK1{K: k, MeanBurst: meanBurst, T: t}
	if q.Load() >= 1 {
		return DEK1{}, fmt.Errorf("%w: rho=%g", ErrUnstable, q.Load())
	}
	return q, nil
}

// String summarizes the queue.
func (q DEK1) String() string {
	return fmt.Sprintf("D/E%d/1(rho=%.3g)", q.K, q.Load())
}

// Load returns rho = MeanBurst/T.
func (q DEK1) Load() float64 { return q.MeanBurst / q.T }

// Beta returns the Erlang rate parameter beta = K/MeanBurst (1/s).
func (q DEK1) Beta() float64 { return float64(q.K) / q.MeanBurst }

// Zetas returns the K roots zeta_k (k = 1..K) of the paper's eq. (26):
//
//	z = exp((z-1)/rho + 2*pi*i*(k-1)/K),  Re z < 1,
//
// found by the fixed-point iteration Appendix C proves convergent, polished
// with a complex Newton step. zeta_1 is real in (0,1); the remaining roots
// come in conjugate pairs.
func (q DEK1) Zetas() ([]complex128, error) {
	rho := q.Load()
	out := make([]complex128, q.K)
	for k := 1; k <= q.K; k++ {
		phase := complex(0, 2*math.Pi*float64(k-1)/float64(q.K))
		g := func(z complex128) complex128 {
			return cmplx.Exp((z-1)/complex(rho, 0) + phase)
		}
		z := complex(0, 0)
		for i := 0; i < 20000; i++ {
			nz := g(z)
			if cmplx.Abs(nz-z) < 1e-15 {
				z = nz
				break
			}
			z = nz
		}
		// Newton polish on h(z) = z - g(z), h'(z) = 1 - g(z)/rho.
		for i := 0; i < 50; i++ {
			gz := g(z)
			h := z - gz
			dh := 1 - gz/complex(rho, 0)
			if dh == 0 {
				break
			}
			step := h / dh
			z -= step
			if cmplx.Abs(step) < 1e-16 {
				break
			}
		}
		if res := cmplx.Abs(z - g(z)); res > 1e-10 {
			return nil, fmt.Errorf("queueing: zeta_%d residual %g (rho=%g, K=%d)", k, res, rho, q.K)
		}
		if real(z) >= 1 {
			return nil, fmt.Errorf("queueing: zeta_%d = %v outside Re z < 1", k, z)
		}
		out[k-1] = z
	}
	return out, nil
}

// Poles returns the K poles alpha_k = beta*(1 - zeta_k) of the waiting-time
// MGF (eq. 25). All have positive real part for a stable queue.
func (q DEK1) Poles() ([]complex128, error) {
	zs, err := q.Zetas()
	if err != nil {
		return nil, err
	}
	beta := complex(q.Beta(), 0)
	out := make([]complex128, len(zs))
	for i, z := range zs {
		out[i] = beta * (1 - z)
	}
	return out, nil
}

// Weights returns the residues a_j of eq. (27):
//
//	a_j = zeta_j^K * prod_{k != j} (zeta_k - 1)/(zeta_k - zeta_j),
//
// the solution of the Vandermonde system sum_j a_j zeta_j^{-k} = 1
// (k = 1..K) from Appendix D.
func (q DEK1) Weights() ([]complex128, error) {
	zs, err := q.Zetas()
	if err != nil {
		return nil, err
	}
	return weightsFromZetas(zs), nil
}

func weightsFromZetas(zs []complex128) []complex128 {
	k := len(zs)
	out := make([]complex128, k)
	for j := 0; j < k; j++ {
		a := cmplx.Pow(zs[j], complex(float64(k), 0))
		for i := 0; i < k; i++ {
			if i == j {
				continue
			}
			a *= (zs[i] - 1) / (zs[i] - zs[j])
		}
		out[j] = a
	}
	return out
}

// WaitMix returns the exact burst waiting-time law of eq. (18):
// W(s) = (1 - sum a_j) + sum a_j * alpha_j/(alpha_j - s).
// Its atom is the probability an arriving burst finds the queue empty.
//
// At very low load the roots zeta_k underflow toward zero (|zeta_1| =
// e^{-(1-zeta_1)/rho}), the poles become numerically indistinguishable and
// the waiting probability P(W>0) <= P(burst > T) is below ~1e-14; the exact
// unit atom is returned in that regime.
func (q DEK1) WaitMix() (mgf.Mix, error) {
	zs, err := q.Zetas()
	if err != nil {
		return mgf.Mix{}, err
	}
	// |zeta_1| bounds every |zeta_k| (Appendix C). Below the threshold the
	// continuous part is smaller than any tail of interest by orders of
	// magnitude, and the weight products are no longer computable in
	// float64.
	if cmplx.Abs(zs[0]) < 1e-8 {
		return mgf.NewAtom(1), nil
	}
	ws := weightsFromZetas(zs)
	beta := complex(q.Beta(), 0)
	var m mgf.Mix
	var mass complex128
	for j, z := range zs {
		pole := beta * (1 - z)
		m.AddTerm(pole, []complex128{ws[j]})
		mass += ws[j]
	}
	m.Atom = 1 - real(mass)
	if err := m.Validate(); err != nil {
		return mgf.Mix{}, fmt.Errorf("D/E%d/1 wait mix (rho=%g): %w", q.K, q.Load(), err)
	}
	return m, nil
}

// BurstWaitTail returns P(burst waiting time > x).
func (q DEK1) BurstWaitTail(x float64) (float64, error) {
	m, err := q.WaitMix()
	if err != nil {
		return 0, err
	}
	return m.Tail(x), nil
}

// PositionMixUniform returns the packet-position delay law of eq. (34): for
// a tagged packet uniformly placed in the burst,
//
//	P(s) = (1/(K-1)) * sum_{m=1..K-1} (beta/(beta-s))^m,
//
// a uniform mixture of Erlang(m, beta) delays. The paper restricts this case
// to K > 1 (K = 1 has a branch point, eq. 33).
func (q DEK1) PositionMixUniform() (mgf.Mix, error) {
	if q.K < 2 {
		return mgf.Mix{}, fmt.Errorf("%w: uniform position law needs K >= 2 (got %d); see eq. (33)", ErrBadParam, q.K)
	}
	coef := make([]complex128, q.K-1)
	w := complex(1/float64(q.K-1), 0)
	for i := range coef {
		coef[i] = w
	}
	var m mgf.Mix
	m.AddTerm(complex(q.Beta(), 0), coef)
	if err := m.Validate(); err != nil {
		return mgf.Mix{}, err
	}
	return m, nil
}

// PositionMixSpot returns the packet-position delay law of eq. (32) for a
// packet always at relative position theta in (0,1] of its burst:
// P(s) = (beta/(beta - s*theta))^K, i.e. Erlang(K, beta/theta). theta = 0
// (first packet of the burst) gives a unit atom.
func (q DEK1) PositionMixSpot(theta float64) (mgf.Mix, error) {
	if theta < 0 || theta > 1 {
		return mgf.Mix{}, fmt.Errorf("%w: theta=%g outside [0,1]", ErrBadParam, theta)
	}
	if theta == 0 {
		return mgf.NewAtom(1), nil
	}
	m := mgf.NewErlang(1, q.K, q.Beta()/theta)
	if err := m.Validate(); err != nil {
		return mgf.Mix{}, err
	}
	return m, nil
}

// PacketDelayMix returns the law of the total downstream queueing delay of a
// uniformly placed packet: burst wait plus position delay (the two are
// independent, eq. 29: Dd(s) = W(s) * P(s)).
func (q DEK1) PacketDelayMix() (mgf.Mix, error) {
	w, err := q.WaitMix()
	if err != nil {
		return mgf.Mix{}, err
	}
	p, err := q.PositionMixUniform()
	if err != nil {
		return mgf.Mix{}, err
	}
	m := mgf.Mul(w, p)
	if err := m.Validate(); err != nil {
		return mgf.Mix{}, fmt.Errorf("D/E%d/1 packet delay mix: %w", q.K, err)
	}
	return m, nil
}

// MeanWait returns the exact mean burst waiting time from the MGF.
func (q DEK1) MeanWait() (float64, error) {
	m, err := q.WaitMix()
	if err != nil {
		return 0, err
	}
	return m.Mean(), nil
}
