package queueing

import (
	"fmt"
	"math"
	"math/cmplx"

	"fpsping/internal/mgf"
	"fpsping/internal/xmath"
)

// DEK1 is the D/E_K/1 queue of §3.2: bursts arrive every T seconds and bring
// an Erlang(K, Beta)-distributed amount of work (in seconds); the paper
// derives the waiting-time MGF exactly (appendices B-D). In the FPS setting a
// burst is the server's per-tick bundle of one packet per gamer, and the
// work is its transmission time on the aggregation link.
type DEK1 struct {
	K         int     // Erlang order of the burst work
	MeanBurst float64 // mean burst work b = K/Beta, s
	T         float64 // burst inter-arrival time, s
}

// NewDEK1 validates parameters and stability (MeanBurst < T).
func NewDEK1(k int, meanBurst, t float64) (DEK1, error) {
	if k < 1 || !(meanBurst > 0) || !(t > 0) {
		return DEK1{}, fmt.Errorf("%w: K=%d meanBurst=%g T=%g", ErrBadParam, k, meanBurst, t)
	}
	q := DEK1{K: k, MeanBurst: meanBurst, T: t}
	if q.Load() >= 1 {
		return DEK1{}, fmt.Errorf("%w: rho=%g", ErrUnstable, q.Load())
	}
	return q, nil
}

// String summarizes the queue.
func (q DEK1) String() string {
	return fmt.Sprintf("D/E%d/1(rho=%.3g)", q.K, q.Load())
}

// Load returns rho = MeanBurst/T.
func (q DEK1) Load() float64 { return q.MeanBurst / q.T }

// Beta returns the Erlang rate parameter beta = K/MeanBurst (1/s).
func (q DEK1) Beta() float64 { return float64(q.K) / q.MeanBurst }

// rootMap returns the contraction g_k of the paper's eq. (26) for root index
// k (1-based): g(z) = exp((z-1)/rho + 2*pi*i*(k-1)/K). Roots solve z = g(z).
func (q DEK1) rootMap(k int) func(complex128) complex128 {
	rho := q.Load()
	phase := complex(0, 2*math.Pi*float64(k-1)/float64(q.K))
	return func(z complex128) complex128 {
		return cmplx.Exp((z-1)/complex(rho, 0) + phase)
	}
}

// zetaResidualTol is the acceptance threshold on |z - g_k(z)|: a converged
// root sits at machine precision (~1e-16), so 1e-10 flags genuine
// misconvergence without tripping on rounding.
const zetaResidualTol = 1e-10

// polishZeta runs the Newton polish on h(z) = z - g(z), h'(z) = 1 - g(z)/rho
// from the given start. The iterates are a deterministic function of
// (start, rho, k), which is what makes seed canonicalization (see
// xmath.SnapSeed) produce path-independent bits.
func (q DEK1) polishZeta(g func(complex128) complex128, z complex128) complex128 {
	rho := q.Load()
	for i := 0; i < 50; i++ {
		gz := g(z)
		h := z - gz
		dh := 1 - gz/complex(rho, 0)
		if dh == 0 {
			break
		}
		step := h / dh
		z -= step
		if cmplx.Abs(step) < 1e-16 {
			break
		}
	}
	return z
}

// finishZeta applies the canonical final stage shared by the cold and warm
// solvers — polish, snap the converged value to the canonical seed grid,
// re-polish from the snapped seed — and validates the result. Both paths
// reach the same snapped seed (their pre-snap roots agree far below the grid
// spacing), so the returned bits do not depend on how the iteration was
// seeded. The residual and half-plane checks hold the result to the same
// standard as a cold solve.
func (q DEK1) finishZeta(k int, z complex128) (complex128, error) {
	g := q.rootMap(k)
	z = q.polishZeta(g, z)
	z = q.polishZeta(g, xmath.SnapSeedC(z))
	// Branches with a mathematically real root — k = 1 (phase 0) and, for
	// even K, k = K/2+1 (phase pi, the negative real axis) — pick up
	// imaginary rounding dust of size ~eps*|z| from sin(pi) inside cmplx.Exp
	// that Newton cannot contract below its stopping threshold. Flush it so
	// the stored root is exactly real, as the conjugate symmetry of eq. (26)
	// requires; the residual check below still judges the flushed value.
	if k == 1 || 2*(k-1) == q.K {
		z = complex(real(z), 0)
	}
	// Negated-form comparisons so a NaN residual or component (a seed the
	// polish diverged from) fails validation rather than slipping past it.
	if res := cmplx.Abs(z - g(z)); !(res <= zetaResidualTol) {
		return 0, fmt.Errorf("queueing: zeta_%d residual %g (rho=%g, K=%d)", k, res, q.Load(), q.K)
	}
	if !(real(z) < 1) {
		return 0, fmt.Errorf("queueing: zeta_%d = %v outside Re z < 1", k, z)
	}
	return z, nil
}

// Zetas returns the K roots zeta_k (k = 1..K) of the paper's eq. (26):
//
//	z = exp((z-1)/rho + 2*pi*i*(k-1)/K),  Re z < 1,
//
// found by the fixed-point iteration Appendix C proves convergent, polished
// with a complex Newton step. zeta_1 is real in (0,1); the remaining roots
// come in conjugate pairs. One-shot form of Solve(): the returned slice is
// the caller's to keep.
func (q DEK1) Zetas() ([]complex128, error) {
	sol, err := q.Solve()
	if err != nil {
		return nil, err
	}
	return append([]complex128(nil), sol.zs...), nil
}

// DEK1Solution is a solved set of eq.-(26) roots, the expensive part of the
// D/E_K/1 waiting-time law. Root k lives at index k-1 — the index, not the
// value, identifies which branch of eq. (26) a root solves — which is what
// lets a neighbouring load's solution seed this one (SolveFrom) and keeps
// the downstream term order canonical. The solution is immutable once built.
type DEK1Solution struct {
	q  DEK1
	zs []complex128
}

// Queue returns the queue the solution solves.
func (sol *DEK1Solution) Queue() DEK1 { return sol.q }

// Zetas returns a copy of the solved roots, zeta_k at index k-1.
func (sol *DEK1Solution) Zetas() []complex128 {
	return append([]complex128(nil), sol.zs...)
}

// Solve finds the K roots cold: the Appendix-C fixed-point iteration from
// zero, then the canonical polish stage (see finishZeta). Poles, Weights and
// WaitMix on the solution are pure arithmetic over the stored roots.
func (q DEK1) Solve() (*DEK1Solution, error) {
	zs := make([]complex128, q.K)
	for k := 1; k <= q.K; k++ {
		g := q.rootMap(k)
		z := complex(0, 0)
		for i := 0; i < 20000; i++ {
			nz := g(z)
			if cmplx.Abs(nz-z) < 1e-15 {
				z = nz
				break
			}
			z = nz
		}
		var err error
		if zs[k-1], err = q.finishZeta(k, z); err != nil {
			return nil, err
		}
	}
	return &DEK1Solution{q: q, zs: zs}, nil
}

// SolveFrom is the continuation solver: it seeds each root's Newton
// iteration with the neighbouring solution's polished root of the same index
// instead of running the cold fixed-point iteration, then applies the same
// canonical polish stage, so a warm solve returns exactly the bits of
// q.Solve(). A root that fails the residual or half-plane check, or a root
// pair the warm iteration collapsed together (the seeds straddled a Newton
// basin boundary), falls back to the cold solve automatically — continuation
// can change only the cost of a solution, never its value. prev may be nil
// or for a different K; both fall back cold.
func (q DEK1) SolveFrom(prev *DEK1Solution) (*DEK1Solution, error) {
	if prev == nil || prev.q.K != q.K || len(prev.zs) != q.K {
		return q.Solve()
	}
	zs := make([]complex128, q.K)
	for k := 1; k <= q.K; k++ {
		z, err := q.finishZeta(k, prev.zs[k-1])
		if err != nil {
			return q.Solve()
		}
		zs[k-1] = z
	}
	// Distinct-root pairing check: eq. (26) has one root per branch index, so
	// two equal entries mean a seed escaped its basin and doubled up on a
	// neighbouring branch's root.
	for i := 1; i < q.K; i++ {
		for j := 0; j < i; j++ {
			if d := cmplx.Abs(zs[i] - zs[j]); d <= 1e-12*(1+cmplx.Abs(zs[i])) {
				return q.Solve()
			}
		}
	}
	return &DEK1Solution{q: q, zs: zs}, nil
}

// Poles returns the K poles alpha_k = beta*(1 - zeta_k) of the waiting-time
// MGF (eq. 25). All have positive real part for a stable queue. One-shot
// form of Solve().Poles().
func (q DEK1) Poles() ([]complex128, error) {
	sol, err := q.Solve()
	if err != nil {
		return nil, err
	}
	return sol.Poles(), nil
}

// Poles returns the K poles alpha_k = beta*(1 - zeta_k) of eq. (25) over the
// solved roots.
func (sol *DEK1Solution) Poles() []complex128 {
	beta := complex(sol.q.Beta(), 0)
	out := make([]complex128, len(sol.zs))
	for i, z := range sol.zs {
		out[i] = beta * (1 - z)
	}
	return out
}

// Weights returns the residues a_j of eq. (27):
//
//	a_j = zeta_j^K * prod_{k != j} (zeta_k - 1)/(zeta_k - zeta_j),
//
// the solution of the Vandermonde system sum_j a_j zeta_j^{-k} = 1
// (k = 1..K) from Appendix D. One-shot form of Solve().Weights().
func (q DEK1) Weights() ([]complex128, error) {
	sol, err := q.Solve()
	if err != nil {
		return nil, err
	}
	return sol.Weights(), nil
}

// Weights returns the eq.-(27) residues over the solved roots.
func (sol *DEK1Solution) Weights() []complex128 { return weightsFromZetas(sol.zs) }

func weightsFromZetas(zs []complex128) []complex128 {
	k := len(zs)
	out := make([]complex128, k)
	for j := 0; j < k; j++ {
		a := cmplx.Pow(zs[j], complex(float64(k), 0))
		for i := 0; i < k; i++ {
			if i == j {
				continue
			}
			a *= (zs[i] - 1) / (zs[i] - zs[j])
		}
		out[j] = a
	}
	return out
}

// WaitMix returns the exact burst waiting-time law of eq. (18):
// W(s) = (1 - sum a_j) + sum a_j * alpha_j/(alpha_j - s).
// Its atom is the probability an arriving burst finds the queue empty.
//
// At very low load the roots zeta_k underflow toward zero (|zeta_1| =
// e^{-(1-zeta_1)/rho}), the poles become numerically indistinguishable and
// the waiting probability P(W>0) <= P(burst > T) is below ~1e-14; the exact
// unit atom is returned in that regime.
func (q DEK1) WaitMix() (mgf.Mix, error) {
	sol, err := q.Solve()
	if err != nil {
		return mgf.Mix{}, err
	}
	return sol.WaitMix()
}

// WaitMix builds the eq.-(18) waiting-time law over the solved roots; see
// DEK1.WaitMix for the law and the low-load unit-atom regime.
func (sol *DEK1Solution) WaitMix() (mgf.Mix, error) {
	q := sol.q
	zs := sol.zs
	// |zeta_1| bounds every |zeta_k| (Appendix C). Below the threshold the
	// continuous part is smaller than any tail of interest by orders of
	// magnitude, and the weight products are no longer computable in
	// float64.
	if cmplx.Abs(zs[0]) < 1e-8 {
		return mgf.NewAtom(1), nil
	}
	ws := weightsFromZetas(zs)
	beta := complex(q.Beta(), 0)
	var m mgf.Mix
	var mass complex128
	for j, z := range zs {
		pole := beta * (1 - z)
		m.AddTerm(pole, []complex128{ws[j]})
		mass += ws[j]
	}
	m.Atom = 1 - real(mass)
	if err := m.Validate(); err != nil {
		return mgf.Mix{}, fmt.Errorf("D/E%d/1 wait mix (rho=%g): %w", q.K, q.Load(), err)
	}
	return m, nil
}

// BurstWaitTail returns P(burst waiting time > x).
func (q DEK1) BurstWaitTail(x float64) (float64, error) {
	m, err := q.WaitMix()
	if err != nil {
		return 0, err
	}
	return m.Tail(x), nil
}

// PositionMixUniform returns the packet-position delay law of eq. (34): for
// a tagged packet uniformly placed in the burst,
//
//	P(s) = (1/(K-1)) * sum_{m=1..K-1} (beta/(beta-s))^m,
//
// a uniform mixture of Erlang(m, beta) delays. The paper restricts this case
// to K > 1 (K = 1 has a branch point, eq. 33).
func (q DEK1) PositionMixUniform() (mgf.Mix, error) {
	if q.K < 2 {
		return mgf.Mix{}, fmt.Errorf("%w: uniform position law needs K >= 2 (got %d); see eq. (33)", ErrBadParam, q.K)
	}
	coef := make([]complex128, q.K-1)
	w := complex(1/float64(q.K-1), 0)
	for i := range coef {
		coef[i] = w
	}
	var m mgf.Mix
	m.AddTerm(complex(q.Beta(), 0), coef)
	if err := m.Validate(); err != nil {
		return mgf.Mix{}, err
	}
	return m, nil
}

// PositionMixSpot returns the packet-position delay law of eq. (32) for a
// packet always at relative position theta in (0,1] of its burst:
// P(s) = (beta/(beta - s*theta))^K, i.e. Erlang(K, beta/theta). theta = 0
// (first packet of the burst) gives a unit atom.
func (q DEK1) PositionMixSpot(theta float64) (mgf.Mix, error) {
	if theta < 0 || theta > 1 {
		return mgf.Mix{}, fmt.Errorf("%w: theta=%g outside [0,1]", ErrBadParam, theta)
	}
	if theta == 0 {
		return mgf.NewAtom(1), nil
	}
	m := mgf.NewErlang(1, q.K, q.Beta()/theta)
	if err := m.Validate(); err != nil {
		return mgf.Mix{}, err
	}
	return m, nil
}

// PacketDelayMix returns the law of the total downstream queueing delay of a
// uniformly placed packet: burst wait plus position delay (the two are
// independent, eq. 29: Dd(s) = W(s) * P(s)).
func (q DEK1) PacketDelayMix() (mgf.Mix, error) {
	w, err := q.WaitMix()
	if err != nil {
		return mgf.Mix{}, err
	}
	p, err := q.PositionMixUniform()
	if err != nil {
		return mgf.Mix{}, err
	}
	m := mgf.Mul(w, p)
	if err := m.Validate(); err != nil {
		return mgf.Mix{}, fmt.Errorf("D/E%d/1 packet delay mix: %w", q.K, err)
	}
	return m, nil
}

// MeanWait returns the exact mean burst waiting time from the MGF.
func (q DEK1) MeanWait() (float64, error) {
	m, err := q.WaitMix()
	if err != nil {
		return 0, err
	}
	return m.Mean(), nil
}
