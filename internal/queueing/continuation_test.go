package queueing

import (
	"math"
	"testing"
)

// walkLoads is the load axis the continuation contract is pinned over:
// the paper's grid ascending and the same grid reversed (seeds work in
// either direction; validation, not monotonicity, guarantees correctness).
func walkLoads() [][]float64 {
	up := make([]float64, 18)
	for i := range up {
		up[i] = 0.05 + float64(i)*0.05
	}
	down := make([]float64, len(up))
	for i := range down {
		down[i] = up[len(up)-1-i]
	}
	return [][]float64{up, down}
}

// TestDEK1SolveFromBitIdenticalToSolve is the continuation contract at the
// root level: warm-starting each solve from the neighbouring load's solution
// must return exactly the bits of a cold solve, at every point of the walk,
// in both directions.
func TestDEK1SolveFromBitIdenticalToSolve(t *testing.T) {
	for _, k := range []int{2, 9, 20, 28} {
		for wi, loads := range walkLoads() {
			var prev *DEK1Solution
			for _, rho := range loads {
				q, err := NewDEK1(k, rho*0.060, 0.060)
				if err != nil {
					t.Fatal(err)
				}
				warm, err := q.SolveFrom(prev)
				if err != nil {
					t.Fatalf("K=%d walk %d rho=%v: warm: %v", k, wi, rho, err)
				}
				cold, err := q.Solve()
				if err != nil {
					t.Fatalf("K=%d walk %d rho=%v: cold: %v", k, wi, rho, err)
				}
				wz, cz := warm.Zetas(), cold.Zetas()
				for i := range wz {
					if wz[i] != cz[i] {
						t.Errorf("K=%d walk %d rho=%v root %d: warm %v != cold %v",
							k, wi, rho, i, wz[i], cz[i])
					}
				}
				prev = warm
			}
		}
	}
}

// TestDEK1SolveFromFallback pins the fallback rule: a seed set the Newton
// polish cannot rescue — or a prev of the wrong shape — must fall back to
// the cold solve and return its exact bits, never an error or a degraded
// solution.
func TestDEK1SolveFromFallback(t *testing.T) {
	q, err := NewDEK1(9, 0.030, 0.060)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := q.Solve()
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewDEK1(5, 0.030, 0.060)
	if err != nil {
		t.Fatal(err)
	}
	otherSol, err := other.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Seeds far outside every Newton basin: exp((z-1)/rho) overflows and the
	// polish walks into NaN, so every residual check fails.
	bogus := &DEK1Solution{q: q, zs: make([]complex128, q.K)}
	for i := range bogus.zs {
		bogus.zs[i] = complex(800, 0)
	}
	for name, prev := range map[string]*DEK1Solution{
		"nil":        nil,
		"wrong-K":    otherSol,
		"bad-seeds":  bogus,
		"bad-length": {q: q, zs: make([]complex128, 3)},
	} {
		warm, err := q.SolveFrom(prev)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		wz, cz := warm.Zetas(), cold.Zetas()
		for i := range wz {
			if wz[i] != cz[i] {
				t.Errorf("%s root %d: fallback %v != cold %v", name, i, wz[i], cz[i])
			}
		}
	}
}

// TestMEK1SolveFromBitIdenticalToSolve is the same contract for the M/E_K/1
// continuation: a warm solve seeded by the neighbouring arrival rate's roots
// must return exactly the bits of the cold PolyRoots factorization.
func TestMEK1SolveFromBitIdenticalToSolve(t *testing.T) {
	for _, k := range []int{2, 9, 20} {
		meanService := float64(k) / 300.0 // beta = 300
		for wi, loads := range walkLoads() {
			var prev *MEK1Solution
			for _, rho := range loads {
				q, err := NewMEK1(rho/meanService, k, 300)
				if err != nil {
					t.Fatal(err)
				}
				warm, err := q.SolveFrom(prev)
				if err != nil {
					t.Fatalf("K=%d walk %d rho=%v: warm: %v", k, wi, rho, err)
				}
				cold, err := q.Solve()
				if err != nil {
					t.Fatalf("K=%d walk %d rho=%v: cold: %v", k, wi, rho, err)
				}
				for i := range warm.zs {
					if warm.zs[i] != cold.zs[i] {
						t.Errorf("K=%d walk %d rho=%v root %d: warm %v != cold %v",
							k, wi, rho, i, warm.zs[i], cold.zs[i])
					}
				}
				prev = warm
			}
		}
	}
}

// TestMEK1SolveFromFallback pins the M/E_K/1 fallback rule for degenerate
// seed sets: NaN seeds, duplicate seeds (two seeds collapsing onto one
// root), a wrong-K prev and nil all return the cold bits.
func TestMEK1SolveFromFallback(t *testing.T) {
	q, err := NewMEK1(150, 9, 2700) // rho = 0.5
	if err != nil {
		t.Fatal(err)
	}
	cold, err := q.Solve()
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewMEK1(150, 5, 1500)
	if err != nil {
		t.Fatal(err)
	}
	otherSol, err := other.Solve()
	if err != nil {
		t.Fatal(err)
	}
	nans := &MEK1Solution{q: q, zs: make([]complex128, q.K)}
	for i := range nans.zs {
		nans.zs[i] = complex(math.NaN(), 0)
	}
	dups := &MEK1Solution{q: q, zs: make([]complex128, q.K)}
	for i := range dups.zs {
		dups.zs[i] = cold.zs[0] // every seed in the same Newton basin
	}
	for name, prev := range map[string]*MEK1Solution{
		"nil":       nil,
		"wrong-K":   otherSol,
		"nan-seeds": nans,
		"dup-seeds": dups,
	} {
		warm, err := q.SolveFrom(prev)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range warm.zs {
			if warm.zs[i] != cold.zs[i] {
				t.Errorf("%s root %d: fallback %v != cold %v", name, i, warm.zs[i], cold.zs[i])
			}
		}
	}
}

// TestDEK1SelfConjugateBranchReal pins the even-K negative-axis branch
// (k = K/2+1, phase pi): its root is mathematically real, and the canonical
// snap stage must flush the e^{i*pi} rounding dust so the stored root is
// exactly real — the property that makes warm and cold solves agree bitwise
// on that branch.
func TestDEK1SelfConjugateBranchReal(t *testing.T) {
	for _, k := range []int{2, 10, 20} {
		for _, rho := range []float64{0.3, 0.45, 0.8} {
			q, err := NewDEK1(k, rho*0.060, 0.060)
			if err != nil {
				t.Fatal(err)
			}
			sol, err := q.Solve()
			if err != nil {
				t.Fatal(err)
			}
			z := sol.Zetas()[k/2] // branch K/2+1 at index K/2
			if imag(z) != 0 {
				t.Errorf("K=%d rho=%v: zeta_%d = %v has nonzero imaginary part", k, rho, k/2+1, z)
			}
			if real(z) >= 0 {
				t.Errorf("K=%d rho=%v: zeta_%d = %v not on the negative axis", k, rho, k/2+1, z)
			}
		}
	}
}

// BenchmarkDEK1SolveVsSolveFrom measures the root-level continuation win:
// cold is the Appendix-C fixed-point iteration from zero, warm seeds Newton
// with the neighbouring load's roots.
func BenchmarkDEK1SolveVsSolveFrom(b *testing.B) {
	q, err := NewDEK1(9, 0.030, 0.060)
	if err != nil {
		b.Fatal(err)
	}
	neighbour, err := DEK1{K: 9, MeanBurst: 0.027, T: 0.060}.Solve()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := q.Solve(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := q.SolveFrom(neighbour); err != nil {
				b.Fatal(err)
			}
		}
	})
}
