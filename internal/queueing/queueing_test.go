package queueing

import (
	"errors"
	"math"
	"math/cmplx"
	"testing"

	"fpsping/internal/xmath"
)

func TestMD1Validation(t *testing.T) {
	if _, err := NewMD1(0, 1); err == nil {
		t.Error("accepted lambda=0")
	}
	if _, err := NewMD1(2, 0.6); !errors.Is(err, ErrUnstable) {
		t.Errorf("want ErrUnstable, got %v", err)
	}
	q, err := NewMD1(100, 0.005) // rho = 0.5
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q.Load()-0.5) > 1e-15 {
		t.Errorf("load = %v", q.Load())
	}
}

func TestMD1DominantPoleSatisfiesEquation(t *testing.T) {
	for _, rho := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.97} {
		q, err := NewMD1(rho/0.002, 0.002)
		if err != nil {
			t.Fatal(err)
		}
		g, err := q.DominantPole()
		if err != nil {
			t.Fatal(err)
		}
		if g <= 0 {
			t.Fatalf("rho=%v: gamma=%v not positive", rho, g)
		}
		resid := q.Lambda*(math.Exp(g*q.S)-1) - g
		if math.Abs(resid) > 1e-6*g {
			t.Errorf("rho=%v: residual %v", rho, resid)
		}
	}
}

func TestMD1ExactCDFAgainstSimulation(t *testing.T) {
	q, err := NewMD1(160, 0.005) // rho = 0.8
	if err != nil {
		t.Fatal(err)
	}
	probes := []float64{0.001, 0.005, 0.01, 0.02, 0.04}
	res, err := SimulateMD1(q, 2_000_000, 17, probes)
	if err != nil {
		t.Fatal(err)
	}
	// Lindley waits are strongly autocorrelated at rho=0.8 (relaxation time
	// ~1/(1-rho) arrivals), so inflate the iid binomial tolerance by an
	// effective-sample-size factor.
	autocorr := 1 + 2/(1-q.Load())
	for i, x := range probes {
		want := q.WaitTailExact(x)
		got := res.TailAt(i)
		if tol := autocorr * mcTol(want, 2_000_000, 6); math.Abs(got-want) > tol {
			t.Errorf("P(W>%v): exact %v vs sim %v (tol %v)", x, want, got, tol)
		}
	}
	// Mean wait: PK formula against simulation.
	if got, want := res.Summary.Mean(), q.MeanWait(); math.Abs(got-want) > 0.02*want {
		t.Errorf("mean wait sim %v vs PK %v", got, want)
	}
}

func TestMD1AsymptoticMatchesExactDeepTail(t *testing.T) {
	q, err := NewMD1(120, 0.005) // rho = 0.6
	if err != nil {
		t.Fatal(err)
	}
	asym, err := q.WaitMixAsymptotic()
	if err != nil {
		t.Fatal(err)
	}
	// Where the exact tail is ~1e-3..1e-6 the dominant pole term should agree
	// to within a percent (both evaluations stay inside the series' stable
	// range lambda*x <= 30 here: lambda=120).
	for _, x := range []float64{0.05, 0.07, 0.09} {
		exact := q.WaitTailExact(x)
		approx := asym.Tail(x)
		if exact <= 0 {
			t.Fatalf("exact tail at %v nonpositive: %v", x, exact)
		}
		// Sub-dominant (complex) poles of the true MGF contribute a few
		// percent at tails ~1e-8; allow 5%.
		if rel := math.Abs(approx-exact) / exact; rel > 0.05 {
			t.Errorf("x=%v: asym %v vs exact %v (rel %v)", x, approx, exact, rel)
		}
	}
	// The paper's eq-14 mix replaces the exact residue R by rho; the two
	// stay within a modest constant factor of each other, which is all the
	// approximation claims.
	paper, err := q.WaitMixPaper()
	if err != nil {
		t.Fatal(err)
	}
	ratio := paper.Tail(0.07) / asym.Tail(0.07)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("paper vs asymptotic tail ratio %v out of band", ratio)
	}
}

func TestMG1ReducesToMD1(t *testing.T) {
	md1, err := NewMD1(100, 0.004)
	if err != nil {
		t.Fatal(err)
	}
	mg1, err := NewMG1(100, []ServiceSpec{{S: 0.004, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	g1, err := md1.DominantPole()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := mg1.DominantPole()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g1-g2) > 1e-6*g1 {
		t.Errorf("poles differ: %v vs %v", g1, g2)
	}
	if math.Abs(md1.MeanWait()-mg1.MeanWait()) > 1e-12 {
		t.Error("PK means differ")
	}
}

func TestMG1TwoClasses(t *testing.T) {
	// Two gamer classes per eq. (13): 80B and 160B packets at a 1 MB/s link.
	q, err := NewMG1(3000, []ServiceSpec{
		{S: 80e-6, Weight: 0.5},
		{S: 160e-6, Weight: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q.Load()-3000*120e-6) > 1e-12 {
		t.Errorf("load = %v", q.Load())
	}
	m, err := q.WaitMixPaper()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Atom-(1-q.Load())) > 1e-12 {
		t.Errorf("atom = %v", m.Atom)
	}
	if _, err := NewMG1(1, []ServiceSpec{{S: 1, Weight: 0.7}}); err == nil {
		t.Error("accepted weights not summing to 1")
	}
}

func TestNDD1Validation(t *testing.T) {
	if _, err := NewNDD1(0, 1, 1, 1); err == nil {
		t.Error("accepted N=0")
	}
	if _, err := NewNDD1(100, 0.04, 80, 100_000); !errors.Is(err, ErrUnstable) {
		t.Error("accepted overload")
	}
}

func TestNDD1ExactBinomialAgainstSimulation(t *testing.T) {
	// 48 sources, 80-byte packets every 40 ms, 160 kB/s link: rho = 0.6.
	q, err := NewNDD1(48, 0.040, 80, 160_000)
	if err != nil {
		t.Fatal(err)
	}
	probes := []float64{0.0005, 0.001, 0.002} // seconds of virtual wait
	res, err := SimulateNDD1(q, 4000, 50, 23, probes)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range probes {
		got := res.TailAt(i)
		want := q.QueueTailExactBinomial(x * q.C) // backlog bytes = C*wait
		if got <= 0 {
			t.Fatalf("no exceedances at probe %v; weak test", x)
		}
		// The dominant-term estimate ignores multiple crossing opportunities
		// (it keeps a single window), so it can undershoot by a small
		// constant factor; the paper treats it as an order-of-magnitude
		// tool. Accept a factor-5 band.
		ratio := want / got
		if ratio < 0.2 || ratio > 5 {
			t.Errorf("P(V>%v): estimate %v vs sim %v (ratio %v)", x, want, got, ratio)
		}
	}
}

func TestNDD1ChernoffUpperBoundsExactish(t *testing.T) {
	q, err := NewNDD1(100, 0.040, 100, 500_000) // rho = 0.5
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []float64{500, 1000, 2000, 4000} {
		lg := q.QueueTailChernoff(b)
		exact := q.QueueTailExactBinomial(b)
		if exact <= 0 {
			continue
		}
		// Chernoff should be within ~1.2 decades above the exact-binomial
		// dominant term and never dramatically below it.
		diff := lg/math.Ln10 - math.Log10(exact)
		if diff < -0.3 || diff > 1.5 {
			t.Errorf("B=%v: chernoff 10^%.2f vs exact %v (diff %.2f decades)",
				b, lg/math.Ln10, exact, diff)
		}
	}
	// Monotone decreasing in B.
	prev := 0.1
	for _, b := range []float64{500, 1000, 2000, 4000, 8000} {
		lg := q.QueueTailChernoff(b)
		if lg > prev+1e-12 {
			t.Errorf("chernoff not decreasing at B=%v", b)
		}
		prev = lg
	}
}

func TestNDD1PoissonLimitConvergence(t *testing.T) {
	// Eq. (11): scaling N and D together, the binomial estimate converges to
	// the Poisson one.
	base, err := NewNDD1(20, 0.040, 100, 250_000) // rho = 0.2
	if err != nil {
		t.Fatal(err)
	}
	b := 1500.0
	poisson := base.QueueTailPoisson(b)
	var prevGap float64 = math.Inf(1)
	for _, n := range []int{1, 4, 16, 64} {
		scaled, err := base.Scaled(n)
		if err != nil {
			t.Fatal(err)
		}
		gap := math.Abs(scaled.QueueTailChernoff(b) - poisson)
		if gap > prevGap+1e-9 {
			t.Errorf("scale %d: gap %v did not shrink (prev %v)", n, gap, prevGap)
		}
		prevGap = gap
	}
	if prevGap > 0.05*math.Abs(poisson) {
		t.Errorf("binomial estimate did not converge to Poisson: gap %v vs %v", prevGap, poisson)
	}
}

func TestNDD1PoissonMatchesMD1Pole(t *testing.T) {
	// The Poisson Chernoff exponent at large B decays at the M/D/1 dominant
	// pole rate (in backlog units: gamma/C per byte).
	q, err := NewNDD1(100, 0.040, 100, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	md1, err := q.MD1Limit()
	if err != nil {
		t.Fatal(err)
	}
	g, err := md1.DominantPole()
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := 20_000.0, 40_000.0
	slope := (q.QueueTailPoisson(b2) - q.QueueTailPoisson(b1)) / (b2 - b1)
	wantSlope := -g / q.C
	if math.Abs(slope-wantSlope) > 0.05*math.Abs(wantSlope) {
		t.Errorf("poisson decay %v per byte, want %v", slope, wantSlope)
	}
}

func TestDEK1Validation(t *testing.T) {
	if _, err := NewDEK1(0, 1, 2); err == nil {
		t.Error("accepted K=0")
	}
	if _, err := NewDEK1(5, 2, 1); !errors.Is(err, ErrUnstable) {
		t.Error("accepted rho=2")
	}
	q, err := NewDEK1(9, 0.030, 0.060)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q.Load()-0.5) > 1e-15 || math.Abs(q.Beta()-300) > 1e-9 {
		t.Errorf("load=%v beta=%v", q.Load(), q.Beta())
	}
}

func TestDEK1ZetasSatisfyEquation(t *testing.T) {
	for _, k := range []int{1, 2, 5, 9, 20, 28} {
		for _, rho := range []float64{0.1, 0.5, 0.8, 0.95} {
			q, err := NewDEK1(k, rho*0.040, 0.040)
			if err != nil {
				t.Fatal(err)
			}
			zs, err := q.Zetas()
			if err != nil {
				t.Fatalf("K=%d rho=%v: %v", k, rho, err)
			}
			if len(zs) != k {
				t.Fatalf("K=%d: %d roots", k, len(zs))
			}
			// zeta_1 real in (0,1) and largest in modulus (Appendix C).
			if imag(zs[0]) != 0 || !(real(zs[0]) > 0 && real(zs[0]) < 1) {
				t.Errorf("K=%d rho=%v: zeta_1 = %v", k, rho, zs[0])
			}
			for j, z := range zs {
				phase := complex(0, 2*math.Pi*float64(j)/float64(k))
				resid := cmplx.Abs(z - cmplx.Exp((z-1)/complex(rho, 0)+phase))
				if resid > 1e-9 {
					t.Errorf("K=%d rho=%v root %d: residual %v", k, rho, j+1, resid)
				}
				if cmplx.Abs(z) > 1 {
					t.Errorf("K=%d rho=%v root %d: |z| = %v > 1", k, rho, j+1, cmplx.Abs(z))
				}
				if cmplx.Abs(z) > cmplx.Abs(zs[0])+1e-12 {
					t.Errorf("K=%d rho=%v: |zeta_%d| exceeds |zeta_1|", k, rho, j+1)
				}
			}
			// Roots must be distinct.
			for i := range zs {
				for j := i + 1; j < len(zs); j++ {
					if cmplx.Abs(zs[i]-zs[j]) < 1e-9 {
						t.Errorf("K=%d rho=%v: duplicate roots %d,%d", k, rho, i, j)
					}
				}
			}
		}
	}
}

func TestDEK1WeightsSolveVandermondeSystem(t *testing.T) {
	// Appendix D: sum_j a_j * zeta_j^{-k} = 1 for k = 1..K.
	for _, k := range []int{1, 2, 5, 9, 20} {
		q, err := NewDEK1(k, 0.024, 0.040) // rho = 0.6
		if err != nil {
			t.Fatal(err)
		}
		zs, err := q.Zetas()
		if err != nil {
			t.Fatal(err)
		}
		ws, err := q.Weights()
		if err != nil {
			t.Fatal(err)
		}
		for kk := 1; kk <= k; kk++ {
			var sum complex128
			var scale float64
			for j := range zs {
				term := ws[j] * cmplx.Pow(zs[j], complex(-float64(kk), 0))
				sum += term
				scale += cmplx.Abs(term)
			}
			// High powers of 1/zeta blow the terms up to ~1e14 before they
			// cancel back to 1, so judge the residual relative to the term
			// magnitudes (the identity itself holds exactly).
			if cmplx.Abs(sum-1) > 1e-10*(1+scale) {
				t.Errorf("K=%d eq %d: sum = %v (scale %g)", k, kk, sum, scale)
			}
		}
	}
}

func TestDEK1K1MatchesDM1ClosedForm(t *testing.T) {
	// K=1 is D/M/1: P(W > x) = sigma * e^{-mu(1-sigma)x} with
	// sigma = exp(-(1-sigma)/rho); "for the special case D/M/1 exactly the
	// same solution as in [15] is obtained".
	q, err := NewDEK1(1, 0.028, 0.040) // rho = 0.7, mu = 1/0.028
	if err != nil {
		t.Fatal(err)
	}
	rho := q.Load()
	sigma, err := xmath.Brent(func(s float64) float64 {
		return s - math.Exp(-(1-s)/rho)
	}, 1e-9, 1-1e-9, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	m, err := q.WaitMix()
	if err != nil {
		t.Fatal(err)
	}
	mu := q.Beta()
	for _, x := range []float64{0, 0.01, 0.05, 0.2} {
		want := sigma * math.Exp(-mu*(1-sigma)*x)
		if got := m.Tail(x); math.Abs(got-want) > 1e-9 {
			t.Errorf("x=%v: %v want %v", x, got, want)
		}
	}
}

func TestDEK1WaitMixAgainstLindley(t *testing.T) {
	cases := []struct {
		k   int
		rho float64
	}{{2, 0.5}, {9, 0.5}, {9, 0.8}, {20, 0.7}}
	for _, c := range cases {
		T := 0.060
		q, err := NewDEK1(c.k, c.rho*T, T)
		if err != nil {
			t.Fatal(err)
		}
		m, err := q.WaitMix()
		if err != nil {
			t.Fatalf("K=%d rho=%v: %v", c.k, c.rho, err)
		}
		probes := []float64{0.2 * T, 0.5 * T, T, 2 * T}
		const n = 2_000_000
		bursts, _, err := SimulateDEK1(q, n, uint64(100*c.k)+uint64(c.rho*10), probes, probes)
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range probes {
			want := m.Tail(x)
			got := bursts.TailAt(i)
			tol := mcTol(want, n, 8)
			if math.Abs(got-want) > tol {
				t.Errorf("K=%d rho=%v P(W>%v): analytic %v vs sim %v (tol %v)",
					c.k, c.rho, x, want, got, tol)
			}
		}
		// Mean wait agreement.
		mw, err := q.MeanWait()
		if err != nil {
			t.Fatal(err)
		}
		if simMean := bursts.Summary.Mean(); math.Abs(simMean-mw) > 0.03*(mw+1e-6) {
			t.Errorf("K=%d rho=%v mean wait: analytic %v vs sim %v", c.k, c.rho, mw, simMean)
		}
	}
}

func TestDEK1PacketDelayMixAgainstLindley(t *testing.T) {
	T := 0.060
	q, err := NewDEK1(9, 0.5*T, T)
	if err != nil {
		t.Fatal(err)
	}
	m, err := q.PacketDelayMix()
	if err != nil {
		t.Fatal(err)
	}
	probes := []float64{0.01, 0.03, 0.06, 0.12}
	const n = 2_000_000
	_, packets, err := SimulateDEK1(q, n, 77, probes, probes)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range probes {
		want := m.Tail(x)
		got := packets.TailAt(i)
		tol := mcTol(want, n, 8)
		if math.Abs(got-want) > tol {
			t.Errorf("P(D>%v): analytic %v vs sim %v (tol %v)", x, want, got, tol)
		}
	}
	// Mean packet delay = mean burst wait + mean half burst.
	mw, _ := q.MeanWait()
	wantMean := mw + q.MeanBurst/2
	if math.Abs(m.Mean()-wantMean) > 1e-9 {
		t.Errorf("mean packet delay %v, want %v", m.Mean(), wantMean)
	}
}

func TestDEK1PositionMixes(t *testing.T) {
	q, err := NewDEK1(9, 0.030, 0.060)
	if err != nil {
		t.Fatal(err)
	}
	u, err := q.PositionMixUniform()
	if err != nil {
		t.Fatal(err)
	}
	// Mean position delay is half the mean burst (K/(2*beta)).
	if math.Abs(u.Mean()-q.MeanBurst/2) > 1e-12 {
		t.Errorf("uniform position mean = %v, want %v", u.Mean(), q.MeanBurst/2)
	}
	// Spot theta=1 is the whole burst: Erlang(K, beta).
	s1, err := q.PositionMixSpot(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s1.Mean()-q.MeanBurst) > 1e-12 {
		t.Errorf("spot(1) mean = %v", s1.Mean())
	}
	// Spot theta=0 is no delay.
	s0, err := q.PositionMixSpot(0)
	if err != nil {
		t.Fatal(err)
	}
	if s0.Atom != 1 {
		t.Errorf("spot(0) = %+v", s0)
	}
	// Uniform tail is bounded by the worst-case spot tail everywhere.
	for _, x := range []float64{0.01, 0.03, 0.09} {
		if u.Tail(x) > s1.Tail(x)+1e-12 {
			t.Errorf("uniform tail exceeds worst-case spot at %v", x)
		}
	}
	// K=1 uniform case is rejected (branch point, eq. 33).
	q1, err := NewDEK1(1, 0.020, 0.060)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q1.PositionMixUniform(); err == nil {
		t.Error("K=1 uniform position should be rejected")
	}
	if _, err := q.PositionMixSpot(1.5); err == nil {
		t.Error("accepted theta>1")
	}
}

func TestDEK1AtomIsIdleProbability(t *testing.T) {
	T := 0.040
	q, err := NewDEK1(9, 0.6*T, T)
	if err != nil {
		t.Fatal(err)
	}
	m, err := q.WaitMix()
	if err != nil {
		t.Fatal(err)
	}
	const n = 1_000_000
	bursts, _, err := SimulateDEK1(q, n, 31, []float64{1e-12}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pWait := bursts.TailAt(0) // fraction of bursts that waited
	if math.Abs((1-m.Atom)-pWait) > mcTol(pWait, n, 8) {
		t.Errorf("P(wait>0): analytic %v vs sim %v", 1-m.Atom, pWait)
	}
}

func BenchmarkDEK1WaitMixK9(b *testing.B) {
	q, _ := NewDEK1(9, 0.030, 0.060)
	for i := 0; i < b.N; i++ {
		if _, err := q.WaitMix(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDEK1WaitMixK28(b *testing.B) {
	q, _ := NewDEK1(28, 0.030, 0.060)
	for i := 0; i < b.N; i++ {
		if _, err := q.WaitMix(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLindleyDEK1(b *testing.B) {
	q, _ := NewDEK1(9, 0.030, 0.060)
	for i := 0; i < b.N; i++ {
		if _, _, err := SimulateDEK1(q, 100_000, 1, []float64{0.05}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNDD1Chernoff(b *testing.B) {
	q, _ := NewNDD1(100, 0.040, 100, 500_000)
	for i := 0; i < b.N; i++ {
		q.QueueTailChernoff(2000)
	}
}
