package queueing

import (
	"fmt"
	"math"

	"fpsping/internal/xmath"
)

// NDD1 is the N*D/D/1 queue of §3.1: N independent periodic sources, each
// emitting one packet of P bytes every D seconds with a uniformly random
// phase, served by a link of C bytes per second. The paper derives Chernoff /
// dominant-term ("inf sup") estimates for the stationary buffer content Q and
// shows the model converges to M/D/1 as N grows (eq. 11).
type NDD1 struct {
	N int     // number of periodic sources
	D float64 // per-source period, s
	P float64 // packet size, bytes
	C float64 // link capacity, bytes/s
}

// NewNDD1 validates parameters and stability (N*P/D < C).
func NewNDD1(n int, d, p, c float64) (NDD1, error) {
	if n < 1 || !(d > 0) || !(p > 0) || !(c > 0) {
		return NDD1{}, fmt.Errorf("%w: n=%d d=%g p=%g c=%g", ErrBadParam, n, d, p, c)
	}
	q := NDD1{N: n, D: d, P: p, C: c}
	if q.Load() >= 1 {
		return NDD1{}, fmt.Errorf("%w: rho=%g", ErrUnstable, q.Load())
	}
	return q, nil
}

// Load returns rho = N*P/(D*C).
func (q NDD1) Load() float64 { return float64(q.N) * q.P / (q.D * q.C) }

// ServiceTime returns the per-packet transmission time P/C.
func (q NDD1) ServiceTime() float64 { return q.P / q.C }

// QueueTailChernoff estimates log P(Q > B bytes) by the paper's eq. (10):
// the dominant-term replacement of the union over window lengths t combined
// with the binomial Chernoff bound. The inner supremum over the twist s has
// the closed form optimizer of eq. (9), which reduces the exponent to the
// binomial relative entropy N*KL(a || t/D) with a = (B + C t)/(N P). The
// outer infimum over t in (0, D] is located by golden search after a coarse
// scan.
//
// The return value is the natural logarithm of the probability estimate
// (so always <= 0); -Inf means the backlog B is unreachable.
func (q NDD1) QueueTailChernoff(b float64) float64 {
	if b < 0 {
		return 0
	}
	exponent := func(t float64) float64 {
		// Required arrival fraction a in window t; infeasible -> +Inf.
		x := b + q.C*t
		a := x / (float64(q.N) * q.P)
		frac := t / q.D
		if a >= 1 {
			return math.Inf(1)
		}
		if a <= frac {
			// More than the mean arrives: probability ~ 1, exponent 0.
			return 0
		}
		return float64(q.N) * (a*math.Log(a/frac) + (1-a)*math.Log((1-a)/(1-frac)))
	}
	return -infimumOverWindow(exponent, q.D)
}

// QueueTailExactBinomial estimates P(Q > B bytes) by eq. (4) with the exact
// binomial tail instead of the Chernoff bound: sup over t of
// P(Bin(N, t/D) >= k(t)) where k(t) = floor((B+Ct)/P) + 1 packets are needed
// in the window to exceed backlog B. The supremum is attained just before a
// jump of k(t), so only the jump instants need evaluation.
func (q NDD1) QueueTailExactBinomial(b float64) float64 {
	if b < 0 {
		return 1
	}
	best := 0.0
	kmin := int(math.Floor(b/q.P)) + 1
	if kmin < 1 {
		kmin = 1
	}
	for k := kmin; k <= q.N; k++ {
		// Largest window with requirement still k: just before B+Ct = k*P.
		t := (float64(k)*q.P - b) / q.C
		if t <= 0 {
			continue
		}
		if t > q.D {
			t = q.D
		}
		p := xmath.BinomialTail(q.N, t/q.D, k)
		if p > best {
			best = p
		}
	}
	return best
}

// QueueTailPoisson estimates log P(Q > B bytes) in the Poisson (M/D/1) limit
// of eq. (12): packets arrive as a Poisson stream of rate N/D, and the
// Chernoff exponent for a window t is mu - x/p + (x/p)*log(x/(p*mu)) with
// x = B + C t and mu = N t / D.
func (q NDD1) QueueTailPoisson(b float64) float64 {
	if b < 0 {
		return 0
	}
	exponent := func(t float64) float64 {
		x := b + q.C*t
		kx := x / q.P // packets needed
		mu := float64(q.N) * t / q.D
		if kx <= mu {
			return 0
		}
		return kx*math.Log(kx/mu) - kx + mu
	}
	// The Poisson model has no window bound; expand until the minimum is
	// interior.
	horizon := q.D
	val := -infimumOverWindow(exponent, horizon)
	for i := 0; i < 20; i++ {
		wider := -infimumOverWindow(exponent, horizon*2)
		if wider <= val+1e-12 {
			return val
		}
		val = wider
		horizon *= 2
	}
	return val
}

// infimumOverWindow minimizes f over (0, hi] with a coarse scan followed by
// golden-section polish around the best cell.
func infimumOverWindow(f func(float64) float64, hi float64) float64 {
	const cells = 256
	best := math.Inf(1)
	bestT := hi
	for i := 1; i <= cells; i++ {
		t := hi * float64(i) / cells
		if v := f(t); v < best {
			best = v
			bestT = t
		}
	}
	lo := bestT - hi/cells
	if lo < 1e-12*hi {
		lo = 1e-12 * hi
	}
	up := bestT + hi/cells
	if up > hi {
		up = hi
	}
	_, v := xmath.MinimizeGolden(f, lo, up, 1e-10*hi)
	if v < best {
		best = v
	}
	return best
}

// Scaled returns the queue with N and D multiplied by n: the scaling regime
// of eq. (11) under which the arrival stream converges to Poisson while the
// load stays constant.
func (q NDD1) Scaled(n int) (NDD1, error) {
	return NewNDD1(q.N*n, q.D*float64(n), q.P, q.C)
}

// MD1Limit returns the limiting M/D/1 queue of §3.1: Poisson arrivals at
// rate N/D with deterministic service P/C.
func (q NDD1) MD1Limit() (MD1, error) {
	return NewMD1(float64(q.N)/q.D, q.P/q.C)
}
