package queueing

import (
	"fmt"
	"math/cmplx"
	"sort"

	"fpsping/internal/mgf"
	"fpsping/internal/xmath"
)

// MEK1 is the M/E_K/1 queue: Poisson arrivals at rate Lambda, Erlang(K,
// Beta) service. §3.2 points out that when bursts from *several* game
// servers share the reserved downstream pipe, the N*D/G/1 superposition "is
// very well approximated by M/G/1"; with Erlang burst work that limit is
// exactly this queue, and its waiting-time MGF is rational, so it expands in
// the same Erlang-term algebra as the D/E_K/1 solution:
//
//	W(s) = (1-rho) (beta-s)^K / Q(s),
//
// where s*Q(s) = (s+lambda)(beta-s)^K - lambda*beta^K (Pollaczek-Khinchine).
type MEK1 struct {
	Lambda float64 // arrival rate, 1/s
	K      int     // Erlang order of the service
	Beta   float64 // Erlang rate of the service, 1/s
}

// NewMEK1 validates parameters and stability.
func NewMEK1(lambda float64, k int, beta float64) (MEK1, error) {
	if !(lambda > 0) || k < 1 || !(beta > 0) {
		return MEK1{}, fmt.Errorf("%w: lambda=%g K=%d beta=%g", ErrBadParam, lambda, k, beta)
	}
	q := MEK1{Lambda: lambda, K: k, Beta: beta}
	if q.Load() >= 1 {
		return MEK1{}, fmt.Errorf("%w: rho=%g", ErrUnstable, q.Load())
	}
	return q, nil
}

// String summarizes the queue.
func (q MEK1) String() string { return fmt.Sprintf("M/E%d/1(rho=%.3g)", q.K, q.Load()) }

// MeanService returns K/Beta.
func (q MEK1) MeanService() float64 { return float64(q.K) / q.Beta }

// Load returns rho = Lambda*K/Beta.
func (q MEK1) Load() float64 { return q.Lambda * q.MeanService() }

// MeanWait returns the Pollaczek-Khinchine mean waiting time
// lambda*E[S^2]/(2(1-rho)) with E[S^2] = K(K+1)/beta^2.
func (q MEK1) MeanWait() float64 {
	k := float64(q.K)
	es2 := k * (k + 1) / (q.Beta * q.Beta)
	return q.Lambda * es2 / (2 * (1 - q.Load()))
}

// scaledPoly returns the coefficients (lowest degree first) of
//
//	S(z) = [(z+a)(1-z)^K - a] / z,   a = lambda/beta,
//
// the denominator of the waiting-time MGF in the scaled variable z = s/beta.
// Working in z keeps every coefficient O(1), which the root finder needs
// (the raw polynomial carries beta^K ~ 1e19 factors).
func (q MEK1) scaledPoly() []complex128 {
	k := q.K
	a := complex(q.Lambda/q.Beta, 0)
	// (1 - z)^K coefficients: b[j] = C(K,j)(-1)^j.
	b := make([]complex128, k+1)
	choose := 1.0
	for j := 0; j <= k; j++ {
		if j > 0 {
			choose = choose * float64(k-j+1) / float64(j)
		}
		if j%2 == 1 {
			b[j] = complex(-choose, 0)
		} else {
			b[j] = complex(choose, 0)
		}
	}
	// R(z) = (z + a)*(1-z)^K - a: degree K+1, R(0) = 0 exactly.
	r := make([]complex128, k+2)
	for j := 0; j <= k; j++ {
		r[j] += a * b[j]
		r[j+1] += b[j]
	}
	r[0] -= a
	// S = R/z.
	return r[1:]
}

// polishScaledRoot runs the Newton polish on the factored identity
// h(z) = (z+a)(1-z)^K - a, whose evaluation is far better conditioned than
// the expanded polynomial (no binomial-coefficient cancellation). The
// iterates are a deterministic function of (start, parameters).
func (q MEK1) polishScaledRoot(z complex128) complex128 {
	a := complex(q.Lambda/q.Beta, 0)
	kk := complex(float64(q.K), 0)
	for iter := 0; iter < 30; iter++ {
		om := 1 - z
		omk1 := cmplx.Pow(om, kk-1)
		h := (z+a)*omk1*om - a
		dh := omk1 * (om - kk*(z+a))
		if dh == 0 {
			break
		}
		step := h / dh
		z -= step
		if cmplx.Abs(step) < 1e-16*(1+cmplx.Abs(z)) {
			break
		}
	}
	return z
}

// scaledResidual returns |h(z)| for the factored denominator identity.
func (q MEK1) scaledResidual(z complex128) float64 {
	a := complex(q.Lambda/q.Beta, 0)
	kk := complex(float64(q.K), 0)
	return cmplx.Abs((z+a)*cmplx.Pow(1-z, kk) - a)
}

// mek1ResidualTol accepts a converged scaled root: the factored identity
// evaluates to machine-precision noise (~1e-16 at the O(1) scale of the
// scaled variable) at a true root, so 1e-10 flags genuine misconvergence.
const mek1ResidualTol = 1e-10

// finishScaledRoots applies the canonical final stage shared by the cold
// and warm solvers: polish each root, snap it to the canonical seed grid,
// re-polish from the snapped seed (see xmath.SnapSeed), then sort the set
// by (real, imag). The sort gives the solution a path-independent order —
// PolyRoots and a continuation chain enumerate roots differently, and term
// order is arithmetic order downstream — so warm and cold solves produce
// identical bits.
func (q MEK1) finishScaledRoots(zs []complex128) []complex128 {
	for i, z := range zs {
		z = q.polishScaledRoot(z)
		zs[i] = q.polishScaledRoot(xmath.SnapSeedC(z))
	}
	sort.Slice(zs, func(i, j int) bool {
		if real(zs[i]) != real(zs[j]) {
			return real(zs[i]) < real(zs[j])
		}
		return imag(zs[i]) < imag(zs[j])
	})
	return zs
}

// scaledRoots solves the scaled denominator cold (PolyRoots factorization)
// and applies the canonical polish stage.
func (q MEK1) scaledRoots() ([]complex128, error) {
	zs, err := xmath.PolyRoots(q.scaledPoly())
	if err != nil {
		return nil, fmt.Errorf("M/E%d/1 poles: %w", q.K, err)
	}
	return q.finishScaledRoots(zs), nil
}

// MEK1Solution is the one-shot root solve of the scaled waiting-time
// denominator, from which both the pole list and the waiting-time mix derive
// without re-running PolyRoots + Newton polish. Solve is the entry point.
type MEK1Solution struct {
	q  MEK1
	zs []complex128 // polished scaled roots z_i = p_i/beta
}

// Solve factors the scaled denominator once and returns the reusable
// solution. Poles and WaitMix on the solution are pure arithmetic over the
// stored roots; the MEK1 methods of the same names are one-shot wrappers.
func (q MEK1) Solve() (*MEK1Solution, error) {
	zs, err := q.scaledRoots()
	if err != nil {
		return nil, err
	}
	return &MEK1Solution{q: q, zs: zs}, nil
}

// Queue returns the queue the solution solves.
func (sol *MEK1Solution) Queue() MEK1 { return sol.q }

// SolveFrom is the continuation solver: it seeds the Newton polish with a
// neighbouring solution's roots instead of a cold PolyRoots factorization,
// then applies the same canonical polish-snap-repolish stage and (real,
// imag) ordering, so a warm solve returns exactly the bits of q.Solve().
// Validation — per-root residual of the factored denominator identity,
// right-half-plane position, pairwise-distinct roots — falls back to the
// cold solve on any doubt: continuation changes only cost, never values.
// prev may be nil or for a different K; both fall back cold.
func (q MEK1) SolveFrom(prev *MEK1Solution) (*MEK1Solution, error) {
	if prev == nil || prev.q.K != q.K || len(prev.zs) != q.K {
		return q.Solve()
	}
	zs := q.finishScaledRoots(append([]complex128(nil), prev.zs...))
	for i, z := range zs {
		// Negated-form comparisons so a NaN residual or component (a seed the
		// polish diverged from) fails validation rather than slipping past it.
		if !(q.scaledResidual(z) <= mek1ResidualTol) || !(real(z) > 0) {
			return q.Solve()
		}
		if i > 0 && cmplx.Abs(z-zs[i-1]) <= 1e-12*(1+cmplx.Abs(z)) {
			return q.Solve() // two seeds collapsed onto one root
		}
	}
	return &MEK1Solution{q: q, zs: zs}, nil
}

// Poles returns the K poles of the waiting-time MGF: beta times the roots of
// the scaled denominator. All have positive real part for a stable queue.
func (sol *MEK1Solution) Poles() ([]complex128, error) {
	q := sol.q
	out := make([]complex128, len(sol.zs))
	for i, z := range sol.zs {
		if real(z) <= 0 {
			return nil, fmt.Errorf("M/E%d/1 pole %d = %v not in right half plane (rho=%g)",
				q.K, i, complex(q.Beta, 0)*z, q.Load())
		}
		out[i] = complex(q.Beta, 0) * z
	}
	return out, nil
}

// WaitMix returns the exact waiting-time law as an Erlang-term mix:
// W(s) = (1-rho) + sum_i c_i p_i/(p_i - s) with, in scaled coordinates
// z_i = p_i/beta,
//
//	c_i = -(1-rho)(1-z_i)^K / (S'(z_i) z_i).
func (sol *MEK1Solution) WaitMix() (mgf.Mix, error) {
	q := sol.q
	ds := xmath.PolyDeriv(q.scaledPoly())
	rho := q.Load()
	var m mgf.Mix
	m.Atom = 1 - rho
	for _, z := range sol.zs {
		if real(z) <= 0 {
			return mgf.Mix{}, fmt.Errorf("M/E%d/1: pole %v in left half plane (rho=%g)", q.K, z, q.Load())
		}
		den := xmath.PolyEval(ds, z) * z
		if den == 0 {
			return mgf.Mix{}, fmt.Errorf("M/E%d/1: repeated pole %v", q.K, z)
		}
		num := complex(1-rho, 0) * cmplx.Pow(1-z, complex(float64(q.K), 0))
		m.AddTerm(complex(q.Beta, 0)*z, []complex128{-num / den})
	}
	if err := m.Validate(); err != nil {
		return mgf.Mix{}, fmt.Errorf("M/E%d/1 wait mix (rho=%g): %w", q.K, q.Load(), err)
	}
	return m, nil
}

// Poles is the one-shot form of Solve().Poles().
func (q MEK1) Poles() ([]complex128, error) {
	sol, err := q.Solve()
	if err != nil {
		return nil, err
	}
	return sol.Poles()
}

// WaitMix is the one-shot form of Solve().WaitMix().
func (q MEK1) WaitMix() (mgf.Mix, error) {
	sol, err := q.Solve()
	if err != nil {
		return mgf.Mix{}, err
	}
	return sol.WaitMix()
}

// PositionMixUniform returns the in-burst position law for a uniformly
// placed packet of an Erlang(K, Beta) burst: identical to the D/E_K/1 case
// (eq. 34), since it depends only on the burst-size law.
func (q MEK1) PositionMixUniform() (mgf.Mix, error) {
	if q.K < 2 {
		return mgf.Mix{}, fmt.Errorf("%w: uniform position law needs K >= 2 (got %d)", ErrBadParam, q.K)
	}
	coef := make([]complex128, q.K-1)
	w := complex(1/float64(q.K-1), 0)
	for i := range coef {
		coef[i] = w
	}
	var m mgf.Mix
	m.AddTerm(complex(q.Beta, 0), coef)
	return m, nil
}

// SimulateMEK1 validates the analytic law by the Lindley recursion with
// exponential inter-arrivals and Erlang service.
func SimulateMEK1(q MEK1, n int, seed uint64, probes []float64) (*SimResult, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadParam, n)
	}
	res := newSimResult(probes, topKFor(n))
	r := newErlangSampler(q.K, q.Beta, seed)
	w := 0.0
	warmup := n / 10
	for i := 0; i < n+warmup; i++ {
		if i >= warmup {
			res.add(w)
		}
		w += r.service() - r.interarrival(q.Lambda)
		if w < 0 {
			w = 0
		}
	}
	return res, nil
}
