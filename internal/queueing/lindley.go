package queueing

import (
	"fmt"
	"math"

	"fpsping/internal/dist"
	"fpsping/internal/stats"
)

// SimResult summarizes a Lindley-recursion simulation: waiting-time moments
// and the machinery to read exact deep-tail quantiles and tail probabilities
// back out.
type SimResult struct {
	Summary stats.Summary
	top     *stats.TopK
	probes  []float64
	counts  []int
	n       int
}

// TailAt returns the empirical P(W > probe) for the i-th configured probe.
func (r *SimResult) TailAt(i int) float64 {
	return float64(r.counts[i]) / float64(r.n)
}

// Probes returns the configured probe points.
func (r *SimResult) Probes() []float64 { return r.probes }

// Quantile returns the exact empirical p-quantile, provided the retained
// top-k covers it.
func (r *SimResult) Quantile(p float64) (float64, error) { return r.top.Quantile(p) }

func newSimResult(probes []float64, topk int) *SimResult {
	tk, _ := stats.NewTopK(topk)
	return &SimResult{top: tk, probes: probes, counts: make([]int, len(probes))}
}

func (r *SimResult) add(w float64) {
	r.Summary.Add(w)
	r.top.Add(w)
	r.n++
	for i, p := range r.probes {
		if w > p {
			r.counts[i]++
		}
	}
}

// SimulateMD1 runs n customers through an M/D/1 queue by the Lindley
// recursion W_{k+1} = max(0, W_k + S - A_k) and records waiting times at
// arrivals (PASTA makes these match time averages). probes are tail points
// to count exceedances at.
func SimulateMD1(q MD1, n int, seed uint64, probes []float64) (*SimResult, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadParam, n)
	}
	r := dist.NewRNG(seed)
	res := newSimResult(probes, topKFor(n))
	w := 0.0
	warmup := n / 10
	for i := 0; i < n+warmup; i++ {
		if i >= warmup {
			res.add(w)
		}
		a := r.ExpFloat64() / q.Lambda
		w += q.S - a
		if w < 0 {
			w = 0
		}
	}
	return res, nil
}

// SimulateDEK1 runs n bursts through a D/E_K/1 queue and records both the
// burst waiting times and, for one uniformly placed tagged packet per burst,
// the total packet delay (burst wait + position delay within the burst).
// It returns (burst waits, packet delays).
func SimulateDEK1(q DEK1, n int, seed uint64, burstProbes, packetProbes []float64) (*SimResult, *SimResult, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("%w: n=%d", ErrBadParam, n)
	}
	erl, err := dist.NewErlang(q.K, q.Beta())
	if err != nil {
		return nil, nil, err
	}
	r := dist.NewRNG(seed)
	bursts := newSimResult(burstProbes, topKFor(n))
	packets := newSimResult(packetProbes, topKFor(n))
	w := 0.0
	warmup := n / 10
	for i := 0; i < n+warmup; i++ {
		b := erl.Sample(r)
		if i >= warmup {
			bursts.add(w)
			u := r.Float64()
			packets.add(w + u*b)
		}
		w += b - q.T
		if w < 0 {
			w = 0
		}
	}
	return bursts, packets, nil
}

// SimulateNDD1 estimates the stationary workload survival function of an
// N*D/D/1 queue. Each replication draws fresh uniform phases for the N
// periodic sources, plays `cycles` periods through the Lindley recursion
// (after a warmup), and samples the virtual waiting time at Poisson-like
// random probe instants; replications make the phase ensemble stationary.
// The returned waits are the virtual waiting times in seconds.
func SimulateNDD1(q NDD1, reps, cycles int, seed uint64, probes []float64) (*SimResult, error) {
	if reps < 1 || cycles < 2 {
		return nil, fmt.Errorf("%w: reps=%d cycles=%d", ErrBadParam, reps, cycles)
	}
	r := dist.NewRNG(seed)
	res := newSimResult(probes, topKFor(reps*cycles))
	tau := q.ServiceTime()
	phases := make([]float64, q.N)
	arrivals := make([]float64, 0, q.N*cycles)
	for rep := 0; rep < reps; rep++ {
		for i := range phases {
			phases[i] = r.Float64() * q.D
		}
		arrivals = arrivals[:0]
		for c := 0; c < cycles; c++ {
			for _, ph := range phases {
				arrivals = append(arrivals, float64(c)*q.D+ph)
			}
		}
		sortFloats(arrivals)
		// Lindley over sorted arrivals; v(t) tracked between arrivals to
		// sample the virtual wait at one uniform instant per period.
		w := 0.0
		prev := 0.0
		warmupTime := q.D * float64(cycles) / 5
		nextSample := warmupTime + r.Float64()*q.D
		for _, t := range arrivals {
			// Virtual waiting time decays linearly between arrivals.
			for nextSample < t {
				v := w - (nextSample - prev)
				if v < 0 {
					v = 0
				}
				if nextSample >= warmupTime {
					res.add(v)
				}
				nextSample += q.D * (0.5 + r.Float64())
			}
			w -= t - prev
			if w < 0 {
				w = 0
			}
			w += tau
			prev = t
		}
	}
	return res, nil
}

func topKFor(n int) int {
	// Keep enough order statistics for a 1e-5 quantile with headroom.
	k := n / 10_000
	if k < 1000 {
		k = 1000
	}
	if k > 200_000 {
		k = 200_000
	}
	return k
}

func sortFloats(xs []float64) {
	// Insertion-friendly sizes are rare here; use pdqsort via the sort pkg.
	// Separate function keeps the call site tidy.
	if len(xs) > 1 {
		quickSort(xs, 0, len(xs)-1)
	}
}

// quickSort is a three-way quicksort with median-of-three pivoting; it avoids
// pulling in sort.Float64s' interface overhead in the hot simulation path.
func quickSort(xs []float64, lo, hi int) {
	for hi-lo > 12 {
		mid := lo + (hi-lo)/2
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		pivot := xs[mid]
		i, j := lo, hi
		for i <= j {
			for xs[i] < pivot {
				i++
			}
			for xs[j] > pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		// Recurse into the smaller side, loop on the larger.
		if j-lo < hi-i {
			quickSort(xs, lo, j)
			lo = i
		} else {
			quickSort(xs, i, hi)
			hi = j
		}
	}
	for i := lo + 1; i <= hi; i++ {
		for j := i; j > lo && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// mcTol returns a Monte-Carlo comparison tolerance: s sigmas of a binomial
// proportion estimate at level p with n samples.
func mcTol(p float64, n int, s float64) float64 {
	if p < 0 {
		p = 0
	}
	return s*math.Sqrt(p*(1-p)/float64(n)) + 1e-9
}
