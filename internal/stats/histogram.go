package stats

import (
	"fmt"
	"math"
)

// Histogram counts samples in equal-width bins over [Lo, Hi); values outside
// the range are tallied in underflow/overflow counters. Färber's least-squares
// fits (reproduced by the fit package) match a candidate density against a
// histogram like this one.
type Histogram struct {
	Lo, Hi    float64
	counts    []int
	total     int
	underflow int
	overflow  int
}

// NewHistogram builds an empty histogram with n equal bins on [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if !(lo < hi) || n < 1 {
		return nil, fmt.Errorf("stats: invalid histogram [%g,%g)/%d", lo, hi, n)
	}
	return &Histogram{Lo: lo, Hi: hi, counts: make([]int, n)}, nil
}

// HistogramFromData chooses a range and bin count from the data: the range is
// [min, max] stretched a hair, and the bin count follows the Freedman-
// Diaconis rule with a sqrt-rule fallback.
func HistogramFromData(xs []float64) (*Histogram, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	s := Describe(xs)
	lo, hi := s.Min(), s.Max()
	if lo == hi {
		hi = lo + 1
	}
	q1, _ := Quantile(xs, 0.25)
	q3, _ := Quantile(xs, 0.75)
	iqr := q3 - q1
	n := 0
	if iqr > 0 {
		width := 2 * iqr / math.Cbrt(float64(len(xs)))
		n = int(math.Ceil((hi - lo) / width))
	}
	if n < 1 || n > 10_000 {
		n = int(math.Ceil(math.Sqrt(float64(len(xs)))))
	}
	if n < 1 {
		n = 1
	}
	h, err := NewHistogram(lo, hi*(1+1e-12)+1e-300, n)
	if err != nil {
		return nil, err
	}
	h.AddAll(xs)
	return h, nil
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// Add tallies one sample.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.underflow++
	case x >= h.Hi:
		h.overflow++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.counts)))
		if i >= len(h.counts) { // guard float rounding at the top edge
			i = len(h.counts) - 1
		}
		h.counts[i]++
	}
	h.total++
}

// AddAll tallies every sample in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Count returns the number of samples in bin i.
func (h *Histogram) Count(i int) int { return h.counts[i] }

// Total returns the number of samples seen, including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// Underflow returns the count of samples below Lo.
func (h *Histogram) Underflow() int { return h.underflow }

// Overflow returns the count of samples at or above Hi.
func (h *Histogram) Overflow() int { return h.overflow }

// BinWidth returns the common bin width.
func (h *Histogram) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.counts)) }

// Center returns the midpoint of bin i.
func (h *Histogram) Center(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth()
}

// Density returns the normalized density estimate at bin i, so that the sum
// of Density(i)*BinWidth() over in-range bins approaches the in-range
// probability mass. It is the experimental PDF Färber fitted against.
func (h *Histogram) Density(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[i]) / (float64(h.total) * h.BinWidth())
}

// Densities returns the density estimate for every bin.
func (h *Histogram) Densities() []float64 {
	out := make([]float64, len(h.counts))
	for i := range out {
		out[i] = h.Density(i)
	}
	return out
}

// Centers returns every bin midpoint.
func (h *Histogram) Centers() []float64 {
	out := make([]float64, len(h.counts))
	for i := range out {
		out[i] = h.Center(i)
	}
	return out
}
