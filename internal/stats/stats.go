// Package stats provides the descriptive statistics the paper's measurement
// methodology uses: mean/CoV summaries (Tables 1-3), histograms and empirical
// tail distribution functions (Figure 1), streaming quantile estimation for
// simulator output, and goodness-of-fit tests for the fitted traffic models.
package stats

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"
)

// ErrEmpty reports an operation on an empty data set.
var ErrEmpty = errors.New("stats: empty data")

// Summary accumulates moments online (Welford's algorithm) so traces never
// need to be buffered just to report Table-3 style statistics.
type Summary struct {
	n        int
	mean     float64
	m2       float64
	min, max float64
}

// Add folds x into the summary.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// AddAll folds every value of xs into the summary.
func (s *Summary) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// Merge combines another summary into s (parallel Welford merge).
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	mean := s.mean + delta*float64(o.n)/float64(n)
	m2 := s.m2 + o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}

// Count returns the number of samples folded in.
func (s *Summary) Count() int { return s.n }

// Mean returns the sample mean (NaN when empty).
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.mean
}

// Variance returns the unbiased sample variance (NaN for n < 2).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return math.NaN()
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// CoV returns the coefficient of variation (std dev / mean): the statistic
// the paper's Tables 1-3 report alongside the mean.
func (s *Summary) CoV() float64 {
	m := s.Mean()
	if m == 0 {
		return math.Inf(1)
	}
	return s.StdDev() / math.Abs(m)
}

// Min returns the smallest sample (NaN when empty).
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest sample (NaN when empty).
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// String renders the summary in the mean/CoV form used by the paper's tables.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g cov=%.4g min=%.4g max=%.4g",
		s.n, s.Mean(), s.CoV(), s.Min(), s.Max())
}

// Describe summarizes xs in one call.
func Describe(xs []float64) Summary {
	var s Summary
	s.AddAll(xs)
	return s
}

// Quantile returns the p-quantile of xs (0 < p <= 1) using the
// order-statistic (lower) convention; xs need not be sorted.
func Quantile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := slices.Clone(xs)
	sort.Float64s(s)
	return SortedQuantile(s, p), nil
}

// SortedQuantile is Quantile for data already sorted ascending.
func SortedQuantile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	i := int(math.Ceil(p*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return sorted[i]
}

// ECDF is the empirical cumulative distribution of a sample, with the tail
// (TDF) view the paper plots in Figure 1.
type ECDF struct {
	sorted []float64
}

// NewECDF copies and sorts xs.
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	s := slices.Clone(xs)
	sort.Float64s(s)
	return &ECDF{sorted: s}, nil
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// CDF returns the fraction of samples <= x.
func (e *ECDF) CDF(x float64) float64 {
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(i) / float64(len(e.sorted))
}

// Tail returns the fraction of samples > x (the TDF of Figure 1).
func (e *ECDF) Tail(x float64) float64 {
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(len(e.sorted)-i) / float64(len(e.sorted))
}

// TDFSeries evaluates the tail distribution function on a regular grid of n
// points from lo to hi: the series behind Figure 1.
func (e *ECDF) TDFSeries(lo, hi float64, n int) (xs, tdf []float64) {
	xs = make([]float64, n)
	tdf = make([]float64, n)
	for i := 0; i < n; i++ {
		x := lo
		if n > 1 {
			x = lo + (hi-lo)*float64(i)/float64(n-1)
		}
		xs[i] = x
		tdf[i] = e.Tail(x)
	}
	return xs, tdf
}

// Quantile returns the order statistic at level p.
func (e *ECDF) Quantile(p float64) float64 { return SortedQuantile(e.sorted, p) }
