package stats

import (
	"fmt"
	"math"
	"sort"
)

// PQuantile estimates a single quantile online with the P-squared algorithm
// (Jain & Chlamtac 1985) in O(1) memory. The simulator uses it to track RTT
// quantiles over tens of millions of packets without buffering them.
//
// For extreme quantiles (the paper's 99.999%) the estimator converges slowly;
// the simulator keeps exact top-k order statistics for those instead (see
// TopK), but PQuantile remains useful for medians and 99th percentiles.
type PQuantile struct {
	p       float64
	n       int
	heights [5]float64 // marker heights
	pos     [5]float64 // marker positions (1-based)
	want    [5]float64 // desired positions
	dn      [5]float64 // desired position increments
	initial []float64
}

// NewPQuantile returns an estimator of the p-quantile, 0 < p < 1.
func NewPQuantile(p float64) (*PQuantile, error) {
	if !(p > 0 && p < 1) {
		return nil, fmt.Errorf("stats: p-quantile level %g out of (0,1)", p)
	}
	q := &PQuantile{p: p}
	q.dn = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return q, nil
}

// Add folds one observation into the estimate.
func (q *PQuantile) Add(x float64) {
	q.n++
	if len(q.initial) < 5 {
		q.initial = append(q.initial, x)
		if len(q.initial) == 5 {
			sort.Float64s(q.initial)
			copy(q.heights[:], q.initial)
			q.pos = [5]float64{1, 2, 3, 4, 5}
			q.want = [5]float64{1, 1 + 2*q.p, 1 + 4*q.p, 3 + 2*q.p, 5}
		}
		return
	}

	// Locate the cell containing x and bump marker positions.
	var k int
	switch {
	case x < q.heights[0]:
		q.heights[0] = x
		k = 0
	case x >= q.heights[4]:
		q.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < q.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := range q.want {
		q.want[i] += q.dn[i]
	}

	// Adjust the three interior markers with parabolic interpolation.
	for i := 1; i <= 3; i++ {
		d := q.want[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := q.parabolic(i, sign)
			if q.heights[i-1] < h && h < q.heights[i+1] {
				q.heights[i] = h
			} else {
				q.heights[i] = q.linear(i, sign)
			}
			q.pos[i] += sign
		}
	}
}

func (q *PQuantile) parabolic(i int, d float64) float64 {
	num1 := q.pos[i] - q.pos[i-1] + d
	num2 := q.pos[i+1] - q.pos[i] - d
	den := q.pos[i+1] - q.pos[i-1]
	a := (q.heights[i+1] - q.heights[i]) / (q.pos[i+1] - q.pos[i])
	b := (q.heights[i] - q.heights[i-1]) / (q.pos[i] - q.pos[i-1])
	return q.heights[i] + d/den*(num1*a+num2*b)
}

func (q *PQuantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return q.heights[i] + d*(q.heights[j]-q.heights[i])/(q.pos[j]-q.pos[i])
}

// Count returns the number of observations folded in.
func (q *PQuantile) Count() int { return q.n }

// Value returns the current quantile estimate.
func (q *PQuantile) Value() float64 {
	if q.n == 0 {
		return math.NaN()
	}
	if len(q.initial) < 5 {
		s := append([]float64(nil), q.initial...)
		sort.Float64s(s)
		return SortedQuantile(s, q.p)
	}
	return q.heights[2]
}

// TopK keeps the k largest observations seen so far, allowing exact deep-tail
// quantiles (e.g. the 99.999th percentile of 10^7 RTT samples needs the top
// 100 values) in O(k) memory. A binary min-heap holds the current top set.
type TopK struct {
	k    int
	n    int
	heap []float64 // min-heap of the k largest values
}

// NewTopK returns a tracker of the k largest values, k >= 1.
func NewTopK(k int) (*TopK, error) {
	if k < 1 {
		return nil, fmt.Errorf("stats: top-k needs k >= 1, got %d", k)
	}
	return &TopK{k: k, heap: make([]float64, 0, k)}, nil
}

// Add offers one observation.
func (t *TopK) Add(x float64) {
	t.n++
	if len(t.heap) < t.k {
		t.heap = append(t.heap, x)
		t.up(len(t.heap) - 1)
		return
	}
	if x <= t.heap[0] {
		return
	}
	t.heap[0] = x
	t.down(0)
}

func (t *TopK) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if t.heap[parent] <= t.heap[i] {
			break
		}
		t.heap[parent], t.heap[i] = t.heap[i], t.heap[parent]
		i = parent
	}
}

func (t *TopK) down(i int) {
	n := len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && t.heap[l] < t.heap[smallest] {
			smallest = l
		}
		if r < n && t.heap[r] < t.heap[smallest] {
			smallest = r
		}
		if smallest == i {
			return
		}
		t.heap[i], t.heap[smallest] = t.heap[smallest], t.heap[i]
		i = smallest
	}
}

// Count returns the number of observations offered.
func (t *TopK) Count() int { return t.n }

// Merge folds another tracker's retained values and count into t. The union
// of two top-k sets contains the top-k of the merged population, so merged
// quantile queries stay exact within the (smaller) combined retention.
func (t *TopK) Merge(o *TopK) {
	for _, v := range o.heap {
		t.n++ // Add increments n once more below via direct path
		if len(t.heap) < t.k {
			t.heap = append(t.heap, v)
			t.up(len(t.heap) - 1)
			continue
		}
		if v > t.heap[0] {
			t.heap[0] = v
			t.down(0)
		}
	}
	// Account for the observations o saw beyond its retained set.
	t.n += o.n - len(o.heap)
}

// Quantile returns the exact p-quantile provided enough of the tail is
// retained: it requires (1-p)*Count() <= k. Otherwise it returns an error.
func (t *TopK) Quantile(p float64) (float64, error) {
	if t.n == 0 {
		return 0, ErrEmpty
	}
	// Rank from the top: the p-quantile is the r-th largest value with
	// r = n - ceil(p*n) + 1.
	r := t.n - int(math.Ceil(p*float64(t.n))) + 1
	if r < 1 {
		r = 1
	}
	if r > len(t.heap) {
		return 0, fmt.Errorf("stats: top-%d holds too little tail for p=%v with n=%d", t.k, p, t.n)
	}
	s := append([]float64(nil), t.heap...)
	sort.Sort(sort.Reverse(sort.Float64Slice(s)))
	return s[r-1], nil
}

// Largest returns the maximum seen so far.
func (t *TopK) Largest() (float64, error) {
	if len(t.heap) == 0 {
		return 0, ErrEmpty
	}
	max := t.heap[0]
	for _, v := range t.heap {
		if v > max {
			max = v
		}
	}
	return max, nil
}
