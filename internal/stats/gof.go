package stats

import (
	"fmt"
	"math"
	"sort"

	"fpsping/internal/xmath"
)

// KSResult reports a one-sample Kolmogorov-Smirnov test.
type KSResult struct {
	// D is the supremum distance between the empirical CDF and the model CDF.
	D float64
	// N is the sample size.
	N int
	// P is the asymptotic p-value (Kolmogorov distribution); small P rejects
	// the hypothesis that the sample comes from the model.
	P float64
}

// KolmogorovSmirnov computes the one-sample KS statistic of xs against the
// model CDF. The fit package uses it to rank candidate traffic models, as
// Färber ranked extreme vs. lognormal vs. Weibull fits.
func KolmogorovSmirnov(xs []float64, cdf func(float64) float64) (KSResult, error) {
	n := len(xs)
	if n == 0 {
		return KSResult{}, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	d := 0.0
	for i, x := range s {
		c := cdf(x)
		upper := float64(i+1)/float64(n) - c
		lower := c - float64(i)/float64(n)
		if upper > d {
			d = upper
		}
		if lower > d {
			d = lower
		}
	}
	return KSResult{D: d, N: n, P: ksPValue(d, n)}, nil
}

// ksPValue evaluates the asymptotic Kolmogorov distribution
// Q(lambda) = 2 sum (-1)^{j-1} exp(-2 j^2 lambda^2) at the effective lambda.
func ksPValue(d float64, n int) float64 {
	if d <= 0 {
		return 1
	}
	en := math.Sqrt(float64(n))
	lambda := (en + 0.12 + 0.11/en) * d
	sum := 0.0
	sign := 1.0
	for j := 1; j <= 100; j++ {
		term := sign * math.Exp(-2*float64(j)*float64(j)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	return xmath.Clamp(2*sum, 0, 1)
}

// ChiSquareResult reports a chi-square goodness-of-fit test.
type ChiSquareResult struct {
	// Stat is the chi-square statistic over the used bins.
	Stat float64
	// DoF is the degrees of freedom (bins - 1 - fitted parameters).
	DoF int
	// P is the tail probability of the chi-square distribution at Stat.
	P float64
	// Bins is the number of bins actually used (after merging sparse bins).
	Bins int
}

// ChiSquare tests histogram h against a model CDF, merging adjacent bins
// until every expected count reaches 5. fittedParams is subtracted from the
// degrees of freedom.
func ChiSquare(h *Histogram, cdf func(float64) float64, fittedParams int) (ChiSquareResult, error) {
	if h.Total() == 0 {
		return ChiSquareResult{}, ErrEmpty
	}
	type cell struct {
		observed float64
		expected float64
	}
	n := float64(h.Total())
	var cells []cell
	w := h.BinWidth()
	var accO, accE float64
	for i := 0; i < h.Bins(); i++ {
		lo := h.Lo + float64(i)*w
		hi := lo + w
		accO += float64(h.Count(i))
		accE += n * (cdf(hi) - cdf(lo))
		if accE >= 5 {
			cells = append(cells, cell{accO, accE})
			accO, accE = 0, 0
		}
	}
	// Fold underflow/overflow and any remainder into the edge cells.
	accO += float64(h.Underflow() + h.Overflow())
	accE += n * (1 - (cdf(h.Hi) - cdf(h.Lo)))
	if len(cells) == 0 {
		cells = append(cells, cell{accO, math.Max(accE, 1e-12)})
	} else if accE > 0 || accO > 0 {
		cells[len(cells)-1].observed += accO
		cells[len(cells)-1].expected += accE
	}
	if len(cells) < 2 {
		return ChiSquareResult{}, fmt.Errorf("stats: chi-square needs >= 2 usable bins, got %d", len(cells))
	}
	stat := 0.0
	for _, c := range cells {
		if c.expected <= 0 {
			continue
		}
		d := c.observed - c.expected
		stat += d * d / c.expected
	}
	dof := len(cells) - 1 - fittedParams
	if dof < 1 {
		dof = 1
	}
	return ChiSquareResult{
		Stat: stat,
		DoF:  dof,
		P:    xmath.GammaQ(float64(dof)/2, stat/2),
		Bins: len(cells),
	}, nil
}

// Autocorrelation returns the lag-k sample autocorrelation of xs; the trace
// analysis uses it to verify burst inter-arrival independence assumptions.
func Autocorrelation(xs []float64, lag int) (float64, error) {
	n := len(xs)
	if n == 0 {
		return 0, ErrEmpty
	}
	if lag < 0 || lag >= n {
		return 0, fmt.Errorf("stats: lag %d out of range for n=%d", lag, n)
	}
	s := Describe(xs)
	mean := s.Mean()
	var num, den float64
	for i := 0; i < n-lag; i++ {
		num += (xs[i] - mean) * (xs[i+lag] - mean)
	}
	for i := 0; i < n; i++ {
		den += (xs[i] - mean) * (xs[i] - mean)
	}
	if den == 0 {
		return 0, nil
	}
	return num / den, nil
}
