package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"fpsping/internal/dist"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Count() != 8 {
		t.Fatalf("count = %d", s.Count())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v", s.Mean())
	}
	// Sample variance with n-1: sum sq dev = 32, /7.
	if math.Abs(s.Variance()-32.0/7) > 1e-12 {
		t.Errorf("variance = %v", s.Variance())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if math.Abs(s.CoV()-s.StdDev()/5) > 1e-15 {
		t.Errorf("cov = %v", s.CoV())
	}
}

func TestSummaryEmptyIsNaN(t *testing.T) {
	var s Summary
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Variance()) || !math.IsNaN(s.Min()) {
		t.Error("empty summary should report NaN")
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	f := func(a, b []float64) bool {
		// Welford's merge squares deltas; inputs near MaxFloat64 overflow
		// by design, so bound the domain rather than the implementation.
		clamp := func(xs []float64) []float64 {
			out := xs[:0]
			for _, x := range xs {
				if math.Abs(x) < 1e150 {
					out = append(out, x)
				}
			}
			return out
		}
		a, b = clamp(a), clamp(b)
		var s1, s2, sm Summary
		s1.AddAll(a)
		s2.AddAll(b)
		sm = s1
		sm.Merge(s2)
		var seq Summary
		seq.AddAll(a)
		seq.AddAll(b)
		if sm.Count() != seq.Count() {
			return false
		}
		if sm.Count() == 0 {
			return true
		}
		if math.Abs(sm.Mean()-seq.Mean()) > 1e-9*(1+math.Abs(seq.Mean())) {
			return false
		}
		if sm.Count() > 1 && math.Abs(sm.Variance()-seq.Variance()) > 1e-6*(1+seq.Variance()) {
			return false
		}
		return sm.Min() == seq.Min() && sm.Max() == seq.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5, 10}
	q, err := Quantile(xs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q != 5 {
		t.Errorf("median = %v", q)
	}
	q, _ = Quantile(xs, 1)
	if q != 10 {
		t.Errorf("max quantile = %v", q)
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Errorf("want ErrEmpty, got %v", err)
	}
}

func TestECDF(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if e.CDF(2.5) != 0.5 || e.Tail(2.5) != 0.5 {
		t.Errorf("CDF/Tail(2.5) = %v/%v", e.CDF(2.5), e.Tail(2.5))
	}
	if e.CDF(0) != 0 || e.Tail(4) != 0 {
		t.Error("edges wrong")
	}
	xs, tdf := e.TDFSeries(0, 4, 5)
	if len(xs) != 5 || tdf[0] != 1 || tdf[4] != 0 {
		t.Errorf("TDF series %v %v", xs, tdf)
	}
}

func TestHistogramDensityNormalizes(t *testing.T) {
	r := dist.NewRNG(3)
	e, _ := dist.NewExponential(1)
	xs := dist.SampleN(e, r, 50_000)
	h, err := HistogramFromData(xs)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i := 0; i < h.Bins(); i++ {
		sum += h.Density(i) * h.BinWidth()
	}
	if math.Abs(sum-1) > 0.01 {
		t.Errorf("density mass = %v", sum)
	}
	if h.Total() != len(xs) {
		t.Errorf("total = %d", h.Total())
	}
}

func TestHistogramEdges(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(-1)
	h.Add(10)
	h.Add(9.999999)
	h.Add(0)
	if h.Underflow() != 1 || h.Overflow() != 1 {
		t.Errorf("under/over = %d/%d", h.Underflow(), h.Overflow())
	}
	if h.Count(9) != 1 || h.Count(0) != 1 {
		t.Errorf("edge bins: %d %d", h.Count(9), h.Count(0))
	}
	if h.Center(0) != 0.5 {
		t.Errorf("center = %v", h.Center(0))
	}
}

func TestPQuantileConvergesOnUniform(t *testing.T) {
	r := dist.NewRNG(11)
	for _, p := range []float64{0.5, 0.9, 0.99} {
		q, err := NewPQuantile(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200_000; i++ {
			q.Add(r.Float64())
		}
		if math.Abs(q.Value()-p) > 0.01 {
			t.Errorf("p=%v estimate=%v", p, q.Value())
		}
	}
}

func TestPQuantileSmallSamples(t *testing.T) {
	q, _ := NewPQuantile(0.5)
	q.Add(3)
	q.Add(1)
	q.Add(2)
	if v := q.Value(); v != 2 {
		t.Errorf("small-sample median = %v", v)
	}
	if _, err := NewPQuantile(0); err == nil {
		t.Error("accepted p=0")
	}
}

func TestTopKExactQuantile(t *testing.T) {
	// Feed a permutation of 1..n and ask for deep quantiles.
	const n = 10_000
	r := dist.NewRNG(5)
	perm := r.Perm(n)
	tk, err := NewTopK(200)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]float64, n)
	for i, v := range perm {
		x := float64(v + 1)
		all[i] = x
		tk.Add(x)
	}
	sort.Float64s(all)
	for _, p := range []float64{0.99, 0.999, 0.9999} {
		got, err := tk.Quantile(p)
		if err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
		want := SortedQuantile(all, p)
		if got != want {
			t.Errorf("p=%v: got %v want %v", p, got, want)
		}
	}
	if _, err := tk.Quantile(0.5); err == nil {
		t.Error("median from top-200 of 10000 should fail")
	}
	max, err := tk.Largest()
	if err != nil || max != n {
		t.Errorf("largest = %v, %v", max, err)
	}
}

func TestTopKPropertyMatchesSort(t *testing.T) {
	f := func(raw []float64, ki uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) {
				return true
			}
		}
		k := 1 + int(ki%16)
		tk, _ := NewTopK(k)
		for _, v := range raw {
			tk.Add(v)
		}
		s := append([]float64(nil), raw...)
		sort.Float64s(s)
		// The max must always agree.
		max, err := tk.Largest()
		return err == nil && max == s[len(s)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKolmogorovSmirnovAcceptsTrueModel(t *testing.T) {
	r := dist.NewRNG(21)
	g, _ := dist.NewGumbel(55, 6)
	xs := dist.SampleN(g, r, 5000)
	res, err := KolmogorovSmirnov(xs, g.CDF)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.001 {
		t.Errorf("true model rejected: D=%v P=%v", res.D, res.P)
	}
	// And rejects a clearly wrong model.
	e, _ := dist.NewExponential(1.0 / 60)
	res2, _ := KolmogorovSmirnov(xs, e.CDF)
	if res2.P > 1e-6 {
		t.Errorf("wrong model accepted: D=%v P=%v", res2.D, res2.P)
	}
	if res2.D <= res.D {
		t.Error("wrong model should have larger distance")
	}
}

func TestChiSquareAcceptsTrueModel(t *testing.T) {
	r := dist.NewRNG(31)
	n, _ := dist.NewNormal(100, 15)
	xs := dist.SampleN(n, r, 20_000)
	h, err := HistogramFromData(xs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ChiSquare(h, n.CDF, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 1e-4 {
		t.Errorf("true model rejected: stat=%v dof=%d P=%v", res.Stat, res.DoF, res.P)
	}
	u, _ := dist.NewUniform(40, 160)
	res2, err := ChiSquare(h, u.CDF, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.P > 1e-9 {
		t.Errorf("wrong model accepted: P=%v", res2.P)
	}
}

func TestAutocorrelation(t *testing.T) {
	// Alternating series has lag-1 autocorrelation near -1.
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i % 2)
	}
	ac, err := Autocorrelation(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ac > -0.99 {
		t.Errorf("lag-1 autocorr = %v", ac)
	}
	ac0, _ := Autocorrelation(xs, 0)
	if math.Abs(ac0-1) > 1e-12 {
		t.Errorf("lag-0 autocorr = %v", ac0)
	}
	if _, err := Autocorrelation(xs, len(xs)); err == nil {
		t.Error("accepted out-of-range lag")
	}
}

func BenchmarkSummaryAdd(b *testing.B) {
	var s Summary
	for i := 0; i < b.N; i++ {
		s.Add(float64(i % 1000))
	}
}

func BenchmarkTopKAdd(b *testing.B) {
	tk, _ := NewTopK(100)
	r := dist.NewRNG(1)
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk.Add(xs[i&4095])
	}
}

func TestTopKMergeExact(t *testing.T) {
	r := dist.NewRNG(77)
	a, _ := NewTopK(300)
	b, _ := NewTopK(300)
	var all []float64
	for i := 0; i < 5000; i++ {
		x := r.NormFloat64()
		all = append(all, x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.Count() != 5000 {
		t.Fatalf("merged count %d", a.Count())
	}
	sort.Float64s(all)
	for _, p := range []float64{0.99, 0.999} {
		got, err := a.Quantile(p)
		if err != nil {
			t.Fatal(err)
		}
		want := SortedQuantile(all, p)
		if got != want {
			t.Errorf("p=%v: merged %v want %v", p, got, want)
		}
	}
}
