package mgf

import (
	"math"
	"math/cmplx"
)

// The Appendix-A product Mul is exact in exact arithmetic but becomes
// ill-conditioned in float64 when poles of the two factors nearly coincide:
// the Taylor coefficients it expands through grow like
// (|p|/|p-q|)^order, amplifying coefficient rounding noise. In the paper's
// own setting this happens at low downstream load, where the D/E_K/1 poles
// alpha_j = beta(1-zeta_j) crowd around the packet-position pole beta as
// zeta_j -> 0.
//
// Sum is the numerically robust alternative: it represents the law of X+Y
// without expanding it, evaluating tails by direct convolution quadrature of
// the two stable factor representations. EstimateMulError quantifies the
// amplification so callers can pick the representation.

// EstimateMulError returns a rough bound on the absolute coefficient error
// Mul(a, b) would commit in float64, driven by near-coincident cross poles.
// A result below ~1e-9 means Mul is safe for tail work at the paper's 1e-5
// quantile level.
func EstimateMulError(a, b Mix) float64 {
	const eps = 2.220446049250313e-16
	amp := 0.0
	for _, ta := range a.Terms {
		for _, tb := range b.Terms {
			if samePole(ta.Pole, tb.Pole) {
				continue // exact merge, no amplification
			}
			gap := cmplx.Abs(ta.Pole - tb.Pole)
			ra := cmplx.Abs(ta.Pole) / gap
			rb := cmplx.Abs(tb.Pole) / gap
			var ma, mb float64
			for _, c := range ta.Coef {
				ma += cmplx.Abs(c)
			}
			for _, c := range tb.Coef {
				mb += cmplx.Abs(c)
			}
			// Principal part at ta.Pole uses Taylor coefficients of tb's
			// term ladder: magnitude ~ rb^(orderB+orderA); and vice versa.
			ordA, ordB := float64(len(ta.Coef)), float64(len(tb.Coef))
			amp += ma * mb * math.Pow(math.Max(rb, 1), ordA+ordB)
			amp += ma * mb * math.Pow(math.Max(ra, 1), ordA+ordB)
		}
	}
	return eps * amp
}

// Law is the read side of a delay distribution: Mix implements it in closed
// form and Sum implements it by quadrature, so sums can nest.
type Law interface {
	// Tail returns P(X > x).
	Tail(x float64) float64
	// Mean returns E[X].
	Mean() float64
	// TotalMass returns the total probability (1 for a normalized law).
	TotalMass() float64
}

// AtomOf returns the point mass at zero of any Law.
func AtomOf(l Law) float64 { return l.TotalMass() - l.Tail(0) }

// Sum is the law of X + Y for independent X ~ A and Y ~ B, kept in factored
// form. Tails are computed by convolution quadrature against A's density, so
// accuracy does not depend on pole separation (unlike Mul). Both factors
// must be normalized laws (mass 1). A should be the factor with the smaller
// continuous mass: its density scales the quadrature error.
type Sum struct {
	A Mix
	B Law
}

// Atom returns the probability mass at zero: both factors at zero.
func (s Sum) Atom() float64 { return s.A.Atom * AtomOf(s.B) }

// Mean returns E[X+Y].
func (s Sum) Mean() float64 { return s.A.Mean() + s.B.Mean() }

// TotalMass returns the product of the factor masses.
func (s Sum) TotalMass() float64 { return s.A.TotalMass() * s.B.TotalMass() }

// Tail returns P(X+Y > x):
//
//	A.Atom*B.Tail(x) + A.Tail(x) + int_0^x pdfA(u) B.Tail(x-u) du,
//
// the last term by composite Simpson quadrature with resolution tied to the
// sharpest decay rate of A. One-shot form of TailWS.
func (s Sum) Tail(x float64) float64 { return s.TailWS(x, nil) }

// sharpestDecay returns the largest pole magnitude of A: the sharpest decay
// rate, which sets the quadrature resolution. It depends only on the law, so
// batch evaluation hoists it out of the per-abscissa loop.
func (s Sum) sharpestDecay() float64 {
	sharp := 0.0
	for _, t := range s.A.Terms {
		if r := cmplx.Abs(t.Pole); r > sharp {
			sharp = r
		}
	}
	return sharp
}

// expResetStride is how many recurrence steps the grid evaluators take
// between exact cmplx.Exp re-anchors: the multiplicative error grows like
// stride*eps, so 64 keeps each grid value within ~1.5e-14 of direct
// evaluation while paying for one transcendental per 64 panels.
const expResetStride = 64

// TailWS is Tail with all per-law quadrature state drawn from ws (nil
// borrows a pooled workspace). When B is a closed-form Mix, evaluation
// routes through the workspace's shared-grid quadrature ladder (see
// ladder.go): pole pairs whose partial-fraction expansion is well-
// conditioned go through an exact closed form, crowded pairs through moment
// prefix sums on a grid whose panel width is a function of the law alone —
// so consecutive abscissae of a bracket walk share all Simpson work.
// Abscissae outside the ladder's panel clamps, and laws whose shape the
// ladder does not carry, use the per-abscissa Simpson grids with the
// exponential-recurrence fills (e^{-p u_{i+1}} = e^{-p u_i}·e^{-p h},
// re-anchored by an exact cmplx.Exp every expResetStride steps). A
// nested-Sum B walks point by point, threading ws into the inner law.
func (s Sum) TailWS(x float64, ws *Workspace) float64 {
	return s.tailAt(x, ws, s.sharpestDecay())
}

// TailBatchWS evaluates the tail at every abscissa in xs, writing
// P(X+Y > xs[i]) into out[i] (len(out) must be >= len(xs)). Each result is
// bit-identical to a standalone TailWS call: every value the ladder (or the
// per-abscissa fallback) produces is a pure function of the law and the
// abscissa, never of the visit order. What the batch amortizes is the
// per-probe overhead — one workspace borrow, one decay-rate scan, one
// ladder-tag check per probe instead of a pool round-trip — on top of the
// ladder's own prefix sharing across the batch's abscissae.
func (s Sum) TailBatchWS(xs []float64, out []float64, ws *Workspace) {
	ws, pooled := borrowWS(ws)
	if pooled {
		defer releaseWS(ws)
	}
	sharp := s.sharpestDecay()
	for i, x := range xs {
		out[i] = s.tailAt(x, ws, sharp)
	}
}

// tailAt is TailWS with the decay-rate scan hoisted: sharp must be
// s.sharpestDecay(). Batch callers compute it once per law.
func (s Sum) tailAt(x float64, ws *Workspace, sharp float64) float64 {
	if x < 0 {
		return s.TotalMass()
	}
	if x == 0 {
		return s.TotalMass() - s.Atom()
	}
	ws, pooled := borrowWS(ws)
	if pooled {
		defer releaseWS(ws)
	}
	bmix, fast := s.B.(Mix)
	if !fast {
		return s.tailSlow(x, ws, sharp)
	}
	if len(s.A.Terms) > 0 {
		if ld := ws.ladderFor(s.A, bmix, sharp); ld != nil {
			if v, ok := ld.tailAt(x); ok {
				return v // the ladder's closed part includes the head terms
			}
		}
	}
	return s.tailGrid(x, bmix, ws, sharp)
}

// tailGrid is the per-abscissa Simpson path: a fresh grid with panel width
// x/n, filled by the exponential-recurrence evaluators. It serves abscissae
// outside the ladder's panel clamps and laws the ladder rejects, and is the
// reference scheme the ladder's equivalence gate compares against.
func (s Sum) tailGrid(x float64, bmix Mix, ws *Workspace, sharp float64) float64 {
	bx := bmix.Tail(x) // shared by the head and the u=0 boundary term
	head := s.A.Atom*bx + s.A.Tail(x)
	if len(s.A.Terms) == 0 {
		return head
	}
	n := panelCount(sharp, x)
	h := x / float64(n)
	pdfG := fbuf(&ws.pdf, n)   // pdfG[i] = density of A at u_i = h*i, i = 1..n-1
	tailG := fbuf(&ws.tail, n) // tailG[i] = tail of B at x - u_i
	gridPDF(s.A, h, n, pdfG)
	gridTail(bmix, x, h, n, tailG)
	acc := s.A.PDF(0)*bx + s.A.PDF(x)*bmix.Tail(0)
	for i := 1; i < n; i++ {
		w := 2.0
		if i%2 == 1 {
			w = 4
		}
		acc += w * pdfG[i] * tailG[i]
	}
	return head + acc*h/3
}

// panelCount is the per-abscissa composite-Simpson panel count: 64 panels
// per decay length of A in [0, x], clamped to [512, 32768], rounded to even.
func panelCount(sharp, x float64) int {
	n := int(64 * (1 + sharp*x))
	if n < 512 {
		n = 512
	}
	if n > 32768 {
		n = 32768
	}
	if n%2 == 1 {
		n++
	}
	return n
}

// tailSlow handles a B that is not a closed-form Mix — in practice a nested
// Sum, whose tail is itself a quadrature — by walking the outer Simpson grid
// point by point. The walk draws on the caller's (or one pooled) Workspace
// like the fast path: a nested Sum threads ws into every inner tail, so the
// inner law's ladder and grid buffers are built once and shared across the
// outer grid's n points instead of borrowing a fresh pool workspace per
// point.
func (s Sum) tailSlow(x float64, ws *Workspace, sharp float64) float64 {
	btail := s.B.Tail
	if bs, ok := s.B.(Sum); ok {
		bsharp := bs.sharpestDecay()
		btail = func(v float64) float64 { return bs.tailAt(v, ws, bsharp) }
	}
	bx := btail(x)
	head := s.A.Atom*bx + s.A.Tail(x)
	if len(s.A.Terms) == 0 {
		return head
	}
	n := panelCount(sharp, x)
	h := x / float64(n)
	acc := s.A.PDF(0)*bx + s.A.PDF(x)*btail(0)
	for i := 1; i < n; i++ {
		w := 2.0
		if i%2 == 1 {
			w = 4
		}
		u := h * float64(i)
		acc += w * s.A.PDF(u) * btail(x-u)
	}
	return head + acc*h/3
}

// isRealTerm reports whether every number in t is purely real (imaginary
// parts exactly zero). Real terms — every D/E_K/1 dominant root's term, the
// M/M/1 upstream terms and the packet-position ladder — take float64 fast
// paths in the grid evaluators below: the complex arithmetic they replace
// propagates exact signed-zero imaginary parts through every product, sum
// and exponential, so the float64 mirror of the real components is
// bit-identical, not approximately equal.
func isRealTerm(t Term) bool {
	if imag(t.Pole) != 0 {
		return false
	}
	for _, c := range t.Coef {
		if imag(c) != 0 {
			return false
		}
	}
	return true
}

// divRe divides z by a real divisor componentwise. For a divisor with exact
// zero imaginary part the runtime's scaled (Smith) complex division reduces
// to exactly this — the cross ratio is a signed zero, so both quotient
// components round identically — making the substitution bit-identical while
// skipping the division's magnitude tests and scaling branches.
func divRe(z complex128, d float64) complex128 {
	return complex(real(z)/d, imag(z)/d)
}

// gridPDF accumulates the density of m at the interior grid points
// u_i = h*i, i = 1..n-1, into g. Per term, e^{-p u} advances by one
// multiplication per step with exact re-anchors (see expResetStride); the
// Erlang ladder on top is the same arithmetic as Mix.PDF. Purely real terms
// run in float64 (see isRealTerm); complex single-coefficient terms skip the
// ladder entirely; the final ladder advance of every term is dead and
// elided. All three shortcuts are bit-identical to the plain loop.
//
// g holds only the real components: the Simpson sum never reads the
// imaginary part of a grid value, complex accumulation is componentwise,
// and Go's complex multiply computes its real component as exactly
// real(a)*real(b) - imag(a)*imag(b) (no contraction), so accumulating that
// expression alone — in the same term order — reproduces real(g[i]) bit for
// bit while skipping the dead imaginary half of every contribution.
func gridPDF(m Mix, h float64, n int, g []float64) {
	g = g[:n]
	for _, t := range m.Terms {
		if isRealTerm(t) {
			gridPDFReal(t, h, n, g)
			continue
		}
		p := t.Pole
		step := cmplx.Exp(-p * complex(h, 0))
		last := len(t.Coef) - 1
		// The anchor/recurrence cadence runs as explicit blocks of
		// expResetStride points: an exact cmplx.Exp at the block head, one
		// recurrence multiply per point after it — the same multiplication
		// sequence as a per-point stride test, without the per-point modulo.
		// An underflowed factor (e == 0) stays zero until the next anchor,
		// so the rest of its block contributes nothing and is skipped.
		if last == 0 {
			// Single-coefficient term (every simple pole): no ladder, and
			// the coefficient's components hoist out of the grid loop.
			cr, ci := real(t.Coef[0]), imag(t.Coef[0])
			for i := 1; i < n; {
				e := cmplx.Exp(-p * complex(h*float64(i), 0))
				end := i + expResetStride
				if end > n {
					end = n
				}
				for ; i < end; i++ {
					if e == 0 {
						i = end // deep-tail underflow: contribution is negligible
						break
					}
					f := p * e // Erlang(1) density factor
					g[i] += cr*real(f) - ci*imag(f)
					e *= step
				}
			}
			continue
		}
		for i := 1; i < n; {
			e := cmplx.Exp(-p * complex(h*float64(i), 0))
			end := i + expResetStride
			if end > n {
				end = n
			}
			for ; i < end; i++ {
				if e == 0 {
					i = end
					break
				}
				f := p * e
				pu := p * complex(h*float64(i), 0)
				for k, c := range t.Coef {
					g[i] += real(c)*real(f) - imag(c)*imag(f)
					if k < last {
						f *= divRe(pu, float64(k+1))
					}
				}
				e *= step
			}
		}
	}
}

// gridPDFReal is gridPDF's float64 mirror for purely real terms: identical
// operations on the real components (the imaginary contributions of a real
// term are signed zeros, which never change an accumulated sum).
func gridPDFReal(t Term, h float64, n int, g []float64) {
	p := real(t.Pole)
	step := math.Exp(-p * h)
	last := len(t.Coef) - 1
	if last == 0 {
		c := real(t.Coef[0])
		for i := 1; i < n; {
			e := math.Exp(-p * (h * float64(i)))
			end := i + expResetStride
			if end > n {
				end = n
			}
			for ; i < end; i++ {
				if e == 0 {
					i = end
					break
				}
				g[i] += c * (p * e)
				e *= step
			}
		}
		return
	}
	for i := 1; i < n; {
		e := math.Exp(-p * (h * float64(i)))
		end := i + expResetStride
		if end > n {
			end = n
		}
		for ; i < end; i++ {
			if e == 0 {
				i = end
				break
			}
			f := p * e
			pu := p * (h * float64(i))
			for k, c := range t.Coef {
				g[i] += real(c) * f
				if k < last {
					f *= pu / float64(k+1)
				}
			}
			e *= step
		}
	}
}

// gridTail accumulates the tail of m at v_i = x - h*i, i = 1..n-1, into g.
// v decreases by h each step, so e^{-q v} advances by multiplying e^{q h};
// the zero guard keeps an underflowed anchor from turning a large step
// factor into NaN. The ladder matches termTail's arithmetic, with the same
// bit-identical shortcuts as gridPDF (float64 real terms, single-coefficient
// specialization, dead final ladder advance elided).
func gridTail(m Mix, x, h float64, n int, g []float64) {
	g = g[:n]
	for _, t := range m.Terms {
		if isRealTerm(t) {
			gridTailReal(t, x, h, n, g)
			continue
		}
		q := t.Pole
		step := cmplx.Exp(q * complex(h, 0))
		last := len(t.Coef) - 1
		if last == 0 {
			cr, ci := real(t.Coef[0]), imag(t.Coef[0])
			for i := 1; i < n; {
				e := cmplx.Exp(-q * complex(x-h*float64(i), 0))
				end := i + expResetStride
				if end > n {
					end = n
				}
				for ; i < end; i++ {
					if e == 0 {
						i = end
						break
					}
					g[i] += cr*real(e) - ci*imag(e)
					e *= step
				}
			}
			continue
		}
		for i := 1; i < n; {
			e := cmplx.Exp(-q * complex(x-h*float64(i), 0))
			end := i + expResetStride
			if end > n {
				end = n
			}
			for ; i < end; i++ {
				if e == 0 {
					i = end
					break
				}
				qv := q * complex(x-h*float64(i), 0)
				term := e
				partial := term
				for k, c := range t.Coef {
					g[i] += real(c)*real(partial) - imag(c)*imag(partial)
					if k < last {
						term *= divRe(qv, float64(k+1))
						partial += term
					}
				}
				e *= step
			}
		}
	}
}

// gridTailReal is gridTail's float64 mirror for purely real terms (see
// gridPDFReal for why the mirror is bit-identical).
func gridTailReal(t Term, x, h float64, n int, g []float64) {
	q := real(t.Pole)
	step := math.Exp(q * h)
	last := len(t.Coef) - 1
	if last == 0 {
		c := real(t.Coef[0])
		for i := 1; i < n; {
			e := math.Exp(-q * (x - h*float64(i)))
			end := i + expResetStride
			if end > n {
				end = n
			}
			for ; i < end; i++ {
				if e == 0 {
					i = end
					break
				}
				g[i] += c * e
				e *= step
			}
		}
		return
	}
	for i := 1; i < n; {
		e := math.Exp(-q * (x - h*float64(i)))
		end := i + expResetStride
		if end > n {
			end = n
		}
		for ; i < end; i++ {
			if e == 0 {
				i = end
				break
			}
			qv := q * (x - h*float64(i))
			term := e
			partial := term
			for k, c := range t.Coef {
				g[i] += real(c) * partial
				if k < last {
					term *= qv / float64(k+1)
					partial += term
				}
			}
			e *= step
		}
	}
}

// CDF returns TotalMass - Tail(x).
func (s Sum) CDF(x float64) float64 { return s.TotalMass() - s.Tail(x) }

// Quantile inverts the tail (see invertTail): a cold QuantileHint.
func (s Sum) Quantile(p float64) (float64, error) { return s.QuantileHint(p, nil) }

// QuantileHint is Quantile with an optional warm start carried in hint (see
// TailHint): a QuantileHintWS drawing its workspace from the pool.
func (s Sum) QuantileHint(p float64, hint *TailHint) (float64, error) {
	return s.QuantileHintWS(p, hint, nil)
}

// QuantileHintWS is QuantileHint with the quadrature workspace supplied by
// the caller (nil borrows a pooled one). One workspace backs every tail
// evaluation of the inversion, so the Simpson grids are allocated once per
// call, not once per bracket probe — and a caller walking many inversions
// (a load sweep, a dimensioning bisection) keeps the grids warm across
// points by holding one workspace for the whole walk.
func (s Sum) QuantileHintWS(p float64, hint *TailHint, ws *Workspace) (float64, error) {
	ws, pooled := borrowWS(ws)
	if pooled {
		defer releaseWS(ws)
	}
	sharp := s.sharpestDecay()
	tail := func(x float64) float64 { return s.tailAt(x, ws, sharp) }
	batch := func(xs, out []float64) { s.TailBatchWS(xs, out, ws) }
	return invertTail(tail, batch, s.Mean(), p, 1e-10, hint)
}
