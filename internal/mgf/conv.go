package mgf

import (
	"math"
	"math/cmplx"
)

// The Appendix-A product Mul is exact in exact arithmetic but becomes
// ill-conditioned in float64 when poles of the two factors nearly coincide:
// the Taylor coefficients it expands through grow like
// (|p|/|p-q|)^order, amplifying coefficient rounding noise. In the paper's
// own setting this happens at low downstream load, where the D/E_K/1 poles
// alpha_j = beta(1-zeta_j) crowd around the packet-position pole beta as
// zeta_j -> 0.
//
// Sum is the numerically robust alternative: it represents the law of X+Y
// without expanding it, evaluating tails by direct convolution quadrature of
// the two stable factor representations. EstimateMulError quantifies the
// amplification so callers can pick the representation.

// EstimateMulError returns a rough bound on the absolute coefficient error
// Mul(a, b) would commit in float64, driven by near-coincident cross poles.
// A result below ~1e-9 means Mul is safe for tail work at the paper's 1e-5
// quantile level.
func EstimateMulError(a, b Mix) float64 {
	const eps = 2.220446049250313e-16
	amp := 0.0
	for _, ta := range a.Terms {
		for _, tb := range b.Terms {
			if samePole(ta.Pole, tb.Pole) {
				continue // exact merge, no amplification
			}
			gap := cmplx.Abs(ta.Pole - tb.Pole)
			ra := cmplx.Abs(ta.Pole) / gap
			rb := cmplx.Abs(tb.Pole) / gap
			var ma, mb float64
			for _, c := range ta.Coef {
				ma += cmplx.Abs(c)
			}
			for _, c := range tb.Coef {
				mb += cmplx.Abs(c)
			}
			// Principal part at ta.Pole uses Taylor coefficients of tb's
			// term ladder: magnitude ~ rb^(orderB+orderA); and vice versa.
			ordA, ordB := float64(len(ta.Coef)), float64(len(tb.Coef))
			amp += ma * mb * math.Pow(math.Max(rb, 1), ordA+ordB)
			amp += ma * mb * math.Pow(math.Max(ra, 1), ordA+ordB)
		}
	}
	return eps * amp
}

// Law is the read side of a delay distribution: Mix implements it in closed
// form and Sum implements it by quadrature, so sums can nest.
type Law interface {
	// Tail returns P(X > x).
	Tail(x float64) float64
	// Mean returns E[X].
	Mean() float64
	// TotalMass returns the total probability (1 for a normalized law).
	TotalMass() float64
}

// AtomOf returns the point mass at zero of any Law.
func AtomOf(l Law) float64 { return l.TotalMass() - l.Tail(0) }

// Sum is the law of X + Y for independent X ~ A and Y ~ B, kept in factored
// form. Tails are computed by convolution quadrature against A's density, so
// accuracy does not depend on pole separation (unlike Mul). Both factors
// must be normalized laws (mass 1). A should be the factor with the smaller
// continuous mass: its density scales the quadrature error.
type Sum struct {
	A Mix
	B Law
}

// Atom returns the probability mass at zero: both factors at zero.
func (s Sum) Atom() float64 { return s.A.Atom * AtomOf(s.B) }

// Mean returns E[X+Y].
func (s Sum) Mean() float64 { return s.A.Mean() + s.B.Mean() }

// TotalMass returns the product of the factor masses.
func (s Sum) TotalMass() float64 { return s.A.TotalMass() * s.B.TotalMass() }

// Tail returns P(X+Y > x):
//
//	A.Atom*B.Tail(x) + A.Tail(x) + int_0^x pdfA(u) B.Tail(x-u) du,
//
// the last term by composite Simpson quadrature with resolution tied to the
// sharpest decay rate of A. One-shot form of TailWS.
func (s Sum) Tail(x float64) float64 { return s.TailWS(x, nil) }

// expResetStride is how many recurrence steps the grid evaluators take
// between exact cmplx.Exp re-anchors: the multiplicative error grows like
// stride*eps, so 64 keeps each grid value within ~1.5e-14 of direct
// evaluation while paying for one transcendental per 64 panels.
const expResetStride = 64

// TailWS is Tail with the Simpson grids drawn from ws (nil borrows a pooled
// workspace). When B is a closed-form Mix, the integrand factors are filled
// on the whole grid with exponential recurrences —
// e^{-p u_{i+1}} = e^{-p u_i} · e^{-p h} — re-anchored by an exact cmplx.Exp
// every expResetStride steps; that removes the per-panel cmplx.Exp that
// dominates the cold-path profile. A nested-Sum B falls back to the
// point-by-point walk.
func (s Sum) TailWS(x float64, ws *Workspace) float64 {
	if x < 0 {
		return s.TotalMass()
	}
	if x == 0 {
		return s.TotalMass() - s.Atom()
	}
	head := s.A.Atom*s.B.Tail(x) + s.A.Tail(x)
	if len(s.A.Terms) == 0 {
		return head
	}
	// Panel count scales with how many decay lengths of A fit in [0, x].
	sharp := 0.0
	for _, t := range s.A.Terms {
		if r := cmplx.Abs(t.Pole); r > sharp {
			sharp = r
		}
	}
	n := int(64 * (1 + sharp*x))
	if n < 512 {
		n = 512
	}
	if n > 32768 {
		n = 32768
	}
	if n%2 == 1 {
		n++
	}
	h := x / float64(n)
	bmix, fast := s.B.(Mix)
	if !fast {
		// B evaluates by its own quadrature; walk the grid point by point.
		f := func(u float64) float64 { return s.A.PDF(u) * s.B.Tail(x-u) }
		acc := f(0) + f(x)
		for i := 1; i < n; i++ {
			w := 2.0
			if i%2 == 1 {
				w = 4
			}
			acc += w * f(h*float64(i))
		}
		return head + acc*h/3
	}
	ws, pooled := borrowWS(ws)
	if pooled {
		defer releaseWS(ws)
	}
	pdfG := cbuf(&ws.pdf, n)   // pdfG[i] = density of A at u_i = h*i, i = 1..n-1
	tailG := cbuf(&ws.tail, n) // tailG[i] = tail of B at x - u_i
	gridPDF(s.A, h, n, pdfG)
	gridTail(bmix, x, h, n, tailG)
	acc := s.A.PDF(0)*s.B.Tail(x) + s.A.PDF(x)*s.B.Tail(0)
	for i := 1; i < n; i++ {
		w := 2.0
		if i%2 == 1 {
			w = 4
		}
		acc += w * real(pdfG[i]) * real(tailG[i])
	}
	return head + acc*h/3
}

// gridPDF accumulates the density of m at the interior grid points
// u_i = h*i, i = 1..n-1, into g. Per term, e^{-p u} advances by one
// multiplication per step with exact re-anchors (see expResetStride); the
// Erlang ladder on top is the same arithmetic as Mix.PDF.
func gridPDF(m Mix, h float64, n int, g []complex128) {
	for _, t := range m.Terms {
		p := t.Pole
		step := cmplx.Exp(-p * complex(h, 0))
		var e complex128
		for i := 1; i < n; i++ {
			u := h * float64(i)
			if (i-1)%expResetStride == 0 {
				e = cmplx.Exp(-p * complex(u, 0))
			} else if e != 0 {
				e *= step
			}
			if e == 0 {
				continue // deep-tail underflow: contribution is negligible
			}
			pu := p * complex(u, 0)
			f := p * e // Erlang(1) density factor
			for k, c := range t.Coef {
				g[i] += c * f
				f *= pu / complex(float64(k+1), 0)
			}
		}
	}
}

// gridTail accumulates the tail of m at v_i = x - h*i, i = 1..n-1, into g.
// v decreases by h each step, so e^{-q v} advances by multiplying e^{q h};
// the zero guard keeps an underflowed anchor from turning a large step
// factor into NaN. The ladder matches termTail's arithmetic.
func gridTail(m Mix, x, h float64, n int, g []complex128) {
	for _, t := range m.Terms {
		q := t.Pole
		step := cmplx.Exp(q * complex(h, 0))
		var e complex128
		for i := 1; i < n; i++ {
			v := x - h*float64(i)
			if (i-1)%expResetStride == 0 {
				e = cmplx.Exp(-q * complex(v, 0))
			} else if e != 0 {
				e *= step
			}
			if e == 0 {
				continue
			}
			qv := q * complex(v, 0)
			term := e
			partial := term
			for k, c := range t.Coef {
				g[i] += c * partial
				term *= qv / complex(float64(k+1), 0)
				partial += term
			}
		}
	}
}

// CDF returns TotalMass - Tail(x).
func (s Sum) CDF(x float64) float64 { return s.TotalMass() - s.Tail(x) }

// Quantile inverts the tail (see invertTail): a cold QuantileHint.
func (s Sum) Quantile(p float64) (float64, error) { return s.QuantileHint(p, nil) }

// QuantileHint is Quantile with an optional warm start carried in hint (see
// TailHint). One borrowed workspace backs every tail evaluation of the
// inversion, so the quadrature grids are allocated once per call, not once
// per bracket probe.
func (s Sum) QuantileHint(p float64, hint *TailHint) (float64, error) {
	ws, _ := borrowWS(nil)
	defer releaseWS(ws)
	tail := func(x float64) float64 { return s.TailWS(x, ws) }
	return invertTail(tail, s.Mean(), p, 1e-10, hint)
}
