package mgf

import (
	"fmt"
	"math"
	"math/cmplx"
)

// The Appendix-A product Mul is exact in exact arithmetic but becomes
// ill-conditioned in float64 when poles of the two factors nearly coincide:
// the Taylor coefficients it expands through grow like
// (|p|/|p-q|)^order, amplifying coefficient rounding noise. In the paper's
// own setting this happens at low downstream load, where the D/E_K/1 poles
// alpha_j = beta(1-zeta_j) crowd around the packet-position pole beta as
// zeta_j -> 0.
//
// Sum is the numerically robust alternative: it represents the law of X+Y
// without expanding it, evaluating tails by direct convolution quadrature of
// the two stable factor representations. EstimateMulError quantifies the
// amplification so callers can pick the representation.

// EstimateMulError returns a rough bound on the absolute coefficient error
// Mul(a, b) would commit in float64, driven by near-coincident cross poles.
// A result below ~1e-9 means Mul is safe for tail work at the paper's 1e-5
// quantile level.
func EstimateMulError(a, b Mix) float64 {
	const eps = 2.220446049250313e-16
	amp := 0.0
	for _, ta := range a.Terms {
		for _, tb := range b.Terms {
			if samePole(ta.Pole, tb.Pole) {
				continue // exact merge, no amplification
			}
			gap := cmplx.Abs(ta.Pole - tb.Pole)
			ra := cmplx.Abs(ta.Pole) / gap
			rb := cmplx.Abs(tb.Pole) / gap
			var ma, mb float64
			for _, c := range ta.Coef {
				ma += cmplx.Abs(c)
			}
			for _, c := range tb.Coef {
				mb += cmplx.Abs(c)
			}
			// Principal part at ta.Pole uses Taylor coefficients of tb's
			// term ladder: magnitude ~ rb^(orderB+orderA); and vice versa.
			ordA, ordB := float64(len(ta.Coef)), float64(len(tb.Coef))
			amp += ma * mb * math.Pow(math.Max(rb, 1), ordA+ordB)
			amp += ma * mb * math.Pow(math.Max(ra, 1), ordA+ordB)
		}
	}
	return eps * amp
}

// Law is the read side of a delay distribution: Mix implements it in closed
// form and Sum implements it by quadrature, so sums can nest.
type Law interface {
	// Tail returns P(X > x).
	Tail(x float64) float64
	// Mean returns E[X].
	Mean() float64
	// TotalMass returns the total probability (1 for a normalized law).
	TotalMass() float64
}

// AtomOf returns the point mass at zero of any Law.
func AtomOf(l Law) float64 { return l.TotalMass() - l.Tail(0) }

// Sum is the law of X + Y for independent X ~ A and Y ~ B, kept in factored
// form. Tails are computed by convolution quadrature against A's density, so
// accuracy does not depend on pole separation (unlike Mul). Both factors
// must be normalized laws (mass 1). A should be the factor with the smaller
// continuous mass: its density scales the quadrature error.
type Sum struct {
	A Mix
	B Law
}

// Atom returns the probability mass at zero: both factors at zero.
func (s Sum) Atom() float64 { return s.A.Atom * AtomOf(s.B) }

// Mean returns E[X+Y].
func (s Sum) Mean() float64 { return s.A.Mean() + s.B.Mean() }

// TotalMass returns the product of the factor masses.
func (s Sum) TotalMass() float64 { return s.A.TotalMass() * s.B.TotalMass() }

// Tail returns P(X+Y > x):
//
//	A.Atom*B.Tail(x) + A.Tail(x) + int_0^x pdfA(u) B.Tail(x-u) du,
//
// the last term by composite Simpson quadrature with resolution tied to the
// sharpest decay rate of A.
func (s Sum) Tail(x float64) float64 {
	if x < 0 {
		return s.TotalMass()
	}
	if x == 0 {
		return s.TotalMass() - s.Atom()
	}
	head := s.A.Atom*s.B.Tail(x) + s.A.Tail(x)
	if len(s.A.Terms) == 0 {
		return head
	}
	// Panel count scales with how many decay lengths of A fit in [0, x].
	sharp := 0.0
	for _, t := range s.A.Terms {
		if r := cmplx.Abs(t.Pole); r > sharp {
			sharp = r
		}
	}
	n := int(64 * (1 + sharp*x))
	if n < 512 {
		n = 512
	}
	if n > 32768 {
		n = 32768
	}
	if n%2 == 1 {
		n++
	}
	h := x / float64(n)
	f := func(u float64) float64 { return s.A.PDF(u) * s.B.Tail(x-u) }
	acc := f(0) + f(x)
	for i := 1; i < n; i++ {
		w := 2.0
		if i%2 == 1 {
			w = 4
		}
		acc += w * f(h*float64(i))
	}
	return head + acc*h/3
}

// CDF returns TotalMass - Tail(x).
func (s Sum) CDF(x float64) float64 { return s.TotalMass() - s.Tail(x) }

// Quantile inverts the tail by bracketing and bisection, like Mix.Quantile.
func (s Sum) Quantile(p float64) (float64, error) {
	if !(p > 0 && p < 1) {
		return 0, fmt.Errorf("%w: quantile level %g", ErrInvalid, p)
	}
	target := 1 - p
	if s.Tail(0) <= target {
		return 0, nil
	}
	step := s.Mean()
	if !(step > 0) {
		step = 1
	}
	lo, hi := 0.0, step
	for i := 0; i < 200 && s.Tail(hi) > target; i++ {
		lo = hi
		hi *= 2
	}
	if s.Tail(hi) > target {
		return 0, fmt.Errorf("%w: tail does not reach %g", ErrInvalid, target)
	}
	for i := 0; i < 120; i++ {
		mid := lo + (hi-lo)/2
		if s.Tail(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo <= 1e-10*(1+hi) {
			break
		}
	}
	return lo + (hi-lo)/2, nil
}
