package mgf

import "sync"

// Workspace holds the reusable scratch buffers behind the package's two
// allocation-heavy paths: the Appendix-A product's inner loops (Taylor
// ladders, scaled coefficient copies, pole powers) and the convolution
// quadrature's Simpson grids. A zero Workspace is ready to use; buffers grow
// to the largest size seen and are reused across calls. A Workspace must not
// be used concurrently.
type Workspace struct {
	// Mul scratch: coefficient ladder, Taylor coefficients, pole powers.
	coef, taylor, powers []complex128
	// Quadrature scratch: per-grid-point density of A and tail of B. The
	// Simpson sum consumes only the real part of every grid value and
	// complex accumulation is componentwise, so the grids hold the real
	// components alone (see gridPDF).
	pdf, tail []float64
	// lad is the shared-grid quadrature ladder, tagged by a per-law
	// fingerprint: a workspace reused across laws (a load sweep, a
	// dimensioning bisection) rebuilds it exactly when the law changes
	// (see ladder.go).
	lad ladder
}

// cbuf returns a zeroed complex scratch slice of length n, growing buf as
// needed. The returned slice aliases the workspace buffer.
func cbuf(buf *[]complex128, n int) []complex128 {
	if cap(*buf) < n {
		*buf = make([]complex128, n)
	}
	s := (*buf)[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// fbuf is cbuf for float64 scratch.
func fbuf(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	s := (*buf)[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// wsPool recycles Workspaces for callers that do not thread their own: the
// nil-workspace forms of MulWS and Sum.TailWS borrow from here so one-shot
// calls stay allocation-cheap without every long-lived law retaining
// megabyte-scale grid buffers.
var wsPool = sync.Pool{New: func() any { return new(Workspace) }}

// borrowWS resolves an optional caller workspace to a usable one, reporting
// whether it must be returned to the pool afterwards.
func borrowWS(ws *Workspace) (*Workspace, bool) {
	if ws != nil {
		return ws, false
	}
	return wsPool.Get().(*Workspace), true
}

func releaseWS(ws *Workspace) { wsPool.Put(ws) }
