package mgf

import (
	"math"
	"testing"
	"testing/quick"
)

// randomMix builds a normalized mix from fuzz inputs: an atom plus up to
// three real Erlang terms with distinct poles.
func randomMix(atomRaw uint8, ks [3]uint8, rates [3]uint8, weights [3]uint8) Mix {
	var m Mix
	total := float64(atomRaw%64) / 255
	m.Atom = total
	type comp struct {
		k    int
		rate float64
		w    float64
	}
	var comps []comp
	for i := 0; i < 3; i++ {
		w := float64(weights[i]%100) + 1
		k := 1 + int(ks[i]%6)
		rate := 0.25 * float64(1+rates[i]%40) * (1 + float64(i)) // distinct scales
		comps = append(comps, comp{k, rate, w})
	}
	var wsum float64
	for _, c := range comps {
		wsum += c.w
	}
	for _, c := range comps {
		weight := c.w / wsum * (1 - total)
		coef := make([]complex128, c.k)
		coef[c.k-1] = complex(weight, 0)
		m.AddTerm(complex(c.rate, 0), coef)
	}
	return m
}

func mixesClose(a, b Mix, probes []float64, tol float64) bool {
	for _, x := range probes {
		if math.Abs(a.Tail(x)-b.Tail(x)) > tol {
			return false
		}
	}
	return true
}

func TestMulCommutativeProperty(t *testing.T) {
	f := func(a1 uint8, k1, r1, w1 [3]uint8, a2 uint8, k2, r2, w2 [3]uint8) bool {
		x := randomMix(a1, k1, r1, w1)
		y := randomMix(a2, k2, r2, w2)
		if EstimateMulError(x, y) > 1e-10 {
			return true // ill-conditioned expansions may differ in rounding
		}
		xy := Mul(x, y)
		yx := Mul(y, x)
		probes := []float64{0.01, 0.1, 0.5, 2, 10}
		return mixesClose(xy, yx, probes, 1e-8) &&
			math.Abs(xy.Mean()-yx.Mean()) < 1e-8*(1+math.Abs(xy.Mean()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMulAssociativeProperty(t *testing.T) {
	f := func(a1 uint8, k1, r1, w1 [3]uint8, a2 uint8, k2, r2, w2 [3]uint8, a3 uint8, k3, r3, w3 [3]uint8) bool {
		x := randomMix(a1, k1, r1, w1)
		y := randomMix(a2, k2, r2, w2)
		z := randomMix(a3, k3, r3, w3)
		// Guard against fuzz-built near-coincident cross poles, where the
		// expansions legitimately differ in rounding.
		if EstimateMulError(x, y)+EstimateMulError(y, z)+EstimateMulError(x, z) > 1e-10 {
			return true
		}
		l := Mul(Mul(x, y), z)
		r := Mul(x, Mul(y, z))
		probes := []float64{0.01, 0.1, 0.5, 2, 10}
		return mixesClose(l, r, probes, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMulPreservesMassAndMeanProperty(t *testing.T) {
	f := func(a1 uint8, k1, r1, w1 [3]uint8, a2 uint8, k2, r2, w2 [3]uint8) bool {
		x := randomMix(a1, k1, r1, w1)
		y := randomMix(a2, k2, r2, w2)
		// Close (but unequal) cross poles amplify rounding in the expansion;
		// that regime is Sum's job, not Mul's.
		if EstimateMulError(x, y) > 1e-10 {
			return true
		}
		m := Mul(x, y)
		if math.Abs(m.TotalMass()-x.TotalMass()*y.TotalMass()) > 1e-8 {
			return false
		}
		wantMean := x.Mean() + y.Mean() // both normalized to mass 1
		return math.Abs(m.Mean()-wantMean) < 1e-8*(1+wantMean)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestScaleLinearityProperty(t *testing.T) {
	f := func(a1 uint8, k1, r1, w1 [3]uint8, wRaw uint8) bool {
		x := randomMix(a1, k1, r1, w1)
		w := float64(wRaw%100) / 50
		s := x.Scale(w)
		for _, p := range []float64{0.1, 1, 5} {
			if math.Abs(s.Tail(p)-w*x.Tail(p)) > 1e-10 {
				return false
			}
		}
		return math.Abs(s.TotalMass()-w*x.TotalMass()) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTailMonotoneProperty(t *testing.T) {
	f := func(a1 uint8, k1, r1, w1 [3]uint8) bool {
		x := randomMix(a1, k1, r1, w1)
		prev := math.Inf(1)
		for i := 0; i <= 40; i++ {
			v := x.Tail(float64(i) * 0.25)
			if v > prev+1e-10 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSumMatchesMulProperty(t *testing.T) {
	f := func(a1 uint8, k1, r1, w1 [3]uint8, a2 uint8, k2, r2, w2 [3]uint8) bool {
		x := randomMix(a1, k1, r1, w1)
		y := randomMix(a2, k2, r2, w2)
		if EstimateMulError(x, y) > 1e-10 {
			return true
		}
		m := Mul(x, y)
		s := Sum{A: x, B: y}
		for _, p := range []float64{0.05, 0.5, 3} {
			if math.Abs(m.Tail(p)-s.Tail(p)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
