package mgf

import (
	"math"
	"math/rand"
	"testing"
)

// ladderRefTail is a near-truth reference for the Sum tail: composite Simpson
// with a very fine per-abscissa grid, evaluated point by point through the
// closed-form Mix primitives. At 2^18 panels its own quadrature error is far
// below every tolerance used here.
func ladderRefTail(s Sum, x float64, n int) float64 {
	b := s.B.(Mix)
	h := x / float64(n)
	acc := s.A.PDF(0)*b.Tail(x) + s.A.PDF(x)*b.Tail(0)
	for i := 1; i < n; i++ {
		w := 2.0
		if i%2 == 1 {
			w = 4
		}
		u := h * float64(i)
		acc += w * s.A.PDF(u) * b.Tail(x-u)
	}
	return s.A.Atom*b.Tail(x) + s.A.Tail(x) + acc*h/3
}

// gateLaws is the law set the equivalence and property tests run over: the
// paper-shaped crowded Erlang pair, a well-separated pair (all pairs closed
// form), a B with an atom and merged poles, and the complex-conjugate pair.
func gateLaws() []Sum {
	a := NewErlang(1, 9, 0.3)
	return []Sum{
		{A: a, B: NewErlang(1, 8, 0.25)},             // crowded: moment channel
		{A: a, B: NewErlang(1, 3, 5)},                // separated: closed form only
		{A: NewErlang(1, 4, 1.2), B: testMixes()[3]}, // atom + same-pole merge
		{A: a, B: testMixes()[4]},                    // complex-conjugate poles
	}
}

// TestLadderAccuracy pins two bounds against the fine pointwise reference
// across a raster spanning the ladder's engagement window, its below-floor
// and above-ceiling fallbacks, and the conditioning-guard regime:
//
//   - never-worse: the rewired Tail's error is at most the per-abscissa
//     scheme's error plus the 1e-12 gate slop, at every abscissa. Where the
//     ladder refuses, the fallback IS that scheme and the margin is exact.
//   - near-truth: where the ladder answers, it is within 2e-12 of the
//     reference outright — including laws (a B factor decaying much faster
//     than sharp(A)) where the per-abscissa grid is orders of magnitude
//     worse because its density tracks only A.
func TestLadderAccuracy(t *testing.T) {
	for si, s := range gateLaws() {
		b := s.B.(Mix)
		sharp := s.sharpestDecay()
		var ws Workspace
		ld := ws.ladderFor(s.A, b, sharp)
		for _, x := range []float64{0.5, 2, 5, 10, 20, 50, 100, 200} {
			got := s.TailWS(x, &ws)
			old := s.tailGrid(x, b, &ws, sharp)
			ref := ladderRefTail(s, x, 1<<18)
			slack := 1e-12 * (1 + math.Abs(ref))
			if math.Abs(got-ref) > math.Abs(old-ref)+slack {
				t.Errorf("law %d tail(%v): %v errs %g vs reference, per-abscissa errs only %g",
					si, x, got, got-ref, old-ref)
			}
			if ld == nil {
				continue
			}
			if v, ok := ld.tailAt(x); ok {
				if d := math.Abs(v - ref); d > 2e-12*(1+math.Abs(ref)) {
					t.Errorf("law %d tail(%v): engaged ladder %v vs reference %v (diff %g)",
						si, x, v, ref, v-ref)
				}
			}
		}
	}
}

// TestLadderEquivalenceGate is the ≤1e-12 gate against the per-abscissa
// scheme at serving-relevant abscissae: each law's quantiles across the
// levels the paper reports, plus deep multiples. The gate runs over the
// paper regime — crowded A/B rates, where the old grid resolves the
// integrand well and agreement is meaningful — on the handcrafted crowded
// pair and a seeded random family around it. (For a B factor decaying much
// faster than sharp(A) the old scheme's own error exceeds the gate and the
// ladder is the more accurate side; TestLadderAccuracy owns that bound.)
// Where the ladder refuses (clamps, guards) the fallback IS the old scheme
// and the diff is exactly zero.
func TestLadderEquivalenceGate(t *testing.T) {
	check := func(t *testing.T, si int, s Sum) {
		b := s.B.(Mix)
		var xs []float64
		for _, p := range []float64{0.99, 0.999, 0.9999, 0.99999} {
			q, err := s.Quantile(p)
			if err != nil {
				t.Fatalf("law %d quantile(%v): %v", si, p, err)
			}
			xs = append(xs, q)
		}
		xs = append(xs, 1.5*xs[len(xs)-1], 2.5*xs[len(xs)-1])
		var ws Workspace
		sharp := s.sharpestDecay()
		for _, x := range xs {
			got := s.TailWS(x, &ws)
			old := s.tailGrid(x, b, &ws, sharp)
			if d := math.Abs(got - old); d > 1e-12*(1+math.Abs(old)) {
				t.Errorf("law %d tail(%v): ladder %v vs grid %v (diff %g)", si, x, got, old, got-old)
			}
		}
	}
	check(t, 0, gateLaws()[0])
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 12; i++ {
		ra := 0.2 + 0.3*rng.Float64()
		a := NewErlang(1, 5+rng.Intn(6), ra)
		b := NewErlang(1, 4+rng.Intn(6), ra*(0.7+0.6*rng.Float64()))
		check(t, 100+i, Sum{A: a, B: b})
	}
}

// TestLadderVisitOrderInvariant is the warm==cold property on the ladder
// path: one workspace walking abscissae in ascending order, one walking the
// same abscissae reversed, and a fresh workspace per abscissa all produce
// identical bits — values are pure functions of (law, x), never of how far
// the shared prefix had grown when they were computed.
func TestLadderVisitOrderInvariant(t *testing.T) {
	for si, s := range gateLaws() {
		xs := []float64{30, 45, 60, 90, 130, 210, 340, 55, 30} // repeats on purpose
		fwd := make([]float64, len(xs))
		var wsF Workspace
		for i, x := range xs {
			fwd[i] = s.TailWS(x, &wsF)
		}
		var wsR Workspace
		for i := len(xs) - 1; i >= 0; i-- {
			if got := s.TailWS(xs[i], &wsR); got != fwd[i] {
				t.Errorf("law %d tail(%v): reversed-order %v != forward %v", si, xs[i], got, fwd[i])
			}
		}
		for i, x := range xs {
			var cold Workspace
			if got := s.TailWS(x, &cold); got != fwd[i] {
				t.Errorf("law %d tail(%v): cold %v != warm %v", si, x, got, fwd[i])
			}
		}
	}
}

// TestLadderInvalidationOnLawChange reuses ONE workspace across a law
// change and back (the load-sweep pattern: the sweep loop holds a workspace
// while the law varies with rho). Every value must match a fresh-workspace
// evaluation bit for bit, and the cached tag must actually switch.
func TestLadderInvalidationOnLawChange(t *testing.T) {
	laws := gateLaws()
	s1, s2 := laws[0], laws[1]
	xs := []float64{30, 60, 120, 300}
	var ws Workspace
	for round, s := range []Sum{s1, s2, s1} {
		fpBefore := ws.lad.fp
		for _, x := range xs {
			warm := s.TailWS(x, &ws)
			var fresh Workspace
			if cold := s.TailWS(x, &fresh); warm != cold {
				t.Errorf("round %d tail(%v): reused-ws %v != fresh-ws %v", round, x, warm, cold)
			}
		}
		if round > 0 && ws.lad.fp == fpBefore {
			t.Errorf("round %d: ladder tag did not change on law switch", round)
		}
		if want := lawFingerprint(s.A, s.B.(Mix)); ws.lad.fp != want {
			t.Errorf("round %d: ladder tagged %x, want %x", round, ws.lad.fp, want)
		}
	}
}

// TestPanelCountClamps pins the per-abscissa panel policy at its boundaries:
// the 512 floor, the 32768 ceiling, and odd-to-even rounding in between.
func TestPanelCountClamps(t *testing.T) {
	cases := []struct {
		sharp, x float64
		want     int
	}{
		{1, 0.1, 512},         // 64·1.1 = 70 → floor
		{0, 100, 512},         // degenerate sharpness → floor
		{10, 1e6, 32768},      // far past the ceiling
		{1, 8, 576},           // 64·9 = 576: even, just above the floor, untouched
		{1, 15, 1024},         // 64·16, even, in range: untouched
		{1, 14.6484375, 1002}, // 64·(1+x) = 1001.5 (exact dyadic) → 1001 odd → 1002
	}
	for _, c := range cases {
		if got := panelCount(c.sharp, c.x); got != c.want {
			t.Errorf("panelCount(%v, %v) = %d, want %d", c.sharp, c.x, got, c.want)
		}
	}
}

// TestLadderEngagementWindow white-boxes the ladder's panel clamps: just
// inside the window it answers, just outside (floor and ceiling) it refuses
// and TailWS falls back to bits identical to the per-abscissa scheme. The
// separated law is used because its pairs all go closed form — in-window
// answers cannot be vetoed by the crowded channels' conditioning guard
// (which, on the crowded pair, trips throughout the window: the guard is a
// property of (law, x), not of the clamps).
func TestLadderEngagementWindow(t *testing.T) {
	s := gateLaws()[1]
	b := s.B.(Mix)
	sharp := s.sharpestDecay()
	var ws Workspace
	ld := ws.ladderFor(s.A, b, sharp)
	if ld == nil {
		t.Fatal("ladder rejected the paper-shaped law")
	}
	if want := 1 / (64 * sharp); ld.h != want {
		t.Errorf("ladder h = %v, want %v", ld.h, want)
	}
	if _, ok := ld.tailAt(float64(ladderMinPanels-1) * ld.h); ok {
		t.Error("ladder answered below the panel floor")
	}
	if _, ok := ld.tailAt(float64(ladderMaxPanels+2) * ld.h); ok {
		t.Error("ladder answered above the panel ceiling")
	}
	if _, ok := ld.tailAt(float64(ladderMinPanels+2) * ld.h); !ok {
		t.Error("ladder refused inside its window")
	}
	for _, x := range []float64{0.5 * float64(ladderMinPanels) * ld.h, 1.5 * float64(ladderMaxPanels) * ld.h} {
		if got, want := s.TailWS(x, &ws), s.tailGrid(x, b, &ws, sharp); got != want {
			t.Errorf("fallback tail(%v): %v != per-abscissa %v", x, got, want)
		}
	}
}

// TestSumTailSlowAllocs is the pooled-workspace contract of the nested-Sum
// fallback (tailSlow): with a caller-held workspace warmed once, the walk —
// including every inner tail it threads the workspace into — allocates
// nothing.
func TestSumTailSlowAllocs(t *testing.T) {
	inner := Sum{A: NewErlang(1, 8, 0.25), B: NewErlang(1, 3, 5)}
	outer := Sum{A: NewErlang(1, 2, 5), B: inner}
	ws := new(Workspace)
	outer.TailWS(20, ws)
	allocs := testing.AllocsPerRun(20, func() { outer.TailWS(20, ws) })
	if allocs > 0 {
		t.Errorf("nested Sum.TailWS with warm workspace allocates %v per run, want 0", allocs)
	}
}

// BenchmarkTailLadder measures the tail sweep the bracket walk performs,
// cold (a fresh workspace per sweep: the ladder is rebuilt and regrown)
// against shared (one warm workspace: every abscissa extends or reuses the
// prefix). The gap is the amortized Simpson work.
func BenchmarkTailLadder(b *testing.B) {
	s := Sum{A: NewErlang(1, 9, 0.3), B: NewErlang(1, 8, 0.25)}
	xs := []float64{27, 34, 43, 54, 68, 86, 108, 136, 171, 215}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ws := new(Workspace)
			for _, x := range xs {
				_ = s.TailWS(x, ws)
			}
		}
	})
	b.Run("shared", func(b *testing.B) {
		b.ReportAllocs()
		ws := new(Workspace)
		for _, x := range xs {
			_ = s.TailWS(x, ws)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, x := range xs {
				_ = s.TailWS(x, ws)
			}
		}
	})
}

// BenchmarkQuantileBracketWalk measures one cold quantile inversion — the
// dyadic bracket walk plus Brent refinement — with a caller-held workspace,
// the unit of work the load sweep's warm-started chain repeats per grid
// point.
func BenchmarkQuantileBracketWalk(b *testing.B) {
	s := Sum{A: NewErlang(1, 9, 0.3), B: NewErlang(1, 8, 0.25)}
	ws := new(Workspace)
	if _, err := s.QuantileHintWS(0.99999, nil, ws); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.QuantileHintWS(0.99999, nil, ws); err != nil {
			b.Fatal(err)
		}
	}
}
