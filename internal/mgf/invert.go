package mgf

import (
	"fmt"
	"math"

	"fpsping/internal/xmath"
)

// This file owns quantile inversion for every law in the package: Mix and
// Sum both delegate here, so bracketing, warm starts and convergence live in
// exactly one place. The solver splits the work into two stages with very
// different reuse properties:
//
//  1. a bracket stage that locates the law's CANONICAL dyadic bracket: with
//     step = mean, the smallest k >= 0 with Tail(step·2^k) <= target, giving
//     [step·2^(k-1), step·2^k] (k = 0 means [0, step]). The bracket is a
//     function of the law and the target alone — not of how the walk that
//     found k started — which is what makes warm starts exact;
//  2. a refinement stage that runs Brent's method on log(Tail(x)/target)
//     inside the bracket. The tail of every law here is asymptotically
//     exponential, so the log-ratio is near-linear and Brent's secant and
//     inverse-quadratic steps converge in a handful of evaluations where
//     blind bisection needed dozens.
//
// A TailHint from a previous inversion only moves the stage-1 walk's
// starting rung: a cold inversion scans k upward from 0, a warm one starts
// at the hint's rung and walks up or down to the same canonical k. Either
// way stage 2 sees the same bracket and the same endpoint values, so a warm
// start changes how much work is done, never what is computed.

// TailHint carries warm-start state between successive quantile inversions
// on related laws — e.g. a load sweep, where consecutive grid points' laws
// have nearby quantiles, so the previous answer points at the right rung of
// the next bracket search. The zero value is an empty hint. A TailHint must
// not be shared between concurrent inversions.
type TailHint struct {
	x  float64
	ok bool
}

// Set records x (a solved quantile) as the hint for the next inversion.
func (h *TailHint) Set(x float64) { h.x, h.ok = x, true }

// Clear empties the hint.
func (h *TailHint) Clear() { h.ok = false }

// maxDoubling caps the dyadic bracket search: 2^200 means away from the
// mean, far beyond any law with a finite tail.
const maxDoubling = 200

// invertTail returns the smallest x >= 0 with Tail(x) <= 1-p, for a
// monotone nonincreasing tail function. mean seeds the dyadic bracket
// (non-positive values fall back to 1, matching the historical behavior),
// tol is the absolute-plus-relative convergence tolerance, and hint may
// carry a warm start (nil means cold). tailBatch, when non-nil, evaluates
// the tail at several abscissae sharing per-law setup (Sum.TailBatchWS);
// the stage-1 walk uses it to probe bracket rungs in pairs. Every batched
// value equals the corresponding tail(x) bit for bit, and an overshot
// second probe is discarded, so batching changes only cost — the canonical
// bracket and the root are unchanged. On success the hint is updated with
// the solved abscissa.
func invertTail(tail func(float64) float64, tailBatch func(xs, out []float64), mean, p, tol float64, hint *TailHint) (float64, error) {
	if !(p > 0 && p < 1) {
		return 0, fmt.Errorf("%w: quantile level %g", ErrInvalid, p)
	}
	target := 1 - p
	if tail(0) <= target {
		return 0, nil
	}
	step := mean
	if !(step > 0) {
		step = 1
	}
	rung := func(j int) float64 { return math.Ldexp(step, j) } // step·2^j, exact

	// Stage 1: find the canonical k — the smallest j >= 0 with
	// Tail(rung(j)) <= target — walking from j0: 0 when cold, the hint's
	// rung when warm. Rung values the walk evaluates next to k are kept so
	// stage 2 does not re-evaluate its endpoints.
	j0 := 0
	if hint != nil && hint.ok && hint.x > step {
		j0 = int(math.Floor(math.Log2(hint.x / step)))
		if j0 < 0 {
			j0 = 0
		}
		if j0 > maxDoubling {
			j0 = maxDoubling
		}
	}
	k := -1
	var vlo, vhi float64 // tail at rung(k-1) (or 0), rung(k)
	vloOK := false
	v0 := tail(rung(j0))
	if v0 > target {
		// Walk up to the first rung at or under the target. On a warm walk
		// the first probe past j0 is single (the hint usually lands one rung
		// under the answer, so the walk stops there); a cold walk has no such
		// expectation and batches from its first step. From then on a batch
		// evaluator probes two rungs per call — a long walk pays the
		// per-probe setup half as often, a pair straddling the canonical k
		// supplies both bracket endpoints in one call, and under a shared
		// quadrature ladder the pair extends the grid prefix once for both
		// rungs. Batched values equal single-probe values bit for bit, so
		// pairing changes only cost.
		cold := hint == nil || !hint.ok
		prev := v0
		j := j0 + 1
		for j <= maxDoubling {
			if tailBatch != nil && (j > j0+1 || cold) && j < maxDoubling {
				var xs, vs [2]float64
				xs[0], xs[1] = rung(j), rung(j+1)
				tailBatch(xs[:], vs[:])
				if vs[0] <= target {
					k, vhi = j, vs[0]
					vlo, vloOK = prev, true
					break
				}
				if vs[1] <= target {
					k, vhi = j+1, vs[1]
					vlo, vloOK = vs[0], true
					break
				}
				prev = vs[1]
				j += 2
				continue
			}
			v := tail(rung(j))
			if v <= target {
				k, vhi = j, v
				vlo, vloOK = prev, true
				break
			}
			prev = v
			j++
		}
		if k < 0 {
			return 0, fmt.Errorf("%w: tail does not reach %g", ErrInvalid, target)
		}
	} else {
		// Walk down to the last rung above the target; k is one past it.
		k, vhi = j0, v0
		for j := j0 - 1; j >= 0; j-- {
			v := tail(rung(j))
			if v > target {
				vlo, vloOK = v, true
				break
			}
			k, vhi = j, v
		}
	}
	var lo, hi float64
	hi = rung(k)
	if k > 0 {
		lo = rung(k - 1)
	}
	if !vloOK {
		vlo = tail(lo) // tail(0) when k == 0
	}

	// Stage 2: Brent on the log-ratio inside [lo, hi]. The bracket and its
	// endpoint values are the canonical ones whatever j0 was, so the
	// iterates — and the root — are bit-identical cold or warm.
	logRatio := func(v float64) float64 {
		if v > 0 {
			return math.Log(v / target)
		}
		// Deep-tail underflow (or quadrature noise below zero): certainly
		// under the target; a large finite value keeps Brent's arithmetic
		// NaN-free where -Inf would poison the interpolation steps.
		return -745 - math.Log(target)
	}
	g := func(x float64) float64 { return logRatio(tail(x)) }
	x, err := xmath.BrentBracketed(g, lo, hi, logRatio(vlo), logRatio(vhi), tol*(1+hi))
	if err != nil {
		// vlo <= target can only mean the tail is not monotone at the
		// bracket scale; surface it rather than guessing.
		return 0, fmt.Errorf("%w: tail not monotone near %g", ErrInvalid, lo)
	}
	if hint != nil && x > 0 {
		hint.Set(x)
	}
	return x, nil
}
