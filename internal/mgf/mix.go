// Package mgf implements the rational moment-generating-function algebra of
// the paper's Appendix A: distributions on [0, inf) represented as
//
//	F(s) = Atom + sum_j sum_i Coef[j][i] * (p_j/(p_j - s))^(i+1)
//
// i.e. an atom at zero plus a weighted sum of (possibly complex) Erlang
// terms. The class is closed under products (= convolutions of independent
// delays), which is exactly how §3.3 combines the upstream delay Du(s), the
// downstream burst delay W(s) and the packet-position delay P(s); and every
// member inverts in closed form, giving the tail distribution function and
// hence the RTT quantile.
//
// Poles may be complex (the D/E_K/1 waiting time has K-1 complex-conjugate
// pole pairs); coefficients come in conjugate pairs too, so tails and
// densities are real up to rounding. All evaluation methods return the real
// part and the Validate method bounds the imaginary residue.
package mgf

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"sort"
)

// ErrInvalid reports a Mix that is not a plausible probability law.
var ErrInvalid = errors.New("mgf: invalid mix")

// poleMergeTol is the relative distance under which two poles are treated as
// identical during a product (exact Erlang-order addition applies). Distinct
// but nearly equal poles make partial fractions ill-conditioned; merging is
// the numerically safe interpretation.
const poleMergeTol = 1e-9

// Term is one pole with its Erlang coefficient ladder: Coef[i] multiplies
// (Pole/(Pole-s))^(i+1).
type Term struct {
	Pole complex128
	Coef []complex128
}

// MaxOrder returns the highest Erlang order present (= len(Coef)).
func (t Term) MaxOrder() int { return len(t.Coef) }

// Mix is an atom at zero plus a sum of Erlang terms. The zero value is the
// MGF of the constant 0 with total mass 0; use NewAtom or the queueing
// constructors for valid distributions.
type Mix struct {
	Atom  float64
	Terms []Term
}

// NewAtom returns the distribution of the constant 0 with mass w (w=1 is the
// Dirac delta at zero).
func NewAtom(w float64) Mix { return Mix{Atom: w} }

// NewExponential returns the MGF mix of weight*Exp(rate).
func NewExponential(weight, rate float64) Mix {
	return Mix{Terms: []Term{{Pole: complex(rate, 0), Coef: []complex128{complex(weight, 0)}}}}
}

// NewErlang returns the MGF mix of weight*Erlang(k, rate).
func NewErlang(weight float64, k int, rate float64) Mix {
	coef := make([]complex128, k)
	coef[k-1] = complex(weight, 0)
	return Mix{Terms: []Term{{Pole: complex(rate, 0), Coef: coef}}}
}

// Clone deep-copies m.
func (m Mix) Clone() Mix {
	out := Mix{Atom: m.Atom, Terms: make([]Term, len(m.Terms))}
	for i, t := range m.Terms {
		out.Terms[i] = Term{Pole: t.Pole, Coef: append([]complex128(nil), t.Coef...)}
	}
	return out
}

// Scale multiplies all mass by w (atom and coefficients).
func (m Mix) Scale(w float64) Mix {
	out := m.Clone()
	out.Atom *= w
	for i := range out.Terms {
		for j := range out.Terms[i].Coef {
			out.Terms[i].Coef[j] *= complex(w, 0)
		}
	}
	return out
}

// AddTerm appends a term (merging with an existing equal pole).
func (m *Mix) AddTerm(pole complex128, coef []complex128) {
	for i := range m.Terms {
		if samePole(m.Terms[i].Pole, pole) {
			if len(coef) > len(m.Terms[i].Coef) {
				grown := make([]complex128, len(coef))
				copy(grown, m.Terms[i].Coef)
				m.Terms[i].Coef = grown
			}
			for j, c := range coef {
				m.Terms[i].Coef[j] += c
			}
			return
		}
	}
	m.Terms = append(m.Terms, Term{Pole: pole, Coef: append([]complex128(nil), coef...)})
}

func samePole(a, b complex128) bool {
	return cmplx.Abs(a-b) <= poleMergeTol*math.Max(cmplx.Abs(a), cmplx.Abs(b))
}

// Eval evaluates the MGF at s. Eval(0) is the total probability mass.
func (m Mix) Eval(s complex128) complex128 {
	sum := complex(m.Atom, 0)
	for _, t := range m.Terms {
		base := t.Pole / (t.Pole - s)
		pw := complex(1, 0)
		for _, c := range t.Coef {
			pw *= base
			sum += c * pw
		}
	}
	return sum
}

// TotalMass returns Eval(0) as a real number.
func (m Mix) TotalMass() float64 { return real(m.Eval(0)) }

// Mean returns the first moment: sum over terms of coef*(order)/pole.
func (m Mix) Mean() float64 {
	var sum complex128
	for _, t := range m.Terms {
		for i, c := range t.Coef {
			sum += c * complex(float64(i+1), 0) / t.Pole
		}
	}
	return real(sum)
}

// SecondMoment returns E[X^2] = sum coef*n(n+1)/pole^2.
func (m Mix) SecondMoment() float64 {
	var sum complex128
	for _, t := range m.Terms {
		for i, c := range t.Coef {
			n := float64(i + 1)
			sum += c * complex(n*(n+1), 0) / (t.Pole * t.Pole)
		}
	}
	return real(sum)
}

// Tail returns P(X > x). For x <= 0 it returns the total non-negative mass
// beyond zero (1 - Atom for a normalized mix).
func (m Mix) Tail(x float64) float64 {
	if x < 0 {
		return m.TotalMass()
	}
	var sum complex128
	for _, t := range m.Terms {
		sum += termTail(t, x)
	}
	return real(sum)
}

// termTail computes sum_i coef_i * P(Erlang(i+1, pole) > x) in complex
// arithmetic: e^{-px} * sum_{r<=i} (px)^r / r!, accumulated incrementally to
// avoid overflow. The ladder advance past the last coefficient is dead and
// skipped; the division by the real order uses the componentwise form (see
// divRe) — both bit-identical to the plain loop.
func termTail(t Term, x float64) complex128 {
	px := t.Pole * complex(x, 0)
	ex := cmplx.Exp(-px)
	// partial[i] after step i holds e^{-px} * sum_{r=0..i} (px)^r/r!.
	term := ex // r = 0 term
	partial := term
	var sum complex128
	last := len(t.Coef) - 1
	for i, c := range t.Coef {
		sum += c * partial
		if i < last {
			// Extend the inner sum for the next order.
			term *= divRe(px, float64(i+1))
			partial += term
		}
	}
	return sum
}

// CDF returns P(X <= x) = TotalMass - Tail(x) (for a normalized mix, 1-Tail).
func (m Mix) CDF(x float64) float64 { return m.TotalMass() - m.Tail(x) }

// PDF returns the density of the absolutely continuous part at x > 0.
func (m Mix) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	var sum complex128
	for _, t := range m.Terms {
		px := t.Pole * complex(x, 0)
		// density of Erlang(n, p): p e^{-px} (px)^{n-1}/(n-1)!
		f := t.Pole * cmplx.Exp(-px) // n = 1
		last := len(t.Coef) - 1
		for i, c := range t.Coef {
			sum += c * f
			if i < last {
				f *= divRe(px, float64(i+1))
			}
		}
	}
	return real(sum)
}

// Quantile returns the smallest x >= 0 with P(X <= x) >= p, assuming the mix
// is a normalized probability law: a cold QuantileHint.
func (m Mix) Quantile(p float64) (float64, error) { return m.QuantileHint(p, nil) }

// QuantileHint is Quantile with an optional warm start carried in hint (see
// TailHint): the bracket search skips tail evaluations the hint's verified
// probe already settles, and the refinement inside the bracket is identical
// either way, so a warm inversion returns the same bits as a cold one.
func (m Mix) QuantileHint(p float64, hint *TailHint) (float64, error) {
	return invertTail(m.Tail, nil, m.Mean(), p, 1e-12, hint)
}

// DominantPole returns the pole with the smallest real part (the slowest
// exponential decay) and its total coefficient ladder, or ok=false for a
// pure atom. The §3.3 dominant-pole approximation keeps only this term.
func (m Mix) DominantPole() (pole complex128, ok bool) {
	best := math.Inf(1)
	for _, t := range m.Terms {
		nonzero := false
		for _, c := range t.Coef {
			if c != 0 {
				nonzero = true
				break
			}
		}
		if !nonzero {
			continue
		}
		if re := real(t.Pole); re < best {
			best = re
			pole = t.Pole
			ok = true
		}
	}
	return pole, ok
}

// DominantOnly returns a mix keeping the atom, the dominant pole's term and
// every term whose pole shares (up to conjugation) that real part; total mass
// is NOT renormalized. It realizes the "neglect all terms but the dominant
// pole" approximation discussed under eq. (35).
func (m Mix) DominantOnly() Mix {
	pole, ok := m.DominantPole()
	if !ok {
		return Mix{Atom: m.Atom}
	}
	out := Mix{Atom: m.Atom}
	for _, t := range m.Terms {
		if math.Abs(real(t.Pole)-real(pole)) <= 1e-9*math.Abs(real(pole)) {
			out.AddTerm(t.Pole, t.Coef)
		}
	}
	return out
}

// Mul returns the MGF product of a and b: the law of the sum of independent
// X ~ a and Y ~ b. This is the Appendix A machinery: cross products of
// Erlang terms are re-expanded by partial fractions around each pole; equal
// poles merge exactly (Erlang orders add). One-shot convenience form of
// MulWS (scratch comes from the package pool).
func Mul(a, b Mix) Mix { return MulWS(a, b, nil) }

// MulWS is Mul with the inner loops' scratch (coefficient ladders, Taylor
// coefficients, pole powers) drawn from ws instead of allocated per cross
// term, so a pipeline multiplying many factor pairs reuses one set of
// buffers. nil borrows a pooled workspace. The returned Mix owns its memory;
// only intermediates live in ws.
func MulWS(a, b Mix, ws *Workspace) Mix {
	ws, pooled := borrowWS(ws)
	if pooled {
		defer releaseWS(ws)
	}
	out := Mix{Atom: a.Atom * b.Atom}
	// Atom x terms cross products.
	for _, t := range b.Terms {
		if a.Atom != 0 {
			out.AddTerm(t.Pole, scaleCoef(t.Coef, complex(a.Atom, 0), ws))
		}
	}
	for _, t := range a.Terms {
		if b.Atom != 0 {
			out.AddTerm(t.Pole, scaleCoef(t.Coef, complex(b.Atom, 0), ws))
		}
	}
	// Term x term cross products.
	for _, ta := range a.Terms {
		for _, tb := range b.Terms {
			if samePole(ta.Pole, tb.Pole) {
				mulSamePole(&out, ta, tb, ws)
			} else {
				mulDistinctPoles(&out, ta, tb, ws)
				mulDistinctPoles(&out, tb, ta, ws)
			}
		}
	}
	return out
}

// scaleCoef writes coef*w into workspace scratch (valid until the next
// workspace use; AddTerm copies what it keeps).
func scaleCoef(coef []complex128, w complex128, ws *Workspace) []complex128 {
	out := cbuf(&ws.coef, len(coef))
	for i, c := range coef {
		out[i] = c * w
	}
	return out
}

// mulSamePole handles (p/(p-s))^n * (p/(p-s))^m = (p/(p-s))^(n+m): the
// convolution of Erlangs with a common rate is an Erlang.
func mulSamePole(out *Mix, ta, tb Term, ws *Workspace) {
	coef := cbuf(&ws.coef, len(ta.Coef)+len(tb.Coef))
	for i, ca := range ta.Coef {
		if ca == 0 {
			continue
		}
		for j, cb := range tb.Coef {
			if cb == 0 {
				continue
			}
			coef[i+j+1] += ca * cb
		}
	}
	out.AddTerm(ta.Pole, coef)
}

// mulDistinctPoles adds the principal part at ta.Pole of the product
// F_ta(s) * G_tb(s), following Appendix A: with G's Taylor coefficients
// g_m at the pole p, the cross term A_i (p/(p-s))^{i+1} * G(s) contributes
// A_i (-1)^m g_m p^m to order (i+1-m) at p, for m = 0..i.
func mulDistinctPoles(out *Mix, ta, tb Term, ws *Workspace) {
	maxOrder := len(ta.Coef)
	g := taylorAt(tb, ta.Pole, maxOrder, ws)
	coef := cbuf(&ws.coef, maxOrder)
	sign := func(m int) complex128 {
		if m%2 == 1 {
			return -1
		}
		return 1
	}
	pm := cbuf(&ws.powers, maxOrder) // pole^m
	pw := complex(1, 0)
	for m := 0; m < maxOrder; m++ {
		pm[m] = pw
		pw *= ta.Pole
	}
	for i, ai := range ta.Coef {
		if ai == 0 {
			continue
		}
		n := i + 1
		for m := 0; m < n; m++ {
			order := n - m // resulting Erlang order
			coef[order-1] += ai * sign(m) * g[m] * pm[m]
		}
	}
	out.AddTerm(ta.Pole, coef)
}

// taylorAt returns the first n Taylor coefficients g_m = G^{(m)}(x)/m! of the
// term function G(s) = sum_j B_j (q/(q-s))^{j+1} around s = x:
// g_m = sum_j B_j q^{j+1} C(j+m, m) (q-x)^{-(j+1+m)}.
// The result lives in ws.taylor until the next workspace use.
func taylorAt(t Term, x complex128, n int, ws *Workspace) []complex128 {
	g := cbuf(&ws.taylor, n)
	q := t.Pole
	qx := q - x
	for j, bj := range t.Coef {
		if bj == 0 {
			continue
		}
		// base = q^{j+1} (q-x)^{-(j+1)}; then multiply by C(j+m,m)(q-x)^{-m}.
		base := cmplx.Pow(q/qx, complex(float64(j+1), 0))
		binom := complex(1, 0) // C(j+0, 0)
		inv := complex(1, 0)   // (q-x)^{-m}
		for m := 0; m < n; m++ {
			if m > 0 {
				binom *= complex(float64(j+m), 0) / complex(float64(m), 0)
				inv /= qx
			}
			g[m] += bj * base * binom * inv
		}
	}
	return g
}

// MulAll folds Mul over the argument list (Dirac at 0 is the unit).
func MulAll(ms ...Mix) Mix {
	out := NewAtom(1)
	for _, m := range ms {
		out = Mul(out, m)
	}
	return out
}

// Validate checks that m plausibly is a probability distribution: total mass
// 1, atom in [0,1], real tails, and a monotone nonincreasing tail on a probe
// grid out to several means. It returns a descriptive error otherwise.
func (m Mix) Validate() error {
	if math.Abs(m.TotalMass()-1) > 1e-6 {
		return fmt.Errorf("%w: total mass %v", ErrInvalid, m.TotalMass())
	}
	if m.Atom < -1e-9 || m.Atom > 1+1e-9 {
		return fmt.Errorf("%w: atom %v", ErrInvalid, m.Atom)
	}
	if imag(m.Eval(0)) > 1e-8 {
		return fmt.Errorf("%w: imaginary mass %v", ErrInvalid, imag(m.Eval(0)))
	}
	mean := m.Mean()
	if math.IsNaN(mean) || mean < -1e-9 {
		return fmt.Errorf("%w: mean %v", ErrInvalid, mean)
	}
	span := 10 * (mean + 1e-9)
	prev := math.Inf(1)
	for i := 0; i <= 64; i++ {
		x := span * float64(i) / 64
		ta := m.Tail(x)
		if ta > prev+1e-7 {
			return fmt.Errorf("%w: tail increases at x=%v (%v -> %v)", ErrInvalid, x, prev, ta)
		}
		if ta < -1e-7 || ta > 1+1e-7 {
			return fmt.Errorf("%w: tail %v at x=%v", ErrInvalid, ta, x)
		}
		prev = ta
	}
	return nil
}

// String summarizes the mix (atom, number of terms, dominant pole).
func (m Mix) String() string {
	pole, ok := m.DominantPole()
	if !ok {
		return fmt.Sprintf("Mix{atom=%.4g}", m.Atom)
	}
	orders := 0
	for _, t := range m.Terms {
		orders += len(t.Coef)
	}
	return fmt.Sprintf("Mix{atom=%.4g, terms=%d, orders=%d, dominant=%.4g%+.4gi}",
		m.Atom, len(m.Terms), orders, real(pole), imag(pole))
}

// SortTerms orders terms by real part of the pole (dominant first); useful
// for stable output in reports and tests.
func (m *Mix) SortTerms() {
	sort.Slice(m.Terms, func(i, j int) bool {
		ri, rj := real(m.Terms[i].Pole), real(m.Terms[j].Pole)
		if ri != rj {
			return ri < rj
		}
		return imag(m.Terms[i].Pole) < imag(m.Terms[j].Pole)
	})
}
