package mgf

import (
	"math"
	"testing"
)

func TestSumMatchesMulWhenWellConditioned(t *testing.T) {
	a := NewErlang(0.3, 2, 5)
	a.Atom = 0.7
	b := NewErlang(1, 4, 1.2)
	mul := Mul(a, b)
	sum := Sum{A: a, B: b}
	if err := mul.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum.TotalMass()-1) > 1e-12 {
		t.Fatalf("sum mass = %v", sum.TotalMass())
	}
	for _, x := range []float64{0, 0.1, 0.5, 1, 3, 8, 15} {
		got := sum.Tail(x)
		want := mul.Tail(x)
		if math.Abs(got-want) > 1e-8 {
			t.Errorf("tail(%v): conv %v vs mul %v", x, got, want)
		}
	}
	if math.Abs(sum.Mean()-mul.Mean()) > 1e-12 {
		t.Errorf("means differ: %v vs %v", sum.Mean(), mul.Mean())
	}
	q1, err := sum.Quantile(0.99999)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := mul.Quantile(0.99999)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q1-q2) > 1e-4*(1+q2) {
		t.Errorf("quantiles differ: %v vs %v", q1, q2)
	}
}

func TestSumNestsAsLaw(t *testing.T) {
	a := NewExponential(1, 3)
	b := NewExponential(1, 5)
	c := NewExponential(1, 7)
	nested := Sum{A: a, B: Sum{A: b, B: c}}
	direct := MulAll(a, b, c)
	for _, x := range []float64{0.1, 0.5, 1.5} {
		got := nested.Tail(x)
		want := direct.Tail(x)
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("nested tail(%v): %v vs %v", x, got, want)
		}
	}
	if got := AtomOf(nested); math.Abs(got) > 1e-9 {
		t.Errorf("atom of continuous sum = %v", got)
	}
}

func TestSumSurvivesIllConditionedPoles(t *testing.T) {
	// Two poles separated by 1e-5 relative: Mul's Taylor amplification is
	// ~(1e5)^(orders); Sum must stay accurate. Ground truth by Monte Carlo
	// is overkill: with rates this close the sum is essentially
	// Erlang(2+5, rate).
	rate := 100.0
	a := NewErlang(1, 2, rate)
	b := NewErlang(1, 5, rate*(1+1e-5))
	if EstimateMulError(a, b) < 1e-9 {
		t.Skip("pole-merge tolerance absorbed the near-collision")
	}
	sum := Sum{A: a, B: b}
	ref := NewErlang(1, 7, rate) // 2+5 exponentials at ~the same rate
	for _, x := range []float64{0.01, 0.05, 0.1, 0.2} {
		got := sum.Tail(x)
		want := ref.Tail(x)
		if math.Abs(got-want) > 1e-4 {
			t.Errorf("tail(%v): %v vs erlang-7 reference %v", x, got, want)
		}
	}
}

func TestEstimateMulErrorOrdering(t *testing.T) {
	far := EstimateMulError(NewErlang(1, 3, 1), NewErlang(1, 3, 10))
	near := EstimateMulError(NewErlang(1, 3, 1), NewErlang(1, 3, 1.001))
	if far >= near {
		t.Errorf("well-separated poles (%v) should score below near poles (%v)", far, near)
	}
	if near < 1e-9 {
		t.Errorf("near-coincident poles should exceed the budget: %v", near)
	}
	same := EstimateMulError(NewErlang(1, 3, 2), NewErlang(1, 4, 2))
	if same != 0 {
		t.Errorf("identical poles merge exactly; estimate should be 0, got %v", same)
	}
}

func TestSumQuantileErrorPaths(t *testing.T) {
	s := Sum{A: NewAtom(1), B: NewAtom(1)}
	if _, err := s.Quantile(0); err == nil {
		t.Error("accepted p=0")
	}
	q, err := s.Quantile(0.5)
	if err != nil || q != 0 {
		t.Errorf("quantile of delta at 0: %v, %v", q, err)
	}
}

func BenchmarkSumTail(b *testing.B) {
	s := Sum{A: NewErlang(1, 9, 0.3), B: NewErlang(1, 8, 0.25)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Tail(50)
	}
}
