package mgf

import (
	"math"
	"math/cmplx"
	"testing"

	"fpsping/internal/dist"
	"fpsping/internal/xmath"
)

func TestExponentialMixBasics(t *testing.T) {
	m := NewExponential(1, 2) // Exp(2)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Mean()-0.5) > 1e-12 {
		t.Errorf("mean = %v", m.Mean())
	}
	if math.Abs(m.Tail(1)-math.Exp(-2)) > 1e-12 {
		t.Errorf("tail(1) = %v", m.Tail(1))
	}
	if math.Abs(m.PDF(0.3)-2*math.Exp(-0.6)) > 1e-12 {
		t.Errorf("pdf(0.3) = %v", m.PDF(0.3))
	}
	q, err := m.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q-math.Log(2)/2) > 1e-9 {
		t.Errorf("median = %v", q)
	}
}

func TestErlangMixMatchesDist(t *testing.T) {
	m := NewErlang(1, 9, 0.3)
	e, _ := dist.NewErlang(9, 0.3)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1, 10, 30, 60, 120} {
		if got, want := m.Tail(x), e.Tail(x); math.Abs(got-want) > 1e-10 {
			t.Errorf("tail(%v) = %v, want %v", x, got, want)
		}
	}
	if math.Abs(m.Mean()-30) > 1e-9 {
		t.Errorf("mean = %v", m.Mean())
	}
	if math.Abs(m.SecondMoment()-(9*10)/(0.3*0.3)) > 1e-6 {
		t.Errorf("EX2 = %v", m.SecondMoment())
	}
}

func TestMulSamePoleGivesErlang(t *testing.T) {
	// Exp(l) * Exp(l) = Erlang(2, l).
	m := Mul(NewExponential(1, 1.7), NewExponential(1, 1.7))
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.1, 1, 3} {
		want := xmath.ErlangTail(2, 1.7, x)
		if got := m.Tail(x); math.Abs(got-want) > 1e-10 {
			t.Errorf("tail(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestMulDistinctPolesHypoexponential(t *testing.T) {
	// Exp(a) * Exp(b), a != b: tail = (b e^{-ax} - a e^{-bx})/(b-a).
	a, b := 1.0, 2.5
	m := Mul(NewExponential(1, a), NewExponential(1, b))
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 0.2, 1, 4} {
		want := (b*math.Exp(-a*x) - a*math.Exp(-b*x)) / (b - a)
		if got := m.Tail(x); math.Abs(got-want) > 1e-10 {
			t.Errorf("tail(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestMulErlangCrossAgainstMonteCarlo(t *testing.T) {
	// Erlang(3, 1.2) + Erlang(5, 0.4): no simple closed form; cross-check the
	// partial-fraction product against Monte Carlo.
	m := Mul(NewErlang(1, 3, 1.2), NewErlang(1, 5, 0.4))
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	wantMean := 3/1.2 + 5/0.4
	if math.Abs(m.Mean()-wantMean) > 1e-9 {
		t.Fatalf("mean = %v, want %v", m.Mean(), wantMean)
	}
	e1, _ := dist.NewErlang(3, 1.2)
	e2, _ := dist.NewErlang(5, 0.4)
	r := dist.NewRNG(8)
	const n = 400_000
	probes := []float64{5, 10, 15, 25, 35}
	counts := make([]int, len(probes))
	for i := 0; i < n; i++ {
		x := e1.Sample(r) + e2.Sample(r)
		for j, p := range probes {
			if x > p {
				counts[j]++
			}
		}
	}
	for j, p := range probes {
		got := m.Tail(p)
		mc := float64(counts[j]) / n
		tol := 6*math.Sqrt(mc*(1-mc)/n) + 1e-6
		if math.Abs(got-mc) > tol {
			t.Errorf("tail(%v): analytic %v vs MC %v (tol %v)", p, got, mc, tol)
		}
	}
}

func TestMulWithAtomMM1Waiting(t *testing.T) {
	// M/M/1 waiting time: W = (1-rho) delta_0 + rho Exp(mu(1-rho)).
	rho, mu := 0.7, 3.0
	w := NewAtom(1 - rho)
	exp := NewExponential(rho, mu*(1-rho))
	w.Atom += 0 // keep explicit
	m := Mix{Atom: w.Atom, Terms: exp.Terms}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.01, 0.5, 2} {
		want := rho * math.Exp(-mu*(1-rho)*x)
		if got := m.Tail(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("tail(%v) = %v want %v", x, got, want)
		}
	}
	// Convolving two of them: mean adds, mass stays 1.
	conv := Mul(m, m)
	if err := conv.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(conv.Mean()-2*m.Mean()) > 1e-12 {
		t.Errorf("mean not additive: %v vs %v", conv.Mean(), 2*m.Mean())
	}
	if math.Abs(conv.Atom-(1-rho)*(1-rho)) > 1e-12 {
		t.Errorf("atom = %v", conv.Atom)
	}
}

func TestMeanAdditivityUnderMul(t *testing.T) {
	a := Mul(NewErlang(0.4, 2, 1), NewAtom(1)) // 0.4 Erlang(2,1)
	a.Atom = 0.6
	b := NewErlang(1, 4, 2.2)
	c := Mul(a, b)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Mean()-(a.Mean()+b.Mean())) > 1e-10 {
		t.Errorf("mean %v, want %v", c.Mean(), a.Mean()+b.Mean())
	}
	if math.Abs(c.SecondMoment()-(a.SecondMoment()+2*a.Mean()*b.Mean()+b.SecondMoment())) > 1e-8 {
		t.Errorf("second moment mismatch")
	}
}

func TestEvalAtZeroIsMass(t *testing.T) {
	m := NewErlang(0.3, 2, 5)
	m.Atom = 0.7
	if math.Abs(m.TotalMass()-1) > 1e-12 {
		t.Errorf("mass = %v", m.TotalMass())
	}
	// MGF at a negative real s must be <= 1 for a nonneg rv.
	v := m.Eval(complex(-1, 0))
	if real(v) > 1 || math.Abs(imag(v)) > 1e-12 {
		t.Errorf("Eval(-1) = %v", v)
	}
}

func TestComplexConjugatePairRealTail(t *testing.T) {
	// A valid density with complex poles: f(x) = c e^{-x}(1 - cos(wx)) shape
	// built from three terms p=1, p=1+iw, p=1-iw. Choose w=2:
	// f(x) = A e^{-x} - (A/2)(e^{-(1-2i)x} + e^{-(1+2i)x}).
	// Total mass: A(1 - Re( (1)/(1-2i)... )) - just normalize numerically.
	w := 2.0
	p1 := complex(1, 0)
	p2 := complex(1, w)
	p3 := complex(1, -w)
	// Unnormalized: coefficient of an exponential-type term with pole p and
	// amplitude a contributes a to the tail at 0.
	m := Mix{Terms: []Term{
		{Pole: p1, Coef: []complex128{complex(1, 0)}},
		{Pole: p2, Coef: []complex128{complex(-0.5, 0) * p1 / p2}},
		{Pole: p3, Coef: []complex128{complex(-0.5, 0) * p1 / p3}},
	}}
	mass := m.TotalMass()
	m = m.Scale(1 / mass)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Density must be nonnegative and real on a grid.
	for x := 0.0; x < 8; x += 0.05 {
		if f := m.PDF(x); f < -1e-9 {
			t.Fatalf("negative density %v at %v", f, x)
		}
	}
}

func TestDominantPole(t *testing.T) {
	m := Mix{Terms: []Term{
		{Pole: complex(3, 0), Coef: []complex128{complex(0.2, 0)}},
		{Pole: complex(0.5, 0), Coef: []complex128{complex(0.3, 0)}},
		{Pole: complex(2, 1), Coef: []complex128{complex(0.5, 0)}},
	}}
	p, ok := m.DominantPole()
	if !ok || real(p) != 0.5 {
		t.Errorf("dominant pole = %v ok=%v", p, ok)
	}
	d := m.DominantOnly()
	if len(d.Terms) != 1 || real(d.Terms[0].Pole) != 0.5 {
		t.Errorf("dominant-only terms: %+v", d.Terms)
	}
	// Dominant-only approximates the deep tail of the full mix.
	x := 20.0
	full, approx := m.Tail(x), d.Tail(x)
	if full <= 0 || math.Abs(full-approx)/full > 1e-6 {
		t.Errorf("deep tail: full %v vs dominant %v", full, approx)
	}
	if _, ok := NewAtom(1).DominantPole(); ok {
		t.Error("pure atom should have no dominant pole")
	}
}

func TestQuantileInverseOfTail(t *testing.T) {
	m := Mul(NewErlang(1, 4, 1.5), NewExponential(1, 0.8))
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99, 0.99999} {
		q, err := m.Quantile(p)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.CDF(q); math.Abs(got-p) > 1e-8 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	// Atom-heavy mix: quantile below atom mass is 0.
	m2 := NewExponential(0.2, 1)
	m2.Atom = 0.8
	q, err := m2.Quantile(0.5)
	if err != nil || q != 0 {
		t.Errorf("quantile within atom = %v, %v", q, err)
	}
	if _, err := m.Quantile(0); err == nil {
		t.Error("accepted p=0")
	}
}

func TestMulAllUnit(t *testing.T) {
	m := MulAll(NewAtom(1), NewExponential(1, 2), NewAtom(1))
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Tail(1)-math.Exp(-2)) > 1e-12 {
		t.Errorf("MulAll changed the law: tail(1)=%v", m.Tail(1))
	}
}

func TestValidateCatchesBadMixes(t *testing.T) {
	bad := NewExponential(0.5, 1) // mass 0.5
	if err := bad.Validate(); err == nil {
		t.Error("accepted mass 0.5")
	}
	neg := NewExponential(1.4, 1)
	neg.Atom = -0.4
	if err := neg.Validate(); err == nil {
		t.Error("accepted negative atom")
	}
}

func TestAddTermMergesEqualPoles(t *testing.T) {
	var m Mix
	m.AddTerm(complex(2, 0), []complex128{1})
	m.AddTerm(complex(2, 0), []complex128{0, 0.5})
	if len(m.Terms) != 1 {
		t.Fatalf("terms = %d", len(m.Terms))
	}
	if m.Terms[0].Coef[0] != 1 || m.Terms[0].Coef[1] != 0.5 {
		t.Errorf("coef ladder = %v", m.Terms[0].Coef)
	}
}

func TestTaylorCoefficients(t *testing.T) {
	// Analytic check: for G(s) = (q/(q-s)), g_m(x) = q (q-x)^{-(m+1)}.
	tm := Term{Pole: complex(3, 0), Coef: []complex128{1}}
	x := complex(1, 0)
	g := taylorAt(tm, x, 4, new(Workspace))
	for m := 0; m < 4; m++ {
		want := complex(3, 0) / cmplx.Pow(complex(2, 0), complex(float64(m+1), 0))
		if cmplx.Abs(g[m]-want) > 1e-12 {
			t.Errorf("g[%d] = %v, want %v", m, g[m], want)
		}
	}
}

func TestSortTermsStable(t *testing.T) {
	m := Mix{Terms: []Term{
		{Pole: complex(3, 0)}, {Pole: complex(1, 1)}, {Pole: complex(1, -1)},
	}}
	m.SortTerms()
	if real(m.Terms[0].Pole) != 1 || imag(m.Terms[0].Pole) != -1 {
		t.Errorf("sort order: %+v", m.Terms)
	}
}

func BenchmarkMulErlangTerms(b *testing.B) {
	x := NewErlang(1, 9, 0.3)
	y := NewErlang(1, 8, 0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}

func BenchmarkTailEvaluation(b *testing.B) {
	m := Mul(NewErlang(1, 9, 0.3), NewErlang(1, 8, 0.25))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Tail(50)
	}
}

func BenchmarkQuantile(b *testing.B) {
	m := Mul(NewErlang(1, 9, 0.3), NewErlang(1, 8, 0.25))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Quantile(0.99999); err != nil {
			b.Fatal(err)
		}
	}
}
