package mgf

import (
	"math"
	"math/cmplx"
)

// This file implements the shared-grid quadrature ladder: the convolution
// tail of a Sum evaluated through per-law state that is a pure function of
// the law, extended monotonically across abscissae, and never rebuilt. The
// per-abscissa Simpson scheme in conv.go ties the panel width h = x/n to the
// abscissa, so no two abscissae of a bracket walk share a single grid point;
// here h is derived from the law alone (the same 64-panels-per-decay-length
// density, with the 512/32768 clamps expressed in panels-per-unit), so the
// integration prefix [0, n·h] of every abscissa is a prefix of every later
// one and all Simpson work is shared.
//
// Two evaluation regimes split the A-term x B-term pairs of the integrand
// pdfA(u)·TailB(x-u):
//
//   - Well-separated pairs go through an exact pole-pair closed form. With
//     a' and b' the one-term sub-laws, conditioning on whether X ~ a' exceeds
//     x gives
//
//	int_0^x pdf_a'(u) Tail_b'(x-u) du = Tail_{a'⊗b'}(x) - mass(b')·Tail_a'(x),
//
//     and a'⊗b' is one Appendix-A partial-fraction product, computed once at
//     build time. This is exactly the regime where Mul is well-conditioned
//     (pairMulError below the budget), so the expansion is safe — and it
//     removes from the grid the steep cross terms (e.g. a sharp upstream pole
//     against slow downstream poles) that the per-abscissa scheme resolves
//     worst.
//
//   - Crowded pairs — near-coincident poles, where partial fractions blow
//     up — stay on the quadrature grid, factored so the grid is shareable:
//     expanding (x-u)^r binomially and e^{-q(x-u)} = e^{-qx}·e^{qu} turns the
//     pair contribution into a combination of moments
//
//	M_l(x) = int_0^x pdfS(u)·u^l·e^{qu} du,  l = 0..order(b')-1,
//
//     whose integrands do not depend on x at all. Each moment is a composite
//     Simpson sum over the shared grid plus a 2-panel correction on the
//     partial panel [n·h, x]. The integrand's exponential factor is the
//     *residual* e^{(q-p)u} — near 1 for crowded pairs — so the recurrences
//     are underflow/overflow-safe precisely where this path is used. Prefix
//     parity sums are checkpointed every expResetStride points (the same
//     cadence as the exact cmplx.Exp re-anchors), so evaluating at any
//     abscissa replays at most one block from the nearest checkpoint.
//
// Both regimes are pure functions of (law, x): the ladder changes the cost
// of an evaluation with the visit order, never its value, which is what
// keeps warm==cold and jobs-invariance bit-identical on this path.

const (
	// ladderMinPanels/ladderMaxPanels are conv.go's 512/32768 panel clamps
	// in panels-per-unit form: below the floor the per-abscissa path is at
	// least as accurate and already cheap, above the ceiling it is coarser
	// (and the tail has long since underflowed); both fall back.
	ladderMinPanels = 512
	ladderMaxPanels = 32768
	// ladderCkStride is the checkpoint (and exact re-anchor) cadence of the
	// prefix sums, matching expResetStride's error budget: a replayed block
	// multiplies at most stride rounding errors onto an exact anchor.
	ladderCkStride = expResetStride
	// ladderMaxLevels caps the Erlang order of a B term the moment
	// recurrence carries; higher orders (none exist in the model space)
	// fall back to the per-abscissa path.
	ladderMaxLevels = 16
	// ladderMaxPartners caps the A terms of one crowded channel (stack
	// arrays in the hot walk).
	ladderMaxPartners = 32
	// cfPairBudget is the absolute tail error a closed-form pair may commit
	// (pairMulError estimate): three decades under the 1e-12 equivalence
	// gate, so the whole closed part stays far inside it.
	cfPairBudget = 1e-13
	// ladderMaxExp bounds the residual exponent (q-p)·x of any grid pair:
	// beyond it the moment integrand could overflow, so covers() refuses
	// and the per-abscissa path (which never forms the residual) takes over.
	ladderMaxExp = 690.0
	// ladderRecBudget bounds the estimated rounding error of the binomial
	// recombination (alternating sum of moment terms). Crowded pairs keep
	// the amplification near Stirling-bounded ~O(1); a pathological channel
	// (wide "crowded" gap with large masses at large q·x) trips this and
	// falls back for that abscissa.
	ladderRecBudget = 1e-13
)

// ladderChannel is one crowded B term with its A-side partners: everything
// needed to accumulate the moments M_l on the shared grid.
type ladderChannel struct {
	q      complex128   // B-term pole
	wr     []complex128 // wr[r] = (q^r/r!)·sum_{j>=r} B_j — tail ladder resummed by power
	levels int          // number of moment levels = Erlang order of the B term

	poles []complex128   // A-partner poles p
	steps []complex128   // per-partner residual step e^{(q-p)h}
	coefs [][]complex128 // per-partner Erlang coefficient ladders
	g00   complex128     // moment integrand at u=0, level 0: sum coef[0]·p

	maxResid float64 // max Re(q-p) over partners: growth rate of the integrand

	// ck[m] holds the Simpson parity sums over grid points 1..m·stride for
	// every level: first levels values are the odd-index (weight 4) sums,
	// the next levels the even-index (weight 2, endpoint included) sums.
	ck [][]complex128
}

// ladder is the per-law shared-grid state cached in a Workspace. have/fp/
// lawA/lawB form the generation tag: any law change — even to a law with a
// colliding fingerprint — rebuilds, because the stored clones are compared
// value-exactly on every lookup.
type ladder struct {
	have bool   // tag fields valid (a build was attempted for fp)
	ok   bool   // ladder usable (false: law shape unsupported, always fall back)
	fp   uint64 // fingerprint of (lawA, lawB)
	lawA Mix    // deep copies of the tagged law, for exact invalidation
	lawB Mix

	h        float64 // shared panel width 1/(64·sharpestDecay(A))
	closed   Mix     // head terms + every closed-form pair, one Mix built at tag time
	channels []ladderChannel
	xMaxSafe float64 // covers() ceiling from the residual-exponent guard
}

// mixEqual reports value-exact equality (float bits, term order).
func mixEqual(a, b Mix) bool {
	if a.Atom != b.Atom || len(a.Terms) != len(b.Terms) {
		return false
	}
	for i := range a.Terms {
		if a.Terms[i].Pole != b.Terms[i].Pole || len(a.Terms[i].Coef) != len(b.Terms[i].Coef) {
			return false
		}
		for j := range a.Terms[i].Coef {
			if a.Terms[i].Coef[j] != b.Terms[i].Coef[j] {
				return false
			}
		}
	}
	return true
}

// lawFingerprint hashes every float bit of (a, b) — FNV-1a over the word
// stream. It is a fast reject; lookups confirm with mixEqual.
func lawFingerprint(a, b Mix) uint64 {
	const prime = 1099511628211
	h := uint64(1469598103934665603)
	word := func(v uint64) {
		h ^= v
		h *= prime
	}
	f := func(v float64) { word(math.Float64bits(v)) }
	c := func(v complex128) { f(real(v)); f(imag(v)) }
	hashMix := func(m Mix) {
		f(m.Atom)
		word(uint64(len(m.Terms)))
		for _, t := range m.Terms {
			c(t.Pole)
			word(uint64(len(t.Coef)))
			for _, cf := range t.Coef {
				c(cf)
			}
		}
	}
	hashMix(a)
	hashMix(b)
	return h
}

// pairMulError is EstimateMulError restricted to one cross pair: the
// absolute coefficient error the Appendix-A expansion of ta⊗tb would commit.
func pairMulError(ta, tb Term) float64 {
	if samePole(ta.Pole, tb.Pole) {
		return 0 // exact Erlang-order merge, no partial fractions
	}
	const eps = 2.220446049250313e-16
	gap := cmplx.Abs(ta.Pole - tb.Pole)
	ra := cmplx.Abs(ta.Pole) / gap
	rb := cmplx.Abs(tb.Pole) / gap
	var ma, mb float64
	for _, c := range ta.Coef {
		ma += cmplx.Abs(c)
	}
	for _, c := range tb.Coef {
		mb += cmplx.Abs(c)
	}
	ord := float64(len(ta.Coef) + len(tb.Coef))
	amp := ma * mb * (math.Pow(math.Max(rb, 1), ord) + math.Pow(math.Max(ra, 1), ord))
	return eps * amp
}

// ladderFor returns the ladder for the law (A=a, B=b), building it if the
// workspace's cached one is tagged for a different law. nil means the law
// shape is unsupported and the caller must use the per-abscissa path.
func (ws *Workspace) ladderFor(a, b Mix, sharp float64) *ladder {
	ld := &ws.lad
	fp := lawFingerprint(a, b)
	if ld.have && ld.fp == fp && mixEqual(ld.lawA, a) && mixEqual(ld.lawB, b) {
		if !ld.ok {
			return nil
		}
		return ld
	}
	ld.build(a, b, sharp, fp, ws)
	if !ld.ok {
		return nil
	}
	return ld
}

// build tags ld for (a, b) and constructs the closed part and the crowded
// channels. On unsupported shapes it leaves ok=false (the tag still set, so
// the rejection is remembered and not re-derived per abscissa).
func (ld *ladder) build(a, b Mix, sharp float64, fp uint64, ws *Workspace) {
	ld.have, ld.ok = true, false
	ld.fp = fp
	ld.lawA, ld.lawB = a.Clone(), b.Clone()
	ld.closed = Mix{}
	ld.channels = ld.channels[:0]
	if !(sharp > 0) {
		return
	}
	ld.h = 1 / (64 * sharp)
	for _, t := range a.Terms {
		if !(real(t.Pole) > 0) {
			return // not a decaying density: leave it to the generic path
		}
	}
	for _, t := range b.Terms {
		if !(real(t.Pole) > 0) {
			return
		}
	}

	// Head terms of Sum.Tail: A.Atom·TailB(x) + TailA(x), folded into the
	// closed mix so one Mix.Tail serves the whole non-grid part.
	for _, tb := range b.Terms {
		if a.Atom != 0 {
			ld.closed.AddTerm(tb.Pole, scaleCoef(tb.Coef, complex(a.Atom, 0), ws))
		}
	}
	for _, ta := range a.Terms {
		ld.closed.AddTerm(ta.Pole, ta.Coef)
	}

	ld.xMaxSafe = math.Inf(1)
	for _, tb := range b.Terms {
		var partners []int
		for i, ta := range a.Terms {
			if pairMulError(ta, tb) < cfPairBudget {
				// Closed form: Tail_{ta⊗tb}(x) - mass(tb)·Tail_ta(x).
				pair := MulWS(Mix{Terms: []Term{ta}}, Mix{Terms: []Term{tb}}, ws)
				for _, t := range pair.Terms {
					ld.closed.AddTerm(t.Pole, t.Coef)
				}
				var massB complex128
				for _, c := range tb.Coef {
					massB += c
				}
				ld.closed.AddTerm(ta.Pole, scaleCoef(ta.Coef, -massB, ws))
				continue
			}
			partners = append(partners, i)
		}
		if len(partners) == 0 {
			continue
		}
		if len(tb.Coef) > ladderMaxLevels || len(partners) > ladderMaxPartners {
			return // unsupported shape: remembered as ok=false
		}
		ch := ladderChannel{q: tb.Pole, levels: len(tb.Coef)}
		// wr[r] = (q^r/r!)·sum_{j>=r} B_j, built with a running q^r/r!.
		ch.wr = make([]complex128, ch.levels)
		qr := complex(1, 0)
		for r := 0; r < ch.levels; r++ {
			var br complex128
			for j := r; j < len(tb.Coef); j++ {
				br += tb.Coef[j]
			}
			ch.wr[r] = br * qr
			qr *= divRe(tb.Pole, float64(r+1))
		}
		ch.maxResid = math.Inf(-1)
		for _, i := range partners {
			ta := a.Terms[i]
			ch.poles = append(ch.poles, ta.Pole)
			ch.steps = append(ch.steps, cmplx.Exp((tb.Pole-ta.Pole)*complex(ld.h, 0)))
			ch.coefs = append(ch.coefs, ta.Coef)
			ch.g00 += ta.Coef[0] * ta.Pole
			if r := real(tb.Pole - ta.Pole); r > ch.maxResid {
				ch.maxResid = r
			}
		}
		ch.ck = append(ch.ck, make([]complex128, 2*ch.levels)) // checkpoint 0: empty sums
		if ch.maxResid > 0 {
			if lim := ladderMaxExp / ch.maxResid; lim < ld.xMaxSafe {
				ld.xMaxSafe = lim
			}
		}
		ld.channels = append(ld.channels, ch)
	}
	ld.ok = true
}

// tailAt evaluates the full Sum tail at x through the ladder. ok=false means
// x is outside the ladder's regime (panel floor/ceiling, residual-exponent
// guard, or a recombination-conditioning trip) and the caller must fall back;
// both the value and the refusal are pure functions of (law, x).
func (ld *ladder) tailAt(x float64) (float64, bool) {
	n := int(x / ld.h)
	if n < ladderMinPanels || n > ladderMaxPanels || x > ld.xMaxSafe {
		return 0, false
	}
	n &^= 1 // even panel count for the composite Simpson prefix
	w := x - float64(n)*ld.h
	for w < 0 { // float quotient rounded up past x: step back a panel pair
		n -= 2
		w = x - float64(n)*ld.h
	}
	v := ld.closed.Tail(x)
	for i := range ld.channels {
		cv, ok := ld.channels[i].eval(ld.h, x, n, w)
		if !ok {
			return 0, false
		}
		v += real(cv)
	}
	return v, true
}

// grow extends the checkpointed prefix sums to cover grid index n. Each new
// block anchors the residual exponentials exactly at its head and replays
// stride points — the identical arithmetic eval's tail replay uses, so a
// value at index i has the same bits whether the ladder grew in one call or
// many.
func (ch *ladderChannel) grow(h float64, n int) {
	need := n / ladderCkStride
	for len(ch.ck)-1 < need {
		b := len(ch.ck) - 1
		var s4, s2 [ladderMaxLevels]complex128
		prev := ch.ck[b]
		for l := 0; l < ch.levels; l++ {
			s4[l], s2[l] = prev[l], prev[ch.levels+l]
		}
		ch.walk(h, b*ladderCkStride, (b+1)*ladderCkStride, &s4, &s2, nil)
		next := make([]complex128, 2*ch.levels)
		for l := 0; l < ch.levels; l++ {
			next[l], next[ch.levels+l] = s4[l], s2[l]
		}
		ch.ck = append(ch.ck, next)
	}
}

// walk accumulates the moment integrand g_l(i) = pdfS(h·i)·(h·i)^l·e^{q·h·i}
// over grid indices from+1..to into the parity sums, anchoring the residual
// exponentials e^{(q-p)·h·i} exactly at index `from`. gEnd, when non-nil,
// receives g_l(to).
func (ch *ladderChannel) walk(h float64, from, to int, s4, s2, gEnd *[ladderMaxLevels]complex128) {
	if to <= from {
		return
	}
	var es [ladderMaxPartners]complex128
	for t := range ch.poles {
		es[t] = cmplx.Exp((ch.q - ch.poles[t]) * complex(h*float64(from), 0))
	}
	for i := from + 1; i <= to; i++ {
		u := h * float64(i)
		var base complex128
		for t := range ch.poles {
			es[t] *= ch.steps[t]
			p := ch.poles[t]
			f := p * es[t]
			coefs := ch.coefs[t]
			last := len(coefs) - 1
			pu := p * complex(u, 0)
			for k, c := range coefs {
				base += c * f
				if k < last {
					f *= divRe(pu, float64(k+1))
				}
			}
		}
		dst := s2
		if i&1 == 1 {
			dst = s4
		}
		ul := complex(1, 0)
		for l := 0; l < ch.levels; l++ {
			g := base * ul
			dst[l] += g
			if gEnd != nil && i == to {
				gEnd[l] = g
			}
			ul *= complex(u, 0)
		}
	}
}

// direct evaluates the moment integrand at an arbitrary (off-grid) abscissa:
// the remainder panel's interior and endpoint, and the prefix endpoint when
// it falls exactly on a checkpoint.
func (ch *ladderChannel) direct(u float64, g *[ladderMaxLevels]complex128) {
	var base complex128
	for t := range ch.poles {
		p := ch.poles[t]
		e := cmplx.Exp((ch.q - p) * complex(u, 0))
		f := p * e
		coefs := ch.coefs[t]
		last := len(coefs) - 1
		pu := p * complex(u, 0)
		for k, c := range coefs {
			base += c * f
			if k < last {
				f *= divRe(pu, float64(k+1))
			}
		}
	}
	ul := complex(1, 0)
	for l := 0; l < ch.levels; l++ {
		g[l] = base * ul
		ul *= complex(u, 0)
	}
}

// eval returns this channel's contribution to the convolution integral at x:
// moments from the shared prefix (nearest checkpoint + at most one replayed
// block) plus a 2-panel Simpson correction on [n·h, x], recombined through
// the binomial expansion of (x-u)^r. ok=false reports a conditioning trip in
// the alternating recombination (see ladderRecBudget).
func (ch *ladderChannel) eval(h, x float64, n int, w float64) (complex128, bool) {
	ch.grow(h, n)
	c := n / ladderCkStride
	var s4, s2, gEnd [ladderMaxLevels]complex128
	prev := ch.ck[c]
	for l := 0; l < ch.levels; l++ {
		s4[l], s2[l] = prev[l], prev[ch.levels+l]
	}
	if n > c*ladderCkStride {
		ch.walk(h, c*ladderCkStride, n, &s4, &s2, &gEnd)
	} else {
		ch.direct(h*float64(n), &gEnd)
	}
	var m [ladderMaxLevels]complex128
	h3 := complex(h/3, 0)
	for l := 0; l < ch.levels; l++ {
		var g0 complex128
		if l == 0 {
			g0 = ch.g00
		}
		// Composite Simpson over [0, n·h]: endpoints + 4·odd + 2·interior
		// even; s2 includes the endpoint, hence the -gEnd.
		m[l] = h3 * (g0 + 4*s4[l] + 2*s2[l] - gEnd[l])
	}
	if w > 0 {
		var gm, gx [ladderMaxLevels]complex128
		ch.direct(float64(n)*h+w/2, &gm)
		ch.direct(x, &gx)
		w6 := complex(w/6, 0)
		for l := 0; l < ch.levels; l++ {
			m[l] += w6 * (gEnd[l] + 4*gm[l] + gx[l])
		}
	}
	// sum_l (-1)^l M_l · sum_{r>=l} wr[r]·C(r,l)·x^{r-l}, then ·e^{-qx}.
	var sum complex128
	var mag float64
	sign := 1.0
	for l := 0; l < ch.levels; l++ {
		wl := ch.wr[l] // r = l: C(l,l)=1, x^0
		binom, xp := 1.0, 1.0
		for r := l + 1; r < ch.levels; r++ {
			binom *= float64(r) / float64(r-l)
			xp *= x
			wl += ch.wr[r] * complex(binom*xp, 0)
		}
		term := m[l] * wl
		if sign > 0 {
			sum += term
		} else {
			sum -= term
		}
		mag += math.Abs(real(term)) + math.Abs(imag(term))
		sign = -sign
	}
	eqx := cmplx.Exp(-ch.q * complex(x, 0))
	const eps = 2.220446049250313e-16
	if mag*eps*cmplx.Abs(eqx) > ladderRecBudget {
		return 0, false
	}
	return eqx * sum, true
}
