package mgf

import (
	"math"
	"testing"
)

// testMixes returns a spread of mixes exercising every Mul branch: atoms,
// same-pole merges, distinct real poles and a complex-conjugate pair.
func testMixes() []Mix {
	withAtom := NewErlang(0.3, 2, 5)
	withAtom.Atom = 0.7
	var conj Mix
	conj.Atom = 0.5
	conj.AddTerm(complex(2, 1.5), []complex128{complex(0.25, -0.1)})
	conj.AddTerm(complex(2, -1.5), []complex128{complex(0.25, 0.1)})
	return []Mix{
		NewExponential(1, 3),
		NewErlang(1, 4, 1.2),
		NewErlang(1, 3, 5), // same pole as withAtom's term: exact merge
		withAtom,
		conj,
	}
}

// TestMulWSMatchesMul pins that the workspace-reusing product is the same
// arithmetic as the allocating one: every pairing, with ONE workspace
// carried across all products (so stale scratch from a previous product
// must never leak into the next), is bit-identical to Mul.
func TestMulWSMatchesMul(t *testing.T) {
	mixes := testMixes()
	ws := new(Workspace)
	for i, a := range mixes {
		for j, b := range mixes {
			want := Mul(a, b)
			got := MulWS(a, b, ws)
			if got.Atom != want.Atom {
				t.Errorf("(%d,%d): atom %v != %v", i, j, got.Atom, want.Atom)
			}
			if len(got.Terms) != len(want.Terms) {
				t.Fatalf("(%d,%d): %d terms != %d", i, j, len(got.Terms), len(want.Terms))
			}
			for k := range got.Terms {
				if got.Terms[k].Pole != want.Terms[k].Pole {
					t.Errorf("(%d,%d) term %d: pole %v != %v", i, j, k,
						got.Terms[k].Pole, want.Terms[k].Pole)
				}
				for c := range got.Terms[k].Coef {
					if got.Terms[k].Coef[c] != want.Terms[k].Coef[c] {
						t.Errorf("(%d,%d) term %d coef %d: %v != %v", i, j, k, c,
							got.Terms[k].Coef[c], want.Terms[k].Coef[c])
					}
				}
			}
		}
	}
}

// lawOnly hides a Mix's concrete type from Sum.TailWS, forcing the generic
// point-by-point quadrature path.
type lawOnly struct{ m Mix }

func (l lawOnly) Tail(x float64) float64 { return l.m.Tail(x) }
func (l lawOnly) Mean() float64          { return l.m.Mean() }
func (l lawOnly) TotalMass() float64     { return l.m.TotalMass() }

// TestSumTailGridMatchesDirect pins the exp-recurrence grid evaluators of
// the per-abscissa path against the direct per-point quadrature over the
// same grid: the recurrence re-anchors every expResetStride steps, so the
// two must agree to ~1e-12. tailGrid is called directly — through Tail the
// ladder answers in this regime, and what it changes is covered by the
// equivalence gate in ladder_test.go, not by this recurrence contract.
func TestSumTailGridMatchesDirect(t *testing.T) {
	a := NewErlang(1, 9, 0.3)
	var ws Workspace
	for _, b := range []Mix{NewErlang(1, 8, 0.25), testMixes()[4]} {
		fast := Sum{A: a, B: b}
		slow := Sum{A: a, B: lawOnly{b}}
		for _, x := range []float64{0.5, 5, 50, 200, 2000} {
			got := fast.tailGrid(x, b, &ws, fast.sharpestDecay())
			want := slow.Tail(x)
			if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
				t.Errorf("B=%v tail(%v): grid %v vs direct %v (diff %g)",
					b, x, got, want, got-want)
			}
		}
	}
}

// TestSumTailWSAllocs pins the allocation contract of the compiled
// evaluator's hot loop: with a caller-held workspace whose buffers have been
// grown once, a tail evaluation allocates nothing.
func TestSumTailWSAllocs(t *testing.T) {
	s := Sum{A: NewErlang(1, 9, 0.3), B: NewErlang(1, 8, 0.25)}
	ws := new(Workspace)
	s.TailWS(50, ws) // grow the grids
	allocs := testing.AllocsPerRun(50, func() { s.TailWS(50, ws) })
	if allocs > 0 {
		t.Errorf("Sum.TailWS with warm workspace allocates %v per run, want 0", allocs)
	}
}

// TestQuantileHintBitIdentical is the warm-start contract at the law level:
// inverting a ladder of laws with one hint threaded through (in order and
// out of order) returns exactly the bits of independent cold inversions.
func TestQuantileHintBitIdentical(t *testing.T) {
	// A ladder of stochastically growing laws, like a load sweep's.
	var sums []Sum
	for _, rate := range []float64{0.40, 0.32, 0.25, 0.18, 0.12, 0.32, 0.45} {
		sums = append(sums, Sum{A: NewErlang(1, 9, 0.3), B: NewErlang(1, 8, rate)})
	}
	for _, p := range []float64{0.99, 0.99999} {
		var hint TailHint
		for i, s := range sums {
			warm, err := s.QuantileHint(p, &hint)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := s.Quantile(p)
			if err != nil {
				t.Fatal(err)
			}
			if warm != cold {
				t.Errorf("sum %d p=%v: warm %v != cold %v", i, p, warm, cold)
			}
		}
		var mixHint TailHint
		for i, r := range []float64{3, 2, 1.2, 0.8, 2.5} {
			m := NewErlang(1, 4, r)
			warm, err := m.QuantileHint(p, &mixHint)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := m.Quantile(p)
			if err != nil {
				t.Fatal(err)
			}
			if warm != cold {
				t.Errorf("mix %d p=%v: warm %v != cold %v", i, p, warm, cold)
			}
		}
	}
}

// TestSumTailBatchWSBitIdentical pins the batch evaluator's contract: every
// entry equals the standalone TailWS bits exactly — the batch amortizes the
// per-probe setup (workspace borrow, decay-rate scan), never the grid.
func TestSumTailBatchWSBitIdentical(t *testing.T) {
	sums := []Sum{
		{A: NewErlang(1, 9, 0.3), B: NewErlang(1, 8, 0.25)},
		{A: NewErlang(1, 9, 0.3), B: testMixes()[4]},
	}
	xs := []float64{0, 0.5, 5, 50, 200, 2000, 37.5, 5} // repeats and out-of-order on purpose
	for si, s := range sums {
		out := make([]float64, len(xs))
		ws := new(Workspace)
		s.TailBatchWS(xs, out, ws)
		for i, x := range xs {
			if want := s.Tail(x); out[i] != want {
				t.Errorf("sum %d tail(%v): batch %v != standalone %v", si, x, out[i], want)
			}
		}
		// nil workspace borrows from the pool; same bits.
		out2 := make([]float64, len(xs))
		s.TailBatchWS(xs, out2, nil)
		for i := range xs {
			if out2[i] != out[i] {
				t.Errorf("sum %d probe %d: pooled-ws batch %v != explicit-ws %v", si, i, out2[i], out[i])
			}
		}
	}
}

// BenchmarkSumTailBatch measures the batched tail evaluation the quantile
// inversion's bracket walk uses, against the same probes evaluated one
// TailWS call at a time.
func BenchmarkSumTailBatch(b *testing.B) {
	s := Sum{A: NewErlang(1, 9, 0.3), B: NewErlang(1, 8, 0.25)}
	xs := []float64{12.5, 25, 50, 100, 200, 400}
	out := make([]float64, len(xs))
	ws := new(Workspace)
	s.TailBatchWS(xs, out, ws) // warm the grids
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.TailBatchWS(xs, out, ws)
		}
	})
	b.Run("pointwise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j, x := range xs {
				out[j] = s.TailWS(x, ws)
			}
		}
	})
}
