// Package runner is the repo's shared concurrent execution engine: a
// deterministic fan-out over an indexed job set. Every sweep, replication and
// artifact in the layers above (internal/experiments, internal/core, the CLI
// report mode) funnels through Map/TryMap, so one place owns worker-pool
// sizing, ordered result collection, error aggregation and progress
// reporting.
//
// Determinism contract: results are collected by job index, never by
// completion order, and jobs must derive any randomness from their own index
// (dist.NewRNG(seed, jobIndex)-style splitting), so output is byte-identical
// at any worker count - including Workers=1.
package runner

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the worker count used when Options.Workers <= 0: one
// worker per schedulable CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// The process-wide concurrency bound. Every Map runs jobs on its calling
// goroutine and adds helper goroutines only while the global helper count is
// below the cap, so stacked fan-outs (a report running artifacts that run
// sweeps) cannot multiply past the operator's -jobs bound: total running
// jobs stay <= 1 + cap whatever the nesting. Callers never need a token,
// which keeps nested Maps deadlock-free - a saturated pool just degrades to
// inline execution.
var (
	helperCount atomic.Int64
	helperCap   atomic.Int64
)

func init() { helperCap.Store(int64(DefaultWorkers() - 1)) }

// SetMaxParallel bounds the total number of concurrently running jobs across
// every (possibly nested) Map in the process to n; n < 1 is treated as 1
// (fully serial). The default is DefaultWorkers(). Top-level entry points
// (the CLI's -jobs flag, experiments.Report) call this; results are
// byte-identical at any setting.
func SetMaxParallel(n int) {
	if n < 1 {
		n = 1
	}
	helperCap.Store(int64(n - 1))
}

// acquireHelper claims a helper slot if the cap allows.
func acquireHelper() bool {
	for {
		cur := helperCount.Load()
		if cur >= helperCap.Load() {
			return false
		}
		if helperCount.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

func releaseHelper() { helperCount.Add(-1) }

// Options configures one fan-out.
type Options struct {
	// Workers caps this call's concurrently running jobs; <= 0 means
	// DefaultWorkers(). The process-wide SetMaxParallel bound applies on
	// top of it. Workers=1 degenerates to a serial loop on the calling
	// goroutine (no spawning), which keeps single-job callers and the
	// -jobs=1 CLI path allocation-free.
	Workers int
	// Progress, when non-nil, is called after each job completes with the
	// number of finished jobs and the total. Calls are serialized but
	// arrive in completion order, so Progress must not be used to build
	// deterministic output - it is for live reporting only.
	Progress func(done, total int)
}

// JobError wraps a job's failure with its index, so aggregated errors name
// the grid point (load, K, replica...) that failed.
type JobError struct {
	Job int
	Err error
}

// Error formats "job N: cause".
func (e JobError) Error() string { return fmt.Sprintf("job %d: %v", e.Job, e.Err) }

// Unwrap exposes the cause to errors.Is/As.
func (e JobError) Unwrap() error { return e.Err }

// workers resolves the effective worker count for n jobs.
func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = DefaultWorkers()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// TryMap runs fn for every job index in [0, n) on a bounded worker pool and
// returns the results and errors ordered by job index (both always length n).
// Unlike Map it never discards partial results: callers that must replicate
// ordered early-exit semantics (e.g. a sweep that stops at the first unstable
// point) post-filter the full slices.
func TryMap[T any](n int, o Options, fn func(job int) (T, error)) ([]T, []error) {
	out := make([]T, n)
	errs := make([]error, n)
	if n == 0 {
		return out, errs
	}

	w := o.workers(n)
	if w == 1 {
		for i := 0; i < n; i++ {
			out[i], errs[i] = fn(i)
			if o.Progress != nil {
				o.Progress(i+1, n)
			}
		}
		return out, errs
	}

	var next atomic.Int64
	var mu sync.Mutex // serializes Progress
	done := 0
	runJobs := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			out[i], errs[i] = fn(i)
			if o.Progress != nil {
				mu.Lock()
				done++
				o.Progress(done, n)
				mu.Unlock()
			}
		}
	}
	// The caller is always a worker; add helpers up to this call's cap while
	// the process-wide cap has room.
	var wg sync.WaitGroup
	for k := 0; k < w-1 && acquireHelper(); k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer releaseHelper()
			runJobs()
		}()
	}
	runJobs()
	wg.Wait()
	return out, errs
}

// Map runs fn for every job index in [0, n) and returns the ordered results,
// or the aggregate of every job failure (in index order, each wrapped in a
// JobError) if any job errored.
func Map[T any](n int, o Options, fn func(job int) (T, error)) ([]T, error) {
	out, errs := TryMap(n, o, fn)
	var failed []error
	for i, err := range errs {
		if err != nil {
			failed = append(failed, JobError{Job: i, Err: err})
		}
	}
	if len(failed) > 0 {
		return nil, errors.Join(failed...)
	}
	return out, nil
}

// Items is Map over an explicit slice: fn receives each item with its index
// and results come back in item order.
func Items[S, T any](items []S, o Options, fn func(job int, item S) (T, error)) ([]T, error) {
	return Map(len(items), o, func(i int) (T, error) { return fn(i, items[i]) })
}
