package runner

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
)

// TestMain widens the process-wide cap so the parallel paths are exercised
// even on single-CPU machines (where the default cap would serialize
// everything).
func TestMain(m *testing.M) {
	SetMaxParallel(8)
	os.Exit(m.Run())
}

// TestMapOrderedAtAnyWorkerCount is the package's core contract: results come
// back in job order whatever the pool size.
func TestMapOrderedAtAnyWorkerCount(t *testing.T) {
	const n = 100
	for _, w := range []int{0, 1, 2, 7, 16, 200} {
		out, err := Map(n, Options{Workers: w}, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(out) != n {
			t.Fatalf("workers=%d: %d results", w, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", w, i, v)
			}
		}
	}
}

// TestMapAggregatesErrorsInJobOrder checks every failure is reported, indexed
// and in job order, and that partial success still fails the whole Map.
func TestMapAggregatesErrorsInJobOrder(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := Map(10, Options{Workers: 4}, func(i int) (int, error) {
		if i%3 == 0 {
			return 0, fmt.Errorf("%w at %d", sentinel, i)
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected aggregated error")
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("aggregate hides cause: %v", err)
	}
	var je JobError
	if !errors.As(err, &je) {
		t.Fatalf("aggregate has no JobError: %v", err)
	}
	if je.Job != 0 {
		t.Errorf("first reported job = %d, want 0", je.Job)
	}
	// All four failing jobs (0, 3, 6, 9) must be named.
	for _, idx := range []string{"job 0", "job 3", "job 6", "job 9"} {
		if !containsSub(err.Error(), idx) {
			t.Errorf("aggregate %q missing %q", err.Error(), idx)
		}
	}
}

func containsSub(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestTryMapKeepsPartialResults checks TryMap hands back every result slot
// alongside per-job errors, which the sweep post-filter relies on.
func TestTryMapKeepsPartialResults(t *testing.T) {
	out, errs := TryMap(5, Options{Workers: 3}, func(i int) (string, error) {
		if i == 2 {
			return "", errors.New("unstable")
		}
		return fmt.Sprintf("v%d", i), nil
	})
	if len(out) != 5 || len(errs) != 5 {
		t.Fatalf("lengths %d/%d", len(out), len(errs))
	}
	for i := 0; i < 5; i++ {
		if i == 2 {
			if errs[i] == nil {
				t.Error("job 2 error lost")
			}
			continue
		}
		if errs[i] != nil || out[i] != fmt.Sprintf("v%d", i) {
			t.Errorf("job %d: %q / %v", i, out[i], errs[i])
		}
	}
}

// TestProgressCountsEveryJob checks the callback fires once per job and ends
// at (total, total).
func TestProgressCountsEveryJob(t *testing.T) {
	for _, w := range []int{1, 4} {
		var calls atomic.Int64
		var lastDone atomic.Int64
		_, err := Map(17, Options{
			Workers: w,
			Progress: func(done, total int) {
				calls.Add(1)
				if total != 17 {
					t.Errorf("total = %d", total)
				}
				lastDone.Store(int64(done))
			},
		}, func(i int) (int, error) { return i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if calls.Load() != 17 {
			t.Errorf("workers=%d: %d progress calls", w, calls.Load())
		}
		if lastDone.Load() != 17 {
			t.Errorf("workers=%d: final done = %d", w, lastDone.Load())
		}
	}
}

// TestWorkerCap checks no more than Workers jobs run concurrently.
func TestWorkerCap(t *testing.T) {
	const w = 3
	var running, peak atomic.Int64
	_, err := Map(24, Options{Workers: w}, func(i int) (int, error) {
		cur := running.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		runtime.Gosched() // give other workers a chance to overlap
		running.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > w {
		t.Errorf("peak concurrency %d exceeds cap %d", p, w)
	}
}

// TestNestedMapsRespectGlobalCap stacks a fan-out inside a fan-out, as the
// report does (artifacts -> sweeps), and checks total concurrently running
// jobs never exceed the process-wide bound - per-call Workers must not
// multiply across nesting levels.
func TestNestedMapsRespectGlobalCap(t *testing.T) {
	const cap = 3
	SetMaxParallel(cap)
	defer SetMaxParallel(8) // restore the test-wide setting

	var running, peak atomic.Int64
	track := func() {
		cur := running.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		runtime.Gosched()
		running.Add(-1)
	}
	_, err := Map(6, Options{Workers: 6}, func(i int) (int, error) {
		inner, err := Map(6, Options{Workers: 6}, func(j int) (int, error) {
			track()
			return j, nil
		})
		if err != nil {
			return 0, err
		}
		return len(inner), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > cap {
		t.Errorf("peak concurrency %d exceeds process-wide cap %d", p, cap)
	}
}

// TestSetMaxParallelSerial checks n<=1 forces fully inline execution.
func TestSetMaxParallelSerial(t *testing.T) {
	SetMaxParallel(0)
	defer SetMaxParallel(8)
	var peak atomic.Int64
	var running atomic.Int64
	_, err := Map(10, Options{Workers: 8}, func(i int) (int, error) {
		cur := running.Add(1)
		if cur > peak.Load() {
			peak.Store(cur)
		}
		runtime.Gosched()
		running.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() != 1 {
		t.Errorf("peak concurrency %d, want 1 (serial)", peak.Load())
	}
}

// TestZeroJobs checks the degenerate fan-out.
func TestZeroJobs(t *testing.T) {
	out, err := Map(0, Options{}, func(i int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

// TestItems checks the slice adapter preserves pairing and order.
func TestItems(t *testing.T) {
	items := []float64{0.1, 0.2, 0.3, 0.4}
	out, err := Items(items, Options{Workers: 2}, func(i int, x float64) (float64, error) {
		return float64(i) + x, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != float64(i)+items[i] {
			t.Errorf("out[%d] = %v", i, v)
		}
	}
}

// TestDefaultWorkersPositive pins the GOMAXPROCS sizing.
func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers() = %d", DefaultWorkers())
	}
}

// BenchmarkMapFanOut measures the fan-out engine itself on small CPU-bound
// jobs: the per-job dispatch overhead every layer above pays. CI's
// benchmark gate watches it alongside the dist and service hot paths.
func BenchmarkMapFanOut(b *testing.B) {
	work := func(j int) (int, error) {
		s := 0
		for k := 0; k < 2000; k++ {
			s += k ^ j
		}
		return s, nil
	}
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Map(256, Options{Workers: w}, work); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
