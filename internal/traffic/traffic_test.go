package traffic

import (
	"math"
	"testing"

	"fpsping/internal/dist"
	"fpsping/internal/stats"
)

func TestAllModelsValidate(t *testing.T) {
	for _, m := range AllModels() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
		if m.Source == "" || m.Notes == "" {
			t.Errorf("%s: missing provenance", m.Name)
		}
	}
}

func TestCounterStrikeMatchesTable1(t *testing.T) {
	// Table 1's approximations: Ext(120,36) server sizes, Ext(55,6)ms burst
	// IATs, Ext(80,5.7) client sizes, Det(40)ms client IATs. Sampling the
	// model must reproduce the law means.
	m := CounterStrike()
	r := dist.NewRNG(101)
	ss := dist.SampleN(m.Server.PacketSize, r, 200_000)
	sum := stats.Describe(ss)
	wantMean := 120 + dist.EulerGamma*36
	if math.Abs(sum.Mean()-wantMean) > 1 {
		t.Errorf("server size mean %v, want ~%v", sum.Mean(), wantMean)
	}
	iat := dist.SampleN(m.Server.IAT, r, 200_000)
	isum := stats.Describe(iat)
	wantIAT := (55 + dist.EulerGamma*6) / 1000
	if math.Abs(isum.Mean()-wantIAT) > 0.0003 {
		t.Errorf("burst IAT mean %v, want ~%v", isum.Mean(), wantIAT)
	}
	if m.Client[0].IAT.Mean() != 0.040 {
		t.Errorf("client IAT %v, want 0.040", m.Client[0].IAT.Mean())
	}
	cs := dist.SampleN(m.Client[0].Size, r, 100_000)
	csum := stats.Describe(cs)
	if math.Abs(csum.Mean()-(80+dist.EulerGamma*5.7)) > 0.5 {
		t.Errorf("client size mean %v", csum.Mean())
	}
	// Paper notes the measured client CoV 0.12; Ext(80,5.7) gives ~0.09.
	if c := csum.CoV(); c < 0.05 || c > 0.15 {
		t.Errorf("client size CoV %v out of band", c)
	}
}

func TestHalfLifeMatchesTable2(t *testing.T) {
	m := HalfLife("crossfire")
	if m.Server.IAT.Mean() != 0.060 {
		t.Errorf("burst IAT %v, want Det(60ms)", m.Server.IAT.Mean())
	}
	if m.Client[0].IAT.Mean() != 0.041 {
		t.Errorf("client IAT %v, want Det(41ms)", m.Client[0].IAT.Mean())
	}
	// Map dependency: different maps change the server size law.
	m2 := HalfLife("dust")
	if m.Server.PacketSize.Mean() == m2.Server.PacketSize.Mean() {
		t.Error("map dependency missing")
	}
	// Unknown maps fall back.
	m3 := HalfLife("nosuchmap")
	if m3.Server.PacketSize.Mean() != m.Server.PacketSize.Mean() {
		t.Error("fallback map broken")
	}
	// Client sizes live in the paper's 60-90B band (middle 99%).
	if q := m.Client[0].Size.Quantile(0.005); q < 55 {
		t.Errorf("client size p0.5%% = %v", q)
	}
	if q := m.Client[0].Size.Quantile(0.995); q > 95 {
		t.Errorf("client size p99.5%% = %v", q)
	}
}

func TestHaloTwoClientClasses(t *testing.T) {
	m := Halo(2)
	if len(m.Client) != 2 {
		t.Fatalf("client flows = %d, want 2", len(m.Client))
	}
	// Beacon class: fixed 72B every 201ms (paper).
	if m.Client[0].Size.Mean() != 72 || m.Client[0].IAT.Mean() != 0.201 {
		t.Errorf("beacon class %v/%v", m.Client[0].Size.Mean(), m.Client[0].IAT.Mean())
	}
	if m.Server.IAT.Mean() != 0.040 {
		t.Errorf("server IAT %v", m.Server.IAT.Mean())
	}
	// Player dependency.
	if Halo(4).Server.PacketSize.Mean() <= Halo(1).Server.PacketSize.Mean() {
		t.Error("server size should grow with players")
	}
	// Everything deterministic: System Link traffic is "strongly periodic".
	if dist.CoV(m.Server.PacketSize) != 0 || dist.CoV(m.Client[1].IAT) != 0 {
		t.Error("Halo flows should be deterministic")
	}
}

func TestQuake3Bands(t *testing.T) {
	m := Quake3(8, 20)
	if m.Server.IAT.Mean() != 0.050 {
		t.Errorf("server tick %v, want 50ms", m.Server.IAT.Mean())
	}
	// Server sizes stay in the paper's 50-400B band for the bulk.
	if q := m.Server.PacketSize.Quantile(0.99); q > 420 {
		t.Errorf("server size p99 = %v", q)
	}
	// Client sizes 50-70B.
	if q := m.Client[0].Size.Quantile(0.01); q < 45 {
		t.Errorf("client size p1 = %v", q)
	}
	if q := m.Client[0].Size.Quantile(0.99); q > 75 {
		t.Errorf("client size p99 = %v", q)
	}
	// IAT clamped to the 10-30ms band.
	if Quake3(2, 5).Client[0].IAT.Mean() != 0.010 {
		t.Error("IAT clamp low broken")
	}
	if Quake3(2, 99).Client[0].IAT.Mean() != 0.030 {
		t.Error("IAT clamp high broken")
	}
	// Player dependency on server sizes.
	if Quake3(16, 20).Server.PacketSize.Mean() <= Quake3(2, 20).Server.PacketSize.Mean() {
		t.Error("player dependency missing")
	}
}

func TestUnrealTournamentMatchesTable3Moments(t *testing.T) {
	m := UnrealTournament()
	r := dist.NewRNG(102)
	cases := []struct {
		name     string
		d        dist.Distribution
		mean     float64
		cov      float64
		meanTol  float64
		covTol   float64
		absolute bool
	}{
		{"server size", m.Server.PacketSize, 154, 0.28, 0.02, 0.02, false},
		{"burst IAT", m.Server.IAT, 0.047, 0.07, 0.02, 0.02, false},
		{"client size", m.Client[0].Size, 73, 0.06, 0.02, 0.02, false},
		{"client IAT", m.Client[0].IAT, 0.030, 0.65, 0.02, 0.04, false},
	}
	for _, c := range cases {
		xs := dist.SampleN(c.d, r, 300_000)
		s := stats.Describe(xs)
		if math.Abs(s.Mean()-c.mean)/c.mean > c.meanTol {
			t.Errorf("%s mean %v, want %v", c.name, s.Mean(), c.mean)
		}
		if math.Abs(s.CoV()-c.cov) > c.covTol+0.02*c.cov {
			t.Errorf("%s CoV %v, want %v", c.name, s.CoV(), c.cov)
		}
	}
}

func TestUnrealBurstTotalsMatchTable3(t *testing.T) {
	// 12 players, six minutes (the paper's trace length): burst totals must
	// land near mean 1852B with CoV ~0.19*... Table 3's burst CoV includes
	// per-packet correlation we don't model, so expect CoV near
	// 0.28/sqrt(12) ~ 0.081 from independence; assert mean and that CoV is
	// small but nonzero. (Table 3's 0.19 needs within-burst correlation -
	// see the netsim LAN experiment, which injects it.)
	m := UnrealTournament()
	r := dist.NewRNG(103)
	s, err := m.Generate(r, 12, 360)
	if err != nil {
		t.Fatal(err)
	}
	totals := s.BurstTotals()
	if len(totals) < 7000 {
		t.Fatalf("only %d bursts in six minutes", len(totals))
	}
	sum := stats.Describe(totals)
	if math.Abs(sum.Mean()-12*154)/1848 > 0.02 {
		t.Errorf("burst mean %v, want ~1848", sum.Mean())
	}
	if c := sum.CoV(); c < 0.05 || c > 0.12 {
		t.Errorf("independent-size burst CoV %v, want ~0.08", c)
	}
}

func TestGenerateSessionStructure(t *testing.T) {
	m := CounterStrike()
	r := dist.NewRNG(104)
	s, err := m.Generate(r, 4, 30)
	if err != nil {
		t.Fatal(err)
	}
	// Upstream sorted, with all client ids present.
	seen := map[int]bool{}
	for i, e := range s.Upstream {
		if i > 0 && e.Time < s.Upstream[i-1].Time {
			t.Fatal("upstream not sorted")
		}
		if e.Size < 1 {
			t.Fatal("nonpositive size")
		}
		seen[e.Client] = true
	}
	for c := 0; c < 4; c++ {
		if !seen[c] {
			t.Errorf("client %d missing", c)
		}
	}
	// Every burst has one packet per client.
	for _, b := range s.Bursts {
		if len(b.Sizes) != 4 {
			t.Fatalf("burst with %d packets", len(b.Sizes))
		}
		total := 0
		for _, sz := range b.Sizes {
			total += sz
		}
		if total != b.TotalBytes {
			t.Fatal("burst total inconsistent")
		}
	}
	// Client IATs of the Det(40ms) flow are all 40ms.
	for _, iat := range s.ClientIATs() {
		if math.Abs(iat-0.040) > 1e-9 {
			t.Fatalf("client IAT %v, want det 40ms", iat)
		}
	}
	// Rates: 4 clients at ~mean size/IAT.
	wantDown := m.OfferedDownstreamBitRate(4)
	sizeSum := stats.Describe(s.ServerPacketSizes())
	gotDown := 8 * sizeSum.Mean() * float64(len(s.Bursts)) * 4 / 30
	if math.Abs(gotDown-wantDown)/wantDown > 0.05 {
		t.Errorf("downstream rate %v, want ~%v", gotDown, wantDown)
	}
}

func TestGenerateErrors(t *testing.T) {
	m := CounterStrike()
	r := dist.NewRNG(105)
	if _, err := m.Generate(r, 0, 10); err == nil {
		t.Error("accepted zero players")
	}
	if _, err := m.Generate(r, 2, 0); err == nil {
		t.Error("accepted zero duration")
	}
	var bad Model
	if err := bad.Validate(); err == nil {
		t.Error("empty model validated")
	}
	if _, err := (FlowSpec{}).GenerateClient(r, 0, 0, 1); err == nil {
		t.Error("empty flow generated")
	}
	if _, err := (ServerSpec{}).GenerateBursts(r, 1, 1); err == nil {
		t.Error("empty server spec generated")
	}
}

func TestOfferedRates(t *testing.T) {
	m := CounterStrike()
	// Client: ~83.3B/40ms = ~16.7 kbit/s.
	up := m.OfferedUpstreamBitRate()
	if up < 15_000 || up > 18_000 {
		t.Errorf("upstream rate %v", up)
	}
	// Server for 12 clients: 12 * ~140.8B / ~58.5ms = ~231 kbit/s.
	down := m.OfferedDownstreamBitRate(12)
	if down < 200_000 || down > 260_000 {
		t.Errorf("downstream rate %v", down)
	}
}

func BenchmarkGenerateSession(b *testing.B) {
	m := UnrealTournament()
	r := dist.NewRNG(1)
	for i := 0; i < b.N; i++ {
		if _, err := m.Generate(r, 12, 60); err != nil {
			b.Fatal(err)
		}
	}
}
