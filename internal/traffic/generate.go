package traffic

import (
	"fmt"
	"math/rand/v2"
	"sort"
)

// PacketEvent is one generated packet: an emission time and a size. Client
// identifies the player for server bursts (and the source player for client
// flows).
type PacketEvent struct {
	// Time is the emission instant in seconds from the generation origin.
	Time float64
	// Size is the packet size in bytes.
	Size int
	// Client is the player index the packet belongs to.
	Client int
}

// Burst groups the per-client packets of one server tick.
type Burst struct {
	// Time is the tick instant in seconds.
	Time float64
	// Sizes holds one packet size per client, in client order.
	Sizes []int
	// TotalBytes is the burst size (the random variable of Figure 1).
	TotalBytes int
}

// GenerateClient produces the packets of one client flow from time `phase`
// until `duration`, drawing IATs and sizes from the flow's laws.
func (f FlowSpec) GenerateClient(r *rand.Rand, client int, phase, duration float64) ([]PacketEvent, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if duration <= 0 {
		return nil, fmt.Errorf("%w: duration %g", ErrBadSpec, duration)
	}
	var out []PacketEvent
	t := phase
	for t < duration {
		size := int(f.Size.Sample(r) + 0.5)
		if size < 1 {
			size = 1
		}
		out = append(out, PacketEvent{Time: t, Size: size, Client: client})
		iat := f.IAT.Sample(r)
		if iat <= 0 {
			iat = 1e-6 // guard degenerate draws from wide laws
		}
		t += iat
	}
	return out, nil
}

// GenerateBursts produces the server tick bursts for n clients over
// `duration` seconds: each burst carries one independently sized packet per
// client (§2: "in each burst, the server generates one packet for every
// active client").
func (s ServerSpec) GenerateBursts(r *rand.Rand, clients int, duration float64) ([]Burst, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if clients < 1 || duration <= 0 {
		return nil, fmt.Errorf("%w: clients=%d duration=%g", ErrBadSpec, clients, duration)
	}
	var out []Burst
	t := 0.0
	for t < duration {
		b := Burst{Time: t, Sizes: make([]int, clients)}
		for c := 0; c < clients; c++ {
			size := int(s.PacketSize.Sample(r) + 0.5)
			if size < 1 {
				size = 1
			}
			b.Sizes[c] = size
			b.TotalBytes += size
		}
		out = append(out, b)
		iat := s.IAT.Sample(r)
		if iat <= 0 {
			iat = 1e-6
		}
		t += iat
	}
	return out, nil
}

// Session is a fully generated game session: per-player upstream packets and
// the server's downstream bursts, both sorted by time.
type Session struct {
	// Model echoes the source model.
	Model Model
	// Players is the number of players generated.
	Players int
	// Duration is the generated horizon in seconds.
	Duration float64
	// Upstream holds all client packets from all players and flows, merged
	// and time-sorted.
	Upstream []PacketEvent
	// Bursts holds the server ticks in time order.
	Bursts []Burst
}

// Generate builds a session: every player runs every client flow with an
// independent random phase (the random phasing assumption of §2.3.1), and
// the server runs its burst process.
func (m Model) Generate(r *rand.Rand, players int, duration float64) (*Session, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if players < 1 || duration <= 0 {
		return nil, fmt.Errorf("%w: players=%d duration=%g", ErrBadSpec, players, duration)
	}
	s := &Session{Model: m, Players: players, Duration: duration}
	for p := 0; p < players; p++ {
		for _, f := range m.Client {
			phase := r.Float64() * f.IAT.Mean()
			evts, err := f.GenerateClient(r, p, phase, duration)
			if err != nil {
				return nil, err
			}
			s.Upstream = append(s.Upstream, evts...)
		}
	}
	sort.Slice(s.Upstream, func(i, j int) bool { return s.Upstream[i].Time < s.Upstream[j].Time })
	bursts, err := m.Server.GenerateBursts(r, players, duration)
	if err != nil {
		return nil, err
	}
	s.Bursts = bursts
	return s, nil
}

// BurstTotals extracts the burst sizes in bytes: the Figure 1 sample.
func (s *Session) BurstTotals() []float64 {
	out := make([]float64, len(s.Bursts))
	for i, b := range s.Bursts {
		out[i] = float64(b.TotalBytes)
	}
	return out
}

// BurstIATs extracts the burst inter-arrival times in seconds.
func (s *Session) BurstIATs() []float64 {
	if len(s.Bursts) < 2 {
		return nil
	}
	out := make([]float64, len(s.Bursts)-1)
	for i := 1; i < len(s.Bursts); i++ {
		out[i-1] = s.Bursts[i].Time - s.Bursts[i-1].Time
	}
	return out
}

// ServerPacketSizes flattens all per-client packet sizes of all bursts.
func (s *Session) ServerPacketSizes() []float64 {
	var out []float64
	for _, b := range s.Bursts {
		for _, sz := range b.Sizes {
			out = append(out, float64(sz))
		}
	}
	return out
}

// ClientPacketSizes extracts all upstream packet sizes.
func (s *Session) ClientPacketSizes() []float64 {
	out := make([]float64, len(s.Upstream))
	for i, e := range s.Upstream {
		out[i] = float64(e.Size)
	}
	return out
}

// ClientIATs extracts per-player upstream inter-arrival times, pooled across
// players (the per-flow view Table 3 reports).
func (s *Session) ClientIATs() []float64 {
	last := map[int]float64{}
	var out []float64
	for _, e := range s.Upstream {
		if prev, ok := last[e.Client]; ok {
			out = append(out, e.Time-prev)
		}
		last[e.Client] = e.Time
	}
	return out
}

// OfferedDownstreamBitRate returns the average downstream offered rate for n
// clients: 8 * n * E[size] / E[IAT].
func (m Model) OfferedDownstreamBitRate(clients int) float64 {
	return 8 * float64(clients) * m.Server.PacketSize.Mean() / m.Server.IAT.Mean()
}

// OfferedUpstreamBitRate returns the per-client upstream offered rate summed
// over flows.
func (m Model) OfferedUpstreamBitRate() float64 {
	var r float64
	for _, f := range m.Client {
		r += f.MeanRateBitPerSec()
	}
	return r
}
