// Package traffic encodes the FPS traffic source models of the paper's §2:
// Färber's Counter-Strike model (Table 1), Lang et al.'s Half-Life (Table 2),
// Halo and Quake3 models (§2.1), and the Unreal Tournament 2003 model behind
// the authors' own LAN measurements (Table 3). Each model pairs packet-size
// and inter-arrival laws for both directions and can generate timestamped
// packet streams for the simulator.
//
// Parameters marked "paper" are lifted directly from the cited tables;
// parameters marked "calibrated" are our choices where the sources state only
// qualitative dependencies (e.g. "depends on the map"). The reproduction's
// substitution policy (DESIGN.md §2) is to generate from these models instead
// of replaying proprietary traces.
package traffic

import (
	"errors"
	"fmt"
	"math"

	"fpsping/internal/dist"
)

// ErrBadSpec reports an invalid flow or model specification.
var ErrBadSpec = errors.New("traffic: invalid specification")

// FlowSpec is one packet flow: a size law (bytes) and an inter-arrival law
// (seconds). Rate is derived: mean size / mean IAT.
type FlowSpec struct {
	// Name labels the flow (e.g. "client update").
	Name string
	// Size is the packet size law in bytes.
	Size dist.Distribution
	// IAT is the packet inter-arrival law in seconds.
	IAT dist.Distribution
}

// Validate checks both laws exist and have positive means.
func (f FlowSpec) Validate() error {
	if f.Size == nil || f.IAT == nil {
		return fmt.Errorf("%w: flow %q missing laws", ErrBadSpec, f.Name)
	}
	if !(f.Size.Mean() > 0) || !(f.IAT.Mean() > 0) {
		return fmt.Errorf("%w: flow %q nonpositive means", ErrBadSpec, f.Name)
	}
	return nil
}

// MeanRateBitPerSec returns the flow's average bit rate.
func (f FlowSpec) MeanRateBitPerSec() float64 {
	return 8 * f.Size.Mean() / f.IAT.Mean()
}

// ServerSpec describes the downstream burst process: every IAT the server
// emits one packet per connected client, each with an independent PacketSize.
type ServerSpec struct {
	// PacketSize is the per-client packet size law in bytes.
	PacketSize dist.Distribution
	// IAT is the burst (tick) inter-arrival law in seconds.
	IAT dist.Distribution
}

// Validate checks the spec.
func (s ServerSpec) Validate() error {
	if s.PacketSize == nil || s.IAT == nil {
		return fmt.Errorf("%w: server spec missing laws", ErrBadSpec)
	}
	if !(s.PacketSize.Mean() > 0) || !(s.IAT.Mean() > 0) {
		return fmt.Errorf("%w: server spec nonpositive means", ErrBadSpec)
	}
	return nil
}

// Model is a complete per-game traffic description.
type Model struct {
	// Name identifies the game.
	Name string
	// Source cites where the parameters come from.
	Source string
	// Server is the downstream burst process.
	Server ServerSpec
	// Client lists the upstream flows per player (usually one; Halo has
	// two classes).
	Client []FlowSpec
	// Notes records parameter provenance and calibration decisions.
	Notes string
}

// Validate checks every component.
func (m Model) Validate() error {
	if err := m.Server.Validate(); err != nil {
		return fmt.Errorf("%s: %w", m.Name, err)
	}
	if len(m.Client) == 0 {
		return fmt.Errorf("%w: %s has no client flows", ErrBadSpec, m.Name)
	}
	for _, f := range m.Client {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("%s: %w", m.Name, err)
		}
	}
	return nil
}

// msDet wraps a millisecond constant as a Det law in seconds.
func msDet(ms float64) dist.Distribution { return dist.NewDeterministic(ms / 1000) }

// msGumbel builds Ext(a, b) on a millisecond scale, returned in seconds.
func msGumbel(aMs, bMs float64) dist.Distribution {
	g, err := dist.NewGumbel(aMs/1000, bMs/1000)
	if err != nil {
		panic(err) // constants below are valid by construction
	}
	return g
}

func mustGumbel(a, b float64) dist.Distribution {
	g, err := dist.NewGumbel(a, b)
	if err != nil {
		panic(err)
	}
	return g
}

func mustLogNormalMoments(mean, cov float64) dist.Distribution {
	l, err := dist.LogNormalByMoments(mean, cov)
	if err != nil {
		panic(err)
	}
	return l
}

func mustNormal(mu, sigma float64) dist.Distribution {
	n, err := dist.NewNormal(mu, sigma)
	if err != nil {
		panic(err)
	}
	return n
}

// CounterStrike returns Färber's Counter-Strike model, Table 1 (all
// parameters "paper"): server packets Ext(120, 36) B in bursts every
// Ext(55, 6) ms; client packets Ext(80, 5.7) B every Det(40) ms.
func CounterStrike() Model {
	return Model{
		Name:   "Counter-Strike",
		Source: "Färber, NetGames 2002 (paper Table 1)",
		Server: ServerSpec{
			PacketSize: mustGumbel(120, 36),
			IAT:        msGumbel(55, 6),
		},
		Client: []FlowSpec{{
			Name: "client update",
			Size: mustGumbel(80, 5.7),
			IAT:  msDet(40),
		}},
		Notes: "All four laws are the paper's Table 1 approximations; " +
			"measured means/CoVs were 127B/0.74, 62ms/0.5, 82B/0.12, 42ms/0.24.",
	}
}

// HalfLifeMaps lists the map-dependent server packet-size laws for the
// Half-Life model. Lang et al. report lognormal fits whose parameters depend
// on the map; the table's concrete values are calibrated, the family and the
// dependency are "paper".
var HalfLifeMaps = map[string]struct{ Mean, CoV float64 }{
	"crossfire": {126, 0.35},
	"dust":      {142, 0.42},
	"office":    {110, 0.30},
}

// HalfLife returns Lang et al.'s Half-Life model, Table 2: Det(60) ms bursts,
// map-dependent lognormal server sizes, Det(41) ms client IATs, (log)normal
// client sizes in the 60-90 B range. Unknown map names fall back to
// "crossfire".
func HalfLife(mapName string) Model {
	p, ok := HalfLifeMaps[mapName]
	if !ok {
		mapName = "crossfire"
		p = HalfLifeMaps[mapName]
	}
	return Model{
		Name:   "Half-Life (" + mapName + ")",
		Source: "Lang et al., ATNAC 2003 (paper Table 2)",
		Server: ServerSpec{
			PacketSize: mustLogNormalMoments(p.Mean, p.CoV),
			IAT:        msDet(60),
		},
		Client: []FlowSpec{{
			Name: "client update",
			Size: mustNormal(75, 7), // calibrated within the paper's 60-90B range
			IAT:  msDet(41),
		}},
		Notes: "Burst Det(60ms) and client Det(41ms) are paper values; the lognormal " +
			"size parameters per map are calibrated (the source gives only the family " +
			"and the map dependency).",
	}
}

// Halo returns Lang et al.'s Xbox System Link Halo model (§2.1): Det(40) ms
// bursts with player-dependent deterministic packet sizes; client traffic is
// two periodic classes - 33% fixed 72 B packets every 201 ms, and 67% with
// player-dependent size on a hardware-dependent period (calibrated to 50 ms).
func Halo(playersPerBox int) Model {
	if playersPerBox < 1 {
		playersPerBox = 1
	}
	// Calibrated linear size growth with players; source states the
	// dependency, not the slope.
	serverSize := 60 + 20*float64(playersPerBox)
	clientBig := 50 + 14*float64(playersPerBox)
	return Model{
		Name:   fmt.Sprintf("Halo (%d players/box)", playersPerBox),
		Source: "Lang & Armitage, ATNAC 2003 (paper §2.1)",
		Server: ServerSpec{
			PacketSize: dist.NewDeterministic(serverSize),
			IAT:        msDet(40),
		},
		Client: []FlowSpec{
			{
				Name: "state beacon (33%)",
				Size: dist.NewDeterministic(72),
				IAT:  msDet(201),
			},
			{
				Name: "player update (67%)",
				Size: dist.NewDeterministic(clientBig),
				IAT:  msDet(50), // calibrated: "depends on the client Xbox hardware"
			},
		},
		Notes: "Det(40ms) bursts, 72B/201ms beacon class and the strong periodicity are " +
			"paper statements; size slopes and the 50ms update period are calibrated.",
	}
}

// Quake3 returns Lang et al.'s Quake3 model (§2.1): the server sends one
// update per client roughly every 50 ms with player-count-dependent sizes in
// the 50-400 B band; client packets are 50-70 B with map/graphics-dependent
// IATs of 10-30 ms.
func Quake3(players int, clientIATMs float64) Model {
	if players < 1 {
		players = 1
	}
	if clientIATMs < 10 {
		clientIATMs = 10
	}
	if clientIATMs > 30 {
		clientIATMs = 30
	}
	// Calibrated size law: grows with players, clipped to the paper's
	// 50-400 B observation band via the lognormal body.
	mean := math.Min(50+22*float64(players), 360)
	return Model{
		Name:   fmt.Sprintf("Quake3 (%d players)", players),
		Source: "Lang, Branch, Armitage, ACE 2004 (paper §2.1)",
		Server: ServerSpec{
			PacketSize: mustLogNormalMoments(mean, 0.25),
			IAT:        msDet(50),
		},
		Client: []FlowSpec{{
			Name: "client update",
			Size: mustNormal(60, 4), // paper: 50-70 B, parameter-independent
			IAT:  msDet(clientIATMs),
		}},
		Notes: "50ms server tick, 50-400B server band, 50-70B client packets and the " +
			"10-30ms client IAT band are paper statements; the size-vs-players slope " +
			"and CoV are calibrated.",
	}
}

// UnrealTournament returns the model behind the paper's own measurements
// (§2.2, Table 3): server packets mean 154 B / CoV 0.28 in bursts every
// 47 ms (CoV 0.07), one packet per player; client packets 73 B / CoV 0.06
// every 30 ms with CoV 0.65. Families are calibrated (lognormal sizes,
// normal burst IAT, lognormal client IAT); the moments are the paper's.
func UnrealTournament() Model {
	iat, err := dist.LogNormalByMoments(0.030, 0.65)
	if err != nil {
		panic(err)
	}
	return Model{
		Name:   "Unreal Tournament 2003",
		Source: "paper §2.2, Table 3 (12-player LAN trace)",
		Server: ServerSpec{
			PacketSize: mustLogNormalMoments(154, 0.28),
			IAT:        mustNormal(0.047, 0.07*0.047),
		},
		Client: []FlowSpec{{
			Name: "client update",
			Size: mustNormal(73, 0.06*73),
			IAT:  iat,
		}},
		Notes: "Moments are Table 3; distribution families are calibrated. The " +
			"burst-size law (mean 1852B, CoV 0.19) emerges from 12 per-player packets.",
	}
}

// AllModels returns the registry of named models with representative
// parameters, for CLI listing and table generation.
func AllModels() []Model {
	return []Model{
		CounterStrike(),
		HalfLife("crossfire"),
		Halo(2),
		Quake3(8, 20),
		UnrealTournament(),
	}
}
