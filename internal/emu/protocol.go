// Package emu emulates the paper's gaming scenario over real UDP sockets: a
// game server ticking every T, bot clients sending periodic updates, and a
// userspace bottleneck shaper standing in for the DSL access and aggregation
// links. It demonstrates the modeled system end to end on the loopback
// interface - the "live" counterpart of the netsim package - and measures
// the in-game ping the way game clients do (§1: the built-in ping feature).
package emu

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Wire protocol constants.
const (
	// Magic identifies protocol datagrams.
	Magic uint16 = 0xF5B1
	// Version is the protocol revision.
	Version uint8 = 1
	// HeaderSize is the fixed encoded header length in bytes.
	HeaderSize = 2 + 1 + 1 + 2 + 2 + 4 + 4 + 8 + 8
	// MaxPacket bounds datagram sizes (well above game packets).
	MaxPacket = 4096
)

// MsgType enumerates protocol messages.
type MsgType uint8

// Message types.
const (
	// MsgJoin is a client hello; the server replies with MsgJoinAck.
	MsgJoin MsgType = iota + 1
	// MsgJoinAck carries the assigned client id in ClientID.
	MsgJoinAck
	// MsgUpdate is the periodic client state update (upstream).
	MsgUpdate
	// MsgState is the per-tick server state packet (downstream).
	MsgState
	// MsgLeave announces a clean client exit.
	MsgLeave
)

// ErrBadPacket reports an undecodable datagram.
var ErrBadPacket = errors.New("emu: bad packet")

// Header is the fixed wire header. The Echo fields let a client compute its
// ping without clock synchronization: the server echoes the sequence number
// and send timestamp of the latest update it received from that client, so
// ping = receive time - EchoSentNano minus the server's tick-wait remainder
// (which the client cannot observe; the in-game ping includes it, §1).
type Header struct {
	// Type is the message kind.
	Type MsgType
	// ClientID is the server-assigned player id.
	ClientID uint16
	// Seq numbers messages per direction.
	Seq uint32
	// EchoSeq is the last client Seq the server saw (MsgState only).
	EchoSeq uint32
	// SentNano is the sender's wall-clock send time.
	SentNano int64
	// EchoSentNano is the SentNano of the echoed client update.
	EchoSentNano int64
	// PayloadLen is the number of padding bytes after the header, used to
	// shape packet sizes to the traffic model.
	PayloadLen uint16
}

// Encode serializes the header plus payloadLen zero bytes into a fresh
// buffer sized exactly HeaderSize+PayloadLen.
func Encode(h Header) ([]byte, error) {
	if int(h.PayloadLen) > MaxPacket-HeaderSize {
		return nil, fmt.Errorf("%w: payload %d too large", ErrBadPacket, h.PayloadLen)
	}
	buf := make([]byte, HeaderSize+int(h.PayloadLen))
	binary.BigEndian.PutUint16(buf[0:], Magic)
	buf[2] = Version
	buf[3] = uint8(h.Type)
	binary.BigEndian.PutUint16(buf[4:], h.ClientID)
	binary.BigEndian.PutUint16(buf[6:], h.PayloadLen)
	binary.BigEndian.PutUint32(buf[8:], h.Seq)
	binary.BigEndian.PutUint32(buf[12:], h.EchoSeq)
	binary.BigEndian.PutUint64(buf[16:], uint64(h.SentNano))
	binary.BigEndian.PutUint64(buf[24:], uint64(h.EchoSentNano))
	return buf, nil
}

// Decode parses a datagram; it validates magic, version, type and length.
func Decode(buf []byte) (Header, error) {
	var h Header
	if len(buf) < HeaderSize {
		return h, fmt.Errorf("%w: %d bytes", ErrBadPacket, len(buf))
	}
	if binary.BigEndian.Uint16(buf[0:]) != Magic {
		return h, fmt.Errorf("%w: bad magic", ErrBadPacket)
	}
	if buf[2] != Version {
		return h, fmt.Errorf("%w: version %d", ErrBadPacket, buf[2])
	}
	h.Type = MsgType(buf[3])
	if h.Type < MsgJoin || h.Type > MsgLeave {
		return h, fmt.Errorf("%w: type %d", ErrBadPacket, buf[3])
	}
	h.ClientID = binary.BigEndian.Uint16(buf[4:])
	h.PayloadLen = binary.BigEndian.Uint16(buf[6:])
	if len(buf) != HeaderSize+int(h.PayloadLen) {
		return h, fmt.Errorf("%w: length %d, header says %d", ErrBadPacket, len(buf), HeaderSize+int(h.PayloadLen))
	}
	h.Seq = binary.BigEndian.Uint32(buf[8:])
	h.EchoSeq = binary.BigEndian.Uint32(buf[12:])
	h.SentNano = int64(binary.BigEndian.Uint64(buf[16:]))
	h.EchoSentNano = int64(binary.BigEndian.Uint64(buf[24:]))
	return h, nil
}

// SizeToPayload converts a desired on-wire packet size (bytes) to the
// payload length that realizes it, clamping at the header floor.
func SizeToPayload(wireBytes int) uint16 {
	if wireBytes <= HeaderSize {
		return 0
	}
	if wireBytes > MaxPacket {
		wireBytes = MaxPacket
	}
	return uint16(wireBytes - HeaderSize)
}

// nowNano is indirected for tests.
var nowNano = func() int64 { return time.Now().UnixNano() }
