package emu

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ShaperConfig describes the emulated bottleneck: a bidirectional UDP relay
// whose two directions each serialize packets at a configured rate behind a
// bounded queue, plus a fixed one-way propagation delay. It is the userspace
// stand-in for the DSL access + aggregation path of Figure 2.
type ShaperConfig struct {
	// ListenAddr is the client-facing address (e.g. "127.0.0.1:0").
	ListenAddr string
	// ServerAddr is the real game server address.
	ServerAddr string
	// UpRate and DownRate are the serialization rates in bit/s (0 = no
	// shaping in that direction).
	UpRate, DownRate float64
	// Delay is the fixed one-way propagation delay added each way.
	Delay time.Duration
	// QueueLimit bounds each direction's backlog in bytes (0 = unbounded).
	QueueLimit int
}

// Shaper relays datagrams between many clients and one server while
// emulating a bottleneck link per direction.
type Shaper struct {
	cfg        ShaperConfig
	clientSide *net.UDPConn
	serverAddr *net.UDPAddr

	mu     sync.Mutex
	flows  map[string]*shaperFlow // client addr -> upstream relay state
	upLine *shapedLine
	closed bool

	// Dropped counts queue overflows in both directions.
	Dropped int64

	wg sync.WaitGroup
}

// shaperFlow is one client's private socket toward the server, so return
// traffic finds its way back (a minimal NAT).
type shaperFlow struct {
	conn     *net.UDPConn
	client   *net.UDPAddr
	downLine *shapedLine
}

// shapedLine emulates one transmission line: a virtual departure clock
// enforces the serialization rate; the byte backlog enforces the queue
// bound.
type shapedLine struct {
	mu       sync.Mutex
	rate     float64 // bit/s; 0 = infinite
	limit    int     // bytes; 0 = unbounded
	lastFree time.Time
	backlog  int
}

// admit returns the artificial delay before the packet may be forwarded, or
// false if the queue bound rejects it.
func (l *shapedLine) admit(size int, now time.Time) (time.Duration, bool) {
	if l == nil || l.rate <= 0 {
		return 0, true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.limit > 0 && l.backlog+size > l.limit {
		return 0, false
	}
	start := l.lastFree
	if start.Before(now) {
		start = now
	}
	ser := time.Duration(8 * float64(size) / l.rate * 1e9)
	done := start.Add(ser)
	l.lastFree = done
	l.backlog += size
	// The backlog drains when the packet finishes serializing.
	time.AfterFunc(done.Sub(now), func() {
		l.mu.Lock()
		l.backlog -= size
		l.mu.Unlock()
	})
	return done.Sub(now), true
}

// NewShaper starts the relay.
func NewShaper(cfg ShaperConfig) (*Shaper, error) {
	laddr, err := net.ResolveUDPAddr("udp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("emu: shaper listen addr: %w", err)
	}
	saddr, err := net.ResolveUDPAddr("udp", cfg.ServerAddr)
	if err != nil {
		return nil, fmt.Errorf("emu: shaper server addr: %w", err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("emu: shaper listen: %w", err)
	}
	s := &Shaper{
		cfg:        cfg,
		clientSide: conn,
		serverAddr: saddr,
		flows:      map[string]*shaperFlow{},
		upLine:     &shapedLine{rate: cfg.UpRate, limit: cfg.QueueLimit},
	}
	s.wg.Add(1)
	go s.clientLoop()
	return s, nil
}

// Addr returns the client-facing address.
func (s *Shaper) Addr() *net.UDPAddr { return s.clientSide.LocalAddr().(*net.UDPAddr) }

// Close stops the relay and all per-client sockets.
func (s *Shaper) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	flows := make([]*shaperFlow, 0, len(s.flows))
	for _, f := range s.flows {
		flows = append(flows, f)
	}
	s.mu.Unlock()
	err := s.clientSide.Close()
	for _, f := range flows {
		_ = f.conn.Close()
	}
	s.wg.Wait()
	return err
}

// clientLoop moves client->server datagrams through the upstream line.
func (s *Shaper) clientLoop() {
	defer s.wg.Done()
	buf := make([]byte, MaxPacket)
	for {
		n, raddr, err := s.clientSide.ReadFromUDP(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		flow, err := s.flowFor(raddr)
		if err != nil {
			continue
		}
		delay, ok := s.upLine.admit(n, time.Now())
		if !ok {
			s.mu.Lock()
			s.Dropped++
			s.mu.Unlock()
			continue
		}
		pkt := append([]byte(nil), buf[:n]...)
		time.AfterFunc(delay+s.cfg.Delay, func() {
			_, _ = flow.conn.Write(pkt)
		})
	}
}

// flowFor returns (creating if needed) the per-client relay socket.
func (s *Shaper) flowFor(client *net.UDPAddr) (*shaperFlow, error) {
	key := client.String()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, net.ErrClosed
	}
	if f, ok := s.flows[key]; ok {
		return f, nil
	}
	conn, err := net.DialUDP("udp", nil, s.serverAddr)
	if err != nil {
		return nil, err
	}
	f := &shaperFlow{
		conn:     conn,
		client:   client,
		downLine: &shapedLine{rate: s.cfg.DownRate, limit: s.cfg.QueueLimit},
	}
	s.flows[key] = f
	s.wg.Add(1)
	go s.serverLoop(f)
	return f, nil
}

// serverLoop moves server->client datagrams through the downstream line.
func (s *Shaper) serverLoop(f *shaperFlow) {
	defer s.wg.Done()
	buf := make([]byte, MaxPacket)
	for {
		n, err := f.conn.Read(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			continue
		}
		delay, ok := f.downLine.admit(n, time.Now())
		if !ok {
			s.mu.Lock()
			s.Dropped++
			s.mu.Unlock()
			continue
		}
		pkt := append([]byte(nil), buf[:n]...)
		time.AfterFunc(delay+s.cfg.Delay, func() {
			_, _ = s.clientSide.WriteToUDP(pkt, f.client)
		})
	}
}
