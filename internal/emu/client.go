package emu

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"fpsping/internal/dist"
	"fpsping/internal/stats"
)

// ClientConfig tunes a bot client.
type ClientConfig struct {
	// ServerAddr is where updates go (the shaper's client-facing address in
	// a shaped setup).
	ServerAddr string
	// UpdateInterval is D, the client update period.
	UpdateInterval time.Duration
	// PacketSize is the update size law in on-wire bytes; nil means Det(80).
	PacketSize dist.Distribution
	// Seed drives sampling.
	Seed uint64
	// JoinTimeout bounds the join handshake (default 2s).
	JoinTimeout time.Duration
}

// PingStats reports a client's measured pings.
type PingStats struct {
	// Summary holds mean/CoV/min/max of ping seconds.
	Summary stats.Summary
	// Samples is the number of pings measured.
	Samples int
}

// Client is a bot player: it joins, streams periodic updates and measures
// the in-game ping from the server's echo of its update timestamps. As in
// real FPS clients (§1), the measured ping includes the server's tick-wait
// remainder on top of the two network delays.
type Client struct {
	cfg  ClientConfig
	conn *net.UDPConn
	rng  *rand.Rand
	id   uint16

	mu    sync.Mutex
	pings stats.Summary
	top   *stats.TopK
	seen  uint32 // last echoed seq, to count each update once

	// Downstream stream health, measured the way RTP receivers do.
	received   int64
	maxSrvSeq  uint32
	jitter     float64 // RFC 3550 interarrival jitter estimate, seconds
	lastRecvNs int64
	lastSentNs int64

	done chan struct{}
	wg   sync.WaitGroup
}

// StreamStats reports downstream loss and jitter as a game client would.
type StreamStats struct {
	// Received counts state packets that arrived.
	Received int64
	// Expected is the highest server sequence number seen (packets the
	// server addressed to us so far).
	Expected int64
	// LossRatio is 1 - Received/Expected (0 when nothing was expected).
	LossRatio float64
	// Jitter is the RFC 3550 interarrival jitter estimate in seconds:
	// J += (|D| - J)/16 with D the difference of arrival spacing and
	// send spacing.
	Jitter float64
}

// Stream snapshots the downstream health counters.
func (c *Client) Stream() StreamStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := StreamStats{
		Received: c.received,
		Expected: int64(c.maxSrvSeq),
		Jitter:   c.jitter,
	}
	if out.Expected > 0 {
		out.LossRatio = 1 - float64(out.Received)/float64(out.Expected)
		if out.LossRatio < 0 {
			out.LossRatio = 0
		}
	}
	return out
}

// NewClient dials, joins, and starts the update/receive loops.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.UpdateInterval <= 0 {
		return nil, fmt.Errorf("emu: update interval %v", cfg.UpdateInterval)
	}
	if cfg.PacketSize == nil {
		cfg.PacketSize = dist.NewDeterministic(80)
	}
	if cfg.JoinTimeout <= 0 {
		cfg.JoinTimeout = 2 * time.Second
	}
	raddr, err := net.ResolveUDPAddr("udp", cfg.ServerAddr)
	if err != nil {
		return nil, fmt.Errorf("emu: resolve %q: %w", cfg.ServerAddr, err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, fmt.Errorf("emu: dial: %w", err)
	}
	tk, _ := stats.NewTopK(10_000)
	c := &Client{cfg: cfg, conn: conn, rng: dist.NewRNG(cfg.Seed), top: tk, done: make(chan struct{})}
	if err := c.join(); err != nil {
		conn.Close()
		return nil, err
	}
	c.wg.Add(2)
	go c.receiveLoop()
	go c.updateLoop()
	return c, nil
}

// join performs the hello/ack handshake with retries.
func (c *Client) join() error {
	deadline := time.Now().Add(c.cfg.JoinTimeout)
	buf := make([]byte, MaxPacket)
	for attempt := 0; time.Now().Before(deadline); attempt++ {
		hello, err := Encode(Header{Type: MsgJoin, SentNano: nowNano()})
		if err != nil {
			return err
		}
		if _, err := c.conn.Write(hello); err != nil {
			return fmt.Errorf("emu: join write: %w", err)
		}
		_ = c.conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		n, err := c.conn.Read(buf)
		if err != nil {
			continue // retry
		}
		h, err := Decode(buf[:n])
		if err != nil || h.Type != MsgJoinAck {
			continue
		}
		c.id = h.ClientID
		_ = c.conn.SetReadDeadline(time.Time{})
		return nil
	}
	return errors.New("emu: join timed out")
}

// ID returns the server-assigned player id.
func (c *Client) ID() uint16 { return c.id }

// Close leaves the game and stops the loops.
func (c *Client) Close() error {
	select {
	case <-c.done:
		return nil
	default:
	}
	close(c.done)
	if bye, err := Encode(Header{Type: MsgLeave, ClientID: c.id, SentNano: nowNano()}); err == nil {
		_, _ = c.conn.Write(bye)
	}
	err := c.conn.Close()
	c.wg.Wait()
	return err
}

// Pings snapshots the measured ping statistics.
func (c *Client) Pings() PingStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PingStats{Summary: c.pings, Samples: c.pings.Count()}
}

// PingQuantile returns an empirical ping quantile (needs enough samples).
func (c *Client) PingQuantile(p float64) (float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.top.Quantile(p)
}

func (c *Client) updateLoop() {
	defer c.wg.Done()
	var seq uint32
	timer := time.NewTimer(c.cfg.UpdateInterval)
	defer timer.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-timer.C:
		}
		seq++
		size := int(c.cfg.PacketSize.Sample(c.rng) + 0.5)
		pkt, err := Encode(Header{
			Type:       MsgUpdate,
			ClientID:   c.id,
			Seq:        seq,
			SentNano:   nowNano(),
			PayloadLen: SizeToPayload(size),
		})
		if err == nil {
			_, _ = c.conn.Write(pkt)
		}
		timer.Reset(c.cfg.UpdateInterval)
	}
}

func (c *Client) receiveLoop() {
	defer c.wg.Done()
	buf := make([]byte, MaxPacket)
	for {
		n, err := c.conn.Read(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			select {
			case <-c.done:
				return
			default:
				continue
			}
		}
		h, err := Decode(buf[:n])
		if err != nil || h.Type != MsgState {
			continue
		}
		now := nowNano()
		c.mu.Lock()
		c.received++
		if h.Seq > c.maxSrvSeq {
			c.maxSrvSeq = h.Seq
		}
		// RFC 3550 jitter on the downstream stream.
		if c.lastRecvNs != 0 && h.SentNano > c.lastSentNs {
			d := float64((now-c.lastRecvNs)-(h.SentNano-c.lastSentNs)) / 1e9
			if d < 0 {
				d = -d
			}
			c.jitter += (d - c.jitter) / 16
		}
		c.lastRecvNs = now
		c.lastSentNs = h.SentNano
		if h.EchoSentNano != 0 && h.EchoSeq > c.seen { // first echo per update
			c.seen = h.EchoSeq
			ping := float64(now-h.EchoSentNano) / 1e9
			if ping >= 0 {
				c.pings.Add(ping)
				c.top.Add(ping)
			}
		}
		c.mu.Unlock()
	}
}
