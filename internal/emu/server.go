package emu

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fpsping/internal/dist"
)

// ServerConfig tunes the UDP game server.
type ServerConfig struct {
	// Addr is the UDP listen address (e.g. "127.0.0.1:0").
	Addr string
	// TickInterval is T, the burst period.
	TickInterval time.Duration
	// PacketSize is the per-client state packet size law in bytes (on the
	// wire); nil means Det(125).
	PacketSize dist.Distribution
	// Seed drives the size sampling.
	Seed uint64
}

// Server is the authoritative game server: it tracks joined clients and
// sends every client one state packet per tick - the burst process of §2.
type Server struct {
	cfg  ServerConfig
	conn *net.UDPConn
	rng  *rand.Rand

	mu      sync.Mutex
	clients map[uint16]*clientState
	nextID  uint16
	closed  bool

	// ticks counts bursts sent; packetsIn counts client updates received.
	// They are read by monitoring goroutines (cmd/gameserver, tests) while
	// the loops run, hence atomic.
	ticks     atomic.Int64
	packetsIn atomic.Int64

	done chan struct{}
	wg   sync.WaitGroup
}

type clientState struct {
	addr     *net.UDPAddr
	lastSeq  uint32
	lastSent int64
	seq      uint32
}

// NewServer binds the socket and starts the receive and tick loops.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.TickInterval <= 0 {
		return nil, fmt.Errorf("emu: tick interval %v", cfg.TickInterval)
	}
	if cfg.PacketSize == nil {
		cfg.PacketSize = dist.NewDeterministic(125)
	}
	addr, err := net.ResolveUDPAddr("udp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("emu: resolve %q: %w", cfg.Addr, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("emu: listen: %w", err)
	}
	s := &Server{
		cfg:     cfg,
		conn:    conn,
		rng:     dist.NewRNG(cfg.Seed),
		clients: map[uint16]*clientState{},
		done:    make(chan struct{}),
	}
	s.wg.Add(2)
	go s.receiveLoop()
	go s.tickLoop()
	return s, nil
}

// Ticks reports how many bursts the server has sent.
func (s *Server) Ticks() int64 { return s.ticks.Load() }

// PacketsIn reports how many client updates the server has received.
func (s *Server) PacketsIn() int64 { return s.packetsIn.Load() }

// Addr returns the bound address.
func (s *Server) Addr() *net.UDPAddr { return s.conn.LocalAddr().(*net.UDPAddr) }

// Close stops the loops and the socket.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

// Clients returns the current player count.
func (s *Server) Clients() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.clients)
}

func (s *Server) receiveLoop() {
	defer s.wg.Done()
	buf := make([]byte, MaxPacket)
	for {
		n, raddr, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		h, err := Decode(buf[:n])
		if err != nil {
			continue // tolerate junk datagrams
		}
		switch h.Type {
		case MsgJoin:
			s.handleJoin(raddr)
		case MsgUpdate:
			s.mu.Lock()
			if c, ok := s.clients[h.ClientID]; ok {
				c.lastSeq = h.Seq
				c.lastSent = h.SentNano
				c.addr = raddr // follow NAT rebinding
				s.packetsIn.Add(1)
			}
			s.mu.Unlock()
		case MsgLeave:
			s.mu.Lock()
			delete(s.clients, h.ClientID)
			s.mu.Unlock()
		}
	}
}

func (s *Server) handleJoin(raddr *net.UDPAddr) {
	s.mu.Lock()
	id := s.nextID
	s.nextID++
	s.clients[id] = &clientState{addr: raddr}
	s.mu.Unlock()
	ack, err := Encode(Header{Type: MsgJoinAck, ClientID: id, SentNano: nowNano()})
	if err == nil {
		_, _ = s.conn.WriteToUDP(ack, raddr)
	}
}

func (s *Server) tickLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.TickInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
			s.tick()
		}
	}
}

// tick sends the per-client burst, echoing each client's last update so the
// client can compute its ping.
func (s *Server) tick() {
	s.mu.Lock()
	type target struct {
		id   uint16
		addr *net.UDPAddr
		seq  uint32
		echo uint32
		sent int64
	}
	targets := make([]target, 0, len(s.clients))
	for id, c := range s.clients {
		c.seq++
		targets = append(targets, target{id: id, addr: c.addr, seq: c.seq, echo: c.lastSeq, sent: c.lastSent})
	}
	s.ticks.Add(1)
	s.mu.Unlock()
	for _, t := range targets {
		size := int(s.cfg.PacketSize.Sample(s.rng) + 0.5)
		pkt, err := Encode(Header{
			Type:         MsgState,
			ClientID:     t.id,
			Seq:          t.seq,
			EchoSeq:      t.echo,
			SentNano:     nowNano(),
			EchoSentNano: t.sent,
			PayloadLen:   SizeToPayload(size),
		})
		if err != nil {
			continue
		}
		_, _ = s.conn.WriteToUDP(pkt, t.addr)
	}
}
