package emu

import (
	"testing"
	"testing/quick"
	"time"

	"fpsping/internal/dist"
)

func TestCodecRoundTrip(t *testing.T) {
	h := Header{
		Type:         MsgState,
		ClientID:     7,
		Seq:          1234,
		EchoSeq:      1200,
		SentNano:     987654321,
		EchoSentNano: 987000000,
		PayloadLen:   95,
	}
	buf, err := Encode(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != HeaderSize+95 {
		t.Fatalf("encoded %d bytes", len(buf))
	}
	back, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Errorf("round trip: %+v != %+v", back, h)
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(typ uint8, id uint16, seq, echo uint32, sent, echoSent int64, pay uint16) bool {
		h := Header{
			Type:         MsgType(typ%5) + MsgJoin,
			ClientID:     id,
			Seq:          seq,
			EchoSeq:      echo,
			SentNano:     sent,
			EchoSentNano: echoSent,
			PayloadLen:   pay % (MaxPacket - HeaderSize),
		}
		buf, err := Encode(h)
		if err != nil {
			return false
		}
		back, err := Decode(buf)
		return err == nil && back == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCodecRejectsJunk(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("accepted empty")
	}
	if _, err := Decode(make([]byte, HeaderSize-1)); err == nil {
		t.Error("accepted short")
	}
	buf, _ := Encode(Header{Type: MsgJoin})
	buf[0] ^= 0xFF
	if _, err := Decode(buf); err == nil {
		t.Error("accepted bad magic")
	}
	buf2, _ := Encode(Header{Type: MsgJoin})
	buf2[2] = 99
	if _, err := Decode(buf2); err == nil {
		t.Error("accepted bad version")
	}
	buf3, _ := Encode(Header{Type: MsgJoin, PayloadLen: 4})
	if _, err := Decode(buf3[:len(buf3)-1]); err == nil {
		t.Error("accepted truncated payload")
	}
	if _, err := Encode(Header{Type: MsgJoin, PayloadLen: MaxPacket}); err == nil {
		t.Error("accepted oversized payload")
	}
}

func TestSizeToPayload(t *testing.T) {
	if SizeToPayload(10) != 0 {
		t.Error("sub-header size should clamp to zero payload")
	}
	if got := SizeToPayload(125); int(got)+HeaderSize != 125 {
		t.Errorf("payload %d", got)
	}
	if got := SizeToPayload(MaxPacket + 100); int(got)+HeaderSize != MaxPacket {
		t.Errorf("oversize clamp %d", got)
	}
}

func TestLiveDirectPing(t *testing.T) {
	// Server and two clients directly on loopback: pings should flow and be
	// small but at least one tick-wait apart on average.
	srv, err := NewServer(ServerConfig{
		Addr:         "127.0.0.1:0",
		TickInterval: 20 * time.Millisecond,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var clients []*Client
	for i := 0; i < 2; i++ {
		c, err := NewClient(ClientConfig{
			ServerAddr:     srv.Addr().String(),
			UpdateInterval: 25 * time.Millisecond,
			Seed:           uint64(10 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients = append(clients, c)
	}
	time.Sleep(1200 * time.Millisecond)
	if srv.Clients() != 2 {
		t.Errorf("server sees %d clients", srv.Clients())
	}
	for i, c := range clients {
		ps := c.Pings()
		if ps.Samples < 20 {
			t.Fatalf("client %d: only %d pings", i, ps.Samples)
		}
		mean := ps.Summary.Mean()
		// Mean ping ~ tick wait (uniform 0..20ms -> ~10ms) + tiny loopback
		// delays; generously bounded.
		if mean <= 0 || mean > 0.050 {
			t.Errorf("client %d: mean ping %v", i, mean)
		}
	}
}

func TestLiveShapedPing(t *testing.T) {
	// Through the shaper with 5ms one-way delay: pings must shift up by
	// ~2*5ms relative to the direct path, demonstrating the bottleneck
	// emulation end to end.
	srv, err := NewServer(ServerConfig{
		Addr:         "127.0.0.1:0",
		TickInterval: 20 * time.Millisecond,
		Seed:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	shaper, err := NewShaper(ShaperConfig{
		ListenAddr: "127.0.0.1:0",
		ServerAddr: srv.Addr().String(),
		UpRate:     1_000_000,
		DownRate:   4_000_000,
		Delay:      5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shaper.Close()

	direct, err := NewClient(ClientConfig{
		ServerAddr:     srv.Addr().String(),
		UpdateInterval: 25 * time.Millisecond,
		Seed:           20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	shaped, err := NewClient(ClientConfig{
		ServerAddr:     shaper.Addr().String(),
		UpdateInterval: 25 * time.Millisecond,
		Seed:           21,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shaped.Close()

	time.Sleep(1500 * time.Millisecond)
	dp, sp := direct.Pings(), shaped.Pings()
	if dp.Samples < 20 || sp.Samples < 20 {
		t.Fatalf("samples %d/%d", dp.Samples, sp.Samples)
	}
	shift := sp.Summary.Mean() - dp.Summary.Mean()
	// Two 5ms propagation legs plus serialization (~0.6+0.25ms); timers and
	// scheduling add noise, so accept 7..20ms.
	if shift < 0.007 || shift > 0.020 {
		t.Errorf("shaper shift %vms, want ~10ms", 1e3*shift)
	}
	if srv.Clients() != 2 {
		t.Errorf("server sees %d clients", srv.Clients())
	}
}

func TestShaperRateLimiting(t *testing.T) {
	// A burst of back-to-back packets through a slow line must arrive
	// spaced by at least the serialization time.
	srv, err := NewServer(ServerConfig{
		Addr:         "127.0.0.1:0",
		TickInterval: time.Hour, // silent server; we only observe upstream
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	shaper, err := NewShaper(ShaperConfig{
		ListenAddr: "127.0.0.1:0",
		ServerAddr: srv.Addr().String(),
		UpRate:     128_000, // 80B packet -> 5ms serialization
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shaper.Close()
	c, err := NewClient(ClientConfig{
		ServerAddr:     shaper.Addr().String(),
		UpdateInterval: 1 * time.Millisecond, // 5x faster than the line
		PacketSize:     dist.NewDeterministic(80),
		Seed:           30,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	time.Sleep(500 * time.Millisecond)
	in := srv.PacketsIn()
	// 500ms at 5ms per packet: at most ~100 packets can have crossed, even
	// though the client offered ~500.
	if in > 120 {
		t.Errorf("shaper let %d packets through; line supports ~100", in)
	}
	if in < 40 {
		t.Errorf("shaper too strict: only %d packets", in)
	}
}

func TestShaperQueueDrops(t *testing.T) {
	srv, err := NewServer(ServerConfig{
		Addr:         "127.0.0.1:0",
		TickInterval: time.Hour,
		Seed:         4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	shaper, err := NewShaper(ShaperConfig{
		ListenAddr: "127.0.0.1:0",
		ServerAddr: srv.Addr().String(),
		UpRate:     64_000,
		QueueLimit: 400, // five 80B packets
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shaper.Close()
	c, err := NewClient(ClientConfig{
		ServerAddr:     shaper.Addr().String(),
		UpdateInterval: time.Millisecond,
		PacketSize:     dist.NewDeterministic(80),
		Seed:           31,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	time.Sleep(400 * time.Millisecond)
	shaper.mu.Lock()
	drops := shaper.Dropped
	shaper.mu.Unlock()
	if drops == 0 {
		t.Error("overloaded bounded queue never dropped")
	}
}

func TestStreamStatsHealthyPath(t *testing.T) {
	srv, err := NewServer(ServerConfig{
		Addr:         "127.0.0.1:0",
		TickInterval: 15 * time.Millisecond,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := NewClient(ClientConfig{
		ServerAddr:     srv.Addr().String(),
		UpdateInterval: 20 * time.Millisecond,
		Seed:           40,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	time.Sleep(900 * time.Millisecond)
	ss := c.Stream()
	if ss.Received < 20 || ss.Expected < 20 {
		t.Fatalf("stream counters %+v", ss)
	}
	// Loopback: essentially no loss, sub-tick jitter.
	if ss.LossRatio > 0.05 {
		t.Errorf("loss ratio %v on loopback", ss.LossRatio)
	}
	if ss.Jitter < 0 || ss.Jitter > 0.015 {
		t.Errorf("jitter %v out of range", ss.Jitter)
	}
}

func TestStreamStatsSeesShaperLoss(t *testing.T) {
	// A starved uplink drops most updates, but the downstream state stream
	// still flows; meanwhile a tiny downstream queue also sheds packets, so
	// the client must observe downstream loss.
	srv, err := NewServer(ServerConfig{
		Addr:         "127.0.0.1:0",
		TickInterval: 5 * time.Millisecond, // aggressive tick into a slow line
		Seed:         6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	shaper, err := NewShaper(ShaperConfig{
		ListenAddr: "127.0.0.1:0",
		ServerAddr: srv.Addr().String(),
		UpRate:     512_000,
		DownRate:   96_000, // ~10ms per 125B state packet < 5ms tick
		QueueLimit: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shaper.Close()
	c, err := NewClient(ClientConfig{
		ServerAddr:     shaper.Addr().String(),
		UpdateInterval: 50 * time.Millisecond,
		Seed:           41,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	time.Sleep(900 * time.Millisecond)
	ss := c.Stream()
	if ss.Expected < 50 {
		t.Fatalf("expected counter %d too low", ss.Expected)
	}
	if ss.LossRatio < 0.2 {
		t.Errorf("overloaded downstream should lose packets: loss %v", ss.LossRatio)
	}
}
