package core

import (
	"errors"
	"math"
	"testing"
)

// figure3Model is the Figure 3 scenario: PS=125B, T=60ms, DSL defaults.
func figure3Model(k int) Model {
	m := DSLDefaults()
	m.ServerPacketBytes = 125
	m.BurstInterval = 0.060
	m.ErlangOrder = k
	return m
}

// figure4Model is the Figure 4 scenario: PS=125B, K=9, variable T.
func figure4Model(tSec float64) Model {
	m := DSLDefaults()
	m.ServerPacketBytes = 125
	m.BurstInterval = tSec
	m.ErlangOrder = 9
	return m
}

func TestValidation(t *testing.T) {
	m := figure3Model(9)
	m.Gamers = 40
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := m
	bad.Gamers = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero gamers")
	}
	bad = m
	bad.ErlangOrder = 1
	if err := bad.Validate(); err == nil {
		t.Error("accepted K=1 (uniform position law needs K>=2)")
	}
	bad = m
	bad.Quantile = 1
	if err := bad.Validate(); err == nil {
		t.Error("accepted quantile 1")
	}
	bad = m
	bad.FixedDelay = -1
	if err := bad.Validate(); err == nil {
		t.Error("accepted negative fixed delay")
	}
}

func TestLoadsMatchEquation37(t *testing.T) {
	m := figure3Model(9)
	m.Gamers = 100
	// rho_d = 8*N*PS/(T*C) = 8*100*125/(0.06*5e6) = 1/3.
	if got := m.DownlinkLoad(); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("downlink load = %v", got)
	}
	// rho_u = 8*100*80/(0.06*5e6).
	if got := m.UplinkLoad(); math.Abs(got-64000.0/300000) > 1e-12 {
		t.Errorf("uplink load = %v", got)
	}
	// WithDownlinkLoad inverts eq. (37).
	m2 := m.WithDownlinkLoad(0.5)
	if math.Abs(m2.DownlinkLoad()-0.5) > 1e-12 {
		t.Errorf("WithDownlinkLoad: %v", m2.DownlinkLoad())
	}
	if math.Abs(m2.Gamers-150) > 1e-9 {
		t.Errorf("N at 50%% load = %v, want 150", m2.Gamers)
	}
}

func TestSerializationDelayDSL(t *testing.T) {
	m := figure3Model(9)
	m.Gamers = 10
	// 80B at 128k = 5ms; 80B at 5M = 0.128ms; 125B at 5M = 0.2ms;
	// 125B at 1.024M = 0.9765625ms.
	want := 0.005 + 0.000128 + 0.0002 + 0.0009765625
	if got := m.SerializationDelay(); math.Abs(got-want) > 1e-12 {
		t.Errorf("serialization = %v, want %v", got, want)
	}
}

func TestRTTQuantileBasicProperties(t *testing.T) {
	m := figure3Model(9).WithDownlinkLoad(0.4)
	q, err := m.RTTQuantile()
	if err != nil {
		t.Fatal(err)
	}
	if q <= m.FixedPart() {
		t.Errorf("quantile %v below fixed part %v", q, m.FixedPart())
	}
	// Tail at the quantile equals 1 - level.
	tail, err := m.RTTTail(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tail-1e-5) > 1e-7 {
		t.Errorf("tail at quantile = %v, want 1e-5", tail)
	}
	mean, err := m.MeanRTT()
	if err != nil {
		t.Fatal(err)
	}
	if !(mean > m.FixedPart() && mean < q) {
		t.Errorf("mean %v outside (fixed %v, quantile %v)", mean, m.FixedPart(), q)
	}
	// FixedDelay shifts the quantile one-for-one.
	m2 := m
	m2.FixedDelay = 0.010
	q2, err := m2.RTTQuantile()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q2-q-0.010) > 1e-9 {
		t.Errorf("fixed delay not additive: %v vs %v", q2, q)
	}
}

func TestUnstableLoadsError(t *testing.T) {
	m := figure3Model(9).WithDownlinkLoad(1.05)
	if _, err := m.RTTQuantile(); !errors.Is(err, ErrUnstable) {
		t.Errorf("want ErrUnstable, got %v", err)
	}
	// PS < PC: uplink saturates first. At PS=75, PC=80, downlink load 0.95
	// means uplink load 0.95*80/75 > 1.
	m2 := DSLDefaults()
	m2.ServerPacketBytes = 75
	m2.BurstInterval = 0.060
	m2.ErlangOrder = 9
	m2 = m2.WithDownlinkLoad(0.95)
	if _, err := m2.RTTQuantile(); !errors.Is(err, ErrUnstable) {
		t.Errorf("uplink overload not caught: %v", err)
	}
}

func TestFigure3ShapeContracts(t *testing.T) {
	// The three curves of Figure 3: K=2, 9, 20 at PS=125B, T=60ms.
	curves := map[int][]SweepPoint{}
	for _, k := range []int{2, 9, 20} {
		pts, err := figure3Model(k).SweepLoads(PaperLoadGrid())
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) < 15 {
			t.Fatalf("K=%d: only %d stable points", k, len(pts))
		}
		curves[k] = pts
		// Monotone increasing in load.
		for i := 1; i < len(pts); i++ {
			if pts[i].RTT <= pts[i-1].RTT {
				t.Errorf("K=%d: RTT not increasing at load %v", k, pts[i].Load)
			}
		}
	}
	// Ordering: smaller K (burstier) means larger RTT at every common load.
	for i := range curves[20] {
		if i >= len(curves[2]) || i >= len(curves[9]) {
			break
		}
		r2, r9, r20 := curves[2][i].RTT, curves[9][i].RTT, curves[20][i].RTT
		if !(r2 > r9 && r9 > r20) {
			t.Errorf("load %v: ordering violated: K2=%v K9=%v K20=%v",
				curves[20][i].Load, r2, r9, r20)
		}
	}
	// Low-load regime: position delay dominates and RTT grows ~linearly with
	// load (§4's reading of Figure 3). Compare successive increments over
	// 5%..25% load: they should be nearly constant.
	pts := curves[9]
	d1 := pts[1].RTT - pts[0].RTT
	d4 := pts[4].RTT - pts[3].RTT
	if d1 <= 0 || math.Abs(d4-d1)/d1 > 0.35 {
		t.Errorf("low-load growth not near-linear: increments %v vs %v", d1, d4)
	}
	// High-load blow-up: the last stable point must exceed 3x the mid-load
	// RTT (the rho->1 asymptote).
	mid := pts[len(pts)/2].RTT
	last := pts[len(pts)-1].RTT
	if last < 2*mid {
		t.Errorf("no blow-up near saturation: mid %v last %v", mid, last)
	}
	// Paper's reading: "even at moderate load, low values of K lead to
	// unacceptable RTT" - at 50% load K=2 is already several times K=20.
	i50 := 9 // load 0.50 in the 5% grid
	if curves[2][i50].RTT < 2*curves[20][i50].RTT {
		t.Errorf("K=2 not dramatically worse at 50%%: %v vs %v",
			curves[2][i50].RTT, curves[20][i50].RTT)
	}
}

func TestFigure4InterArrivalProportionality(t *testing.T) {
	// Figure 4: with the downlink dominant, RTT is ~proportional to T;
	// the paper: "the RTT for T=60ms is about 3/2 times as high as for
	// T=40ms".
	m40 := figure4Model(0.040)
	m60 := figure4Model(0.060)
	for _, rho := range []float64{0.2, 0.4, 0.6} {
		q40, err := m40.WithDownlinkLoad(rho).RTTQuantile()
		if err != nil {
			t.Fatal(err)
		}
		q60, err := m60.WithDownlinkLoad(rho).RTTQuantile()
		if err != nil {
			t.Fatal(err)
		}
		// Compare the queueing parts (serialization is load-independent and
		// tiny, but exclude it to test the claim cleanly).
		f40 := m40.FixedPart()
		f60 := m60.FixedPart()
		ratio := (q60 - f60) / (q40 - f40)
		if math.Abs(ratio-1.5) > 0.1 {
			t.Errorf("load %v: T-scaling ratio %v, want ~1.5", rho, ratio)
		}
	}
}

func TestCapacityInvarianceGivenLoad(t *testing.T) {
	// §4: "the structure of our downlink queueing model is such that it is
	// invariant with respect to the capacity C: only the load determines the
	// quantile value". Changing C (and keeping load fixed) must only move
	// the serialization part.
	base := figure3Model(9).WithDownlinkLoad(0.4)
	qBase, err := base.RTTQuantile()
	if err != nil {
		t.Fatal(err)
	}
	scaled := base
	scaled.AggregateRate *= 4
	scaled = scaled.WithDownlinkLoad(0.4)
	qScaled, err := scaled.RTTQuantile()
	if err != nil {
		t.Fatal(err)
	}
	gotShift := qBase - qScaled
	wantShift := base.FixedPart() - scaled.FixedPart()
	if math.Abs(gotShift-wantShift) > 0.002 {
		t.Errorf("capacity shift %v, serialization shift %v", gotShift, wantShift)
	}
}

func TestRobustnessAcrossServerPacketSizes(t *testing.T) {
	// §4: "We have done the same experiment for PS=100 and PS=75 and obtained
	// nearly the same behavior": at equal downlink load, the queueing part of
	// the RTT should be close across PS (it depends on load, T, K only).
	var ref float64
	for i, ps := range []float64{125, 100, 75} {
		m := DSLDefaults()
		m.ServerPacketBytes = ps
		m.BurstInterval = 0.060
		m.ErlangOrder = 9
		m = m.WithDownlinkLoad(0.5)
		q, err := m.RTTQuantile()
		if err != nil {
			t.Fatal(err)
		}
		queueing := q - m.FixedPart()
		if i == 0 {
			ref = queueing
			continue
		}
		if math.Abs(queueing-ref)/ref > 0.12 {
			t.Errorf("PS=%v: queueing quantile %v deviates from %v", ps, queueing, ref)
		}
	}
}

func TestDimensioningMatchesPaper(t *testing.T) {
	// §4's closing example: PS=125B, T=40ms, C=5Mbit/s, RTT bound 50ms
	// ("excellent game play" per Färber [11]) gives rho_max ~ 20/40/60% and
	// Nmax = 40/80/120 for K = 2/9/20.
	cases := []struct {
		k       int
		rhoLo   float64
		rhoHi   float64
		gamersN int
		gamTol  int
	}{
		{2, 0.10, 0.30, 40, 22},
		{9, 0.30, 0.50, 80, 30},
		{20, 0.48, 0.75, 120, 40},
	}
	for _, c := range cases {
		m := DSLDefaults()
		m.ServerPacketBytes = 125
		m.BurstInterval = 0.040
		m.ErlangOrder = c.k
		res, err := m.MaxLoad(0.050)
		if err != nil {
			t.Fatalf("K=%d: %v", c.k, err)
		}
		if res.MaxDownlinkLoad < c.rhoLo || res.MaxDownlinkLoad > c.rhoHi {
			t.Errorf("K=%d: rho_max = %v, paper band [%v, %v]",
				c.k, res.MaxDownlinkLoad, c.rhoLo, c.rhoHi)
		}
		if res.MaxGamers < c.gamersN-c.gamTol || res.MaxGamers > c.gamersN+c.gamTol {
			t.Errorf("K=%d: Nmax = %d, paper ~%d", c.k, res.MaxGamers, c.gamersN)
		}
		if res.RTTAtMax > 0.050+1e-4 {
			t.Errorf("K=%d: RTT at max load %v exceeds bound", c.k, res.RTTAtMax)
		}
		// Consistency of the closing formula Nmax = rho*T*C/(8*PS).
		wantN := int(res.MaxDownlinkLoad * m.BurstInterval * m.AggregateRate / (8 * m.ServerPacketBytes))
		if res.MaxGamers != wantN {
			t.Errorf("K=%d: Nmax %d inconsistent with formula %d", c.k, res.MaxGamers, wantN)
		}
	}
	// Monotonicity in K: more regular bursts -> more tolerable load.
	var prev float64
	for _, k := range []int{2, 9, 20} {
		m := DSLDefaults()
		m.ServerPacketBytes = 125
		m.BurstInterval = 0.040
		m.ErlangOrder = k
		res, err := m.MaxLoad(0.050)
		if err != nil {
			t.Fatal(err)
		}
		if res.MaxDownlinkLoad <= prev {
			t.Errorf("K=%d: rho_max %v not increasing in K", k, res.MaxDownlinkLoad)
		}
		prev = res.MaxDownlinkLoad
	}
}

func TestDimensioningEdgeCases(t *testing.T) {
	m := figure3Model(9)
	if _, err := m.MaxLoad(0); err == nil {
		t.Error("accepted zero bound")
	}
	// Bound below the fixed delay is impossible.
	if _, err := m.MaxLoad(0.004); err == nil {
		t.Error("accepted bound below serialization delay")
	}
	// A huge bound should run into the stability ceiling, not loop.
	res, err := m.MaxLoad(10)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxDownlinkLoad < 0.9 {
		t.Errorf("huge bound: rho_max = %v", res.MaxDownlinkLoad)
	}
}

func TestDecomposeComponentsBehave(t *testing.T) {
	// Low load: position delay dominates burst wait and upstream (§4's
	// explanation of the linear regime).
	m := figure3Model(9).WithDownlinkLoad(0.15)
	c, err := m.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	if !(c.Position > c.BurstWait && c.Position > c.Upstream) {
		t.Errorf("low load: position %v should dominate burst %v and upstream %v",
			c.Position, c.BurstWait, c.Upstream)
	}
	// High load: burst wait takes over.
	m2 := figure3Model(9).WithDownlinkLoad(0.85)
	c2, err := m2.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	if !(c2.BurstWait > c2.Position) {
		t.Errorf("high load: burst %v should dominate position %v", c2.BurstWait, c2.Position)
	}
	// The true total is below fixed + sum of quantiles, and above fixed +
	// the largest single component.
	sumQ, err := m.RTTQuantileSumOfQuantiles()
	if err != nil {
		t.Fatal(err)
	}
	if !(c.Total <= sumQ+1e-12) {
		t.Errorf("total %v exceeds sum-of-quantiles %v", c.Total, sumQ)
	}
	if !(c.Total >= c.Serialization+c.Position) {
		t.Errorf("total %v below serialization+position %v", c.Total, c.Serialization+c.Position)
	}
}

func TestAblationApproximations(t *testing.T) {
	m := figure3Model(9).WithDownlinkLoad(0.5)
	full, err := m.RTTQuantile()
	if err != nil {
		t.Fatal(err)
	}
	dom, err := m.RTTQuantileDominantPole()
	if err != nil {
		t.Fatal(err)
	}
	sum, err := m.RTTQuantileSumOfQuantiles()
	if err != nil {
		t.Fatal(err)
	}
	// Sum of quantiles over-estimates; dominant pole is in the right
	// ballpark (within 25% of the full inversion).
	if !(sum >= full) {
		t.Errorf("sum-of-quantiles %v below full %v", sum, full)
	}
	if math.Abs(dom-full)/full > 0.25 {
		t.Errorf("dominant-pole %v vs full %v", dom, full)
	}
}

func TestSweepErrors(t *testing.T) {
	m := figure3Model(9)
	if _, err := m.SweepLoads(nil); err == nil {
		t.Error("accepted empty sweep")
	}
	if _, err := m.SweepLoads([]float64{-0.1}); err == nil {
		t.Error("accepted negative load")
	}
	grid := PaperLoadGrid()
	if len(grid) != 18 || math.Abs(grid[0]-0.05) > 1e-12 || math.Abs(grid[17]-0.90) > 1e-9 {
		t.Errorf("paper grid wrong: %v", grid)
	}
}

func BenchmarkRTTQuantileK9(b *testing.B) {
	m := figure3Model(9).WithDownlinkLoad(0.5)
	for i := 0; i < b.N; i++ {
		if _, err := m.RTTQuantile(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRTTQuantileK20(b *testing.B) {
	m := figure3Model(20).WithDownlinkLoad(0.5)
	for i := 0; i < b.N; i++ {
		if _, err := m.RTTQuantile(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullFigure3Curve(b *testing.B) {
	m := figure3Model(9)
	loads := PaperLoadGrid()
	for i := 0; i < b.N; i++ {
		if _, err := m.SweepLoads(loads); err != nil {
			b.Fatal(err)
		}
	}
}
