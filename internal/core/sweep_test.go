package core

import (
	"testing"
)

// TestSweepLoadsParallelMatchesSerial is the layer's determinism contract:
// the parallel sweep must reproduce the serial one bit for bit at any worker
// count, including the early break at the stability asymptote (loads past
// 90% drive the model unstable, so the grid below deliberately crosses it).
func TestSweepLoadsParallelMatchesSerial(t *testing.T) {
	m := figure3Model(9)
	var loads []float64
	for r := 0.05; r < 1.30; r += 0.05 {
		loads = append(loads, r)
	}
	want, err := m.SweepLoads(loads)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) >= len(loads) {
		t.Fatalf("grid never crossed the asymptote (%d points) - widen it", len(want))
	}
	for _, workers := range []int{1, 2, 4, 8} {
		got, err := m.SweepLoadsParallel(loads, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d points, serial %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("workers=%d point %d: %+v vs serial %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestSweepLoadsParallelErrors mirrors the serial error semantics: empty
// grids and invalid loads before the asymptote are errors; an invalid load
// after the first unstable point is never reached, exactly as in the serial
// walk.
func TestSweepLoadsParallelErrors(t *testing.T) {
	m := figure3Model(9)
	if _, err := m.SweepLoadsParallel(nil, 4); err == nil {
		t.Error("accepted empty sweep")
	}
	if _, err := m.SweepLoadsParallel([]float64{-0.1, 0.5}, 4); err == nil {
		t.Error("accepted negative load")
	}
	// Invalid load hiding behind the asymptote: serial never sees it.
	hidden := []float64{0.5, 2.5, -1}
	want, serialErr := m.SweepLoads(hidden)
	got, parallelErr := m.SweepLoadsParallel(hidden, 4)
	if (serialErr == nil) != (parallelErr == nil) {
		t.Fatalf("error mismatch: serial %v, parallel %v", serialErr, parallelErr)
	}
	if len(got) != len(want) {
		t.Fatalf("%d points vs serial %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("point %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}
