package core

import (
	"fmt"
	"math"
)

// DimensioningResult reports how much gaming traffic an aggregation link can
// carry under an RTT bound: the paper's §4 "dimensioning rule".
type DimensioningResult struct {
	// MaxDownlinkLoad is the largest rho_d keeping the RTT quantile within
	// the bound.
	MaxDownlinkLoad float64
	// MaxGamers is Nmax = floor(rho_max * T * C / (8 * PS)), eq. (37)
	// inverted.
	MaxGamers int
	// RTTAtMax is the RTT quantile at MaxDownlinkLoad.
	RTTAtMax float64
	// Bound echoes the RTT bound used.
	Bound float64
}

// PointEval evaluates the model's RTT quantile (seconds) at downlink load
// rho. It is the dimensioning bisection's extension point: MaxLoad plugs in
// a direct RTTQuantile evaluation, while a caching front end (the daemon's
// Engine.Dimension) plugs in a memoized one, so repeated bisections share
// quantile inversions instead of recomputing them. An implementation must be
// bit-identical to WithDownlinkLoad(rho).RTTQuantile() — the bisection's
// branch decisions, and therefore its answer, follow the returned values
// exactly.
type PointEval func(rho float64) (float64, error)

// MaxLoad finds the largest downlink load whose RTT quantile stays within
// rttBound, by bisection over the load (the quantile is monotone increasing
// in load). The search respects both directions' stability limits: with
// PS < PC the uplink saturates first (§4 notes the crossover at downlink
// load PS/PC).
func (m Model) MaxLoad(rttBound float64) (DimensioningResult, error) {
	return m.MaxLoadWith(rttBound, nil)
}

// MaxLoadWith is MaxLoad with the per-load quantile evaluation delegated to
// rttAt (nil means the direct evaluation). The probe sequence — lo and the
// stability ceiling first, then the midpoints — is identical whatever the
// evaluator, so a memoizing rttAt changes only where the numbers come from,
// never what they are.
func (m Model) MaxLoadWith(rttBound float64, rttAt PointEval) (DimensioningResult, error) {
	if !(rttBound > 0) {
		return DimensioningResult{}, fmt.Errorf("%w: rtt bound %g", ErrBadModel, rttBound)
	}
	probe := m
	probe.Gamers = 1
	if err := probe.Validate(); err != nil {
		return DimensioningResult{}, err
	}
	if m.FixedPart() >= rttBound {
		return DimensioningResult{}, fmt.Errorf(
			"core: fixed delay %.4gms alone exceeds the bound %.4gms",
			1e3*m.FixedPart(), 1e3*rttBound)
	}

	// Stability ceiling on the downlink load: downlink itself (rho_d < 1)
	// and the uplink, which reaches load 1 at rho_d = (PS/PC)*(D/T).
	ceil := 1.0
	if upCeil := (m.ServerPacketBytes / m.ClientPacketBytes) *
		(m.clientInterval() / m.BurstInterval); upCeil < ceil {
		ceil = upCeil
	}
	ceil -= 1e-6

	if rttAt == nil {
		// The bisection's probes are neighbours on the load axis, so drive
		// them through one LoadPath: each probe's root solve and quantile
		// inversion continue from the previous probe, bit-identical to the
		// direct evaluation (the LoadPath contract).
		path := m.NewLoadPath()
		rttAt = func(rho float64) (float64, error) {
			cm, err := path.Compile(rho)
			if err != nil {
				return 0, err
			}
			return path.Quantile(cm)
		}
	}

	lo := 1e-6
	v, err := rttAt(lo)
	if err != nil {
		return DimensioningResult{}, err
	}
	if v > rttBound {
		return DimensioningResult{}, fmt.Errorf(
			"core: RTT %.4gms at vanishing load already exceeds bound %.4gms",
			1e3*v, 1e3*rttBound)
	}
	hi := ceil
	vhi, err := rttAt(hi)
	if err != nil {
		return DimensioningResult{}, err
	}
	if vhi <= rttBound {
		// Bound never binds before instability.
		res := m.WithDownlinkLoad(hi)
		return DimensioningResult{
			MaxDownlinkLoad: hi,
			MaxGamers:       int(math.Floor(res.Gamers)),
			RTTAtMax:        vhi,
			Bound:           rttBound,
		}, nil
	}
	for i := 0; i < 100; i++ {
		mid := lo + (hi-lo)/2
		v, err := rttAt(mid)
		if err != nil {
			return DimensioningResult{}, err
		}
		if v <= rttBound {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-6 {
			break
		}
	}
	// lo is always a load the bisection already probed (it starts at the
	// vanishing-load probe and only ever moves to an accepted midpoint), so
	// a memoizing evaluator answers this final call from its cache.
	at := m.WithDownlinkLoad(lo)
	rtt, err := rttAt(lo)
	if err != nil {
		return DimensioningResult{}, err
	}
	return DimensioningResult{
		MaxDownlinkLoad: lo,
		MaxGamers:       int(math.Floor(at.Gamers)),
		RTTAtMax:        rtt,
		Bound:           rttBound,
	}, nil
}

// MaxGamers is the paper's closing formula: the whole-gamer count supported
// under the bound.
func (m Model) MaxGamers(rttBound float64) (int, error) {
	res, err := m.MaxLoad(rttBound)
	if err != nil {
		return 0, err
	}
	return res.MaxGamers, nil
}
