package core

import (
	"sync"

	"fpsping/internal/mgf"
	"fpsping/internal/queueing"
)

// This file is the staged evaluation pipeline: everything expensive about a
// scenario — queue construction, M/E_K/1 and D/E_K/1 root solving, the
// Appendix-A convolution of the three delay factors — happens once, in
// Compile, and the result is a value cheap to evaluate many times. The
// pipeline has three stages with distinct lifetimes:
//
//	Model           parameters only; free to copy and mutate
//	CompiledModel   factors + combined law, built by Compile
//	evaluations     Quantile/Tail/Mean over the compiled law
//
// Front ends cache CompiledModels (the daemon keeps them in its point memo),
// and monotone walks (load sweeps, dimensioning bisections) additionally
// thread an mgf.TailHint through successive quantile inversions so each
// point's bracket search starts from its neighbour's answer.

// CompiledLaw pairs a delay law with a per-level cache of solved quantiles.
// It is safe for concurrent use: the underlying laws are immutable and the
// cache is mutex-guarded, so a CompiledLaw can live in a shared memo entry.
type CompiledLaw struct {
	law mgf.Law

	mu     sync.Mutex
	solved map[float64]float64 // quantile level -> queueing-delay quantile
}

// NewCompiledLaw wraps a delay law for repeated evaluation.
func NewCompiledLaw(l mgf.Law) *CompiledLaw {
	return &CompiledLaw{law: l, solved: make(map[float64]float64)}
}

// Law returns the underlying delay law.
func (c *CompiledLaw) Law() mgf.Law { return c.law }

// Tail returns P(D > x) for the queueing delay D.
func (c *CompiledLaw) Tail(x float64) float64 { return c.law.Tail(x) }

// Mean returns E[D].
func (c *CompiledLaw) Mean() float64 { return c.law.Mean() }

// Quantile returns the queueing-delay quantile at level p: a cold
// QuantileWarm.
func (c *CompiledLaw) Quantile(p float64) (float64, error) {
	return c.QuantileWarm(p, nil)
}

// QuantileWarm is Quantile with an optional warm-start hint threaded through
// the inversion (see mgf.TailHint). Solved levels are cached; a cache hit
// still updates the hint, so a sweep that re-visits a memoized point keeps
// warm-starting the next one. Warm and cold inversions are bit-identical, so
// the cache and the hint change only the cost of an answer, never its value.
func (c *CompiledLaw) QuantileWarm(p float64, hint *mgf.TailHint) (float64, error) {
	return c.QuantileWarmWS(p, hint, nil)
}

// QuantileWarmWS is QuantileWarm with the quadrature workspace supplied by
// the caller (nil borrows a pooled one per inversion); a load-axis walk
// holds one workspace so consecutive points reuse warm Simpson grids.
func (c *CompiledLaw) QuantileWarmWS(p float64, hint *mgf.TailHint, ws *mgf.Workspace) (float64, error) {
	c.mu.Lock()
	q, ok := c.solved[p]
	c.mu.Unlock()
	if !ok {
		var err error
		q, err = lawQuantileHintWS(c.law, p, hint, ws)
		if err != nil {
			return 0, err
		}
		c.mu.Lock()
		c.solved[p] = q
		c.mu.Unlock()
		return q, nil
	}
	if hint != nil && q > 0 {
		hint.Set(q)
	}
	return q, nil
}

// CompiledModel is a scenario with its analytic pipeline fully staged: the
// three delay-factor mixes of eq. (35) and their combined law, ready for
// repeated quantile/tail/mean evaluation. Build one with Model.Compile. A
// CompiledModel is safe for concurrent use.
type CompiledModel struct {
	// Model echoes the compiled scenario parameters (read-only by convention:
	// mutating them does not recompile).
	Model Model

	du, w, p mgf.Mix
	law      *CompiledLaw
	// sol is the downstream D/E_K/1 root solution the factors were built
	// from, kept so a load-axis walk can seed the next point's solve with it
	// (see LoadPath). Immutable after Compile, like the rest of the struct.
	sol *queueing.DEK1Solution
}

// Compile runs the expensive stages of the pipeline once: validates the
// scenario, builds the upstream M/D/1 and downstream D/E_K/1 factor mixes
// (factorMixes) and combines them into the total queueing-delay law
// (combineLaw). Everything after this is cheap arithmetic over the result.
func (m Model) Compile() (*CompiledModel, error) {
	return m.CompileFrom(nil)
}

// CompileFrom is Compile with the downstream root solve warm-started from a
// neighbouring load's solution (nil means a cold solve). The continuation
// seeds only the Newton iteration; its result is validated and falls back to
// the cold factorization on any doubt, so a warm compile returns exactly the
// bits of Compile() — cheaper, never different. LoadPath threads solutions
// through consecutive loads so sweeps and bisections compile each point from
// its neighbour.
func (m Model) CompileFrom(prev *queueing.DEK1Solution) (*CompiledModel, error) {
	du, w, p, sol, err := m.factorMixesFrom(prev)
	if err != nil {
		return nil, err
	}
	law, err := combineLaw(du, w, p)
	if err != nil {
		return nil, err
	}
	return &CompiledModel{Model: m, du: du, w: w, p: p, law: NewCompiledLaw(law), sol: sol}, nil
}

// DownstreamSolution returns the D/E_K/1 root solution behind the compiled
// factors: the continuation seed for a neighbouring load's CompileFrom.
func (cm *CompiledModel) DownstreamSolution() *queueing.DEK1Solution { return cm.sol }

// Law returns the compiled total-delay law.
func (cm *CompiledModel) Law() *CompiledLaw { return cm.law }

// RTTQuantile returns the RTT quantile (seconds): the queueing-delay
// quantile plus the deterministic part, exactly as Model.RTTQuantile.
func (cm *CompiledModel) RTTQuantile() (float64, error) {
	return cm.RTTQuantileWarm(nil)
}

// RTTQuantileWarm is RTTQuantile with a warm-start hint for the quantile
// inversion; sweeps thread one hint through consecutive loads.
func (cm *CompiledModel) RTTQuantileWarm(hint *mgf.TailHint) (float64, error) {
	return cm.rttQuantileWarmWS(hint, nil)
}

// rttQuantileWarmWS is RTTQuantileWarm with the quadrature workspace
// supplied by the caller; LoadPath holds one per walk.
func (cm *CompiledModel) rttQuantileWarmWS(hint *mgf.TailHint, ws *mgf.Workspace) (float64, error) {
	q, err := cm.law.QuantileWarmWS(cm.Model.quantile(), hint, ws)
	if err != nil {
		return 0, err
	}
	return q + cm.Model.FixedPart(), nil
}

// RTTTail returns P(RTT > d).
func (cm *CompiledModel) RTTTail(d float64) (float64, error) {
	x := d - cm.Model.FixedPart()
	if x < 0 {
		return 1, nil
	}
	return cm.law.Tail(x), nil
}

// MeanRTT returns the mean round trip time.
func (cm *CompiledModel) MeanRTT() (float64, error) {
	return cm.law.Mean() + cm.Model.FixedPart(), nil
}

// Decompose evaluates each delay component's quantile in isolation plus the
// true total, reusing the compiled factors instead of rebuilding the queues.
func (cm *CompiledModel) Decompose() (Components, error) {
	m := cm.Model
	c := Components{
		Serialization: m.SerializationDelay(),
		Fixed:         m.FixedDelay,
	}
	p := m.quantile()
	var err error
	if c.Upstream, err = quantileOrZero(cm.du, p); err != nil {
		return c, err
	}
	if c.BurstWait, err = quantileOrZero(cm.w, p); err != nil {
		return c, err
	}
	if c.Position, err = quantileOrZero(cm.p, p); err != nil {
		return c, err
	}
	if c.Total, err = cm.RTTQuantile(); err != nil {
		return c, err
	}
	return c, nil
}
