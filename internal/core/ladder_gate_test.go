package core

import (
	"math"
	"math/cmplx"
	"testing"

	"fpsping/internal/mgf"
)

// oldSchemeTail reproduces the pre-ladder per-abscissa Simpson evaluator
// through the public API alone: 64 panels per decay length of A clamped to
// [512, 32768] and rounded even, head terms plus the composite Simpson sum
// of pdfA(u)·TailB(x-u). It is the reference side of the ladder's
// equivalence gate on the paper's own laws.
func oldSchemeTail(s mgf.Sum, x float64) float64 {
	b := s.B.(mgf.Mix)
	sharp := 0.0
	for _, tm := range s.A.Terms {
		if r := cmplx.Abs(tm.Pole); r > sharp {
			sharp = r
		}
	}
	n := int(64 * (1 + sharp*x))
	if n < 512 {
		n = 512
	}
	if n > 32768 {
		n = 32768
	}
	if n%2 == 1 {
		n++
	}
	h := x / float64(n)
	acc := s.A.PDF(0)*b.Tail(x) + s.A.PDF(x)*b.Tail(0)
	for i := 1; i < n; i++ {
		w := 2.0
		if i%2 == 1 {
			w = 4
		}
		u := h * float64(i)
		acc += w * s.A.PDF(u) * b.Tail(x-u)
	}
	return s.A.Atom*b.Tail(x) + s.A.Tail(x) + acc*h/3
}

// TestLadderEquivalencePaperGrid is the ≤1e-12 gate on the paper's own laws:
// every load point of the paper grid, evaluated at the quantile abscissae the
// reports serve (the paper's percentile levels plus deep multiples), must
// agree with the pre-ladder per-abscissa scheme to 1e-12. The same abscissae
// walked in reverse through a second shared workspace must reproduce the
// forward bits exactly — the ladder's prefix growth must never leak visit
// order into values.
func TestLadderEquivalencePaperGrid(t *testing.T) {
	m := figure3Model(9)
	gated := 0
	for _, rho := range PaperLoadGrid() {
		cm, err := m.WithDownlinkLoad(rho).Compile()
		if err != nil {
			t.Fatalf("rho=%.2f: %v", rho, err)
		}
		s, ok := cm.Law().Law().(mgf.Sum)
		if !ok {
			continue // pure-Mix law: no quadrature, nothing to gate
		}
		gated++
		var xs []float64
		for _, p := range []float64{0.99, 0.999, 0.9999, 0.99999} {
			q, err := cm.Law().Quantile(p)
			if err != nil {
				t.Fatalf("rho=%.2f quantile(%v): %v", rho, p, err)
			}
			xs = append(xs, q)
		}
		xs = append(xs, 1.5*xs[len(xs)-1], 2.5*xs[len(xs)-1])
		var ws mgf.Workspace
		fwd := make([]float64, len(xs))
		for i, x := range xs {
			fwd[i] = s.TailWS(x, &ws)
			old := oldSchemeTail(s, x)
			if d := math.Abs(fwd[i] - old); d > 1e-12*(1+math.Abs(old)) {
				t.Errorf("rho=%.2f tail(%v): ladder %v vs old scheme %v (diff %g)",
					rho, x, fwd[i], old, fwd[i]-old)
			}
		}
		var wsR mgf.Workspace
		for i := len(xs) - 1; i >= 0; i-- {
			if got := s.TailWS(xs[i], &wsR); got != fwd[i] {
				t.Errorf("rho=%.2f tail(%v): reversed order %v != forward %v",
					rho, xs[i], got, fwd[i])
			}
		}
	}
	if gated == 0 {
		t.Fatal("no load point compiled to a Sum law: the gate gated nothing")
	}
}
