package core

import (
	"math/rand"
	"sort"
	"testing"
)

// loadPathGrids returns the grids the continuation contract is pinned over:
// the paper's grid, seeded random monotone grids, and the paper grid
// reversed (continuation seeds work in either direction; validation, not
// monotonicity, guarantees correctness).
func loadPathGrids() [][]float64 {
	rng := rand.New(rand.NewSource(23))
	grids := [][]float64{PaperLoadGrid()}
	for g := 0; g < 3; g++ {
		grid := make([]float64, 10)
		for i := range grid {
			grid[i] = 0.03 + 0.87*rng.Float64()
		}
		sort.Float64s(grid)
		grids = append(grids, grid)
	}
	rev := PaperLoadGrid()
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	grids = append(grids, rev)
	return grids
}

// TestLoadPathBitIdenticalToCold is the continuation contract end to end: a
// LoadPath walk — warm-started root solves, threaded tail hint, shared
// workspace — must return exactly the bits of independent cold evaluation
// at every point of every grid.
func TestLoadPathBitIdenticalToCold(t *testing.T) {
	for _, k := range []int{9, 20} {
		m := figure3Model(k)
		for gi, grid := range loadPathGrids() {
			path := m.NewLoadPath()
			for _, rho := range grid {
				pt, err := path.Point(rho)
				if err != nil {
					t.Fatalf("K=%d grid %d rho=%v: path: %v", k, gi, rho, err)
				}
				at := m.WithDownlinkLoad(rho)
				cold, err := at.RTTQuantile()
				if err != nil {
					t.Fatalf("K=%d grid %d rho=%v: cold: %v", k, gi, rho, err)
				}
				if pt.RTT != cold {
					t.Errorf("K=%d grid %d rho=%v: path %v != cold %v (diff %g)",
						k, gi, rho, pt.RTT, cold, pt.RTT-cold)
				}
				if pt.Gamers != at.Gamers {
					t.Errorf("K=%d grid %d rho=%v: path gamers %v != %v",
						k, gi, rho, pt.Gamers, at.Gamers)
				}
			}
		}
	}
}

// TestCompileFromBitIdentical pins the layer below: the factors and the
// downstream root solution of a warm compile must be exactly those of a
// cold compile, point by point along a walk.
func TestCompileFromBitIdentical(t *testing.T) {
	for _, k := range []int{9, 20} {
		m := figure3Model(k)
		for gi, grid := range loadPathGrids() {
			path := m.NewLoadPath()
			for _, rho := range grid {
				warm, err := path.Compile(rho)
				if err != nil {
					t.Fatalf("K=%d grid %d rho=%v: warm: %v", k, gi, rho, err)
				}
				cold, err := m.WithDownlinkLoad(rho).Compile()
				if err != nil {
					t.Fatalf("K=%d grid %d rho=%v: cold: %v", k, gi, rho, err)
				}
				wz := warm.DownstreamSolution().Zetas()
				cz := cold.DownstreamSolution().Zetas()
				if len(wz) != len(cz) {
					t.Fatalf("K=%d grid %d rho=%v: %d warm roots, %d cold", k, gi, rho, len(wz), len(cz))
				}
				for i := range wz {
					if wz[i] != cz[i] {
						t.Errorf("K=%d grid %d rho=%v root %d: warm %v != cold %v",
							k, gi, rho, i, wz[i], cz[i])
					}
				}
			}
		}
	}
}

// TestLoadPathReseed pins the memo-hit path: adopting an externally
// compiled model as the continuation seed must leave subsequent points
// bit-identical to cold evaluation.
func TestLoadPathReseed(t *testing.T) {
	m := figure3Model(9)
	path := m.NewLoadPath()
	cm, err := m.WithDownlinkLoad(0.4).Compile() // "cache hit" computed elsewhere
	if err != nil {
		t.Fatal(err)
	}
	path.Reseed(cm)
	pt, err := path.Point(0.45)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := m.WithDownlinkLoad(0.45).RTTQuantile()
	if err != nil {
		t.Fatal(err)
	}
	if pt.RTT != cold {
		t.Errorf("after reseed: path %v != cold %v", pt.RTT, cold)
	}
	path.Reseed(nil) // must not clear the seed or panic
	if _, err := path.Point(0.5); err != nil {
		t.Fatal(err)
	}
}

// TestMaxLoadWithDefaultEvaluator pins that the LoadPath-driven default
// bisection evaluator returns exactly the result of an explicit
// per-probe cold evaluator.
func TestMaxLoadWithDefaultEvaluator(t *testing.T) {
	m := figure3Model(9)
	const bound = 0.060
	viaPath, err := m.MaxLoad(bound)
	if err != nil {
		t.Fatal(err)
	}
	viaCold, err := m.MaxLoadWith(bound, func(rho float64) (float64, error) {
		return m.WithDownlinkLoad(rho).RTTQuantile()
	})
	if err != nil {
		t.Fatal(err)
	}
	if viaPath != viaCold {
		t.Errorf("default (LoadPath) %+v != cold evaluator %+v", viaPath, viaCold)
	}
}

// TestSweepGridWithChunkedChains pins the chunked grid walker against the
// serial walk at several worker counts, including more workers than points.
func TestSweepGridWithChunkedChains(t *testing.T) {
	m := figure3Model(9)
	loads := PaperLoadGrid()
	serial, err := m.SweepLoads(loads)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 5, len(loads), len(loads) + 7} {
		got, err := m.SweepLoadsParallel(loads, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(serial) {
			t.Fatalf("workers=%d: %d points, want %d", workers, len(got), len(serial))
		}
		for i := range got {
			if got[i] != serial[i] {
				t.Errorf("workers=%d point %d: %+v != serial %+v", workers, i, got[i], serial[i])
			}
		}
	}
}

// TestLoadGridByIndex pins the index-built grid: loads[i] must equal
// from + i*step exactly (no accumulated drift), the first point must be
// from itself, and the endpoint must survive the epsilon.
func TestLoadGridByIndex(t *testing.T) {
	cases := []struct{ from, to, step float64 }{
		{0.05, 0.9, 0.05},
		{0.1, 0.8, 0.1},
		{0.3, 0.31, 0.001},
		{0.05, 0.95, 0.09},
		{0.5, 0.5, 0.1},
	}
	for _, c := range cases {
		grid := LoadGrid(c.from, c.to, c.step)
		if len(grid) == 0 {
			t.Fatalf("LoadGrid(%v, %v, %v): empty", c.from, c.to, c.step)
		}
		if grid[0] != c.from {
			t.Errorf("LoadGrid(%v, %v, %v): first point %v, want from", c.from, c.to, c.step, grid[0])
		}
		for i, r := range grid {
			if want := c.from + float64(i)*c.step; r != want {
				t.Errorf("LoadGrid(%v, %v, %v)[%d] = %v, want %v", c.from, c.to, c.step, i, r, want)
			}
			if r > c.to+1e-12 {
				t.Errorf("LoadGrid(%v, %v, %v)[%d] = %v beyond to", c.from, c.to, c.step, i, r)
			}
		}
		if last := grid[len(grid)-1]; last+c.step <= c.to+1e-12 {
			t.Errorf("LoadGrid(%v, %v, %v) stops early at %v", c.from, c.to, c.step, last)
		}
	}
	if g := LoadGrid(0.1, 0.5, 0); g != nil {
		t.Errorf("LoadGrid with step 0 = %v, want nil", g)
	}
	// The paper grid is the index-built 18-point axis.
	pg := PaperLoadGrid()
	if len(pg) != 18 {
		t.Fatalf("PaperLoadGrid: %d points, want 18", len(pg))
	}
	for i, r := range pg {
		if want := 0.05 + float64(i)*0.05; r != want {
			t.Errorf("PaperLoadGrid[%d] = %v, want %v", i, r, want)
		}
	}
}
