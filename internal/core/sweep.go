package core

import (
	"fmt"
	"math"

	"fpsping/internal/runner"
)

// SweepPoint is one point of an RTT-versus-load curve (Figures 3 and 4).
type SweepPoint struct {
	// Load is the downlink load rho_d.
	Load float64
	// Gamers is the N realizing that load via eq. (37).
	Gamers float64
	// RTT is the RTT quantile in seconds.
	RTT float64
}

// SweepLoads evaluates the RTT quantile across the given downlink loads,
// producing the series behind the paper's figures. Loads at or beyond a
// stability limit are skipped (the curves' vertical asymptote).
//
// The walk drives one LoadPath through consecutive points: each point's
// downstream root solve continues from the previous point's roots and its
// quantile inversion warm-starts from the previous answer. Both carriers
// are bit-exact (see LoadPath), so the points are identical to independent
// per-point evaluation — SweepLoadsParallel relies on exactly that.
func (m Model) SweepLoads(loads []float64) ([]SweepPoint, error) {
	if len(loads) == 0 {
		return nil, fmt.Errorf("%w: empty load list", ErrBadModel)
	}
	out := make([]SweepPoint, 0, len(loads))
	path := m.NewLoadPath()
	for _, rho := range loads {
		if !(rho > 0) {
			return nil, fmt.Errorf("%w: load %g", ErrBadModel, rho)
		}
		pt, err := path.Point(rho)
		if err != nil {
			// Stop at the first unstable point: the asymptote.
			break
		}
		out = append(out, pt)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: no stable points in sweep of %s: %w", m, ErrUnstable)
	}
	return out, nil
}

// SweepGridWith evaluates the curve with caller-supplied point evaluators
// fanned out over a worker pool — the one owner of the serial sweep
// semantics every front end shares (SweepLoadsParallel plugs in a LoadPath
// walk; the daemon's /v1/sweep plugs in its memoized one). chain is called
// once per worker and returns that worker's point evaluator, so each worker
// can carry per-chain continuation state (a LoadPath) without
// synchronization: the grid is split into contiguous chunks, one chain per
// chunk, and each chain walks its chunk in load order.
//
// The serial semantics are reproduced exactly by an ordered post-scan of
// the full result grid: the curve ends at the first failing evaluation (the
// vertical asymptote), an invalid load is only an error if it sits before
// that point, and — because a chained point is bit-identical to an
// independent one — the returned points are byte-identical at any worker
// count. A chain stops walking its chunk at its first failure; the indices
// it leaves unevaluated all sit after the grid's first failure, which is
// where the post-scan stops reading.
func (m Model) SweepGridWith(loads []float64, workers int,
	chain func() func(rho float64) (SweepPoint, error)) ([]SweepPoint, error) {
	if len(loads) == 0 {
		return nil, fmt.Errorf("%w: empty load list", ErrBadModel)
	}
	if workers <= 0 {
		workers = runner.DefaultWorkers()
	}
	if workers > len(loads) {
		workers = len(loads)
	}
	type cell struct {
		pt  SweepPoint
		bad error // invalid load (serial: immediate error)
		err error // failed evaluation (serial: break)
	}
	cells := make([]cell, len(loads))
	// Contiguous chunks, sizes differing by at most one; chunk c covers
	// [c*base+min(c,rem), ...+size). Workers write disjoint index ranges.
	base, rem := len(loads)/workers, len(loads)%workers
	runner.TryMap(workers, runner.Options{Workers: workers}, func(c int) (struct{}, error) {
		start, size := c*base, base
		if c < rem {
			start, size = start+c, size+1
		} else {
			start += rem
		}
		point := chain()
		for i := start; i < start+size; i++ {
			rho := loads[i]
			if !(rho > 0) {
				cells[i] = cell{bad: fmt.Errorf("%w: load %g", ErrBadModel, rho)}
				continue
			}
			pt, err := point(rho)
			if err != nil {
				cells[i] = cell{err: err}
				break // the post-scan never reads past this index
			}
			cells[i] = cell{pt: pt}
		}
		return struct{}{}, nil
	})
	out := make([]SweepPoint, 0, len(loads))
	for i := range cells {
		if cells[i].bad != nil {
			return nil, cells[i].bad
		}
		if cells[i].err != nil {
			// Stop at the first unstable point: the asymptote.
			break
		}
		out = append(out, cells[i].pt)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: no stable points in sweep of %s: %w", m, ErrUnstable)
	}
	return out, nil
}

// SweepLoadsParallel evaluates the same curve as SweepLoads with the grid
// split into per-worker chunks, each walked by its own LoadPath chain,
// byte-identical to SweepLoads' points at any worker count.
func (m Model) SweepLoadsParallel(loads []float64, workers int) ([]SweepPoint, error) {
	return m.SweepGridWith(loads, workers, func() func(rho float64) (SweepPoint, error) {
		return m.NewLoadPath().Point
	})
}

// LoadGrid returns the closed load range [from, to] in step increments
// (with an epsilon so the endpoint survives rounding). It is the one grid
// builder behind both the CLI's sweep command and the daemon's /v1/sweep,
// so the two can never disagree about a grid's endpoints. Points are built
// by index — from + i*step, one rounding per point — rather than by
// accumulation, so a grid value does not depend on how many points precede
// it and drift does not grow with the grid's length.
func LoadGrid(from, to, step float64) []float64 {
	if !(step > 0) || math.IsNaN(from) || math.IsNaN(to) {
		return nil
	}
	var loads []float64
	for i := 0; ; i++ {
		r := from + float64(i)*step
		if r > to+1e-12 {
			break
		}
		loads = append(loads, r)
	}
	return loads
}

// PaperLoadGrid returns the load axis used by Figures 3-4: 5% to 90% in 5%
// steps.
func PaperLoadGrid() []float64 {
	loads := make([]float64, 0, 18)
	for i := 0; i < 18; i++ {
		loads = append(loads, 0.05+float64(i)*0.05)
	}
	return loads
}
