package core

import "fmt"

// SweepPoint is one point of an RTT-versus-load curve (Figures 3 and 4).
type SweepPoint struct {
	// Load is the downlink load rho_d.
	Load float64
	// Gamers is the N realizing that load via eq. (37).
	Gamers float64
	// RTT is the RTT quantile in seconds.
	RTT float64
}

// SweepLoads evaluates the RTT quantile across the given downlink loads,
// producing the series behind the paper's figures. Loads at or beyond a
// stability limit are skipped (the curves' vertical asymptote).
func (m Model) SweepLoads(loads []float64) ([]SweepPoint, error) {
	if len(loads) == 0 {
		return nil, fmt.Errorf("%w: empty load list", ErrBadModel)
	}
	out := make([]SweepPoint, 0, len(loads))
	for _, rho := range loads {
		if !(rho > 0) {
			return nil, fmt.Errorf("%w: load %g", ErrBadModel, rho)
		}
		at := m.WithDownlinkLoad(rho)
		rtt, err := at.RTTQuantile()
		if err != nil {
			// Stop at the first unstable point: the asymptote.
			break
		}
		out = append(out, SweepPoint{Load: rho, Gamers: at.Gamers, RTT: rtt})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: no stable points in sweep of %s", m)
	}
	return out, nil
}

// PaperLoadGrid returns the load axis used by Figures 3-4: 5% to 90% in 5%
// steps.
func PaperLoadGrid() []float64 {
	loads := make([]float64, 0, 18)
	for r := 0.05; r < 0.905; r += 0.05 {
		loads = append(loads, r)
	}
	return loads
}
