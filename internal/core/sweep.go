package core

import (
	"fmt"

	"fpsping/internal/mgf"
	"fpsping/internal/runner"
)

// SweepPoint is one point of an RTT-versus-load curve (Figures 3 and 4).
type SweepPoint struct {
	// Load is the downlink load rho_d.
	Load float64
	// Gamers is the N realizing that load via eq. (37).
	Gamers float64
	// RTT is the RTT quantile in seconds.
	RTT float64
}

// SweepLoads evaluates the RTT quantile across the given downlink loads,
// producing the series behind the paper's figures. Loads at or beyond a
// stability limit are skipped (the curves' vertical asymptote).
//
// The walk threads one mgf.TailHint through consecutive points: the loads
// are (in every caller) monotone, so each point's quantile inversion
// warm-starts its bracket search from the previous answer. Warm starts are
// bit-exact (see mgf.TailHint), so the points are identical to independent
// per-point evaluation — SweepLoadsParallel relies on exactly that.
func (m Model) SweepLoads(loads []float64) ([]SweepPoint, error) {
	if len(loads) == 0 {
		return nil, fmt.Errorf("%w: empty load list", ErrBadModel)
	}
	out := make([]SweepPoint, 0, len(loads))
	var hint mgf.TailHint
	for _, rho := range loads {
		if !(rho > 0) {
			return nil, fmt.Errorf("%w: load %g", ErrBadModel, rho)
		}
		at := m.WithDownlinkLoad(rho)
		cm, err := at.Compile()
		if err != nil {
			// Stop at the first unstable point: the asymptote.
			break
		}
		rtt, err := cm.RTTQuantileWarm(&hint)
		if err != nil {
			break
		}
		out = append(out, SweepPoint{Load: rho, Gamers: at.Gamers, RTT: rtt})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: no stable points in sweep of %s: %w", m, ErrUnstable)
	}
	return out, nil
}

// SweepGridWith evaluates the curve with a caller-supplied point evaluator
// fanned out over a worker pool — the one owner of the serial sweep
// semantics every front end shares (SweepLoadsParallel plugs in a direct
// RTTQuantile evaluation; the daemon's /v1/sweep plugs in its memoized
// one). The serial semantics are reproduced exactly by an ordered post-scan
// of the full result grid: the curve ends at the first failing evaluation
// (the vertical asymptote), an invalid load is only an error if it sits
// before that point, and the returned points are byte-identical at any
// worker count.
func (m Model) SweepGridWith(loads []float64, workers int,
	point func(rho float64) (SweepPoint, error)) ([]SweepPoint, error) {
	if len(loads) == 0 {
		return nil, fmt.Errorf("%w: empty load list", ErrBadModel)
	}
	type cell struct {
		pt  SweepPoint
		bad error // invalid load (serial: immediate error)
	}
	cells, errs := runner.TryMap(len(loads), runner.Options{Workers: workers},
		func(i int) (cell, error) {
			rho := loads[i]
			if !(rho > 0) {
				return cell{bad: fmt.Errorf("%w: load %g", ErrBadModel, rho)}, nil
			}
			pt, err := point(rho)
			if err != nil {
				return cell{}, err // unstable point (serial: break)
			}
			return cell{pt: pt}, nil
		})
	out := make([]SweepPoint, 0, len(loads))
	for i := range cells {
		if cells[i].bad != nil {
			return nil, cells[i].bad
		}
		if errs[i] != nil {
			// Stop at the first unstable point: the asymptote.
			break
		}
		out = append(out, cells[i].pt)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: no stable points in sweep of %s: %w", m, ErrUnstable)
	}
	return out, nil
}

// SweepLoadsParallel evaluates the same curve as SweepLoads with the
// per-load RTTQuantile calls (independent of each other) fanned out over a
// worker pool, byte-identical to SweepLoads' points at any worker count.
func (m Model) SweepLoadsParallel(loads []float64, workers int) ([]SweepPoint, error) {
	return m.SweepGridWith(loads, workers, func(rho float64) (SweepPoint, error) {
		at := m.WithDownlinkLoad(rho)
		rtt, err := at.RTTQuantile()
		if err != nil {
			return SweepPoint{}, err
		}
		return SweepPoint{Load: rho, Gamers: at.Gamers, RTT: rtt}, nil
	})
}

// LoadGrid returns the closed load range [from, to] in step increments
// (with an epsilon so the endpoint survives float accumulation). It is the
// one grid builder behind both the CLI's sweep command and the daemon's
// /v1/sweep, so the two can never disagree about a grid's endpoints.
func LoadGrid(from, to, step float64) []float64 {
	var loads []float64
	for r := from; r <= to+1e-12; r += step {
		loads = append(loads, r)
	}
	return loads
}

// PaperLoadGrid returns the load axis used by Figures 3-4: 5% to 90% in 5%
// steps.
func PaperLoadGrid() []float64 {
	loads := make([]float64, 0, 18)
	for r := 0.05; r < 0.905; r += 0.05 {
		loads = append(loads, r)
	}
	return loads
}
