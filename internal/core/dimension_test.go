package core

import (
	"testing"
)

// TestMaxLoadWithMatchesMaxLoad pins the evaluator hook's contract: with a
// faithful PointEval the bisection takes the same branches and returns the
// bit-identical result as the direct path, the final evaluation re-asks a
// probed load (so a memoizing evaluator answers it from cache), and probes
// never repeat except for that closing call.
func TestMaxLoadWithMatchesMaxLoad(t *testing.T) {
	m := DSLDefaults()
	m.ServerPacketBytes = 125
	m.BurstInterval = 0.040
	m.ErlangOrder = 9

	direct, err := m.MaxLoad(0.050)
	if err != nil {
		t.Fatal(err)
	}

	seen := make(map[float64]int)
	calls := 0
	hooked, err := m.MaxLoadWith(0.050, func(rho float64) (float64, error) {
		calls++
		seen[rho]++
		if !(rho > 0) {
			t.Errorf("bisection probed non-positive load %g", rho)
		}
		return m.WithDownlinkLoad(rho).RTTQuantile()
	})
	if err != nil {
		t.Fatal(err)
	}
	if hooked != direct {
		t.Errorf("hooked result %+v differs from direct %+v", hooked, direct)
	}
	if calls < 3 {
		t.Fatalf("bisection ran only %d evaluations", calls)
	}
	if len(seen) != calls-1 {
		t.Errorf("%d distinct probes over %d calls; only the closing call may repeat", len(seen), calls)
	}
	repeated := 0
	for rho, n := range seen {
		if n > 1 {
			repeated++
			if n != 2 || rho != direct.MaxDownlinkLoad {
				t.Errorf("load %g probed %d times; only the accepted load may be re-asked once", rho, n)
			}
		}
	}
	if repeated != 1 {
		t.Errorf("%d loads probed twice, want exactly the accepted one", repeated)
	}

	// The bound-never-binds fast path goes through the hook too.
	if _, err := m.MaxLoadWith(10, func(rho float64) (float64, error) {
		return m.WithDownlinkLoad(rho).RTTQuantile()
	}); err != nil {
		t.Errorf("huge bound via hook: %v", err)
	}

	// A failing evaluator propagates instead of being swallowed.
	if _, err := m.MaxLoadWith(0.050, func(rho float64) (float64, error) {
		return 0, ErrUnstable
	}); err == nil {
		t.Error("evaluator error not propagated")
	}
}
