package core

import (
	"math"
	"testing"

	"fpsping/internal/queueing"
)

func multiServerScenario(servers int, perServerGamers float64) MultiServer {
	m := DSLDefaults()
	m.ServerPacketBytes = 125
	m.BurstInterval = 0.060
	m.ErlangOrder = 9
	m.Gamers = perServerGamers
	return MultiServer{PerServer: m, Servers: servers}
}

func TestMultiServerValidation(t *testing.T) {
	ms := multiServerScenario(0, 20)
	if err := ms.Validate(); err == nil {
		t.Error("accepted zero servers")
	}
	ms = multiServerScenario(4, 0)
	if err := ms.Validate(); err == nil {
		t.Error("accepted zero gamers per server")
	}
	ms = multiServerScenario(4, 20)
	if err := ms.Validate(); err != nil {
		t.Fatal(err)
	}
	if ms.TotalGamers() != 80 {
		t.Errorf("total gamers %v", ms.TotalGamers())
	}
	// Loads aggregate linearly.
	if math.Abs(ms.DownlinkLoad()-4*ms.PerServer.DownlinkLoad()) > 1e-12 {
		t.Error("downlink load not additive")
	}
}

func TestMultiServerRTTBehaviour(t *testing.T) {
	// Fixed total population and load, growing server count: Poisson burst
	// arrivals are burstier than one deterministic clock, so the RTT
	// quantile must exceed the single-server D/E_K/1 prediction at the same
	// aggregate load; and it grows no worse than modestly with S.
	single := DSLDefaults()
	single.ServerPacketBytes = 125
	single.BurstInterval = 0.060
	single.ErlangOrder = 9
	single = single.WithDownlinkLoad(0.5)
	qSingle, err := single.RTTQuantile()
	if err != nil {
		t.Fatal(err)
	}

	for _, servers := range []int{2, 4, 8} {
		ms := multiServerScenario(servers, single.Gamers/float64(servers))
		if math.Abs(ms.DownlinkLoad()-0.5) > 1e-9 {
			t.Fatalf("S=%d: aggregate load %v", servers, ms.DownlinkLoad())
		}
		q, err := ms.RTTQuantile()
		if err != nil {
			t.Fatalf("S=%d: %v", servers, err)
		}
		if q <= 0 {
			t.Fatalf("S=%d: quantile %v", servers, q)
		}
		// Note: per-server bursts are smaller (N/S gamers each), so the
		// position-delay part shrinks while the burst-wait part grows; the
		// result stays in the same regime as the single-server quantile.
		if q > 3*qSingle || q < 0.2*qSingle {
			t.Errorf("S=%d: quantile %.1fms implausible vs single %.1fms",
				servers, 1000*q, 1000*qSingle)
		}
	}
}

func TestMultiServerMoreBurstyThanDeterministicClock(t *testing.T) {
	// Same burst size law and aggregate burst rate: the M/E_K/1 burst wait
	// must stochastically dominate a D/E_K/1 with the same service law and
	// the same mean inter-arrival T/S (Poisson arrivals vs a perfect
	// clock).
	ms := multiServerScenario(4, 50) // aggregate downstream load 2/3
	down, err := ms.Downstream()
	if err != nil {
		t.Fatal(err)
	}
	wM, err := down.WaitMix()
	if err != nil {
		t.Fatal(err)
	}
	per := ms.PerServer
	meanBurst := 8 * per.Gamers * per.ServerPacketBytes / per.AggregateRate
	dq, err := queueing.NewDEK1(per.ErlangOrder, meanBurst, per.BurstInterval/float64(ms.Servers))
	if err != nil {
		t.Fatal(err)
	}
	wD, err := dq.WaitMix()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(down.Load()-dq.Load()) > 1e-12 {
		t.Fatalf("loads differ: %v vs %v", down.Load(), dq.Load())
	}
	for _, x := range []float64{0.005, 0.02, 0.05} {
		if wM.Tail(x) < wD.Tail(x) {
			t.Errorf("x=%v: M/E_K/1 tail %v below D/E_K/1 %v", x, wM.Tail(x), wD.Tail(x))
		}
	}
	if wM.Mean() <= wD.Mean() {
		t.Errorf("M mean %v should exceed D mean %v", wM.Mean(), wD.Mean())
	}
}
