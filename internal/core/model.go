// Package core implements the paper's primary contribution: a calculator for
// the quantile of the Round Trip Time ("ping time") of a First Person
// Shooter played over an access network (§3.3-§4).
//
// The scenario is Figure 2: N gamers, each on a dedicated access line (Rup
// upstream, Rdown downstream), share an aggregation link of capacity C to the
// game server. Upstream, the N near-periodic client flows multiplex into an
// M/D/1 queue (§3.1). Downstream, the server's per-tick burst (one packet per
// gamer, Erlang(K) total size) feeds a D/E_K/1 queue (§3.2), and a tagged
// packet additionally waits behind the part of its own burst in front of it.
// The three queueing delays are independent, so the total queueing MGF is the
// product Du(s)W(s)P(s) (eq. 35), inverted in closed form by the mgf package;
// serialization and any fixed propagation/processing delays are added
// deterministically.
package core

import (
	"errors"
	"fmt"
	"math"

	"fpsping/internal/mgf"
	"fpsping/internal/queueing"
	"fpsping/internal/xmath"
)

// DefaultQuantile is the RTT quantile level evaluated throughout the paper's
// §4 (in line with its references [6, 9, 19]).
const DefaultQuantile = 0.99999

// ErrBadModel reports invalid model parameters.
var ErrBadModel = errors.New("core: invalid model")

// ErrUnstable is re-exported for convenience: a queue in the scenario is
// overloaded.
var ErrUnstable = queueing.ErrUnstable

// Model describes one access-network gaming scenario. All rates are in
// bit/s, sizes in bytes, times in seconds.
//
// Gamers is a float64 so load sweeps can move continuously along eq. (37);
// dimensioning results round down to whole gamers.
type Model struct {
	// Gamers is N, the number of active players behind the aggregation link.
	Gamers float64
	// ClientPacketBytes is PC, the (deterministic) client update size.
	ClientPacketBytes float64
	// ServerPacketBytes is PS, the mean per-client server packet size.
	ServerPacketBytes float64
	// BurstInterval is T, the server tick / burst inter-arrival time.
	BurstInterval float64
	// ClientInterval is D, the client update period. Zero means "equal to
	// BurstInterval", the §4 assumption.
	ClientInterval float64
	// UplinkAccessRate is Rup, the per-gamer access upstream rate.
	UplinkAccessRate float64
	// DownlinkAccessRate is Rdown, the per-gamer access downstream rate.
	DownlinkAccessRate float64
	// AggregateRate is C, the gaming share of the aggregation link (both
	// directions, as in §4).
	AggregateRate float64
	// ErlangOrder is K, the burst-size Erlang order (§2.3.2).
	ErlangOrder int
	// Quantile is the RTT quantile level; zero means DefaultQuantile.
	Quantile float64
	// FixedDelay adds any propagation plus server processing time (the
	// deterministic delay of §1 beyond serialization). Often zero in §4.
	FixedDelay float64
}

// DSLDefaults returns the §4 scenario skeleton: PC = 80 B, Rup = 128 kbit/s,
// Rdown = 1024 kbit/s, C = 5 Mbit/s, 99.999% quantile. Gamers, PS, T and K
// remain to be set by the caller.
func DSLDefaults() Model {
	return Model{
		ClientPacketBytes:  80,
		UplinkAccessRate:   128_000,
		DownlinkAccessRate: 1_024_000,
		AggregateRate:      5_000_000,
		Quantile:           DefaultQuantile,
	}
}

// Validate checks all parameters (but not stability; see RTTQuantile).
func (m Model) Validate() error {
	switch {
	case !(m.Gamers > 0):
		return fmt.Errorf("%w: gamers %g", ErrBadModel, m.Gamers)
	case !(m.ClientPacketBytes > 0):
		return fmt.Errorf("%w: client packet %g bytes", ErrBadModel, m.ClientPacketBytes)
	case !(m.ServerPacketBytes > 0):
		return fmt.Errorf("%w: server packet %g bytes", ErrBadModel, m.ServerPacketBytes)
	case !(m.BurstInterval > 0):
		return fmt.Errorf("%w: burst interval %g", ErrBadModel, m.BurstInterval)
	case m.ClientInterval < 0:
		return fmt.Errorf("%w: client interval %g", ErrBadModel, m.ClientInterval)
	case !(m.UplinkAccessRate > 0) || !(m.DownlinkAccessRate > 0) || !(m.AggregateRate > 0):
		return fmt.Errorf("%w: rates up=%g down=%g agg=%g", ErrBadModel,
			m.UplinkAccessRate, m.DownlinkAccessRate, m.AggregateRate)
	case m.ErlangOrder < 2:
		return fmt.Errorf("%w: Erlang order %d (the uniform position law needs K >= 2)", ErrBadModel, m.ErlangOrder)
	case m.Quantile < 0 || m.Quantile >= 1:
		return fmt.Errorf("%w: quantile %g", ErrBadModel, m.Quantile)
	case m.FixedDelay < 0:
		return fmt.Errorf("%w: fixed delay %g", ErrBadModel, m.FixedDelay)
	}
	return nil
}

// clientInterval resolves the D = T default.
func (m Model) clientInterval() float64 {
	if m.ClientInterval > 0 {
		return m.ClientInterval
	}
	return m.BurstInterval
}

// quantile resolves the default level.
func (m Model) quantile() float64 {
	if m.Quantile > 0 {
		return m.Quantile
	}
	return DefaultQuantile
}

// QuantileLevel returns the effective quantile level: Quantile when set,
// DefaultQuantile otherwise.
func (m Model) QuantileLevel() float64 { return m.quantile() }

// DownlinkLoad returns eq. (37): rho_d = 8*N*PS/(T*C).
func (m Model) DownlinkLoad() float64 {
	return 8 * m.Gamers * m.ServerPacketBytes / (m.BurstInterval * m.AggregateRate)
}

// UplinkLoad returns the analogous upstream load 8*N*PC/(D*C).
func (m Model) UplinkLoad() float64 {
	return 8 * m.Gamers * m.ClientPacketBytes / (m.clientInterval() * m.AggregateRate)
}

// SerializationDelay returns the deterministic transmission times on the
// four hops: client access up, aggregation up, aggregation down, access down.
func (m Model) SerializationDelay() float64 {
	up := 8 * m.ClientPacketBytes / m.UplinkAccessRate
	upAgg := 8 * m.ClientPacketBytes / m.AggregateRate
	downAgg := 8 * m.ServerPacketBytes / m.AggregateRate
	down := 8 * m.ServerPacketBytes / m.DownlinkAccessRate
	return up + upAgg + downAgg + down
}

// FixedPart returns all deterministic delay: serialization plus FixedDelay.
func (m Model) FixedPart() float64 { return m.SerializationDelay() + m.FixedDelay }

// Upstream returns the §3.1 M/D/1 queue: Poisson(N/D) arrivals of
// deterministic service 8*PC/C.
func (m Model) Upstream() (queueing.MD1, error) {
	return queueing.NewMD1(m.Gamers/m.clientInterval(), 8*m.ClientPacketBytes/m.AggregateRate)
}

// Downstream returns the §3.2 D/E_K/1 queue: bursts of mean work
// 8*N*PS/C every T.
func (m Model) Downstream() (queueing.DEK1, error) {
	return queueing.NewDEK1(m.ErlangOrder, 8*m.Gamers*m.ServerPacketBytes/m.AggregateRate, m.BurstInterval)
}

// factorMixes builds the three independent queueing-delay factors of
// eq. (35): Du (upstream M/D/1, eq. 14), W (D/E_K/1 burst wait, eq. 18) and
// P (in-burst position, eq. 34). A cold factorMixesFrom.
func (m Model) factorMixes() (du, w, p mgf.Mix, err error) {
	du, w, p, _, err = m.factorMixesFrom(nil)
	return du, w, p, err
}

// factorMixesFrom is factorMixes with the downstream D/E_K/1 root solve
// warm-started from a neighbouring load's solution (nil means cold; see
// queueing.DEK1.SolveFrom). It also returns the solution it produced, so a
// load-axis walk (LoadPath) can seed the next point with it. Warm and cold
// solves are bit-identical — the continuation changes only cost, never the
// factors.
func (m Model) factorMixesFrom(prev *queueing.DEK1Solution) (du, w, p mgf.Mix, sol *queueing.DEK1Solution, err error) {
	if err = m.Validate(); err != nil {
		return du, w, p, nil, err
	}
	up, err := m.Upstream()
	if err != nil {
		return du, w, p, nil, fmt.Errorf("core: upstream: %w", err)
	}
	if du, err = up.WaitMixPaper(); err != nil {
		return du, w, p, nil, err
	}
	down, err := m.Downstream()
	if err != nil {
		return du, w, p, nil, fmt.Errorf("core: downstream: %w", err)
	}
	if sol, err = down.SolveFrom(prev); err != nil {
		return du, w, p, nil, err
	}
	if w, err = sol.WaitMix(); err != nil {
		return du, w, p, nil, err
	}
	if p, err = down.PositionMixUniform(); err != nil {
		return du, w, p, nil, err
	}
	return du, w, p, sol, nil
}

// mulErrBudget is the largest estimated float64 error tolerated before the
// explicit Appendix-A product is abandoned for convolution quadrature. Tail
// work happens at the 1e-5 level, so 1e-9 keeps four digits of headroom.
const mulErrBudget = 1e-9

// combineLaw multiplies the three delay factors, preferring the explicit
// Appendix-A expansion and falling back to factored convolution quadrature
// when the partial fractions would be ill conditioned (typically at low
// downstream load, where the burst-wait poles crowd the position-law pole
// beta). Both representations satisfy mgf.Law.
func combineLaw(du, w, p mgf.Mix) (mgf.Law, error) {
	if mgf.EstimateMulError(du, p) < mulErrBudget {
		rest := mgf.Mul(du, p)
		if mgf.EstimateMulError(w, rest) < mulErrBudget {
			full := mgf.Mul(w, rest)
			if err := full.Validate(); err == nil {
				return full, nil
			}
		}
		return mgf.Sum{A: w, B: rest}, nil
	}
	// Even du*p is fragile (gamma close to beta): nest two quadratures.
	return mgf.Sum{A: w, B: mgf.Sum{A: du, B: p}}, nil
}

// DelayLaw returns the law of the total queueing delay Du+W+P (eq. 35,
// excluding the deterministic part).
func (m Model) DelayLaw() (mgf.Law, error) {
	du, w, p, err := m.factorMixes()
	if err != nil {
		return nil, err
	}
	return combineLaw(du, w, p)
}

// lawQuantile inverts a Law's tail (both Mix and Sum provide Quantile; this
// helper keeps the call sites uniform): a cold lawQuantileHint.
func lawQuantile(l mgf.Law, p float64) (float64, error) {
	return lawQuantileHint(l, p, nil)
}

// lawQuantileHint is lawQuantile with an optional warm-start hint (see
// mgf.TailHint).
func lawQuantileHint(l mgf.Law, p float64, hint *mgf.TailHint) (float64, error) {
	return lawQuantileHintWS(l, p, hint, nil)
}

// lawQuantileHintWS is lawQuantileHint with the quadrature workspace
// supplied by the caller (nil borrows a pooled one). Only the Sum inversion
// touches a workspace; the closed-form Mix inversion ignores it.
func lawQuantileHintWS(l mgf.Law, p float64, hint *mgf.TailHint, ws *mgf.Workspace) (float64, error) {
	switch v := l.(type) {
	case mgf.Mix:
		return v.QuantileHint(p, hint)
	case mgf.Sum:
		return v.QuantileHintWS(p, hint, ws)
	default:
		return 0, fmt.Errorf("core: unknown law type %T", l)
	}
}

// RTTQuantile returns the RTT quantile (seconds): the queueing-delay quantile
// plus the deterministic part. This is the paper's headline metric. One-shot
// form of Compile().RTTQuantile(); callers needing several evaluations of
// the same scenario should hold the CompiledModel.
func (m Model) RTTQuantile() (float64, error) {
	cm, err := m.Compile()
	if err != nil {
		return 0, err
	}
	return cm.RTTQuantile()
}

// RTTTail returns P(RTT > d).
func (m Model) RTTTail(d float64) (float64, error) {
	cm, err := m.Compile()
	if err != nil {
		return 0, err
	}
	return cm.RTTTail(d)
}

// MeanRTT returns the mean round trip time.
func (m Model) MeanRTT() (float64, error) {
	cm, err := m.Compile()
	if err != nil {
		return 0, err
	}
	return cm.MeanRTT()
}

// Components decomposes the RTT quantile into its constituents, each
// reported at the model's quantile level in isolation. Because the quantile
// of a sum is not the sum of quantiles, Total (the true combined quantile)
// is generally smaller than the sum of the parts; §3.3 discusses exactly
// this approximation.
type Components struct {
	Serialization float64 // deterministic transmission times
	Fixed         float64 // propagation + processing
	Upstream      float64 // M/D/1 waiting quantile
	BurstWait     float64 // D/E_K/1 burst waiting quantile
	Position      float64 // in-burst position delay quantile
	Total         float64 // true RTT quantile (not the sum of the above)
}

// Decompose evaluates each delay component's quantile in isolation plus the
// true total: a one-shot Compile().Decompose(), so the queues are built and
// the factors combined exactly once.
func (m Model) Decompose() (Components, error) {
	cm, err := m.Compile()
	if err != nil {
		return Components{}, err
	}
	return cm.Decompose()
}

func quantileOrZero(mix mgf.Mix, p float64) (float64, error) {
	q, err := mix.Quantile(p)
	if err != nil {
		if errors.Is(err, mgf.ErrInvalid) {
			return 0, nil
		}
		return 0, err
	}
	return q, nil
}

// RTTQuantileDominantPole computes the quantile from only the dominant pole
// of the product MGF: "a further approximation is to neglect all terms but
// the dominant pole in eq. (35)". The residue is computed stably as the
// product of the dominant factor's residue with the other factors evaluated
// at the pole (no partial-fraction expansion needed). Since
// alpha_1 = beta(1-zeta_1) < beta always, the dominant pole is the simple
// pole min(gamma, alpha_1).
func (m Model) RTTQuantileDominantPole() (float64, error) {
	du, w, p, err := m.factorMixes()
	if err != nil {
		return 0, err
	}
	type simplePole struct {
		rate    float64
		residue complex128
		others  [2]mgf.Mix
	}
	var candidates []simplePole
	if g, ok := du.DominantPole(); ok {
		candidates = append(candidates, simplePole{
			rate:    real(g),
			residue: du.Terms[0].Coef[0],
			others:  [2]mgf.Mix{w, p},
		})
	}
	if a1, ok := w.DominantPole(); ok {
		var res complex128
		for _, t := range w.Terms {
			// Conjugate-pair poles share the real part only when complex;
			// the dominant D/E_K/1 pole alpha_1 is real and unique.
			if t.Pole == a1 {
				res = t.Coef[0]
			}
		}
		candidates = append(candidates, simplePole{
			rate:    real(a1),
			residue: res,
			others:  [2]mgf.Mix{du, p},
		})
	}
	if len(candidates) == 0 {
		// No stochastic part at all: the quantile is the fixed delay.
		return m.FixedPart(), nil
	}
	best := candidates[0]
	for _, c := range candidates[1:] {
		if c.rate < best.rate {
			best = c
		}
	}
	// Residue of the product at the dominant simple pole d:
	// c = res_d * F2(d) * F3(d); tail ~ Re(c) e^{-d x}.
	s := complex(best.rate, 0)
	c := best.residue * best.others[0].Eval(s) * best.others[1].Eval(s)
	amp := real(c)
	target := 1 - m.quantile()
	if !(amp > target) {
		return m.FixedPart(), nil
	}
	return math.Log(amp/target)/best.rate + m.FixedPart(), nil
}

// RTTQuantileChernoff computes the quantile from the Chernoff bound of
// eq. (36): P(D > d) <= inf_{s>0} e^{-sd} Du(s)W(s)P(s), inverted for the
// target level. The bound is evaluated on real s strictly below the smallest
// pole real part, where all three MGFs are finite.
func (m Model) RTTQuantileChernoff() (float64, error) {
	du, w, p, err := m.factorMixes()
	if err != nil {
		return 0, err
	}
	sMax := math.Inf(1)
	for _, mix := range []mgf.Mix{du, w, p} {
		if pole, ok := mix.DominantPole(); ok && real(pole) < sMax {
			sMax = real(pole)
		}
	}
	if math.IsInf(sMax, 1) {
		return m.FixedPart(), nil
	}
	logBound := func(d float64) float64 {
		f := func(s float64) float64 {
			v := real(du.Eval(complex(s, 0)) * w.Eval(complex(s, 0)) * p.Eval(complex(s, 0)))
			if v <= 0 {
				return math.Inf(1)
			}
			return -s*d + math.Log(v)
		}
		_, fx := xmath.MinimizeGolden(f, 0, sMax*(1-1e-9), 1e-12*sMax)
		return fx
	}
	target := math.Log(1 - m.quantile())
	// The bound decreases in d; bracket and bisect.
	lo, hi := 0.0, math.Max(m.BurstInterval, 1e-4)
	for i := 0; i < 200 && logBound(hi) > target; i++ {
		lo = hi
		hi *= 2
	}
	for i := 0; i < 100; i++ {
		mid := lo + (hi-lo)/2
		if logBound(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-9*(1+hi) {
			break
		}
	}
	return (lo+hi)/2 + m.FixedPart(), nil
}

// RTTQuantileSumOfQuantiles applies the last remark of §3.3: approximate the
// quantile of the sum by the sum of the component quantiles. It is an upper
// bound in practice and part of the ablation study.
func (m Model) RTTQuantileSumOfQuantiles() (float64, error) {
	c, err := m.Decompose()
	if err != nil {
		return 0, err
	}
	return c.Serialization + c.Fixed + c.Upstream + c.BurstWait + c.Position, nil
}

// WithDownlinkLoad returns a copy with Gamers set so that DownlinkLoad()
// equals rho (inverting eq. 37): N = rho*T*C/(8*PS).
func (m Model) WithDownlinkLoad(rho float64) Model {
	out := m
	out.Gamers = rho * m.BurstInterval * m.AggregateRate / (8 * m.ServerPacketBytes)
	return out
}

// String summarizes the scenario.
func (m Model) String() string {
	return fmt.Sprintf("Model{N=%.4g PC=%gB PS=%gB T=%gms D=%gms Rup=%gk Rdown=%gk C=%gk K=%d q=%g}",
		m.Gamers, m.ClientPacketBytes, m.ServerPacketBytes,
		1000*m.BurstInterval, 1000*m.clientInterval(),
		m.UplinkAccessRate/1000, m.DownlinkAccessRate/1000, m.AggregateRate/1000,
		m.ErlangOrder, m.quantile())
}
