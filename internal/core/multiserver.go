package core

import (
	"fmt"

	"fpsping/internal/mgf"
	"fpsping/internal/queueing"
)

// MultiServer extends the scenario to several game servers sharing the same
// aggregation link, the case §3.2 sketches: "if traffic stemming from more
// servers is transported over a reserved bit pipe, the N*D/G/1 queuing model
// applies ... which is very well approximated by M/G/1, if the number of
// servers is high enough". With Erlang burst work the downstream queue
// becomes M/E_K/1 (queueing.MEK1); upstream, the client population of all
// servers multiplexes into the same M/D/1 as before.
type MultiServer struct {
	// PerServer describes ONE server's scenario: Gamers is the player count
	// per server, and the burst/packet/rate parameters are shared.
	PerServer Model
	// Servers is the number of game servers behind the link.
	Servers int
}

// Validate checks the per-server scenario and the server count.
func (ms MultiServer) Validate() error {
	if ms.Servers < 1 {
		return fmt.Errorf("%w: servers %d", ErrBadModel, ms.Servers)
	}
	return ms.PerServer.Validate()
}

// TotalGamers returns Servers * per-server gamers.
func (ms MultiServer) TotalGamers() float64 {
	return float64(ms.Servers) * ms.PerServer.Gamers
}

// DownlinkLoad returns the aggregate downstream load: S times one server's
// eq. (37) load.
func (ms MultiServer) DownlinkLoad() float64 {
	return float64(ms.Servers) * ms.PerServer.DownlinkLoad()
}

// UplinkLoad returns the aggregate upstream load.
func (ms MultiServer) UplinkLoad() float64 {
	return float64(ms.Servers) * ms.PerServer.UplinkLoad()
}

// Upstream returns the M/D/1 queue fed by every server's client population.
func (ms MultiServer) Upstream() (queueing.MD1, error) {
	m := ms.PerServer
	return queueing.NewMD1(ms.TotalGamers()/m.clientInterval(),
		8*m.ClientPacketBytes/m.AggregateRate)
}

// Downstream returns the M/E_K/1 queue of the aggregated burst streams:
// Poisson burst arrivals at rate S/T (the §3.2 superposition limit) with
// one server's Erlang(K) burst work as service.
func (ms MultiServer) Downstream() (queueing.MEK1, error) {
	m := ms.PerServer
	meanBurst := 8 * m.Gamers * m.ServerPacketBytes / m.AggregateRate
	beta := float64(m.ErlangOrder) / meanBurst
	return queueing.NewMEK1(float64(ms.Servers)/m.BurstInterval, m.ErlangOrder, beta)
}

// DelayLaw returns the total queueing-delay law Du*W*P with the downstream
// factors taken from the M/E_K/1 queue.
func (ms MultiServer) DelayLaw() (mgf.Law, error) {
	if err := ms.Validate(); err != nil {
		return nil, err
	}
	up, err := ms.Upstream()
	if err != nil {
		return nil, fmt.Errorf("core: multiserver upstream: %w", err)
	}
	du, err := up.WaitMixPaper()
	if err != nil {
		return nil, err
	}
	down, err := ms.Downstream()
	if err != nil {
		return nil, fmt.Errorf("core: multiserver downstream: %w", err)
	}
	// One root solve of the M/E_K/1 denominator serves the waiting law (the
	// position law depends only on the burst-size parameters).
	sol, err := down.Solve()
	if err != nil {
		return nil, err
	}
	w, err := sol.WaitMix()
	if err != nil {
		return nil, err
	}
	p, err := down.PositionMixUniform()
	if err != nil {
		return nil, err
	}
	return combineLaw(du, w, p)
}

// Compile stages the multi-server pipeline once: the combined delay law is
// wrapped for repeated quantile/tail/mean evaluation, so callers needing
// both a quantile and a mean (the experiments' study tables) build the law a
// single time.
func (ms MultiServer) Compile() (*CompiledLaw, error) {
	law, err := ms.DelayLaw()
	if err != nil {
		return nil, err
	}
	return NewCompiledLaw(law), nil
}

// RTTQuantile returns the RTT quantile including the deterministic part.
func (ms MultiServer) RTTQuantile() (float64, error) {
	cl, err := ms.Compile()
	if err != nil {
		return 0, err
	}
	q, err := cl.Quantile(ms.PerServer.quantile())
	if err != nil {
		return 0, err
	}
	return q + ms.PerServer.FixedPart(), nil
}

// MeanRTT returns the mean round trip time.
func (ms MultiServer) MeanRTT() (float64, error) {
	law, err := ms.DelayLaw()
	if err != nil {
		return 0, err
	}
	return law.Mean() + ms.PerServer.FixedPart(), nil
}

// String summarizes the scenario.
func (ms MultiServer) String() string {
	return fmt.Sprintf("MultiServer{S=%d, per-server %s}", ms.Servers, ms.PerServer)
}
